// Cluster-plane tests: the multi-replica fleet (MoeCluster), the pluggable
// placement policies (Dispatcher), and the deterministic fault plane.
//
// The acceptance invariants of the subsystem:
//  * determinism -- same seed/config => bit-identical per-request output
//    digests AND identical latency percentiles at COMET_THREADS {1,8},
//    across replicas {1,2,4} x all four placement policies;
//  * equivalence -- a 1-replica cluster IS the single-server serving plane,
//    bit for bit (same records, digests, percentiles, shed counts);
//  * placement properties (randomized trials) -- every admitted request is
//    dispatched to exactly one accepting replica, sticky sessions never
//    migrate while their pin accepts, p2c always takes the less loaded of
//    its two samples, and admitted = completed + shed + failed_in_flight;
//  * fault accounting -- a replica failing mid-run loses or re-dispatches
//    exactly its in-flight requests (re-dispatched outputs match the
//    no-fault run bit-for-bit), a drained replica finishes its work but
//    accepts nothing new, and a wedged rank surfaces as a counted replica
//    failure via the fail-fast signal wait, never as a hang.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "serve/cluster.h"
#include "serve/loadgen.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

constexpr PlacementPolicy kAllPolicies[] = {
    PlacementPolicy::kRoundRobin,
    PlacementPolicy::kLeastLoaded,
    PlacementPolicy::kPowerOfTwo,
    PlacementPolicy::kSticky,
};

ModelConfig ClusterModel() {
  ModelConfig m;
  m.name = "cluster-tiny";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 32;
  m.ffn_hidden = 64;
  return m;
}

// A micro model for the randomized property trials (hundreds of runs).
ModelConfig MicroModel() {
  ModelConfig m;
  m.name = "cluster-micro";
  m.layers = 1;
  m.num_experts = 4;
  m.topk = 2;
  m.embedding = 8;
  m.ffn_hidden = 16;
  return m;
}

ServeOptions BaseServeOptions(const ModelConfig& model, int ep, DType dtype,
                              int num_threads) {
  ServeOptions o;
  o.model = model;
  o.parallel = ParallelConfig{1, ep};
  o.seed = 1234;
  o.dtype = dtype;
  o.num_threads = num_threads;
  o.token_budget = 16;
  o.max_active = 8;
  o.queue_capacity = 64;
  return o;
}

ClusterOptions BaseClusterOptions(int replicas, PlacementPolicy placement,
                                  int num_threads = 1,
                                  DType dtype = DType::kF32) {
  ClusterOptions o;
  o.server = BaseServeOptions(ClusterModel(), 2, dtype, num_threads);
  o.replicas = replicas;
  o.placement = placement;
  o.placement_seed = 99;
  return o;
}

LoadGenOptions BaseLoadOptions(int64_t n = 24) {
  LoadGenOptions o;
  o.seed = 77;
  o.offered_rps = 2000.0;
  o.num_requests = n;
  o.prompt = LengthDist::Uniform(2, 6);
  o.decode = LengthDist::Uniform(0, 4);
  // Several requests per session so the sticky policy has affinity to keep.
  o.num_sessions = 6;
  return o;
}

void ExpectReportsIdentical(const ClusterReport& a, const ClusterReport& b) {
  ASSERT_EQ(a.completed.size(), b.completed.size());
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.failed_in_flight, b.failed_in_flight);
  EXPECT_EQ(a.redispatched, b.redispatched);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.batched_tokens, b.batched_tokens);
  EXPECT_EQ(a.padding_tokens, b.padding_tokens);
  EXPECT_EQ(a.per_replica_completed, b.per_replica_completed);
  EXPECT_EQ(a.per_replica_iterations, b.per_replica_iterations);
  for (size_t i = 0; i < a.completed.size(); ++i) {
    const RequestRecord& ra = a.completed[i];
    const RequestRecord& rb = b.completed[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.output_digest, rb.output_digest)
        << "request " << ra.id << " output bits changed";
    EXPECT_EQ(ra.queue_wait_us, rb.queue_wait_us);
    EXPECT_EQ(ra.ttft_us, rb.ttft_us);
    EXPECT_EQ(ra.e2e_us, rb.e2e_us);
    EXPECT_EQ(ra.mean_itl_us, rb.mean_itl_us);
  }
  EXPECT_EQ(a.combined_digest, b.combined_digest);
  EXPECT_EQ(a.sim_duration_us, b.sim_duration_us);
  EXPECT_EQ(a.ttft_us.p50, b.ttft_us.p50);
  EXPECT_EQ(a.ttft_us.p95, b.ttft_us.p95);
  EXPECT_EQ(a.ttft_us.p99, b.ttft_us.p99);
  EXPECT_EQ(a.itl_us.p99, b.itl_us.p99);
  EXPECT_EQ(a.queue_wait_us.p99, b.queue_wait_us.p99);
  EXPECT_EQ(a.e2e_us.p99, b.e2e_us.p99);
}

// ---- determinism tier ------------------------------------------------------

// The acceptance matrix of the cluster plane: identical seed/config =>
// bit-identical reports at 1 vs 8 host threads, for every fleet size and
// placement policy. The global event loop is single-threaded and the
// replicas' numerics are thread-count-exact, so NOTHING may move.
TEST(ClusterDeterminism, AcrossThreadCountsAndPolicies) {
  const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
  for (int replicas : {1, 2, 4}) {
    for (PlacementPolicy policy : kAllPolicies) {
      SCOPED_TRACE(std::string("replicas=") + std::to_string(replicas) +
                   " policy=" + PlacementPolicyName(policy));
      MoeCluster serial(BaseClusterOptions(replicas, policy, 1),
                        H800Cluster(2));
      MoeCluster threaded(BaseClusterOptions(replicas, policy, 8),
                          H800Cluster(2));
      const ClusterReport a = serial.Run(arrivals);
      const ClusterReport b = threaded.Run(arrivals);
      ExpectReportsIdentical(a, b);
      EXPECT_EQ(static_cast<int64_t>(a.completed.size()) + a.shed +
                    a.failed_in_flight,
                a.offered);
    }
  }
}

// Runs are independent: the same cluster object re-run over the same
// arrivals reproduces itself bit-for-bit (no state leaks across BeginRun).
TEST(ClusterDeterminism, RerunIsBitIdentical) {
  const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
  MoeCluster cluster(
      BaseClusterOptions(2, PlacementPolicy::kPowerOfTwo), H800Cluster(2));
  const ClusterReport a = cluster.Run(arrivals);
  const ClusterReport b = cluster.Run(arrivals);
  ExpectReportsIdentical(a, b);
}

// A 1-replica cluster IS the single-server serving plane: every field of
// the report matches MoeServer::Serve over the same arrivals, bit for bit.
// This pins the dispatcher-hook refactor of MoeServer: the hooks compose
// into exactly the loop PR 5 shipped.
TEST(ClusterDeterminism, SingleReplicaMatchesMoeServer) {
  const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
  for (PlacementPolicy policy : kAllPolicies) {
    SCOPED_TRACE(PlacementPolicyName(policy));
    MoeServer server(BaseServeOptions(ClusterModel(), 2, DType::kF32, 1),
                     H800Cluster(2));
    MoeCluster cluster(BaseClusterOptions(1, policy), H800Cluster(2));
    const ServeReport s = server.Serve(arrivals);
    const ClusterReport c = cluster.Run(arrivals);

    ASSERT_EQ(s.completed.size(), c.completed.size());
    EXPECT_EQ(s.offered, c.offered);
    EXPECT_EQ(s.shed, c.shed);
    EXPECT_EQ(s.iterations, c.iterations);
    EXPECT_EQ(s.batched_tokens, c.batched_tokens);
    EXPECT_EQ(s.padding_tokens, c.padding_tokens);
    for (size_t i = 0; i < s.completed.size(); ++i) {
      const RequestRecord& rs = s.completed[i];
      const RequestRecord& rc = c.completed[i];
      EXPECT_EQ(rs.id, rc.id);
      EXPECT_EQ(rs.output_digest, rc.output_digest);
      EXPECT_EQ(rs.queue_wait_us, rc.queue_wait_us);
      EXPECT_EQ(rs.ttft_us, rc.ttft_us);
      EXPECT_EQ(rs.e2e_us, rc.e2e_us);
      EXPECT_EQ(rs.mean_itl_us, rc.mean_itl_us);
    }
    EXPECT_EQ(s.combined_digest, c.combined_digest);
    EXPECT_EQ(s.sim_duration_us, c.sim_duration_us);
    EXPECT_EQ(s.throughput_tokens_per_s, c.throughput_tokens_per_s);
    EXPECT_EQ(s.ttft_us.p50, c.ttft_us.p50);
    EXPECT_EQ(s.ttft_us.p99, c.ttft_us.p99);
    EXPECT_EQ(s.itl_us.p99, c.itl_us.p99);
    EXPECT_EQ(s.queue_wait_us.p99, c.queue_wait_us.p99);
    EXPECT_EQ(s.e2e_us.p99, c.e2e_us.p99);
  }
}

// ---- Dispatcher unit property tests ----------------------------------------

// Random loads / accepting sets, many trials per policy. The dispatcher's
// contract is checkable without a cluster: the pick is always an accepting
// replica (or -1 when none), and each policy's selection rule holds.
TEST(PlacementProperty, PickAlwaysAcceptingOrMinusOne) {
  for (PlacementPolicy policy : kAllPolicies) {
    Rng rng(500 + static_cast<uint64_t>(policy));
    Dispatcher dispatcher(policy, 8, /*seed=*/7);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<int64_t> loads(8);
      std::vector<bool> accepting(8);
      for (int r = 0; r < 8; ++r) {
        loads[r] = rng.UniformInt(0, 100);
        accepting[r] = rng.NextDouble() < 0.7;
      }
      RequestSpec spec;
      spec.id = trial;
      spec.session = static_cast<uint64_t>(rng.UniformInt(0, 3));
      DispatchDecision d;
      const int pick = dispatcher.Pick(spec, loads, accepting, &d);
      const bool any =
          std::any_of(accepting.begin(), accepting.end(), [](bool b) {
            return b;
          });
      if (!any) {
        EXPECT_EQ(pick, -1);
        continue;
      }
      ASSERT_GE(pick, 0);
      ASSERT_LT(pick, 8);
      EXPECT_TRUE(accepting[pick]) << PlacementPolicyName(policy);
      EXPECT_EQ(d.replica, pick);
      // accepting_mask reflects the accepting set at decision time.
      for (int r = 0; r < 8; ++r) {
        EXPECT_EQ((d.accepting_mask >> r) & 1, accepting[r] ? 1u : 0u);
      }
    }
  }
}

TEST(PlacementProperty, LeastLoadedPicksGlobalMinTieLowestIndex) {
  Rng rng(501);
  Dispatcher dispatcher(PlacementPolicy::kLeastLoaded, 6, 7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int64_t> loads(6);
    std::vector<bool> accepting(6);
    bool any = false;
    for (int r = 0; r < 6; ++r) {
      loads[r] = rng.UniformInt(0, 5);  // small range: ties are common
      accepting[r] = rng.NextDouble() < 0.8;
      any = any || accepting[r];
    }
    if (!any) {
      accepting[static_cast<size_t>(rng.UniformInt(0, 5))] = true;
    }
    const int pick =
        dispatcher.Pick(RequestSpec{}, loads, accepting, nullptr);
    ASSERT_GE(pick, 0);
    for (int r = 0; r < 6; ++r) {
      if (!accepting[r]) continue;
      EXPECT_LE(loads[pick], loads[r]);
      if (loads[r] == loads[pick]) {
        EXPECT_LE(pick, r) << "tie must go to the lowest index";
      }
    }
  }
}

TEST(PlacementProperty, PowerOfTwoPicksLessLoadedOfItsTwoSamples) {
  Rng rng(502);
  Dispatcher dispatcher(PlacementPolicy::kPowerOfTwo, 8, 7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int64_t> loads(8);
    std::vector<bool> accepting(8);
    int num_accepting = 0;
    for (int r = 0; r < 8; ++r) {
      loads[r] = rng.UniformInt(0, 50);
      accepting[r] = rng.NextDouble() < 0.6;
      num_accepting += accepting[r] ? 1 : 0;
    }
    if (num_accepting == 0) {
      accepting[3] = true;
      num_accepting = 1;
    }
    DispatchDecision d;
    const int pick = dispatcher.Pick(RequestSpec{}, loads, accepting, &d);
    ASSERT_GE(pick, 0);
    EXPECT_TRUE(accepting[pick]);
    if (num_accepting == 1) {
      EXPECT_EQ(d.candidate_a, -1) << "single candidate: no sampling";
      continue;
    }
    ASSERT_GE(d.candidate_a, 0);
    ASSERT_GE(d.candidate_b, 0);
    EXPECT_NE(d.candidate_a, d.candidate_b) << "samples must be distinct";
    EXPECT_TRUE(accepting[d.candidate_a]);
    EXPECT_TRUE(accepting[d.candidate_b]);
    EXPECT_EQ(d.load_a, loads[d.candidate_a]);
    EXPECT_EQ(d.load_b, loads[d.candidate_b]);
    const int want =
        d.load_a < d.load_b
            ? d.candidate_a
            : (d.load_b < d.load_a ? d.candidate_b
                                   : std::min(d.candidate_a, d.candidate_b));
    EXPECT_EQ(pick, want);
  }
}

TEST(PlacementProperty, StickyPinsSessionWhilePinAccepts) {
  Rng rng(503);
  Dispatcher dispatcher(PlacementPolicy::kSticky, 4, 7);
  std::map<uint64_t, int> pin;  // shadow of the dispatcher's session map
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<int64_t> loads(4);
    std::vector<bool> accepting(4);
    bool any = false;
    for (int r = 0; r < 4; ++r) {
      loads[r] = rng.UniformInt(0, 30);
      accepting[r] = rng.NextDouble() < 0.8;
      any = any || accepting[r];
    }
    if (!any) {
      accepting[0] = true;
    }
    RequestSpec spec;
    spec.session = static_cast<uint64_t>(rng.UniformInt(0, 5));
    DispatchDecision d;
    const int pick = dispatcher.Pick(spec, loads, accepting, &d);
    ASSERT_GE(pick, 0);
    const auto it = pin.find(spec.session);
    if (it != pin.end() && accepting[it->second]) {
      EXPECT_EQ(pick, it->second)
          << "session migrated while its pin was accepting";
      EXPECT_TRUE(d.sticky_hit);
    } else {
      EXPECT_FALSE(d.sticky_hit);
      // Re-homing goes least-loaded.
      for (int r = 0; r < 4; ++r) {
        if (accepting[r]) {
          EXPECT_LE(loads[pick], loads[r]);
        }
      }
    }
    pin[spec.session] = pick;
  }
}

TEST(PlacementProperty, RoundRobinRotatesOverAcceptingReplicas) {
  Dispatcher dispatcher(PlacementPolicy::kRoundRobin, 4, 7);
  std::vector<int64_t> loads(4, 0);
  std::vector<bool> accepting(4, true);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(dispatcher.Pick(RequestSpec{}, loads, accepting, nullptr),
              i % 4);
  }
  accepting[1] = false;  // rotation skips the non-accepting replica
  std::vector<int> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(dispatcher.Pick(RequestSpec{}, loads, accepting, nullptr));
  }
  EXPECT_EQ(picks, (std::vector<int>{0, 2, 3, 0, 2, 3}));
}

TEST(PlacementProperty, ParseRoundTripsAndRejectsUnknown) {
  for (PlacementPolicy policy : kAllPolicies) {
    EXPECT_EQ(ParsePlacementPolicy(PlacementPolicyName(policy)), policy);
  }
  EXPECT_THROW(ParsePlacementPolicy("best-effort"), CheckError);
}

// ---- cluster-level randomized property trials ------------------------------

std::vector<RequestSpec> RandomArrivals(Rng& rng, int64_t n) {
  std::vector<RequestSpec> arrivals;
  double clock = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    RequestSpec spec;
    spec.id = i;
    spec.seed = rng.NextU64();
    spec.session = static_cast<uint64_t>(rng.UniformInt(0, 3));
    spec.prompt_tokens = rng.UniformInt(1, 6);
    spec.decode_tokens = rng.UniformInt(0, 4);
    clock += rng.NextDouble() * 400.0;
    spec.arrival_us = clock;
    arrivals.push_back(spec);
  }
  return arrivals;
}

// 100 randomized fleets per policy. Checked per trial, from the dispatch
// log and the report:
//  * every admitted request is dispatched to exactly one accepting replica
//    (its bit is set in the decision's accepting_mask);
//  * sticky sessions never migrate (no faults here, pins never break);
//  * conservation: offered = completed + shed + failed_in_flight;
//  * placement does not touch outputs: per-request digests are identical
//    across all four policies over the same arrivals.
TEST(ClusterProperty, RandomizedTrialsPerPolicy) {
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE(std::string("trial=") + std::to_string(trial));
    Rng rng(9000 + static_cast<uint64_t>(trial));
    const auto arrivals = RandomArrivals(rng, rng.UniformInt(4, 12));
    const int replicas = static_cast<int>(rng.UniformInt(2, 4));

    std::map<int64_t, uint64_t> digests_by_policy[4];
    for (size_t p = 0; p < 4; ++p) {
      const PlacementPolicy policy = kAllPolicies[p];
      SCOPED_TRACE(PlacementPolicyName(policy));
      ClusterOptions options;
      options.server =
          BaseServeOptions(MicroModel(), /*ep=*/1, DType::kF32, 1);
      options.replicas = replicas;
      options.placement = policy;
      options.placement_seed = 4242 + trial;
      options.record_dispatch_log = true;
      MoeCluster cluster(options, H800Cluster(1));
      const ClusterReport report = cluster.Run(arrivals);

      // Conservation.
      EXPECT_EQ(static_cast<int64_t>(report.completed.size()) + report.shed +
                    report.failed_in_flight,
                report.offered);
      EXPECT_EQ(report.failed_in_flight, 0) << "no faults scheduled";
      EXPECT_EQ(report.shed, 0) << "queues are far from full";

      // Exactly one dispatch per request, always to an accepting replica.
      std::map<int64_t, int> dispatches;
      std::map<uint64_t, std::set<int>> session_replicas;
      for (const DispatchDecision& d : report.dispatch_log) {
        ASSERT_GE(d.replica, 0);
        ASSERT_LT(d.replica, replicas);
        EXPECT_EQ((d.accepting_mask >> d.replica) & 1, 1u)
            << "dispatched to a non-accepting replica";
        EXPECT_FALSE(d.redispatch);
        ++dispatches[d.request_id];
        session_replicas[d.session].insert(d.replica);
      }
      EXPECT_EQ(dispatches.size(), arrivals.size());
      for (const auto& [id, count] : dispatches) {
        EXPECT_EQ(count, 1) << "request " << id << " dispatched twice";
      }
      if (policy == PlacementPolicy::kSticky) {
        for (const auto& [session, replica_set] : session_replicas) {
          EXPECT_EQ(replica_set.size(), 1u)
              << "session " << session << " migrated without a fault";
        }
      }
      for (const RequestRecord& rec : report.completed) {
        digests_by_policy[p][rec.id] = rec.output_digest;
      }
    }
    // Outputs are a function of the request, not of where it ran.
    for (size_t p = 1; p < 4; ++p) {
      EXPECT_EQ(digests_by_policy[0], digests_by_policy[p])
          << "placement policy changed request output bits";
    }
  }
}

// ---- fault plane -----------------------------------------------------------

// Tightly bunched arrivals so both replicas hold in-flight work when the
// fault fires mid-run.
LoadGenOptions BurstLoadOptions(int64_t n = 24) {
  LoadGenOptions o = BaseLoadOptions(n);
  o.arrival = ArrivalProcess::kBursty;
  o.mean_burst = static_cast<double>(n);
  o.offered_rps = 1e9;  // everything arrives (essentially) at t=0
  return o;
}

ClusterOptions FaultClusterOptions(InFlightPolicy in_flight) {
  ClusterOptions o = BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  o.in_flight = in_flight;
  o.record_dispatch_log = true;
  // Generous SLO so only lost/shed requests can violate it.
  o.server.slo.ttft_us = 1e12;
  return o;
}

TEST(ClusterFaults, FailMidRunRedispatchLosesNothing) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  // Baseline (no faults) for the digest-invariance check and fault timing.
  ClusterOptions base = FaultClusterOptions(InFlightPolicy::kRedispatch);
  const ClusterReport clean = MoeCluster(base, H800Cluster(2)).Run(arrivals);
  ASSERT_EQ(static_cast<int64_t>(clean.completed.size()), clean.offered);

  ClusterOptions faulty = base;
  faulty.faults.events.push_back(
      {clean.sim_duration_us * 0.4, /*replica=*/0, FaultKind::kFail});
  const ClusterReport report =
      MoeCluster(faulty, H800Cluster(2)).Run(arrivals);

  EXPECT_EQ(report.replica_failures, 1);
  EXPECT_EQ(report.failed_in_flight, 0);
  EXPECT_GT(report.redispatched, 0) << "replica 0 held work when it died";
  // Nothing is lost under kRedispatch: every request completes...
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered);
  EXPECT_EQ(report.slo_violations, 0);
  // ...and a re-dispatched request, recomputed from scratch on the
  // survivor, produces the SAME output bits as the no-fault run: outputs
  // depend on (seed, weights), never on which replica or batch served them.
  ASSERT_EQ(report.completed.size(), clean.completed.size());
  for (size_t i = 0; i < report.completed.size(); ++i) {
    EXPECT_EQ(report.completed[i].id, clean.completed[i].id);
    EXPECT_EQ(report.completed[i].output_digest,
              clean.completed[i].output_digest)
        << "request " << report.completed[i].id;
  }
  // After the failure every dispatch went to the survivor.
  for (const DispatchDecision& d : report.dispatch_log) {
    if (d.time_us >= faulty.faults.events[0].time_us) {
      EXPECT_EQ(d.replica, 1);
    }
    if (d.redispatch) {
      EXPECT_EQ(d.replica, 1);
    }
  }
}

TEST(ClusterFaults, FailMidRunCountAsViolationChargesSlo) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  ClusterOptions base = FaultClusterOptions(InFlightPolicy::kCountAsViolation);
  const ClusterReport clean = MoeCluster(base, H800Cluster(2)).Run(arrivals);

  ClusterOptions faulty = base;
  faulty.faults.events.push_back(
      {clean.sim_duration_us * 0.4, /*replica=*/0, FaultKind::kFail});
  const ClusterReport report =
      MoeCluster(faulty, H800Cluster(2)).Run(arrivals);

  EXPECT_EQ(report.replica_failures, 1);
  EXPECT_GT(report.failed_in_flight, 0) << "replica 0 held work when it died";
  EXPECT_EQ(report.redispatched, 0);
  // Lost in-flight requests are exactly the gap between offered and
  // completed (no sheds at this load), and exactly the SLO violations: the
  // generous targets make every completed request meet the SLO.
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()) +
                report.failed_in_flight,
            report.offered);
  EXPECT_EQ(report.slo_violations, report.failed_in_flight);
  const double expect_attainment =
      static_cast<double>(report.completed.size()) /
      static_cast<double>(report.offered);
  EXPECT_DOUBLE_EQ(report.slo_attainment, expect_attainment);
}

TEST(ClusterFaults, DrainFinishesInFlightAndAcceptsNothingNew) {
  // Spread arrivals so plenty lands after the drain point.
  const auto arrivals = LoadGenerator(BaseLoadOptions(32)).GenerateAll();
  ClusterOptions base = BaseClusterOptions(2, PlacementPolicy::kRoundRobin);
  base.record_dispatch_log = true;
  const ClusterReport clean = MoeCluster(base, H800Cluster(2)).Run(arrivals);

  ClusterOptions draining = base;
  const double drain_at = clean.sim_duration_us * 0.3;
  draining.faults.events.push_back({drain_at, /*replica=*/0,
                                    FaultKind::kDrain});
  const ClusterReport report =
      MoeCluster(draining, H800Cluster(2)).Run(arrivals);

  EXPECT_EQ(report.replicas_drained, 1);
  EXPECT_EQ(report.replica_failures, 0);
  EXPECT_EQ(report.failed_in_flight, 0);
  // A drain loses nothing: in-flight work on the drained replica finishes.
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered);
  ASSERT_EQ(report.completed.size(), clean.completed.size());
  for (size_t i = 0; i < report.completed.size(); ++i) {
    EXPECT_EQ(report.completed[i].output_digest,
              clean.completed[i].output_digest);
  }
  // The drained replica did complete work (it was serving before the
  // drain), but every post-drain dispatch avoided it.
  EXPECT_GT(report.per_replica_completed[0], 0);
  for (const DispatchDecision& d : report.dispatch_log) {
    if (d.time_us >= drain_at) {
      EXPECT_EQ(d.replica, 1) << "dispatched to a drained replica";
      EXPECT_EQ((d.accepting_mask >> 0) & 1, 0u);
    }
  }
}

// A wedged rank (a signal wait no producer will ever satisfy) surfaces as
// a counted replica failure after signal_wait_timeout_ms -- never a hang.
// The suite-visible proof: this test finishes, quickly, with the failure
// accounted and the fleet's work completed by the survivor.
TEST(ClusterFaults, WedgedReplicaFailsFastAndIsCounted) {
  const auto arrivals = LoadGenerator(BurstLoadOptions(12)).GenerateAll();
  ClusterOptions options = FaultClusterOptions(InFlightPolicy::kRedispatch);
  options.server.signal_wait_timeout_ms = 30;  // keep the test fast
  options.faults.events.push_back({0.0, /*replica=*/0, FaultKind::kWedge});

  const auto wall_start = std::chrono::steady_clock::now();
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  EXPECT_EQ(report.replica_failures, 1) << "the wedge must surface as death";
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered)
      << "the survivor absorbs the wedged replica's work";
  EXPECT_EQ(report.failed_in_flight, 0);
  // One 30 ms timeout plus real serving work; far below a hang. Generous
  // bound for slow CI machines.
  EXPECT_LT(wall_ms, 10'000.0);
}

TEST(ClusterFaults, GlobalAdmissionBoundShedsOverload) {
  const auto arrivals = LoadGenerator(BurstLoadOptions(32)).GenerateAll();
  ClusterOptions options = BaseClusterOptions(2, PlacementPolicy::kRoundRobin);
  options.global_queue_tokens = 16;  // far below the burst's total tokens
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);
  EXPECT_GT(report.shed, 0);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()) + report.shed,
            report.offered);
}

// More replicas finish the same overload sooner: the simplest end-to-end
// sanity that dispatching actually spreads load.
TEST(ClusterFaults, FleetFinishesOverloadFasterThanOneReplica) {
  const auto arrivals = LoadGenerator(BurstLoadOptions(32)).GenerateAll();
  const ClusterReport one =
      MoeCluster(BaseClusterOptions(1, PlacementPolicy::kLeastLoaded),
                 H800Cluster(2))
          .Run(arrivals);
  const ClusterReport four =
      MoeCluster(BaseClusterOptions(4, PlacementPolicy::kLeastLoaded),
                 H800Cluster(2))
          .Run(arrivals);
  EXPECT_EQ(static_cast<int64_t>(one.completed.size()), one.offered);
  EXPECT_EQ(static_cast<int64_t>(four.completed.size()), four.offered);
  EXPECT_LT(four.sim_duration_us, one.sim_duration_us);
  EXPECT_GT(four.throughput_tokens_per_s, one.throughput_tokens_per_s);
}

TEST(ClusterOptionsValidation, RejectsBadConfigs) {
  ClusterOptions zero = BaseClusterOptions(0, PlacementPolicy::kRoundRobin);
  EXPECT_THROW(MoeCluster(zero, H800Cluster(2)), CheckError);

  ClusterOptions out_of_range =
      BaseClusterOptions(2, PlacementPolicy::kRoundRobin);
  out_of_range.faults.events.push_back({100.0, /*replica=*/2,
                                        FaultKind::kFail});
  EXPECT_THROW(MoeCluster(out_of_range, H800Cluster(2)), CheckError);

  ClusterOptions unsorted = BaseClusterOptions(2, PlacementPolicy::kRoundRobin);
  unsorted.faults.events.push_back({200.0, 0, FaultKind::kFail});
  unsorted.faults.events.push_back({100.0, 1, FaultKind::kDrain});
  EXPECT_THROW(MoeCluster(unsorted, H800Cluster(2)), CheckError);

  ClusterOptions negative = BaseClusterOptions(2, PlacementPolicy::kRoundRobin);
  negative.global_queue_tokens = -1;
  EXPECT_THROW(MoeCluster(negative, H800Cluster(2)), CheckError);
}

}  // namespace
}  // namespace comet
