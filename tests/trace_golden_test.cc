// Golden-trace regression: the Chrome trace exported for a fixed Figure 1(a)
// workload must match a committed golden JSON. Timeline refactors are fine;
// silently changing the event STRUCTURE (labels, categories, lanes, event
// count, timestamps of the simulated schedule) is not -- that is the data
// every trace consumer (chrome://tracing, Perfetto, the bench plots) keys
// on.
//
// Comparison is field-order-normalized: both sides are parsed into their
// trace events and each event's top-level fields are sorted by key before
// comparing, so a serializer that legitimately reorders fields does not
// trip the test while any value/structure change does.
//
// Refreshing the golden after an INTENDED change:
//   COMET_UPDATE_GOLDEN=1 ./build/tests/trace_golden_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/megatron.h"
#include "hw/gpu_spec.h"
#include "moe/workload.h"
#include "sim/trace_export.h"
#include "util/check.h"

namespace comet {
namespace {

constexpr char kGoldenPath[] = COMET_TEST_DIR "/golden/fig01_trace.json";

// The fig01 workload: Mixtral-8x7B at M=4096 under Megatron-LM on 8x H800
// (timing plane only), the measurement that motivates the whole paper.
std::string GenerateFig01Trace() {
  WorkloadOptions options;
  options.seed = 1;
  options.materialize = false;
  const MoeWorkload w =
      MakeWorkload(Mixtral8x7B(), ParallelConfig{1, 8}, 4096, options);
  MegatronExecutor megatron = MakeMegatronCutlass();
  const LayerExecution run =
      megatron.Run(w, H800Cluster(8), ExecMode::kTimedOnly);
  return ToChromeTraceJson(run.timeline, "fig01-golden");
}

// Splits `object` (the inside of one {...}) into top-level "key":value
// fragments, honouring nested braces/brackets and quoted strings.
std::vector<std::string> SplitTopLevelFields(const std::string& object) {
  std::vector<std::string> fields;
  std::string current;
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < object.size(); ++i) {
    const char c = object[i];
    if (in_string) {
      current += c;
      if (c == '\\' && i + 1 < object.size()) {
        current += object[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        current += c;
        break;
      case '{':
      case '[':
        ++depth;
        current += c;
        break;
      case '}':
      case ']':
        --depth;
        current += c;
        break;
      case ',':
        if (depth == 0) {
          fields.push_back(current);
          current.clear();
        } else {
          current += c;
        }
        break;
      default:
        current += c;
    }
  }
  if (!current.empty()) {
    fields.push_back(current);
  }
  return fields;
}

// Extracts every top-level {...} object of the traceEvents array and
// returns each with its fields sorted by key, one event per output entry.
std::vector<std::string> NormalizedTraceEvents(const std::string& json) {
  const size_t array_start = json.find("\"traceEvents\":[");
  COMET_CHECK(array_start != std::string::npos) << "not a trace JSON";
  std::vector<std::string> events;
  std::string current;
  int depth = 0;
  bool in_string = false;
  for (size_t i = array_start; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      current += c;
      if (c == '\\' && i + 1 < json.size()) {
        current += json[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"' && depth > 0) {
      in_string = true;
    }
    if (c == '{') {
      ++depth;
      if (depth == 1) {
        current.clear();
        continue;
      }
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        auto fields = SplitTopLevelFields(current);
        std::sort(fields.begin(), fields.end());
        std::string normalized = "{";
        for (size_t f = 0; f < fields.size(); ++f) {
          normalized += fields[f];
          if (f + 1 < fields.size()) {
            normalized += ",";
          }
        }
        normalized += "}";
        events.push_back(std::move(normalized));
        continue;
      }
    }
    if (depth >= 1) {
      current += c;
    }
  }
  return events;
}

TEST(TraceGolden, NormalizationIsFieldOrderInsensitive) {
  const auto a = NormalizedTraceEvents(
      R"({"traceEvents":[{"name":"x","ts":1,"args":{"b":2,"a":1}}]})");
  const auto b = NormalizedTraceEvents(
      R"({"traceEvents":[{"ts":1,"args":{"b":2,"a":1},"name":"x"}]})");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);
  // ...but value changes are still caught.
  const auto c = NormalizedTraceEvents(
      R"({"traceEvents":[{"name":"x","ts":2,"args":{"b":2,"a":1}}]})");
  EXPECT_NE(a, c);
}

TEST(TraceGolden, Fig01WorkloadMatchesCommittedTrace) {
  const std::string trace = GenerateFig01Trace();

  if (std::getenv("COMET_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << trace << "\n";
    GTEST_SKIP() << "golden refreshed at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good())
      << "missing golden file " << kGoldenPath
      << " (generate with COMET_UPDATE_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();

  const auto expected = NormalizedTraceEvents(buffer.str());
  const auto actual = NormalizedTraceEvents(trace);
  ASSERT_GT(expected.size(), 1u) << "golden trace is empty";
  ASSERT_EQ(actual.size(), expected.size())
      << "event count changed -- if intended, refresh the golden with "
         "COMET_UPDATE_GOLDEN=1";
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "trace event " << i << " diverged";
  }
}

}  // namespace
}  // namespace comet
