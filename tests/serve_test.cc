// Serving-plane tests: admission queue (bounded MPMC + shed policies),
// load generator (seeded open-loop arrivals), continuous batcher (randomized
// packing property tests), and the end-to-end server.
//
// The acceptance invariant of the subsystem: a serving run is a pure
// function of (seed, config). Identical seed/config produce bit-identical
// per-request output digests and identical simulated-clock latency
// percentiles at 1 and 8 host threads, across EP {1,4} and dtype
// {f32,bf16} -- the thread/rank-count bit-exactness of the data plane
// (PRs 2-4) lifted to the serving layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "comm/symmetric_heap.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

// ---- admission queue -------------------------------------------------------

RequestSpec Req(int64_t id, int64_t prompt = 4, int64_t decode = 2,
                double arrival_us = 0.0) {
  RequestSpec r;
  r.id = id;
  r.seed = static_cast<uint64_t>(id) * 1000003ULL + 5;
  r.prompt_tokens = prompt;
  r.decode_tokens = decode;
  r.arrival_us = arrival_us;
  return r;
}

TEST(AdmissionQueue, FifoOrder) {
  AdmissionQueue q(8, AdmissionPolicy::kShedNewest);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.TryPush(Req(i)).admitted);
  }
  EXPECT_EQ(q.size(), 5);
  for (int64_t i = 0; i < 5; ++i) {
    const auto r = q.TryPop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(AdmissionQueue, ShedNewestRejectsWhenFull) {
  AdmissionQueue q(2, AdmissionPolicy::kShedNewest);
  EXPECT_TRUE(q.TryPush(Req(0)).admitted);
  EXPECT_TRUE(q.TryPush(Req(1)).admitted);
  const auto third = q.TryPush(Req(2));
  EXPECT_FALSE(third.admitted);
  EXPECT_FALSE(third.evicted.has_value());
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.total_admitted(), 2);
  EXPECT_EQ(q.total_shed(), 1);
  // The survivors are the OLDEST two.
  EXPECT_EQ(q.TryPop()->id, 0);
  EXPECT_EQ(q.TryPop()->id, 1);
}

TEST(AdmissionQueue, ShedOldestEvictsHead) {
  AdmissionQueue q(2, AdmissionPolicy::kShedOldest);
  EXPECT_TRUE(q.TryPush(Req(0)).admitted);
  EXPECT_TRUE(q.TryPush(Req(1)).admitted);
  const auto third = q.TryPush(Req(2));
  EXPECT_TRUE(third.admitted);
  ASSERT_TRUE(third.evicted.has_value());
  EXPECT_EQ(third.evicted->id, 0);
  EXPECT_EQ(q.total_shed(), 1);
  // The survivors are the NEWEST two.
  EXPECT_EQ(q.TryPop()->id, 1);
  EXPECT_EQ(q.TryPop()->id, 2);
}

TEST(AdmissionQueue, CloseWakesBlockedConsumer) {
  AdmissionQueue q(4, AdmissionPolicy::kShedNewest);
  std::optional<RequestSpec> got = Req(99);
  std::thread consumer([&] { got = q.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
  EXPECT_FALSE(q.TryPush(Req(1)).admitted) << "closed queue sheds everything";
}

TEST(AdmissionQueue, RejectsNonPositiveCapacity) {
  EXPECT_THROW(AdmissionQueue(0, AdmissionPolicy::kShedNewest), CheckError);
}

// The MPMC contract under real threads (the TSan job runs this suite):
// every produced request is either popped exactly once or counted shed,
// never duplicated, never lost.
TEST(AdmissionQueue, MpmcConservationUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 200;
  AdmissionQueue q(16, AdmissionPolicy::kShedNewest);

  std::vector<std::thread> threads;
  std::vector<std::vector<int64_t>> popped(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      while (const auto r = q.Pop()) {
        popped[static_cast<size_t>(c)].push_back(r->id);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.TryPush(Req(static_cast<int64_t>(p) * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  // Let the consumers drain, then release them.
  while (q.size() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  q.Close();
  for (auto& t : threads) {
    t.join();
  }

  std::set<int64_t> seen;
  int64_t total_popped = 0;
  for (const auto& v : popped) {
    for (int64_t id : v) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate pop of id " << id;
      ++total_popped;
    }
  }
  EXPECT_EQ(total_popped, q.total_admitted());
  EXPECT_EQ(q.total_admitted() + q.total_shed(),
            static_cast<int64_t>(kProducers) * kPerProducer);
}

// ---- load generator --------------------------------------------------------

TEST(LoadGen, DeterministicForSameSeed) {
  LoadGenOptions options;
  options.seed = 42;
  options.num_requests = 50;
  options.arrival = ArrivalProcess::kBursty;
  LoadGenerator a(options);
  LoadGenerator b(options);
  const auto ra = a.GenerateAll();
  const auto rb = b.GenerateAll();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_EQ(ra[i].seed, rb[i].seed);
    EXPECT_EQ(ra[i].prompt_tokens, rb[i].prompt_tokens);
    EXPECT_EQ(ra[i].decode_tokens, rb[i].decode_tokens);
    EXPECT_EQ(ra[i].arrival_us, rb[i].arrival_us);
  }
}

TEST(LoadGen, ArrivalsAreMonotone) {
  for (ArrivalProcess p : {ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    LoadGenOptions options;
    options.seed = 7;
    options.arrival = p;
    options.num_requests = 200;
    const auto reqs = LoadGenerator(options).GenerateAll();
    ASSERT_EQ(reqs.size(), 200u);
    for (size_t i = 1; i < reqs.size(); ++i) {
      EXPECT_GE(reqs[i].arrival_us, reqs[i - 1].arrival_us)
          << ArrivalProcessName(p);
    }
  }
}

TEST(LoadGen, PoissonHitsOfferedRate) {
  LoadGenOptions options;
  options.seed = 3;
  options.offered_rps = 1000.0;  // mean gap 1000 us
  options.num_requests = 5000;
  const auto reqs = LoadGenerator(options).GenerateAll();
  const double mean_gap =
      reqs.back().arrival_us / static_cast<double>(reqs.size());
  EXPECT_NEAR(mean_gap, 1000.0, 50.0);
}

TEST(LoadGen, BurstyPreservesRateAndBunchesArrivals) {
  LoadGenOptions options;
  options.seed = 11;
  options.offered_rps = 1000.0;
  options.arrival = ArrivalProcess::kBursty;
  options.mean_burst = 5.0;
  options.num_requests = 5000;
  const auto reqs = LoadGenerator(options).GenerateAll();
  const double mean_gap =
      reqs.back().arrival_us / static_cast<double>(reqs.size());
  // Same long-run rate as Poisson (looser tolerance: burst-size variance).
  EXPECT_NEAR(mean_gap, 1000.0, 150.0);
  // ... but arrivals bunch: many consecutive pairs share a timestamp.
  int64_t simultaneous = 0;
  for (size_t i = 1; i < reqs.size(); ++i) {
    if (reqs[i].arrival_us == reqs[i - 1].arrival_us) {
      ++simultaneous;
    }
  }
  EXPECT_GT(simultaneous, static_cast<int64_t>(reqs.size()) / 2)
      << "mean burst 5 => ~4/5 of arrivals share an epoch timestamp";
}

TEST(LoadGen, LengthDistributionsRespectBounds) {
  LoadGenOptions options;
  options.seed = 5;
  options.num_requests = 500;
  options.prompt = LengthDist::Uniform(3, 9);
  options.decode = LengthDist::Bimodal(2, 40, 0.25);
  const auto reqs = LoadGenerator(options).GenerateAll();
  int64_t long_decodes = 0;
  for (const auto& r : reqs) {
    EXPECT_GE(r.prompt_tokens, 3);
    EXPECT_LE(r.prompt_tokens, 9);
    EXPECT_TRUE(r.decode_tokens == 2 || r.decode_tokens == 40);
    long_decodes += r.decode_tokens == 40 ? 1 : 0;
  }
  EXPECT_GT(long_decodes, 60);
  EXPECT_LT(long_decodes, 200);

  options.prompt = LengthDist::Fixed(6);
  for (const auto& r : LoadGenerator(options).GenerateAll()) {
    EXPECT_EQ(r.prompt_tokens, 6);
  }
}

TEST(LoadGen, RejectsBadOptions) {
  LoadGenOptions options;
  options.offered_rps = 0.0;
  EXPECT_THROW(LoadGenerator{options}, CheckError);
  options.offered_rps = 100.0;
  options.prompt = LengthDist::Fixed(0);  // empty prompts are not requests
  EXPECT_THROW(LoadGenerator{options}, CheckError);
  options.prompt = LengthDist::Fixed(4);
  options.mean_burst = 0.5;
  EXPECT_THROW(LoadGenerator{options}, CheckError);
}

// ---- continuous batcher ----------------------------------------------------

TEST(Batcher, DecodePreemptsPrefillAndChunksPrompts) {
  ContinuousBatcher b(BatcherOptions{.token_budget = 4});
  // Request 0: prompt 6, decode 2. Alone, it prefills in chunks 4 + 2.
  b.Admit(Req(0, /*prompt=*/6, /*decode=*/2));
  BatchPlan p1 = b.Pack();
  ASSERT_EQ(p1.entries.size(), 1u);
  EXPECT_FALSE(p1.entries[0].decode);
  EXPECT_EQ(p1.entries[0].num_tokens, 4);
  b.Complete(p1);

  // A newcomer shares the next iteration with request 0's prefill tail.
  b.Admit(Req(1, /*prompt=*/5, /*decode=*/0));
  BatchPlan p2 = b.Pack();
  ASSERT_EQ(p2.entries.size(), 2u);
  EXPECT_EQ(p2.entries[0].slot, 0);
  EXPECT_EQ(p2.entries[0].num_tokens, 2);  // finishes prompt 0
  EXPECT_EQ(p2.entries[1].slot, 1);
  EXPECT_EQ(p2.entries[1].num_tokens, 2);  // leftover budget, chunked
  b.Complete(p2);

  // Request 0 now decodes; decode outranks request 1's remaining prefill.
  BatchPlan p3 = b.Pack();
  ASSERT_EQ(p3.entries.size(), 2u);
  EXPECT_TRUE(p3.entries[0].decode);
  EXPECT_EQ(p3.entries[0].slot, 0);
  EXPECT_FALSE(p3.entries[1].decode);
  EXPECT_EQ(p3.entries[1].slot, 1);
  EXPECT_EQ(p3.entries[1].num_tokens, 3);
  const auto finished = b.Complete(p3);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0], 1);  // request 1 had no decode steps
}

TEST(Batcher, MaxActiveGatesAdmission) {
  ContinuousBatcher b(BatcherOptions{.token_budget = 8, .max_active = 2});
  b.Admit(Req(0));
  EXPECT_TRUE(b.CanAdmit());
  b.Admit(Req(1));
  EXPECT_FALSE(b.CanAdmit());
  EXPECT_THROW(b.Admit(Req(2)), CheckError);
  // Finishing a request frees a slot.
  while (b.HasLiveWork()) {
    b.Complete(b.Pack());
  }
  EXPECT_TRUE(b.CanAdmit());
}

// The satellite property suite: randomized request streams through
// Pack/Complete, asserting on EVERY iteration that
//  (a) the per-iteration token budget is never exceeded,
//  (b) decode entries precede prefill entries and each class is in
//      admission (FIFO) order with no skip-ahead,
//  (c) no (request, position) token is lost or duplicated across the run.
TEST(Batcher, RandomizedPackingInvariants) {
  Rng rng(20260729);
  for (int trial = 0; trial < 100; ++trial) {
    const int64_t budget = rng.UniformInt(1, 16);
    const int64_t max_active = rng.UniformInt(0, 6);  // 0 = unbounded
    ContinuousBatcher b(
        BatcherOptions{.token_budget = budget, .max_active = max_active});

    const int64_t num_requests = rng.UniformInt(1, 24);
    std::vector<RequestSpec> pending;
    for (int64_t i = 0; i < num_requests; ++i) {
      pending.push_back(
          Req(i, rng.UniformInt(1, 12), rng.UniformInt(0, 6)));
    }
    std::reverse(pending.begin(), pending.end());  // pop_back admits in order

    // (slot, position) -> scheduled count; filled as plans execute.
    std::map<std::pair<int64_t, int64_t>, int64_t> scheduled;
    std::vector<int64_t> admitted_slots;
    int64_t safety = 0;
    while (!pending.empty() || b.HasLiveWork()) {
      ASSERT_LT(++safety, 10000) << "batcher failed to make progress";
      // Stagger admission: a random number of arrivals join this round.
      int64_t admits = rng.UniformInt(0, 3);
      while (admits-- > 0 && !pending.empty() && b.CanAdmit()) {
        admitted_slots.push_back(b.Admit(pending.back()));
        pending.pop_back();
      }
      if (!b.HasLiveWork()) {
        continue;
      }

      // Eligibility snapshot BEFORE packing, for the FIFO assertions.
      std::vector<int64_t> eligible_decode, eligible_prefill;
      for (int64_t slot : admitted_slots) {
        if (b.finished(slot)) {
          continue;
        }
        const RequestSpec& spec = b.spec(slot);
        if (b.prefill_done(slot) < spec.prompt_tokens) {
          eligible_prefill.push_back(slot);
        } else if (b.decode_done(slot) < spec.decode_tokens) {
          eligible_decode.push_back(slot);
        }
      }

      const BatchPlan plan = b.Pack();
      // (a) budget.
      ASSERT_LE(plan.TotalTokens(), budget);
      // (b) class order + FIFO-without-skipping within each class: the
      // scheduled decode slots must be exactly a PREFIX of the eligible
      // decode slots (in order), and likewise for prefill.
      std::vector<int64_t> got_decode, got_prefill;
      bool seen_prefill = false;
      std::set<int64_t> slots_in_plan;
      for (const BatchEntry& e : plan.entries) {
        ASSERT_GT(e.num_tokens, 0);
        ASSERT_TRUE(slots_in_plan.insert(e.slot).second)
            << "slot " << e.slot << " appears twice in one plan";
        if (e.decode) {
          ASSERT_FALSE(seen_prefill) << "decode entry after prefill entry";
          got_decode.push_back(e.slot);
        } else {
          seen_prefill = true;
          got_prefill.push_back(e.slot);
        }
      }
      ASSERT_LE(got_decode.size(), eligible_decode.size());
      for (size_t i = 0; i < got_decode.size(); ++i) {
        ASSERT_EQ(got_decode[i], eligible_decode[i])
            << "decode class broke FIFO at position " << i;
      }
      ASSERT_LE(got_prefill.size(), eligible_prefill.size());
      for (size_t i = 0; i < got_prefill.size(); ++i) {
        ASSERT_EQ(got_prefill[i], eligible_prefill[i])
            << "prefill class broke FIFO at position " << i;
      }
      // (c) accounting: record each scheduled (slot, position).
      for (const BatchEntry& e : plan.entries) {
        for (int64_t i = 0; i < e.num_tokens; ++i) {
          ++scheduled[{e.slot, e.start_pos + i}];
        }
      }
      b.Complete(plan);
    }

    // (c) every token of every admitted request ran exactly once.
    ASSERT_EQ(admitted_slots.size(), static_cast<size_t>(num_requests));
    for (int64_t slot : admitted_slots) {
      const RequestSpec& spec = b.spec(slot);
      EXPECT_TRUE(b.finished(slot));
      for (int64_t pos = 0; pos < spec.TotalTokens(); ++pos) {
        const auto it = scheduled.find({slot, pos});
        ASSERT_TRUE(it != scheduled.end())
            << "trial " << trial << ": token (" << slot << ", " << pos
            << ") never scheduled";
        EXPECT_EQ(it->second, 1)
            << "trial " << trial << ": token (" << slot << ", " << pos
            << ") scheduled " << it->second << " times";
      }
    }
    const int64_t expected_total = [&] {
      int64_t n = 0;
      for (int64_t slot : admitted_slots) {
        n += b.spec(slot).TotalTokens();
      }
      return n;
    }();
    EXPECT_EQ(static_cast<int64_t>(scheduled.size()), expected_total);
  }
}

// ---- server ----------------------------------------------------------------

ModelConfig ServeModel() {
  ModelConfig m;
  m.name = "serve-tiny";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 32;
  m.ffn_hidden = 64;
  return m;
}

ServeOptions BaseServeOptions(int ep, DType dtype, int num_threads) {
  ServeOptions o;
  o.model = ServeModel();
  o.parallel = ParallelConfig{1, ep};
  o.seed = 1234;
  o.dtype = dtype;
  o.num_threads = num_threads;
  o.token_budget = 16;
  o.max_active = 8;
  o.queue_capacity = 64;
  return o;
}

LoadGenOptions BaseLoadOptions(int64_t n = 24) {
  LoadGenOptions o;
  o.seed = 77;
  o.offered_rps = 2000.0;
  o.num_requests = n;
  o.prompt = LengthDist::Uniform(2, 6);
  o.decode = LengthDist::Uniform(0, 4);
  return o;
}

TEST(Server, ServesEveryRequestToCompletion) {
  MoeServer server(BaseServeOptions(2, DType::kF32, 1), H800Cluster(2));
  LoadGenerator gen(BaseLoadOptions());
  const ServeReport report = server.Serve(gen);

  EXPECT_EQ(report.offered, 24);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()) + report.shed, 24);
  EXPECT_EQ(report.shed, 0) << "this load is far below capacity";
  EXPECT_GT(report.iterations, 0);
  EXPECT_GT(report.batched_tokens, 0);
  EXPECT_GT(report.throughput_tokens_per_s, 0.0);
  EXPECT_GT(server.executor().batch_profile_entries(), 0u)
      << "RunBatch should be filling the adaptive profile cache";

  for (const RequestRecord& r : report.completed) {
    EXPECT_GE(r.queue_wait_us, 0.0);
    // The first token cannot precede the first scheduling.
    EXPECT_GT(r.ttft_us, r.queue_wait_us);
    EXPECT_GE(r.e2e_us, r.ttft_us);
    EXPECT_NE(r.output_digest, Fnv1aInit()) << "request produced no output";
    if (r.decode_tokens == 0) {
      EXPECT_EQ(r.e2e_us, r.ttft_us);
      EXPECT_EQ(r.mean_itl_us, 0.0);
    } else {
      EXPECT_GT(r.mean_itl_us, 0.0);
    }
  }
  // Percentile summaries cover all completed requests.
  EXPECT_EQ(report.ttft_us.count, report.completed.size());
  EXPECT_LE(report.ttft_us.p50, report.ttft_us.p99);
}

// The acceptance matrix: identical seed/config => bit-identical per-request
// outputs and identical latency metrics at 1 vs 8 threads, across EP {1,4}
// and dtype {f32,bf16}.
TEST(Server, DeterministicAcrossThreadCounts) {
  for (int ep : {1, 4}) {
    for (DType dtype : {DType::kF32, DType::kBF16}) {
      SCOPED_TRACE(std::string("ep=") + std::to_string(ep) +
                   " dtype=" + DTypeName(dtype));
      const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
      MoeServer serial(BaseServeOptions(ep, dtype, 1), H800Cluster(ep));
      MoeServer threaded(BaseServeOptions(ep, dtype, 8), H800Cluster(ep));
      const ServeReport a = serial.Serve(arrivals);
      const ServeReport b = threaded.Serve(arrivals);

      ASSERT_EQ(a.completed.size(), b.completed.size());
      EXPECT_EQ(a.shed, b.shed);
      EXPECT_EQ(a.iterations, b.iterations);
      EXPECT_EQ(a.batched_tokens, b.batched_tokens);
      EXPECT_EQ(a.padding_tokens, b.padding_tokens);
      for (size_t i = 0; i < a.completed.size(); ++i) {
        const RequestRecord& ra = a.completed[i];
        const RequestRecord& rb = b.completed[i];
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_EQ(ra.output_digest, rb.output_digest)
            << "request " << ra.id << " output bits changed with threads";
        // Simulated-clock metrics are doubles computed identically: exact.
        EXPECT_EQ(ra.queue_wait_us, rb.queue_wait_us);
        EXPECT_EQ(ra.ttft_us, rb.ttft_us);
        EXPECT_EQ(ra.e2e_us, rb.e2e_us);
        EXPECT_EQ(ra.mean_itl_us, rb.mean_itl_us);
      }
      EXPECT_EQ(a.combined_digest, b.combined_digest);
      EXPECT_EQ(a.sim_duration_us, b.sim_duration_us);
      EXPECT_EQ(a.ttft_us.p50, b.ttft_us.p50);
      EXPECT_EQ(a.ttft_us.p95, b.ttft_us.p95);
      EXPECT_EQ(a.ttft_us.p99, b.ttft_us.p99);
      EXPECT_EQ(a.itl_us.p99, b.itl_us.p99);
      EXPECT_EQ(a.queue_wait_us.p99, b.queue_wait_us.p99);
      EXPECT_EQ(a.e2e_us.p99, b.e2e_us.p99);
    }
  }
}

// Per-request outputs do not depend on batch composition: the same request
// stream served with a different token budget (hence different batch
// shapes, padding and iteration count) produces the same per-request
// digests. Latency metrics of course move; the BITS of each request's
// outputs must not -- content-based routing and coordinate-ordered
// reductions make each token's result independent of its batch neighbors.
TEST(Server, OutputsIndependentOfBatchComposition) {
  // Arrivals bunch tightly so the token budget actually shapes the batches.
  LoadGenOptions load = BaseLoadOptions(16);
  load.arrival = ArrivalProcess::kBursty;
  load.mean_burst = 8.0;
  load.offered_rps = 50000.0;
  const auto arrivals = LoadGenerator(load).GenerateAll();
  ServeOptions small = BaseServeOptions(2, DType::kF32, 1);
  small.token_budget = 8;
  ServeOptions large = BaseServeOptions(2, DType::kF32, 1);
  large.token_budget = 32;
  const ServeReport a = MoeServer(small, H800Cluster(2)).Serve(arrivals);
  const ServeReport b = MoeServer(large, H800Cluster(2)).Serve(arrivals);
  ASSERT_EQ(a.completed.size(), b.completed.size());
  EXPECT_NE(a.iterations, b.iterations) << "budgets too close to differ";
  for (size_t i = 0; i < a.completed.size(); ++i) {
    EXPECT_EQ(a.completed[i].output_digest, b.completed[i].output_digest)
        << "request " << a.completed[i].id;
  }
}

TEST(Server, ShedsUnderOverload) {
  ServeOptions options = BaseServeOptions(1, DType::kF32, 1);
  options.queue_capacity = 4;
  options.max_active = 2;
  options.token_budget = 4;
  LoadGenOptions load = BaseLoadOptions(64);
  // Everything arrives in one burst: far beyond queue + batcher capacity.
  load.arrival = ArrivalProcess::kBursty;
  load.mean_burst = 64.0;
  load.offered_rps = 1e6;
  MoeServer server(options, H800Cluster(1));
  LoadGenerator gen(load);
  const ServeReport report = server.Serve(gen);
  EXPECT_GT(report.shed, 0);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()) + report.shed, 64);
}

TEST(Server, SloAccounting) {
  const auto arrivals = LoadGenerator(BaseLoadOptions(16)).GenerateAll();
  // No SLO configured: attainment is trivially 1.
  ServeOptions no_slo = BaseServeOptions(1, DType::kF32, 1);
  const ServeReport r0 = MoeServer(no_slo, H800Cluster(1)).Serve(arrivals);
  EXPECT_EQ(r0.slo_attainment, 1.0);
  EXPECT_EQ(r0.slo_violations, 0);

  // Generous SLO: everything meets it.
  ServeOptions generous = BaseServeOptions(1, DType::kF32, 1);
  generous.slo = SloTargets{.ttft_us = 1e12, .itl_us = 1e12};
  const ServeReport r1 = MoeServer(generous, H800Cluster(1)).Serve(arrivals);
  EXPECT_EQ(r1.slo_attainment, 1.0);
  EXPECT_EQ(r1.slo_violations, 0);

  // Impossible TTFT: nothing does.
  ServeOptions harsh = BaseServeOptions(1, DType::kF32, 1);
  harsh.slo = SloTargets{.ttft_us = 1e-3};
  const ServeReport r2 = MoeServer(harsh, H800Cluster(1)).Serve(arrivals);
  EXPECT_EQ(r2.slo_attainment, 0.0);
  EXPECT_EQ(r2.slo_violations,
            static_cast<int64_t>(r2.completed.size()) + r2.shed);
}

// ---- fail-fast signal timeout (satellite) ----------------------------------

TEST(SignalTimeout, ExecutorRejectsNonPositiveTimeout) {
  EXPECT_THROW(CometExecutor(CometOptions{.signal_wait_timeout_ms = 0}),
               CheckError);
  EXPECT_THROW(CometExecutor(CometOptions{.signal_wait_timeout_ms = -5}),
               CheckError);
}

TEST(SignalTimeout, ShortTimeoutFailsFastOnWedgedSignal) {
  SymmetricHeap heap(2);
  const auto sig = heap.AllocateSignals("wedged", 1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(heap.WaitUntilSignalGe(sig, 0, 0, 1, /*timeout_ms=*/30),
               CheckError);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // The old hardcoded default waited 60 s; a configured 30 ms bound must
  // surface the wedge within CI noise of that bound.
  EXPECT_LT(elapsed_s, 5.0);
}

TEST(SignalTimeout, ServingRunHonorsConfiguredTimeout) {
  // A healthy run with a tight (but sufficient) bound completes: the option
  // threads through MoeServer -> CometOptions -> WaitUntilSignalGe without
  // tripping on live producers.
  ServeOptions options = BaseServeOptions(4, DType::kF32, 8);
  options.signal_wait_timeout_ms = 5'000;
  MoeServer server(options, H800Cluster(4));
  LoadGenerator gen(BaseLoadOptions(8));
  const ServeReport report = server.Serve(gen);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), 8);
}

}  // namespace
}  // namespace comet
