// Thread pool: startup/shutdown, exact index coverage, exception
// propagation, nesting -- and the determinism contract the parallel
// functional plane rests on: GroupGEMM results are bit-identical at 1 vs N
// threads for all three transpose variants.
#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "moe/group_gemm.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

TEST(ThreadPool, StartupShutdown) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // Destruction with queued-but-finished work and repeated construction must
  // not hang or leak threads (run a quick op through each).
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 100, 1, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, ClampsNonPositiveThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.num_threads(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t range : {0, 1, 3, 4, 5, 64, 1000}) {
    for (int64_t grain : {1, 7, 100}) {
      std::vector<std::atomic<int>> hits(static_cast<size_t>(range));
      pool.ParallelFor(0, range, grain,
                       [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
      for (int64_t i = 0; i < range; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "index " << i << " range " << range << " grain " << grain;
      }
    }
  }
}

TEST(ThreadPool, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(20);
  pool.ParallelFor(5, 17, 1, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), (i >= 5 && i < 17) ? 1 : 0);
  }
}

TEST(ThreadPool, ParallelForChunksPartitionIsDisjointAndComplete) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> chunks{0};
  pool.ParallelForChunks(0, 100, 1, [&](int64_t b, int64_t e) {
    EXPECT_LT(b, e);
    ++chunks;
    for (int64_t i = b; i < e; ++i) {
      hits[static_cast<size_t>(i)]++;
    }
  });
  EXPECT_LE(chunks.load(), 4);
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, GrainLimitsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelForChunks(0, 10, 5, [&](int64_t, int64_t) { ++chunks; });
  // ceil(10 / 5) = 2 chunks at most, despite 8 workers.
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPool, MaxChunksCapsFanout) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.ParallelForChunks(0, 1000, 1, [&](int64_t, int64_t) { ++chunks; }, 2);
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](int64_t i) {
                         if (i == 7) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // CheckError from task bodies surfaces too (the functional plane throws
  // CheckError on schedule bugs).
  EXPECT_THROW(pool.ParallelFor(0, 8, 1,
                                [&](int64_t i) { COMET_CHECK_LT(i, 4); }),
               CheckError);
  // The pool stays usable after a failed region.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 10, 1, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(0, 8, 1, [&](int64_t outer) {
    // Nested region: must complete inline without deadlock.
    pool.ParallelFor(0, 8, 1, [&](int64_t inner) {
      hits[static_cast<size_t>(outer * 8 + inner)]++;
    });
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ScopedThreadLimitCapsGlobalParallelFor) {
  SetGlobalThreadCount(8);
  std::atomic<int> chunks{0};
  {
    ScopedThreadLimit limit(2);
    ParallelForChunks(0, 1000, 1, [&](int64_t, int64_t) { ++chunks; });
    EXPECT_LE(chunks.load(), 2);
    // Nested scopes keep the smallest cap.
    chunks = 0;
    {
      ScopedThreadLimit wider(4);
      ParallelForChunks(0, 1000, 1, [&](int64_t, int64_t) { ++chunks; });
      EXPECT_LE(chunks.load(), 2);
    }
  }
  // Cap lifts with the scope.
  chunks = 0;
  ParallelForChunks(0, 1000, 1, [&](int64_t, int64_t) { ++chunks; });
  EXPECT_LE(chunks.load(), 8);
  EXPECT_GT(chunks.load(), 2);
  SetGlobalThreadCount(1);
}

TEST(ThreadPool, GlobalPoolResize) {
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadCount(), 3);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 100, 1, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
  SetGlobalThreadCount(1);
  EXPECT_EQ(GlobalThreadCount(), 1);
}

// ---- determinism: 1 thread vs N threads, all three transpose variants -----

TEST(ThreadPoolDeterminism, GroupGemmBitIdenticalAcrossThreadCounts) {
  // Odd sizes on purpose: exercises the microkernels' edge blocks in
  // different positions depending on the chunking.
  const int64_t m = 67, k = 96, n = 51;
  Rng rng(11);
  const Tensor a = Tensor::Randn(Shape{m, k}, rng);
  const Tensor b = Tensor::Randn(Shape{k, n}, rng);     // for NN
  const Tensor bt = Tensor::Randn(Shape{n, k}, rng);    // for NT
  const Tensor btn = Tensor::Randn(Shape{m, n}, rng);   // for TN

  SetGlobalThreadCount(1);
  Tensor c_nn_1(Shape{m, n}), c_nt_1(Shape{m, n}), c_tn_1(Shape{k, n});
  Gemm(a, b, c_nn_1);
  GemmNT(a, bt, c_nt_1);
  GemmTN(a, btn, c_tn_1);

  for (int threads : {2, 4, 8}) {
    SetGlobalThreadCount(threads);
    Tensor c_nn(Shape{m, n}), c_nt(Shape{m, n}), c_tn(Shape{k, n});
    Gemm(a, b, c_nn);
    GemmNT(a, bt, c_nt);
    GemmTN(a, btn, c_tn);
    EXPECT_EQ(Tensor::MaxAbsDiff(c_nn_1, c_nn), 0.0f) << threads << " threads (NN)";
    EXPECT_EQ(Tensor::MaxAbsDiff(c_nt_1, c_nt), 0.0f) << threads << " threads (NT)";
    EXPECT_EQ(Tensor::MaxAbsDiff(c_tn_1, c_tn), 0.0f) << threads << " threads (TN)";
  }
  SetGlobalThreadCount(1);
}

TEST(ThreadPoolDeterminism, GroupedProblemBitIdenticalAcrossThreadCounts) {
  // The grouped tile path (what the COMET executor dispatches): run the
  // full tile list serially, then at 8 threads, and demand bit equality.
  const int64_t k = 72, n = 48;
  Rng rng(21);
  std::vector<Tensor> a_store, b_store, c_serial, c_parallel;
  GroupGemmProblem serial, parallel;
  for (int64_t g = 0; g < 4; ++g) {
    a_store.push_back(Tensor::Randn(Shape{40 + 9 * g, k}, rng));
    b_store.push_back(Tensor::Randn(Shape{k, n}, rng));
    c_serial.emplace_back(Shape{a_store.back().rows(), n});
    c_parallel.emplace_back(Shape{a_store.back().rows(), n});
  }
  for (size_t g = 0; g < a_store.size(); ++g) {
    serial.a.push_back(&a_store[g]);
    serial.b.push_back(&b_store[g]);
    serial.c.push_back(&c_serial[g]);
    parallel.a.push_back(&a_store[g]);
    parallel.b.push_back(&b_store[g]);
    parallel.c.push_back(&c_parallel[g]);
  }
  const auto tiles = EnumerateTiles(serial, 16, 16);

  SetGlobalThreadCount(1);
  RunGroupGemm(serial, tiles);
  SetGlobalThreadCount(8);
  RunGroupGemm(parallel, tiles);
  SetGlobalThreadCount(1);

  for (size_t g = 0; g < c_serial.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(c_serial[g], c_parallel[g]), 0.0f)
        << "group " << g;
  }
}

}  // namespace
}  // namespace comet
