// The telemetry-plane test tier (docs/ARCHITECTURE.md, "The telemetry
// plane").
//
// Four contracts:
//  1. OFF is the default and changes nothing: served digests with the
//     telemetry field default-constructed match the PR 9 goldens.
//  2. ON changes no served bit either: combined digests with telemetry
//     enabled equal the OFF digests at threads {1,8} x EP {1,4}.
//  3. Telemetry output is itself deterministic: the Chrome trace,
//     Prometheus snapshot and JSONL dump are byte-identical across host
//     thread counts, for the single server and for a cluster run with
//     faults, retries, hedging and recovery in play.
//  4. The primitives hold up: the registry is safe under a multi-writer
//     hammer (TSan tier), the span ring overwrites oldest-first without
//     allocating, and the exporters emit well-formed output.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "hw/gpu_spec.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/spans.h"
#include "obs/telemetry.h"
#include "serve/cluster.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/check.h"

namespace comet {
namespace {

// ---- serving scenario (mirrors alloc_test / serve_test helpers) ------------

ModelConfig ServeModel() {
  ModelConfig m;
  m.name = "serve-tiny";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 32;
  m.ffn_hidden = 64;
  return m;
}

ServeOptions BaseServeOptions(int ep, DType dtype, int num_threads,
                              bool telemetry) {
  ServeOptions o;
  o.model = ServeModel();
  o.parallel = ParallelConfig{1, ep};
  o.seed = 1234;
  o.dtype = dtype;
  o.num_threads = num_threads;
  o.token_budget = 16;
  o.max_active = 8;
  o.queue_capacity = 64;
  o.telemetry.enabled = telemetry;
  return o;
}

LoadGenOptions BaseLoadOptions(int64_t n = 24) {
  LoadGenOptions o;
  o.seed = 77;
  o.offered_rps = 2000.0;
  o.num_requests = n;
  o.prompt = LengthDist::Uniform(2, 6);
  o.decode = LengthDist::Uniform(0, 4);
  return o;
}

// Combined digests of the golden load, captured before the telemetry plane
// existed (same values alloc_test pins): digests depend on dtype only.
constexpr uint64_t kGoldenDigestF32 = 0x090039d1a50fb32eULL;
constexpr uint64_t kGoldenDigestBf16 = 0xe7ca02ae05f060c2ULL;

// ---- contract 1 + 2: telemetry never changes a served bit ------------------

TEST(TelemetryOffContract, ServedBitsMatchPreTelemetryGoldens) {
  const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
  for (int ep : {1, 4}) {
    for (DType dtype : {DType::kF32, DType::kBF16}) {
      SCOPED_TRACE(testing::Message()
                   << "ep=" << ep << " dtype=" << DTypeName(dtype));
      MoeServer server(BaseServeOptions(ep, dtype, 1, /*telemetry=*/false),
                       H800Cluster(ep));
      const ServeReport r = server.Serve(arrivals);
      EXPECT_EQ(r.combined_digest, dtype == DType::kF32 ? kGoldenDigestF32
                                                        : kGoldenDigestBf16);
    }
  }
}

TEST(TelemetryOnContract, ServedBitsIdenticalToOffAcrossThreadsAndEp) {
  const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
  for (int num_threads : {1, 8}) {
    for (int ep : {1, 4}) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << num_threads << " ep=" << ep);
      MoeServer on(BaseServeOptions(ep, DType::kF32, num_threads,
                                    /*telemetry=*/true),
                   H800Cluster(ep));
      const ServeReport r = on.Serve(arrivals);
      EXPECT_EQ(r.combined_digest, kGoldenDigestF32)
          << "telemetry ON changed a served bit";
      // And the run actually recorded: the plane must not be trivially off.
      EXPECT_EQ(on.telemetry().metrics().iterations->value(),
                static_cast<uint64_t>(r.iterations));
      EXPECT_EQ(on.telemetry().metrics().requests_completed->value(),
                static_cast<uint64_t>(r.completed.size()));
      EXPECT_GT(on.telemetry().spans().size(), 0u);
    }
  }
}

// ---- contract 3: telemetry output is thread-count invariant ----------------

struct Snapshots {
  std::string trace;
  std::string prometheus;
  std::string jsonl;
};

Snapshots ServerSnapshots(int num_threads, int ep) {
  const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
  MoeServer server(
      BaseServeOptions(ep, DType::kF32, num_threads, /*telemetry=*/true),
      H800Cluster(ep));
  (void)server.Serve(arrivals);
  return Snapshots{server.ExportChromeTrace(), server.ExportPrometheusText(),
                   server.ExportTelemetryJsonl()};
}

TEST(TelemetryDeterminism, ServerSnapshotsByteIdenticalAcrossThreads) {
  for (int ep : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "ep=" << ep);
    const Snapshots t1 = ServerSnapshots(1, ep);
    const Snapshots t8 = ServerSnapshots(8, ep);
    EXPECT_EQ(t1.trace, t8.trace);
    EXPECT_EQ(t1.prometheus, t8.prometheus);
    EXPECT_EQ(t1.jsonl, t8.jsonl);
  }
}

// Cluster scenario with the whole recovery plane active: a mid-run failure,
// a recovery, hedging and backoff retries. The trace must carry the
// dispatcher's story and still be byte-identical across thread counts.
ClusterOptions FaultyClusterOptions(int num_threads) {
  ClusterOptions co;
  co.server = BaseServeOptions(2, DType::kBF16, num_threads,
                               /*telemetry=*/true);
  co.replicas = 2;
  co.placement = PlacementPolicy::kLeastLoaded;
  co.in_flight = InFlightPolicy::kRetryBackoff;
  co.hedge_queue_wait_us = 100.0;
  co.recovery_warmup_us = 300.0;
  return co;
}

// Near-burst arrivals: deep queues when the failure hits, so the death
// drains in-flight work into backoff retries and queued requests hedge.
LoadGenOptions BurstLoadOptions(int64_t n) {
  LoadGenOptions o = BaseLoadOptions(n);
  o.offered_rps = 200000.0;
  return o;
}

Snapshots ClusterSnapshots(int num_threads, uint64_t* digest) {
  const auto arrivals = LoadGenerator(BurstLoadOptions(48)).GenerateAll();
  ClusterOptions co = FaultyClusterOptions(num_threads);
  const double t_last = arrivals.back().arrival_us;
  co.faults.events.push_back({t_last * 0.5, 0, FaultKind::kFail});
  co.faults.events.push_back({t_last * 2.0, 0, FaultKind::kRecover});
  MoeCluster cluster(co, H800Cluster(2));
  const ClusterReport r = cluster.Run(arrivals);
  *digest = r.combined_digest;
  EXPECT_GT(r.replica_failures, 0);
  EXPECT_GT(r.replicas_recovered, 0);
  EXPECT_GT(r.retries, 0) << "failure must land on in-flight work";
  return Snapshots{cluster.ExportChromeTrace(), cluster.ExportPrometheusText(),
                   cluster.ExportTelemetryJsonl()};
}

TEST(TelemetryDeterminism, ClusterWithFaultsByteIdenticalAcrossThreads) {
  uint64_t digest1 = 0, digest8 = 0;
  const Snapshots t1 = ClusterSnapshots(1, &digest1);
  const Snapshots t8 = ClusterSnapshots(8, &digest8);
  EXPECT_EQ(digest1, digest8);
  EXPECT_EQ(t1.trace, t8.trace);
  EXPECT_EQ(t1.prometheus, t8.prometheus);
  EXPECT_EQ(t1.jsonl, t8.jsonl);

  // The trace carries the recovery story: death, recovery, retries and the
  // breaker transitions the failure forced.
  EXPECT_NE(t1.trace.find("\"fault: fail\""), std::string::npos);
  EXPECT_NE(t1.trace.find("\"replica death\""), std::string::npos);
  EXPECT_NE(t1.trace.find("\"replica recover\""), std::string::npos);
  EXPECT_NE(t1.trace.find("\"retry\""), std::string::npos);
  EXPECT_NE(t1.trace.find("\"breaker open\""), std::string::npos);
  // The cluster registry renders unlabeled, replicas labeled.
  EXPECT_NE(t1.prometheus.find("comet_cluster_replica_failures_total 1"),
            std::string::npos);
  EXPECT_NE(t1.prometheus.find("comet_serve_iterations_total{replica=\"0\"}"),
            std::string::npos);
}

// A recovered replica's registry carries its predecessor's totals: the
// fleet-wide iteration count must survive the kRecover swap.
TEST(TelemetryRecovery, RecoveredReplicaCarriesArchivedTotals) {
  uint64_t digest = 0;
  (void)digest;
  const auto arrivals = LoadGenerator(BaseLoadOptions(32)).GenerateAll();
  ClusterOptions co = FaultyClusterOptions(1);
  co.faults.events.push_back(
      {arrivals[arrivals.size() * 2 / 5].arrival_us, 0, FaultKind::kFail});
  co.faults.events.push_back(
      {arrivals[arrivals.size() * 3 / 5].arrival_us, 0, FaultKind::kRecover});
  MoeCluster cluster(co, H800Cluster(2));
  const ClusterReport r = cluster.Run(arrivals);
  ASSERT_GT(r.replicas_recovered, 0);
  uint64_t telemetry_iterations = 0;
  for (int rep = 0; rep < cluster.num_replicas(); ++rep) {
    telemetry_iterations +=
        cluster.replica(rep).telemetry().metrics().iterations->value();
  }
  EXPECT_EQ(telemetry_iterations, static_cast<uint64_t>(r.iterations))
      << "iterations recorded before the kRecover swap were lost";
}

// ---- contract 4: primitives ------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndResetKeepsSchema) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.RegisterCounter("c_total", "a counter");
  obs::Gauge* g = reg.RegisterGauge("g", "a gauge");
  obs::HistogramMetric* h = reg.RegisterHistogram("h", "a histogram");
  c->Add(3);
  g->Set(2.5);
  h->Observe(7.0);
  ASSERT_EQ(reg.entries().size(), 3u);
  reg.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->Snapshot().count(), 0u);
  EXPECT_EQ(reg.entries().size(), 3u) << "reset must keep registrations";
}

TEST(MetricsRegistry, MergeFromAddsCountersAndHistogramsKeepsGauges) {
  obs::MetricsRegistry a, b;
  obs::Counter* ca = a.RegisterCounter("c_total", "");
  obs::Gauge* ga = a.RegisterGauge("g", "");
  obs::HistogramMetric* ha = a.RegisterHistogram("h", "");
  obs::Counter* cb = b.RegisterCounter("c_total", "");
  obs::Gauge* gb = b.RegisterGauge("g", "");
  obs::HistogramMetric* hb = b.RegisterHistogram("h", "");
  ca->Add(5);
  ga->Set(1.0);
  ha->Observe(3.0);
  cb->Add(7);
  gb->Set(9.0);
  hb->Observe(100.0);
  a.MergeFrom(b);
  EXPECT_EQ(ca->value(), 12u);
  EXPECT_EQ(ga->value(), 1.0) << "gauges keep the live incarnation's value";
  EXPECT_EQ(ha->Snapshot().count(), 2u);
  EXPECT_EQ(ha->sum(), 103.0);
  EXPECT_EQ(cb->value(), 7u) << "MergeFrom must not mutate the source";
}

// Multi-writer hammer over one registry: every hot-path operation from 8
// threads at once. Values are integers, so the expected totals are exact.
// TSan runs this tier; a data race here fails CI loudly.
TEST(MetricsRegistry, ConcurrentHammerKeepsExactTotals) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.RegisterCounter("c_total", "");
  obs::Gauge* g = reg.RegisterGauge("g", "");
  obs::HistogramMetric* h = reg.RegisterHistogram("h", "");
  constexpr int kThreads = 8;
  constexpr int kOps = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        c->Add(1);
        g->Set(static_cast<double>(t));
        h->Observe(static_cast<double>(i % 64));
        if (i % 1024 == 0) {
          (void)h->Snapshot();  // concurrent observer
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kOps);
  const Histogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), static_cast<uint64_t>(kThreads) * kOps);
  // Sum of integers < 2^53: exact in double at ANY interleaving.
  double expect_sum = 0.0;
  for (int i = 0; i < kOps; ++i) {
    expect_sum += static_cast<double>(i % 64);
  }
  EXPECT_EQ(snap.sum(), expect_sum * kThreads);
  const double gv = g->value();
  EXPECT_GE(gv, 0.0);
  EXPECT_LT(gv, static_cast<double>(kThreads));
}

TEST(SpanRing, OverwritesOldestAndCountsDrops) {
  obs::SpanRing ring;
  ring.Reserve(4);
  for (int i = 0; i < 6; ++i) {
    ring.Record(obs::SpanKind::kAdmit, static_cast<double>(i),
                static_cast<double>(i), static_cast<uint64_t>(i), 0.0);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<obs::SpanRecord> got;
  ring.AppendTo(&got);
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].id, i + 2) << "oldest-first, oldest two overwritten";
  }
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 4);
}

TEST(SpanRing, ZeroCapacityDropsEverything) {
  obs::SpanRing ring;
  ring.Record(obs::SpanKind::kAdmit, 0.0, 0.0, 1, 0.0);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 1u);
  std::vector<obs::SpanRecord> got;
  ring.AppendTo(&got);
  EXPECT_TRUE(got.empty());
}

TEST(Exporters, ChromeTraceShapeAndLanes) {
  obs::SpanRing ring;
  ring.Reserve(8);
  ring.Record(obs::SpanKind::kIteration, 10.0, 30.0, 1, 16.0);
  ring.Record(obs::SpanKind::kPhaseGating, 12.0, 14.0, 1, 0.0);
  ring.Record(obs::SpanKind::kAdmit, 5.0, 5.0, 42, 6.0);
  obs::MetricsRegistry reg;
  obs::ReplicaTelemetry view;
  view.name = "replica \"zero\"";  // exercises JSON escaping
  view.replica = 0;
  view.live = &ring;
  view.registry = &reg;
  const std::string trace = obs::ToChromeTraceJson({&view, 1});
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(trace.substr(trace.size() - 2), "]}");
  EXPECT_NE(trace.find("\"replica \\\"zero\\\"\""), std::string::npos);
  // Duration span on the iterations lane; instant on the events lane.
  EXPECT_NE(trace.find("\"name\":\"iteration\",\"ph\":\"X\",\"ts\":10,"
                       "\"dur\":20,\"pid\":1,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"admit\",\"ph\":\"i\",\"s\":\"t\",\"ts\":5,"
                       "\"pid\":1,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"gating\""), std::string::npos);
}

TEST(Exporters, PrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.RegisterCounter("demo_total", "demo counter")->Add(41);
  reg.RegisterGauge("demo_gauge", "demo gauge")->Set(0.5);
  obs::HistogramMetric* h = reg.RegisterHistogram("demo_us", "demo histogram");
  for (int i = 1; i <= 100; ++i) {
    h->Observe(static_cast<double>(i));
  }
  obs::ReplicaTelemetry view;
  view.replica = 0;
  view.registry = &reg;
  const std::string text = obs::ToPrometheusText({&view, 1});
  EXPECT_NE(text.find("# HELP demo_total demo counter\n"
                      "# TYPE demo_total counter\n"
                      "demo_total{replica=\"0\"} 41\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_gauge{replica=\"0\"} 0.5\n"), std::string::npos);
  // Histograms render as summaries: nearest-rank upper bounds + sum/count.
  EXPECT_NE(text.find("# TYPE demo_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("demo_us{replica=\"0\",quantile=\"0.5\"} 64\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_us_sum{replica=\"0\"} 5050\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_us_count{replica=\"0\"} 100\n"),
            std::string::npos);
}

TEST(Exporters, JsonlOneRecordPerLine) {
  obs::SpanRing ring;
  ring.Reserve(4);
  ring.Record(obs::SpanKind::kIteration, 0.0, 10.0, 1, 4.0);
  ring.Record(obs::SpanKind::kComplete, 10.0, 10.0, 7, 0.0);
  obs::ReplicaTelemetry view;
  view.replica = 2;
  view.live = &ring;
  const std::string jsonl = obs::ToJsonl({&view, 1});
  EXPECT_EQ(jsonl,
            "{\"replica\":2,\"kind\":\"iteration\",\"start_us\":0,"
            "\"end_us\":10,\"id\":1,\"value\":4}\n"
            "{\"replica\":2,\"kind\":\"complete\",\"start_us\":10,"
            "\"end_us\":10,\"id\":7,\"value\":0}\n");
}

}  // namespace
}  // namespace comet
