// Unit tests for the MoE substrate: configs/placement, routers, route plans,
// GroupGEMM tiles, activations, sharded weights and the reference layers.
#include <gtest/gtest.h>

#include <cmath>

#include "moe/activation.h"
#include "moe/config.h"
#include "moe/expert_weights.h"
#include "moe/group_gemm.h"
#include "moe/reference_layer.h"
#include "moe/route_plan.h"
#include "moe/router.h"
#include "moe/workload.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

// ---- config / placement ------------------------------------------------------

TEST(ModelConfig, Table2Presets) {
  const ModelConfig mixtral = Mixtral8x7B();
  EXPECT_EQ(mixtral.layers, 32);
  EXPECT_EQ(mixtral.num_experts, 8);
  EXPECT_EQ(mixtral.topk, 2);
  EXPECT_EQ(mixtral.embedding, 4096);
  EXPECT_EQ(mixtral.ffn_hidden, 14336);

  const ModelConfig qwen = Qwen2Moe();
  EXPECT_EQ(qwen.layers, 24);
  EXPECT_EQ(qwen.num_experts, 64);
  EXPECT_EQ(qwen.topk, 4);
  EXPECT_EQ(qwen.embedding, 2048);
  EXPECT_EQ(qwen.ffn_hidden, 1408);

  const ModelConfig phi = Phi35Moe();
  EXPECT_EQ(phi.layers, 32);
  EXPECT_EQ(phi.num_experts, 16);
  EXPECT_EQ(phi.topk, 2);
  EXPECT_EQ(phi.embedding, 4096);
  EXPECT_EQ(phi.ffn_hidden, 6400);
}

TEST(Placement, RankAndGroupArithmetic) {
  const Placement p(Mixtral8x7B(), ParallelConfig{2, 4}, 1024);
  EXPECT_EQ(p.world(), 8);
  EXPECT_EQ(p.tokens_per_group(), 256);
  EXPECT_EQ(p.EpGroupOfRank(5), 2);
  EXPECT_EQ(p.TpLaneOfRank(5), 1);
  EXPECT_EQ(p.RankOf(2, 1), 5);
  EXPECT_EQ(p.ExpertsPerGroup(), 2);
  EXPECT_EQ(p.EpGroupOfExpert(5), 2);
  EXPECT_EQ(p.FirstRankOfExpert(5), 4);
  EXPECT_TRUE(p.RankOwnsExpert(5, 5));
  EXPECT_FALSE(p.RankOwnsExpert(0, 5));
  EXPECT_EQ(p.LocalExpertIndex(5), 1);
  EXPECT_EQ(p.GlobalExpertIndex(5, 1), 5);
  EXPECT_EQ(p.HiddenPerTpRank(), 14336 / 2);
  EXPECT_EQ(p.HomeGroupOfToken(700), 2);
  EXPECT_EQ(p.FirstTokenOfGroup(2), 512);
}

TEST(Placement, ValidatesDivisibility) {
  EXPECT_THROW(Placement(Mixtral8x7B(), ParallelConfig{1, 3}, 1024),
               CheckError);  // E=8 not divisible by EP=3
  EXPECT_THROW(Placement(Mixtral8x7B(), ParallelConfig{1, 8}, 1021),
               CheckError);  // M not divisible by EP
  ModelConfig odd = Mixtral8x7B();
  odd.ffn_hidden = 14337;
  EXPECT_THROW(Placement(odd, ParallelConfig{2, 4}, 1024), CheckError);
}

// ---- routers -------------------------------------------------------------------

TEST(GateNetwork, SelectsTopKByProbability) {
  // Gate weight designed so expert j's logit = j * sum(x) for positive x.
  Tensor gate(Shape{2, 4});
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t e = 0; e < 4; ++e) {
      gate.at({n, e}) = static_cast<float>(e);
    }
  }
  GateNetwork network(std::move(gate));
  Tensor tokens = Tensor::Full(Shape{3, 2}, 1.0f);
  const RoutingTable table = network.Route(tokens, 2);
  table.Validate(4, 2);
  for (const auto& t : table.tokens) {
    EXPECT_EQ(t.experts[0], 3);  // highest logit
    EXPECT_EQ(t.experts[1], 2);
    EXPECT_GT(t.weights[0], t.weights[1]);
  }
}

TEST(GateNetwork, WeightsAreNormalized) {
  Rng rng(3);
  GateNetwork network(Tensor::Randn(Shape{8, 6}, rng));
  const Tensor tokens = Tensor::Randn(Shape{5, 8}, rng);
  const RoutingTable table = network.Route(tokens, 3);
  table.Validate(6, 3);
}

TEST(SyntheticRouter, UniformLoadGivesLowStd) {
  SyntheticRouter router(std::vector<double>(8, 1.0 / 8), 11);
  const RoutingTable table = router.Route(20000, 2);
  table.Validate(8, 2);
  EXPECT_LT(table.LoadStd(8), 0.01);
}

TEST(SyntheticRouter, SkewedLoadTracksTarget) {
  Rng rng(12);
  const double target = 0.04;
  SyntheticRouter router(rng.LoadVectorWithStd(8, target), 13);
  const RoutingTable table = router.Route(20000, 2);
  // Sampling without replacement flattens the distribution a little, so the
  // achieved std is close to but usually under the target.
  EXPECT_NEAR(table.LoadStd(8), target, 0.02);
  EXPECT_GT(table.LoadStd(8), 0.015);
}

TEST(RoutingTable, ValidateCatchesDuplicates) {
  RoutingTable table;
  table.tokens.push_back(TokenRoute{{1, 1}, {0.5f, 0.5f}});
  EXPECT_THROW(table.Validate(4, 2), CheckError);
}

TEST(RoutingTable, ValidateCatchesBadWeightSum) {
  RoutingTable table;
  table.tokens.push_back(TokenRoute{{0, 1}, {0.9f, 0.5f}});
  EXPECT_THROW(table.Validate(4, 2), CheckError);
}

TEST(RoutingTable, ExpertLoadsCountPairs) {
  RoutingTable table;
  table.tokens.push_back(TokenRoute{{0, 1}, {0.5f, 0.5f}});
  table.tokens.push_back(TokenRoute{{0, 2}, {0.5f, 0.5f}});
  const auto loads = table.ExpertLoads(4);
  EXPECT_EQ(loads[0], 2);
  EXPECT_EQ(loads[1], 1);
  EXPECT_EQ(loads[3], 0);
}

// ---- route plan -----------------------------------------------------------------

class RoutePlanTest : public ::testing::Test {
 protected:
  static MoeWorkload Make(int tp, int ep, int64_t tokens) {
    ModelConfig model;
    model.name = "t";
    model.layers = 1;
    model.num_experts = 8;
    model.topk = 2;
    model.embedding = 16;
    model.ffn_hidden = 32;
    WorkloadOptions options;
    options.seed = 5;
    options.materialize = false;
    return MakeWorkload(model, ParallelConfig{tp, ep}, tokens, options);
  }
};

TEST_F(RoutePlanTest, RowsCoverEveryPairExactlyOnce) {
  const MoeWorkload w = Make(1, 4, 64);
  int64_t total_rows = 0;
  for (int g = 0; g < 4; ++g) {
    total_rows += w.plan.ForGroup(g).TotalRows();
  }
  EXPECT_EQ(total_rows, 64 * 2);  // M * topk
}

TEST_F(RoutePlanTest, RowsAreTokenSortedPerExpert) {
  const MoeWorkload w = Make(1, 4, 64);
  for (int g = 0; g < 4; ++g) {
    for (const auto& slice : w.plan.ForGroup(g).experts) {
      for (size_t i = 1; i < slice.rows.size(); ++i) {
        EXPECT_LT(slice.rows[i - 1].token, slice.rows[i].token);
      }
    }
  }
}

TEST_F(RoutePlanTest, TpLanesShareThePlan) {
  const MoeWorkload w = Make(2, 2, 32);
  EXPECT_EQ(&w.plan.ForRank(0), &w.plan.ForRank(1));  // lanes of group 0
  EXPECT_EQ(&w.plan.ForRank(2), &w.plan.ForRank(3));
  EXPECT_NE(&w.plan.ForRank(0), &w.plan.ForRank(2));
}

TEST_F(RoutePlanTest, DispatchBytesLaneMatched) {
  const MoeWorkload w = Make(2, 2, 32);
  const auto bytes = w.plan.DispatchBytes(1.0);
  const int world = 4;
  for (int i = 0; i < world; ++i) {
    EXPECT_DOUBLE_EQ(bytes[static_cast<size_t>(i)][static_cast<size_t>(i)], 0.0);
    for (int j = 0; j < world; ++j) {
      if (i % 2 != j % 2) {
        // Cross-lane traffic never happens.
        EXPECT_DOUBLE_EQ(bytes[static_cast<size_t>(i)][static_cast<size_t>(j)],
                         0.0);
      }
    }
  }
}

TEST_F(RoutePlanTest, DispatchTotalsMatchRemoteRows) {
  const MoeWorkload w = Make(1, 4, 64);
  const auto bytes = w.plan.DispatchBytes(1.0);
  for (int r = 0; r < 4; ++r) {
    double incoming = 0.0;
    for (int s = 0; s < 4; ++s) {
      incoming += bytes[static_cast<size_t>(s)][static_cast<size_t>(r)];
    }
    EXPECT_DOUBLE_EQ(incoming, static_cast<double>(w.plan.RemoteRows(r)));
  }
}

TEST_F(RoutePlanTest, EpReturnMirrorsDispatch) {
  const MoeWorkload w = Make(1, 4, 64);
  const auto dispatch = w.plan.DispatchBytes(2.0);
  const auto ret = w.plan.EpReturnBytes(2.0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(ret[static_cast<size_t>(i)][static_cast<size_t>(j)],
                       dispatch[static_cast<size_t>(j)][static_cast<size_t>(i)]);
    }
  }
}

TEST_F(RoutePlanTest, TpReduceScatterBytes) {
  const MoeWorkload w2 = Make(2, 2, 32);
  // (TP-1)/TP * tokens_per_group * bytes_per_row = 1/2 * 16 * 4.
  EXPECT_DOUBLE_EQ(w2.plan.TpReduceScatterBytesPerRank(4.0), 32.0);
  const MoeWorkload w1 = Make(1, 4, 64);
  EXPECT_DOUBLE_EQ(w1.plan.TpReduceScatterBytesPerRank(4.0), 0.0);
}

TEST_F(RoutePlanTest, GemmProblemShapes) {
  const MoeWorkload w = Make(2, 2, 32);
  const auto p0 = w.plan.Layer0Problems(0);
  const auto p1 = w.plan.Layer1Problems(0);
  ASSERT_EQ(p0.size(), 4u);  // E/EP = 4 local experts
  EXPECT_EQ(p0[0].n, 16);    // K/TP = 32/2
  EXPECT_EQ(p0[0].k, 16);    // N
  EXPECT_EQ(p1[0].n, 16);    // N
  EXPECT_EQ(p1[0].k, 16);    // K/TP
  EXPECT_EQ(p0[0].m, p1[0].m);
}

// ---- group gemm -----------------------------------------------------------------

TEST(GroupGemm, MatchesNaiveGemm) {
  Rng rng(21);
  const Tensor a = Tensor::Randn(Shape{7, 5}, rng);
  const Tensor b = Tensor::Randn(Shape{5, 9}, rng);
  Tensor c(Shape{7, 9});
  Gemm(a, b, c);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 9; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < 5; ++k) {
        acc += a.at({i, k}) * b.at({k, j});
      }
      EXPECT_NEAR(c.at({i, j}), acc, 1e-4f);
    }
  }
}

TEST(GroupGemm, TileExecutionEqualsWhole) {
  Rng rng(22);
  const Tensor a = Tensor::Randn(Shape{13, 8}, rng);
  const Tensor b = Tensor::Randn(Shape{8, 11}, rng);
  Tensor whole(Shape{13, 11});
  Gemm(a, b, whole);
  Tensor tiled(Shape{13, 11});
  for (int64_t r = 0; r < 13; r += 4) {
    for (int64_t cc = 0; cc < 11; cc += 3) {
      GemmTile(a, b, tiled, r, std::min<int64_t>(r + 4, 13), cc,
               std::min<int64_t>(cc + 3, 11));
    }
  }
  EXPECT_EQ(Tensor::MaxAbsDiff(whole, tiled), 0.0f);
}

TEST(GroupGemm, TileOrderDoesNotChangeResult) {
  Rng rng(23);
  const Tensor a = Tensor::Randn(Shape{12, 6}, rng);
  const Tensor b = Tensor::Randn(Shape{6, 10}, rng);
  GroupGemmProblem problem;
  Tensor c1(Shape{12, 10});
  problem.a = {&a};
  problem.b = {&b};
  problem.c = {&c1};
  const auto tiles = EnumerateTiles(problem, 4, 4);
  RunGroupGemm(problem, tiles);

  Tensor c2(Shape{12, 10});
  problem.c = {&c2};
  auto reversed = tiles;
  std::reverse(reversed.begin(), reversed.end());
  RunGroupGemm(problem, reversed);
  EXPECT_EQ(Tensor::MaxAbsDiff(c1, c2), 0.0f);
}

TEST(GroupGemm, EnumerateCountsTiles) {
  const Tensor a = Tensor::Zeros(Shape{10, 4});
  const Tensor b = Tensor::Zeros(Shape{4, 6});
  Tensor c(Shape{10, 6});
  GroupGemmProblem problem;
  problem.a = {&a};
  problem.b = {&b};
  problem.c = {&c};
  EXPECT_EQ(EnumerateTiles(problem, 4, 4).size(), 6u);  // ceil(10/4)*ceil(6/4)
}

// ---- activation ------------------------------------------------------------------

TEST(Activation, GeluValues) {
  EXPECT_NEAR(GeluScalar(0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(GeluScalar(1.0f), 0.8412f, 1e-3f);
  EXPECT_NEAR(GeluScalar(-1.0f), -0.1588f, 1e-3f);
}

TEST(Activation, SiluValues) {
  EXPECT_NEAR(SiluScalar(0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(SiluScalar(1.0f), 0.7311f, 1e-3f);
}

TEST(Activation, TileApplicationMatchesWhole) {
  Rng rng(31);
  Tensor whole = Tensor::Randn(Shape{6, 8}, rng);
  Tensor tiled = whole;
  ApplyActivation(whole, ActivationKind::kGelu);
  for (int64_t r = 0; r < 6; r += 2) {
    for (int64_t c = 0; c < 8; c += 3) {
      ApplyActivationTile(tiled, ActivationKind::kGelu, r,
                          std::min<int64_t>(r + 2, 6), c,
                          std::min<int64_t>(c + 3, 8));
    }
  }
  EXPECT_EQ(Tensor::MaxAbsDiff(whole, tiled), 0.0f);
}

TEST(Activation, ReluAndIdentity) {
  Tensor t = Tensor::Full(Shape{1, 2}, -1.0f);
  Tensor id = t;
  ApplyActivation(t, ActivationKind::kRelu);
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  ApplyActivation(id, ActivationKind::kIdentity);
  EXPECT_EQ(id.at({0, 0}), -1.0f);
}

// ---- sharded weights --------------------------------------------------------------

TEST(ShardedWeights, ShardsTileTheFullMatrices) {
  ModelConfig model;
  model.num_experts = 2;
  model.topk = 1;
  model.embedding = 4;
  model.ffn_hidden = 8;
  Rng rng(41);
  const ExpertWeights full = ExpertWeights::Random(model, rng);
  const ShardedExpertWeights sharded(full, 2);
  for (int64_t e = 0; e < 2; ++e) {
    for (int t = 0; t < 2; ++t) {
      const Tensor& w0 = sharded.W0Shard(e, t);
      EXPECT_EQ(w0.shape(), Shape({4, 4}));
      for (int64_t r = 0; r < 4; ++r) {
        for (int64_t c = 0; c < 4; ++c) {
          EXPECT_EQ(w0.at({r, c}), full.W0(e).at({r, t * 4 + c}));
        }
      }
      const Tensor& w1 = sharded.W1Shard(e, t);
      EXPECT_EQ(w1.shape(), Shape({4, 4}));
      for (int64_t r = 0; r < 4; ++r) {
        for (int64_t c = 0; c < 4; ++c) {
          EXPECT_EQ(w1.at({r, c}), full.W1(e).at({t * 4 + r, c}));
        }
      }
    }
  }
}

// ---- reference layers ---------------------------------------------------------------

TEST(ReferenceLayer, DenseAndShardedAgreeClosely) {
  ModelConfig model;
  model.name = "t";
  model.layers = 1;
  model.num_experts = 4;
  model.topk = 2;
  model.embedding = 16;
  model.ffn_hidden = 32;
  WorkloadOptions options;
  options.seed = 51;
  const MoeWorkload w =
      MakeWorkload(model, ParallelConfig{2, 2}, 32, options);
  const auto dense = ReferenceMoeLayer(w);
  const auto sharded = ShardedReferenceMoeLayer(w);
  ASSERT_EQ(dense.size(), sharded.size());
  for (size_t g = 0; g < dense.size(); ++g) {
    EXPECT_TRUE(Tensor::AllClose(dense[g], sharded[g], 1e-4f, 1e-4f));
  }
}

TEST(ReferenceLayer, TokensWithSameRouteGetSameOutput) {
  ModelConfig model;
  model.name = "t";
  model.layers = 1;
  model.num_experts = 2;
  model.topk = 1;
  model.embedding = 8;
  model.ffn_hidden = 16;
  WorkloadOptions options;
  options.seed = 52;
  MoeWorkload w = MakeWorkload(model, ParallelConfig{1, 1}, 8, options);
  // Force token 0 and 1 identical in input and routing.
  w.inputs[0].SetRow(1, w.inputs[0].row(0));
  w.routing.tokens[1] = w.routing.tokens[0];
  w.plan = RoutePlan(w.placement, w.routing);
  const auto out = ReferenceMoeLayer(w);
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_EQ(out[0].at({0, c}), out[0].at({1, c}));
  }
}

// ---- capacity-limited routing ---------------------------------------------------

TEST(CapacityFactor, EnforcesPerExpertBudget) {
  SyntheticRouter router(std::vector<double>{0.7, 0.1, 0.1, 0.1}, 17);
  RoutingTable table = router.Route(1000, 2);
  const DropStats stats = ApplyCapacityFactor(table, 4, 1.0);
  // capacity = ceil(1.0 * 2000 / 4) = 500 pairs per expert.
  EXPECT_EQ(stats.capacity, 500);
  const auto loads = table.ExpertLoads(4);
  for (int64_t l : loads) {
    EXPECT_LE(l, stats.capacity);
  }
  // The hot expert (p = 0.7) must have overflowed.
  EXPECT_GT(stats.dropped_pairs, 0);
  EXPECT_GT(stats.overflow_per_expert[0], 0);
  table.Validate(4, 2);
}

TEST(CapacityFactor, LargeFactorDropsNothing) {
  SyntheticRouter router(std::vector<double>{0.7, 0.1, 0.1, 0.1}, 17);
  RoutingTable table = router.Route(500, 2);
  const RoutingTable before = table;
  const DropStats stats = ApplyCapacityFactor(table, 4, 8.0);
  EXPECT_EQ(stats.dropped_pairs, 0);
  EXPECT_EQ(stats.fully_dropped_tokens, 0);
  for (size_t t = 0; t < table.tokens.size(); ++t) {
    EXPECT_EQ(table.tokens[t].experts, before.tokens[t].experts);
  }
}

TEST(CapacityFactor, SurvivingWeightsRenormalized) {
  RoutingTable table;
  table.tokens.push_back(TokenRoute{{0, 1}, {0.75f, 0.25f}});
  table.tokens.push_back(TokenRoute{{0, 1}, {0.6f, 0.4f}});
  table.tokens.push_back(TokenRoute{{0, 2}, {0.5f, 0.5f}});
  // 6 pairs, 3 experts, cf = 1/2 -> capacity ceil(6 * 0.5 / 3) = 1.
  const DropStats stats = ApplyCapacityFactor(table, 3, 0.5);
  EXPECT_EQ(stats.capacity, 1);
  // Token 0 keeps both (first come), token 1 loses both to capacity,
  // token 2 keeps only expert 2.
  EXPECT_EQ(table.tokens[0].experts.size(), 2u);
  EXPECT_TRUE(table.tokens[1].experts.empty());
  ASSERT_EQ(table.tokens[2].experts.size(), 1u);
  EXPECT_EQ(table.tokens[2].experts[0], 2);
  EXPECT_FLOAT_EQ(table.tokens[2].weights[0], 1.0f);
  EXPECT_EQ(stats.fully_dropped_tokens, 1);
  EXPECT_EQ(stats.dropped_pairs, 3);
}

TEST(CapacityFactor, DropFraction) {
  DropStats stats;
  stats.dropped_pairs = 25;
  EXPECT_DOUBLE_EQ(stats.DropFraction(100), 0.25);
  EXPECT_DOUBLE_EQ(stats.DropFraction(0), 0.0);
}

TEST(CapacityFactor, DroppedRoutingStillExecutesFunctionally) {
  ModelConfig model;
  model.name = "cap-test";
  model.layers = 1;
  model.num_experts = 4;
  model.topk = 2;
  model.embedding = 16;
  model.ffn_hidden = 24;
  WorkloadOptions options;
  options.seed = 23;
  options.load_std = 0.08;  // heavy imbalance so drops actually happen
  MoeWorkload w = MakeWorkload(model, ParallelConfig{1, 2}, 32, options);
  const DropStats stats = ApplyCapacityFactor(w.routing, 4, 0.75);
  ASSERT_GT(stats.dropped_pairs, 0);
  w.plan = RoutePlan(w.placement, w.routing);

  const auto dense = ReferenceMoeLayer(w);
  const auto sharded = ShardedReferenceMoeLayer(w);
  ASSERT_EQ(dense.size(), 2u);
  for (size_t g = 0; g < dense.size(); ++g) {
    EXPECT_TRUE(Tensor::AllClose(dense[g], sharded[g], 1e-4f, 1e-5f));
  }
}

TEST(CapacityFactor, FullyDroppedTokenOutputsZero) {
  ModelConfig model;
  model.name = "cap-zero";
  model.layers = 1;
  model.num_experts = 2;
  model.topk = 1;
  model.embedding = 8;
  model.ffn_hidden = 8;
  WorkloadOptions options;
  options.seed = 5;
  MoeWorkload w = MakeWorkload(model, ParallelConfig{1, 1}, 4, options);
  // Route everything to expert 0 then cap at 1 pair: tokens 1..3 drop fully.
  for (auto& t : w.routing.tokens) {
    t = TokenRoute{{0}, {1.0f}};
  }
  const DropStats stats = ApplyCapacityFactor(w.routing, 2, 0.5);
  EXPECT_EQ(stats.fully_dropped_tokens, 3);
  w.plan = RoutePlan(w.placement, w.routing);
  const auto out = ReferenceMoeLayer(w);
  for (int64_t t = 1; t < 4; ++t) {
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_EQ(out[0].at({t, c}), 0.0f);
    }
  }
}

// ---- expert-choice routing ------------------------------------------------------

TEST(ExpertChoice, LoadsPerfectlyBalanced) {
  Rng rng(9);
  ExpertChoiceGate gate(Tensor::Randn(Shape{16, 8}, rng));
  const Tensor tokens = Tensor::Randn(Shape{64, 16}, rng);
  const RoutingTable table = gate.Route(tokens, 2);
  // capacity = 64 * 2 / 8 = 16 tokens per expert, exactly.
  const auto loads = table.ExpertLoads(8);
  for (int64_t l : loads) {
    EXPECT_EQ(l, 16);
  }
  EXPECT_DOUBLE_EQ(table.LoadStd(8), 0.0);
}

TEST(ExpertChoice, WeightsNormalizedAndDistinct) {
  Rng rng(10);
  ExpertChoiceGate gate(Tensor::Randn(Shape{8, 4}, rng));
  const Tensor tokens = Tensor::Randn(Shape{32, 8}, rng);
  const RoutingTable table = gate.Route(tokens, 2);
  // A token may be chosen by up to all 4 experts; validate with topk = E.
  table.Validate(4, 4);
}

TEST(ExpertChoice, SomeTokensMayGetNoExpert) {
  // With strong skew, unpopular tokens can end up unrouted -- the documented
  // trade-off of expert choice.
  Rng rng(11);
  ExpertChoiceGate gate(Tensor::Randn(Shape{8, 4}, rng, 2.0f));
  const Tensor tokens = Tensor::Randn(Shape{64, 8}, rng, 2.0f);
  const RoutingTable table = gate.Route(tokens, 1);
  int64_t unrouted = 0;
  int64_t pairs = 0;
  for (const auto& t : table.tokens) {
    unrouted += t.experts.empty() ? 1 : 0;
    pairs += static_cast<int64_t>(t.experts.size());
  }
  EXPECT_EQ(pairs, 64);  // every expert filled its quota
  EXPECT_GT(unrouted, 0);
}

}  // namespace
}  // namespace comet
