// Unit tests of the shared operator cost model (exec/op_costs): the terms
// every executor composes from must scale sensibly, because Figure 9/11
// comparisons only hold if identical work is priced identically.
#include <gtest/gtest.h>

#include "exec/op_costs.h"

namespace comet {
namespace {

class OpCostTest : public ::testing::Test {
 protected:
  const ClusterSpec cluster_ = H800Cluster(8);
  const OpCostModel costs_{cluster_};
};

TEST_F(OpCostTest, GatingScalesWithTokensAndExperts) {
  const double base = costs_.GatingUs(4096, 4096, 8);
  EXPECT_GT(base, 0.0);
  EXPECT_GT(costs_.GatingUs(8192, 4096, 8), base);
  EXPECT_GT(costs_.GatingUs(4096, 4096, 64), base);
}

TEST_F(OpCostTest, ActivationLinearInElements) {
  const double one = costs_.ActivationUs(1024, 1024);
  const double four = costs_.ActivationUs(2048, 2048);
  EXPECT_NEAR(four, 4.0 * one, 4.0 * one * 1e-9);
}

TEST_F(OpCostTest, PermuteCostsMoreThanActivation) {
  // Gather + scatter through HBM vs a single read-write pass.
  EXPECT_GT(costs_.PermuteUs(4096, 4096), costs_.ActivationUs(4096, 4096));
}

TEST_F(OpCostTest, CombineReduceScalesWithTopk) {
  // `rows` is the CONTRIBUTION row count (M * topk): for a fixed token
  // count, larger topk means more rows reduced into the same outputs.
  const int64_t tokens = 8192;
  const double top2 = costs_.CombineReduceUs(tokens * 2, 4096, 2);
  const double top8 = costs_.CombineReduceUs(tokens * 8, 4096, 8);
  EXPECT_GT(top8, top2);
}

TEST_F(OpCostTest, AttentionGrowsSuperlinearlyInSequence) {
  // The score/value term is quadratic in tokens: doubling the sequence must
  // more than double the time.
  const double t1 = costs_.AttentionUs(2048, 4096, 1);
  const double t2 = costs_.AttentionUs(4096, 4096, 1);
  EXPECT_GT(t2, 2.0 * t1);
}

TEST_F(OpCostTest, AttentionTpAddsAllReduceButCutsGemms) {
  // With TP the projections shard (faster) but an all-reduce appears; both
  // configurations must be positive and differ.
  const double tp1 = costs_.AttentionUs(4096, 4096, 1);
  const double tp8 = costs_.AttentionUs(4096, 4096, 8);
  EXPECT_GT(tp1, 0.0);
  EXPECT_GT(tp8, 0.0);
  EXPECT_NE(tp1, tp8);
}

TEST_F(OpCostTest, LaunchMatchesGpuSpec) {
  EXPECT_DOUBLE_EQ(costs_.LaunchUs(), cluster_.gpu.kernel_launch_us);
}

TEST_F(OpCostTest, BytesPerElementDefaultsToBf16) {
  EXPECT_DOUBLE_EQ(costs_.bytes_per_element(), 2.0);
  const OpCostModel fp32(cluster_, 4.0);
  EXPECT_DOUBLE_EQ(fp32.bytes_per_element(), 4.0);
}

TEST_F(OpCostTest, L20SlowerThanH800Everywhere) {
  const OpCostModel l20{L20Cluster(8)};
  EXPECT_GT(l20.GatingUs(8192, 4096, 8), costs_.GatingUs(8192, 4096, 8));
  EXPECT_GT(l20.ActivationUs(8192, 4096), costs_.ActivationUs(8192, 4096));
  EXPECT_GT(l20.AttentionUs(8192, 4096, 1), costs_.AttentionUs(8192, 4096, 1));
}

}  // namespace
}  // namespace comet
