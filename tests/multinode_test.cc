// Tests of the multi-node hierarchy: cluster topology helpers, tier-aware
// collective costs, the 2D-hierarchical all-to-all, and the fused kernels'
// behaviour when expert parallelism spans nodes.
#include <gtest/gtest.h>

#include "comm/collectives.h"
#include "core/comet_executor.h"
#include "core/fused_kernel.h"
#include "exec/op_costs.h"
#include "hw/gpu_spec.h"
#include "moe/workload.h"
#include "util/check.h"

namespace comet {
namespace {

std::vector<std::vector<double>> UniformBytes(int world, double per_pair) {
  return std::vector<std::vector<double>>(
      static_cast<size_t>(world),
      std::vector<double>(static_cast<size_t>(world), per_pair));
}

MoeWorkload Workload(int tp, int ep, int64_t tokens, int64_t experts = 16) {
  ModelConfig model;
  model.name = "mn-test";
  model.layers = 1;
  model.num_experts = experts;
  model.topk = 2;
  model.embedding = 4096;
  model.ffn_hidden = 14336;
  WorkloadOptions options;
  options.seed = 3;
  options.materialize = false;
  return MakeWorkload(model, ParallelConfig{tp, ep}, tokens, options);
}

// ---- topology -----------------------------------------------------------------

TEST(MultiNodeCluster, SingleNodeDefaults) {
  const ClusterSpec c = H800Cluster(8);
  EXPECT_FALSE(c.IsMultiNode());
  EXPECT_EQ(c.GpusPerNode(), 8);
  EXPECT_EQ(c.NumNodes(), 1);
  EXPECT_TRUE(c.SameNode(0, 7));
  EXPECT_EQ(&c.LinkBetween(0, 7), &c.link);
}

TEST(MultiNodeCluster, TopologyHelpers) {
  const ClusterSpec c = MultiNodeH800Cluster(4, 8);
  EXPECT_TRUE(c.IsMultiNode());
  EXPECT_EQ(c.world_size, 32);
  EXPECT_EQ(c.NumNodes(), 4);
  EXPECT_EQ(c.NodeOfRank(0), 0);
  EXPECT_EQ(c.NodeOfRank(7), 0);
  EXPECT_EQ(c.NodeOfRank(8), 1);
  EXPECT_EQ(c.NodeOfRank(31), 3);
  EXPECT_TRUE(c.SameNode(0, 7));
  EXPECT_FALSE(c.SameNode(7, 8));
  EXPECT_EQ(&c.LinkBetween(0, 7), &c.link);
  EXPECT_EQ(&c.LinkBetween(0, 8), &c.inter_link);
}

TEST(MultiNodeCluster, InterLinkSlowerThanNvlink) {
  const ClusterSpec c = MultiNodeH800Cluster(2);
  EXPECT_LT(c.inter_link.bandwidth_bytes_per_us,
            c.link.bandwidth_bytes_per_us);
  EXPECT_GT(c.inter_link.latency_us, c.link.latency_us);
}

TEST(MultiNodeCluster, InvalidNodeSplitRejected) {
  ClusterSpec c = H800Cluster(8);
  c.gpus_per_node = 3;  // does not divide 8
  EXPECT_THROW(c.NumNodes(), CheckError);
}

TEST(MultiNodeCluster, RankOutOfRangeRejected) {
  const ClusterSpec c = MultiNodeH800Cluster(2);
  EXPECT_THROW(c.NodeOfRank(-1), CheckError);
  EXPECT_THROW(c.NodeOfRank(16), CheckError);
}

// ---- collective costs -----------------------------------------------------------

TEST(MultiNodeCollectives, AllToAllSlowerAcrossNodes) {
  const int world = 16;
  const auto bytes = UniformBytes(world, 1 << 20);
  const double single = AllToAllCostUs(H800Cluster(world), bytes);
  const double multi = AllToAllCostUs(MultiNodeH800Cluster(2, 8), bytes);
  EXPECT_GT(multi, single);
}

TEST(MultiNodeCollectives, InterNodeFraction) {
  const ClusterSpec c = MultiNodeH800Cluster(4, 8);
  const auto bytes = UniformBytes(32, 1.0);
  // 31 off-diagonal peers per rank, 24 of them off-node.
  EXPECT_NEAR(InterNodeByteFraction(c, bytes), 24.0 / 31.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      InterNodeByteFraction(H800Cluster(8), UniformBytes(8, 1.0)), 0.0);
}

TEST(MultiNodeCollectives, HierarchicalBeatsDirectAtScale) {
  const ClusterSpec c = MultiNodeH800Cluster(8, 8);
  const auto bytes = UniformBytes(64, 256.0 * 1024.0);
  const double direct = AllToAllCostUs(c, bytes);
  const double hier = HierarchicalAllToAllCostUs(c, bytes);
  EXPECT_LT(hier, direct);
}

TEST(MultiNodeCollectives, HierarchicalFallsBackOnSingleNode) {
  const ClusterSpec c = H800Cluster(8);
  const auto bytes = UniformBytes(8, 1 << 20);
  EXPECT_DOUBLE_EQ(HierarchicalAllToAllCostUs(c, bytes),
                   AllToAllCostUs(c, bytes));
}

TEST(MultiNodeCollectives, ZeroTrafficCostsNothing) {
  const ClusterSpec c = MultiNodeH800Cluster(2);
  const auto bytes = UniformBytes(16, 0.0);
  EXPECT_DOUBLE_EQ(AllToAllCostUs(c, bytes), 0.0);
}

TEST(MultiNodeCollectives, IntraNodeOnlyTrafficUsesNvlinkTerms) {
  const ClusterSpec c = MultiNodeH800Cluster(2, 8);
  auto bytes = UniformBytes(16, 0.0);
  // Traffic only inside node 0.
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      if (i != j) {
        bytes[static_cast<size_t>(i)][static_cast<size_t>(j)] = 1 << 20;
      }
    }
  }
  const double multi = AllToAllCostUs(c, bytes);
  // Must not pay the IB latency/sync: strictly below the same traffic when
  // it crosses nodes.
  auto cross = UniformBytes(16, 0.0);
  for (int i = 0; i < 8; ++i) {
    for (int j = 8; j < 16; ++j) {
      cross[static_cast<size_t>(i)][static_cast<size_t>(j)] = 1 << 20;
    }
  }
  EXPECT_LT(multi, AllToAllCostUs(c, cross));
}

// ---- fused kernels across nodes --------------------------------------------------

TEST(MultiNodeFusedKernel, Layer0CommSlowerWhenEpSpansNodes) {
  const MoeWorkload w = Workload(1, 16, 8192);
  FusedKernelConfig config;
  config.comm_blocks = 16;
  const ClusterSpec single = H800Cluster(16);
  const ClusterSpec multi = MultiNodeH800Cluster(2, 8);
  config.total_blocks = single.gpu.num_sms;
  const auto a = SimulateLayer0Fused(w.plan, 0, OpCostModel(single), config);
  const auto b = SimulateLayer0Fused(w.plan, 0, OpCostModel(multi), config);
  EXPECT_EQ(a.comm_bytes, b.comm_bytes);  // same traffic volume
  EXPECT_GT(b.comm_makespan_us, a.comm_makespan_us);  // slower fabric
}

TEST(MultiNodeFusedKernel, Layer1CommSlowerWhenEpSpansNodes) {
  const MoeWorkload w = Workload(1, 16, 8192);
  FusedKernelConfig config;
  config.comm_blocks = 24;
  const ClusterSpec single = H800Cluster(16);
  const ClusterSpec multi = MultiNodeH800Cluster(2, 8);
  config.total_blocks = single.gpu.num_sms;
  const auto a = SimulateLayer1Fused(w.plan, 0, OpCostModel(single), config);
  const auto b = SimulateLayer1Fused(w.plan, 0, OpCostModel(multi), config);
  EXPECT_GT(b.comm_makespan_us, a.comm_makespan_us);
}

TEST(MultiNodeFusedKernel, CometExecutorRunsOnMultiNode) {
  const MoeWorkload w = Workload(1, 16, 4096);
  CometExecutor comet;
  const auto single = comet.Run(w, H800Cluster(16), ExecMode::kTimedOnly);
  const auto multi =
      comet.Run(w, MultiNodeH800Cluster(2, 8), ExecMode::kTimedOnly);
  EXPECT_GT(multi.duration_us, 0.0);
  // The slower fabric can only hurt.
  EXPECT_GE(multi.duration_us, single.duration_us);
}

}  // namespace
}  // namespace comet
