// Unit tests for the communication substrate: symmetric heap, functional
// collectives, collective cost models and the Table 3 memory planner.
#include <gtest/gtest.h>

#include "comm/collectives.h"
#include "comm/memory_planner.h"
#include "comm/symmetric_heap.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

// ---- symmetric heap ---------------------------------------------------------

TEST(SymmetricHeap, AllocatePerRankCopies) {
  SymmetricHeap heap(4);
  const auto buf = heap.Allocate("x", Shape{2, 3});
  EXPECT_EQ(heap.num_buffers(), 1u);
  EXPECT_EQ(heap.BufferName(buf), "x");
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(heap.Local(buf, r).shape(), Shape({2, 3}));
  }
}

TEST(SymmetricHeap, PutRowMovesDataAndCountsTraffic) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{2, 4});
  const std::vector<float> row = {1, 2, 3, 4};
  heap.PutRow(buf, /*src=*/0, /*dst=*/1, /*dst_row=*/1, row);
  EXPECT_EQ(heap.Local(buf, 1).at({1, 2}), 3.0f);
  EXPECT_EQ(heap.Local(buf, 0).at({1, 2}), 0.0f);  // rank 0 copy untouched
  EXPECT_DOUBLE_EQ(heap.Traffic(0, 1), 16.0);      // 4 floats x 4 bytes
  EXPECT_DOUBLE_EQ(heap.Traffic(1, 0), 0.0);
}

TEST(SymmetricHeap, LocalAccessIsFree) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{1, 4});
  const std::vector<float> row = {1, 2, 3, 4};
  heap.PutRow(buf, 0, 0, 0, row);
  auto got = heap.GetRow(buf, 0, 0, 0);
  EXPECT_EQ(got[3], 4.0f);
  EXPECT_DOUBLE_EQ(heap.TotalTraffic(), 0.0);
}

TEST(SymmetricHeap, GetRowCountsOwnerToReader) {
  SymmetricHeap heap(3);
  const auto buf = heap.Allocate("x", Shape{1, 8});
  heap.GetRow(buf, /*reader=*/2, /*owner=*/0, 0);
  EXPECT_DOUBLE_EQ(heap.Traffic(0, 2), 32.0);
}

TEST(SymmetricHeap, AccumulateRowAddsWeighted) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{1, 2});
  const std::vector<float> row = {2.0f, 4.0f};
  heap.AccumulateRow(buf, 0, 1, 0, row, 0.5f);
  heap.AccumulateRow(buf, 0, 1, 0, row, 1.0f);
  EXPECT_EQ(heap.Local(buf, 1).at({0, 0}), 3.0f);
}

TEST(SymmetricHeap, ResetTraffic) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{1, 4});
  heap.GetRow(buf, 1, 0, 0);
  EXPECT_GT(heap.TotalTraffic(), 0.0);
  heap.ResetTraffic();
  EXPECT_DOUBLE_EQ(heap.TotalTraffic(), 0.0);
}

TEST(SymmetricHeap, AllocatedBytesPerRank) {
  SymmetricHeap heap(2);
  heap.Allocate("a", Shape{4, 4});                 // 64 bytes f32
  heap.Allocate("b", Shape{2, 2}, DType::kBF16);   // 8 bytes logical
  EXPECT_DOUBLE_EQ(heap.AllocatedBytesPerRank(), 64.0 + 8.0);
}

// ---- the 2-byte wire --------------------------------------------------------

TEST(SymmetricHeapDtype, PutRowNarrowsToTheBufferDtype) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{1, 3}, DType::kBF16);
  // 1.0f + 2^-9 is NOT bf16-representable (bf16 ulp at 1.0 is 2^-7): the
  // wire must round it; representable values pass through untouched.
  const float not_representable = 1.0f + 0.001953125f;
  const std::vector<float> row = {not_representable, 1.5f, -0.25f};
  heap.PutRow(buf, 0, 1, 0, row);
  EXPECT_EQ(heap.Local(buf, 1).at({0, 0}),
            QuantizeScalar(not_representable, DType::kBF16));
  EXPECT_NE(heap.Local(buf, 1).at({0, 0}), not_representable);
  EXPECT_EQ(heap.Local(buf, 1).at({0, 1}), 1.5f);
  EXPECT_EQ(heap.Local(buf, 1).at({0, 2}), -0.25f);
  // Traffic is accounted at the real wire width: 3 elements x 2 bytes.
  EXPECT_DOUBLE_EQ(heap.Traffic(0, 1), 6.0);
}

TEST(SymmetricHeapDtype, ReadsGoThroughTheWireToo) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{1, 2}, DType::kF16);
  // Local() is raw master access (bulk init); a raw write of an
  // unrepresentable value cannot escape through row reads unrounded.
  heap.Local(buf, 0).at({0, 0}) = 1.0f + 0.0001f;
  const auto got = heap.GetRow(buf, 1, 0, 0);
  EXPECT_EQ(got[0], QuantizeScalar(1.0f + 0.0001f, DType::kF16));
  std::vector<float> dst(2, 0.0f);
  heap.CopyRow(buf, 1, 0, 0, dst);
  EXPECT_EQ(dst[0], got[0]);
  EXPECT_DOUBLE_EQ(heap.Traffic(0, 1), 2.0 * 2.0 * 2.0);  // two 2x2B reads
}

TEST(SymmetricHeapDtype, AccumulateRowRoundsOnStore) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{1, 1}, DType::kBF16);
  const std::vector<float> row = {1.0f};
  heap.AccumulateRow(buf, 0, 1, 0, row, 1.0f);
  // 1.0 + 2^-8 is half a bf16 ulp: it ties back to even 1.0 on store -- the
  // 2-byte buffer cannot hold the f32 partial.
  heap.AccumulateRow(buf, 0, 1, 0, row, 0.00390625f);
  EXPECT_EQ(heap.Local(buf, 1).at({0, 0}), 1.0f);
}

TEST(SymmetricHeapDtype, SignalledPutsNarrowLikePlainPuts) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{1, 2}, DType::kBF16);
  const auto sig = heap.AllocateSignals("x-ready", 1);
  const std::vector<float> row = {1.0f + 0.001953125f, 2.0f};
  heap.PutRowWithSignal(buf, 0, 1, 0, row, sig, 0);
  EXPECT_EQ(heap.SignalValue(sig, 1, 0), 1u);
  EXPECT_EQ(heap.Local(buf, 1).at({0, 0}),
            QuantizeScalar(row[0], DType::kBF16));
  EXPECT_DOUBLE_EQ(heap.Traffic(0, 1), 4.0);  // payload only, 2 x 2 bytes
}

// ---- bounds handling --------------------------------------------------------
//
// Out-of-range rows/ranks must CHECK-fail with a message naming the buffer
// (historically some paths indexed the per-rank vector directly, which on a
// signal-only allocation was undefined behavior). CheckError is this
// codebase's death: every failure must be catchable and diagnosable.

// Expects `fn` to throw CheckError whose message contains `fragment`.
template <typename Fn>
void ExpectCheckFailureNaming(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    FAIL() << "expected CheckError mentioning '" << fragment << "'";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(SymmetricHeapBounds, PutRowRejectsOutOfRangeRowNamingBuffer) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("tokens-in", Shape{4, 2});
  const std::vector<float> row = {1, 2};
  ExpectCheckFailureNaming([&] { heap.PutRow(buf, 0, 1, 4, row); },
                           "tokens-in");
  ExpectCheckFailureNaming([&] { heap.PutRow(buf, 0, 1, -1, row); },
                           "tokens-in");
}

TEST(SymmetricHeapBounds, PutRowRejectsOutOfRangeRanks) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("tokens-in", Shape{4, 2});
  const std::vector<float> row = {1, 2};
  ExpectCheckFailureNaming([&] { heap.PutRow(buf, 0, 2, 0, row); },
                           "tokens-in");
  ExpectCheckFailureNaming([&] { heap.PutRow(buf, -1, 1, 0, row); },
                           "source rank -1");
}

TEST(SymmetricHeapBounds, GetRowRejectsOutOfRange) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("contrib", Shape{3, 2});
  ExpectCheckFailureNaming([&] { heap.GetRow(buf, 0, 1, 3); }, "contrib");
  ExpectCheckFailureNaming([&] { heap.GetRow(buf, 0, 5, 0); }, "contrib");
  ExpectCheckFailureNaming([&] { heap.GetRow(buf, 9, 1, 0); },
                           "reader rank 9");
}

TEST(SymmetricHeapBounds, CopyRowRejectsOutOfRange) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("contrib", Shape{3, 2});
  std::vector<float> dst(2);
  ExpectCheckFailureNaming(
      [&] { heap.CopyRow(buf, 0, 1, -2, dst); }, "contrib");
  ExpectCheckFailureNaming(
      [&] { heap.CopyRow(buf, 0, 2, 0, dst); }, "contrib");
}

TEST(SymmetricHeapBounds, AccumulateRowRejectsOutOfRange) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("outputs", Shape{2, 2});
  const std::vector<float> row = {1, 2};
  ExpectCheckFailureNaming(
      [&] { heap.AccumulateRow(buf, 0, 1, 2, row, 1.0f); }, "outputs");
  ExpectCheckFailureNaming(
      [&] { heap.AccumulateRow(buf, 3, 1, 0, row, 1.0f); }, "outputs");
}

TEST(SymmetricHeapBounds, DataOpsOnSignalAllocationFailLoudly) {
  // A signal allocation has no data rows; historically PutRow/Local on one
  // indexed an empty vector. Now it names the buffer and the operation.
  SymmetricHeap heap(2);
  const auto sig = heap.AllocateSignals("ready-flags", 4);
  const std::vector<float> row = {1, 2};
  ExpectCheckFailureNaming([&] { heap.PutRow(sig, 0, 1, 0, row); },
                           "ready-flags");
  ExpectCheckFailureNaming([&] { heap.Local(sig, 0); }, "ready-flags");
  ExpectCheckFailureNaming([&] { heap.GetRow(sig, 0, 1, 0); },
                           "signal-only");
}

TEST(SymmetricHeapBounds, SignalIndexOutOfRangeNamesBuffer) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("data", Shape{1, 2});
  const auto sig = heap.AllocateSignals("arrival", 2);
  const std::vector<float> row = {1, 2};
  ExpectCheckFailureNaming(
      [&] { heap.PutRowWithSignal(buf, 0, 1, 0, row, sig, 2); }, "arrival");
  ExpectCheckFailureNaming([&] { heap.SignalValue(sig, 1, -1); }, "arrival");
  ExpectCheckFailureNaming([&] { heap.WaitUntilSignalGe(sig, 2, 0, 1); },
                           "arrival");
}

TEST(SymmetricHeapBounds, InRangeAccessStillWorksAfterChecks) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("x", Shape{2, 2});
  const std::vector<float> row = {5, 6};
  heap.PutRow(buf, 0, 1, 1, row);
  EXPECT_EQ(heap.GetRow(buf, 0, 1, 1)[1], 6.0f);
}

// ---- functional collectives ---------------------------------------------------

TEST(Collectives, AllToAllRowsRoutesByCounts) {
  // 2 ranks; rank 0 sends 1 row to itself and 2 to rank 1; rank 1 sends 1
  // row to each.
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor::Iota(Shape{3, 2}));        // rows 0,1,2
  inputs.push_back(Tensor::Iota(Shape{2, 2}, 10.0f)); // rows 0',1'
  const std::vector<std::vector<int64_t>> counts = {{1, 2}, {1, 1}};
  const auto out = AllToAllRows(inputs, counts);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rows(), 2);  // 1 from rank 0 + 1 from rank 1
  EXPECT_EQ(out[1].rows(), 3);
  // Rank 1 receives rank 0's rows 1,2 then rank 1's row 1'.
  EXPECT_EQ(out[1].at({0, 0}), 2.0f);
  EXPECT_EQ(out[1].at({1, 0}), 4.0f);
  EXPECT_EQ(out[1].at({2, 0}), 20.0f);
}

TEST(Collectives, AllToAllRejectsBadCounts) {
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor::Zeros(Shape{3, 2}));
  inputs.push_back(Tensor::Zeros(Shape{2, 2}));
  EXPECT_THROW(AllToAllRows(inputs, {{1, 1}, {1, 1}}), CheckError);
}

TEST(Collectives, AllGatherRowsConcatenatesEverywhere) {
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor::Full(Shape{1, 2}, 1.0f));
  inputs.push_back(Tensor::Full(Shape{2, 2}, 2.0f));
  const auto out = AllGatherRows(inputs);
  for (const auto& t : out) {
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.at({0, 0}), 1.0f);
    EXPECT_EQ(t.at({2, 1}), 2.0f);
  }
}

TEST(Collectives, ReduceScatterRowsSumsShards) {
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor::Full(Shape{4, 2}, 1.0f));
  inputs.push_back(Tensor::Full(Shape{4, 2}, 2.0f));
  const auto out = ReduceScatterRows(inputs, 2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rows(), 2);
  EXPECT_EQ(out[0].at({0, 0}), 3.0f);
  EXPECT_EQ(out[1].at({1, 1}), 3.0f);
}

// ---- cost models ---------------------------------------------------------------

TEST(CollectiveCost, UniformAllToAllScalesWithBytes) {
  const ClusterSpec cluster = H800Cluster(8);
  const double t1 = UniformAllToAllCostUs(cluster, 1.0e6);
  const double t2 = UniformAllToAllCostUs(cluster, 2.0e6);
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 2.5 * t1);
}

TEST(CollectiveCost, EmptyAllToAllIsFree) {
  const ClusterSpec cluster = H800Cluster(4);
  EXPECT_DOUBLE_EQ(UniformAllToAllCostUs(cluster, 0.0), 0.0);
}

TEST(CollectiveCost, AsymmetricMatrixHonoursHotPort) {
  const ClusterSpec cluster = H800Cluster(4);
  // All traffic into port 0: makespan bound by port 0's ingress.
  std::vector<std::vector<double>> bytes(4, std::vector<double>(4, 0.0));
  bytes[1][0] = bytes[2][0] = bytes[3][0] = 1.0e7;
  const double hot = AllToAllCostUs(cluster, bytes);
  std::vector<std::vector<double>> spread(4, std::vector<double>(4, 0.0));
  spread[1][0] = spread[2][3] = spread[3][2] = 1.0e7;
  const double balanced = AllToAllCostUs(cluster, spread);
  EXPECT_GT(hot, 2.0 * balanced);
}

TEST(CollectiveCost, RingCollectives) {
  const ClusterSpec cluster = H800Cluster(8);
  EXPECT_DOUBLE_EQ(RingAllGatherCostUs(cluster, 0.0), 0.0);
  EXPECT_GT(RingAllGatherCostUs(cluster, 1.0e6), 0.0);
  EXPECT_GT(RingReduceScatterCostUs(cluster, 8.0e6), 0.0);
  // One-rank "cluster": no communication.
  EXPECT_DOUBLE_EQ(RingReduceScatterCostUs(H800Cluster(1), 1.0e6), 0.0);
}

// ---- memory planner (Table 3) ---------------------------------------------------

TEST(MemoryPlanner, MatchesTable3Exactly) {
  // Paper Table 3, BF16: 2 * M * N bytes.
  EXPECT_DOUBLE_EQ(PlanCommBuffer(4096, 4096).MiBs(), 32.0);   // Mixtral
  EXPECT_DOUBLE_EQ(PlanCommBuffer(8192, 4096).MiBs(), 64.0);
  EXPECT_DOUBLE_EQ(PlanCommBuffer(4096, 2048).MiBs(), 16.0);   // Qwen2
  EXPECT_DOUBLE_EQ(PlanCommBuffer(8192, 2048).MiBs(), 32.0);
  EXPECT_DOUBLE_EQ(PlanCommBuffer(4096, 4096).MiBs(), 32.0);   // Phi-3.5
}

TEST(MemoryPlanner, DtypeChangesFootprint) {
  EXPECT_DOUBLE_EQ(PlanCommBuffer(4096, 4096, DType::kF32).MiBs(), 64.0);
}

TEST(MemoryPlanner, RejectsNonPositive) {
  EXPECT_THROW(PlanCommBuffer(0, 4096), CheckError);
  EXPECT_THROW(PlanCommBuffer(4096, -1), CheckError);
}

// ---- signaling -------------------------------------------------------------

TEST(SymmetricHeapSignals, PutWithSignalBumpsDestinationWord) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("data", Shape{4, 8});
  const auto sig = heap.AllocateSignals("ready", 4);
  const std::vector<float> row(8, 1.5f);
  EXPECT_EQ(heap.SignalValue(sig, 1, 2), 0u);
  heap.PutRowWithSignal(buf, 0, 1, 2, row, sig, 2);
  EXPECT_EQ(heap.SignalValue(sig, 1, 2), 1u);
  EXPECT_EQ(heap.SignalValue(sig, 0, 2), 0u);  // source rank untouched
  heap.PutRowWithSignal(buf, 0, 1, 2, row, sig, 2);
  EXPECT_EQ(heap.SignalValue(sig, 1, 2), 2u);
}

TEST(SymmetricHeapSignals, WaitThrowsWhenUnsignalled) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("data", Shape{4, 8});
  const auto sig = heap.AllocateSignals("ready", 4);
  EXPECT_THROW(heap.WaitSignalGe(sig, 1, 0, 1), CheckError);
  heap.PutRowWithSignal(buf, 0, 1, 0, std::vector<float>(8, 0.0f), sig, 0);
  heap.WaitSignalGe(sig, 1, 0, 1);  // satisfied now
  EXPECT_THROW(heap.WaitSignalGe(sig, 1, 0, 2), CheckError);
}

TEST(SymmetricHeapSignals, SignalTrafficNotCounted) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("data", Shape{1, 16});
  const auto sig = heap.AllocateSignals("ready", 1);
  heap.PutRowWithSignal(buf, 0, 1, 0, std::vector<float>(16, 1.0f), sig, 0);
  EXPECT_DOUBLE_EQ(heap.Traffic(0, 1), 16.0 * 4.0);  // payload only (f32)
}

TEST(SymmetricHeapSignals, DataBufferIsNotASignalBuffer) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("data", Shape{1, 4});
  EXPECT_THROW(heap.SignalValue(buf, 0, 0), CheckError);
  EXPECT_THROW(heap.AllocateSignals("bad", 0), CheckError);
}

}  // namespace
}  // namespace comet
