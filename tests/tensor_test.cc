// Unit tests for the tensor substrate: dtypes, shapes, tensors and row ops.
#include <gtest/gtest.h>

#include "tensor/dtype.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

// ---- dtype -----------------------------------------------------------------

TEST(DType, Sizes) {
  EXPECT_EQ(DTypeSize(DType::kF32), 4u);
  EXPECT_EQ(DTypeSize(DType::kBF16), 2u);
  EXPECT_EQ(DTypeSize(DType::kF16), 2u);
}

TEST(DType, Names) {
  EXPECT_EQ(DTypeName(DType::kF32), "f32");
  EXPECT_EQ(DTypeName(DType::kBF16), "bf16");
}

// ---- shape -----------------------------------------------------------------

TEST(Shape, BasicProperties) {
  const Shape s{3, 4, 5};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.dim(1), 4);
  EXPECT_EQ(s.NumElements(), 60);
  EXPECT_EQ(s.ToString(), "[3, 4, 5]");
}

TEST(Shape, RankZero) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(Shape, Strides) {
  const Shape s{3, 4, 5};
  const auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 20);
  EXPECT_EQ(strides[1], 5);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, FlatIndex) {
  const Shape s{3, 4};
  EXPECT_EQ(s.FlatIndex({0, 0}), 0);
  EXPECT_EQ(s.FlatIndex({1, 2}), 6);
  EXPECT_EQ(s.FlatIndex({2, 3}), 11);
  EXPECT_THROW(s.FlatIndex({3, 0}), CheckError);
  EXPECT_THROW(s.FlatIndex({0}), CheckError);
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW(Shape({2, -1}), CheckError);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

// ---- tensor ----------------------------------------------------------------

TEST(Tensor, ZerosAndFull) {
  const Tensor z = Tensor::Zeros(Shape{2, 3});
  for (float v : z.data()) {
    EXPECT_EQ(v, 0.0f);
  }
  const Tensor f = Tensor::Full(Shape{2, 2}, 1.5f);
  for (float v : f.data()) {
    EXPECT_EQ(v, 1.5f);
  }
}

TEST(Tensor, IotaAndAt) {
  const Tensor t = Tensor::Iota(Shape{2, 3}, 2.0f);
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 4.0f);
  EXPECT_EQ(t.at({1, 0}), 6.0f);
}

TEST(Tensor, LogicalBytesUsesDtype) {
  const Tensor t = Tensor::Zeros(Shape{4, 8}, DType::kBF16);
  EXPECT_DOUBLE_EQ(t.LogicalBytes(), 64.0);  // 32 elements x 2 bytes
  const Tensor f = Tensor::Zeros(Shape{4, 8}, DType::kF32);
  EXPECT_DOUBLE_EQ(f.LogicalBytes(), 128.0);
}

TEST(Tensor, RowAccess) {
  Tensor t = Tensor::Iota(Shape{3, 4});
  auto row1 = t.row(1);
  ASSERT_EQ(row1.size(), 4u);
  EXPECT_EQ(row1[0], 4.0f);
  row1[0] = 99.0f;
  EXPECT_EQ(t.at({1, 0}), 99.0f);
  EXPECT_THROW(t.row(3), CheckError);
  EXPECT_THROW(t.row(-1), CheckError);
}

TEST(Tensor, RowOpsRequireRank2) {
  Tensor t = Tensor::Zeros(Shape{2, 3, 4});
  EXPECT_THROW(t.rows(), CheckError);
}

TEST(Tensor, GatherRows) {
  const Tensor t = Tensor::Iota(Shape{4, 2});
  const Tensor g = Tensor::GatherRows(t, {3, 0, 3});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.at({0, 0}), 6.0f);
  EXPECT_EQ(g.at({1, 0}), 0.0f);
  EXPECT_EQ(g.at({2, 1}), 7.0f);
}

TEST(Tensor, SetAndAccumulateRow) {
  Tensor t = Tensor::Zeros(Shape{2, 3});
  const std::vector<float> src = {1.0f, 2.0f, 3.0f};
  t.SetRow(0, src);
  EXPECT_EQ(t.at({0, 1}), 2.0f);
  t.AccumulateRow(0, src, 0.5f);
  EXPECT_EQ(t.at({0, 1}), 3.0f);
}

TEST(Tensor, MaxAbsDiffAndAllClose) {
  Tensor a = Tensor::Full(Shape{2, 2}, 1.0f);
  Tensor b = Tensor::Full(Shape{2, 2}, 1.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
  EXPECT_TRUE(Tensor::AllClose(a, b));
  b.at({1, 1}) = 1.1f;
  EXPECT_NEAR(Tensor::MaxAbsDiff(a, b), 0.1f, 1e-6f);
  EXPECT_FALSE(Tensor::AllClose(a, b));
  Tensor c = Tensor::Zeros(Shape{2, 3});
  EXPECT_THROW(Tensor::MaxAbsDiff(a, c), CheckError);
}

TEST(Tensor, RandnIsSeedDeterministic) {
  Rng r1(5);
  Rng r2(5);
  const Tensor a = Tensor::Randn(Shape{8, 8}, r1);
  const Tensor b = Tensor::Randn(Shape{8, 8}, r2);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
}

TEST(Tensor, DebugStringTruncates) {
  const Tensor t = Tensor::Iota(Shape{100});
  const std::string s = t.DebugString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ---- in-place workspace API (the serving plane's zero-alloc contract) ------

TEST(Shape, SetDims2RetargetsInPlace) {
  Shape s{3, 4, 5};
  s.SetDims2(6, 7);
  EXPECT_EQ(s.rank(), 2u);
  EXPECT_EQ(s[0], 6);
  EXPECT_EQ(s[1], 7);
  EXPECT_EQ(s.NumElements(), 42);
  // Rank can grow back from a lower-rank state too.
  Shape flat{10};
  flat.SetDims2(2, 5);
  EXPECT_EQ(flat.rank(), 2u);
  EXPECT_EQ(flat.NumElements(), 10);
}

TEST(Tensor, ReserveThenResetFormat2DDoesNotAllocate) {
  Tensor t;
  t.Reserve(8 * 16);
  t.ResetFormat2D(2, 4, DType::kF32);  // establish rank-2 dims capacity
  const float* storage = t.data().data();
  // Any 2-D shape within the reserved element count reuses the same block.
  t.ResetFormat2D(8, 16, DType::kBF16);
  EXPECT_EQ(t.rows(), 8);
  EXPECT_EQ(t.cols(), 16);
  EXPECT_EQ(t.dtype(), DType::kBF16);
  EXPECT_EQ(t.data().data(), storage);
  t.ResetFormat2D(3, 5, DType::kF32);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.data().data(), storage);
}

TEST(Tensor, FillZeroAndFillZeroRows) {
  Tensor t(Shape{4, 3});
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      t.at({r, c}) = 1.0f + static_cast<float>(r * 3 + c);
    }
  }
  t.FillZeroRows(1, 3);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NE(t.at({0, c}), 0.0f);
    EXPECT_EQ(t.at({1, c}), 0.0f);
    EXPECT_EQ(t.at({2, c}), 0.0f);
    EXPECT_NE(t.at({3, c}), 0.0f);
  }
  t.FillZero();
  for (float v : t.data()) {
    EXPECT_EQ(v, 0.0f);
  }
}

// FillRandn into a reused workspace must consume the rng exactly like the
// Randn constructor: the serving plane's pooled request tensors depend on a
// pooled and a freshly-constructed prompt being bit-identical.
TEST(Tensor, FillRandnMatchesRandnBitForBit) {
  for (DType dtype : {DType::kF32, DType::kBF16, DType::kF16}) {
    Rng fresh(42);
    const Tensor constructed = Tensor::Randn(Shape{5, 7}, fresh, 0.5f, dtype);

    Tensor pooled;
    pooled.Reserve(9 * 11);  // stale, larger prior use
    pooled.ResetFormat2D(9, 11, DType::kF32);
    Rng reused(42);
    pooled.ResetFormat2D(5, 7, dtype);
    pooled.FillRandn(reused, 0.5f);

    EXPECT_EQ(Tensor::MaxAbsDiff(constructed, pooled), 0.0f)
        << DTypeName(dtype);
    // And the rngs must be in the same state afterwards (same draw count).
    EXPECT_EQ(fresh.NextU64(), reused.NextU64()) << DTypeName(dtype);
  }
}

TEST(Tensor, ResetFormat2DContentsAreOverwrittenNotTrusted) {
  // The contract: contents after ResetFormat2D are unspecified. Callers
  // either overwrite or FillZero -- this pins the supported recipe.
  Tensor t;
  t.Reserve(6);
  t.ResetFormat2D(2, 3, DType::kF32);
  t.FillZero();
  t.at({1, 2}) = 9.0f;
  t.ResetFormat2D(3, 2, DType::kF32);
  t.FillZeroRows(0, 3);
  for (float v : t.data()) {
    EXPECT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace comet
