// The adaptation-plane regression tier (docs/ARCHITECTURE.md, "The
// adaptation plane").
//
// Four layers of pinning:
//  1. Knob validation: every new adaptation/skew/length-distribution knob
//     fails loudly at configuration time (CheckError), not at first use.
//  2. Policy properties: the HotExpertTracker detects a hot expert within a
//     bounded number of iterations, places replicas on the least-loaded
//     group (documented tie rules), and never flaps (hysteresis band +
//     per-slot cooldown), under both crafted and randomized load sequences.
//  3. Contract A -- adaptation OFF is byte-identical to the PR 8 serving
//     plane: the serve digests re-pin the alloc_test goldens.
//  4. Contract B -- adaptation ON is bit-deterministic across host threads
//     {1,8} x EP {1,4}, and bit-TRANSPARENT: replica slices compute the
//     same bits as home slices, so with identical batch compositions the
//     combined output digest with replication on equals the digest with it
//     off while promotions actually happened.
// Plus the steady-state zero-allocation envelope with adaptation enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "hw/gpu_spec.h"
#include "moe/router.h"
#include "serve/adaptation.h"
#include "serve/cluster.h"
#include "serve/loadgen.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/alloc_counter.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

using util::AllocStats;
using util::AllocWindow;

// ---- knob validation (loud, at configuration time) -------------------------

TEST(AdaptationOptionsValidate, RejectsBadKnobs) {
  AdaptationOptions ok;
  EXPECT_NO_THROW(ok.Validate());

  AdaptationOptions o = ok;
  o.ewma_decay = 0.0;
  EXPECT_THROW(o.Validate(), CheckError) << "decay must be in (0, 1]";
  o = ok;
  o.ewma_decay = 1.5;
  EXPECT_THROW(o.Validate(), CheckError);
  o = ok;
  o.cool_factor = o.hot_factor;  // hysteresis band collapses
  EXPECT_THROW(o.Validate(), CheckError);
  o = ok;
  o.cool_factor = -0.1;
  EXPECT_THROW(o.Validate(), CheckError);
  o = ok;
  o.max_replicated_experts = -1;
  EXPECT_THROW(o.Validate(), CheckError);
  o = ok;
  o.cooldown_iterations = -1;
  EXPECT_THROW(o.Validate(), CheckError);
}

TEST(LengthDistValidate, RejectsBrokenDistributionsAtConstruction) {
  LengthDist empty_range = LengthDist::Uniform(5, 2);
  EXPECT_THROW(empty_range.Validate(), CheckError);
  LengthDist bad_fraction = LengthDist::Bimodal(4, 32, 1.5);
  EXPECT_THROW(bad_fraction.Validate(), CheckError);
  EXPECT_NO_THROW(LengthDist::Uniform(2, 2).Validate());
  EXPECT_NO_THROW(LengthDist::Bimodal(4, 32, 0.0).Validate());

  // The load generator trips the same checks up front -- a malformed
  // distribution must not emit a single request.
  LoadGenOptions lo;
  lo.prompt = empty_range;
  EXPECT_THROW(LoadGenerator{lo}, CheckError);
  LoadGenOptions lo2;
  lo2.decode = bad_fraction;
  EXPECT_THROW(LoadGenerator{lo2}, CheckError);
}

// ---- dtype-aware RoutingTable::Validate ------------------------------------

TEST(RoutingValidate, WeightSumToleranceIsDtypeAware) {
  // Combine weights as a bf16 quantizer would leave them: each weight is
  // correctly rounded, the sum sits ~4e-3 from 1 -- inside topk bf16 ulps,
  // far outside the old fixed 1e-4.
  RoutingTable t;
  TokenRoute r;
  r.experts.push_back(0);
  r.experts.push_back(1);
  r.weights.push_back(0.501f);
  r.weights.push_back(0.503f);  // sum 1.004
  t.tokens.push_back(r);

  EXPECT_THROW(t.Validate(8, 2), CheckError)
      << "at f32 the tolerance stays 1e-4; a 4e-3 error is a real bug there";
  EXPECT_NO_THROW(t.Validate(8, 2, DType::kBF16))
      << "bf16-quantized weights are correctly-rounded values; rejecting "
         "them would make every quantized serving batch invalid";
}

TEST(RoutingValidate, GenuinelyBrokenWeightsFailAtEveryDtype) {
  RoutingTable t;
  TokenRoute r;
  r.experts.push_back(0);
  r.experts.push_back(1);
  r.weights.push_back(0.9f);
  r.weights.push_back(0.6f);  // sum 1.5: broken, not a rounding artifact
  t.tokens.push_back(r);
  EXPECT_THROW(t.Validate(8, 2), CheckError);
  EXPECT_THROW(t.Validate(8, 2, DType::kBF16), CheckError);
  EXPECT_THROW(t.Validate(8, 2, DType::kF16), CheckError);
}

// ---- in-place loads and the counts-based load std --------------------------

TEST(ExpertLoads, IntoVariantMatchesAllocatingVariant) {
  SyntheticRouter router(Rng(9).LoadVectorWithStd(8, 0.05), 42);
  RoutingTable t = router.Route(64, 2);
  const std::vector<int64_t> loads = t.ExpertLoads(8);
  std::vector<int64_t> into;
  t.ExpertLoadsInto(8, &into);
  EXPECT_EQ(into, loads);
  // Reuse with stale contents: Into must fully overwrite.
  std::vector<int64_t> dirty(8, 999);
  t.ExpertLoadsInto(8, &dirty);
  EXPECT_EQ(dirty, loads);

  EXPECT_EQ(LoadStdFromCounts(loads), t.LoadStd(8))
      << "the counts-based std must be bit-identical to the table's";
}

// ---- HotExpertTracker policy properties ------------------------------------

AdaptationOptions TrackerOptions() {
  AdaptationOptions o;
  o.enabled = true;
  o.ewma_decay = 0.25;
  o.hot_factor = 1.75;
  o.cool_factor = 1.25;
  o.max_replicated_experts = 1;
  o.cooldown_iterations = 4;
  return o;
}

TEST(HotExpertTracker, DetectsSustainedHotExpertWithinKIterations) {
  HotExpertTracker tracker(TrackerOptions(), /*num_experts=*/8, /*ep=*/4);
  // Expert 3 takes half the traffic, everyone else splits the rest.
  std::vector<int64_t> loads = {2, 2, 2, 14, 2, 2, 2, 2};
  int promoted_at = -1;
  for (int iter = 0; iter < 10; ++iter) {
    tracker.Observe(loads);
    for (const auto& ev : tracker.events()) {
      if (ev.promote) {
        EXPECT_EQ(ev.expert, 3);
        promoted_at = iter;
      }
    }
    if (promoted_at >= 0) {
      break;
    }
  }
  ASSERT_GE(promoted_at, 0) << "a 50%-load expert must be detected";
  EXPECT_LE(promoted_at, 5) << "EWMA at decay 0.25 crosses 1.75/E fast";
  EXPECT_EQ(tracker.active_replicas(), 1);
}

TEST(HotExpertTracker, ReplicaLandsOnLeastLoadedGroupLowestIndexTie) {
  // E=8, EP=4, epg=2. Hot expert 0 lives in group 0. All other groups are
  // equally idle -> the documented tie rule picks the lowest group index.
  AdaptationOptions o = TrackerOptions();
  o.ewma_decay = 1.0;  // no smoothing: the decision reads this iteration
  {
    HotExpertTracker tracker(o, 8, 4);
    std::vector<int64_t> loads = {100, 0, 0, 0, 0, 0, 0, 0};
    ASSERT_EQ(tracker.Observe(loads), 1);
    const auto& ev = tracker.events()[0];
    EXPECT_TRUE(ev.promote);
    EXPECT_EQ(ev.expert, 0);
    EXPECT_EQ(ev.ep_group, 1) << "tie among groups 1..3 -> lowest index";
    EXPECT_EQ(ev.slot, 0);
  }
  {
    // Now give groups distinct loads: expert 2 (group 1) carries 1/3 and
    // expert 6 (group 3) 1/9 -- group 2 is the genuinely least loaded.
    HotExpertTracker tracker(o, 8, 4);
    std::vector<int64_t> loads = {50, 0, 30, 0, 0, 0, 10, 0};
    ASSERT_EQ(tracker.Observe(loads), 1);
    const auto& ev = tracker.events()[0];
    EXPECT_EQ(ev.expert, 0);
    EXPECT_EQ(ev.ep_group, 2) << "least effective load among groups != home";
  }
}

TEST(HotExpertTracker, HottestExpertWinsLowestIndexTie) {
  AdaptationOptions o = TrackerOptions();
  o.ewma_decay = 1.0;
  HotExpertTracker tracker(o, 8, 4);
  // Experts 1 and 5 both above threshold; 5 hotter -> 5 wins.
  std::vector<int64_t> loads = {0, 30, 0, 0, 0, 60, 0, 10};
  ASSERT_EQ(tracker.Observe(loads), 1);
  EXPECT_EQ(tracker.events()[0].expert, 5);

  // Exact tie between 2 and 6 -> lowest expert index.
  HotExpertTracker tracker2(o, 8, 4);
  std::vector<int64_t> tie = {0, 0, 50, 0, 0, 0, 50, 0};
  ASSERT_EQ(tracker2.Observe(tie), 1);
  EXPECT_EQ(tracker2.events()[0].expert, 2);
}

TEST(HotExpertTracker, Ep1NeverPromotes) {
  HotExpertTracker tracker(TrackerOptions(), 8, /*ep=*/1);
  std::vector<int64_t> loads = {100, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(tracker.Observe(loads), 0) << "no other group to replicate to";
  }
  EXPECT_EQ(tracker.promotions(), 0);
}

TEST(HotExpertTracker, RetireRespectsHysteresisAndCooldown) {
  AdaptationOptions o = TrackerOptions();  // cooldown 4
  HotExpertTracker tracker(o, 8, 4);
  std::vector<int64_t> hot = {0, 0, 0, 100, 0, 0, 0, 0};
  std::vector<int64_t> uniform = {1, 1, 1, 1, 1, 1, 1, 1};

  // Promote, then go uniform immediately. The EWMA must fall below
  // cool_factor/E AND the slot cooldown must elapse before the retire.
  int iter = 0;
  int promote_iter = -1;
  while (promote_iter < 0) {
    tracker.Observe(hot);
    if (!tracker.events().empty() && tracker.events()[0].promote) {
      promote_iter = iter;
    }
    ++iter;
    ASSERT_LT(iter, 10);
  }
  int retire_iter = -1;
  for (int i = 0; i < 40 && retire_iter < 0; ++i) {
    tracker.Observe(uniform);
    if (!tracker.events().empty() && !tracker.events()[0].promote) {
      retire_iter = iter;
    }
    ++iter;
  }
  ASSERT_GE(retire_iter, 0) << "a cooled expert must eventually retire";
  EXPECT_GE(retire_iter - promote_iter, o.cooldown_iterations)
      << "the per-slot cooldown gates retirement";
  EXPECT_EQ(tracker.active_replicas(), 0);
  EXPECT_EQ(tracker.retirements(), 1);

  // Immediately hot again: the just-retired slot is quiescent, so no
  // promotion can land for cooldown_iterations more observations.
  int repromote_gap = -1;
  for (int i = 0; i < 20; ++i) {
    tracker.Observe(hot);
    if (!tracker.events().empty() && tracker.events()[0].promote) {
      repromote_gap = i;
      break;
    }
  }
  ASSERT_GE(repromote_gap, 0);
  EXPECT_GE(repromote_gap, o.cooldown_iterations - 1)
      << "slot reuse inside the cooldown window is flapping";
}

TEST(HotExpertTracker, RandomizedInvariants) {
  AdaptationOptions o = TrackerOptions();
  o.max_replicated_experts = 2;
  o.hot_factor = 1.4;
  o.cool_factor = 1.1;
  HotExpertTracker tracker(o, 8, 4);
  Rng rng(20260807);
  std::vector<int64_t> loads(8, 0);
  std::vector<int> last_event_iter(static_cast<size_t>(
                                       o.max_replicated_experts),
                                   -1000);
  for (int iter = 0; iter < 400; ++iter) {
    // Oscillating skew: phases of concentrated load on a walking expert,
    // interleaved with uniform phases -- the flap-bait profile.
    const int hot_e = (iter / 25) % 8;
    for (int e = 0; e < 8; ++e) {
      const int64_t base = rng.UniformInt(0, 3);
      loads[static_cast<size_t>(e)] =
          base + (e == hot_e && (iter / 25) % 2 == 0 ? 40 : 0);
    }
    const int n = tracker.Observe(loads);
    ASSERT_LE(n, 2);
    for (const auto& ev : tracker.events()) {
      ASSERT_GE(ev.slot, 0);
      ASSERT_LT(ev.slot, o.max_replicated_experts);
      // Anti-flap: consecutive transitions through one slot are separated
      // by at least the cooldown.
      EXPECT_GE(iter - last_event_iter[static_cast<size_t>(ev.slot)],
                o.cooldown_iterations)
          << "slot " << ev.slot << " flapped at iteration " << iter;
      last_event_iter[static_cast<size_t>(ev.slot)] = iter;
      if (ev.promote) {
        EXPECT_GE(tracker.ewma(ev.expert), o.hot_factor / 8.0);
      }
    }
    // Structural invariants of the replica set, every iteration.
    ASSERT_LE(tracker.active_replicas(), o.max_replicated_experts);
    std::vector<int64_t> seen;
    for (const ReplicaAssignment& a : tracker.replicas()) {
      if (a.expert < 0) {
        continue;
      }
      EXPECT_NE(a.ep_group, static_cast<int>(a.expert / 2))
          << "replica on its home group";
      EXPECT_TRUE(std::find(seen.begin(), seen.end(), a.expert) == seen.end())
          << "expert replicated twice";
      seen.push_back(a.expert);
    }
  }
  EXPECT_GT(tracker.promotions(), 0) << "the flap-bait profile must promote";
  EXPECT_GT(tracker.retirements(), 0);
}

// ---- synthetic routing: drift is a pure rotation ---------------------------

TEST(SyntheticRouting, ShiftZeroMatchesRouteAndShiftRotates) {
  const std::vector<double> load = Rng(5).LoadVectorWithStd(8, 0.1);
  SyntheticRouter a(load, 7);
  SyntheticRouter b(load, 7);
  SyntheticRouter c(load, 7);
  RoutingTable ta = a.Route(32, 2);
  RoutingTable tb;
  b.RouteInto(32, 2, /*shift=*/0, &tb);
  RoutingTable tc;
  c.RouteInto(32, 2, /*shift=*/3, &tc);
  ASSERT_EQ(tb.size(), ta.size());
  ASSERT_EQ(tc.size(), ta.size());
  for (int64_t t = 0; t < ta.size(); ++t) {
    const auto& ra = ta.tokens[static_cast<size_t>(t)];
    const auto& rb = tb.tokens[static_cast<size_t>(t)];
    const auto& rc = tc.tokens[static_cast<size_t>(t)];
    ASSERT_EQ(rb.experts, ra.experts);
    ASSERT_EQ(rb.weights, ra.weights);
    ASSERT_EQ(rc.weights, ra.weights)
        << "the shift must not perturb the draw sequence";
    ASSERT_EQ(rc.experts.size(), ra.experts.size());
    for (size_t k = 0; k < ra.experts.size(); ++k) {
      EXPECT_EQ(rc.experts[k], (ra.experts[k] + 3) % 8);
    }
  }
}

// ---- the serving scenario (mirrors serve_test/alloc_test helpers) ----------

ModelConfig ServeModel() {
  ModelConfig m;
  m.name = "serve-tiny";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 32;
  m.ffn_hidden = 64;
  return m;
}

ServeOptions BaseServeOptions(int ep, DType dtype, int num_threads) {
  ServeOptions o;
  o.model = ServeModel();
  o.parallel = ParallelConfig{1, ep};
  o.seed = 1234;
  o.dtype = dtype;
  o.num_threads = num_threads;
  o.token_budget = 16;
  o.max_active = 8;
  o.queue_capacity = 64;
  return o;
}

// Skewed synthetic serving with the adaptation loop closed.
ServeOptions AdaptServeOptions(int ep, DType dtype, int num_threads) {
  ServeOptions o = BaseServeOptions(ep, dtype, num_threads);
  o.routing = ServeRoutingMode::kSynthetic;
  o.synthetic_load_std = 0.1;
  o.adaptation.enabled = true;
  o.adaptation.hot_factor = 1.4;
  o.adaptation.cool_factor = 1.1;
  o.adaptation.max_replicated_experts = 1;
  o.adaptation.cooldown_iterations = 4;
  return o;
}

LoadGenOptions BaseLoadOptions(int64_t n = 24) {
  LoadGenOptions o;
  o.seed = 77;
  o.offered_rps = 2000.0;
  o.num_requests = n;
  o.prompt = LengthDist::Uniform(2, 6);
  o.decode = LengthDist::Uniform(1, 4);
  return o;
}

uint64_t RequestDigest(const std::vector<RequestRecord>& completed) {
  uint64_t h = Fnv1aInit();
  for (const RequestRecord& c : completed) {
    h = Fnv1aAdd(h, &c.id, sizeof(c.id));
    h = Fnv1aAdd(h, &c.output_digest, sizeof(c.output_digest));
    h = Fnv1aAdd(h, &c.queue_wait_us, sizeof(c.queue_wait_us));
    h = Fnv1aAdd(h, &c.ttft_us, sizeof(c.ttft_us));
    h = Fnv1aAdd(h, &c.e2e_us, sizeof(c.e2e_us));
    h = Fnv1aAdd(h, &c.mean_itl_us, sizeof(c.mean_itl_us));
  }
  return h;
}

// Saturating arrivals, all at t = 0: batch composition becomes a pure
// function of the iteration index (never of simulated durations), which is
// what makes the on-vs-off transparency comparison well-defined.
std::vector<RequestSpec> SaturatingArrivals(int64_t n) {
  std::vector<RequestSpec> arrivals;
  for (int64_t i = 0; i < n; ++i) {
    RequestSpec r;
    r.id = i;
    r.seed = static_cast<uint64_t>(i) * 1000003ULL + 5;
    r.prompt_tokens = 2 + (i % 5);
    r.decode_tokens = i % 5;
    r.arrival_us = 0.0;
    arrivals.push_back(r);
  }
  return arrivals;
}

// ---- serving misconfiguration fails loudly ---------------------------------

TEST(ServeConfig, SyntheticKnobsRequireSyntheticMode) {
  ServeOptions o = BaseServeOptions(2, DType::kF32, 1);
  o.synthetic_load_std = 0.05;  // routing still kGate
  EXPECT_THROW(MoeServer(o, H800Cluster(2)), CheckError);
  ServeOptions o2 = BaseServeOptions(2, DType::kF32, 1);
  o2.drift_period_us = 100.0;
  EXPECT_THROW(MoeServer(o2, H800Cluster(2)), CheckError);
}

TEST(ServeConfig, AdaptationKnobsValidateAtConstruction) {
  ServeOptions o = BaseServeOptions(2, DType::kF32, 1);
  o.adaptation.enabled = true;
  o.adaptation.ewma_decay = 2.0;
  EXPECT_THROW(MoeServer(o, H800Cluster(2)), CheckError);
  ServeOptions o2 = BaseServeOptions(2, DType::kF32, 1);
  o2.adaptation.enabled = true;
  o2.adaptation.cool_factor = 3.0;  // >= hot_factor
  EXPECT_THROW(MoeServer(o2, H800Cluster(2)), CheckError);
}

// ---- contract A: adaptation off is byte-identical to PR 8 ------------------

// The pins below are the alloc_test serve goldens (captured two PRs ago,
// before the adaptation plane existed). A server with default-disabled
// adaptation must reproduce them bit for bit: disabled means NO change to
// the served bytes, not "small change".
struct OffGolden {
  int ep;
  DType dtype;
  uint64_t combined_digest;
};

constexpr OffGolden kOffGoldens[] = {
    {1, DType::kF32, 0x090039d1a50fb32eULL},
    {1, DType::kBF16, 0xe7ca02ae05f060c2ULL},
    {4, DType::kF32, 0x090039d1a50fb32eULL},
    {4, DType::kBF16, 0xe7ca02ae05f060c2ULL},
};

TEST(AdaptationOffContract, ServedBitsMatchPreAdaptationGoldens) {
  LoadGenOptions lo;
  lo.seed = 77;
  lo.offered_rps = 2000.0;
  lo.num_requests = 24;
  lo.prompt = LengthDist::Uniform(2, 6);
  lo.decode = LengthDist::Uniform(0, 4);  // the historical golden load
  const auto arrivals = LoadGenerator(lo).GenerateAll();
  for (const OffGolden& g : kOffGoldens) {
    SCOPED_TRACE(testing::Message()
                 << "ep=" << g.ep << " dtype=" << DTypeName(g.dtype));
    MoeServer server(BaseServeOptions(g.ep, g.dtype, 1), H800Cluster(g.ep));
    const ServeReport r = server.Serve(arrivals);
    EXPECT_EQ(r.combined_digest, g.combined_digest);
    EXPECT_EQ(r.promotions, 0);
    EXPECT_EQ(r.retirements, 0);
    EXPECT_EQ(r.replicated_rows, 0);
  }
}

// ---- contract B: adaptation on is deterministic and bit-transparent --------

TEST(AdaptationOnContract, BitDeterministicAcrossThreadsAndEp) {
  for (int ep : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "ep=" << ep);
    const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
    uint64_t combined[2] = {0, 0};
    uint64_t req[2] = {0, 0};
    int64_t promotions[2] = {0, 0};
    int i = 0;
    for (int num_threads : {1, 8}) {
      MoeServer server(AdaptServeOptions(ep, DType::kBF16, num_threads),
                       H800Cluster(ep));
      const ServeReport r = server.Serve(arrivals);
      combined[i] = r.combined_digest;
      req[i] = RequestDigest(r.completed);
      promotions[i] = r.promotions;
      ++i;
    }
    EXPECT_EQ(combined[0], combined[1])
        << "adapted serving must be thread-count invariant";
    EXPECT_EQ(req[0], req[1]);
    EXPECT_EQ(promotions[0], promotions[1]);
    if (ep > 1) {
      EXPECT_GT(promotions[0], 0)
          << "the skewed synthetic load must actually trigger replication";
    } else {
      EXPECT_EQ(promotions[0], 0) << "EP 1 has nowhere to replicate";
    }
  }
}

TEST(AdaptationOnContract, ReplicationIsBitTransparent) {
  // Same saturating (t = 0) load, same synthetic routing stream; the ONLY
  // difference between the two runs is whether hot experts are split across
  // replicas. Replica weights are bit-identical slab copies and the combine
  // order is a pure function of (token, slot, lane), so the served bytes
  // must be EQUAL while the adapted run demonstrably replicated.
  const auto arrivals = SaturatingArrivals(40);
  ServeOptions on = AdaptServeOptions(4, DType::kF32, 1);
  ServeOptions off = on;
  off.adaptation = AdaptationOptions{};  // disabled

  MoeServer server_on(on, H800Cluster(4));
  const ServeReport r_on = server_on.Serve(arrivals);
  MoeServer server_off(off, H800Cluster(4));
  const ServeReport r_off = server_off.Serve(arrivals);

  ASSERT_GT(r_on.promotions, 0) << "the comparison is vacuous otherwise";
  EXPECT_GT(r_on.replicated_rows, 0);
  EXPECT_EQ(r_off.promotions, 0);
  EXPECT_EQ(r_on.combined_digest, r_off.combined_digest)
      << "replica slices changed the served bits: the slab copy or the "
         "combine order is not coordinate-pure";
  EXPECT_EQ(static_cast<int64_t>(r_on.completed.size()),
            static_cast<int64_t>(r_off.completed.size()));
}

TEST(AdaptationOnContract, DriftingSkewStaysDeterministic) {
  const auto arrivals = LoadGenerator(BaseLoadOptions(32)).GenerateAll();
  ServeOptions o = AdaptServeOptions(4, DType::kBF16, 1);
  o.drift_period_us = 2000.0;  // hot spot walks during the run
  uint64_t digests[2];
  int64_t promotions[2];
  for (int i = 0; i < 2; ++i) {
    MoeServer server(o, H800Cluster(4));
    const ServeReport r = server.Serve(arrivals);
    digests[i] = r.combined_digest;
    promotions[i] = r.promotions;
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(promotions[0], promotions[1]);
}

// ---- cluster plane aggregates the adaptation counters ----------------------

TEST(ClusterAdaptation, CountersAggregateAndStayDeterministic) {
  ClusterOptions co;
  co.server = AdaptServeOptions(4, DType::kBF16, 1);
  co.replicas = 2;
  co.placement = PlacementPolicy::kLeastLoaded;
  const auto arrivals = LoadGenerator(BaseLoadOptions(32)).GenerateAll();
  int64_t promotions[2];
  uint64_t digests[2];
  for (int i = 0; i < 2; ++i) {
    MoeCluster cluster(co, H800Cluster(4));
    const ClusterReport r = cluster.Run(arrivals);
    promotions[i] = r.promotions;
    uint64_t h = Fnv1aInit();
    for (const RequestRecord& c : r.completed) {
      h = Fnv1aAdd(h, &c.output_digest, sizeof(c.output_digest));
    }
    digests[i] = h;
  }
  EXPECT_GT(promotions[0], 0);
  EXPECT_EQ(promotions[0], promotions[1]);
  EXPECT_EQ(digests[0], digests[1]);
}

// ---- zero allocations survive adaptation -----------------------------------

TEST(AdaptationZeroAlloc, SteadyStateWindowWithReplicationActive) {
  // Static skew: one expert stays hot, so after the warm-up promotes it (a
  // change iteration: weight slab copy + profile flush + re-profile, all
  // allowed to allocate) the replica set is stable and the steady state
  // must be allocation-free -- the PR 8 envelope with the adaptation loop
  // running every iteration (EWMA update, tracker observe, split rebuild).
  constexpr int64_t kRequests = 220;
  constexpr int kWarmupIters = 16;
  constexpr int kWindowIters = 24;
  constexpr int kOfferPerIter = 3;
  const auto arrivals = SaturatingArrivals(kRequests);
  int64_t total_tokens = 0;
  for (const RequestSpec& r : arrivals) {
    total_tokens += r.TotalTokens();
  }

  MoeServer server(AdaptServeOptions(4, DType::kBF16, 1), H800Cluster(4));
  MoeServer::RunBounds bounds;
  bounds.expected_requests = kRequests;
  bounds.expected_tokens = total_tokens;
  bounds.max_prompt_tokens = 6;
  bounds.max_decode_tokens = 4;
  server.BeginRun(bounds);

  size_t next = 0;
  const auto offer_some = [&] {
    for (int k = 0; k < kOfferPerIter && next < arrivals.size(); ++k) {
      server.Offer(arrivals[next++]);
    }
  };
  double now = 0.0, end = 0.0;
  for (int i = 0; i < kWarmupIters; ++i) {
    offer_some();
    ASSERT_TRUE(server.StepIteration(now, &end));
    now = end;
  }
  // The window only proves the contract if the replica layout is already
  // in place and stays put.
  ASSERT_GT(server.View().promotions, 0)
      << "warm-up must cover the promotion; raise kWarmupIters or the skew";

  AllocStats stats;
  const int64_t promotions_before = server.View().promotions;
  const int64_t retirements_before = server.View().retirements;
  {
    AllocWindow w;
    for (int i = 0; i < kWindowIters; ++i) {
      offer_some();
      ASSERT_TRUE(server.StepIteration(now, &end));
      now = end;
    }
    stats = w.Snapshot();
  }
  EXPECT_EQ(server.View().promotions, promotions_before)
      << "a change iteration landed inside the window; the static-skew "
         "scenario is supposed to keep the replica set stable";
  EXPECT_EQ(server.View().retirements, retirements_before);
  EXPECT_EQ(stats.allocs, 0u)
      << stats.allocs << " heap allocations (" << stats.bytes
      << " bytes) in " << kWindowIters
      << " adapted steady-state iterations; set COMET_ALLOC_TRAP=1 for a "
         "backtrace";
  EXPECT_EQ(stats.frees, 0u);
  EXPECT_GT(server.View().replicated_rows, 0)
      << "the window must actually serve rows from replica slices";

  while (server.StepIteration(now, &end)) {
    offer_some();
    now = end;
  }
  while (next < arrivals.size()) {
    server.Offer(arrivals[next++]);
    while (server.StepIteration(now, &end)) {
      now = end;
    }
  }
  const ServeReport report = server.BuildReport(now);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()) + report.shed,
            kRequests);
}

}  // namespace
}  // namespace comet
