// Unit tests for the hardware substrate: cluster presets and the GEMM cost
// model (tile time, wave quantization, K-efficiency, roofline floor).
#include <gtest/gtest.h>

#include "hw/block_model.h"
#include "hw/gemm_cost.h"
#include "hw/gpu_spec.h"
#include "util/check.h"

namespace comet {
namespace {

TEST(ClusterPresets, H800Basics) {
  const ClusterSpec c = H800Cluster(8);
  EXPECT_EQ(c.world_size, 8);
  EXPECT_EQ(c.gpu.num_sms, 132);
  EXPECT_GT(c.gpu.peak_flops_per_us, 0.0);
  EXPECT_EQ(c.link.type, LinkType::kNvLink);
  // In-kernel wire rate beats kernel-level collectives.
  EXPECT_GT(c.link.bandwidth_bytes_per_us,
            c.link.collective_bandwidth_bytes_per_us);
  EXPECT_GT(c.link.per_block_bandwidth_bytes_per_us,
            c.link.per_block_bandwidth_scattered_bytes_per_us);
}

TEST(ClusterPresets, L20IsBandwidthLimited) {
  const ClusterSpec h = H800Cluster(8);
  const ClusterSpec l = L20Cluster(8);
  EXPECT_EQ(l.link.type, LinkType::kPcie);
  EXPECT_LT(l.link.bandwidth_bytes_per_us, h.link.bandwidth_bytes_per_us);
  EXPECT_LT(l.gpu.peak_flops_per_us, h.gpu.peak_flops_per_us);
}

TEST(ClusterPresets, LinkTypeNames) {
  EXPECT_EQ(LinkTypeName(LinkType::kNvLink), "NVLink");
  EXPECT_EQ(LinkTypeName(LinkType::kPcie), "PCIe");
}

TEST(GpuSpec, PerSmThroughput) {
  const ClusterSpec c = H800Cluster(8);
  EXPECT_NEAR(c.gpu.FlopsPerUsPerSm() * c.gpu.num_sms, c.gpu.peak_flops_per_us,
              1e-6);
}

class GemmCostTest : public ::testing::Test {
 protected:
  GemmCostModel model_{H800Cluster(8).gpu};
};

TEST_F(GemmCostTest, TileTimeScalesWithK) {
  const double t1 = model_.TileTimeUs(1024);
  const double t2 = model_.TileTimeUs(2048);
  EXPECT_GT(t2, t1);
  // Deeper K amortizes the pipeline better, so time grows sub-linearly.
  EXPECT_LT(t2, 2.0 * t1);
}

TEST_F(GemmCostTest, KEfficiencyMonotone) {
  EXPECT_LT(model_.KEfficiency(128), model_.KEfficiency(1024));
  EXPECT_LT(model_.KEfficiency(1024), model_.KEfficiency(16384));
  EXPECT_LE(model_.KEfficiency(1 << 20), 1.0);
}

TEST_F(GemmCostTest, NumTilesQuantizes) {
  EXPECT_EQ(model_.NumTiles(GemmShape{128, 128, 64}), 1);
  EXPECT_EQ(model_.NumTiles(GemmShape{129, 128, 64}), 2);
  EXPECT_EQ(model_.NumTiles(GemmShape{256, 256, 64}), 4);
  EXPECT_EQ(model_.NumTiles(GemmShape{0, 128, 64}), 0);
}

TEST_F(GemmCostTest, ZeroWorkCostsZero) {
  EXPECT_EQ(model_.TimeUs(GemmShape{0, 128, 128}, 132), 0.0);
  EXPECT_EQ(model_.GroupTimeUs({}, 132), 0.0);
}

TEST_F(GemmCostTest, MoreSmsNeverSlower) {
  const GemmShape shape{4096, 4096, 4096};
  double prev = model_.TimeUs(shape, 16);
  for (int sms : {32, 64, 132}) {
    const double t = model_.TimeUs(shape, sms);
    EXPECT_LE(t, prev * (1.0 + 1e-12));
    prev = t;
  }
}

TEST_F(GemmCostTest, WaveQuantizationPenalizesSmallM) {
  // Two GEMMs with the same total flops: one monolithic, one split in 8
  // fragments. The fragments pay extra waves -> t1 + t2 > t (Figure 1(b)).
  const GemmShape whole{1024, 4096, 4096};
  const GemmShape part{128, 4096, 4096};
  const double t_whole = model_.TimeUs(whole, 132);
  const double t_parts = 8.0 * model_.TimeUs(part, 132);
  EXPECT_GT(t_parts, t_whole);
}

TEST_F(GemmCostTest, GroupGemmPoolsTiles) {
  // 8 equal groups pooled in one kernel beat 8 sequential kernels.
  std::vector<GemmShape> groups(8, GemmShape{128, 4096, 4096});
  const double grouped = model_.GroupTimeUs(groups, 132);
  const double sequential = 8.0 * model_.TimeUs(groups[0], 132);
  EXPECT_LT(grouped, sequential);
}

TEST_F(GemmCostTest, GroupGemmRequiresUniformNK) {
  EXPECT_THROW(
      model_.GroupTimeUs({GemmShape{64, 128, 256}, GemmShape{64, 256, 256}},
                         132),
      CheckError);
  EXPECT_THROW(
      model_.GroupTimeUs({GemmShape{64, 128, 256}, GemmShape{64, 128, 128}},
                         132),
      CheckError);
}

TEST_F(GemmCostTest, MemoryBoundShapesHitRooflineFloor) {
  // A skinny GEMM (tiny K) moves many bytes per flop; the memory floor must
  // dominate the compute estimate.
  const GemmShape skinny{8192, 8192, 8};
  const double t = model_.TimeUs(skinny, 132);
  const GpuSpec gpu = H800Cluster(8).gpu;
  const double bytes = 2.0 * (8192.0 * 8 + 8.0 * 8192 + 8192.0 * 8192);
  EXPECT_GE(t, bytes / gpu.hbm_bandwidth_bytes_per_us * 0.99);
}

TEST_F(GemmCostTest, InvalidSmCountRejected) {
  EXPECT_THROW(model_.TimeUs(GemmShape{128, 128, 128}, 0), CheckError);
  EXPECT_THROW(model_.TimeUs(GemmShape{128, 128, 128}, 1000), CheckError);
}

TEST_F(GemmCostTest, TileShapeEfficiencyNativeIsOne) {
  EXPECT_DOUBLE_EQ(model_.TileShapeEfficiency(model_.tile_m(),
                                              model_.tile_n()), 1.0);
  // Larger tiles never beat the calibrated sustained rate.
  EXPECT_DOUBLE_EQ(model_.TileShapeEfficiency(256, 256), 1.0);
}

TEST_F(GemmCostTest, TileShapeEfficiencyMonotoneAndPunishesSlivers) {
  double prev = 0.0;
  for (int64_t d : {1, 4, 16, 64, 128}) {
    const double eff = model_.TileShapeEfficiency(d, d);
    EXPECT_GT(eff, prev);
    prev = eff;
  }
  // Token-wise granularity (1-row tiles) is far below native efficiency:
  // the §3.1.2 argument for tile-granular rather than row-granular work.
  EXPECT_LT(model_.TileShapeEfficiency(1, 128), 0.15);
}

TEST_F(GemmCostTest, SmallTileTimeReflectsEfficiencyNotJustFlops) {
  // Halving tile_m halves the flops but costs MORE than half the time.
  const double full = model_.TileTimeUs(1024, 128, 128);
  const double half = model_.TileTimeUs(1024, 64, 128);
  EXPECT_GT(half, full / 2.0);
  EXPECT_LT(half, full);
  // Two-arg overload agrees with the native one.
  EXPECT_DOUBLE_EQ(model_.TileTimeUs(1024),
                   model_.TileTimeUs(1024, model_.tile_m(), model_.tile_n()));
}

TEST_F(GemmCostTest, TileShapeEfficiencyRejectsNonPositive) {
  EXPECT_THROW(model_.TileShapeEfficiency(0, 128), CheckError);
  EXPECT_THROW(model_.TileTimeUs(128, 128, -1), CheckError);
}

// ---- per-block communication model ---------------------------------------------

TEST(CommBlockModel, BandwidthMonotoneInMessageSize) {
  const CommBlockModel model = CommBlockModelForLink(H800Cluster(8).link,
                                                     4096 * 2);
  double prev = 0.0;
  for (double s : {512.0, 8192.0, 65536.0, 1048576.0, 16.0 * 1048576.0}) {
    const double bw = model.BandwidthForMessage(s);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
  EXPECT_LT(prev, model.peak_bytes_per_us);
}

TEST(CommBlockModel, ReproducesLinkSpecRates) {
  // The calibration must return exactly the scattered rate at one token and
  // approach the contiguous rate for megabyte staged copies.
  const LinkSpec link = H800Cluster(8).link;
  const int64_t token = 4096 * 2;  // one BF16 Mixtral row
  const CommBlockModel model = CommBlockModelForLink(link, token);
  EXPECT_NEAR(model.BandwidthForMessage(static_cast<double>(token)),
              link.per_block_bandwidth_scattered_bytes_per_us,
              link.per_block_bandwidth_scattered_bytes_per_us * 1e-9);
  EXPECT_GT(model.BandwidthForMessage(64.0 * (1 << 20)),
            0.95 * link.per_block_bandwidth_bytes_per_us);
}

TEST(CommBlockModel, HalfPeakMessageSize) {
  const CommBlockModel model = CommBlockModelForLink(H800Cluster(8).link,
                                                     4096 * 2);
  const double s_half = model.MessageBytesForFraction(0.5);
  EXPECT_NEAR(model.BandwidthForMessage(s_half),
              0.5 * model.peak_bytes_per_us,
              model.peak_bytes_per_us * 1e-9);
}

TEST(CommBlockModel, ExplainsWhyEpNeedsMoreBlocks) {
  // At token granularity a block delivers ~4x less than with staged copies,
  // so an EP-heavy (scattered) configuration needs ~4x more blocks to fill
  // the same fabric -- the Figure 8 shift in nc*.
  const CommBlockModel model = CommBlockModelForLink(H800Cluster(8).link,
                                                     4096 * 2);
  const double token_bw = model.BandwidthForMessage(4096.0 * 2.0);
  const double staged_bw = model.BandwidthForMessage(1 << 20);
  EXPECT_GT(staged_bw / token_bw, 3.0);
}

TEST(CommBlockModel, RejectsDegenerateInputs) {
  const CommBlockModel model = CommBlockModelForLink(H800Cluster(8).link,
                                                     4096 * 2);
  EXPECT_THROW(model.BandwidthForMessage(0.0), CheckError);
  EXPECT_THROW(model.MessageBytesForFraction(1.0), CheckError);
  EXPECT_THROW(CommBlockModelForLink(H800Cluster(8).link, 0), CheckError);
  LinkSpec inverted = H800Cluster(8).link;
  inverted.per_block_bandwidth_bytes_per_us =
      inverted.per_block_bandwidth_scattered_bytes_per_us / 2.0;
  EXPECT_THROW(CommBlockModelForLink(inverted, 8192), CheckError);
}

}  // namespace
}  // namespace comet
