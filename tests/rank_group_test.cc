// Tests for the concurrent multi-rank functional data plane.
//
// Three layers of assurance:
//  * RankGroup semantics -- serial/concurrent mode selection, phase order,
//    barrier behavior, exception propagation, real concurrency.
//  * SymmetricHeap under genuine concurrency -- put-with-signal pipelines
//    between live rank threads, blocking wait-until, exact traffic totals
//    under contention, wait timeouts. (These are the suites the TSan CI job
//    runs; any missing acquire/release pairing trips there.)
//  * Determinism -- the full COMET functional forward AND backward are
//    bit-identical to the sharded reference for EP in {1,2,4,8} x threads
//    in {1,8}. Forward tiles are NN GEMMs; backward runs the NT (dgrad) and
//    TN (wgrad) paths, so all three transpose variants are pinned. Plus the
//    acceptance anchor: the EP=4 concurrent run equals the EP=1 reference.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>
#include <vector>

#include "baselines/common.h"
#include "comm/symmetric_heap.h"
#include "core/comet_backward.h"
#include "core/comet_executor.h"
#include "moe/backward.h"
#include "moe/reference_layer.h"
#include "moe/workload.h"
#include "runtime/rank_group.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {
namespace {

// ---- RankGroup semantics ----------------------------------------------------

TEST(RankGroup, SerialModeOrdersAllProduceBeforeAllConsume) {
  RankGroup group(4, RankGroupOptions{.num_threads = 1});
  EXPECT_FALSE(group.concurrent());
  std::vector<int> order;
  group.Run([&](int r) { order.push_back(r); },
            [&](int r) { order.push_back(100 + r); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 100, 101, 102, 103}));
}

TEST(RankGroup, ConcurrentModeRunsEveryRankExactlyOnce) {
  RankGroup group(6, RankGroupOptions{.num_threads = 6});
  EXPECT_TRUE(group.concurrent());
  std::vector<std::atomic<int>> produced(6), consumed(6);
  group.Run([&](int r) { produced[static_cast<size_t>(r)]++; },
            [&](int r) { consumed[static_cast<size_t>(r)]++; });
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(produced[static_cast<size_t>(r)].load(), 1);
    EXPECT_EQ(consumed[static_cast<size_t>(r)].load(), 1);
  }
}

TEST(RankGroup, ConcurrentModeOverlapsRanks) {
  // Every rank's produce blocks until ALL ranks entered produce: only a
  // genuinely concurrent launch can finish. Bounded spin so a regression to
  // serial execution fails instead of hanging.
  constexpr int kRanks = 4;
  RankGroup group(kRanks, RankGroupOptions{.num_threads = kRanks});
  ASSERT_TRUE(group.concurrent());
  std::atomic<int> entered{0};
  std::atomic<bool> all_overlapped{true};
  group.Run([&](int) {
    entered++;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (entered.load() < kRanks) {
      std::this_thread::yield();
      if (std::chrono::steady_clock::now() > deadline) {
        all_overlapped = false;
        return;
      }
    }
  });
  EXPECT_TRUE(all_overlapped.load());
}

TEST(RankGroup, PhaseBarrierSeparatesProduceFromConsume) {
  constexpr int kRanks = 4;
  RankGroup group(
      kRanks, RankGroupOptions{.num_threads = kRanks, .phase_barrier = true});
  std::atomic<int> produced{0};
  std::atomic<bool> consume_saw_all{true};
  group.Run(
      [&](int r) {
        // Stagger the producers so an unordered overlap would be caught.
        std::this_thread::sleep_for(std::chrono::milliseconds(2 * r));
        produced++;
      },
      [&](int) {
        if (produced.load() != kRanks) {
          consume_saw_all = false;
        }
      });
  EXPECT_TRUE(consume_saw_all.load());
}

TEST(RankGroup, ProduceExceptionPropagatesAndSkipsItsConsume) {
  RankGroup group(3, RankGroupOptions{.num_threads = 3});
  std::vector<std::atomic<int>> consumed(3);
  EXPECT_THROW(
      group.Run(
          [&](int r) {
            if (r == 1) {
              throw std::runtime_error("rank 1 produce failed");
            }
          },
          [&](int r) { consumed[static_cast<size_t>(r)]++; }),
      std::runtime_error);
  EXPECT_EQ(consumed[0].load(), 1);
  EXPECT_EQ(consumed[1].load(), 0);  // failed rank never consumes
  EXPECT_EQ(consumed[2].load(), 1);
}

TEST(RankGroup, InheritsSerialityFromScopedThreadLimit) {
  ScopedThreadLimit serial(1);
  RankGroup group(4);
  EXPECT_FALSE(group.concurrent());
}

TEST(RankGroup, ExplicitThreadCountOverridesScopedLimit) {
  ScopedThreadLimit serial(1);
  RankGroup group(4, RankGroupOptions{.num_threads = 4});
  EXPECT_TRUE(group.concurrent());
}

TEST(RankGroup, SingleRankNeverGoesConcurrent) {
  RankGroup group(1, RankGroupOptions{.num_threads = 8});
  EXPECT_FALSE(group.concurrent());
}

// ---- SymmetricHeap under real concurrency -----------------------------------

TEST(RankGroupHeap, SignalPipelineDeliversEveryRowAcrossThreads) {
  // Ring pipeline: rank r streams rows into rank (r+1) % R's window with
  // put-with-signal; each consumer blocks on the arrival counter of every
  // row before reading it. Payload checks catch both lost signals and
  // signals published before their data.
  constexpr int kRanks = 4;
  constexpr int64_t kRows = 96;
  constexpr int64_t kCols = 8;
  SymmetricHeap heap(kRanks);
  const auto buf = heap.Allocate("ring-rows", Shape{kRows, kCols});
  const auto sig = heap.AllocateSignals("ring-ready", kRows);

  RankGroup group(kRanks, RankGroupOptions{.num_threads = kRanks});
  ASSERT_TRUE(group.concurrent());
  std::atomic<int64_t> bad_rows{0};
  group.Run(
      [&](int r) {
        std::vector<float> row(kCols);
        for (int64_t i = 0; i < kRows; ++i) {
          for (int64_t c = 0; c < kCols; ++c) {
            row[static_cast<size_t>(c)] =
                static_cast<float>(r * 1000 + i * 10 + c);
          }
          heap.PutRowWithSignal(buf, r, (r + 1) % kRanks, i, row, sig, i);
        }
      },
      [&](int r) {
        const int producer = (r + kRanks - 1) % kRanks;
        std::vector<float> row(kCols);
        for (int64_t i = 0; i < kRows; ++i) {
          heap.WaitUntilSignalGe(sig, r, i, 1, /*timeout_ms=*/30000);
          heap.CopyRow(buf, r, r, i, row);
          for (int64_t c = 0; c < kCols; ++c) {
            if (row[static_cast<size_t>(c)] !=
                static_cast<float>(producer * 1000 + i * 10 + c)) {
              bad_rows++;
            }
          }
        }
      });
  EXPECT_EQ(bad_rows.load(), 0);
}

TEST(RankGroupHeap, ConcurrentTrafficAccountingIsExact) {
  // Every rank puts kRows rows to every OTHER rank concurrently; the atomic
  // byte counters must come out exact (no lost updates, no mutex needed).
  constexpr int kRanks = 6;
  constexpr int64_t kRows = 32;
  constexpr int64_t kCols = 16;
  SymmetricHeap heap(kRanks);
  // One row block per source rank: payload writes stay disjoint (the same
  // contract the executors' (token, slot, lane) partition provides); the
  // atomic byte counters are the contended state under test.
  const auto buf = heap.Allocate("traffic", Shape{kRanks * kRows, kCols});

  RankGroup group(kRanks, RankGroupOptions{.num_threads = kRanks});
  group.Run([&](int r) {
    const std::vector<float> row(kCols, static_cast<float>(r));
    for (int dst = 0; dst < kRanks; ++dst) {
      for (int64_t i = 0; i < kRows; ++i) {
        heap.PutRow(buf, r, dst, r * kRows + i, row);
      }
    }
  });
  const double row_bytes = static_cast<double>(kCols) * 4.0;
  for (int src = 0; src < kRanks; ++src) {
    for (int dst = 0; dst < kRanks; ++dst) {
      const double expected =
          src == dst ? 0.0 : static_cast<double>(kRows) * row_bytes;
      EXPECT_DOUBLE_EQ(heap.Traffic(src, dst), expected)
          << src << "->" << dst;
    }
  }
  EXPECT_DOUBLE_EQ(heap.TotalTraffic(),
                   static_cast<double>(kRanks) * (kRanks - 1) * kRows *
                       row_bytes);
}

TEST(RankGroupHeap, WaitUntilTimesOutWithBufferName) {
  SymmetricHeap heap(2);
  (void)heap.Allocate("data", Shape{2, 4});
  const auto sig = heap.AllocateSignals("never-signalled", 2);
  try {
    heap.WaitUntilSignalGe(sig, 1, 0, 1, /*timeout_ms=*/50);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("never-signalled"),
              std::string::npos);
  }
}

TEST(RankGroupHeap, WaitUntilReturnsOnceSignalled) {
  SymmetricHeap heap(2);
  const auto buf = heap.Allocate("data", Shape{2, 4});
  const auto sig = heap.AllocateSignals("ready", 2);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    heap.PutRowWithSignal(buf, 0, 1, 0, std::vector<float>(4, 2.5f), sig, 0);
  });
  heap.WaitUntilSignalGe(sig, 1, 0, 1, /*timeout_ms=*/30000);
  EXPECT_EQ(heap.Local(buf, 1).at({0, 3}), 2.5f);
  producer.join();
}

// ---- determinism: EP x threads bit-identical to the sharded reference ------

ModelConfig RankGroupModel() {
  ModelConfig model;
  model.name = "rank-group";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 24;
  model.ffn_hidden = 48;
  return model;
}

MoeWorkload RankGroupWorkload(int tp, int ep, uint64_t seed = 33) {
  WorkloadOptions options;
  options.seed = seed;
  options.load_std = 0.02;
  return MakeWorkload(RankGroupModel(), ParallelConfig{tp, ep}, 48, options);
}

CometOptions ThreadedOptions(int threads) {
  CometOptions options;
  options.tile_m = 8;
  options.tile_n = 8;
  options.num_threads = threads;
  return options;
}

using EpThreads = std::tuple<int /*ep*/, int /*threads*/>;

class RankGroupDeterminism : public ::testing::TestWithParam<EpThreads> {};

TEST_P(RankGroupDeterminism, ForwardBitExactVsShardedReference) {
  const auto [ep, threads] = GetParam();
  const MoeWorkload w = RankGroupWorkload(1, ep);
  const auto reference = ShardedReferenceMoeLayer(w);
  CometExecutor comet{ThreadedOptions(threads)};
  const auto run = comet.Run(w, H800Cluster(ep), ExecMode::kFunctional);
  ASSERT_EQ(run.outputs.size(), reference.size());
  for (size_t g = 0; g < reference.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(run.outputs[g], reference[g]), 0.0f)
        << "group " << g << " at EP=" << ep << " threads=" << threads;
  }
}

TEST_P(RankGroupDeterminism, BackwardBitExactVsShardedReference) {
  const auto [ep, threads] = GetParam();
  const MoeWorkload w = RankGroupWorkload(1, ep);
  const auto dout = MakeLossGradient(w, 91);
  const MoeGradients expected = ShardedReferenceMoeBackward(w, dout);
  const auto run = CometBackward(w, H800Cluster(ep), dout,
                                 ExecMode::kFunctional,
                                 ThreadedOptions(threads));
  EXPECT_EQ(MaxGradientDiff(run.grads, expected), 0.0f)
      << "EP=" << ep << " threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(
    EpByThreads, RankGroupDeterminism,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 8)),
    [](const ::testing::TestParamInfo<EpThreads>& info) {
      return "EP" + std::to_string(std::get<0>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "threads";
    });

// TP lanes add the lane-matched dispatch and the lane-inner combine order;
// pin one hybrid shape in both directions too.
TEST(RankGroupDeterminismHybrid, ForwardTp2Ep2Concurrent) {
  const MoeWorkload w = RankGroupWorkload(2, 2);
  const auto reference = ShardedReferenceMoeLayer(w);
  CometExecutor comet{ThreadedOptions(8)};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ASSERT_EQ(run.outputs.size(), reference.size());
  for (size_t g = 0; g < reference.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(run.outputs[g], reference[g]), 0.0f);
  }
}

TEST(RankGroupDeterminismHybrid, BackwardTp2Ep2Concurrent) {
  const MoeWorkload w = RankGroupWorkload(2, 2);
  const auto dout = MakeLossGradient(w, 93);
  const MoeGradients expected = ShardedReferenceMoeBackward(w, dout);
  const auto run = CometBackward(w, H800Cluster(4), dout,
                                 ExecMode::kFunctional, ThreadedOptions(8));
  EXPECT_EQ(MaxGradientDiff(run.grads, expected), 0.0f);
}

// The acceptance anchor: running the SAME tokens/routing/weights at EP=4
// (concurrently) and at EP=1 must give identical bits -- sharding the
// expert-parallel world is numerically free.
TEST(RankGroupDeterminismHybrid, Ep4ConcurrentBitIdenticalToEp1Reference) {
  const MoeWorkload w4 = RankGroupWorkload(1, 4, /*seed=*/77);
  const MoeWorkload w1 = RankGroupWorkload(1, 1, /*seed=*/77);
  // Same seed => same global routing and token values regardless of EP.
  const auto reference1 = ShardedReferenceMoeLayer(w1);
  ASSERT_EQ(reference1.size(), 1u);

  CometExecutor comet{ThreadedOptions(8)};
  const auto run4 = comet.Run(w4, H800Cluster(4), ExecMode::kFunctional);
  ASSERT_EQ(run4.outputs.size(), 4u);

  const int64_t group_tokens = w4.placement.tokens_per_group();
  for (int g = 0; g < 4; ++g) {
    for (int64_t t = 0; t < group_tokens; ++t) {
      const auto got = run4.outputs[static_cast<size_t>(g)].row(t);
      const auto want = reference1[0].row(g * group_tokens + t);
      for (size_t c = 0; c < want.size(); ++c) {
        ASSERT_EQ(got[c], want[c]) << "group " << g << " token " << t;
      }
    }
  }
}

// Capacity-dropped routes (fewer than topk entries) must flow through the
// canonical RankGroup combine too: only written slots are consumed, never
// weights past the route's end.
TEST(RankGroupDeterminismHybrid, CanonicalHandlesCapacityDroppedRoutes) {
  MoeWorkload w = RankGroupWorkload(1, 2, /*seed=*/41);
  const DropStats stats =
      ApplyCapacityFactor(w.routing, w.model().num_experts, 0.8);
  ASSERT_GT(stats.dropped_pairs, 0);
  w.plan = RoutePlan(w.placement, w.routing);
  const auto canonical = CanonicalFunctionalMoe(w);
  const auto reference = ShardedReferenceMoeLayer(w);
  ASSERT_EQ(canonical.size(), reference.size());
  for (size_t g = 0; g < reference.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(canonical[g], reference[g]), 0.0f);
  }
}

// And the EP=4 canonical baseline path (RankGroup with a phase barrier)
// agrees with the same EP=1 reference.
TEST(RankGroupDeterminismHybrid, CanonicalEp4MatchesEp1Reference) {
  const MoeWorkload w4 = RankGroupWorkload(1, 4, /*seed=*/78);
  const MoeWorkload w1 = RankGroupWorkload(1, 1, /*seed=*/78);
  const auto canonical4 = CanonicalFunctionalMoe(w4);
  const auto reference1 = ShardedReferenceMoeLayer(w1);
  ASSERT_EQ(canonical4.size(), 4u);
  const int64_t group_tokens = w4.placement.tokens_per_group();
  for (int g = 0; g < 4; ++g) {
    for (int64_t t = 0; t < group_tokens; ++t) {
      const auto got = canonical4[static_cast<size_t>(g)].row(t);
      const auto want = reference1[0].row(g * group_tokens + t);
      for (size_t c = 0; c < want.size(); ++c) {
        ASSERT_EQ(got[c], want[c]);
      }
    }
  }
}

}  // namespace
}  // namespace comet
