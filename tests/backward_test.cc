// Tests of the MoE backward pass: transposed GEMM kernels, activation
// derivatives, finite-difference gradient checks of the dense reference, and
// dense-vs-sharded consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "moe/activation.h"
#include "moe/backward.h"
#include "moe/group_gemm.h"
#include "moe/reference_layer.h"
#include "moe/workload.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

ModelConfig TinyModel() {
  ModelConfig model;
  model.name = "bwd-tiny";
  model.layers = 1;
  model.num_experts = 4;
  model.topk = 2;
  model.embedding = 16;
  model.ffn_hidden = 24;
  return model;
}

MoeWorkload TinyWorkload(int tp, int ep, int64_t tokens, uint64_t seed = 3) {
  WorkloadOptions options;
  options.seed = seed;
  return MakeWorkload(TinyModel(), ParallelConfig{tp, ep}, tokens, options);
}

// Loss used by every finite-difference check: L = sum_g <dout_g, out_g>.
// Its gradient w.r.t. any parameter is exactly what the backward pass
// reports for that dout.
double Loss(const MoeWorkload& w, const std::vector<Tensor>& dout) {
  const std::vector<Tensor> out = ReferenceMoeLayer(w);
  double loss = 0.0;
  for (size_t g = 0; g < out.size(); ++g) {
    const auto a = dout[g].data();
    const auto b = out[g].data();
    for (size_t i = 0; i < a.size(); ++i) {
      loss += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
  }
  return loss;
}

// Returns a workload identical to `w` but with fresh (copied) weights that
// the caller may mutate through the returned pointer.
std::pair<MoeWorkload, std::shared_ptr<ExpertWeights>> CopyWithMutableWeights(
    const MoeWorkload& w) {
  auto weights = std::make_shared<ExpertWeights>(*w.weights);
  MoeWorkload copy = w;
  copy.weights = weights;
  copy.sharded_weights = std::make_shared<ShardedExpertWeights>(
      *weights, w.placement.parallel().tp);
  return {std::move(copy), std::move(weights)};
}

void ExpectGradMatches(double fd, double analytic) {
  EXPECT_NEAR(fd, analytic, 3e-3 + 5e-2 * std::abs(analytic))
      << "fd=" << fd << " analytic=" << analytic;
}

// ---- transposed GEMM kernels ------------------------------------------------

Tensor Transpose(const Tensor& t) {
  Tensor out(Shape{t.cols(), t.rows()});
  for (int64_t i = 0; i < t.rows(); ++i) {
    for (int64_t j = 0; j < t.cols(); ++j) {
      out.at({j, i}) = t.at({i, j});
    }
  }
  return out;
}

TEST(TransposedGemm, NTMatchesExplicitTranspose) {
  Rng rng(1);
  const Tensor a = Tensor::Randn(Shape{7, 5}, rng);
  const Tensor b = Tensor::Randn(Shape{9, 5}, rng);
  Tensor c(Shape{7, 9});
  GemmNT(a, b, c);
  Tensor expected(Shape{7, 9});
  Gemm(a, Transpose(b), expected);
  EXPECT_LT(Tensor::MaxAbsDiff(c, expected), 1e-5f);
}

TEST(TransposedGemm, TNMatchesExplicitTranspose) {
  Rng rng(2);
  const Tensor a = Tensor::Randn(Shape{8, 6}, rng);
  const Tensor b = Tensor::Randn(Shape{8, 4}, rng);
  Tensor c(Shape{6, 4});
  GemmTN(a, b, c);
  Tensor expected(Shape{6, 4});
  Gemm(Transpose(a), b, expected);
  EXPECT_LT(Tensor::MaxAbsDiff(c, expected), 1e-5f);
}

TEST(TransposedGemm, NTTilesComposeToWhole) {
  Rng rng(3);
  const Tensor a = Tensor::Randn(Shape{10, 6}, rng);
  const Tensor b = Tensor::Randn(Shape{12, 6}, rng);
  Tensor whole(Shape{10, 12});
  GemmNT(a, b, whole);
  Tensor tiled(Shape{10, 12});
  for (int64_t r = 0; r < 10; r += 4) {
    for (int64_t c = 0; c < 12; c += 5) {
      GemmNTTile(a, b, tiled, r, std::min<int64_t>(r + 4, 10), c,
                 std::min<int64_t>(c + 5, 12));
    }
  }
  EXPECT_EQ(Tensor::MaxAbsDiff(whole, tiled), 0.0f);
}

TEST(TransposedGemm, TNTilesComposeToWholeBitExact) {
  Rng rng(4);
  const Tensor a = Tensor::Randn(Shape{9, 7}, rng);
  const Tensor b = Tensor::Randn(Shape{9, 11}, rng);
  Tensor whole(Shape{7, 11});
  GemmTN(a, b, whole);
  Tensor tiled(Shape{7, 11});
  for (int64_t r = 0; r < 7; r += 3) {
    for (int64_t c = 0; c < 11; c += 4) {
      GemmTNTile(a, b, tiled, r, std::min<int64_t>(r + 3, 7), c,
                 std::min<int64_t>(c + 4, 11));
    }
  }
  // The row reduction is never split across tiles, so composition is exact.
  EXPECT_EQ(Tensor::MaxAbsDiff(whole, tiled), 0.0f);
}

// ---- activation derivatives -------------------------------------------------

class ActivationGradTest
    : public ::testing::TestWithParam<ActivationKind> {};

TEST_P(ActivationGradTest, MatchesFiniteDifference) {
  const ActivationKind kind = GetParam();
  for (float x : {-2.5f, -1.0f, -0.3f, 0.2f, 0.9f, 2.0f, 4.0f}) {
    const float eps = 1e-3f;
    auto f = [&](float v) {
      switch (kind) {
        case ActivationKind::kGelu:
          return GeluScalar(v);
        case ActivationKind::kSilu:
          return SiluScalar(v);
        case ActivationKind::kRelu:
          return v > 0.0f ? v : 0.0f;
        case ActivationKind::kIdentity:
          return v;
      }
      return 0.0f;
    };
    const float fd = (f(x + eps) - f(x - eps)) / (2.0f * eps);
    EXPECT_NEAR(ActivationGradScalar(kind, x), fd, 2e-3f) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ActivationGradTest,
                         ::testing::Values(ActivationKind::kGelu,
                                           ActivationKind::kSilu,
                                           ActivationKind::kRelu,
                                           ActivationKind::kIdentity));

TEST(ActivationGrad, TileMatchesWhole) {
  Rng rng(5);
  const Tensor pre = Tensor::Randn(Shape{6, 8}, rng);
  Tensor whole = Tensor::Randn(Shape{6, 8}, rng);
  Tensor tiled = whole;
  ApplyActivationGrad(whole, pre, ActivationKind::kGelu);
  for (int64_t r = 0; r < 6; r += 2) {
    ApplyActivationGradTile(tiled, pre, ActivationKind::kGelu, r, r + 2, 0, 8);
  }
  EXPECT_EQ(Tensor::MaxAbsDiff(whole, tiled), 0.0f);
}

// ---- finite-difference checks of the dense reference -------------------------

class BackwardFdTest : public ::testing::Test {
 protected:
  const MoeWorkload w_ = TinyWorkload(1, 2, 12);
  const std::vector<Tensor> dout_ = MakeLossGradient(w_, 7);
  const MoeGradients grads_ = ReferenceMoeBackward(w_, dout_);
  static constexpr double kEps = 5e-3;
};

TEST_F(BackwardFdTest, WeightGradientsW0) {
  for (const auto& [e, r, c] : {std::tuple<int64_t, int64_t, int64_t>{0, 0, 0},
                                {1, 3, 7},
                                {2, 15, 23},
                                {3, 8, 11}}) {
    auto [plus, wplus] = CopyWithMutableWeights(w_);
    wplus->MutableW0(e).at({r, c}) += static_cast<float>(kEps);
    auto [minus, wminus] = CopyWithMutableWeights(w_);
    wminus->MutableW0(e).at({r, c}) -= static_cast<float>(kEps);
    const double fd = (Loss(plus, dout_) - Loss(minus, dout_)) / (2 * kEps);
    ExpectGradMatches(fd, grads_.dw0[static_cast<size_t>(e)].at({r, c}));
  }
}

TEST_F(BackwardFdTest, WeightGradientsW1) {
  for (const auto& [e, r, c] : {std::tuple<int64_t, int64_t, int64_t>{0, 0, 0},
                                {1, 9, 3},
                                {2, 23, 15},
                                {3, 12, 5}}) {
    auto [plus, wplus] = CopyWithMutableWeights(w_);
    wplus->MutableW1(e).at({r, c}) += static_cast<float>(kEps);
    auto [minus, wminus] = CopyWithMutableWeights(w_);
    wminus->MutableW1(e).at({r, c}) -= static_cast<float>(kEps);
    const double fd = (Loss(plus, dout_) - Loss(minus, dout_)) / (2 * kEps);
    ExpectGradMatches(fd, grads_.dw1[static_cast<size_t>(e)].at({r, c}));
  }
}

TEST_F(BackwardFdTest, InputGradients) {
  for (const auto& [g, r, c] : {std::tuple<int, int64_t, int64_t>{0, 0, 0},
                                {0, 5, 9},
                                {1, 2, 15},
                                {1, 4, 3}}) {
    MoeWorkload plus = w_;
    plus.inputs[static_cast<size_t>(g)].at({r, c}) +=
        static_cast<float>(kEps);
    MoeWorkload minus = w_;
    minus.inputs[static_cast<size_t>(g)].at({r, c}) -=
        static_cast<float>(kEps);
    const double fd = (Loss(plus, dout_) - Loss(minus, dout_)) / (2 * kEps);
    ExpectGradMatches(fd, grads_.dinput[static_cast<size_t>(g)].at({r, c}));
  }
}

TEST_F(BackwardFdTest, GateWeightGradients) {
  for (const auto& [t, slot] : {std::pair<int64_t, int64_t>{0, 0},
                                {3, 1},
                                {7, 0},
                                {11, 1}}) {
    MoeWorkload plus = w_;
    plus.routing.tokens[static_cast<size_t>(t)]
        .weights[static_cast<size_t>(slot)] += static_cast<float>(kEps);
    MoeWorkload minus = w_;
    minus.routing.tokens[static_cast<size_t>(t)]
        .weights[static_cast<size_t>(slot)] -= static_cast<float>(kEps);
    const double fd = (Loss(plus, dout_) - Loss(minus, dout_)) / (2 * kEps);
    ExpectGradMatches(fd, grads_.dgate.at({t, slot}));
  }
}

// ---- dense vs sharded -------------------------------------------------------

TEST(ShardedBackward, Tp1MatchesDenseBitExact) {
  const MoeWorkload w = TinyWorkload(1, 2, 16);
  const auto dout = MakeLossGradient(w, 11);
  const MoeGradients dense = ReferenceMoeBackward(w, dout);
  const MoeGradients sharded = ShardedReferenceMoeBackward(w, dout);
  EXPECT_EQ(MaxGradientDiff(dense, sharded), 0.0f);
}

class ShardedBackwardParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShardedBackwardParamTest, MatchesDenseWithinTolerance) {
  const auto [tp, ep] = GetParam();
  const MoeWorkload w = TinyWorkload(tp, ep, 16);
  const auto dout = MakeLossGradient(w, 13);
  const MoeGradients dense = ReferenceMoeBackward(w, dout);
  const MoeGradients sharded = ShardedReferenceMoeBackward(w, dout);
  // Only FP reassociation across shards separates them.
  EXPECT_LT(MaxGradientDiff(dense, sharded), 5e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Parallelisms, ShardedBackwardParamTest,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{2, 1},
                      std::pair<int, int>{4, 1}, std::pair<int, int>{1, 4},
                      std::pair<int, int>{2, 2}, std::pair<int, int>{4, 2}));

// ---- structural properties ----------------------------------------------------

TEST(Backward, ZeroDoutGivesZeroGradients) {
  const MoeWorkload w = TinyWorkload(1, 2, 8);
  std::vector<Tensor> dout;
  for (int g = 0; g < 2; ++g) {
    dout.emplace_back(Shape{w.placement.tokens_per_group(),
                            w.model().embedding});
  }
  const MoeGradients grads = ReferenceMoeBackward(w, dout);
  const MoeGradients zeros = ReferenceMoeBackward(w, dout);
  EXPECT_EQ(MaxGradientDiff(grads, zeros), 0.0f);
  for (const Tensor& t : grads.dinput) {
    EXPECT_EQ(Tensor::MaxAbsDiff(t, Tensor::Zeros(t.shape())), 0.0f);
  }
  for (const Tensor& t : grads.dw0) {
    EXPECT_EQ(Tensor::MaxAbsDiff(t, Tensor::Zeros(t.shape())), 0.0f);
  }
}

TEST(Backward, Deterministic) {
  const MoeWorkload w = TinyWorkload(2, 2, 16);
  const auto dout = MakeLossGradient(w, 5);
  const MoeGradients a = ShardedReferenceMoeBackward(w, dout);
  const MoeGradients b = ShardedReferenceMoeBackward(w, dout);
  EXPECT_EQ(MaxGradientDiff(a, b), 0.0f);
}

TEST(Backward, GradientShapes) {
  const MoeWorkload w = TinyWorkload(2, 2, 16);
  const auto dout = MakeLossGradient(w, 5);
  const MoeGradients grads = ReferenceMoeBackward(w, dout);
  ASSERT_EQ(grads.dinput.size(), 2u);
  EXPECT_EQ(grads.dinput[0].rows(), 8);
  EXPECT_EQ(grads.dinput[0].cols(), 16);
  ASSERT_EQ(grads.dw0.size(), 4u);
  EXPECT_EQ(grads.dw0[0].rows(), 16);
  EXPECT_EQ(grads.dw0[0].cols(), 24);
  EXPECT_EQ(grads.dw1[0].rows(), 24);
  EXPECT_EQ(grads.dw1[0].cols(), 16);
  EXPECT_EQ(grads.dgate.rows(), 16);
  EXPECT_EQ(grads.dgate.cols(), 2);
}

TEST(Backward, LossGradientReproducible) {
  const MoeWorkload w = TinyWorkload(1, 2, 8);
  const auto a = MakeLossGradient(w, 21);
  const auto b = MakeLossGradient(w, 21);
  ASSERT_EQ(a.size(), b.size());
  for (size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(a[g], b[g]), 0.0f);
  }
  const auto c = MakeLossGradient(w, 22);
  EXPECT_GT(Tensor::MaxAbsDiff(a[0], c[0]), 0.0f);
}

TEST(Backward, RejectsWrongDoutShape) {
  const MoeWorkload w = TinyWorkload(1, 2, 8);
  std::vector<Tensor> dout;
  dout.emplace_back(Shape{3, 16});  // wrong rows, wrong count
  EXPECT_THROW(ReferenceMoeBackward(w, dout), CheckError);
}

TEST(Backward, RejectsUnmaterializedWorkload) {
  WorkloadOptions options;
  options.materialize = false;
  const MoeWorkload w =
      MakeWorkload(TinyModel(), ParallelConfig{1, 2}, 8, options);
  std::vector<Tensor> dout;
  for (int g = 0; g < 2; ++g) {
    dout.emplace_back(Shape{4, 16});
  }
  EXPECT_THROW(ReferenceMoeBackward(w, dout), CheckError);
}

}  // namespace
}  // namespace comet
