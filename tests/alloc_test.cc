// The allocation-count regression tier (docs/ARCHITECTURE.md, "The
// allocation plane").
//
// Three layers of pinning:
//  1. The allocator primitives themselves (AllocCounter interposition,
//     MonotonicArena, FixedPool, InlineVec): reset semantics, capacity
//     retention, loud CheckError on exhaustion.
//  2. The tentpole contract: a steady-state MoeServer::StepIteration --
//     admission, packing, routing, the full functional executor pass across
//     every rank, harvesting and retirement -- performs ZERO heap
//     allocations, across host threads {1,8} x EP {1,4} x dtype
//     {f32,bf16}. The counter is process-wide, so an allocation on a pool
//     worker or a parked rank thread fails the test just like one on the
//     serving loop.
//  3. Digest pins: the zero-allocation refactor must be bit-invisible.
//     Serving reports (combined digest, per-request latency bit patterns,
//     iteration/token counts, simulated duration) and the cluster plane's
//     per-request digest are pinned to golden values captured BEFORE the
//     refactor. Any future "optimization" that changes a rounding point, a
//     draw order or the packing discipline trips these before it lands.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "hw/gpu_spec.h"
#include "serve/cluster.h"
#include "serve/loadgen.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/alloc_counter.h"
#include "util/arena.h"
#include "util/check.h"
#include "util/inline_vec.h"

namespace comet {
namespace {

using util::AllocCounter;
using util::AllocStats;
using util::AllocWindow;
using util::FixedPool;
using util::InlineVec;
using util::MonotonicArena;

// ---- the counter itself ----------------------------------------------------

TEST(AllocCounter, InterposerIsLinkedIn) {
  // If this fails, the build stopped linking alloc_counter.cc's operator
  // new/delete into the test binary and every zero-allocation assertion
  // below is vacuous.
  ASSERT_TRUE(AllocCounter::Interposed());
}

TEST(AllocCounter, CountsOnlyInsideWindow) {
  std::vector<int> warm;
  warm.reserve(1);  // outside any window: never counted
  uint64_t before;
  {
    AllocWindow w;
    before = w.Snapshot().allocs;
    // Direct operator-new call: a new-EXPRESSION paired with its delete may
    // legally be elided at -O3, which would make this test vacuous.
    void* p = ::operator new(32);
    ::operator delete(p);
    const AllocStats s = w.Snapshot();
    EXPECT_GE(s.allocs, before + 1);
    EXPECT_GE(s.frees, 1u);
    EXPECT_GE(s.bytes, 32u);
  }
  EXPECT_FALSE(AllocCounter::enabled());
}

TEST(AllocCounter, AttributesToThread) {
  AllocWindow w;
  void* p = ::operator new(sizeof(double));  // not elidable (see above)
  ::operator delete(p);
  EXPECT_GE(AllocCounter::Thread().allocs, 1u);
}

// ---- MonotonicArena --------------------------------------------------------

TEST(MonotonicArena, BumpAllocatesAndAligns) {
  MonotonicArena arena(1024);
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_GE(arena.used(), 11u);
  EXPECT_EQ(arena.capacity(), 1024u);
}

TEST(MonotonicArena, ResetForgetsButKeepsBlock) {
  MonotonicArena arena(256);
  void* first = arena.Allocate(64);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  // Same block, same first address: Reset is O(1) reuse, not reallocation.
  EXPECT_EQ(arena.Allocate(64), first);
}

TEST(MonotonicArena, SteadyStateAllocationsAreFree) {
  MonotonicArena arena(4096);
  AllocWindow w;
  for (int iter = 0; iter < 100; ++iter) {
    arena.Reset();
    (void)arena.AllocateArray<int64_t>(64);
    (void)arena.Allocate(100, 16);
  }
  EXPECT_EQ(w.Snapshot().allocs, 0u);
}

TEST(MonotonicArena, ExhaustionThrowsLoudly) {
  MonotonicArena arena(64);
  (void)arena.Allocate(48);
  EXPECT_THROW(arena.Allocate(32), CheckError)
      << "a silent heap fallback would make the zero-allocation guarantee "
         "probabilistic";
  EXPECT_THROW(arena.Allocate(17, 64), CheckError) << "alignment counts too";
}

TEST(MonotonicArena, RejectsBadAlignment) {
  MonotonicArena arena(64);
  EXPECT_THROW(arena.Allocate(8, 3), CheckError);
  EXPECT_THROW(arena.Allocate(8, 0), CheckError);
}

// ---- FixedPool -------------------------------------------------------------

TEST(FixedPool, AcquireReleaseCyclesAreAllocationFree) {
  FixedPool<std::vector<int>> pool(4);
  // Warm the pooled objects' internal capacity.
  std::vector<std::vector<int>*> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(pool.Acquire());
    held.back()->reserve(64);
  }
  for (auto* p : held) {
    pool.Release(p);
  }

  AllocWindow w;
  for (int iter = 0; iter < 100; ++iter) {
    auto* p = pool.Acquire();
    p->clear();
    for (int i = 0; i < 64; ++i) {
      p->push_back(i);  // within warmed capacity
    }
    pool.Release(p);
  }
  EXPECT_EQ(w.Snapshot().allocs, 0u);
}

TEST(FixedPool, ReleasedObjectsKeepTheirBuffers) {
  FixedPool<std::vector<int>> pool(1);
  auto* p = pool.Acquire();
  p->reserve(128);
  const size_t cap = p->capacity();
  pool.Release(p);
  auto* q = pool.Acquire();
  EXPECT_EQ(q, p) << "single-object pool must hand back the same storage";
  EXPECT_GE(q->capacity(), cap) << "release must not shed capacity";
  pool.Release(q);
}

TEST(FixedPool, ExhaustionThrowsLoudly) {
  FixedPool<int> pool(2);
  int* a = pool.Acquire();
  int* b = pool.Acquire();
  EXPECT_THROW(pool.Acquire(), CheckError);
  pool.Release(a);
  EXPECT_NO_THROW(pool.Release(b));
  EXPECT_THROW(pool.Release(a), CheckError) << "double release";
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

// ---- InlineVec -------------------------------------------------------------

TEST(InlineVec, StaysInlineUpToN) {
  AllocWindow w;
  InlineVec<int64_t, 8> v;
  for (int64_t i = 0; i < 8; ++i) {
    v.push_back(i);
  }
  EXPECT_TRUE(v.is_inline());
  InlineVec<int64_t, 8> copy = v;  // copies are inline too
  EXPECT_TRUE(copy.is_inline());
  EXPECT_EQ(copy, v);
  std::vector<InlineVec<int64_t, 8>> table;
  table.reserve(16);
  for (int i = 0; i < 16; ++i) {
    table.push_back(v);  // the RoutingTable pattern
  }
  EXPECT_EQ(w.Snapshot().allocs, 1u) << "only the table's own reserve";
}

TEST(InlineVec, SpillsBeyondNAndStaysCorrect) {
  InlineVec<int64_t, 4> v;
  for (int64_t i = 0; i < 12; ++i) {
    v.push_back(i);
  }
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 12u);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
  InlineVec<int64_t, 4> copy = v;
  EXPECT_EQ(copy, v);
  v.clear();
  EXPECT_TRUE(v.empty());
}

// ---- the serving scenario (mirrors serve_test's helpers) -------------------

ModelConfig ServeModel() {
  ModelConfig m;
  m.name = "serve-tiny";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 32;
  m.ffn_hidden = 64;
  return m;
}

ServeOptions BaseServeOptions(int ep, DType dtype, int num_threads) {
  ServeOptions o;
  o.model = ServeModel();
  o.parallel = ParallelConfig{1, ep};
  o.seed = 1234;
  o.dtype = dtype;
  o.num_threads = num_threads;
  o.token_budget = 16;
  o.max_active = 8;
  o.queue_capacity = 64;
  return o;
}

LoadGenOptions BaseLoadOptions(int64_t n = 24) {
  LoadGenOptions o;
  o.seed = 77;
  o.offered_rps = 2000.0;
  o.num_requests = n;
  o.prompt = LengthDist::Uniform(2, 6);
  o.decode = LengthDist::Uniform(0, 4);
  return o;
}

// ---- the tentpole: zero allocations per steady-state StepIteration ---------

// Drives a server through the dispatcher hooks under saturating load: offer
// a trickle each iteration so the queue never drains, warm up past every
// capacity high-water mark (pool buffers, nc memo for the saturated batch
// shape, executor output slabs), then count a mid-run window.
void ExpectZeroAllocSteadyState(int num_threads, int ep, DType dtype,
                                bool telemetry = false) {
  SCOPED_TRACE(testing::Message() << "threads=" << num_threads << " ep=" << ep
                                  << " dtype=" << DTypeName(dtype)
                                  << " telemetry=" << telemetry);
  constexpr int64_t kRequests = 220;
  constexpr int kWarmupIters = 12;
  constexpr int kWindowIters = 24;
  constexpr int kOfferPerIter = 3;

  std::vector<RequestSpec> arrivals;
  int64_t max_prompt = 0, max_decode = 0, total_tokens = 0;
  for (int64_t i = 0; i < kRequests; ++i) {
    RequestSpec r;
    r.id = i;
    r.seed = static_cast<uint64_t>(i) * 1000003ULL + 5;
    r.prompt_tokens = 2 + (i % 5);  // 2..6, like the golden load
    r.decode_tokens = i % 5;        // 0..4
    r.arrival_us = 0.0;
    max_prompt = std::max(max_prompt, r.prompt_tokens);
    max_decode = std::max(max_decode, r.decode_tokens);
    total_tokens += r.TotalTokens();
    arrivals.push_back(r);
  }

  ServeOptions options = BaseServeOptions(ep, dtype, num_threads);
  options.telemetry.enabled = telemetry;
  MoeServer server(options, H800Cluster(ep));
  MoeServer::RunBounds bounds;
  bounds.expected_requests = kRequests;
  bounds.expected_tokens = total_tokens;
  bounds.max_prompt_tokens = max_prompt;
  bounds.max_decode_tokens = max_decode;
  server.BeginRun(bounds);

  size_t next = 0;
  const auto offer_some = [&] {
    for (int k = 0; k < kOfferPerIter && next < arrivals.size(); ++k) {
      server.Offer(arrivals[next++]);
    }
  };
  double now = 0.0, end = 0.0;
  for (int i = 0; i < kWarmupIters; ++i) {
    offer_some();
    ASSERT_TRUE(server.StepIteration(now, &end));
    now = end;
  }

  AllocStats stats;
  {
    AllocWindow w;
    for (int i = 0; i < kWindowIters; ++i) {
      offer_some();
      ASSERT_TRUE(server.StepIteration(now, &end));
      now = end;
    }
    stats = w.Snapshot();
  }
  EXPECT_EQ(stats.allocs, 0u)
      << stats.allocs << " heap allocations (" << stats.bytes
      << " bytes) leaked into " << kWindowIters
      << " steady-state iterations; set COMET_ALLOC_TRAP=1 to get a "
         "backtrace at the first one";
  EXPECT_EQ(stats.frees, 0u);

  // The run must still finish and account coherently after the window.
  while (server.StepIteration(now, &end)) {
    offer_some();
    now = end;
  }
  while (next < arrivals.size()) {
    server.Offer(arrivals[next++]);
    while (server.StepIteration(now, &end)) {
      now = end;
    }
  }
  const ServeReport report = server.BuildReport(now);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()) + report.shed,
            kRequests);
}

TEST(ZeroAllocServing, SteadyStateAcrossThreadsEpDtype) {
  for (int num_threads : {1, 8}) {
    for (int ep : {1, 4}) {
      for (DType dtype : {DType::kF32, DType::kBF16}) {
        ExpectZeroAllocSteadyState(num_threads, ep, dtype);
      }
    }
  }
}

// The telemetry plane's recording (registry counters/gauges/histograms +
// the span ring, all live in this window) must be as allocation-free as the
// loop it observes: same window, telemetry ON.
TEST(ZeroAllocServing, SteadyStateWithTelemetryOn) {
  for (int num_threads : {1, 8}) {
    for (int ep : {1, 4}) {
      ExpectZeroAllocSteadyState(num_threads, ep, DType::kF32,
                                 /*telemetry=*/true);
    }
  }
}

// ---- digest pins: the refactor is bit-invisible ----------------------------

// Golden values captured on the pre-refactor serving plane (allocating
// BuildBatchWorkload / RunBatch path), serving BaseLoadOptions(24) through
// BaseServeOptions(ep, dtype, 1). Latency values are pinned as f64 bit
// patterns -- "close" is not a thing the simulated clock is allowed to be.
struct ServeGolden {
  int ep;
  DType dtype;
  uint64_t combined_digest;
  uint64_t req_digest;  // FNV over (id, output_digest, queue_wait, ttft,
                        // e2e, mean_itl) of every completed record, id order
  int64_t completed;
  int64_t shed;
  int64_t iterations;
  int64_t batched_tokens;
  uint64_t ttft_p50_bits;
  uint64_t ttft_p99_bits;
  uint64_t itl_p99_bits;
  uint64_t e2e_p99_bits;
  uint64_t queue_wait_p99_bits;
  uint64_t sim_duration_bits;
};

constexpr ServeGolden kServeGoldens[] = {
    {1, DType::kF32, 0x090039d1a50fb32eULL, 0xea27038452594fc1ULL, 24, 0, 57,
     141, 0x404bcf4c84e55f00ULL, 0x40586738b88d7fc0ULL, 0x404bcf5869d5e200ULL,
     0x40733d6ea7e7a97cULL, 0x4044ff2adeade200ULL, 0x40c51c5984fedcd3ULL},
    {1, DType::kBF16, 0xe7ca02ae05f060c2ULL, 0x9e3759e4bd910e3dULL, 24, 0, 57,
     141, 0x404bcf4c84e55f00ULL, 0x40586738b88d7fc0ULL, 0x404bcf5869d5e200ULL,
     0x40733d6ea7e7a97cULL, 0x4044ff2adeade200ULL, 0x40c51c5984fedcd3ULL},
    {4, DType::kF32, 0x090039d1a50fb32eULL, 0x2b6f7bc81942d53fULL, 24, 0, 57,
     141, 0x404d69934a694540ULL, 0x405a2595ce77ada0ULL, 0x404d69b785750a80ULL,
     0x40753e21a33ba8d4ULL, 0x4046e22659815c40ULL, 0x40c51df35de6c0a0ULL},
    {4, DType::kBF16, 0xe7ca02ae05f060c2ULL, 0x2e42094ea5f04d13ULL, 24, 0, 57,
     141, 0x404d69934a694540ULL, 0x405a2595ce77ada0ULL, 0x404d69b785750a80ULL,
     0x40753e21a33ba8d4ULL, 0x4046e22659815c40ULL, 0x40c51df35de6c0a0ULL},
};

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

uint64_t RequestDigest(const std::vector<RequestRecord>& completed) {
  uint64_t h = Fnv1aInit();
  for (const RequestRecord& c : completed) {
    h = Fnv1aAdd(h, &c.id, sizeof(c.id));
    h = Fnv1aAdd(h, &c.output_digest, sizeof(c.output_digest));
    h = Fnv1aAdd(h, &c.queue_wait_us, sizeof(c.queue_wait_us));
    h = Fnv1aAdd(h, &c.ttft_us, sizeof(c.ttft_us));
    h = Fnv1aAdd(h, &c.e2e_us, sizeof(c.e2e_us));
    h = Fnv1aAdd(h, &c.mean_itl_us, sizeof(c.mean_itl_us));
  }
  return h;
}

TEST(DigestPin, ServeReportsMatchPreRefactorGoldens) {
  for (const ServeGolden& g : kServeGoldens) {
    // The goldens were captured single-threaded; the data plane is
    // thread-count invariant, so they must hold at 8 threads too.
    for (int num_threads : {1, 8}) {
      SCOPED_TRACE(testing::Message()
                   << "ep=" << g.ep << " dtype=" << DTypeName(g.dtype)
                   << " threads=" << num_threads);
      const auto arrivals = LoadGenerator(BaseLoadOptions()).GenerateAll();
      MoeServer server(BaseServeOptions(g.ep, g.dtype, num_threads),
                       H800Cluster(g.ep));
      const ServeReport r = server.Serve(arrivals);

      EXPECT_EQ(r.combined_digest, g.combined_digest);
      EXPECT_EQ(RequestDigest(r.completed), g.req_digest);
      EXPECT_EQ(static_cast<int64_t>(r.completed.size()), g.completed);
      EXPECT_EQ(r.shed, g.shed);
      EXPECT_EQ(r.iterations, g.iterations);
      EXPECT_EQ(r.batched_tokens, g.batched_tokens);
      EXPECT_EQ(Bits(r.ttft_us.p50), g.ttft_p50_bits);
      EXPECT_EQ(Bits(r.ttft_us.p99), g.ttft_p99_bits);
      EXPECT_EQ(Bits(r.itl_us.p99), g.itl_p99_bits);
      EXPECT_EQ(Bits(r.e2e_us.p99), g.e2e_p99_bits);
      EXPECT_EQ(Bits(r.queue_wait_us.p99), g.queue_wait_p99_bits);
      EXPECT_EQ(Bits(r.sim_duration_us), g.sim_duration_bits);
    }
  }
}

TEST(DigestPin, ClusterRunMatchesPreRefactorGolden) {
  ClusterOptions co;
  co.server = BaseServeOptions(2, DType::kBF16, 1);
  co.replicas = 2;
  co.placement = PlacementPolicy::kPowerOfTwo;
  const auto arrivals = LoadGenerator(BaseLoadOptions(32)).GenerateAll();
  MoeCluster cluster(co, H800Cluster(2));
  const ClusterReport r = cluster.Run(arrivals);

  uint64_t req_digest = Fnv1aInit();
  for (const RequestRecord& c : r.completed) {
    req_digest = Fnv1aAdd(req_digest, &c.id, sizeof(c.id));
    req_digest = Fnv1aAdd(req_digest, &c.output_digest,
                          sizeof(c.output_digest));
    req_digest = Fnv1aAdd(req_digest, &c.ttft_us, sizeof(c.ttft_us));
    req_digest = Fnv1aAdd(req_digest, &c.e2e_us, sizeof(c.e2e_us));
  }
  EXPECT_EQ(req_digest, 0xfbf4acda239cfa0dULL);
  EXPECT_EQ(static_cast<int64_t>(r.completed.size()), 32);
  EXPECT_EQ(r.shed, 0);
  EXPECT_EQ(r.dispatched, 32);
}

}  // namespace
}  // namespace comet
