// Tests of the multi-layer functional MoE model: content-dependent gate
// routing per layer, residual stacking, and executor-equivalence through the
// whole stack.
#include <gtest/gtest.h>

#include "baselines/megatron.h"
#include "core/comet_executor.h"
#include "runtime/moe_model.h"
#include "util/check.h"

namespace comet {
namespace {

ModelConfig StackModel(int64_t layers) {
  ModelConfig model;
  model.name = "stack";
  model.layers = layers;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 32;
  model.ffn_hidden = 48;
  return model;
}

TEST(MoeModel, CometStackBitExactVsReference) {
  const MoeModel m(StackModel(3), ParallelConfig{2, 2}, 32);
  const auto inputs = m.MakeInputs(5);
  const auto expected = m.ReferenceForward(inputs);
  CometExecutor comet;
  const auto got = m.Forward(comet, H800Cluster(4), inputs);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t g = 0; g < got.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(got[g], expected[g]), 0.0f) << "group " << g;
  }
}

TEST(MoeModel, BaselineStackMatchesCometStack) {
  const MoeModel m(StackModel(2), ParallelConfig{1, 4}, 32);
  const auto inputs = m.MakeInputs(6);
  CometExecutor comet;
  MegatronExecutor megatron = MakeMegatronCutlass();
  const auto a = m.Forward(comet, H800Cluster(4), inputs);
  const auto b = m.Forward(megatron, H800Cluster(4), inputs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(a[g], b[g]), 0.0f);
  }
}

TEST(MoeModel, RoutingIsContentDependentAcrossLayers) {
  const MoeModel m(StackModel(2), ParallelConfig{1, 2}, 24);
  const auto inputs = m.MakeInputs(7);
  const MoeWorkload w0 = m.LayerWorkload(0, inputs);
  // Feed layer 0's reference output into layer 1: routing must differ (the
  // activations changed and so did the gate weights).
  const auto mid = m.ReferenceForward(inputs);  // full stack, fine for diff
  const MoeWorkload w1 = m.LayerWorkload(1, mid);
  bool any_difference = false;
  for (size_t t = 0; t < w0.routing.tokens.size(); ++t) {
    if (w0.routing.tokens[t].experts != w1.routing.tokens[t].experts) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(MoeModel, ResidualChangesOutputs) {
  MoeModelOptions with_res;
  MoeModelOptions without;
  without.residual = false;
  const MoeModel a(StackModel(2), ParallelConfig{1, 2}, 16, with_res);
  const MoeModel b(StackModel(2), ParallelConfig{1, 2}, 16, without);
  const auto inputs = a.MakeInputs(8);
  const auto ra = a.ReferenceForward(inputs);
  const auto rb = b.ReferenceForward(inputs);
  EXPECT_GT(Tensor::MaxAbsDiff(ra[0], rb[0]), 0.0f);
}

TEST(MoeModel, CommBufferIndependentOfDepthAndExperts) {
  const MoeModel shallow(StackModel(1), ParallelConfig{1, 2}, 64);
  ModelConfig wide = StackModel(8);
  wide.num_experts = 64;
  wide.topk = 4;
  const MoeModel deep(wide, ParallelConfig{1, 2}, 64);
  // One shared buffer across layers and experts (Table 3): same M x N plan.
  EXPECT_DOUBLE_EQ(shallow.comm_plan().Bytes(), deep.comm_plan().Bytes());
  EXPECT_GT(shallow.comm_plan().Bytes(), 0.0);
}

TEST(MoeModel, RejectsUnevenTokenSharding) {
  EXPECT_THROW(MoeModel(StackModel(1), ParallelConfig{1, 4}, 30), CheckError);
}

TEST(MoeModel, DeterministicAcrossRuns) {
  const MoeModel m(StackModel(2), ParallelConfig{1, 2}, 16);
  const auto inputs = m.MakeInputs(9);
  const auto a = m.ReferenceForward(inputs);
  const auto b = m.ReferenceForward(inputs);
  for (size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(a[g], b[g]), 0.0f);
  }
}

}  // namespace
}  // namespace comet
