// Integration tests: end-to-end model runs, traffic accounting against the
// plan's communication matrices, and the qualitative claims each paper
// experiment relies on (who wins, and roughly by how much).
#include <gtest/gtest.h>

#include "baselines/fastermoe.h"
#include "baselines/megatron.h"
#include "baselines/tutel.h"
#include "comm/symmetric_heap.h"
#include "core/comet_executor.h"
#include "runtime/model_runner.h"
#include "util/check.h"

namespace comet {
namespace {

MoeWorkload PaperWorkload(const ModelConfig& model, int tp, int ep, int64_t m,
                          double std = 0.0) {
  WorkloadOptions options;
  options.seed = 2;
  options.load_std = std;
  options.materialize = false;
  return MakeWorkload(model, ParallelConfig{tp, ep}, m, options);
}

// ---- end-to-end model runner ---------------------------------------------------

TEST(ModelRunner, AttentionIdenticalAcrossExecutors) {
  ModelRunConfig config;
  config.model = Mixtral8x7B();
  config.parallel = ParallelConfig{1, 8};
  config.total_tokens = 4096;
  const auto cluster = H800Cluster(8);

  CometExecutor comet;
  MegatronExecutor megatron = MakeMegatronCutlass();
  const ModelRunResult a = RunModel(comet, config, cluster);
  const ModelRunResult b = RunModel(megatron, config, cluster);
  EXPECT_DOUBLE_EQ(a.attention_us, b.attention_us);
  EXPECT_NE(a.moe_us, b.moe_us);
}

TEST(ModelRunner, TotalScalesWithLayers) {
  ModelRunConfig config;
  config.model = Mixtral8x7B();
  config.parallel = ParallelConfig{1, 8};
  config.total_tokens = 4096;
  const auto cluster = H800Cluster(8);
  CometExecutor comet;
  const ModelRunResult run = RunModel(comet, config, cluster);
  EXPECT_NEAR(run.total_ms,
              32.0 * (run.attention_us + run.moe_us) / 1000.0, 1e-9);
}

TEST(ModelRunner, RejectsUnsupportedExecutor) {
  ModelRunConfig config;
  config.model = Mixtral8x7B();
  config.parallel = ParallelConfig{2, 4};
  config.total_tokens = 4096;
  FasterMoeExecutor fastermoe;
  EXPECT_THROW(RunModel(fastermoe, config, H800Cluster(8)), CheckError);
}

TEST(ModelRunner, CommFractionIsMeaningful) {
  ModelRunConfig config;
  config.model = Qwen2Moe();
  config.parallel = ParallelConfig{1, 8};
  config.total_tokens = 8192;
  MegatronExecutor megatron = MakeMegatronCutlass();
  const ModelRunResult run = RunModel(megatron, config, H800Cluster(8));
  const double frac = MoeCommFraction(run.moe_layer);
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 1.0);
}

// ---- paper-shape claims -----------------------------------------------------------

TEST(PaperShapes, Fig9CometBeatsAllBaselinesEndToEnd) {
  const auto cluster = H800Cluster(8);
  for (const ModelConfig& model : {Mixtral8x7B(), Phi35Moe()}) {
    ModelRunConfig config;
    config.model = model;
    config.parallel = ParallelConfig{1, 8};
    config.total_tokens = 8192;
    CometExecutor comet;
    const double comet_ms = RunModel(comet, config, cluster).total_ms;

    MegatronExecutor cutlass = MakeMegatronCutlass();
    MegatronExecutor te = MakeMegatronTe();
    FasterMoeExecutor fastermoe;
    TutelExecutor tutel;
    for (MoeLayerExecutor* exec :
         std::initializer_list<MoeLayerExecutor*>{&cutlass, &te, &fastermoe,
                                                  &tutel}) {
      const double base_ms = RunModel(*exec, config, cluster).total_ms;
      EXPECT_LT(comet_ms, base_ms) << model.name << " vs " << exec->name();
    }
  }
}

TEST(PaperShapes, Fig10SpeedupInPaperRange) {
  // Single-layer speedups of Comet vs each baseline should land in a band
  // around the paper's reported 1.28x - 2.37x.
  const auto cluster = H800Cluster(8);
  ModelConfig model = Mixtral8x7B();
  CometExecutor comet;
  MegatronExecutor te = MakeMegatronTe();
  TutelExecutor tutel;
  for (int64_t m : {4096, 16384}) {
    const MoeWorkload w = PaperWorkload(model, 1, 8, m);
    const double comet_us =
        comet.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    const double te_us = te.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    const double tutel_us =
        tutel.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    EXPECT_GT(te_us / comet_us, 1.2) << "M=" << m;
    EXPECT_LT(te_us / comet_us, 3.0) << "M=" << m;
    EXPECT_GT(tutel_us / comet_us, 1.1) << "M=" << m;
  }
}

TEST(PaperShapes, Fig11HiddenCommOrdering) {
  // Comet > Tutel > FasterMoE > Megatron (= 0) in hidden-communication
  // fraction (paper: 86.5% / 68.6% / 29.2% / 0%).
  const auto cluster = H800Cluster(8);
  const MoeWorkload w = PaperWorkload(Mixtral8x7B(), 1, 8, 16384);
  CometExecutor comet;
  TutelExecutor tutel;
  FasterMoeExecutor fastermoe;
  MegatronExecutor cutlass = MakeMegatronCutlass();
  const double h_comet =
      comet.Run(w, cluster, ExecMode::kTimedOnly).timeline.HiddenCommFraction();
  const double h_tutel =
      tutel.Run(w, cluster, ExecMode::kTimedOnly).timeline.HiddenCommFraction();
  const double h_fm = fastermoe.Run(w, cluster, ExecMode::kTimedOnly)
                          .timeline.HiddenCommFraction();
  const double h_meg = cutlass.Run(w, cluster, ExecMode::kTimedOnly)
                           .timeline.HiddenCommFraction();
  EXPECT_GT(h_comet, h_tutel);
  EXPECT_GT(h_tutel, h_fm);
  EXPECT_GT(h_fm, h_meg);
  EXPECT_DOUBLE_EQ(h_meg, 0.0);
  EXPECT_GT(h_comet, 0.75);
  EXPECT_LT(h_fm, 0.45);
}

TEST(PaperShapes, Fig12BaselinesDegradeWithTpCometFlat) {
  const auto cluster = H800Cluster(8);
  ModelConfig model = Mixtral8x7B();
  MegatronExecutor cutlass = MakeMegatronCutlass();
  CometExecutor comet;
  const MoeWorkload ep8 = PaperWorkload(model, 1, 8, 8192);
  const MoeWorkload tp8 = PaperWorkload(model, 8, 1, 8192);
  const double meg_ep = cutlass.Run(ep8, cluster, ExecMode::kTimedOnly).duration_us;
  const double meg_tp = cutlass.Run(tp8, cluster, ExecMode::kTimedOnly).duration_us;
  const double comet_ep = comet.Run(ep8, cluster, ExecMode::kTimedOnly).duration_us;
  const double comet_tp = comet.Run(tp8, cluster, ExecMode::kTimedOnly).duration_us;
  EXPECT_GT(meg_tp, 1.5 * meg_ep);          // baselines fragment under TP
  EXPECT_LT(comet_tp, 1.5 * comet_ep);      // Comet stays flat
  EXPECT_GT(meg_tp / comet_tp, 2.0);        // largest gap at TP=8
}

TEST(PaperShapes, Fig13DurationGrowsWithTopk) {
  const auto cluster = H800Cluster(8);
  CometExecutor comet;
  double prev = 0.0;
  for (int64_t topk : {1, 2, 4}) {
    ModelConfig model = Mixtral8x7B();
    model.topk = topk;
    const MoeWorkload w = PaperWorkload(model, 1, 8, 8192);
    const double us = comet.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    EXPECT_GT(us, prev);
    prev = us;
  }
}

TEST(PaperShapes, Fig14ImbalanceSlowsEveryone) {
  const auto cluster = H800Cluster(8);
  CometExecutor comet;
  MegatronExecutor cutlass = MakeMegatronCutlass();
  const MoeWorkload uniform = PaperWorkload(Mixtral8x7B(), 1, 8, 8192, 0.0);
  const MoeWorkload skewed = PaperWorkload(Mixtral8x7B(), 1, 8, 8192, 0.05);
  EXPECT_GT(comet.Run(skewed, cluster, ExecMode::kTimedOnly).duration_us,
            comet.Run(uniform, cluster, ExecMode::kTimedOnly).duration_us);
  EXPECT_GT(cutlass.Run(skewed, cluster, ExecMode::kTimedOnly).duration_us,
            cutlass.Run(uniform, cluster, ExecMode::kTimedOnly).duration_us);
}

TEST(PaperShapes, Fig14CometLeadsOnL20) {
  const auto cluster = L20Cluster(8);
  ModelConfig model = Mixtral8x7B();
  model.topk = 4;
  const MoeWorkload w = PaperWorkload(model, 1, 8, 8192);
  CometExecutor comet;
  TutelExecutor tutel;
  MegatronExecutor cutlass = MakeMegatronCutlass();
  const double comet_us = comet.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
  EXPECT_LT(comet_us, tutel.Run(w, cluster, ExecMode::kTimedOnly).duration_us);
  EXPECT_LT(comet_us,
            cutlass.Run(w, cluster, ExecMode::kTimedOnly).duration_us);
}

// ---- functional traffic accounting ---------------------------------------------

TEST(TrafficAccounting, CometMovesExactlyThePlannedDispatchBytes) {
  // Run the functional executor and compare the symmetric heap's dispatch
  // traffic against the plan's communication matrix (f32 rows).
  ModelConfig model;
  model.name = "traffic";
  model.layers = 1;
  model.num_experts = 4;
  model.topk = 2;
  model.embedding = 16;
  model.ffn_hidden = 32;
  WorkloadOptions options;
  options.seed = 3;
  const MoeWorkload w = MakeWorkload(model, ParallelConfig{1, 4}, 32, options);

  // Mirror the executor's dispatch reads through a fresh heap.
  SymmetricHeap heap(4);
  const auto buf = heap.Allocate("in", Shape{8, 16});
  for (int r = 0; r < 4; ++r) {
    heap.Local(buf, r) = w.inputs[static_cast<size_t>(r)];
  }
  for (int r = 0; r < 4; ++r) {
    for (const auto& slice : w.plan.ForRank(r).experts) {
      for (const auto& row : slice.rows) {
        const int64_t local =
            row.token - w.placement.FirstTokenOfGroup(row.source_group);
        heap.GetRow(buf, r, row.source_group, local);
      }
    }
  }
  const auto planned = w.plan.DispatchBytes(16.0 * 4.0);  // N * sizeof(float)
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(heap.Traffic(i, j),
                       planned[static_cast<size_t>(i)][static_cast<size_t>(j)])
          << i << "->" << j;
    }
  }
}

// ---- end-to-end training step ---------------------------------------------------

TEST(TrainingStep, CometStepBeatsSequentialStep) {
  ModelRunConfig config;
  config.model = Mixtral8x7B();
  config.parallel = ParallelConfig{1, 8};
  config.total_tokens = 8192;
  const auto cluster = H800Cluster(8);

  CometExecutor comet;
  MegatronExecutor megatron = MakeMegatronCutlass();
  const TrainStepResult ours = RunTrainingStep(
      comet, MoeBackwardKind::kComet, config, cluster);
  const TrainStepResult base = RunTrainingStep(
      megatron, MoeBackwardKind::kSequential, config, cluster);
  // Attention is identical; only the MoE fwd+bwd differ.
  EXPECT_DOUBLE_EQ(ours.attention_fwd_us, base.attention_fwd_us);
  EXPECT_DOUBLE_EQ(ours.attention_bwd_us, 2.0 * ours.attention_fwd_us);
  EXPECT_LT(ours.moe_fwd_us, base.moe_fwd_us);
  EXPECT_LT(ours.moe_bwd_us, base.moe_bwd_us);
  EXPECT_LT(ours.total_ms, base.total_ms);
}

TEST(TrainingStep, BackwardCostsMoreThanForward) {
  ModelRunConfig config;
  config.model = Mixtral8x7B();
  config.parallel = ParallelConfig{1, 8};
  config.total_tokens = 8192;
  CometExecutor comet;
  const TrainStepResult run = RunTrainingStep(
      comet, MoeBackwardKind::kComet, config, H800Cluster(8));
  EXPECT_GT(run.moe_bwd_us, run.moe_fwd_us);
  EXPECT_NEAR(run.total_ms,
              32.0 * (run.attention_fwd_us + run.attention_bwd_us +
                      run.moe_fwd_us + run.moe_bwd_us) / 1000.0,
              1e-9);
}

}  // namespace
}  // namespace comet
