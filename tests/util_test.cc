// Unit tests for the utility substrate: checks, RNG, statistics, tables,
// metadata store and string helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "util/check.h"
#include "util/metadata_store.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/units.h"

namespace comet {
namespace {

// ---- check ----------------------------------------------------------------

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(COMET_CHECK(1 + 1 == 2) << "math works");
}

TEST(Check, FailingCheckThrowsWithContext) {
  try {
    COMET_CHECK_EQ(2, 3) << "custom context";
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cc"), std::string::npos);
  }
}

TEST(Check, ComparisonMacros) {
  EXPECT_THROW(COMET_CHECK_LT(3, 3), CheckError);
  EXPECT_NO_THROW(COMET_CHECK_LE(3, 3));
  EXPECT_THROW(COMET_CHECK_GT(2, 3), CheckError);
  EXPECT_NO_THROW(COMET_CHECK_GE(3, 3));
  EXPECT_THROW(COMET_CHECK_NE(5, 5), CheckError);
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Normal(3.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(6);
  const std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Categorical(weights) == 1) {
      ++count1;
    }
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(7);
  EXPECT_THROW(rng.Categorical({0.0, 0.0}), CheckError);
}

TEST(Rng, LoadVectorZeroStdIsUniform) {
  Rng rng(8);
  const auto v = rng.LoadVectorWithStd(8, 0.0);
  for (double p : v) {
    EXPECT_DOUBLE_EQ(p, 1.0 / 8.0);
  }
}

TEST(Rng, LoadVectorHitsTargetStd) {
  Rng rng(9);
  for (double target : {0.01, 0.032, 0.05}) {
    const auto v = rng.LoadVectorWithStd(8, target);
    double sum = 0.0;
    for (double p : v) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_NEAR(PopulationStddev(v), target, target * 0.25 + 1e-9);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

// ---- stats -----------------------------------------------------------------

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 0.2);
}

TEST(SampleSet, PercentileOfSingleton) {
  SampleSet s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
}

TEST(Stats, PercentileNearestRankOddCount) {
  // Sorted: {10, 20, 30, 40, 50}. rank = ceil(p/100 * 5).
  const std::vector<double> v{30.0, 10.0, 50.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 95.0), 50.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 99.0), 50.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 100.0), 50.0);
}

TEST(Stats, PercentileNearestRankEvenCountNeverInterpolates) {
  // p50 over an even count picks the LOWER middle (rank ceil(0.5*4) = 2),
  // never the mean of the middles -- the result is always a real sample.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 75.0), 3.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 76.0), 4.0);
}

TEST(Stats, PercentileNearestRankExactIntegerRanks) {
  // p*n/100 lands exactly on an integer rank: the naive (p/100)*n float
  // ordering overshoots by one (0.55*20 = 11.000000000000002). rank must
  // be exactly 11 -> the 11th smallest = 11.0.
  std::vector<double> v;
  for (int i = 1; i <= 20; ++i) {
    v.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 55.0), 11.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 20.0), 4.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(v, 5.0), 1.0);
}

TEST(Stats, PercentileNearestRankSingletonAndTies) {
  EXPECT_DOUBLE_EQ(PercentileNearestRank(std::vector<double>{7.0}, 99.0), 7.0);
  const std::vector<double> ties{5.0, 5.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(ties, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(ties, 75.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(ties, 80.0), 9.0);
}

TEST(Stats, PercentileNearestRankMatchesBruteForce) {
  // Cross-check the rank formula against the definition: the smallest
  // sample with at least ceil(p/100 * n) samples <= it.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      v.push_back(rng.Uniform(-10.0, 10.0));
    }
    for (double p : {0.0, 12.5, 50.0, 90.0, 95.0, 99.0, 100.0}) {
      const double got = PercentileNearestRank(v, p);
      std::vector<double> sorted = v;
      std::sort(sorted.begin(), sorted.end());
      const auto need = static_cast<size_t>(
          std::ceil(p * static_cast<double>(n) / 100.0));
      double expected = sorted.back();
      for (double x : sorted) {
        size_t at_most = 0;
        for (double y : sorted) {
          if (y <= x) ++at_most;
        }
        if (at_most >= std::max<size_t>(need, 1)) {
          expected = x;
          break;
        }
      }
      EXPECT_DOUBLE_EQ(got, expected) << "n=" << n << " p=" << p;
    }
  }
}

TEST(Stats, PercentileNearestRankRejectsBadInput) {
  EXPECT_THROW(PercentileNearestRank(std::vector<double>{}, 50.0), CheckError);
  EXPECT_THROW(PercentileNearestRank(std::vector<double>{1.0}, -1.0),
               CheckError);
  EXPECT_THROW(PercentileNearestRank(std::vector<double>{1.0}, 101.0),
               CheckError);
}

TEST(Stats, SampleSetPercentileExactAgreesWithFreeFunction) {
  SampleSet s;
  std::vector<double> v;
  Rng rng(7);
  for (int i = 0; i < 31; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    s.Add(x);
    v.push_back(x);
  }
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(s.PercentileExact(p), PercentileNearestRank(v, p));
  }
}

TEST(Stats, SummarizeLatency) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const LatencySummary s = SummarizeLatency(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);

  const LatencySummary empty = SummarizeLatency(std::vector<double>{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

// ---- histogram -------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0: everything <= 1, including zero, negatives and NaN.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  // Bucket i holds (2^(i-1), 2^i]: upper bounds are inclusive.
  EXPECT_EQ(Histogram::BucketIndex(1.0001), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0001), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 2u);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1025.0), 11u);
  // Overflow bucket: above 2^62, including +inf.
  EXPECT_EQ(Histogram::BucketIndex(0x1p62), 62u);
  EXPECT_EQ(Histogram::BucketIndex(0x1p63),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
            Histogram::kBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(10), 1024.0);
  EXPECT_TRUE(
      std::isinf(Histogram::BucketUpperBound(Histogram::kBuckets - 1)));
}

TEST(Histogram, ExactCountAndSum) {
  Histogram h;
  double want_sum = 0.0;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(0.0, 1e6);
    h.Add(v);
    want_sum += v;
  }
  EXPECT_EQ(h.count(), 500u);
  // Count and sum are exact (same fp additions, same order), only the
  // percentile view is bucketed.
  EXPECT_DOUBLE_EQ(h.sum(), want_sum);
  EXPECT_DOUBLE_EQ(h.mean(), want_sum / 500.0);
  uint64_t total = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    total += h.bucket_count(b);
  }
  EXPECT_EQ(total, 500u);
}

TEST(Histogram, PercentileMatchesBruteForce) {
  // The estimate must equal BucketUpperBound(BucketIndex(x)) where x is the
  // EXACT nearest-rank sample: bucketing is monotonic, so the rank-th sample
  // and the rank-th bucketed sample land in the same bucket.
  Rng rng(47);
  for (int trial = 0; trial < 25; ++trial) {
    Histogram h;
    std::vector<double> v;
    const int n = static_cast<int>(rng.UniformInt(1, 200));
    for (int i = 0; i < n; ++i) {
      // Mix scales so many buckets participate, including bucket 0.
      const double x = std::exp(rng.Uniform(-2.0, 18.0));
      h.Add(x);
      v.push_back(x);
    }
    for (double p : {0.0, 12.5, 50.0, 90.0, 95.0, 99.0, 100.0}) {
      const double exact = PercentileNearestRank(v, p);
      EXPECT_DOUBLE_EQ(h.PercentileUpperBound(p),
                       Histogram::BucketUpperBound(Histogram::BucketIndex(
                           exact)))
          << "n=" << n << " p=" << p;
      // And the bound is in fact an upper bound on the exact percentile.
      EXPECT_GE(h.PercentileUpperBound(p), exact);
    }
  }
}

TEST(Histogram, FromBucketsRoundTrips) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    h.Add(rng.Uniform(0.0, 5000.0));
  }
  const Histogram copy = Histogram::FromBuckets(h.buckets(), h.sum());
  EXPECT_EQ(copy.count(), h.count());
  EXPECT_DOUBLE_EQ(copy.sum(), h.sum());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(copy.PercentileUpperBound(p), h.PercentileUpperBound(p));
  }
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.Add(3.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_THROW(h.PercentileUpperBound(50.0), CheckError);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({1.5}), 1.5, 1e-12);
  EXPECT_THROW(GeometricMean({1.0, -1.0}), CheckError);
}

TEST(Stats, PopulationStddev) {
  EXPECT_DOUBLE_EQ(PopulationStddev({1.0, 1.0, 1.0}), 0.0);
  EXPECT_NEAR(PopulationStddev({1.0, 3.0}), 1.0, 1e-12);
}

// ---- table -----------------------------------------------------------------

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string rendered = t.Render();
  EXPECT_NE(rendered.find("name  | value"), std::string::npos);
  EXPECT_NE(rendered.find("alpha | 1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_THROW(t.Render());
}

TEST(Format, Helpers) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatUsAsMs(1234.0), "1.234");
  EXPECT_EQ(FormatSpeedup(1.959), "1.96x");
  EXPECT_EQ(FormatPercent(0.865), "86.5%");
}

// ---- units -----------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(MsToUs(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(UsToMs(2500.0), 2.5);
  EXPECT_DOUBLE_EQ(GBps(1.0), 1000.0);         // 1 GB/s = 1000 B/us
  EXPECT_DOUBLE_EQ(TFlops(1.0), 1e6);          // 1 TFLOP/s = 1e6 flop/us
  EXPECT_DOUBLE_EQ(TransferUs(2000.0, 1000.0), 2.0);
  EXPECT_DOUBLE_EQ(MiB(1.0), 1048576.0);
}

// ---- metadata store --------------------------------------------------------

class MetadataStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("comet_meta_test_" + std::to_string(::getpid()) + ".txt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(MetadataStoreTest, RoundTrip) {
  MetadataStore store;
  store.Put("cluster|model|layer0", "26");
  store.PutInt("nc", 46);
  store.PutDouble("duration", 123.456);
  store.Save(path_.string());

  const MetadataStore loaded = MetadataStore::Load(path_.string());
  EXPECT_EQ(loaded.Get("cluster|model|layer0"), "26");
  EXPECT_EQ(loaded.GetInt("nc"), 46);
  EXPECT_NEAR(*loaded.GetDouble("duration"), 123.456, 1e-9);
  EXPECT_EQ(loaded.size(), 3u);
}

TEST_F(MetadataStoreTest, MissingFileYieldsEmptyStore) {
  const MetadataStore loaded = MetadataStore::Load("/nonexistent/meta.txt");
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_FALSE(loaded.Get("anything").has_value());
}

TEST_F(MetadataStoreTest, RejectsKeysWithEquals) {
  MetadataStore store;
  EXPECT_THROW(store.Put("bad=key", "v"), CheckError);
}

// ---- string utils ----------------------------------------------------------

TEST(StringUtil, SplitAndJoin) {
  const auto parts = Split("a|b||c", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
}

TEST(StringUtil, PrefixSuffixTrim) {
  EXPECT_TRUE(StartsWith("comet-core", "comet"));
  EXPECT_FALSE(StartsWith("co", "comet"));
  EXPECT_TRUE(EndsWith("layer0.cc", ".cc"));
  EXPECT_EQ(Trim("  pad  "), "pad");
  EXPECT_EQ(Trim(""), "");
}

}  // namespace
}  // namespace comet
