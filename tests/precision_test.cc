// The precision tier: pins the mixed-precision (BF16/FP16) data plane.
//
// Three layers of guarantees, from the codec up:
//  1. Codec exactness -- every one of the 2^16 encodings of each 16-bit
//     format round-trips, rounding is to-nearest-even (ties checked
//     explicitly), subnormals/infinities/NaNs behave, and quantization is
//     idempotent (a quantized value re-quantizes to itself bitwise).
//  2. Kernel contract -- low-precision GEMM output is EXACTLY the f32
//     computation rounded once per element on store, independent of tiling
//     and thread count (the per-element rounding is a pure function of
//     coordinates, so the f32 plane's bit-exactness arguments survive).
//  3. Plane differential -- the bf16/f16 functional plane is bit-identical
//     across thread counts {1, 8} and EP {1, 4}, bit-identical to the
//     same-dtype sharded reference (forward AND backward), and within a
//     principled error bound of the f32-compute reference over the same
//     quantized operands.
//
// Error bound: each low-precision store rounds once, contributing at most
// 0.5 * eps_dtype relative to the magnitude of the quantity being stored
// (eps = 2^-8 for bf16's 7 mantissa bits + implicit one, 2^-11 for f16).
// A forward output element passes <= 6 such stores (layer0 GEMM,
// activation, layer1 GEMM, combine; transport moves already-representable
// rows); backward <= 8. Magnitudes along the path are bounded by a few
// times the output scale for these workloads, so we assert
//   max|lp - f32| <= kRoundingBudget * eps_dtype * max|f32|
// with kRoundingBudget = 16 (2x headroom over the worst path length).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>

#include "baselines/common.h"
#include "core/comet_backward.h"
#include "core/comet_executor.h"
#include "moe/backward.h"
#include "moe/group_gemm.h"
#include "moe/reference_layer.h"
#include "tensor/dtype.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

// ---- 1. codec exactness ----------------------------------------------------

TEST(Bf16Codec, AllEncodingsRoundTrip) {
  // decode -> encode is the identity for every non-NaN encoding: each 16-bit
  // word names exactly one f32, and that f32's nearest bf16 is itself.
  for (uint32_t u = 0; u <= 0xffffu; ++u) {
    const uint16_t bits = static_cast<uint16_t>(u);
    const float f = Bf16ToF32(bits);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(Bf16ToF32(F32ToBf16(f)))) << "bits " << u;
      continue;
    }
    EXPECT_EQ(F32ToBf16(f), bits) << "bits " << u;
  }
}

TEST(F16Codec, AllEncodingsRoundTrip) {
  for (uint32_t u = 0; u <= 0xffffu; ++u) {
    const uint16_t bits = static_cast<uint16_t>(u);
    const float f = F16ToF32(bits);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(F16ToF32(F32ToF16(f)))) << "bits " << u;
      continue;
    }
    EXPECT_EQ(F32ToF16(f), bits) << "bits " << u;
  }
}

TEST(Bf16Codec, RoundsToNearestEven) {
  // 1.0 = 0x3F80. The f32 exactly halfway to the next bf16 (0x3F808000)
  // ties to the EVEN encoding 0x3F80; anything above goes up.
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0x3F808000u)), 0x3F80);
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0x3F808001u)), 0x3F81);
  // Halfway between 0x3F81 (odd) and 0x3F82 (even) ties UP to 0x3F82.
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0x3F818000u)), 0x3F82);
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0x3F817fffu)), 0x3F81);
  // Below halfway rounds down; sign rides along unchanged.
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0xBF808000u)), 0xBF80);
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0xBF818000u)), 0xBF82);
  // A carry out of the mantissa rounds into the next binade: the largest
  // f32 below 2.0 is within half a bf16-ulp of 2.0.
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0x3FFFFFFFu)), 0x4000);
}

TEST(F16Codec, RoundsToNearestEven) {
  // f16 ulp at 2048 is 2: 2049 ties to even 2048, 2051 ties up to 2052.
  EXPECT_EQ(F16ToF32(F32ToF16(2049.0f)), 2048.0f);
  EXPECT_EQ(F16ToF32(F32ToF16(2051.0f)), 2052.0f);
  EXPECT_EQ(F16ToF32(F32ToF16(2049.001f)), 2050.0f);
  EXPECT_EQ(F16ToF32(F32ToF16(-2049.0f)), -2048.0f);
  // 1.0 + 2^-11 (f32 mantissa 0x1000) ties to 1.0 (even); one f32 ulp above
  // goes to 1.0 + 2^-10 (f16 mantissa 1 = f32 mantissa 0x2000).
  EXPECT_EQ(F16ToF32(F32ToF16(std::bit_cast<float>(0x3F801000u))), 1.0f);
  EXPECT_EQ(F16ToF32(F32ToF16(std::bit_cast<float>(0x3F801001u))),
            std::bit_cast<float>(0x3F802000u));
}

TEST(F16Codec, Subnormals) {
  const float kMinSub = std::ldexp(1.0f, -24);  // smallest f16 subnormal
  EXPECT_EQ(F32ToF16(kMinSub), 0x0001);
  EXPECT_EQ(F16ToF32(uint16_t{0x0001}), kMinSub);
  // Half the smallest subnormal ties to even zero; just above rounds up.
  EXPECT_EQ(F32ToF16(std::ldexp(1.0f, -25)), 0x0000);
  EXPECT_EQ(F32ToF16(std::ldexp(1.5f, -25)), 0x0001);
  EXPECT_EQ(F32ToF16(-std::ldexp(1.0f, -25)), 0x8000);
  // Largest subnormal: 1023 * 2^-24 = 0x03FF; the next f16 is the smallest
  // normal 2^-14 = 0x0400, and rounding can carry across that boundary.
  EXPECT_EQ(F32ToF16(1023.0f * kMinSub), 0x03FF);
  EXPECT_EQ(F16ToF32(uint16_t{0x03FF}), 1023.0f * kMinSub);
  EXPECT_EQ(F32ToF16(1023.6f * kMinSub), 0x0400);
  EXPECT_EQ(F16ToF32(uint16_t{0x0400}), std::ldexp(1.0f, -14));
  // Subnormal RNE tie: 2.5 * 2^-24 is halfway between 2 and 3 ulps -> 2.
  EXPECT_EQ(F32ToF16(2.5f * kMinSub), 0x0002);
  EXPECT_EQ(F32ToF16(3.5f * kMinSub), 0x0004);
}

TEST(Codecs, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  const float qnan = std::numeric_limits<float>::quiet_NaN();

  EXPECT_EQ(F32ToBf16(inf), 0x7F80);
  EXPECT_EQ(F32ToBf16(-inf), 0xFF80);
  EXPECT_EQ(Bf16ToF32(uint16_t{0x7F80}), inf);
  EXPECT_TRUE(std::isnan(Bf16ToF32(F32ToBf16(qnan))));
  EXPECT_TRUE(std::isnan(Bf16ToF32(F32ToBf16(-qnan))));
  // A NaN whose payload lives entirely in the dropped bits must STAY NaN
  // (truncation alone would produce an infinity).
  EXPECT_TRUE(std::isnan(Bf16ToF32(
      F32ToBf16(std::bit_cast<float>(0x7F800001u)))));

  EXPECT_EQ(F32ToF16(inf), 0x7C00);
  EXPECT_EQ(F32ToF16(-inf), 0xFC00);
  EXPECT_EQ(F16ToF32(uint16_t{0x7C00}), inf);
  EXPECT_TRUE(std::isnan(F16ToF32(F32ToF16(qnan))));
  EXPECT_TRUE(std::isnan(F16ToF32(
      F32ToF16(std::bit_cast<float>(0x7F800001u)))));
}

TEST(Codecs, OverflowAndLimits) {
  // bf16 shares the f32 exponent range: only the top half-ulp overflows.
  EXPECT_EQ(Bf16ToF32(uint16_t{0x7F7F}),
            std::bit_cast<float>(0x7F7F0000u));  // max finite bf16
  EXPECT_EQ(F32ToBf16(std::numeric_limits<float>::max()), 0x7F80);  // -> inf
  EXPECT_EQ(F32ToBf16(std::bit_cast<float>(0x7F7F0000u)), 0x7F7F);

  // f16 overflows at 65520 (the tie with 2^16); 65504 is the max finite.
  EXPECT_EQ(F16ToF32(uint16_t{0x7BFF}), 65504.0f);
  EXPECT_EQ(F32ToF16(65504.0f), 0x7BFF);
  EXPECT_EQ(F32ToF16(65519.996f), 0x7BFF);
  EXPECT_EQ(F32ToF16(65520.0f), 0x7C00);
  EXPECT_EQ(F32ToF16(-65520.0f), 0xFC00);
  EXPECT_EQ(F32ToF16(1e30f), 0x7C00);
  // Signed zeros survive both codecs.
  EXPECT_EQ(F32ToBf16(-0.0f), 0x8000);
  EXPECT_EQ(F32ToF16(-0.0f), 0x8000);
  EXPECT_TRUE(std::signbit(Bf16ToF32(uint16_t{0x8000})));
  EXPECT_TRUE(std::signbit(F16ToF32(uint16_t{0x8000})));
}

TEST(Codecs, QuantizeIsIdempotent) {
  Rng rng(7);
  for (const DType dtype : {DType::kBF16, DType::kF16}) {
    for (int i = 0; i < 10000; ++i) {
      // Mix magnitudes from subnormal to overflow territory.
      const float x = static_cast<float>(rng.Normal(0.0, 1.0)) *
                      std::ldexp(1.0f, (i % 61) - 30);
      const float q = QuantizeScalar(x, dtype);
      EXPECT_EQ(std::bit_cast<uint32_t>(QuantizeScalar(q, dtype)),
                std::bit_cast<uint32_t>(q))
          << DTypeName(dtype) << " x=" << x;
    }
  }
  // Exhaustively: every decoded encoding is a fixed point.
  for (uint32_t u = 0; u <= 0xffffu; ++u) {
    const float b = Bf16ToF32(static_cast<uint16_t>(u));
    if (!std::isnan(b)) {
      EXPECT_EQ(QuantizeScalar(b, DType::kBF16), b);
    }
    const float h = F16ToF32(static_cast<uint16_t>(u));
    if (!std::isnan(h)) {
      EXPECT_EQ(QuantizeScalar(h, DType::kF16), h);
    }
  }
}

TEST(Codecs, QuantizeIsF32Identity) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.Normal(0.0, 100.0));
    EXPECT_EQ(QuantizeScalar(x, DType::kF32), x);
  }
}

// ---- 2. dtype-aware tensors and the GEMM store contract --------------------

TEST(TensorDType, FillConstructorsEstablishRepresentability) {
  Rng rng(11);
  const Tensor t = Tensor::Randn(Shape{8, 16}, rng, 1.0f, DType::kBF16);
  for (const float v : t.data()) {
    EXPECT_EQ(QuantizeScalar(v, DType::kBF16), v);
  }
  const Tensor f = Tensor::Full(Shape{4, 4}, 0.1f, DType::kF16);
  EXPECT_EQ(f.data()[0], QuantizeScalar(0.1f, DType::kF16));
  const Tensor i = Tensor::Iota(Shape{64, 64}, 0.333f, DType::kF16);
  for (const float v : i.data()) {
    EXPECT_EQ(QuantizeScalar(v, DType::kF16), v);
  }
}

TEST(TensorDType, AsTypeRoundsAndWideningIsLossless) {
  Rng rng(12);
  const Tensor t = Tensor::Randn(Shape{4, 8}, rng);
  const Tensor b = t.AsType(DType::kBF16);
  EXPECT_EQ(b.dtype(), DType::kBF16);
  for (size_t i = 0; i < t.data().size(); ++i) {
    EXPECT_EQ(b.data()[i], QuantizeScalar(t.data()[i], DType::kBF16));
  }
  const Tensor wide = b.AsType(DType::kF32);
  EXPECT_EQ(wide.dtype(), DType::kF32);
  EXPECT_EQ(Tensor::MaxAbsDiff(wide, b), 0.0f);
}

// Low-precision GEMM == f32 GEMM + one rounding per element, and the result
// is independent of tiling (the store-rounding commutes with any disjoint
// partition of C).
TEST(MixedPrecisionGemm, EqualsQuantizedF32AndTilingInvariant) {
  for (const DType dtype : {DType::kBF16, DType::kF16}) {
    Rng rng(13);
    const int64_t m = 33, k = 40, n = 29;  // deliberately off-block sizes
    const Tensor a = Tensor::Randn(Shape{m, k}, rng, 1.0f, dtype);
    const Tensor b = Tensor::Randn(Shape{k, n}, rng, 0.2f, dtype);

    Tensor c_f32(Shape{m, n});
    Gemm(a, b, c_f32);
    c_f32 = c_f32.AsType(dtype);

    Tensor c_lp(Shape{m, n}, dtype);
    Gemm(a, b, c_lp);
    EXPECT_EQ(Tensor::MaxAbsDiff(c_lp, c_f32), 0.0f) << DTypeName(dtype);

    Tensor c_tiled(Shape{m, n}, dtype);
    for (int64_t r = 0; r < m; r += 8) {
      for (int64_t cc = 0; cc < n; cc += 8) {
        GemmTile(a, b, c_tiled, r, std::min(r + 8, m), cc,
                 std::min(cc + 8, n));
      }
    }
    EXPECT_EQ(Tensor::MaxAbsDiff(c_tiled, c_lp), 0.0f) << DTypeName(dtype);
  }
}

TEST(MixedPrecisionGemm, NtAndTnRoundOnStore) {
  const DType dtype = DType::kBF16;
  Rng rng(14);
  const int64_t m = 17, k = 23, n = 19;
  const Tensor a = Tensor::Randn(Shape{m, k}, rng, 1.0f, dtype);
  const Tensor b = Tensor::Randn(Shape{n, k}, rng, 1.0f, dtype);

  Tensor c_f32(Shape{m, n});
  GemmNT(a, b, c_f32);
  Tensor c_lp(Shape{m, n}, dtype);
  GemmNT(a, b, c_lp);
  EXPECT_EQ(Tensor::MaxAbsDiff(c_lp, c_f32.AsType(dtype)), 0.0f);

  const Tensor bt(Tensor::Randn(Shape{m, n}, rng, 1.0f, dtype));
  Tensor d_f32(Shape{k, n});
  GemmTN(a, bt, d_f32);
  Tensor d_lp(Shape{k, n}, dtype);
  GemmTN(a, bt, d_lp);
  EXPECT_EQ(Tensor::MaxAbsDiff(d_lp, d_f32.AsType(dtype)), 0.0f);
}

// ---- 3. the differential / bit-exactness tier ------------------------------

// Fig01-style single-MoE-layer workload, scaled to functional size: gelu
// experts, top-2 routing, mild imbalance.
ModelConfig PrecisionModel() {
  ModelConfig model;
  model.name = "precision";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 32;
  model.ffn_hidden = 64;
  return model;
}

MoeWorkload PrecisionWorkload(DType dtype, int ep, uint64_t seed = 51) {
  WorkloadOptions options;
  options.seed = seed;
  options.load_std = 0.02;
  options.dtype = dtype;
  return MakeWorkload(PrecisionModel(), ParallelConfig{1, ep}, 64, options);
}

CometOptions PrecisionOptions(DType dtype, int threads) {
  CometOptions options;
  options.tile_m = 8;
  options.tile_n = 8;
  options.num_threads = threads;
  options.compute_dtype = dtype;
  return options;
}

double Eps(DType dtype) {
  return dtype == DType::kBF16 ? std::ldexp(1.0, -8) : std::ldexp(1.0, -11);
}

constexpr double kRoundingBudget = 16.0;

float MaxAbs(const Tensor& t) {
  float worst = 0.0f;
  for (const float v : t.data()) {
    worst = std::max(worst, std::abs(v));
  }
  return worst;
}

using DtEpThreads = std::tuple<DType, int /*ep*/, int /*threads*/>;

class PrecisionPlane : public ::testing::TestWithParam<DtEpThreads> {};

TEST_P(PrecisionPlane, ForwardBitExactVsSameDtypeReference) {
  const auto [dtype, ep, threads] = GetParam();
  const MoeWorkload w = PrecisionWorkload(dtype, ep);
  const auto reference = ShardedReferenceMoeLayer(w, dtype);
  CometExecutor comet{PrecisionOptions(dtype, threads)};
  const auto run = comet.Run(w, H800Cluster(ep), ExecMode::kFunctional);
  ASSERT_EQ(run.outputs.size(), reference.size());
  for (size_t g = 0; g < reference.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(run.outputs[g], reference[g]), 0.0f)
        << DTypeName(dtype) << " group " << g << " EP=" << ep
        << " threads=" << threads;
  }
}

TEST_P(PrecisionPlane, ForwardWithinBoundOfF32Reference) {
  const auto [dtype, ep, threads] = GetParam();
  const MoeWorkload w = PrecisionWorkload(dtype, ep);
  // f32 compute over the SAME quantized operands: isolates the plane's
  // store-rounding error from the operand quantization error.
  const auto f32_ref = ShardedReferenceMoeLayer(w, DType::kF32);
  CometExecutor comet{PrecisionOptions(dtype, threads)};
  const auto run = comet.Run(w, H800Cluster(ep), ExecMode::kFunctional);
  ASSERT_EQ(run.outputs.size(), f32_ref.size());
  float total_diff = 0.0f;
  for (size_t g = 0; g < f32_ref.size(); ++g) {
    const float diff = Tensor::MaxAbsDiff(run.outputs[g], f32_ref[g]);
    const double bound = kRoundingBudget * Eps(dtype) *
                         static_cast<double>(MaxAbs(f32_ref[g]));
    EXPECT_LE(diff, bound)
        << DTypeName(dtype) << " group " << g << " EP=" << ep;
    total_diff += diff;
  }
  // The plane must actually be computing in low precision: a zero total
  // diff would mean the dtype never engaged.
  EXPECT_GT(total_diff, 0.0f);
}

TEST_P(PrecisionPlane, BackwardBitExactVsSameDtypeReference) {
  const auto [dtype, ep, threads] = GetParam();
  const MoeWorkload w = PrecisionWorkload(dtype, ep);
  const auto dout = MakeLossGradient(w, 91);
  const MoeGradients expected = ShardedReferenceMoeBackward(w, dout, dtype);
  const auto run = CometBackward(w, H800Cluster(ep), dout,
                                 ExecMode::kFunctional,
                                 PrecisionOptions(dtype, threads));
  EXPECT_EQ(MaxGradientDiff(run.grads, expected), 0.0f)
      << DTypeName(dtype) << " EP=" << ep << " threads=" << threads;
}

TEST_P(PrecisionPlane, BackwardWithinBoundOfF32Reference) {
  const auto [dtype, ep, threads] = GetParam();
  const MoeWorkload w = PrecisionWorkload(dtype, ep);
  const auto dout = MakeLossGradient(w, 91);
  const MoeGradients f32_ref =
      ShardedReferenceMoeBackward(w, dout, DType::kF32);
  const auto run = CometBackward(w, H800Cluster(ep), dout,
                                 ExecMode::kFunctional,
                                 PrecisionOptions(dtype, threads));
  for (size_t g = 0; g < f32_ref.dinput.size(); ++g) {
    EXPECT_LE(Tensor::MaxAbsDiff(run.grads.dinput[g], f32_ref.dinput[g]),
              kRoundingBudget * Eps(dtype) *
                  static_cast<double>(MaxAbs(f32_ref.dinput[g])))
        << DTypeName(dtype) << " dinput group " << g;
  }
  for (size_t e = 0; e < f32_ref.dw0.size(); ++e) {
    EXPECT_LE(Tensor::MaxAbsDiff(run.grads.dw0[e], f32_ref.dw0[e]),
              kRoundingBudget * Eps(dtype) *
                  static_cast<double>(MaxAbs(f32_ref.dw0[e])))
        << DTypeName(dtype) << " dw0 expert " << e;
    EXPECT_LE(Tensor::MaxAbsDiff(run.grads.dw1[e], f32_ref.dw1[e]),
              kRoundingBudget * Eps(dtype) *
                  static_cast<double>(MaxAbs(f32_ref.dw1[e])))
        << DTypeName(dtype) << " dw1 expert " << e;
  }
  EXPECT_LE(Tensor::MaxAbsDiff(run.grads.dgate, f32_ref.dgate),
            kRoundingBudget * Eps(dtype) *
                static_cast<double>(MaxAbs(f32_ref.dgate)));
}

INSTANTIATE_TEST_SUITE_P(
    DtypeByEpByThreads, PrecisionPlane,
    ::testing::Combine(::testing::Values(DType::kBF16, DType::kF16),
                       ::testing::Values(1, 4), ::testing::Values(1, 8)),
    [](const ::testing::TestParamInfo<DtEpThreads>& info) {
      return DTypeName(std::get<0>(info.param)) + "_EP" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<2>(info.param)) + "threads";
    });

// The EP axis itself must not move a bit: the EP=1 and EP=4 plane outputs
// concatenate to the same global matrix (the workloads share routing,
// inputs and weights; only placement differs).
TEST(PrecisionPlaneCrossEp, Ep1AndEp4BitIdentical) {
  for (const DType dtype : {DType::kBF16, DType::kF16}) {
    const MoeWorkload w1 = PrecisionWorkload(dtype, 1);
    const MoeWorkload w4 = PrecisionWorkload(dtype, 4);
    CometExecutor comet1{PrecisionOptions(dtype, 1)};
    CometExecutor comet4{PrecisionOptions(dtype, 4)};
    const auto run1 = comet1.Run(w1, H800Cluster(1), ExecMode::kFunctional);
    const auto run4 = comet4.Run(w4, H800Cluster(4), ExecMode::kFunctional);
    ASSERT_EQ(run1.outputs.size(), 1u);
    ASSERT_EQ(run4.outputs.size(), 4u);
    const int64_t rows_per_group = run4.outputs[0].rows();
    for (size_t g = 0; g < 4; ++g) {
      for (int64_t r = 0; r < rows_per_group; ++r) {
        const auto a = run4.outputs[g].row(r);
        const auto b = run1.outputs[0].row(
            static_cast<int64_t>(g) * rows_per_group + r);
        for (size_t c = 0; c < a.size(); ++c) {
          ASSERT_EQ(a[c], b[c])
              << DTypeName(dtype) << " group " << g << " row " << r;
        }
      }
    }
  }
}

// The baselines' canonical functional path shares the plane's numerics.
TEST(PrecisionPlaneCanonical, MatchesSameDtypeReference) {
  const MoeWorkload w = PrecisionWorkload(DType::kBF16, 4);
  const auto reference = ShardedReferenceMoeLayer(w, DType::kBF16);
  const auto canonical = CanonicalFunctionalMoe(w);
  ASSERT_EQ(canonical.size(), reference.size());
  for (size_t g = 0; g < reference.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(canonical[g], reference[g]), 0.0f)
        << "group " << g;
  }
}

// TP lanes at a 2-byte dtype: the lane-matched dispatch and lane-inner
// combine keep their bit-exactness under quantization.
TEST(PrecisionPlaneHybrid, ForwardAndBackwardTp2Ep2) {
  WorkloadOptions options;
  options.seed = 52;
  options.load_std = 0.02;
  options.dtype = DType::kBF16;
  const MoeWorkload w =
      MakeWorkload(PrecisionModel(), ParallelConfig{2, 2}, 64, options);
  const auto reference = ShardedReferenceMoeLayer(w, DType::kBF16);
  CometExecutor comet{PrecisionOptions(DType::kBF16, 8)};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ASSERT_EQ(run.outputs.size(), reference.size());
  for (size_t g = 0; g < reference.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(run.outputs[g], reference[g]), 0.0f);
  }

  const auto dout = MakeLossGradient(w, 93);
  const MoeGradients expected =
      ShardedReferenceMoeBackward(w, dout, DType::kBF16);
  const auto bwd = CometBackward(w, H800Cluster(4), dout,
                                 ExecMode::kFunctional,
                                 PrecisionOptions(DType::kBF16, 8));
  EXPECT_EQ(MaxGradientDiff(bwd.grads, expected), 0.0f);
}

// Mismatched workload/compute dtypes must fail loudly, not quantize
// silently.
TEST(PrecisionPlane, MismatchedDtypeIsAnError) {
  const MoeWorkload w = PrecisionWorkload(DType::kF32, 1);
  CometExecutor comet{PrecisionOptions(DType::kBF16, 1)};
  EXPECT_THROW(comet.Run(w, H800Cluster(1), ExecMode::kFunctional),
               CheckError);
}

}  // namespace
}  // namespace comet
