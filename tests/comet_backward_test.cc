// Tests of the COMET-scheduled backward: bit-exactness of the rescheduled
// functional path against the sharded reference, and timing-plane properties
// of the mirrored fused kernels.
#include <gtest/gtest.h>

#include "core/comet_backward.h"
#include "moe/backward.h"
#include "moe/workload.h"
#include "util/check.h"

namespace comet {
namespace {

ModelConfig SmallModel() {
  ModelConfig model;
  model.name = "bwd-core";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 32;
  model.ffn_hidden = 48;
  return model;
}

MoeWorkload SmallWorkload(int tp, int ep, int64_t tokens,
                          bool materialize = true) {
  WorkloadOptions options;
  options.seed = 19;
  options.materialize = materialize;
  return MakeWorkload(SmallModel(), ParallelConfig{tp, ep}, tokens, options);
}

ModelConfig PaperScaleModel() {
  ModelConfig model;
  model.name = "bwd-paper";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 4096;
  model.ffn_hidden = 14336;
  return model;
}

// ---- functional: schedule never changes gradients ---------------------------

class CometBackwardFunctionalTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CometBackwardFunctionalTest, BitExactVsShardedReference) {
  const auto [tp, ep] = GetParam();
  const MoeWorkload w = SmallWorkload(tp, ep, 24);
  const auto dout = MakeLossGradient(w, 23);
  const MoeGradients expected = ShardedReferenceMoeBackward(w, dout);
  const BackwardExecution run = CometBackward(
      w, H800Cluster(w.world()), dout, ExecMode::kFunctional);
  EXPECT_EQ(MaxGradientDiff(expected, run.grads), 0.0f)
      << "tp=" << tp << " ep=" << ep;
}

INSTANTIATE_TEST_SUITE_P(
    Parallelisms, CometBackwardFunctionalTest,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{1, 2},
                      std::pair<int, int>{1, 4}, std::pair<int, int>{2, 1},
                      std::pair<int, int>{2, 2}, std::pair<int, int>{4, 2},
                      std::pair<int, int>{2, 4}));

TEST(CometBackward, RescheduleOffAlsoBitExact) {
  const MoeWorkload w = SmallWorkload(2, 2, 24);
  const auto dout = MakeLossGradient(w, 29);
  const MoeGradients expected = ShardedReferenceMoeBackward(w, dout);
  CometOptions options;
  options.reschedule = false;
  const BackwardExecution run = CometBackward(
      w, H800Cluster(w.world()), dout, ExecMode::kFunctional, options);
  EXPECT_EQ(MaxGradientDiff(expected, run.grads), 0.0f);
}

TEST(CometBackward, SequentialFunctionalMatchesReference) {
  const MoeWorkload w = SmallWorkload(2, 2, 24);
  const auto dout = MakeLossGradient(w, 31);
  const MoeGradients expected = ShardedReferenceMoeBackward(w, dout);
  const BackwardExecution run = SequentialBackward(
      w, H800Cluster(w.world()), dout, ExecMode::kFunctional);
  EXPECT_EQ(MaxGradientDiff(expected, run.grads), 0.0f);
}

TEST(CometBackward, TimedOnlyLeavesGradientsEmpty) {
  const MoeWorkload w = SmallWorkload(1, 2, 16);
  const auto dout = MakeLossGradient(w, 5);
  const BackwardExecution run =
      CometBackward(w, H800Cluster(w.world()), dout, ExecMode::kTimedOnly);
  EXPECT_TRUE(run.grads.dinput.empty());
  EXPECT_TRUE(run.grads.dw0.empty());
  EXPECT_GT(run.duration_us, 0.0);
}

// ---- timing plane ------------------------------------------------------------

class CometBackwardTimingTest : public ::testing::Test {
 protected:
  // Timing-plane runs never touch tensor contents: paper-scale shapes with
  // materialize = false, dout passed empty.
  MoeWorkload Workload(int tp, int ep, int64_t tokens) const {
    WorkloadOptions options;
    options.seed = 7;
    options.materialize = false;
    return MakeWorkload(PaperScaleModel(), ParallelConfig{tp, ep}, tokens,
                        options);
  }
  const std::vector<Tensor> no_dout_;
};

TEST_F(CometBackwardTimingTest, FasterThanSequentialBackward) {
  for (int64_t m : {4096, 16384}) {
    const MoeWorkload w = Workload(1, 8, m);
    const ClusterSpec cluster = H800Cluster(8);
    const auto comet =
        CometBackward(w, cluster, no_dout_, ExecMode::kTimedOnly);
    const auto seq =
        SequentialBackward(w, cluster, no_dout_, ExecMode::kTimedOnly);
    EXPECT_LT(comet.duration_us, seq.duration_us) << "M=" << m;
  }
}

TEST_F(CometBackwardTimingTest, RescheduleNeverSlower) {
  const MoeWorkload w = Workload(1, 8, 8192);
  const ClusterSpec cluster = H800Cluster(8);
  CometOptions on;
  CometOptions off;
  off.reschedule = false;
  const auto fast =
      CometBackward(w, cluster, no_dout_, ExecMode::kTimedOnly, on);
  const auto slow =
      CometBackward(w, cluster, no_dout_, ExecMode::kTimedOnly, off);
  EXPECT_LE(fast.duration_us, slow.duration_us * (1.0 + 1e-9));
}

TEST_F(CometBackwardTimingTest, PerRankDurationsCoverWorld) {
  const MoeWorkload w = Workload(2, 4, 4096);
  const auto run = CometBackward(w, H800Cluster(8), no_dout_,
                                 ExecMode::kTimedOnly);
  ASSERT_EQ(run.per_rank_us.size(), 8u);
  double worst = 0.0;
  for (double d : run.per_rank_us) {
    EXPECT_GT(d, 0.0);
    worst = std::max(worst, d);
  }
  EXPECT_DOUBLE_EQ(run.duration_us, worst);
}

TEST_F(CometBackwardTimingTest, TimelineHasBackwardPhases) {
  const MoeWorkload w = Workload(2, 4, 4096);
  const auto run = CometBackward(w, H800Cluster(8), no_dout_,
                                 ExecMode::kTimedOnly);
  bool has_wgrad0 = false, has_wgrad1 = false, has_ag = false;
  for (const auto& interval : run.timeline.intervals()) {
    has_wgrad0 |= interval.label == "wgrad0";
    has_wgrad1 |= interval.label == "wgrad1";
    has_ag |= interval.label == "dout-allgather";
  }
  EXPECT_TRUE(has_wgrad0);
  EXPECT_TRUE(has_wgrad1);
  EXPECT_TRUE(has_ag);  // tp = 2 > 1
}

TEST_F(CometBackwardTimingTest, PureTpHasNoAllToAllGradDispatch) {
  const MoeWorkload w = Workload(8, 1, 4096);
  const auto run = SequentialBackward(w, H800Cluster(8), no_dout_,
                                      ExecMode::kTimedOnly);
  for (const auto& interval : run.timeline.intervals()) {
    EXPECT_NE(interval.label, "grad-a2a");
    EXPECT_NE(interval.label, "grad-return-a2a");
  }
}

TEST_F(CometBackwardTimingTest, MismatchedClusterRejected) {
  const MoeWorkload w = Workload(1, 8, 2048);
  EXPECT_THROW(
      CometBackward(w, H800Cluster(4), no_dout_, ExecMode::kTimedOnly),
      CheckError);
}

TEST_F(CometBackwardTimingTest, BackwardCostsMoreThanForwardAlone) {
  // Backward does ~2x the GEMM flops of forward (dgrad + wgrad); its
  // duration must exceed a single forward pass of the same workload.
  const MoeWorkload w = Workload(1, 8, 8192);
  const ClusterSpec cluster = H800Cluster(8);
  CometExecutor fwd;
  const auto f = fwd.Run(w, cluster, ExecMode::kTimedOnly);
  const auto b = CometBackward(w, cluster, no_dout_, ExecMode::kTimedOnly);
  EXPECT_GT(b.duration_us, f.duration_us);
}

}  // namespace
}  // namespace comet
