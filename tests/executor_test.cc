// Correctness of the executors' functional plane.
//
// The central invariant of the whole reproduction: COMET's rescheduled,
// heap-mediated execution computes EXACTLY what the canonical execution
// computes. Rescheduling permutes work, never the floating-point reduction
// tree, so results must be bit-identical to the sharded reference; the dense
// (unsharded) reference is matched to a small tolerance (TP sharding
// reassociates the K reduction).
#include <gtest/gtest.h>

#include "baselines/common.h"
#include "baselines/fastermoe.h"
#include "baselines/megatron.h"
#include "baselines/tutel.h"
#include "core/comet_executor.h"
#include "moe/reference_layer.h"
#include "moe/router.h"

namespace comet {
namespace {

ModelConfig TinyModel(int64_t experts, int64_t topk) {
  ModelConfig m;
  m.name = "tiny";
  m.layers = 2;
  m.num_experts = experts;
  m.topk = topk;
  m.embedding = 32;
  m.ffn_hidden = 64;
  return m;
}

MoeWorkload TinyWorkload(int tp, int ep, int64_t tokens, uint64_t seed = 7,
                         double load_std = 0.03) {
  WorkloadOptions options;
  options.seed = seed;
  options.load_std = load_std;
  return MakeWorkload(TinyModel(8, 2), ParallelConfig{tp, ep}, tokens, options);
}

void ExpectBitExact(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(Tensor::MaxAbsDiff(a[i], b[i]), 0.0f) << "group " << i;
  }
}

TEST(CometFunctional, BitExactVsShardedReference_EpOnly) {
  const MoeWorkload w = TinyWorkload(/*tp=*/1, /*ep=*/4, /*tokens=*/64);
  const auto reference = ShardedReferenceMoeLayer(w);
  CometExecutor comet{CometOptions{.tile_m = 8, .tile_n = 8}};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ExpectBitExact(run.outputs, reference);
}

TEST(CometFunctional, BitExactVsShardedReference_TpOnly) {
  const MoeWorkload w = TinyWorkload(/*tp=*/4, /*ep=*/1, /*tokens=*/32);
  const auto reference = ShardedReferenceMoeLayer(w);
  CometExecutor comet{CometOptions{.tile_m = 8, .tile_n = 8}};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ExpectBitExact(run.outputs, reference);
}

TEST(CometFunctional, BitExactVsShardedReference_Hybrid) {
  const MoeWorkload w = TinyWorkload(/*tp=*/2, /*ep=*/2, /*tokens=*/48);
  const auto reference = ShardedReferenceMoeLayer(w);
  CometExecutor comet{CometOptions{.tile_m = 8, .tile_n = 8}};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ExpectBitExact(run.outputs, reference);
}

TEST(CometFunctional, CloseToDenseReference) {
  const MoeWorkload w = TinyWorkload(/*tp=*/2, /*ep=*/2, /*tokens=*/48);
  const auto dense = ReferenceMoeLayer(w);
  CometExecutor comet{CometOptions{.tile_m = 8, .tile_n = 8}};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ASSERT_EQ(run.outputs.size(), dense.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_TRUE(Tensor::AllClose(run.outputs[i], dense[i], 1e-4f, 1e-4f))
        << "group " << i
        << " max diff " << Tensor::MaxAbsDiff(run.outputs[i], dense[i]);
  }
}

TEST(CometFunctional, RescheduleOffMatchesRescheduleOn) {
  const MoeWorkload w = TinyWorkload(/*tp=*/1, /*ep=*/4, /*tokens=*/64);
  CometExecutor on{CometOptions{.reschedule = true, .tile_m = 8, .tile_n = 8}};
  CometExecutor off{CometOptions{.reschedule = false, .tile_m = 8, .tile_n = 8}};
  const auto a = on.Run(w, H800Cluster(4), ExecMode::kFunctional);
  const auto b = off.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ExpectBitExact(a.outputs, b.outputs);
}

TEST(CometFunctional, OddTileSizesStillExact) {
  const MoeWorkload w = TinyWorkload(/*tp=*/2, /*ep=*/2, /*tokens=*/48);
  const auto reference = ShardedReferenceMoeLayer(w);
  // Tile sizes that do not divide the problem exercise partial tiles.
  CometExecutor comet{CometOptions{.tile_m = 5, .tile_n = 7}};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ExpectBitExact(run.outputs, reference);
}

TEST(BaselineFunctional, CanonicalMatchesShardedReference) {
  const MoeWorkload w = TinyWorkload(/*tp=*/2, /*ep=*/2, /*tokens=*/48);
  const auto reference = ShardedReferenceMoeLayer(w);
  const auto canonical = CanonicalFunctionalMoe(w);
  ExpectBitExact(canonical, reference);
}

TEST(BaselineFunctional, AllBaselinesMatchReference) {
  const MoeWorkload w = TinyWorkload(/*tp=*/1, /*ep=*/4, /*tokens=*/64);
  const auto reference = ShardedReferenceMoeLayer(w);
  const auto cluster = H800Cluster(4);

  MegatronExecutor cutlass = MakeMegatronCutlass();
  MegatronExecutor te = MakeMegatronTe();
  FasterMoeExecutor fastermoe;
  TutelExecutor tutel;
  for (MoeLayerExecutor* exec :
       std::initializer_list<MoeLayerExecutor*>{&cutlass, &te, &fastermoe,
                                                &tutel}) {
    const auto run = exec->Run(w, cluster, ExecMode::kFunctional);
    ExpectBitExact(run.outputs, reference);
  }
}

TEST(ExecutorTiming, CometFasterThanSequentialBaseline) {
  WorkloadOptions options;
  options.materialize = false;
  const MoeWorkload w =
      MakeWorkload(Mixtral8x7B(), ParallelConfig{1, 8}, 16384, options);
  const auto cluster = H800Cluster(8);
  CometExecutor comet;
  MegatronExecutor cutlass = MakeMegatronCutlass();
  const auto comet_run = comet.Run(w, cluster, ExecMode::kTimedOnly);
  const auto base_run = cutlass.Run(w, cluster, ExecMode::kTimedOnly);
  EXPECT_LT(comet_run.duration_us, base_run.duration_us);
  // The paper reports 1.28x - 2.37x for single layers; require a sane window.
  const double speedup = base_run.duration_us / comet_run.duration_us;
  EXPECT_GT(speedup, 1.1);
  EXPECT_LT(speedup, 4.0);
}

TEST(ExecutorTiming, TimedOnlyProducesNoOutputs) {
  const MoeWorkload w = TinyWorkload(1, 4, 64);
  CometExecutor comet;
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kTimedOnly);
  EXPECT_TRUE(run.outputs.empty());
  EXPECT_GT(run.duration_us, 0.0);
  EXPECT_EQ(run.per_rank_us.size(), 4u);
}

TEST(ExecutorTiming, FasterMoeRejectsTensorParallelism) {
  FasterMoeExecutor fastermoe;
  EXPECT_FALSE(fastermoe.Supports(ParallelConfig{2, 4}));
  EXPECT_TRUE(fastermoe.Supports(ParallelConfig{1, 8}));
}

TEST(ExecutorTiming, CometHidesMostCommunication) {
  WorkloadOptions options;
  options.materialize = false;
  const MoeWorkload w =
      MakeWorkload(Mixtral8x7B(), ParallelConfig{1, 8}, 16384, options);
  const auto cluster = H800Cluster(8);
  CometExecutor comet;
  const auto run = comet.Run(w, cluster, ExecMode::kTimedOnly);
  // Paper: 86.5% of communication latency hidden on average.
  EXPECT_GT(run.timeline.HiddenCommFraction(), 0.6);
}

TEST(CometBatch, RunBatchMatchesRunAndCachesProfiles) {
  // The serving plane's batch-reuse entry point must be a pure optimization:
  // bit-identical outputs and identical simulated duration vs Run, with the
  // adaptive division-point profile cached after the first call so repeated
  // same-shape batches skip the candidate sweep.
  const MoeWorkload w = TinyWorkload(/*tp=*/1, /*ep=*/4, /*tokens=*/64);
  const auto cluster = H800Cluster(4);
  CometExecutor plain{CometOptions{.tile_m = 8, .tile_n = 8}};
  CometExecutor batched{CometOptions{.tile_m = 8, .tile_n = 8}};
  const auto via_run = plain.Run(w, cluster, ExecMode::kFunctional);
  EXPECT_EQ(batched.batch_profile_entries(), 0u);
  const auto via_batch = batched.RunBatch(w, cluster, ExecMode::kFunctional);
  ExpectBitExact(via_run.outputs, via_batch.outputs);
  EXPECT_EQ(via_run.duration_us, via_batch.duration_us);
  EXPECT_GT(batched.batch_profile_entries(), 0u);
  // Division points agree between the swept and the cached path.
  const auto again = batched.RunBatch(w, cluster, ExecMode::kFunctional);
  EXPECT_EQ(again.duration_us, via_run.duration_us);
  EXPECT_EQ(batched.last_layer0_comm_blocks(), plain.last_layer0_comm_blocks());
  EXPECT_EQ(batched.last_layer1_comm_blocks(), plain.last_layer1_comm_blocks());
}

TEST(CometFunctional, CapacityDroppedRoutingStillBitExact) {
  // Enforce a tight capacity so pairs (and whole tokens) drop, rebuild the
  // plan, and run COMET functionally: short routes must flow through the
  // heap-mediated combine unharmed.
  MoeWorkload w = TinyWorkload(/*tp=*/2, /*ep=*/2, /*tokens=*/48,
                               /*seed=*/19, /*load_std=*/0.08);
  const DropStats stats =
      ApplyCapacityFactor(w.routing, w.model().num_experts, 0.8);
  ASSERT_GT(stats.dropped_pairs, 0);
  w.plan = RoutePlan(w.placement, w.routing);
  const auto reference = ShardedReferenceMoeLayer(w);
  CometExecutor comet{CometOptions{.tile_m = 8, .tile_n = 8}};
  const auto run = comet.Run(w, H800Cluster(4), ExecMode::kFunctional);
  ExpectBitExact(run.outputs, reference);
}

}  // namespace
}  // namespace comet
