// Recovery-plane tests: replica recovery (kRecover), deterministic retry
// with backoff + hedged dispatch, health-aware placement (the per-replica
// circuit breaker), and transport integrity (per-row checksums + the
// link-corruption injector).
//
// The acceptance invariants of the subsystem:
//  * determinism -- same seed + config + fault plan => bit-identical
//    reports (digests, counters, percentiles, retry/hedge/breaker
//    trajectories) at COMET_THREADS {1,8}, across all placement policies;
//  * faults never change bits -- a retried, hedged, or redispatched
//    request's output digest equals the no-fault run's: faults and the
//    machinery that survives them move LATENCY only;
//  * recovery -- a kRecover replica is rebuilt from scratch, pays its
//    warm-up before re-entering the accepting set, and re-admits traffic
//    through the breaker's half-open probe path;
//  * hedging -- at most one speculative copy, exactly one completion per
//    request, losers cancelled with exact wasted_tokens accounting;
//  * breaker -- the closed -> open -> half-open state machine honors its
//    contract under randomized trials (exponential backoff capped, probe
//    success closes, probe failure re-opens longer);
//  * integrity -- an injected bit-flip on the symmetric heap is ALWAYS
//    detected at its first consumer (CheckError naming buffer/rank/row),
//    never silently served;
//  * conservation (chaos trials) -- under random fault/recovery plans,
//    offered == completed + shed + failed_in_flight + retries_exhausted
//    and every completed request's bits match the no-fault run.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "comm/symmetric_heap.h"
#include "serve/cluster.h"
#include "serve/health.h"
#include "serve/loadgen.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

constexpr PlacementPolicy kAllPolicies[] = {
    PlacementPolicy::kRoundRobin,
    PlacementPolicy::kLeastLoaded,
    PlacementPolicy::kPowerOfTwo,
    PlacementPolicy::kSticky,
};

ModelConfig RecoveryModel() {
  ModelConfig m;
  m.name = "recovery-tiny";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 32;
  m.ffn_hidden = 64;
  return m;
}

// A micro model for the randomized chaos trials (hundreds of runs).
ModelConfig MicroModel() {
  ModelConfig m;
  m.name = "recovery-micro";
  m.layers = 1;
  m.num_experts = 4;
  m.topk = 2;
  m.embedding = 8;
  m.ffn_hidden = 16;
  return m;
}

ServeOptions BaseServeOptions(const ModelConfig& model, int ep,
                              int num_threads) {
  ServeOptions o;
  o.model = model;
  o.parallel = ParallelConfig{1, ep};
  o.seed = 1234;
  o.dtype = DType::kF32;
  o.num_threads = num_threads;
  o.token_budget = 16;
  o.max_active = 8;
  o.queue_capacity = 64;
  // Generous SLO so only lost/shed requests can violate it.
  o.slo.ttft_us = 1e12;
  return o;
}

ClusterOptions BaseClusterOptions(int replicas, PlacementPolicy placement,
                                  int num_threads = 1) {
  ClusterOptions o;
  o.server = BaseServeOptions(RecoveryModel(), 2, num_threads);
  o.replicas = replicas;
  o.placement = placement;
  o.placement_seed = 99;
  return o;
}

// Spread arrivals: traffic keeps flowing long enough to straddle a
// fail -> recover -> warm-up -> probe sequence.
LoadGenOptions SpreadLoadOptions(int64_t n = 32) {
  LoadGenOptions o;
  o.seed = 77;
  o.offered_rps = 2000.0;
  o.num_requests = n;
  o.prompt = LengthDist::Uniform(2, 6);
  o.decode = LengthDist::Uniform(0, 4);
  o.num_sessions = 6;
  return o;
}

// Tightly bunched arrivals: both replicas hold in-flight and queued work
// when a fault fires, and queue waits are long enough for hedging.
LoadGenOptions BurstLoadOptions(int64_t n = 24) {
  LoadGenOptions o = SpreadLoadOptions(n);
  o.arrival = ArrivalProcess::kBursty;
  o.mean_burst = static_cast<double>(n);
  o.offered_rps = 1e9;  // everything arrives (essentially) at t=0
  return o;
}

void ExpectReportsIdentical(const ClusterReport& a, const ClusterReport& b) {
  ASSERT_EQ(a.completed.size(), b.completed.size());
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.failed_in_flight, b.failed_in_flight);
  EXPECT_EQ(a.retries_exhausted, b.retries_exhausted);
  EXPECT_EQ(a.redispatched, b.redispatched);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.hedged, b.hedged);
  EXPECT_EQ(a.hedge_wins, b.hedge_wins);
  EXPECT_EQ(a.wasted_tokens, b.wasted_tokens);
  EXPECT_EQ(a.replica_failures, b.replica_failures);
  EXPECT_EQ(a.replicas_recovered, b.replicas_recovered);
  EXPECT_EQ(a.corruptions_detected, b.corruptions_detected);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.batched_tokens, b.batched_tokens);
  EXPECT_EQ(a.per_replica_completed, b.per_replica_completed);
  EXPECT_EQ(a.per_replica_iterations, b.per_replica_iterations);
  for (size_t i = 0; i < a.completed.size(); ++i) {
    const RequestRecord& ra = a.completed[i];
    const RequestRecord& rb = b.completed[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.output_digest, rb.output_digest)
        << "request " << ra.id << " output bits changed";
    EXPECT_EQ(ra.queue_wait_us, rb.queue_wait_us);
    EXPECT_EQ(ra.e2e_us, rb.e2e_us);
    EXPECT_EQ(ra.retries, rb.retries);
    EXPECT_EQ(ra.hedged, rb.hedged);
  }
  EXPECT_EQ(a.combined_digest, b.combined_digest);
  EXPECT_EQ(a.sim_duration_us, b.sim_duration_us);
  EXPECT_EQ(a.ttft_us.p99, b.ttft_us.p99);
  EXPECT_EQ(a.itl_us.p99, b.itl_us.p99);
  EXPECT_EQ(a.e2e_us.p99, b.e2e_us.p99);
}

// Per-request digest map of a no-fault, no-hedge run over `arrivals`: the
// ground truth every fault/retry/hedge scenario must reproduce bit-for-bit.
std::map<int64_t, uint64_t> CleanDigests(
    const std::vector<RequestSpec>& arrivals, double* duration = nullptr) {
  ClusterOptions clean =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  const ClusterReport report =
      MoeCluster(clean, H800Cluster(2)).Run(arrivals);
  COMET_CHECK_EQ(static_cast<int64_t>(report.completed.size()),
                 report.offered);
  std::map<int64_t, uint64_t> digests;
  for (const RequestRecord& rec : report.completed) {
    digests[rec.id] = rec.output_digest;
  }
  if (duration != nullptr) {
    *duration = report.sim_duration_us;
  }
  return digests;
}

// ---- determinism tier ------------------------------------------------------

// The acceptance matrix of the recovery plane: a plan that exercises fail,
// recover-with-warm-up, backoff retries, hedging and the breaker at once
// must produce bit-identical reports at 1 vs 8 host threads, for every
// placement policy. Breaker trajectories are RNG-free and retry jitter
// draws from its own seeded stream, so NOTHING may move.
TEST(RecoveryDeterminism, AcrossThreadCountsAndPolicies) {
  const auto arrivals = LoadGenerator(SpreadLoadOptions()).GenerateAll();
  double duration = 0.0;
  CleanDigests(arrivals, &duration);
  for (PlacementPolicy policy : kAllPolicies) {
    SCOPED_TRACE(PlacementPolicyName(policy));
    ClusterOptions serial = BaseClusterOptions(2, policy, /*num_threads=*/1);
    serial.in_flight = InFlightPolicy::kRetryBackoff;
    serial.retry_budget = 3;
    serial.hedge_queue_wait_us = duration * 0.05;
    serial.recovery_warmup_us = duration * 0.05;
    serial.faults.events.push_back(
        {duration * 0.3, /*replica=*/0, FaultKind::kFail});
    serial.faults.events.push_back(
        {duration * 0.5, /*replica=*/0, FaultKind::kRecover});
    ClusterOptions threaded = serial;
    threaded.server.num_threads = 8;
    const ClusterReport a = MoeCluster(serial, H800Cluster(2)).Run(arrivals);
    const ClusterReport b =
        MoeCluster(threaded, H800Cluster(2)).Run(arrivals);
    ExpectReportsIdentical(a, b);
    EXPECT_EQ(a.replica_failures, 1);
    EXPECT_EQ(a.replicas_recovered, 1);
    EXPECT_EQ(static_cast<int64_t>(a.completed.size()) + a.shed +
                  a.failed_in_flight + a.retries_exhausted,
              a.offered);
  }
}

// A cluster that replaced a replica mid-run (kRecover) is still reusable:
// the same object re-run over the same arrivals reproduces itself bit for
// bit -- the fresh incarnation has the same seed, hence the same weights,
// and BeginRun resets everything else.
TEST(RecoveryDeterminism, RerunAfterRecoveryIsBitIdentical) {
  const auto arrivals = LoadGenerator(SpreadLoadOptions()).GenerateAll();
  double duration = 0.0;
  CleanDigests(arrivals, &duration);
  ClusterOptions options =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  options.in_flight = InFlightPolicy::kRetryBackoff;
  options.recovery_warmup_us = duration * 0.05;
  options.faults.events.push_back({duration * 0.3, 0, FaultKind::kFail});
  options.faults.events.push_back({duration * 0.5, 0, FaultKind::kRecover});
  MoeCluster cluster(options, H800Cluster(2));
  const ClusterReport a = cluster.Run(arrivals);
  const ClusterReport b = cluster.Run(arrivals);
  EXPECT_EQ(a.replicas_recovered, 1);
  ExpectReportsIdentical(a, b);
}

// ---- replica recovery ------------------------------------------------------

// The full lifecycle: fail -> dead (breaker force-opened) -> rebuilt from
// scratch -> warming (still not accepting) -> accepting, re-admitted
// through a half-open probe. No dispatch may land on the replica between
// its death and the end of its warm-up, and once it is back it serves real
// work -- with the same output bits the no-fault run produced.
TEST(ReplicaRecovery, FailThenRecoverRejoinsAfterWarmupViaProbe) {
  const auto arrivals = LoadGenerator(SpreadLoadOptions()).GenerateAll();
  double duration = 0.0;
  const auto clean = CleanDigests(arrivals, &duration);

  ClusterOptions options =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  options.record_dispatch_log = true;
  const double fail_at = duration * 0.25;
  const double recover_at = duration * 0.45;
  options.recovery_warmup_us = duration * 0.05;
  options.faults.events.push_back({fail_at, 0, FaultKind::kFail});
  options.faults.events.push_back({recover_at, 0, FaultKind::kRecover});
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);

  EXPECT_EQ(report.replica_failures, 1);
  EXPECT_EQ(report.replicas_recovered, 1);
  EXPECT_GE(report.breaker_opens, 1) << "death must force the breaker open";
  // Nothing lost under kRedispatch, and recovery never changes bits.
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered);
  for (const RequestRecord& rec : report.completed) {
    EXPECT_EQ(rec.output_digest, clean.at(rec.id)) << "request " << rec.id;
  }
  // The dead/warming window is dispatch-free; re-entry is through a probe.
  const double back_at = recover_at + options.recovery_warmup_us;
  bool probed = false;
  bool served_after_recovery = false;
  for (const DispatchDecision& d : report.dispatch_log) {
    if (d.replica != 0) {
      continue;
    }
    if (d.time_us > fail_at) {
      EXPECT_GE(d.time_us, back_at)
          << "dispatched to replica 0 while dead or warming";
      served_after_recovery = true;
      probed = probed || d.probe;
    }
  }
  EXPECT_TRUE(served_after_recovery)
      << "the recovered replica never took traffic again";
  EXPECT_TRUE(probed)
      << "re-entry must go through the breaker's half-open probe";
  EXPECT_GT(report.probes, 0);
}

// A recovery with zero warm-up re-enters immediately (modulo the breaker's
// backoff); a long warm-up visibly delays the first post-recovery dispatch.
TEST(ReplicaRecovery, WarmupDelaysReentry) {
  const auto arrivals = LoadGenerator(SpreadLoadOptions()).GenerateAll();
  double duration = 0.0;
  CleanDigests(arrivals, &duration);

  auto first_return = [&](double warmup) {
    ClusterOptions options =
        BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
    options.record_dispatch_log = true;
    options.recovery_warmup_us = warmup;
    options.faults.events.push_back({duration * 0.25, 0, FaultKind::kFail});
    options.faults.events.push_back(
        {duration * 0.4, 0, FaultKind::kRecover});
    const ClusterReport report =
        MoeCluster(options, H800Cluster(2)).Run(arrivals);
    COMET_CHECK_EQ(report.replicas_recovered, 1);
    double first = -1.0;
    for (const DispatchDecision& d : report.dispatch_log) {
      if (d.replica == 0 && d.time_us > duration * 0.25) {
        first = d.time_us;
        break;
      }
    }
    return first;
  };
  const double eager = first_return(/*warmup=*/0.0);
  const double lazy = first_return(/*warmup=*/duration * 0.3);
  ASSERT_GE(eager, 0.0);
  ASSERT_GE(lazy, 0.0);
  EXPECT_GE(lazy, duration * 0.4 + duration * 0.3);
  EXPECT_LT(eager, lazy);
}

// ---- deterministic retry + hedging -----------------------------------------

// kRetryBackoff: in-flight requests on a dying replica come back through
// seeded exponential backoff and land on the survivor. Nothing is lost,
// the per-request retry annotations reconcile with the report counter, and
// every retried request's bits match the no-fault run.
TEST(RetryBackoff, FailedInFlightRetriesMatchNoFaultBits) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  double duration = 0.0;
  const auto clean = CleanDigests(arrivals, &duration);

  ClusterOptions options =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  options.in_flight = InFlightPolicy::kRetryBackoff;
  options.retry_budget = 4;
  options.faults.events.push_back({duration * 0.4, 0, FaultKind::kFail});
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);

  EXPECT_EQ(report.replica_failures, 1);
  EXPECT_GT(report.retries, 0) << "replica 0 held work when it died";
  EXPECT_EQ(report.retries_exhausted, 0);
  EXPECT_EQ(report.failed_in_flight, 0);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered);
  EXPECT_EQ(report.slo_violations, 0);
  int64_t annotated = 0;
  for (const RequestRecord& rec : report.completed) {
    annotated += rec.retries;
    EXPECT_EQ(rec.output_digest, clean.at(rec.id))
        << "retry changed request " << rec.id << "'s output bits";
  }
  EXPECT_EQ(annotated, report.retries)
      << "per-request retry annotations must reconcile with the counter";
}

// retry_budget = 0 means a failed in-flight request is immediately
// retries_exhausted -- and exhausted requests are SLO violations, counted
// in the attainment denominator exactly like sheds.
TEST(RetryBackoff, ZeroBudgetExhaustsAndChargesSlo) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  double duration = 0.0;
  CleanDigests(arrivals, &duration);

  ClusterOptions options =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  options.in_flight = InFlightPolicy::kRetryBackoff;
  options.retry_budget = 0;
  options.faults.events.push_back({duration * 0.4, 0, FaultKind::kFail});
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);

  EXPECT_GT(report.retries_exhausted, 0);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()) +
                report.retries_exhausted,
            report.offered);
  EXPECT_EQ(report.slo_violations, report.retries_exhausted);
  EXPECT_DOUBLE_EQ(
      report.slo_attainment,
      static_cast<double>(report.completed.size()) /
          static_cast<double>(report.offered));
}

// The retry stream is its own seeded Rng: a different retry_seed moves
// WHEN retries land (latency), never WHAT they compute (bits).
TEST(RetryBackoff, JitterSeedMovesLatencyNeverBits) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  double duration = 0.0;
  CleanDigests(arrivals, &duration);

  auto run_with_seed = [&](uint64_t seed) {
    ClusterOptions options =
        BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
    options.in_flight = InFlightPolicy::kRetryBackoff;
    options.retry_budget = 4;
    options.retry_seed = seed;
    options.faults.events.push_back({duration * 0.4, 0, FaultKind::kFail});
    return MoeCluster(options, H800Cluster(2)).Run(arrivals);
  };
  const ClusterReport a = run_with_seed(11);
  const ClusterReport b = run_with_seed(12345);
  ASSERT_EQ(static_cast<int64_t>(a.completed.size()), a.offered);
  ASSERT_EQ(static_cast<int64_t>(b.completed.size()), b.offered);
  EXPECT_EQ(a.combined_digest, b.combined_digest)
      << "retry jitter must never reach the data plane";
}

// Hedging under a burst: long queue waits trigger speculative second
// copies. Exactly one completion per request, losers cancelled with their
// executed tokens charged to wasted_tokens, and the bits are exactly the
// no-hedge run's.
TEST(Hedging, ExactlyOneCompletionAndBitsUnchanged) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  double duration = 0.0;
  const auto clean = CleanDigests(arrivals, &duration);

  ClusterOptions options =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  options.hedge_queue_wait_us = duration * 0.05;
  options.record_dispatch_log = true;
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);

  EXPECT_GT(report.hedged, 0) << "burst queue waits must trigger hedges";
  EXPECT_LE(report.hedge_wins, report.hedged);
  EXPECT_GE(report.wasted_tokens, 0);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered);
  // Exactly one completion per request id.
  std::set<int64_t> ids;
  for (const RequestRecord& rec : report.completed) {
    EXPECT_TRUE(ids.insert(rec.id).second)
        << "request " << rec.id << " completed twice";
    EXPECT_EQ(rec.output_digest, clean.at(rec.id))
        << "hedging changed request " << rec.id << "'s output bits";
  }
  // Every hedge dispatch in the log is a second copy of a known request.
  int64_t hedge_dispatches = 0;
  for (const DispatchDecision& d : report.dispatch_log) {
    if (d.hedge) {
      ++hedge_dispatches;
      EXPECT_TRUE(ids.count(d.request_id));
    }
  }
  EXPECT_EQ(hedge_dispatches, report.hedged);
  // The hedged flag is annotated onto completed records.
  int64_t annotated = 0;
  for (const RequestRecord& rec : report.completed) {
    annotated += rec.hedged ? 1 : 0;
  }
  EXPECT_GE(annotated, report.hedged);
}

// A hedged request survives its primary's death: the speculative copy
// completes, so even kCountAsViolation loses nothing it hedged.
TEST(Hedging, HedgeCopyRescuesRequestsFromDyingPrimary) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  double duration = 0.0;
  const auto clean = CleanDigests(arrivals, &duration);

  ClusterOptions no_hedge =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  no_hedge.in_flight = InFlightPolicy::kCountAsViolation;
  no_hedge.faults.events.push_back({duration * 0.4, 0, FaultKind::kFail});
  ClusterOptions hedge = no_hedge;
  hedge.hedge_queue_wait_us = duration * 0.03;

  const ClusterReport without =
      MoeCluster(no_hedge, H800Cluster(2)).Run(arrivals);
  const ClusterReport with = MoeCluster(hedge, H800Cluster(2)).Run(arrivals);
  ASSERT_GT(without.failed_in_flight, 0)
      << "the fault must cost something without hedging";
  EXPECT_GT(with.hedged, 0);
  EXPECT_LT(with.failed_in_flight, without.failed_in_flight)
      << "hedged copies on the survivor must rescue some requests";
  for (const RequestRecord& rec : with.completed) {
    EXPECT_EQ(rec.output_digest, clean.at(rec.id));
  }
}

// ---- circuit breaker -------------------------------------------------------

// Scripted walk through the state machine: failures open it, the backoff
// gates re-entry, a probe failure re-opens with a longer wait, a probe
// success closes it and resets the streak.
TEST(CircuitBreaker, ScriptedTransitions) {
  HealthOptions options;  // alpha 0.3, threshold 0.5, backoff 2000, x2
  ReplicaHealth health(1, options);
  EXPECT_EQ(health.state(0, 0.0), BreakerState::kClosed);
  EXPECT_TRUE(health.AllowDispatch(0, 0.0));

  health.ObserveFailure(0, 0.0);  // ewma 0.3: still closed
  EXPECT_EQ(health.state(0, 0.0), BreakerState::kClosed);
  health.ObserveFailure(0, 0.0);  // ewma 0.51 >= 0.5: opens
  EXPECT_EQ(health.state(0, 0.0), BreakerState::kOpen);
  EXPECT_FALSE(health.AllowDispatch(0, 0.0));
  EXPECT_EQ(health.consecutive_opens(0), 1);
  EXPECT_DOUBLE_EQ(health.open_until(0), 2000.0);

  // Backoff elapsed: half-open, one probe allowed.
  EXPECT_EQ(health.state(0, 2000.0), BreakerState::kHalfOpen);
  EXPECT_TRUE(health.AllowDispatch(0, 2000.0));
  health.OnProbeDispatched(0, 2000.0);
  EXPECT_FALSE(health.AllowDispatch(0, 2000.0))
      << "half_open_probes = 1: the second probe must wait";
  EXPECT_EQ(health.total_probes(), 1);

  // Probe fails: re-open with doubled backoff.
  health.ObserveFailure(0, 2100.0);
  EXPECT_EQ(health.state(0, 2100.0), BreakerState::kOpen);
  EXPECT_EQ(health.consecutive_opens(0), 2);
  EXPECT_DOUBLE_EQ(health.open_until(0), 2100.0 + 4000.0);

  // Backoff elapsed again; this probe succeeds: closed, streak reset.
  EXPECT_EQ(health.state(0, 6100.0), BreakerState::kHalfOpen);
  health.OnProbeDispatched(0, 6100.0);
  health.ObserveSuccess(0, 6200.0);
  EXPECT_EQ(health.state(0, 6200.0), BreakerState::kClosed);
  EXPECT_EQ(health.consecutive_opens(0), 0);
  EXPECT_TRUE(health.AllowDispatch(0, 6200.0));
  EXPECT_EQ(health.total_opens(), 2);
}

TEST(CircuitBreaker, ForceOpenOverridesEwma) {
  ReplicaHealth health(2, HealthOptions{});
  // One failure is below the EWMA threshold, but ForceOpen is a death: the
  // breaker opens regardless, and only replica 0's.
  health.ForceOpen(0, 100.0);
  EXPECT_EQ(health.state(0, 100.0), BreakerState::kOpen);
  EXPECT_FALSE(health.AllowDispatch(0, 100.0));
  EXPECT_EQ(health.state(1, 100.0), BreakerState::kClosed);
  EXPECT_TRUE(health.AllowDispatch(1, 100.0));
}

// Randomized property trials: whatever the op sequence, the breaker's
// observable contract holds -- open refuses, closed admits, EWMA stays in
// [0,1], backoff is bounded by max_backoff_us, a half-open probe success
// always closes and resets the streak.
TEST(CircuitBreaker, RandomizedContractTrials) {
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE(std::string("trial=") + std::to_string(trial));
    Rng rng(7000 + static_cast<uint64_t>(trial));
    HealthOptions options;
    options.ewma_alpha = 0.1 + 0.8 * rng.NextDouble();
    options.open_threshold = 0.2 + 0.7 * rng.NextDouble();
    options.probe_backoff_us = 500.0 + 3000.0 * rng.NextDouble();
    options.backoff_multiplier = 1.0 + 2.0 * rng.NextDouble();
    options.max_backoff_us = options.probe_backoff_us * 8.0;
    const int replicas = static_cast<int>(rng.UniformInt(1, 3));
    ReplicaHealth health(replicas, options);
    double now = 0.0;
    for (int op = 0; op < 50; ++op) {
      now += rng.NextDouble() * options.probe_backoff_us * 2.0;
      const int r = static_cast<int>(rng.UniformInt(0, replicas - 1));
      const double u = rng.NextDouble();
      const BreakerState before = health.state(r, now);
      if (u < 0.35) {
        health.ObserveFailure(r, now);
      } else if (u < 0.7) {
        if (before == BreakerState::kHalfOpen && health.AllowDispatch(r, now)) {
          health.OnProbeDispatched(r, now);
        }
        health.ObserveSuccess(r, now);
        if (before == BreakerState::kHalfOpen) {
          EXPECT_EQ(health.state(r, now), BreakerState::kClosed)
              << "a probe success must close the breaker";
          EXPECT_EQ(health.consecutive_opens(r), 0);
        }
      } else {
        health.ForceOpen(r, now);
        EXPECT_EQ(health.state(r, now), BreakerState::kOpen);
      }
      for (int q = 0; q < replicas; ++q) {
        const BreakerState s = health.state(q, now);
        const double ewma = health.failure_ewma(q);
        EXPECT_GE(ewma, 0.0);
        EXPECT_LE(ewma, 1.0);
        if (s == BreakerState::kOpen) {
          EXPECT_FALSE(health.AllowDispatch(q, now));
          EXPECT_LE(health.open_until(q), now + options.max_backoff_us);
        }
        if (s == BreakerState::kClosed) {
          EXPECT_TRUE(health.AllowDispatch(q, now));
        }
      }
    }
  }
}

// ---- transport integrity ---------------------------------------------------

// Heap-level always-detected trials: every row the injector corrupted
// throws CheckError at its first read -- detection count equals injection
// count, over 100 randomized trials, and the error names buffer/rank/row.
TEST(TransportIntegrity, InjectedCorruptionAlwaysDetected) {
  int64_t total_corrupted = 0;
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE(std::string("trial=") + std::to_string(trial));
    HeapIntegrityOptions integrity;
    integrity.checksum_rows = true;
    integrity.corrupt_rate = 0.5;
    integrity.corrupt_seed = 4000 + static_cast<uint64_t>(trial);
    SymmetricHeap heap(2, integrity);
    const auto buf = heap.Allocate("payload", Shape{16, 8});
    Rng rng(integrity.corrupt_seed);
    std::vector<float> row(8);
    for (int64_t i = 0; i < 16; ++i) {
      for (float& v : row) {
        v = static_cast<float>(rng.Normal());
      }
      heap.PutRow(buf, /*src_rank=*/0, /*dst_rank=*/1, i, row);
    }
    int64_t detected = 0;
    for (int64_t i = 0; i < 16; ++i) {
      try {
        heap.GetRow(buf, /*reader_rank=*/0, /*owner_rank=*/1, i);
      } catch (const CheckError& e) {
        ++detected;
        const std::string what = e.what();
        EXPECT_NE(what.find("transport integrity"), std::string::npos);
        EXPECT_NE(what.find("payload"), std::string::npos)
            << "the error must name the buffer";
        EXPECT_NE(what.find("@rank1"), std::string::npos)
            << "the error must name the rank";
        EXPECT_NE(what.find("row " + std::to_string(i)), std::string::npos)
            << "the error must name the row";
      }
    }
    EXPECT_EQ(detected, heap.rows_corrupted())
        << "every injected flip must be detected, and nothing else";
    total_corrupted += heap.rows_corrupted();
  }
  EXPECT_GT(total_corrupted, 0) << "rate 0.5 over 1600 rows cannot miss";
}

// Clean transport verifies and passes: checksums on, no injector, every
// read verified, zero corruption.
TEST(TransportIntegrity, CleanRowsVerifyAndPass) {
  HeapIntegrityOptions integrity;
  integrity.checksum_rows = true;
  SymmetricHeap heap(2, integrity);
  const auto buf = heap.Allocate("payload", Shape{4, 8});
  std::vector<float> row(8, 1.5f);
  for (int64_t i = 0; i < 4; ++i) {
    heap.PutRow(buf, 0, 1, i, row);
    EXPECT_EQ(heap.GetRow(buf, 0, 1, i), row);
  }
  EXPECT_EQ(heap.rows_corrupted(), 0);
  EXPECT_EQ(heap.rows_verified(), 4);
}

// Cluster-level: a kCorrupt fault flips a bit on the faulted replica's
// next iteration. The checksum catches it (a counted corruption + replica
// failure, never silent corruption), the fleet redispatches, and every
// served bit matches the no-fault run.
TEST(TransportIntegrity, CorruptFaultIsDetectedNeverServed) {
  const auto arrivals = LoadGenerator(BurstLoadOptions()).GenerateAll();
  const auto clean = CleanDigests(arrivals);

  ClusterOptions options =
      BaseClusterOptions(2, PlacementPolicy::kLeastLoaded);
  options.faults.events.push_back({0.0, 0, FaultKind::kCorrupt});
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);

  EXPECT_EQ(report.corruptions_detected, 1);
  EXPECT_EQ(report.replica_failures, 1);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered)
      << "the survivor absorbs the corrupted replica's work";
  for (const RequestRecord& rec : report.completed) {
    EXPECT_EQ(rec.output_digest, clean.at(rec.id))
        << "a corrupted payload leaked into request " << rec.id;
  }
}

// Detection holds across 20 randomized corruption trials: whichever
// replica and moment the corruption hits, it is detected 100% of the time.
TEST(TransportIntegrity, ClusterCorruptionDetectionTrials) {
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE(std::string("trial=") + std::to_string(trial));
    Rng rng(6100 + static_cast<uint64_t>(trial));
    LoadGenOptions load = BurstLoadOptions(12);
    load.seed = 600 + static_cast<uint64_t>(trial);
    const auto arrivals = LoadGenerator(load).GenerateAll();
    ClusterOptions options;
    options.server = BaseServeOptions(MicroModel(), /*ep=*/1, 1);
    options.replicas = 2;
    options.placement = PlacementPolicy::kLeastLoaded;
    const int victim = static_cast<int>(rng.UniformInt(0, 1));
    options.faults.events.push_back({0.0, victim, FaultKind::kCorrupt});
    const ClusterReport report =
        MoeCluster(options, H800Cluster(1)).Run(arrivals);
    EXPECT_EQ(report.corruptions_detected, 1)
        << "an injected corruption went undetected";
  }
}

// ---- sticky-pin regression -------------------------------------------------

// The fixed bug: a session pinned to a replica that died and later
// recovered must NOT be routed to the stale pin. The pin is re-validated
// against the accepting set on every dispatch; once re-homed, the session
// stays on its new replica even after the old one recovers (the recovered
// replica wins sessions back through re-homing, never by inheritance).
TEST(StickyRegression, PinRevalidatedAgainstAcceptingSet) {
  Dispatcher dispatcher(PlacementPolicy::kSticky, 2, /*seed=*/7);
  std::vector<int64_t> loads = {0, 100};
  std::vector<bool> accepting = {true, true};
  RequestSpec spec;
  spec.session = 42;

  // First sight: homes least-loaded onto replica 0 and pins.
  EXPECT_EQ(dispatcher.Pick(spec, loads, accepting, nullptr), 0);

  // Replica 0 dies (leaves the accepting set). The pin is stale: the
  // session must re-home to replica 1, NOT be routed to the dead pin.
  accepting[0] = false;
  DispatchDecision d;
  EXPECT_EQ(dispatcher.Pick(spec, loads, accepting, &d), 1);
  EXPECT_FALSE(d.sticky_hit);

  // Replica 0 recovers -- empty, so least-loaded would prefer it. The
  // session's pin moved to replica 1 and stays there (KV affinity).
  accepting[0] = true;
  loads = {0, 100};
  EXPECT_EQ(dispatcher.Pick(spec, loads, accepting, &d), 1);
  EXPECT_TRUE(d.sticky_hit);

  // A NEW session homes onto the recovered (least-loaded) replica: it wins
  // traffic back through re-homing.
  RequestSpec fresh;
  fresh.session = 43;
  EXPECT_EQ(dispatcher.Pick(fresh, loads, accepting, nullptr), 0);
}

// End-to-end: sticky fleet, pinned replica fails and recovers mid-run.
// Every dispatch in the log landed on a replica that was accepting at
// decision time -- the stale-pin dispatch the bug allowed cannot appear.
TEST(StickyRegression, NoDispatchToDeadPinAcrossFailAndRecover) {
  const auto arrivals = LoadGenerator(SpreadLoadOptions()).GenerateAll();
  double duration = 0.0;
  const auto clean = CleanDigests(arrivals, &duration);

  ClusterOptions options = BaseClusterOptions(2, PlacementPolicy::kSticky);
  options.record_dispatch_log = true;
  options.recovery_warmup_us = duration * 0.05;
  options.faults.events.push_back({duration * 0.25, 0, FaultKind::kFail});
  options.faults.events.push_back({duration * 0.45, 0, FaultKind::kRecover});
  const ClusterReport report =
      MoeCluster(options, H800Cluster(2)).Run(arrivals);

  EXPECT_EQ(report.replicas_recovered, 1);
  EXPECT_EQ(static_cast<int64_t>(report.completed.size()), report.offered);
  for (const DispatchDecision& d : report.dispatch_log) {
    if (d.replica < 0) {
      continue;
    }
    EXPECT_EQ((d.accepting_mask >> d.replica) & 1, 1u)
        << "request " << d.request_id
        << " dispatched to a non-accepting replica at t=" << d.time_us;
  }
  for (const RequestRecord& rec : report.completed) {
    EXPECT_EQ(rec.output_digest, clean.at(rec.id));
  }
}

// ---- options validation ----------------------------------------------------

TEST(RobustnessValidation, ServerRejectsNonPositiveSignalTimeout) {
  ServeOptions bad = BaseServeOptions(MicroModel(), 1, 1);
  bad.signal_wait_timeout_ms = 0;
  EXPECT_THROW(MoeServer(bad, H800Cluster(1)), CheckError);
  bad.signal_wait_timeout_ms = -5;
  EXPECT_THROW(MoeServer(bad, H800Cluster(1)), CheckError);
}

TEST(RobustnessValidation, ClusterRejectsBadRecoveryKnobs) {
  const auto make = [](auto&& mutate) {
    ClusterOptions o = BaseClusterOptions(2, PlacementPolicy::kRoundRobin);
    mutate(o);
    return o;
  };
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.retry_budget = -1;
               }),
                          H800Cluster(2)),
               CheckError);
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.retry_backoff_us = 0.0;
               }),
                          H800Cluster(2)),
               CheckError);
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.retry_jitter_frac = -0.1;
               }),
                          H800Cluster(2)),
               CheckError);
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.retry_jitter_frac = 1.5;
               }),
                          H800Cluster(2)),
               CheckError);
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.recovery_warmup_us = -1.0;
               }),
                          H800Cluster(2)),
               CheckError);
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.hedge_queue_wait_us = -1.0;
               }),
                          H800Cluster(2)),
               CheckError);
  // Health options are validated even when health is DISABLED: a malformed
  // config must never ride along silently.
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.health_enabled = false;
                 o.health.ewma_alpha = 0.0;
               }),
                          H800Cluster(2)),
               CheckError);
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.health.backoff_multiplier = 0.5;
               }),
                          H800Cluster(2)),
               CheckError);
  EXPECT_THROW(MoeCluster(make([](ClusterOptions& o) {
                 o.health.half_open_probes = 0;
               }),
                          H800Cluster(2)),
               CheckError);
}

TEST(RobustnessValidation, FaultPlanRejectsMalformedPlans) {
  FaultPlan plan;
  // Out-of-range replica.
  plan.events = {{100.0, 2, FaultKind::kFail}};
  EXPECT_THROW(ValidateFaultPlan(plan, 2), CheckError);
  // Negative time.
  plan.events = {{-1.0, 0, FaultKind::kFail}};
  EXPECT_THROW(ValidateFaultPlan(plan, 2), CheckError);
  // Unsorted times.
  plan.events = {{200.0, 0, FaultKind::kFail}, {100.0, 1, FaultKind::kDrain}};
  EXPECT_THROW(ValidateFaultPlan(plan, 2), CheckError);
  // kRecover without a prior fail/wedge/corrupt.
  plan.events = {{100.0, 0, FaultKind::kRecover}};
  EXPECT_THROW(ValidateFaultPlan(plan, 2), CheckError);
  // A drain does not count as down: recovering a drained replica is invalid.
  plan.events = {{100.0, 0, FaultKind::kDrain},
                 {200.0, 0, FaultKind::kRecover}};
  EXPECT_THROW(ValidateFaultPlan(plan, 2), CheckError);
  // Valid plans pass: fail -> recover -> fail -> recover, and every down
  // kind can be recovered from.
  plan.events = {{100.0, 0, FaultKind::kFail},
                 {200.0, 0, FaultKind::kRecover},
                 {300.0, 0, FaultKind::kCorrupt},
                 {400.0, 0, FaultKind::kRecover},
                 {500.0, 1, FaultKind::kWedge},
                 {600.0, 1, FaultKind::kRecover}};
  EXPECT_NO_THROW(ValidateFaultPlan(plan, 2));
}

// ---- chaos property suite --------------------------------------------------

std::vector<RequestSpec> RandomArrivals(Rng& rng, int64_t n) {
  std::vector<RequestSpec> arrivals;
  double clock = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    RequestSpec spec;
    spec.id = i;
    spec.seed = rng.NextU64();
    spec.session = static_cast<uint64_t>(rng.UniformInt(0, 3));
    spec.prompt_tokens = rng.UniformInt(1, 6);
    spec.decode_tokens = rng.UniformInt(0, 4);
    clock += rng.NextDouble() * 400.0;
    spec.arrival_us = clock;
    arrivals.push_back(spec);
  }
  return arrivals;
}

// A random but VALID fault plan (sorted times, in-range replicas, kRecover
// only after a down): fail / corrupt / drain / recover. kWedge is excluded
// here because its fail-fast costs real wall-clock per wedge (covered by
// cluster_test and the plan-validation test above).
FaultPlan RandomPlan(Rng& rng, int replicas, double horizon) {
  FaultPlan plan;
  std::vector<int> downs(static_cast<size_t>(replicas), 0);
  const int n = static_cast<int>(rng.UniformInt(1, 4));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.NextDouble() * horizon / static_cast<double>(n);
    const int r = static_cast<int>(rng.UniformInt(0, replicas - 1));
    const double u = rng.NextDouble();
    FaultKind kind;
    if (downs[static_cast<size_t>(r)] > 0 && u < 0.5) {
      kind = FaultKind::kRecover;
      --downs[static_cast<size_t>(r)];
    } else if (u < 0.75) {
      kind = FaultKind::kFail;
      ++downs[static_cast<size_t>(r)];
    } else if (u < 0.9) {
      kind = FaultKind::kCorrupt;
      ++downs[static_cast<size_t>(r)];
    } else {
      kind = FaultKind::kDrain;
    }
    plan.events.push_back({t, r, kind});
  }
  return plan;
}

// 100 randomized fleets under random fault/recovery plans, random
// InFlightPolicy, random retry budgets, hedging on half the trials.
// Per trial:
//  * conservation -- offered == completed + shed + failed_in_flight +
//    retries_exhausted (the cluster also CHECKs this internally; asserting
//    here keeps the property visible in the suite);
//  * exactly-one-completion -- no request id completes twice, hedged or not;
//  * bits never change -- every completed request's digest equals the
//    no-fault run's over the same arrivals.
TEST(ChaosProperty, RandomFaultPlansConserveAndPreserveBits) {
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE(std::string("trial=") + std::to_string(trial));
    Rng rng(12000 + static_cast<uint64_t>(trial));
    const auto arrivals = RandomArrivals(rng, rng.UniformInt(4, 10));
    const int replicas = static_cast<int>(rng.UniformInt(2, 3));
    const PlacementPolicy policy =
        kAllPolicies[rng.UniformInt(0, 3)];

    ClusterOptions clean;
    clean.server = BaseServeOptions(MicroModel(), /*ep=*/1, 1);
    clean.replicas = replicas;
    clean.placement = policy;
    clean.placement_seed = 5000 + static_cast<uint64_t>(trial);
    const ClusterReport baseline =
        MoeCluster(clean, H800Cluster(1)).Run(arrivals);
    ASSERT_EQ(static_cast<int64_t>(baseline.completed.size()),
              baseline.offered);
    std::map<int64_t, uint64_t> clean_digest;
    for (const RequestRecord& rec : baseline.completed) {
      clean_digest[rec.id] = rec.output_digest;
    }

    ClusterOptions chaotic = clean;
    chaotic.faults = RandomPlan(rng, replicas, baseline.sim_duration_us);
    chaotic.in_flight = static_cast<InFlightPolicy>(rng.UniformInt(0, 2));
    chaotic.retry_budget = static_cast<int>(rng.UniformInt(0, 3));
    chaotic.recovery_warmup_us =
        rng.NextDouble() * baseline.sim_duration_us * 0.1;
    if (rng.NextDouble() < 0.5) {
      chaotic.hedge_queue_wait_us = baseline.sim_duration_us *
                                    (0.02 + 0.1 * rng.NextDouble());
    }
    const ClusterReport report =
        MoeCluster(chaotic, H800Cluster(1)).Run(arrivals);

    EXPECT_EQ(static_cast<int64_t>(report.completed.size()) + report.shed +
                  report.failed_in_flight + report.retries_exhausted,
              report.offered)
        << "conservation violated under a random fault plan";
    std::set<int64_t> ids;
    for (const RequestRecord& rec : report.completed) {
      EXPECT_TRUE(ids.insert(rec.id).second)
          << "request " << rec.id << " completed twice";
      EXPECT_EQ(rec.output_digest, clean_digest.at(rec.id))
          << "request " << rec.id << " served different bits under chaos";
    }
  }
}

}  // namespace
}  // namespace comet
