// Unit tests for the simulator substrate: event queue, timeline, slot pools,
// bandwidth queue, fluid network and the host/stream executor.
#include <gtest/gtest.h>

#include "sim/bandwidth_queue.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/slot_pool.h"
#include "sim/stream_sim.h"
#include "sim/timeline.h"
#include "sim/trace_export.h"
#include "util/check.h"

#include <cstdio>
#include <fstream>

namespace comet {
namespace {

// ---- event queue -----------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.RunAll(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1.0, [&] {
    ++fired;
    q.ScheduleAfter(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(q.RunAll(), 2.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1.0, [&] { ++fired; });
  q.Schedule(5.0, [&] { ++fired; });
  q.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 2.0);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.Schedule(2.0, [] {});
  q.RunAll();
  EXPECT_THROW(q.Schedule(1.0, [] {}), CheckError);
}

// ---- timeline ---------------------------------------------------------------

TEST(Timeline, SpanAndBusy) {
  Timeline tl;
  tl.Add("a", OpCategory::kLayer0Comp, 0, 0.0, 10.0);
  tl.Add("b", OpCategory::kLayer0Comm, 1, 5.0, 15.0);
  EXPECT_DOUBLE_EQ(tl.Span(), 15.0);
  EXPECT_DOUBLE_EQ(tl.CategoryBusy(OpCategory::kLayer0Comp), 10.0);
  EXPECT_DOUBLE_EQ(tl.CategoryBusy(OpCategory::kLayer0Comm), 10.0);
}

TEST(Timeline, UnionMergesOverlaps) {
  Timeline tl;
  tl.Add("a", OpCategory::kLayer0Comp, 0, 0.0, 10.0);
  tl.Add("b", OpCategory::kLayer0Comp, 1, 5.0, 12.0);
  tl.Add("c", OpCategory::kLayer0Comp, 2, 20.0, 22.0);
  EXPECT_DOUBLE_EQ(tl.UnionTime(OpCategory::kLayer0Comp), 14.0);
}

TEST(Timeline, CommCompOverlapAndHiddenFraction) {
  Timeline tl;
  tl.Add("comm", OpCategory::kLayer0Comm, 1, 0.0, 10.0);
  tl.Add("comp", OpCategory::kLayer0Comp, 0, 4.0, 12.0);
  EXPECT_DOUBLE_EQ(tl.CommCompOverlap(), 6.0);
  EXPECT_DOUBLE_EQ(tl.HiddenCommFraction(), 0.6);
}

TEST(Timeline, NoCommMeansZeroHidden) {
  Timeline tl;
  tl.Add("comp", OpCategory::kLayer0Comp, 0, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(tl.HiddenCommFraction(), 0.0);
}

TEST(Timeline, MergeWithOffset) {
  Timeline a;
  a.Add("x", OpCategory::kGating, 0, 0.0, 1.0);
  Timeline b;
  b.Add("y", OpCategory::kGating, 0, 0.0, 2.0);
  a.Merge(b, 10.0);
  EXPECT_DOUBLE_EQ(a.SpanEnd(), 12.0);
  EXPECT_EQ(a.intervals().size(), 2u);
}

TEST(Timeline, RejectsNegativeDuration) {
  Timeline tl;
  EXPECT_THROW(tl.Add("bad", OpCategory::kOther, 0, 5.0, 4.0), CheckError);
}

// ---- slot pool ---------------------------------------------------------------

TEST(SlotPool, SingleSlotSerializes) {
  const std::vector<SlotTask> tasks = {{0.0, 2.0}, {0.0, 3.0}, {0.0, 1.0}};
  const SlotSchedule s = ScheduleInOrder(tasks, 1);
  EXPECT_DOUBLE_EQ(s.tasks[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start_us, 2.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start_us, 5.0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 6.0);
}

TEST(SlotPool, ParallelSlotsOverlap) {
  const std::vector<SlotTask> tasks(4, SlotTask{0.0, 2.0});
  const SlotSchedule s = ScheduleInOrder(tasks, 2);
  EXPECT_DOUBLE_EQ(s.makespan_us, 4.0);
}

TEST(SlotPool, InOrderIssueStallsOnNotReadyTask) {
  // Task 0 is not ready until t=10; with in-order issue it blocks the single
  // slot even though task 1 is ready immediately.
  const std::vector<SlotTask> tasks = {{10.0, 1.0}, {0.0, 1.0}};
  const SlotSchedule s = ScheduleInOrder(tasks, 1);
  EXPECT_DOUBLE_EQ(s.tasks[0].start_us, 10.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start_us, 11.0);
  EXPECT_GT(s.stall_us, 0.0);
}

TEST(SlotPool, EarliestReadyReordersAroundStall) {
  const std::vector<SlotTask> tasks = {{10.0, 1.0}, {0.0, 1.0}};
  const SlotSchedule s = ScheduleEarliestReady(tasks, 1);
  EXPECT_DOUBLE_EQ(s.tasks[1].start_us, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[0].start_us, 10.0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 11.0);
}

TEST(SlotPool, EmptyTaskList) {
  const SlotSchedule s = ScheduleInOrder({}, 4, 7.0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 7.0);
  EXPECT_TRUE(s.tasks.empty());
}

TEST(SlotPool, RespectsStartTime) {
  const std::vector<SlotTask> tasks = {{0.0, 1.0}};
  const SlotSchedule s = ScheduleInOrder(tasks, 1, 5.0);
  EXPECT_DOUBLE_EQ(s.tasks[0].start_us, 5.0);
}

TEST(SlotPool, RejectsZeroSlots) {
  EXPECT_THROW(ScheduleInOrder({{0.0, 1.0}}, 0), CheckError);
}

// ---- bandwidth queue ---------------------------------------------------------

TEST(BandwidthQueue, SerializesBytesButPipelinesLatency) {
  BandwidthQueue q(/*bw=*/100.0, /*latency=*/1.0);
  const auto r = q.Schedule({{0.0, 1000.0}, {0.0, 500.0}});
  EXPECT_DOUBLE_EQ(r[0].end_us, 11.0);   // 1000/100 drained, +1 in flight
  EXPECT_DOUBLE_EQ(r[1].start_us, 10.0);  // injects as soon as bytes drain
  EXPECT_DOUBLE_EQ(r[1].end_us, 16.0);
}

TEST(BandwidthQueue, LatencyPaidOncePerBurstTail) {
  // 32 small messages: total time = bytes/bw + ONE latency, not 32.
  BandwidthQueue q(100.0, 1.0);
  std::vector<TransferJob> jobs(32, TransferJob{0.0, 100.0});
  EXPECT_DOUBLE_EQ(q.Makespan(jobs), 32.0 * 1.0 + 1.0);
}

TEST(BandwidthQueue, WaitsForReadyTime) {
  BandwidthQueue q(100.0, 0.0);
  const auto r = q.Schedule({{50.0, 100.0}});
  EXPECT_DOUBLE_EQ(r[0].start_us, 50.0);
  EXPECT_DOUBLE_EQ(r[0].end_us, 51.0);
}

TEST(BandwidthQueue, MakespanOfEmpty) {
  BandwidthQueue q(100.0, 1.0);
  EXPECT_DOUBLE_EQ(q.Makespan({}, 3.0), 3.0);
}

// ---- fluid network -------------------------------------------------------------

TEST(FluidNetwork, SingleFlowAtFullRate) {
  FluidNetwork net(2, 100.0, 100.0, 0.5);
  const auto r = net.Run({{0, 1, 1000.0, 0.0}});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0].end_us, 10.5, 1e-9);
}

TEST(FluidNetwork, EgressSharedBetweenFlows) {
  // Two flows from port 0: each gets half the egress.
  FluidNetwork net(3, 100.0, 100.0, 0.0);
  const auto r = net.Run({{0, 1, 1000.0, 0.0}, {0, 2, 1000.0, 0.0}});
  EXPECT_NEAR(r[0].end_us, 20.0, 1e-6);
  EXPECT_NEAR(r[1].end_us, 20.0, 1e-6);
}

TEST(FluidNetwork, IngressBottleneck) {
  // Two sources into one destination: ingress caps the sum.
  FluidNetwork net(3, 100.0, 100.0, 0.0);
  const auto r = net.Run({{0, 2, 1000.0, 0.0}, {1, 2, 1000.0, 0.0}});
  EXPECT_NEAR(r[0].end_us, 20.0, 1e-6);
}

TEST(FluidNetwork, ShortFlowFreesBandwidth) {
  // After the short flow finishes, the long one speeds up.
  FluidNetwork net(3, 100.0, 100.0, 0.0);
  const auto r = net.Run({{0, 1, 500.0, 0.0}, {0, 2, 1500.0, 0.0}});
  EXPECT_NEAR(r[0].end_us, 10.0, 1e-6);   // 500 at 50/us
  EXPECT_NEAR(r[1].end_us, 20.0, 1e-6);   // 500 at 50 + 1000 at 100
}

TEST(FluidNetwork, UniformAllToAllSymmetric) {
  const int world = 4;
  FluidNetwork net(world, 100.0, 100.0, 0.0);
  std::vector<Flow> flows;
  for (int i = 0; i < world; ++i) {
    for (int j = 0; j < world; ++j) {
      if (i != j) {
        flows.push_back(Flow{i, j, 300.0, 0.0});
      }
    }
  }
  const auto r = net.Run(flows);
  // Each port sends 3 x 300 bytes at 100 B/us egress -> 9 us for everyone.
  for (const auto& c : r) {
    EXPECT_NEAR(c.end_us, 9.0, 1e-6);
  }
}

TEST(FluidNetwork, LateFlowStartsAtReadyTime) {
  FluidNetwork net(2, 100.0, 100.0, 0.0);
  const auto r = net.Run({{0, 1, 100.0, 42.0}});
  EXPECT_NEAR(r[0].end_us, 43.0, 1e-9);
}

TEST(FluidNetwork, RejectsSelfFlow) {
  FluidNetwork net(2, 100.0, 100.0, 0.0);
  EXPECT_THROW(net.Run({{1, 1, 10.0, 0.0}}), CheckError);
}

// ---- stream sim -----------------------------------------------------------------

TEST(StreamSim, HostSerializesLaunches) {
  StreamSim sim(/*launch=*/2.0);
  const int s = sim.AddStream("s");
  const KernelId a = sim.Launch(s, "a", OpCategory::kOther, 10.0);
  const KernelId b = sim.Launch(s, "b", OpCategory::kOther, 10.0);
  EXPECT_DOUBLE_EQ(sim.KernelStart(a), 2.0);
  // b starts when a finishes (same stream), not when the host issues it.
  EXPECT_DOUBLE_EQ(sim.KernelStart(b), 12.0);
  EXPECT_DOUBLE_EQ(sim.Finish(), 22.0);
}

TEST(StreamSim, StreamsOverlap) {
  StreamSim sim(0.0);
  const int s0 = sim.AddStream("comp");
  const int s1 = sim.AddStream("comm");
  const KernelId a = sim.Launch(s0, "a", OpCategory::kOther, 10.0);
  const KernelId b = sim.Launch(s1, "b", OpCategory::kOther, 10.0);
  EXPECT_DOUBLE_EQ(sim.KernelStart(a), 0.0);
  EXPECT_DOUBLE_EQ(sim.KernelStart(b), 0.0);
  EXPECT_DOUBLE_EQ(sim.Finish(), 10.0);
}

TEST(StreamSim, DependenciesCrossStreams) {
  StreamSim sim(0.0);
  const int s0 = sim.AddStream("comp");
  const int s1 = sim.AddStream("comm");
  const KernelId a = sim.Launch(s0, "a", OpCategory::kOther, 10.0);
  const KernelId b = sim.Launch(s1, "b", OpCategory::kOther, 5.0, {a});
  EXPECT_DOUBLE_EQ(sim.KernelStart(b), 10.0);
  EXPECT_DOUBLE_EQ(sim.Finish(), 15.0);
}

TEST(StreamSim, HostWorkDelaysLaterLaunches) {
  StreamSim sim(1.0);
  const int s = sim.AddStream("s");
  sim.HostWork("api", 7.0);
  const KernelId a = sim.Launch(s, "a", OpCategory::kOther, 1.0);
  EXPECT_DOUBLE_EQ(sim.KernelStart(a), 8.0);
}

TEST(StreamSim, LaunchOverheadRecordedAsHost) {
  StreamSim sim(2.0);
  const int s = sim.AddStream("s");
  sim.Launch(s, "a", OpCategory::kOther, 1.0);
  EXPECT_DOUBLE_EQ(sim.timeline().CategoryBusy(OpCategory::kHost), 2.0);
}

TEST(StreamSim, InvalidDependencyRejected) {
  StreamSim sim(0.0);
  const int s = sim.AddStream("s");
  EXPECT_THROW(sim.Launch(s, "a", OpCategory::kOther, 1.0, {5}), CheckError);
}

// ---- chrome trace export -----------------------------------------------------

TEST(TraceExport, EmitsCompleteEventsWithMetadata) {
  Timeline tl;
  tl.Add("gemm-tile", OpCategory::kLayer0Comp, 0, 1.5, 4.0);
  tl.Add("token-recv", OpCategory::kLayer0Comm, 1, 0.0, 2.5);
  const std::string json = ToChromeTraceJson(tl, "moe-layer");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gemm-tile\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"token-recv\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.5"), std::string::npos);
  EXPECT_NE(json.find("moe-layer"), std::string::npos);
}

TEST(TraceExport, EmptyTimelineIsValidEnvelope) {
  const std::string json = ToChromeTraceJson(Timeline{});
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity without a parser).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceExport, EscapesLabelCharacters) {
  Timeline tl;
  tl.Add("bad\"label\\with\nnoise", OpCategory::kOther, 0, 0.0, 1.0);
  const std::string json = ToChromeTraceJson(tl);
  EXPECT_NE(json.find("bad\\\"label\\\\with\\nnoise"), std::string::npos);
}

TEST(TraceExport, WritesFileRoundTrip) {
  Timeline tl;
  tl.Add("op", OpCategory::kLayer1Comm, 2, 0.0, 3.0);
  const std::string path = "trace_export_test.json";
  WriteChromeTrace(tl, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, ToChromeTraceJson(tl));
  std::remove(path.c_str());
}

TEST(TraceExport, RejectsUnwritablePath) {
  EXPECT_THROW(WriteChromeTrace(Timeline{}, "/nonexistent-dir/x.json"),
               CheckError);
}

}  // namespace
}  // namespace comet
