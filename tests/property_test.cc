// Property-based tests: parameterized sweeps over the configuration space
// asserting the invariants the system's correctness rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/common.h"
#include "baselines/fastermoe.h"
#include "baselines/megatron.h"
#include "baselines/tutel.h"
#include "comm/memory_planner.h"
#include "comm/symmetric_heap.h"
#include "core/comet_executor.h"
#include "moe/reference_layer.h"
#include "sim/slot_pool.h"
#include "util/rng.h"
#include "util/stats.h"

namespace comet {
namespace {

// =======================================================================
// Property: COMET's functional execution is bit-exact vs the sharded
// reference for EVERY parallelism / topk / imbalance combination.
// =======================================================================

using ExactnessParam = std::tuple<int /*tp*/, int /*ep*/, int64_t /*topk*/,
                                  double /*load_std*/, bool /*reschedule*/>;

class CometExactness : public ::testing::TestWithParam<ExactnessParam> {};

TEST_P(CometExactness, BitExactVsShardedReference) {
  const auto [tp, ep, topk, load_std, reschedule] = GetParam();
  ModelConfig model;
  model.name = "prop";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = topk;
  model.embedding = 24;
  model.ffn_hidden = 48;
  WorkloadOptions options;
  options.seed = 1000 + static_cast<uint64_t>(tp * 100 + ep * 10 + topk);
  options.load_std = load_std;
  const MoeWorkload w =
      MakeWorkload(model, ParallelConfig{tp, ep}, 48, options);

  const auto reference = ShardedReferenceMoeLayer(w);
  CometOptions comet_options;
  comet_options.reschedule = reschedule;
  comet_options.tile_m = 8;
  comet_options.tile_n = 8;
  CometExecutor comet{comet_options};
  const auto run =
      comet.Run(w, H800Cluster(tp * ep), ExecMode::kFunctional);
  ASSERT_EQ(run.outputs.size(), reference.size());
  for (size_t g = 0; g < reference.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(run.outputs[g], reference[g]), 0.0f)
        << "group " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParallelismSweep, CometExactness,
    ::testing::Values(
        ExactnessParam{1, 1, 2, 0.0, true}, ExactnessParam{1, 2, 2, 0.0, true},
        ExactnessParam{1, 4, 2, 0.03, true},
        ExactnessParam{1, 8, 2, 0.05, true},
        ExactnessParam{2, 1, 2, 0.0, true}, ExactnessParam{4, 1, 2, 0.0, true},
        ExactnessParam{2, 2, 2, 0.03, true},
        ExactnessParam{2, 4, 4, 0.0, true},
        ExactnessParam{4, 2, 4, 0.03, true},
        ExactnessParam{1, 4, 1, 0.0, true},
        ExactnessParam{2, 2, 8, 0.0, true},
        ExactnessParam{1, 4, 2, 0.03, false},
        ExactnessParam{2, 2, 4, 0.0, false},
        ExactnessParam{4, 2, 2, 0.05, false}));

// =======================================================================
// Property: the baselines' canonical functional path equals the reference
// for every parallelism.
// =======================================================================

using CanonicalParam = std::tuple<int, int, int64_t>;

class CanonicalExactness : public ::testing::TestWithParam<CanonicalParam> {};

TEST_P(CanonicalExactness, MatchesShardedReference) {
  const auto [tp, ep, topk] = GetParam();
  ModelConfig model;
  model.name = "prop";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = topk;
  model.embedding = 24;
  model.ffn_hidden = 48;
  WorkloadOptions options;
  options.seed = 7;
  options.load_std = 0.02;
  const MoeWorkload w =
      MakeWorkload(model, ParallelConfig{tp, ep}, 48, options);
  const auto canonical = CanonicalFunctionalMoe(w);
  const auto reference = ShardedReferenceMoeLayer(w);
  ASSERT_EQ(canonical.size(), reference.size());
  for (size_t g = 0; g < canonical.size(); ++g) {
    EXPECT_EQ(Tensor::MaxAbsDiff(canonical[g], reference[g]), 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(ParallelismSweep, CanonicalExactness,
                         ::testing::Values(CanonicalParam{1, 4, 2},
                                           CanonicalParam{2, 2, 2},
                                           CanonicalParam{4, 2, 4},
                                           CanonicalParam{8, 1, 2},
                                           CanonicalParam{1, 8, 4}));

// =======================================================================
// Property: RoutePlan/RoutingTable structural invariants under random
// configurations. 10 seeds x 20 random configs per test = 200 configs per
// property: every (token, slot) pair lands in the plan exactly once, row
// counts are conserved across the whole plan, and no entry addresses an
// out-of-range rank/expert/slot.
// =======================================================================

struct RandomPlanConfig {
  ModelConfig model;
  ParallelConfig parallel;
  int64_t tokens = 0;
  MoeWorkload workload;
};

RandomPlanConfig MakeRandomPlanConfig(Rng& rng) {
  const int tp = rng.UniformInt(0, 2) == 0 ? 1 : 2;
  const int ep = 1 << rng.UniformInt(0, 3);  // 1, 2, 4, 8
  ModelConfig model;
  model.name = "route-prop";
  model.layers = 1;
  model.num_experts = ep * rng.UniformInt(1, 4);
  model.topk = rng.UniformInt(1, std::min<int64_t>(model.num_experts, 4));
  model.embedding = 8;
  model.ffn_hidden = 8 * tp;
  const int64_t tokens = ep * rng.UniformInt(2, 24);
  WorkloadOptions options;
  options.seed = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
  options.load_std = rng.Uniform(0.0, 0.05);
  options.materialize = false;  // plan metadata only
  const ParallelConfig parallel{tp, ep};
  return RandomPlanConfig{model, parallel, tokens,
                          MakeWorkload(model, parallel, tokens, options)};
}

class RoutePlanProperty : public ::testing::TestWithParam<uint64_t /*seed*/> {};

TEST_P(RoutePlanProperty, EveryPairDispatchedExactlyOnce) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const RandomPlanConfig c = MakeRandomPlanConfig(rng);
    const RoutePlan& plan = c.workload.plan;
    const Placement& placement = c.workload.placement;
    // Count, for every (token, slot), how many plan rows reference it.
    std::vector<int> seen(
        static_cast<size_t>(c.tokens * c.model.topk), 0);
    for (int g = 0; g < c.parallel.ep; ++g) {
      for (const ExpertSlice& slice : plan.ForGroup(g).experts) {
        for (const ExpertRow& row : slice.rows) {
          seen[static_cast<size_t>(row.token * c.model.topk + row.slot)]++;
          // The row must reproduce the routing decision exactly.
          const TokenRoute& route =
              c.workload.routing.tokens[static_cast<size_t>(row.token)];
          ASSERT_LT(static_cast<size_t>(row.slot), route.experts.size());
          EXPECT_EQ(route.experts[static_cast<size_t>(row.slot)],
                    slice.expert);
          EXPECT_EQ(route.weights[static_cast<size_t>(row.slot)], row.weight);
          EXPECT_EQ(placement.HomeGroupOfToken(row.token), row.source_group);
        }
      }
    }
    for (int64_t t = 0; t < c.tokens; ++t) {
      const TokenRoute& route =
          c.workload.routing.tokens[static_cast<size_t>(t)];
      for (int64_t k = 0; k < c.model.topk; ++k) {
        const int expected =
            k < static_cast<int64_t>(route.experts.size()) ? 1 : 0;
        EXPECT_EQ(seen[static_cast<size_t>(t * c.model.topk + k)], expected)
            << "token " << t << " slot " << k;
      }
    }
  }
}

TEST_P(RoutePlanProperty, RowCountsConservedAcrossPlan) {
  Rng rng(2000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const RandomPlanConfig c = MakeRandomPlanConfig(rng);
    const RoutePlan& plan = c.workload.plan;
    int64_t total_pairs = 0;
    for (const TokenRoute& route : c.workload.routing.tokens) {
      total_pairs += static_cast<int64_t>(route.experts.size());
    }
    int64_t plan_rows = 0;
    for (int g = 0; g < c.parallel.ep; ++g) {
      plan_rows += plan.ForGroup(g).TotalRows();
    }
    EXPECT_EQ(plan_rows, total_pairs);
    // Per-rank views serve their group's plan; remote + local partitions it.
    for (int r = 0; r < c.parallel.world(); ++r) {
      const int g = c.workload.placement.EpGroupOfRank(r);
      EXPECT_EQ(plan.ForRank(r).TotalRows(), plan.ForGroup(g).TotalRows());
      EXPECT_EQ(plan.RemoteRows(r) + plan.LocalRows(r),
                plan.ForRank(r).TotalRows());
    }
    // Expert loads agree with the routing table's histogram.
    const auto loads =
        c.workload.routing.ExpertLoads(c.model.num_experts);
    for (int g = 0; g < c.parallel.ep; ++g) {
      for (const ExpertSlice& slice : plan.ForGroup(g).experts) {
        EXPECT_EQ(static_cast<int64_t>(slice.rows.size()),
                  loads[static_cast<size_t>(slice.expert)]);
      }
    }
  }
}

TEST_P(RoutePlanProperty, NoEntryAddressesOutOfRangeRankOrExpert) {
  Rng rng(3000 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const RandomPlanConfig c = MakeRandomPlanConfig(rng);
    const RoutePlan& plan = c.workload.plan;
    const Placement& placement = c.workload.placement;
    for (int g = 0; g < c.parallel.ep; ++g) {
      const RankPlan& rank_plan = plan.ForGroup(g);
      EXPECT_EQ(rank_plan.ep_group, g);
      EXPECT_EQ(static_cast<int64_t>(rank_plan.experts.size()),
                placement.ExpertsPerGroup());
      for (const ExpertSlice& slice : rank_plan.experts) {
        EXPECT_GE(slice.expert, 0);
        EXPECT_LT(slice.expert, c.model.num_experts);
        // The group only hosts its own experts.
        EXPECT_EQ(placement.EpGroupOfExpert(slice.expert), g);
        for (const ExpertRow& row : slice.rows) {
          EXPECT_GE(row.token, 0);
          EXPECT_LT(row.token, c.tokens);
          EXPECT_GE(row.slot, 0);
          EXPECT_LT(row.slot, c.model.topk);
          EXPECT_GE(row.source_group, 0);
          EXPECT_LT(row.source_group, c.parallel.ep);
          EXPECT_GE(row.weight, 0.0f);
        }
      }
    }
    // Routing table invariants hold for every generated table.
    c.workload.routing.Validate(c.model.num_experts, c.model.topk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutePlanProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

// =======================================================================
// Property: slot-pool schedules respect resource and readiness invariants
// under random task sets.
// =======================================================================

class SlotPoolProperty : public ::testing::TestWithParam<int /*slots*/> {};

TEST_P(SlotPoolProperty, SchedulesAreFeasible) {
  const int slots = GetParam();
  Rng rng(77 + static_cast<uint64_t>(slots));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SlotTask> tasks;
    const int n = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < n; ++i) {
      tasks.push_back(SlotTask{rng.Uniform(0.0, 50.0), rng.Uniform(0.1, 5.0)});
    }
    for (auto* schedule_fn : {&ScheduleInOrder, &ScheduleEarliestReady}) {
      const SlotSchedule s = (*schedule_fn)(tasks, slots, 0.0);
      ASSERT_EQ(s.tasks.size(), tasks.size());
      // (1) No task starts before it is ready.
      for (size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_GE(s.tasks[i].start_us, tasks[i].ready_us - 1e-9);
        EXPECT_NEAR(s.tasks[i].end_us - s.tasks[i].start_us,
                    tasks[i].duration_us, 1e-9);
      }
      // (2) At no time do more than `slots` tasks run concurrently: check
      // at every start point.
      for (size_t i = 0; i < tasks.size(); ++i) {
        int running = 0;
        const double t = s.tasks[i].start_us;
        for (size_t j = 0; j < tasks.size(); ++j) {
          if (s.tasks[j].start_us <= t && t < s.tasks[j].end_us) {
            ++running;
          }
        }
        EXPECT_LE(running, slots);
      }
      // (3) Makespan is the max end time.
      double max_end = 0.0;
      for (const auto& st : s.tasks) {
        max_end = std::max(max_end, st.end_us);
      }
      EXPECT_DOUBLE_EQ(s.makespan_us, max_end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, SlotPoolProperty,
                         ::testing::Values(1, 2, 7, 32));

// =======================================================================
// Property: work conservation -- the slot-pool makespan is bounded below by
// both the critical path and total-work/slots, and above by the 2x greedy
// bound (list scheduling).
// =======================================================================

TEST(SlotPoolBounds, GreedyWithinClassicBounds) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int slots = static_cast<int>(rng.UniformInt(1, 16));
    std::vector<SlotTask> tasks;
    const int n = static_cast<int>(rng.UniformInt(1, 100));
    double total = 0.0;
    double longest = 0.0;
    for (int i = 0; i < n; ++i) {
      const double d = rng.Uniform(0.1, 3.0);
      tasks.push_back(SlotTask{0.0, d});
      total += d;
      longest = std::max(longest, d);
    }
    const SlotSchedule s = ScheduleInOrder(tasks, slots);
    EXPECT_GE(s.makespan_us + 1e-9, total / slots);
    EXPECT_GE(s.makespan_us + 1e-9, longest);
    EXPECT_LE(s.makespan_us, total / slots + longest + 1e-9);
  }
}

// =======================================================================
// Property: the load-vector generator hits its std target across sizes.
// =======================================================================

using LoadParam = std::tuple<size_t /*n*/, double /*std*/>;

class LoadVectorProperty : public ::testing::TestWithParam<LoadParam> {};

TEST_P(LoadVectorProperty, SumsToOneAndTracksStd) {
  const auto [n, target] = GetParam();
  Rng rng(5 + n);
  const auto v = rng.LoadVectorWithStd(n, target);
  ASSERT_EQ(v.size(), n);
  double sum = 0.0;
  for (double p : v) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  if (target > 0.0) {
    EXPECT_NEAR(PopulationStddev(v), target, target * 0.3);
  } else {
    EXPECT_DOUBLE_EQ(PopulationStddev(v), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LoadVectorProperty,
                         ::testing::Values(LoadParam{8, 0.0},
                                           LoadParam{8, 0.032},
                                           LoadParam{16, 0.02},
                                           LoadParam{64, 0.005},
                                           LoadParam{64, 0.01}));

// =======================================================================
// Property: timing duration is monotone in token count for every executor.
// =======================================================================

class MonotoneDuration : public ::testing::TestWithParam<int /*which*/> {};

TEST_P(MonotoneDuration, MoreTokensNeverFaster) {
  ModelConfig model;
  model.name = "prop";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 512;
  model.ffn_hidden = 1024;
  const auto cluster = H800Cluster(4);

  MegatronExecutor cutlass = MakeMegatronCutlass();
  MegatronExecutor te = MakeMegatronTe();
  FasterMoeExecutor fastermoe;
  TutelExecutor tutel;
  CometExecutor comet;
  MoeLayerExecutor* executors[] = {&cutlass, &te, &fastermoe, &tutel, &comet};
  MoeLayerExecutor* exec = executors[GetParam()];

  double prev = 0.0;
  for (int64_t m : {512, 2048, 8192}) {
    WorkloadOptions options;
    options.seed = 4;
    options.materialize = false;
    const MoeWorkload w =
        MakeWorkload(model, ParallelConfig{1, 4}, m, options);
    const double us = exec->Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    EXPECT_GE(us, prev) << exec->name() << " at M=" << m;
    prev = us;
  }
}

INSTANTIATE_TEST_SUITE_P(AllExecutors, MonotoneDuration,
                         ::testing::Range(0, 5));

// =======================================================================
// Property: for ONE RoutePlan, the symmetric-heap traffic at a 2-byte
// dtype is EXACTLY half the f32 traffic (same rows move, every element
// half the width), the byte totals equal the plan's remote-row count
// times the row width, and heap allocations reconcile with the memory
// planner's dtype-width formula (2MN at BF16/FP16, 4MN at f32 -- paper
// Table 3). 100 randomized configs.
// =======================================================================

class DtypeTrafficProperty : public ::testing::TestWithParam<int> {};

TEST_P(DtypeTrafficProperty, TwoByteTrafficHalvesAndReconcilesWithPlanner) {
  const int seed = GetParam();
  Rng rng(9000 + static_cast<uint64_t>(seed));

  const int ep_choices[] = {1, 2, 4, 8};
  const int ep = ep_choices[rng.UniformInt(0, 3)];
  ModelConfig model;
  model.name = "traffic-prop";
  model.layers = 1;
  model.num_experts = ep * rng.UniformInt(1, 4);
  model.topk = rng.UniformInt(1, std::min<int64_t>(model.num_experts, 4));
  model.embedding = 8 * rng.UniformInt(1, 8);
  model.ffn_hidden = 2 * model.embedding;
  const int64_t tokens = ep * rng.UniformInt(4, 32);

  WorkloadOptions options;
  options.seed = 700 + static_cast<uint64_t>(seed);
  options.load_std = rng.Uniform(0.0, 0.05);
  options.materialize = false;  // only the RoutePlan matters here
  const MoeWorkload w =
      MakeWorkload(model, ParallelConfig{1, ep}, tokens, options);

  // Drive the plan's dispatch gathers through a heap at `dtype`: every rank
  // reads each of its planned rows from the row's home rank, exactly like
  // the executors' layer0 gather.
  const auto drive = [&](DType dtype) {
    SymmetricHeap heap(ep);
    const SymmetricBufferId in_buf = heap.Allocate(
        "in", Shape{w.placement.tokens_per_group(), model.embedding}, dtype);
    // Allocation sizes must match the planner at this dtype: the planner's
    // Bytes() IS tokens * embedding * width(dtype).
    EXPECT_DOUBLE_EQ(
        heap.AllocatedBytesPerRank(),
        PlanCommBuffer(w.placement.tokens_per_group(), model.embedding, dtype)
            .Bytes());
    std::vector<float> row(static_cast<size_t>(model.embedding), 0.0f);
    for (int r = 0; r < ep; ++r) {
      for (const auto& slice : w.plan.ForRank(r).experts) {
        for (const ExpertRow& er : slice.rows) {
          const int src = w.placement.RankOf(er.source_group, 0);
          heap.CopyRow(in_buf, r, src,
                       er.token - w.placement.FirstTokenOfGroup(er.source_group),
                       row);
        }
      }
    }
    return heap.TotalTraffic();
  };

  int64_t remote_rows = 0;
  for (int r = 0; r < ep; ++r) {
    remote_rows += w.plan.RemoteRows(r);
  }

  const double t_f32 = drive(DType::kF32);
  const double t_bf16 = drive(DType::kBF16);
  const double t_f16 = drive(DType::kF16);
  EXPECT_EQ(t_f32, static_cast<double>(remote_rows * model.embedding * 4));
  EXPECT_EQ(t_bf16, static_cast<double>(remote_rows * model.embedding * 2));
  EXPECT_EQ(t_f16, t_bf16);
  EXPECT_EQ(t_f32, 2.0 * t_bf16) << "ep=" << ep << " tokens=" << tokens;
}

INSTANTIATE_TEST_SUITE_P(HundredConfigs, DtypeTrafficProperty,
                         ::testing::Range(0, 100));

}  // namespace
}  // namespace comet
