// Unit tests for the COMET core: shared-tensor dependency resolving,
// rescheduling, the fused-kernel simulator and adaptive workload assignment.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/adaptive.h"
#include "core/fused_kernel.h"
#include "core/reschedule.h"
#include "core/shared_tensor.h"
#include "exec/op_costs.h"
#include "moe/workload.h"
#include "util/check.h"

namespace comet {
namespace {

MoeWorkload SmallWorkload(int tp, int ep, int64_t tokens, double std = 0.0) {
  ModelConfig model;
  model.name = "core-test";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 512;
  model.ffn_hidden = 1024;
  WorkloadOptions options;
  options.seed = 9;
  options.load_std = std;
  options.materialize = false;
  return MakeWorkload(model, ParallelConfig{tp, ep}, tokens, options);
}

// ---- shared tensor analysis -----------------------------------------------

TEST(SharedTensor, Layer0DecomposesAlongM) {
  EXPECT_EQ(ResolveDecomposition(Layer0SharedTensor(1024, 4096)),
            DecomposeDim::kM);
}

TEST(SharedTensor, Layer1DecomposesAlongN) {
  EXPECT_EQ(ResolveDecomposition(Layer1SharedTensor(1024, 4096)),
            DecomposeDim::kN);
}

TEST(SharedTensor, GemmConsumerIndependentAlongRowsOnly) {
  EXPECT_TRUE(ConsumerIndependentAlong(TensorAccess::kGemmConsume,
                                       DecomposeDim::kM));
  EXPECT_FALSE(ConsumerIndependentAlong(TensorAccess::kGemmConsume,
                                        DecomposeDim::kN));
}

TEST(SharedTensor, TopKReduceIndependentAlongColsOnly) {
  EXPECT_FALSE(ConsumerIndependentAlong(TensorAccess::kTopKReduceConsume,
                                        DecomposeDim::kM));
  EXPECT_TRUE(ConsumerIndependentAlong(TensorAccess::kTopKReduceConsume,
                                       DecomposeDim::kN));
}

TEST(SharedTensor, DimNames) {
  EXPECT_EQ(DecomposeDimName(DecomposeDim::kM), "M");
  EXPECT_EQ(DecomposeDimName(DecomposeDim::kN), "N");
}

// ---- rescheduling -----------------------------------------------------------

TEST(Reschedule, ArrivalClassRingDistance) {
  EXPECT_EQ(RowArrivalClass(2, 2, 4), 0);
  EXPECT_EQ(RowArrivalClass(3, 2, 4), 1);
  EXPECT_EQ(RowArrivalClass(0, 2, 4), 2);
  EXPECT_EQ(RowArrivalClass(1, 2, 4), 3);
}

TEST(Reschedule, Layer0RowsSortedLocalsFirst) {
  const MoeWorkload w = SmallWorkload(1, 4, 256);
  const int rank = 1;
  const RankPlan& plan = w.plan.ForRank(rank);
  const auto schedule = BuildLayer0Schedule(plan, /*ep_group=*/1, 4,
                                            /*out_cols=*/1024, 32, 32, true);
  for (size_t le = 0; le < plan.experts.size(); ++le) {
    const auto& rows = plan.experts[le].rows;
    const auto& order = schedule.row_order[le];
    int prev_class = -1;
    for (int64_t idx : order) {
      const int cls = RowArrivalClass(
          rows[static_cast<size_t>(idx)].source_group, 1, 4);
      EXPECT_GE(cls, prev_class);
      prev_class = std::max(prev_class, cls);
    }
  }
}

TEST(Reschedule, Layer0TileOrderByArrivalClass) {
  // Large enough that every expert has at least one full tile of local rows
  // (~64 local rows per expert vs tile_m=32), so an all-local tile exists
  // and must be scheduled first.
  const MoeWorkload w = SmallWorkload(1, 4, 1024);
  const auto schedule = BuildLayer0Schedule(w.plan.ForRank(0), 0, 4, 1024, 32,
                                            32, true);
  int prev = -1;
  for (const TileRef& tile : schedule.tiles) {
    EXPECT_GE(tile.arrival_class, prev);
    prev = tile.arrival_class;
  }
  EXPECT_EQ(schedule.tiles.front().arrival_class, 0);
}

TEST(Reschedule, Layer0OffKeepsIdentityRowOrder) {
  const MoeWorkload w = SmallWorkload(1, 4, 256);
  const auto schedule = BuildLayer0Schedule(w.plan.ForRank(0), 0, 4, 1024, 32,
                                            32, false);
  for (const auto& order : schedule.row_order) {
    for (size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], static_cast<int64_t>(i));
    }
  }
}

TEST(Reschedule, SchedulesCoverEveryTileExactlyOnce) {
  const MoeWorkload w = SmallWorkload(2, 2, 128);
  for (bool resched : {true, false}) {
    const auto s0 = BuildLayer0Schedule(w.plan.ForRank(0), 0, 2,
                                        w.placement.HiddenPerTpRank(), 32, 32,
                                        resched);
    const auto s1 = BuildLayer1Schedule(w.plan.ForRank(0), 512, 32, 32,
                                        resched);
    auto count_cells = [](const std::vector<TileRef>& tiles) {
      int64_t cells = 0;
      for (const auto& t : tiles) {
        cells += (t.row_end - t.row_begin) * (t.col_end - t.col_begin);
      }
      return cells;
    };
    const int64_t rows = w.plan.ForRank(0).TotalRows();
    EXPECT_EQ(count_cells(s0.tiles), rows * w.placement.HiddenPerTpRank());
    EXPECT_EQ(count_cells(s1.tiles), rows * 512);
  }
}

TEST(Reschedule, Layer1ColumnPanelMajor) {
  const MoeWorkload w = SmallWorkload(1, 2, 128);
  const auto schedule =
      BuildLayer1Schedule(w.plan.ForRank(0), 512, 32, 64, true);
  EXPECT_EQ(schedule.num_col_panels, 8);
  int64_t prev_panel = 0;
  for (const TileRef& tile : schedule.tiles) {
    const int64_t panel = tile.col_begin / 64;
    EXPECT_GE(panel, prev_panel);
    prev_panel = panel;
  }
}

TEST(Reschedule, Layer1OffIsExpertMajor) {
  const MoeWorkload w = SmallWorkload(1, 2, 128);
  const auto schedule =
      BuildLayer1Schedule(w.plan.ForRank(0), 512, 32, 64, false);
  int64_t prev_expert = 0;
  for (const TileRef& tile : schedule.tiles) {
    EXPECT_GE(tile.expert_local, prev_expert);
    prev_expert = tile.expert_local;
  }
}

// ---- fused kernel simulator ------------------------------------------------

class FusedKernelTest : public ::testing::Test {
 protected:
  const ClusterSpec cluster_ = H800Cluster(4);
  const OpCostModel costs_{cluster_};

  FusedKernelConfig Config(int nc, bool resched = true) const {
    FusedKernelConfig config;
    config.total_blocks = cluster_.gpu.num_sms;
    config.comm_blocks = nc;
    config.reschedule = resched;
    return config;
  }
};

TEST_F(FusedKernelTest, Layer0DurationPositiveAndConsistent) {
  const MoeWorkload w = SmallWorkload(1, 4, 1024);
  const auto r = SimulateLayer0Fused(w.plan, 0, costs_, Config(16));
  EXPECT_GT(r.duration_us, 0.0);
  EXPECT_GE(r.duration_us, r.compute_makespan_us - 1e-9);
  EXPECT_GE(r.duration_us, r.comm_makespan_us - 1e-9);
  EXPECT_GT(r.comm_bytes, 0.0);
}

TEST_F(FusedKernelTest, RescheduleNeverSlower) {
  for (int64_t m : {256, 1024, 4096}) {
    const MoeWorkload w = SmallWorkload(1, 4, m);
    const auto on = SimulateLayer0Fused(w.plan, 0, costs_, Config(16, true));
    const auto off = SimulateLayer0Fused(w.plan, 0, costs_, Config(16, false));
    EXPECT_LE(on.duration_us, off.duration_us * (1.0 + 1e-9)) << "M=" << m;
  }
}

TEST_F(FusedKernelTest, Layer1RescheduleEnablesEarlyComm) {
  // Needs several compute waves (tiles >> np blocks); with a single wave all
  // tiles finish together and the tile order is irrelevant by construction.
  const MoeWorkload w = SmallWorkload(1, 4, 16384);
  const auto on = SimulateLayer1Fused(w.plan, 0, costs_, Config(16, true));
  const auto off = SimulateLayer1Fused(w.plan, 0, costs_, Config(16, false));
  EXPECT_LT(on.duration_us, off.duration_us);
}

TEST_F(FusedKernelTest, VerticalFusionSlowerThanSpecialized) {
  const MoeWorkload w = SmallWorkload(1, 4, 4096);
  FusedKernelConfig vertical = Config(0);
  vertical.vertical_fusion = true;
  const auto v0 = SimulateLayer0Fused(w.plan, 0, costs_, vertical);
  const auto s0 = SimulateLayer0Fused(w.plan, 0, costs_, Config(16));
  EXPECT_GT(v0.duration_us, s0.duration_us);
}

TEST_F(FusedKernelTest, NoCommBlocksWithTrafficRejected) {
  const MoeWorkload w = SmallWorkload(1, 4, 1024);
  EXPECT_THROW(SimulateLayer0Fused(w.plan, 0, costs_, Config(0)), CheckError);
}

TEST_F(FusedKernelTest, PureTpLayer0HasNoComm) {
  const MoeWorkload w = SmallWorkload(4, 1, 1024);
  const auto r = SimulateLayer0Fused(w.plan, 0, costs_, Config(2));
  EXPECT_DOUBLE_EQ(r.comm_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.comm_makespan_us, 0.0);
}

TEST_F(FusedKernelTest, PureTpLayer1CommIsReduceScatterOnly) {
  const MoeWorkload w = SmallWorkload(4, 1, 1024);
  const auto r = SimulateLayer1Fused(w.plan, 0, costs_, Config(8));
  const double expected =
      w.plan.TpReduceScatterBytesPerRank(512.0 * costs_.bytes_per_element());
  EXPECT_DOUBLE_EQ(r.comm_bytes, expected);
  EXPECT_GT(r.comm_bytes, 0.0);
}

TEST_F(FusedKernelTest, MoreCommBlocksTradeComputeForComm) {
  const MoeWorkload w = SmallWorkload(1, 4, 4096);
  const auto few = SimulateLayer1Fused(w.plan, 0, costs_, Config(4));
  const auto many = SimulateLayer1Fused(w.plan, 0, costs_, Config(100));
  // The layer1 send of the final column panel can only start once its
  // compute completes, so comm_makespan >= compute_makespan always; what
  // shifting blocks to comm buys is a shorter comm *tail* past compute.
  const double few_tail = few.comm_makespan_us - few.compute_makespan_us;
  const double many_tail = many.comm_makespan_us - many.compute_makespan_us;
  EXPECT_GT(few_tail, 0.0);
  EXPECT_LT(many_tail, few_tail);
  // Fewer compute blocks stretch the compute makespan.
  EXPECT_GT(many.compute_makespan_us, few.compute_makespan_us);
}

// ---- adaptive assignment ------------------------------------------------------

TEST(Adaptive, CandidatesRespectStrideAndBounds) {
  const AdaptiveAssigner assigner(4);
  const auto candidates = assigner.Candidates(132);
  EXPECT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front(), 4);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i] - candidates[i - 1], 4);
  }
  EXPECT_LE(candidates.back(), 131);
}

TEST(Adaptive, SweepIsUShapedAroundOptimum) {
  const MoeWorkload w = SmallWorkload(1, 4, 8192);
  const ClusterSpec cluster = H800Cluster(4);
  const OpCostModel costs(cluster);
  const AdaptiveAssigner assigner(2);
  FusedKernelConfig base;
  base.total_blocks = cluster.gpu.num_sms;
  const auto samples =
      assigner.Sweep(MoePipelineStage::kLayer1, w.plan, 0, costs, base);
  ASSERT_GT(samples.size(), 4u);
  size_t best = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].duration_us < samples[best].duration_us) {
      best = i;
    }
  }
  // Strictly worse at both extremes than at the optimum.
  EXPECT_GT(samples.front().duration_us, samples[best].duration_us);
  EXPECT_GT(samples.back().duration_us, samples[best].duration_us);
}

TEST(Adaptive, SelectionCachedInMetadataStore) {
  const MoeWorkload w = SmallWorkload(1, 4, 2048);
  const ClusterSpec cluster = H800Cluster(4);
  const OpCostModel costs(cluster);
  const AdaptiveAssigner assigner(2);
  FusedKernelConfig base;
  base.total_blocks = cluster.gpu.num_sms;

  MetadataStore store;
  const int nc = assigner.SelectCommBlocks(MoePipelineStage::kLayer1, w.plan,
                                           0, costs, base, &store);
  EXPECT_GT(nc, 0);
  const std::string key =
      AdaptiveAssigner::ProfileKey(cluster, w.placement,
                                   MoePipelineStage::kLayer1);
  ASSERT_TRUE(store.Contains(key));
  // Poison the cache; selection must honour it (cache hit, no re-profile).
  store.PutInt(key, 77);
  EXPECT_EQ(assigner.SelectCommBlocks(MoePipelineStage::kLayer1, w.plan, 0,
                                      costs, base, &store),
            77);
}

TEST(Adaptive, ProfileKeyDistinguishesSetups) {
  const ClusterSpec cluster = H800Cluster(8);
  const MoeWorkload a = SmallWorkload(1, 4, 2048);
  const MoeWorkload b = SmallWorkload(2, 2, 2048);
  const MoeWorkload c = SmallWorkload(1, 4, 4096);
  const auto key = [&](const MoeWorkload& w, MoePipelineStage s) {
    return AdaptiveAssigner::ProfileKey(cluster, w.placement, s);
  };
  EXPECT_NE(key(a, MoePipelineStage::kLayer0),
            key(a, MoePipelineStage::kLayer1));
  EXPECT_NE(key(a, MoePipelineStage::kLayer0),
            key(b, MoePipelineStage::kLayer0));
  EXPECT_NE(key(a, MoePipelineStage::kLayer0),
            key(c, MoePipelineStage::kLayer0));
}

}  // namespace
}  // namespace comet
