// Second property suite: invariants of the routing/traffic accounting, the
// (re)schedules, the fused-kernel simulator, capacity enforcement, the
// transposed GEMM kernels and the multi-node collective costs, swept over
// randomized configurations.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "comm/collectives.h"
#include "core/fused_kernel.h"
#include "core/reschedule.h"
#include "moe/group_gemm.h"
#include "moe/router.h"
#include "moe/workload.h"
#include "sim/trace_export.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {
namespace {

MoeWorkload RandomWorkload(Rng& rng, int tp, int ep) {
  ModelConfig model;
  model.name = "inv";
  model.layers = 1;
  model.num_experts = std::max<int64_t>(8, ep);  // divisible by ep (powers of 2)
  model.topk = static_cast<int64_t>(rng.UniformInt(1, 4));
  model.embedding = 64;
  model.ffn_hidden = 128;
  WorkloadOptions options;
  options.seed = rng.UniformInt(1, 1 << 30);
  options.load_std = rng.Uniform(0.0, 0.04);
  options.materialize = false;
  const int64_t tokens = static_cast<int64_t>(rng.UniformInt(2, 64)) * ep;
  return MakeWorkload(model, ParallelConfig{tp, ep}, tokens, options);
}

// =======================================================================
// Property: traffic accounting conservation. Every (token, expert) pair
// whose home group differs from the expert's group contributes exactly one
// dispatched row per TP lane, and the layer1 return carries exactly the
// same rows back.
// =======================================================================

TEST(TrafficInvariants, DispatchMatchesPairCountAndReturnMirrors) {
  Rng rng(42);
  for (int trial = 0; trial < 12; ++trial) {
    const int tp = 1 << rng.UniformInt(0, 2);
    const int ep = 1 << rng.UniformInt(1, 3);
    const MoeWorkload w = RandomWorkload(rng, tp, ep);
    const double row_bytes = 1.0;  // count rows directly

    int64_t crossing_pairs = 0;
    for (int64_t t = 0; t < w.placement.total_tokens(); ++t) {
      const int home = w.placement.HomeGroupOfToken(t);
      for (int64_t e : w.routing.tokens[static_cast<size_t>(t)].experts) {
        crossing_pairs += w.placement.EpGroupOfExpert(e) != home ? 1 : 0;
      }
    }

    const auto dispatch = w.plan.DispatchBytes(row_bytes);
    const auto ret = w.plan.EpReturnBytes(row_bytes);
    double dispatch_total = 0.0, return_total = 0.0;
    for (int i = 0; i < w.world(); ++i) {
      EXPECT_EQ(dispatch[static_cast<size_t>(i)][static_cast<size_t>(i)], 0.0);
      for (int j = 0; j < w.world(); ++j) {
        dispatch_total += dispatch[static_cast<size_t>(i)][static_cast<size_t>(j)];
        return_total += ret[static_cast<size_t>(i)][static_cast<size_t>(j)];
        // Return traffic is the exact mirror of dispatch traffic.
        EXPECT_DOUBLE_EQ(
            ret[static_cast<size_t>(j)][static_cast<size_t>(i)],
            dispatch[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      }
    }
    EXPECT_DOUBLE_EQ(dispatch_total,
                     static_cast<double>(crossing_pairs * tp));
    EXPECT_DOUBLE_EQ(return_total, dispatch_total);
  }
}

// =======================================================================
// Property: schedules cover every output cell exactly once and row orders
// are permutations, for arbitrary (including non-dividing) tile sizes.
// =======================================================================

using ScheduleParam = std::tuple<int64_t /*tile_m*/, int64_t /*tile_n*/,
                                 bool /*reschedule*/>;

class ScheduleCoverage : public ::testing::TestWithParam<ScheduleParam> {};

TEST_P(ScheduleCoverage, ExactCoverAndValidPermutation) {
  const auto [tile_m, tile_n, reschedule] = GetParam();
  Rng rng(7 + static_cast<uint64_t>(tile_m * 100 + tile_n));
  const MoeWorkload w = RandomWorkload(rng, 1, 4);
  const int64_t out_cols = 96;  // deliberately not a tile multiple

  const auto s0 = BuildLayer0Schedule(w.plan.ForRank(1), 1, 4, out_cols,
                                      tile_m, tile_n, reschedule);
  const auto s1 =
      BuildLayer1Schedule(w.plan.ForRank(1), out_cols, tile_m, tile_n,
                          reschedule);

  // Row orders are permutations of each expert's rows.
  const RankPlan& plan = w.plan.ForRank(1);
  for (size_t le = 0; le < plan.experts.size(); ++le) {
    std::vector<bool> seen(plan.experts[le].rows.size(), false);
    ASSERT_EQ(s0.row_order[le].size(), plan.experts[le].rows.size());
    for (int64_t idx : s0.row_order[le]) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(static_cast<size_t>(idx), seen.size());
      EXPECT_FALSE(seen[static_cast<size_t>(idx)]) << "duplicate row";
      seen[static_cast<size_t>(idx)] = true;
    }
  }

  // Tiles partition (expert rows x out_cols) exactly: count cell coverage.
  for (const auto* schedule_tiles : {&s0.tiles, &s1.tiles}) {
    std::map<std::tuple<int64_t, int64_t, int64_t>, int> cover;
    for (const TileRef& t : *schedule_tiles) {
      EXPECT_LT(t.row_begin, t.row_end);
      EXPECT_LT(t.col_begin, t.col_end);
      EXPECT_LE(t.col_end, out_cols);
      for (int64_t r = t.row_begin; r < t.row_end; ++r) {
        for (int64_t c = t.col_begin; c < t.col_end; c += tile_n) {
          ++cover[{t.expert_local, r, c}];
        }
      }
    }
    for (const auto& [key, count] : cover) {
      EXPECT_EQ(count, 1) << "cell covered " << count << " times";
    }
    // Completeness: every (row, col-tile) of every expert is present.
    const int64_t col_tiles = (out_cols + tile_n - 1) / tile_n;
    EXPECT_EQ(static_cast<int64_t>(cover.size()),
              plan.TotalRows() * col_tiles);
  }
}

INSTANTIATE_TEST_SUITE_P(TileShapes, ScheduleCoverage,
                         ::testing::Values(ScheduleParam{8, 8, true},
                                           ScheduleParam{8, 8, false},
                                           ScheduleParam{7, 13, true},
                                           ScheduleParam{7, 13, false},
                                           ScheduleParam{1, 96, true},
                                           ScheduleParam{128, 128, true}));

// =======================================================================
// Property: fused-kernel results are internally consistent and invariant
// in communication volume across nc / rescheduling choices.
// =======================================================================

TEST(FusedKernelInvariants, VolumeIndependentOfScheduleAndNc) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const MoeWorkload w = RandomWorkload(rng, 1, 4);
    const ClusterSpec cluster = H800Cluster(4);
    const OpCostModel costs(cluster);
    double volume0 = -1.0, volume1 = -1.0;
    for (const int nc : {4, 16, 64}) {
      for (const bool resched : {true, false}) {
        FusedKernelConfig config;
        config.total_blocks = cluster.gpu.num_sms;
        config.comm_blocks = nc;
        config.reschedule = resched;
        config.tile_m = 16;
        config.tile_n = 16;
        const auto r0 = SimulateLayer0Fused(w.plan, 2, costs, config);
        const auto r1 = SimulateLayer1Fused(w.plan, 2, costs, config);
        EXPECT_GE(r0.duration_us, r0.compute_makespan_us - 1e-9);
        EXPECT_GE(r0.duration_us, r0.comm_makespan_us - 1e-9);
        EXPECT_GE(r1.duration_us, r1.compute_makespan_us - 1e-9);
        if (volume0 < 0.0) {
          volume0 = r0.comm_bytes;
          volume1 = r1.comm_bytes;
        } else {
          EXPECT_DOUBLE_EQ(r0.comm_bytes, volume0);
          EXPECT_DOUBLE_EQ(r1.comm_bytes, volume1);
        }
      }
    }
  }
}

// =======================================================================
// Property: capacity enforcement is idempotent, conserves pair counts and
// never exceeds the budget.
// =======================================================================

TEST(CapacityInvariants, IdempotentAndConserving) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t experts = 4 + static_cast<int64_t>(rng.UniformInt(0, 8));
    SyntheticRouter router(
        rng.LoadVectorWithStd(static_cast<size_t>(experts), 0.05),
        rng.UniformInt(1, 1 << 30));
    RoutingTable table =
        router.Route(static_cast<int64_t>(rng.UniformInt(50, 400)), 2);
    int64_t before = 0;
    for (const auto& t : table.tokens) {
      before += static_cast<int64_t>(t.experts.size());
    }
    const double cf = rng.Uniform(0.5, 2.0);
    const DropStats stats = ApplyCapacityFactor(table, experts, cf);
    int64_t after = 0;
    for (const auto& t : table.tokens) {
      after += static_cast<int64_t>(t.experts.size());
    }
    EXPECT_EQ(after, before - stats.dropped_pairs);
    for (int64_t l : table.ExpertLoads(experts)) {
      EXPECT_LE(l, stats.capacity);
    }
    table.Validate(experts, 2);

    // Re-applying with the same factor must be a no-op (loads already fit;
    // the pair total shrank, so the recomputed budget can only bind harder
    // -- assert against the ORIGINAL budget instead).
    RoutingTable copy = table;
    const DropStats again = ApplyCapacityFactor(
        copy, experts,
        static_cast<double>(stats.capacity * experts) /
            static_cast<double>(std::max<int64_t>(after, 1)));
    EXPECT_EQ(again.dropped_pairs, 0);
  }
}

// =======================================================================
// Property: transpose dualities of the backward GEMM kernels.
// GemmNT(a, b) == GemmNT(b, a)^T and GemmTN(a, b) == GemmTN(b, a)^T,
// bit-exact (identical reduction orders, commutative multiplies).
// =======================================================================

TEST(TransposeDuality, NTAndTNAreSelfDualUnderSwap) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int64_t m = rng.UniformInt(1, 12);
    const int64_t n = rng.UniformInt(1, 12);
    const int64_t k = rng.UniformInt(1, 12);
    const Tensor a = Tensor::Randn(Shape{m, k}, rng);
    const Tensor b = Tensor::Randn(Shape{n, k}, rng);
    Tensor ab(Shape{m, n}), ba(Shape{n, m});
    GemmNT(a, b, ab);
    GemmNT(b, a, ba);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        EXPECT_EQ(ab.at({i, j}), ba.at({j, i}));
      }
    }

    const Tensor c = Tensor::Randn(Shape{k, m}, rng);
    const Tensor d = Tensor::Randn(Shape{k, n}, rng);
    Tensor cd(Shape{m, n}), dc(Shape{n, m});
    GemmTN(c, d, cd);
    GemmTN(d, c, dc);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        EXPECT_EQ(cd.at({i, j}), dc.at({j, i}));
      }
    }
  }
}

// =======================================================================
// Property: multi-node collective costs are transpose-invariant (the bound
// is max(send, recv) per port) and monotone in traffic volume.
// =======================================================================

TEST(MultiNodeCostInvariants, TransposeInvariantAndMonotone) {
  Rng rng(19);
  const ClusterSpec cluster = MultiNodeH800Cluster(2, 4);
  const int world = cluster.world_size;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<double>> bytes(
        static_cast<size_t>(world),
        std::vector<double>(static_cast<size_t>(world), 0.0));
    std::vector<std::vector<double>> transposed = bytes;
    std::vector<std::vector<double>> doubled = bytes;
    for (int i = 0; i < world; ++i) {
      for (int j = 0; j < world; ++j) {
        if (i == j) {
          continue;
        }
        const double b = rng.Uniform(0.0, 1 << 20);
        bytes[static_cast<size_t>(i)][static_cast<size_t>(j)] = b;
        transposed[static_cast<size_t>(j)][static_cast<size_t>(i)] = b;
        doubled[static_cast<size_t>(i)][static_cast<size_t>(j)] = 2.0 * b;
      }
    }
    const double base = AllToAllCostUs(cluster, bytes);
    EXPECT_DOUBLE_EQ(AllToAllCostUs(cluster, transposed), base);
    EXPECT_GE(AllToAllCostUs(cluster, doubled), base);
    EXPECT_GE(HierarchicalAllToAllCostUs(cluster, doubled),
              HierarchicalAllToAllCostUs(cluster, bytes));
  }
}

// =======================================================================
// Property: trace export emits exactly one event per interval plus one
// metadata record, for random timelines.
// =======================================================================

TEST(TraceInvariants, OneEventPerInterval) {
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    Timeline tl;
    const int n = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < n; ++i) {
      const double start = rng.Uniform(0.0, 100.0);
      tl.Add("op" + std::to_string(i), OpCategory::kOther,
             static_cast<int>(rng.UniformInt(0, 4)), start,
             start + rng.Uniform(0.1, 5.0));
    }
    const std::string json = ToChromeTraceJson(tl);
    size_t events = 0;
    for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
         pos = json.find("\"ph\":\"X\"", pos + 1)) {
      ++events;
    }
    EXPECT_EQ(events, static_cast<size_t>(n));
  }
}

// =======================================================================
// Failure injection: invalid configurations must trip checks loudly, never
// produce garbage schedules.
// =======================================================================

TEST(FailureInjection, FusedKernelRejectsBadBlockSplit) {
  Rng rng(29);
  const MoeWorkload w = RandomWorkload(rng, 1, 4);
  const OpCostModel costs{H800Cluster(4)};
  FusedKernelConfig config;
  config.total_blocks = 0;  // no SMs
  EXPECT_THROW(SimulateLayer0Fused(w.plan, 0, costs, config), CheckError);
  config.total_blocks = 32;
  config.comm_blocks = 32;  // no compute blocks left
  EXPECT_THROW(SimulateLayer0Fused(w.plan, 0, costs, config), CheckError);
  config.comm_blocks = -1;
  EXPECT_THROW(SimulateLayer1Fused(w.plan, 0, costs, config), CheckError);
}

TEST(FailureInjection, ScheduleRejectsNonPositiveTiles) {
  Rng rng(31);
  const MoeWorkload w = RandomWorkload(rng, 1, 2);
  EXPECT_THROW(BuildLayer0Schedule(w.plan.ForRank(0), 0, 2, 64, 0, 16, true),
               CheckError);
  EXPECT_THROW(BuildLayer1Schedule(w.plan.ForRank(0), 64, 16, -3, true),
               CheckError);
  EXPECT_THROW(BuildLayer0Schedule(w.plan.ForRank(0), 0, 2, 0, 16, 16, true),
               CheckError);
}

TEST(FailureInjection, ArrivalClassRejectsBadGroups) {
  EXPECT_THROW(RowArrivalClass(4, 0, 4), CheckError);
  EXPECT_THROW(RowArrivalClass(-1, 0, 4), CheckError);
  EXPECT_THROW(RowArrivalClass(0, 4, 4), CheckError);
}

TEST(FailureInjection, CapacityRejectsBadArguments) {
  RoutingTable table;
  table.tokens.push_back(TokenRoute{{0}, {1.0f}});
  EXPECT_THROW(ApplyCapacityFactor(table, 0, 1.0), CheckError);
  EXPECT_THROW(ApplyCapacityFactor(table, 4, 0.0), CheckError);
  RoutingTable bad;
  bad.tokens.push_back(TokenRoute{{9}, {1.0f}});  // expert out of range
  EXPECT_THROW(ApplyCapacityFactor(bad, 4, 1.0), CheckError);
}

TEST(FailureInjection, CollectiveCostRejectsRaggedMatrix) {
  const ClusterSpec cluster = H800Cluster(4);
  std::vector<std::vector<double>> ragged(3, std::vector<double>(4, 1.0));
  EXPECT_THROW(AllToAllCostUs(cluster, ragged), CheckError);
  std::vector<std::vector<double>> bad_row(4, std::vector<double>(4, 1.0));
  bad_row[2].resize(2);
  EXPECT_THROW(AllToAllCostUs(cluster, bad_row), CheckError);
}

}  // namespace
}  // namespace comet
