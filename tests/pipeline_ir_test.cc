// Tests of the pipeline IR: the generalized dependency-resolving analysis
// must recover the paper's §3.1 conclusions for all four MoE pipelines and
// behave sensibly on arbitrary graphs.
#include <gtest/gtest.h>

#include "core/pipeline_ir.h"
#include "util/check.h"

namespace comet {
namespace {

// ---- canonical MoE graphs -----------------------------------------------------

TEST(PipelineIr, Layer0DecomposesAlongMWithArrivalOrder) {
  const auto pipelines =
      ResolveOverlapPipelines(MoeLayer0Graph(1024, 4096, 14336));
  ASSERT_EQ(pipelines.size(), 1u);
  const ResolvedPipeline& p = pipelines.front();
  EXPECT_EQ(p.shared_tensor, "A");
  EXPECT_EQ(p.producer, "dispatch");
  ASSERT_EQ(p.legal.size(), 1u);
  EXPECT_EQ(p.legal.front(), DecomposeDim::kM);
  ASSERT_TRUE(p.chosen.has_value());
  EXPECT_EQ(*p.chosen, DecomposeDim::kM);
  EXPECT_EQ(p.hint, RescheduleHint::kArrivalOrder);
}

TEST(PipelineIr, Layer1DecomposesAlongNWithPanelMajor) {
  const auto pipelines =
      ResolveOverlapPipelines(MoeLayer1Graph(1024, 4096, 14336));
  ASSERT_EQ(pipelines.size(), 1u);
  const ResolvedPipeline& p = pipelines.front();
  EXPECT_EQ(p.shared_tensor, "Y");
  ASSERT_EQ(p.legal.size(), 1u);
  EXPECT_EQ(p.legal.front(), DecomposeDim::kN);
  EXPECT_EQ(p.hint, RescheduleHint::kPanelMajor);
}

TEST(PipelineIr, BackwardKernelAMirrorsLayer0) {
  const auto pipelines =
      ResolveOverlapPipelines(MoeBackwardKernelAGraph(1024, 4096, 14336));
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_EQ(pipelines.front().shared_tensor, "dY");
  EXPECT_EQ(*pipelines.front().chosen, DecomposeDim::kM);
  EXPECT_EQ(pipelines.front().hint, RescheduleHint::kArrivalOrder);
}

TEST(PipelineIr, BackwardKernelBMirrorsLayer1) {
  const auto pipelines =
      ResolveOverlapPipelines(MoeBackwardKernelBGraph(1024, 4096, 14336));
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_EQ(pipelines.front().shared_tensor, "dA");
  EXPECT_EQ(*pipelines.front().chosen, DecomposeDim::kN);
  EXPECT_EQ(pipelines.front().hint, RescheduleHint::kPanelMajor);
}

TEST(PipelineIr, Layer0FullAnalysisIncludesSameDomainEdges) {
  const auto all = ResolvePipelines(MoeLayer0Graph(256, 64, 128));
  // A (dispatch -> gemm) and H (gemm -> activation); Z and tokens are graph
  // boundary tensors.
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].shared_tensor, "A");
  EXPECT_TRUE(all[0].crosses_domains);
  EXPECT_EQ(all[1].shared_tensor, "H");
  EXPECT_FALSE(all[1].crosses_domains);
  EXPECT_EQ(all[1].hint, RescheduleHint::kNone);
}

// ---- generic graphs -----------------------------------------------------------

TEST(PipelineIr, ElementwiseConsumerAllowsBothAxesPrefersM) {
  PipelineGraph g;
  g.AddTensor("x", 64, 64).AddTensor("y", 64, 64);
  g.AddOp({.name = "recv",
           .domain = OpDomain::kCommunication,
           .reads = {},
           .writes = {{"x", AxisRole::kParallel, AxisRole::kParallel}}});
  g.AddOp({.name = "scale",
           .domain = OpDomain::kCompute,
           .reads = {{"x", AxisRole::kParallel, AxisRole::kParallel}},
           .writes = {{"y", AxisRole::kParallel, AxisRole::kParallel}}});
  const auto pipelines = ResolveOverlapPipelines(g);
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_EQ(pipelines.front().legal.size(), 2u);
  EXPECT_EQ(*pipelines.front().chosen, DecomposeDim::kM);
}

TEST(PipelineIr, FullReductionConsumerHasNoLegalAxis) {
  PipelineGraph g;
  g.AddTensor("x", 64, 64).AddTensor("s", 1, 1);
  g.AddOp({.name = "recv",
           .domain = OpDomain::kCommunication,
           .reads = {},
           .writes = {{"x", AxisRole::kParallel, AxisRole::kParallel}}});
  g.AddOp({.name = "global_sum",
           .domain = OpDomain::kCompute,
           .reads = {{"x", AxisRole::kReduce, AxisRole::kReduce}},
           .writes = {{"s", AxisRole::kParallel, AxisRole::kParallel}}});
  const auto pipelines = ResolveOverlapPipelines(g);
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_TRUE(pipelines.front().legal.empty());
  EXPECT_FALSE(pipelines.front().chosen.has_value());
  EXPECT_EQ(pipelines.front().hint, RescheduleHint::kNone);
}

TEST(PipelineIr, MultiConsumerLegalityIsIntersection) {
  PipelineGraph g;
  g.AddTensor("x", 64, 64).AddTensor("a", 64, 64).AddTensor("b", 64, 64);
  g.AddOp({.name = "recv",
           .domain = OpDomain::kCommunication,
           .reads = {},
           .writes = {{"x", AxisRole::kParallel, AxisRole::kParallel}}});
  // Consumer 1 reduces columns (rows legal); consumer 2 reduces rows
  // (columns legal): intersection empty.
  g.AddOp({.name = "row_gemm",
           .domain = OpDomain::kCompute,
           .reads = {{"x", AxisRole::kParallel, AxisRole::kReduce}},
           .writes = {{"a", AxisRole::kParallel, AxisRole::kParallel}}});
  g.AddOp({.name = "col_reduce",
           .domain = OpDomain::kCompute,
           .reads = {{"x", AxisRole::kReduce, AxisRole::kParallel}},
           .writes = {{"b", AxisRole::kParallel, AxisRole::kParallel}}});
  const auto pipelines = ResolveOverlapPipelines(g);
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_TRUE(pipelines.front().legal.empty());
  ASSERT_EQ(pipelines.front().consumers.size(), 2u);
}

TEST(PipelineIr, BroadcastConsumerBlocksAxis) {
  PipelineGraph g;
  g.AddTensor("x", 8, 8).AddTensor("y", 8, 8);
  g.AddOp({.name = "recv",
           .domain = OpDomain::kCommunication,
           .reads = {},
           .writes = {{"x", AxisRole::kParallel, AxisRole::kParallel}}});
  g.AddOp({.name = "softmax_rows",
           .domain = OpDomain::kCompute,
           .reads = {{"x", AxisRole::kParallel, AxisRole::kBroadcast}},
           .writes = {{"y", AxisRole::kParallel, AxisRole::kParallel}}});
  const auto pipelines = ResolveOverlapPipelines(g);
  ASSERT_EQ(pipelines.size(), 1u);
  ASSERT_EQ(pipelines.front().legal.size(), 1u);
  EXPECT_EQ(pipelines.front().legal.front(), DecomposeDim::kM);
}

// ---- validation ---------------------------------------------------------------

TEST(PipelineIr, RejectsUndeclaredTensor) {
  PipelineGraph g;
  g.AddTensor("x", 8, 8);
  g.AddOp({.name = "bad",
           .domain = OpDomain::kCompute,
           .reads = {{"ghost", AxisRole::kParallel, AxisRole::kParallel}},
           .writes = {{"x", AxisRole::kParallel, AxisRole::kParallel}}});
  EXPECT_THROW(g.Validate(), CheckError);
}

TEST(PipelineIr, RejectsDoubleWriter) {
  PipelineGraph g;
  g.AddTensor("x", 8, 8);
  const PipelineOp writer{.name = "w",
                          .domain = OpDomain::kCompute,
                          .reads = {},
                          .writes = {{"x", AxisRole::kParallel,
                                      AxisRole::kParallel}}};
  PipelineOp writer2 = writer;
  writer2.name = "w2";
  g.AddOp(writer).AddOp(writer2);
  EXPECT_THROW(g.Validate(), CheckError);
}

TEST(PipelineIr, RejectsReadWriteAliasing) {
  PipelineGraph g;
  g.AddTensor("x", 8, 8);
  g.AddOp({.name = "inplace",
           .domain = OpDomain::kCompute,
           .reads = {{"x", AxisRole::kParallel, AxisRole::kParallel}},
           .writes = {{"x", AxisRole::kParallel, AxisRole::kParallel}}});
  EXPECT_THROW(g.Validate(), CheckError);
}

TEST(PipelineIr, RejectsDuplicateTensorDecl) {
  PipelineGraph g;
  g.AddTensor("x", 8, 8);
  EXPECT_THROW(g.AddTensor("x", 4, 4), CheckError);
}

TEST(PipelineIr, DescribeMentionsDecomposition) {
  const auto pipelines =
      ResolveOverlapPipelines(MoeLayer0Graph(256, 64, 128));
  const std::string text = DescribePipelines(pipelines);
  EXPECT_NE(text.find("dispatch"), std::string::npos);
  EXPECT_NE(text.find("decompose along M"), std::string::npos);
  EXPECT_NE(text.find("arrival-order"), std::string::npos);
}

TEST(PipelineIr, NamesAreStable) {
  EXPECT_EQ(AxisRoleName(AxisRole::kParallel), "parallel");
  EXPECT_EQ(AxisRoleName(AxisRole::kReduce), "reduce");
  EXPECT_EQ(AxisRoleName(AxisRole::kGather), "gather");
  EXPECT_EQ(AxisRoleName(AxisRole::kBroadcast), "broadcast");
  EXPECT_EQ(RescheduleHintName(RescheduleHint::kArrivalOrder),
            "arrival-order");
  EXPECT_EQ(RescheduleHintName(RescheduleHint::kPanelMajor), "panel-major");
}

}  // namespace
}  // namespace comet
