// Serving quickstart: drive the MoE serving runtime with open-loop load
// and read the latency/SLO report.
//
//   $ ./examples/serving_quickstart
//
// Walks the serving plane end to end:
//  1. configure a small MoE model served at EP=4 with a 32-token iteration
//     budget and a bounded admission queue,
//  2. generate a seeded Poisson request stream (open loop: arrivals never
//     wait for the server),
//  3. serve it -- queue -> continuous batcher -> CometExecutor::RunBatch,
//     clock advanced by the timing plane -- and print per-request latency
//     percentiles, SLO attainment and throughput,
//  4. re-serve the SAME stream: the report is bit-identical, because a
//     serving run is a pure function of (seed, config).
#include <iostream>

#include "serve/server.h"
#include "util/table.h"

using namespace comet;

int main() {
  // A small MoE layer served expert-parallel on 4 simulated H800s.
  ModelConfig model;
  model.name = "serve-quickstart";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 64;
  model.ffn_hidden = 128;

  ServeOptions options;
  options.model = model;
  options.parallel = ParallelConfig{/*tp=*/1, /*ep=*/4};
  options.seed = 7;
  options.dtype = DType::kBF16;  // the data plane computes at bf16
  options.token_budget = 32;     // tokens per batcher iteration
  options.max_active = 16;       // backpressure bound on in-flight requests
  options.queue_capacity = 64;
  options.slo = SloTargets{.ttft_us = 2000.0, .itl_us = 500.0};
  MoeServer server(options, H800Cluster(4));

  // 60 requests, Poisson arrivals, mixed prompt/decode lengths.
  LoadGenOptions load;
  load.seed = 99;
  load.offered_rps = 10000.0;
  load.num_requests = 60;
  load.prompt = LengthDist::Uniform(4, 16);
  load.decode = LengthDist::Uniform(1, 8);
  LoadGenerator gen(load);
  const std::vector<RequestSpec> arrivals = gen.GenerateAll();

  const ServeReport report = server.Serve(arrivals);

  std::cout << "served " << report.completed.size() << "/" << report.offered
            << " requests (" << report.shed << " shed) in "
            << FormatUsAsMs(report.sim_duration_us) << " simulated ms over "
            << report.iterations << " iterations\n";
  std::cout << "throughput: "
            << FormatDouble(report.throughput_tokens_per_s, 0)
            << " tokens/s (simulated)\n\n";

  AsciiTable table({"metric", "p50 us", "p95 us", "p99 us"});
  const auto row = [&](const char* name, const LatencySummary& s) {
    table.AddRow({name, FormatDouble(s.p50, 1), FormatDouble(s.p95, 1),
                  FormatDouble(s.p99, 1)});
  };
  row("queue wait", report.queue_wait_us);
  row("time to first token", report.ttft_us);
  row("inter-token latency", report.itl_us);
  row("end to end", report.e2e_us);
  std::cout << table.Render() << "\n";
  std::cout << "SLO attainment (TTFT <= 2 ms, mean ITL <= 0.5 ms): "
            << FormatPercent(report.slo_attainment) << "\n\n";

  // Determinism: same arrivals + same config => bit-identical outputs and
  // identical simulated latencies, at ANY host thread count.
  const ServeReport again = server.Serve(arrivals);
  std::cout << "re-served the same stream: digests "
            << (again.combined_digest == report.combined_digest
                    ? "identical"
                    : "DIFFER (bug!)")
            << ", p99 TTFT identical: "
            << (again.ttft_us.p99 == report.ttft_us.p99 ? "yes" : "NO (bug!)")
            << "\n";
  return again.combined_digest == report.combined_digest ? 0 : 1;
}
