// Cluster quickstart: a fleet of MoE serving replicas behind a global
// dispatcher, with placement policies and a replica failure mid-run.
//
//   $ ./examples/cluster_quickstart
//
// Walks the cluster plane end to end:
//  1. configure a 4-replica fleet (each replica a full EP=4 serving plane
//     of the same model) and one open-loop request stream,
//  2. run it under each placement policy -- round-robin, least-loaded,
//     power-of-two-choices, sticky sessions -- and compare tails,
//  3. re-run one config: the report is bit-identical (a cluster run is a
//     pure function of seeds + config, at any host thread count),
//  4. kill a replica mid-run: its in-flight requests are re-dispatched and
//     recomputed elsewhere, with EXACTLY the same output bits as the
//     no-fault run -- only their latency pays for the failure,
//  5. recovery plane: the dead replica comes back (fresh executor, cold
//     caches, a warm-up window), in-flight requests retry with exponential
//     backoff, long-queued ones hedge a second copy, the circuit breaker
//     walks open -> half-open -> closed -- and the output bits STILL match
//     the no-fault run,
//  6. telemetry plane: re-run the recovery scenario with tracing ON, check
//     the served bits are untouched, and export a Chrome trace (open it in
//     chrome://tracing or Perfetto) plus a Prometheus text snapshot.
#include <iostream>

#include "obs/exporters.h"
#include "serve/cluster.h"
#include "util/table.h"

using namespace comet;

int main() {
  ModelConfig model;
  model.name = "cluster-quickstart";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 64;
  model.ffn_hidden = 128;

  ServeOptions server;
  server.model = model;
  server.parallel = ParallelConfig{/*tp=*/1, /*ep=*/4};
  server.seed = 7;
  server.dtype = DType::kBF16;
  server.token_budget = 32;
  server.max_active = 16;
  server.queue_capacity = 64;
  server.slo = SloTargets{.ttft_us = 2000.0, .itl_us = 500.0};

  // One stream for every experiment below: 120 requests across 12 sessions
  // (sessions give the sticky policy an affinity key to keep).
  LoadGenOptions load;
  load.seed = 99;
  load.offered_rps = 40000.0;
  load.num_requests = 120;
  load.num_sessions = 12;
  load.prompt = LengthDist::Uniform(4, 16);
  load.decode = LengthDist::Uniform(1, 8);
  const std::vector<RequestSpec> arrivals =
      LoadGenerator(load).GenerateAll();

  // --- 4 replicas x 4 placement policies over the same stream ---------------
  std::cout << "=== placement policies, 4 replicas, same 120-request stream "
            << "===\n\n";
  AsciiTable table({"placement", "ttft p99 us", "e2e p99 us", "SLO %",
                    "tok/s", "per-replica completed"});
  uint64_t rr_digest = 0;
  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kPowerOfTwo, PlacementPolicy::kSticky}) {
    ClusterOptions options;
    options.server = server;
    options.replicas = 4;
    options.placement = policy;
    options.placement_seed = 13;
    MoeCluster cluster(options, H800Cluster(4));
    const ClusterReport report = cluster.Run(arrivals);

    std::string spread;
    for (size_t r = 0; r < report.per_replica_completed.size(); ++r) {
      spread += (r > 0 ? " " : "") +
                std::to_string(report.per_replica_completed[r]);
    }
    table.AddRow({PlacementPolicyName(policy),
                  FormatDouble(report.ttft_us.p99, 1),
                  FormatDouble(report.e2e_us.p99, 1),
                  FormatPercent(report.slo_attainment),
                  FormatDouble(report.throughput_tokens_per_s, 0), spread});
    if (policy == PlacementPolicy::kRoundRobin) {
      rr_digest = report.combined_digest;
    } else if (report.combined_digest != rr_digest) {
      std::cout << "BUG: placement changed output bits\n";
      return 1;
    }
  }
  std::cout << table.Render() << "\n";
  std::cout << "combined digest is IDENTICAL across policies: outputs are a "
            << "function of the\nrequest, not of where it ran.\n\n";

  // --- determinism: re-running a config reproduces it bit for bit -----------
  ClusterOptions p2c;
  p2c.server = server;
  p2c.replicas = 4;
  p2c.placement = PlacementPolicy::kPowerOfTwo;
  p2c.placement_seed = 13;
  MoeCluster cluster(p2c, H800Cluster(4));
  const ClusterReport a = cluster.Run(arrivals);
  const ClusterReport b = cluster.Run(arrivals);
  std::cout << "re-ran p2c config: digests "
            << (a.combined_digest == b.combined_digest ? "identical"
                                                       : "DIFFER (bug!)")
            << ", p99 TTFT identical: "
            << (a.ttft_us.p99 == b.ttft_us.p99 ? "yes" : "NO (bug!)")
            << "\n\n";

  // --- fault injection: kill replica 0 mid-run ------------------------------
  ClusterOptions faulty = p2c;
  faulty.in_flight = InFlightPolicy::kRedispatch;
  faulty.faults.events.push_back(FaultEvent{
      /*time_us=*/a.sim_duration_us * 0.4, /*replica=*/0, FaultKind::kFail});
  const ClusterReport failed = MoeCluster(faulty, H800Cluster(4)).Run(arrivals);
  std::cout << "=== replica 0 fails at 40% of the run ===\n"
            << "replica failures: " << failed.replica_failures
            << ", re-dispatched in-flight requests: " << failed.redispatched
            << "\ncompleted " << failed.completed.size() << "/"
            << failed.offered << " -- and every output digest matches the "
            << "no-fault run: "
            << (failed.combined_digest == a.combined_digest ? "yes"
                                                            : "NO (bug!)")
            << "\n(re-dispatched requests are recomputed from scratch; "
            << "outputs depend on the\nrequest seed and weights, never on "
            << "which replica or batch served them)\n\n";

  // --- recovery plane: fail, retry with backoff, hedge, recover -------------
  //
  // Replica 0 dies at 40% of the run and restarts at 60% with a warm-up
  // window. In-flight requests at the moment of death retry with
  // exponential backoff + seeded jitter (budget 3); a request stuck in a
  // queue past the hedge bound gets one speculative second copy, first
  // completion wins, the loser's tokens are counted as waste. The dead
  // replica's circuit breaker force-opens and re-admits traffic through a
  // half-open probe. All of it is on the simulated clock and seeded: the
  // whole trajectory -- and every output bit -- is reproducible.
  ClusterOptions recov = p2c;
  // Two replicas, not four: losing one must actually halve capacity, so the
  // outage builds real queues and the hedge bound has something to rescue.
  recov.replicas = 2;
  recov.in_flight = InFlightPolicy::kRetryBackoff;
  recov.retry_budget = 3;
  recov.retry_backoff_us = 200.0;
  recov.recovery_warmup_us = a.sim_duration_us * 0.02;
  recov.hedge_queue_wait_us = 100.0;
  recov.health.probe_backoff_us = 500.0;
  recov.faults.events = {
      FaultEvent{a.sim_duration_us * 0.4, /*replica=*/0, FaultKind::kFail},
      FaultEvent{a.sim_duration_us * 0.6, /*replica=*/0, FaultKind::kRecover},
  };
  const ClusterReport rec = MoeCluster(recov, H800Cluster(4)).Run(arrivals);
  std::cout << "=== 2-replica fleet: replica 0 fails at 40%, recovers at 60% "
            << "(+2% warm-up) ===\n"
            << "retries: " << rec.retries
            << ", retries exhausted: " << rec.retries_exhausted
            << ", hedged: " << rec.hedged << " (wins: " << rec.hedge_wins
            << ", wasted tokens: " << rec.wasted_tokens << ")\n"
            << "breaker opens: " << rec.breaker_opens
            << ", half-open probes: " << rec.probes
            << ", replicas recovered: " << rec.replicas_recovered << "\n"
            << "completed " << rec.completed.size() << "/" << rec.offered
            << " -- every completed request's digest matches the no-fault "
            << "run: ";
  bool rec_bits_ok = true;
  {
    // Per-request check (not combined_digest: a retries-exhausted request
    // has no record, so the combined hash over fewer records differs even
    // though every served bit is right).
    std::vector<uint64_t> clean_by_id(arrivals.size() + 1, 0);
    for (const RequestRecord& r : a.completed) {
      clean_by_id[static_cast<size_t>(r.id)] = r.output_digest;
    }
    for (const RequestRecord& r : rec.completed) {
      if (clean_by_id[static_cast<size_t>(r.id)] != r.output_digest) {
        rec_bits_ok = false;
      }
    }
  }
  std::cout << (rec_bits_ok ? "yes" : "NO (bug!)")
            << "\n(faults, retries and hedges move latency, never bits: a "
            << "hedged request's two\ncopies compute identical outputs, so "
            << "whichever wins serves the same answer)\n\n";

  // --- telemetry plane: trace the recovery run, bits untouched --------------
  //
  // Same recovery scenario, telemetry ON: every iteration, phase, retry,
  // hedge and breaker transition lands in preallocated span rings stamped
  // with the simulated clock. Recording is alloc-free and reads nothing the
  // serving path depends on, so the served bits are identical to the
  // telemetry-off run above -- and the exported artifacts are themselves
  // deterministic (byte-identical at any host thread count).
  ClusterOptions traced = recov;
  traced.server.telemetry.enabled = true;
  MoeCluster tcluster(traced, H800Cluster(4));
  const ClusterReport trep = tcluster.Run(arrivals);
  bool tel_bits_ok = trep.combined_digest == rec.combined_digest;
  const std::string trace = tcluster.ExportChromeTrace();
  const std::string prom = tcluster.ExportPrometheusText();
  obs::WriteTextFile("cluster_quickstart_trace.json", trace);
  obs::WriteTextFile("cluster_quickstart_metrics.prom", prom);
  size_t spans = 0;
  for (const obs::ReplicaTelemetry& view : tcluster.TelemetryViews()) {
    if (view.archived != nullptr) { spans += view.archived->size(); }
    if (view.live != nullptr) { spans += view.live->size(); }
  }
  std::cout << "=== same recovery run, telemetry ON ===\n"
            << "served bits identical to the telemetry-off run: "
            << (tel_bits_ok ? "yes" : "NO (bug!)") << "\n"
            << "captured " << spans << " spans across " << traced.replicas
            << " replicas + the cluster ring\n"
            << "wrote cluster_quickstart_trace.json (" << trace.size()
            << " bytes, chrome://tracing) and\ncluster_quickstart_metrics"
            << ".prom (" << prom.size() << " bytes, Prometheus exposition)\n"
            << "(the dead replica's spans survive recovery: they are "
            << "archived before the fresh\nreplica takes over, and its "
            << "counters carry the archived totals forward)\n";

  return (a.combined_digest == b.combined_digest &&
          failed.combined_digest == a.combined_digest && rec_bits_ok &&
          tel_bits_ok)
             ? 0
             : 1;
}
