// Scenario: expert load imbalance in production training (paper §5.4,
// Figure 14-left). Generates routing tables at increasing imbalance, shows
// the realized per-expert loads, and how COMET's latency and the adaptive
// division point respond.
//
//   $ ./examples/imbalanced_routing
#include <iostream>

#include "core/comet_executor.h"
#include "util/table.h"

using namespace comet;

int main() {
  ModelConfig model = Mixtral8x7B();
  const ParallelConfig parallel{/*tp=*/1, /*ep=*/8};
  const int64_t tokens = 8192;
  const ClusterSpec cluster = H800Cluster(8);

  std::cout << "expert-load imbalance study: " << model.name << ", M="
            << tokens << ", " << parallel.ToString() << "\n\n";

  AsciiTable table({"target std", "achieved std", "min load", "max load",
                    "Comet (ms)", "hidden comm"});
  for (double std_target : {0.0, 0.01, 0.032, 0.05}) {
    WorkloadOptions options;
    options.seed = 7;
    options.load_std = std_target;
    options.materialize = false;
    const MoeWorkload w = MakeWorkload(model, parallel, tokens, options);

    const auto loads = w.routing.ExpertLoads(model.num_experts);
    int64_t lo = loads[0];
    int64_t hi = loads[0];
    for (int64_t l : loads) {
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }

    CometExecutor comet;
    const LayerExecution run = comet.Run(w, cluster, ExecMode::kTimedOnly);
    table.AddRow({FormatDouble(std_target, 3),
                  FormatDouble(w.routing.LoadStd(model.num_experts), 3),
                  std::to_string(lo), std::to_string(hi),
                  FormatUsAsMs(run.duration_us),
                  FormatPercent(run.timeline.HiddenCommFraction())});
  }
  std::cout << table.Render() << "\n";
  std::cout << "note: paper reports std = 0.032 as the production average;\n"
               "the busiest rank sets the layer's critical path, so latency\n"
               "grows with imbalance even though total work is constant.\n";
  return 0;
}
