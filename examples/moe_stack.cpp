// Scenario: a multi-layer MoE model with content-dependent gate routing,
// executed functionally through COMET layer by layer. Shows that (a) routing
// really changes per layer because each layer gates on the previous layer's
// activations, (b) the whole stack is bit-exact against the sharded
// reference, and (c) one communication buffer serves every layer (Table 3).
//
//   $ ./examples/moe_stack [layers] [tokens]
#include <cstdlib>
#include <iostream>

#include "core/comet_executor.h"
#include "runtime/moe_model.h"
#include "util/table.h"

using namespace comet;

int main(int argc, char** argv) {
  const int64_t layers = argc > 1 ? std::atoll(argv[1]) : 4;
  const int64_t tokens = argc > 2 ? std::atoll(argv[2]) : 64;

  ModelConfig model;
  model.name = "moe-stack";
  model.layers = layers;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 64;
  model.ffn_hidden = 128;
  const ParallelConfig parallel{/*tp=*/2, /*ep=*/2};

  const MoeModel stack(model, parallel, tokens);
  const auto inputs = stack.MakeInputs(11);

  std::cout << "MoE stack: " << layers << " layers, " << tokens
            << " tokens, " << parallel.ToString() << "\n";
  std::cout << "shared NVSHMEM buffer: " << stack.comm_plan().MiBs()
            << " MiB for the whole stack (independent of L, E, topk)\n\n";

  // Per-layer expert load profile: routing follows the activations, so the
  // loads shift from layer to layer.
  CometExecutor comet;
  AsciiTable table({"layer", "expert loads (pairs)", "load std"});
  std::vector<Tensor> acts = inputs;
  for (int64_t l = 0; l < layers; ++l) {
    const MoeWorkload w = stack.LayerWorkload(l, acts);
    std::string loads;
    for (int64_t c : w.routing.ExpertLoads(model.num_experts)) {
      if (!loads.empty()) {
        loads += ' ';
      }
      loads += std::to_string(c);
    }
    table.AddRow({std::to_string(l), loads,
                  FormatDouble(w.routing.LoadStd(model.num_experts), 4)});
    auto run = comet.Run(w, H800Cluster(parallel.world()),
                         ExecMode::kFunctional);
    for (size_t g = 0; g < run.outputs.size(); ++g) {
      auto out = run.outputs[g].data();
      const auto res = acts[g].data();
      for (size_t i = 0; i < out.size(); ++i) {
        out[i] += res[i];
      }
    }
    acts = std::move(run.outputs);
  }

  const auto got = stack.Forward(comet, H800Cluster(parallel.world()), inputs);
  const auto expected = stack.ReferenceForward(inputs);
  float max_diff = 0.0f;
  for (size_t g = 0; g < got.size(); ++g) {
    max_diff = std::max(max_diff, Tensor::MaxAbsDiff(got[g], expected[g]));
  }
  std::cout << table.Render() << "\n";
  std::cout << "max |comet - reference| over " << layers
            << " stacked layers: " << max_diff << (max_diff == 0.0f
            ? " (bit-exact)\n" : "\n");
  return max_diff == 0.0f ? 0 : 1;
}
