// Scenario: use the pipeline IR (the paper conclusion's "fine-grained
// pipelined programming model") to analyze operator graphs. The analysis
// derives, from per-axis access declarations alone, where each MoE pipeline
// may be decomposed and how its tiles should be rescheduled -- recovering
// §3.1's conclusions for forward and backward, and diagnosing an
// un-overlappable pipeline.
//
//   $ ./examples/pipeline_inspector
#include <iostream>

#include "core/pipeline_ir.h"
#include "moe/config.h"

using namespace comet;

int main() {
  const ModelConfig model = Mixtral8x7B();
  const int64_t rows = 8192 * model.topk;

  const struct {
    const char* title;
    PipelineGraph graph;
  } cases[] = {
      {"MoE forward layer0 (dispatch -> GroupGEMM)",
       MoeLayer0Graph(rows, model.embedding, model.ffn_hidden)},
      {"MoE forward layer1 (GroupGEMM -> topk-reduce + all-to-all)",
       MoeLayer1Graph(rows, model.embedding, model.ffn_hidden)},
      {"MoE backward kernel A (grad dispatch -> dgrad1 GEMM)",
       MoeBackwardKernelAGraph(rows, model.embedding, model.ffn_hidden)},
      {"MoE backward kernel B (dgrad0 GEMM -> undispatch)",
       MoeBackwardKernelBGraph(rows, model.embedding, model.ffn_hidden)},
  };
  for (const auto& c : cases) {
    std::cout << "== " << c.title << " ==\n"
              << DescribePipelines(ResolveOverlapPipelines(c.graph)) << "\n";
  }

  // A pipeline the analysis must reject: a consumer that reduces the shared
  // tensor along BOTH axes leaves no independent dimension to stream.
  PipelineGraph bad;
  bad.AddTensor("x", 4096, 4096).AddTensor("norm", 1, 1);
  bad.AddOp({.name = "recv",
             .domain = OpDomain::kCommunication,
             .reads = {},
             .writes = {{"x", AxisRole::kParallel, AxisRole::kParallel}}});
  bad.AddOp({.name = "frobenius_norm",
             .domain = OpDomain::kCompute,
             .reads = {{"x", AxisRole::kReduce, AxisRole::kReduce}},
             .writes = {{"norm", AxisRole::kParallel, AxisRole::kParallel}}});
  std::cout << "== pathological pipeline (recv -> global norm) ==\n"
            << DescribePipelines(ResolveOverlapPipelines(bad));
  return 0;
}
