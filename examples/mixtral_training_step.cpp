// Scenario: a Mixtral-8x7B forward pass on an 8x H800 node, comparing COMET
// against the four baseline MoE systems -- the paper's Figure 9 workload as
// a library user would run it.
//
//   $ ./examples/mixtral_training_step [tokens] [trace.json]
//
// When a trace path is given, COMET's MoE-layer timeline is exported in
// Chrome Trace Event Format -- open it in chrome://tracing or Perfetto to
// see the tile/transfer overlap.
#include <cstdlib>
#include <iostream>

#include "baselines/fastermoe.h"
#include "baselines/megatron.h"
#include "baselines/tutel.h"
#include "core/comet_executor.h"
#include "runtime/model_runner.h"
#include "sim/trace_export.h"
#include "util/table.h"

using namespace comet;

int main(int argc, char** argv) {
  const int64_t tokens = argc > 1 ? std::atoll(argv[1]) : 8192;

  ModelRunConfig config;
  config.model = Mixtral8x7B();
  config.parallel = ParallelConfig{/*tp=*/1, /*ep=*/8};
  config.total_tokens = tokens;
  config.load_std = 0.032;  // production-average expert imbalance
  const ClusterSpec cluster = H800Cluster(8);

  std::cout << "Mixtral-8x7B forward pass, M=" << tokens << ", "
            << config.parallel.ToString() << ", " << cluster.name << "\n\n";

  MegatronExecutor cutlass = MakeMegatronCutlass();
  MegatronExecutor te = MakeMegatronTe();
  FasterMoeExecutor fastermoe;
  TutelExecutor tutel;
  CometExecutor comet;

  AsciiTable table({"system", "model (ms)", "MoE layers (ms)",
                    "MoE layer (ms)", "hidden comm"});
  double comet_ms = 0.0;
  double best_baseline_ms = 1e300;
  for (MoeLayerExecutor* exec :
       std::initializer_list<MoeLayerExecutor*>{&te, &cutlass, &fastermoe,
                                                &tutel, &comet}) {
    const ModelRunResult run = RunModel(*exec, config, cluster);
    table.AddRow({exec->name(), FormatDouble(run.total_ms, 1),
                  FormatDouble(run.moe_only_ms, 1),
                  FormatUsAsMs(run.moe_us),
                  FormatPercent(run.moe_layer.timeline.HiddenCommFraction())});
    if (exec == &comet) {
      comet_ms = run.total_ms;
      if (argc > 2) {
        WriteChromeTrace(run.moe_layer.timeline, argv[2], "comet-moe-layer");
        std::cout << "wrote Chrome trace of the COMET MoE layer to "
                  << argv[2] << "\n";
      }
    } else {
      best_baseline_ms = std::min(best_baseline_ms, run.total_ms);
    }
  }
  std::cout << table.Render() << "\n";
  std::cout << "Comet speedup vs best baseline: "
            << FormatSpeedup(best_baseline_ms / comet_ms) << "\n";
  return 0;
}
