// Scenario: the deployment workflow of §3.2.2 -- profile the fused-kernel
// division points for your model/cluster once, persist them as metadata,
// and let the runtime pick the pre-compiled kernel from the store.
//
//   $ ./examples/adaptive_tuning [metadata_path]
#include <iostream>

#include "core/adaptive.h"
#include "core/comet_executor.h"
#include "exec/op_costs.h"
#include "util/table.h"

using namespace comet;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/comet_profile_metadata.txt";
  const ClusterSpec cluster = H800Cluster(8);
  const OpCostModel costs(cluster);
  const AdaptiveAssigner assigner(/*candidate_stride=*/2);

  // Profile a grid of setups (model x M x parallelism), as the paper does
  // "prior to deployment".
  MetadataStore store = MetadataStore::Load(path);
  std::cout << "profiling division points on " << cluster.name << "...\n\n";

  AsciiTable table({"model", "M", "parallelism", "nc* layer0", "nc* layer1"});
  for (const ModelConfig& model : {Mixtral8x7B(), Phi35Moe()}) {
    for (int64_t m : {4096, 16384}) {
      for (const ParallelConfig parallel :
           {ParallelConfig{1, 8}, ParallelConfig{2, 4}}) {
        WorkloadOptions options;
        options.materialize = false;
        const MoeWorkload w = MakeWorkload(model, parallel, m, options);
        FusedKernelConfig base;
        base.total_blocks = cluster.gpu.num_sms;
        const int nc0 = assigner.SelectCommBlocks(
            MoePipelineStage::kLayer0, w.plan, 0, costs, base, &store);
        const int nc1 = assigner.SelectCommBlocks(
            MoePipelineStage::kLayer1, w.plan, 0, costs, base, &store);
        table.AddRow({model.name, std::to_string(m), parallel.ToString(),
                      std::to_string(nc0), std::to_string(nc1)});
      }
    }
  }
  std::cout << table.Render() << "\n";

  store.Save(path);
  std::cout << "wrote " << store.size() << " profile entries to " << path
            << "\n\n";

  // At runtime, the executor consults the same store: the second run below
  // performs no sweeps (pure cache hits).
  MetadataStore runtime_store = MetadataStore::Load(path);
  CometOptions options;
  options.profile_cache = &runtime_store;
  CometExecutor comet(options);
  WorkloadOptions wl;
  wl.materialize = false;
  const MoeWorkload w = MakeWorkload(Mixtral8x7B(), ParallelConfig{1, 8},
                                     16384, wl);
  const LayerExecution run = comet.Run(w, cluster, ExecMode::kTimedOnly);
  std::cout << "runtime picked nc0=" << comet.last_layer0_comm_blocks()
            << ", nc1=" << comet.last_layer1_comm_blocks()
            << " from metadata; layer = " << FormatUsAsMs(run.duration_us)
            << " ms\n";
  return 0;
}
