// Quickstart: run one MoE layer through COMET and verify it against the
// reference implementation.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface on a small problem:
//  1. describe a model + parallelism and synthesize a workload,
//  2. run the COMET executor functionally (real numerics through the
//     NVSHMEM-style symmetric heap, tiles in the rescheduled order),
//  3. check bit-exactness against the sharded reference layer,
//  4. look at the timing plane: duration, per-category breakdown and the
//     fraction of communication hidden behind computation.
#include <iostream>

#include "core/comet_executor.h"
#include "moe/reference_layer.h"
#include "util/table.h"

using namespace comet;

int main() {
  // A toy MoE layer: 8 experts, top-2 routing, small embedding so the
  // functional plane runs instantly on a laptop.
  ModelConfig model;
  model.name = "quickstart";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 64;
  model.ffn_hidden = 128;

  // 4 GPUs: 2 EP groups x 2 TP lanes, 128 tokens.
  const ParallelConfig parallel{/*tp=*/2, /*ep=*/2};
  WorkloadOptions options;
  options.seed = 42;
  options.load_std = 0.02;  // mild expert imbalance
  const MoeWorkload workload = MakeWorkload(model, parallel, 128, options);

  // Run COMET: functional mode computes real outputs AND prices the
  // schedule on the simulated cluster.
  CometExecutor comet;
  const ClusterSpec cluster = H800Cluster(parallel.world());
  const LayerExecution run = comet.Run(workload, cluster, ExecMode::kFunctional);

  // Verify against the sharded reference: rescheduling must never change
  // the floating-point result.
  const auto reference = ShardedReferenceMoeLayer(workload);
  float worst = 0.0f;
  for (size_t g = 0; g < reference.size(); ++g) {
    worst = std::max(worst, Tensor::MaxAbsDiff(run.outputs[g], reference[g]));
  }
  std::cout << "max |comet - reference| = " << worst
            << (worst == 0.0f ? "  (bit-exact)\n" : "  (MISMATCH!)\n");

  // Timing plane.
  std::cout << "\nMoE layer on " << cluster.name << ": "
            << FormatUsAsMs(run.duration_us) << " ms\n";
  std::cout << "communication hidden behind computation: "
            << FormatPercent(run.timeline.HiddenCommFraction()) << "\n\n";
  std::cout << run.timeline.BreakdownString() << "\n";
  return worst == 0.0f ? 0 : 1;
}
