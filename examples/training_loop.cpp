// Scenario: a real (numerical) training loop over one MoE layer, exercising
// the functional plane end-to-end: COMET forward -> squared-error loss ->
// COMET backward -> SGD update on every expert's weights. The loss must
// decrease monotonically -- demonstrating that COMET's rescheduled execution
// is a drop-in replacement inside a training loop, not just a timing model.
//
//   $ ./examples/training_loop [steps]
#include <cstdlib>
#include <iostream>

#include "core/comet_backward.h"
#include "core/comet_executor.h"
#include "moe/backward.h"
#include "util/rng.h"
#include "util/table.h"

using namespace comet;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  const float lr = 0.015f;

  ModelConfig model;
  model.name = "trainable-moe";
  model.layers = 1;
  model.num_experts = 8;
  model.topk = 2;
  model.embedding = 64;
  model.ffn_hidden = 96;
  const ParallelConfig parallel{/*tp=*/2, /*ep=*/2};
  const ClusterSpec cluster = H800Cluster(parallel.world());
  const int64_t tokens = 64;

  WorkloadOptions options;
  options.seed = 42;
  MoeWorkload workload = MakeWorkload(model, parallel, tokens, options);

  // Synthetic regression target: the layer should learn to emit it.
  Rng rng(7);
  std::vector<Tensor> target;
  for (int g = 0; g < parallel.ep; ++g) {
    target.push_back(Tensor::Randn(
        Shape{workload.placement.tokens_per_group(), model.embedding}, rng,
        0.5f));
  }

  std::cout << "Training one MoE layer (" << model.num_experts << " experts, "
            << parallel.ToString() << ", " << tokens << " tokens) with COMET "
            << "functional forward+backward, lr=" << lr << "\n\n";

  CometExecutor forward;
  AsciiTable table({"step", "loss", "max |dW0|", "bwd duration (ms)"});
  for (int step = 0; step < steps; ++step) {
    const LayerExecution fwd =
        forward.Run(workload, cluster, ExecMode::kFunctional);

    // L = 0.5 * sum (out - target)^2 ; dL/dout = out - target.
    double loss = 0.0;
    std::vector<Tensor> dout;
    for (size_t g = 0; g < fwd.outputs.size(); ++g) {
      Tensor grad = fwd.outputs[g];
      auto gd = grad.data();
      const auto td = target[g].data();
      for (size_t i = 0; i < gd.size(); ++i) {
        gd[i] -= td[i];
        loss += 0.5 * static_cast<double>(gd[i]) * gd[i];
      }
      dout.push_back(std::move(grad));
    }

    const BackwardExecution bwd =
        CometBackward(workload, cluster, dout, ExecMode::kFunctional);

    // SGD step on fresh copies (workload weights are shared const).
    auto weights = std::make_shared<ExpertWeights>(*workload.weights);
    float max_dw0 = 0.0f;
    for (int64_t e = 0; e < model.num_experts; ++e) {
      auto w0 = weights->MutableW0(e).data();
      const auto g0 = bwd.grads.dw0[static_cast<size_t>(e)].data();
      for (size_t i = 0; i < w0.size(); ++i) {
        w0[i] -= lr * g0[i];
        max_dw0 = std::max(max_dw0, std::abs(g0[i]));
      }
      auto w1 = weights->MutableW1(e).data();
      const auto g1 = bwd.grads.dw1[static_cast<size_t>(e)].data();
      for (size_t i = 0; i < w1.size(); ++i) {
        w1[i] -= lr * g1[i];
      }
    }
    workload.sharded_weights =
        std::make_shared<ShardedExpertWeights>(*weights, parallel.tp);
    workload.weights = std::move(weights);

    table.AddRow({std::to_string(step), FormatDouble(loss, 4),
                  FormatDouble(max_dw0, 4),
                  FormatUsAsMs(bwd.duration_us)});
  }
  std::cout << table.Render() << "\n";
  std::cout << "Loss decreases monotonically: COMET's rescheduled tiles and "
               "fine-grained token movement leave the math bit-exact.\n";
  return 0;
}
