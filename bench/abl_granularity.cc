// Ablation: decomposition granularity (paper §3.1.2).
//
// "At the finest granularity, the shared tensor can be split into individual
// rows or columns ... However, this level of granularity results in low
// computational efficiency." This bench makes the trade-off measurable: it
// sweeps the fused kernels' tile sizes from token-wise slivers to
// coarse blocks. Tiny tiles overlap perfectly but waste the tensor cores;
// huge tiles keep the GEMM efficient but serialize against communication
// (each tile waits for all of its rows). The paper's choice -- native
// 128x128 GEMM tiles, rescheduled -- sits at the sweet spot.
#include "bench/bench_common.h"
#include "core/fused_kernel.h"
#include "exec/op_costs.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(abl_granularity, "Ablation: shared-tensor decomposition granularity (paper 3.1.2)") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const auto cluster = H800Cluster(8);
  const OpCostModel costs(cluster);
  const MoeWorkload w = TimedWorkload(model, ParallelConfig{1, 8}, 16384);

  PrintHeader("Ablation: decomposition granularity (tile size sweep)",
              "E=8 topk=2 M=16384 EP=8, H800x8; fused kernels on rank 0, ms");

  AsciiTable table({"tile (m x n)", "layer0 total", "layer0 stall",
                    "layer1 total", "layer1 comm tail"});
  for (const int64_t tile : {1, 8, 16, 32, 64, 128, 256, 512}) {
    FusedKernelConfig config;
    config.total_blocks = cluster.gpu.num_sms;
    config.comm_blocks = 20;
    config.tile_m = tile;
    config.tile_n = tile;
    const auto l0 = SimulateLayer0Fused(w.plan, 0, costs, config);
    const auto l1 = SimulateLayer1Fused(w.plan, 0, costs, config);
    table.AddRow({std::to_string(tile) + " x " + std::to_string(tile),
                  FormatUsAsMs(l0.duration_us), FormatUsAsMs(l0.stall_us),
                  FormatUsAsMs(l1.duration_us),
                  FormatUsAsMs(l1.comm_makespan_us -
                               l1.compute_makespan_us)});
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote(
      "no direct figure (a design-choice ablation of §3.1.2): expected "
      "U-shape with the optimum at the native GEMM tile (128).");
  return 0;
}
