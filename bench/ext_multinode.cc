// Extension experiment: scaling a Qwen2-style MoE layer beyond one node.
// The paper deploys COMET on clusters "comprising over ten thousand GPUs"
// (§1) but evaluates on single 8-GPU servers; this bench extends the
// evaluation to multi-node expert parallelism over NDR InfiniBand, where the
// inter-node fabric is ~3.5x slower than NVLink and communication dominates
// -- exactly the regime fine-grained overlap is built for.
//
// Weak scaling: tokens per GPU held constant while EP grows with the world.
// Also reports the direct vs 2D-hierarchical all-to-all cost (Tutel's
// algorithm, §6), which trades two extra intra-node phases for far fewer
// inter-node messages.
#include "bench/bench_common.h"
#include "comm/collectives.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(ext_multinode, "Extension: multi-node expert parallelism over InfiniBand") {
  ModelConfig model = Qwen2Moe();  // E=64 supports EP up to 64
  const int64_t tokens_per_gpu = 1024;

  PrintHeader("Extension: multi-node weak scaling",
              "Qwen2-MoE experts, TP=1, EP=world, 8 GPUs/node + NDR IB, "
              "tokens/GPU=1024, times in ms");

  AsciiTable table({"nodes", "world", "Megatron", "Tutel", "Comet",
                    "speedup", "inter-node bytes", "hidden comm"});
  for (const int nodes : {1, 2, 4, 8}) {
    const int world = nodes * 8;
    const ClusterSpec cluster = nodes == 1 ? H800Cluster(8)
                                           : MultiNodeH800Cluster(nodes, 8);
    const ParallelConfig parallel{1, world};
    const MoeWorkload w =
        TimedWorkload(model, parallel, tokens_per_gpu * world);

    MegatronExecutor megatron = MakeMegatronCutlass();
    TutelExecutor tutel;
    CometExecutor comet;
    const double base =
        megatron.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    const double tut =
        tutel.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    const LayerExecution run = comet.Run(w, cluster, ExecMode::kTimedOnly);

    const auto dispatch_bytes = w.plan.DispatchBytes(
        static_cast<double>(model.embedding) * 2.0);
    table.AddRow({std::to_string(nodes), std::to_string(world),
                  FormatUsAsMs(base), FormatUsAsMs(tut),
                  FormatUsAsMs(run.duration_us),
                  FormatSpeedup(base / run.duration_us),
                  FormatPercent(InterNodeByteFraction(cluster, dispatch_bytes)),
                  FormatPercent(run.timeline.HiddenCommFraction())});
  }
  std::cout << table.Render() << "\n";

  std::cout << "-- direct vs 2D-hierarchical all-to-all "
               "(uniform dispatch traffic) --\n";
  AsciiTable a2a({"nodes", "world", "direct (ms)", "hierarchical (ms)",
                  "ratio"});
  for (const int nodes : {2, 4, 8, 16}) {
    const ClusterSpec cluster = MultiNodeH800Cluster(nodes, 8);
    const int world = cluster.world_size;
    // Per-pair bytes of a uniform Qwen2 dispatch at 1024 tokens/GPU.
    const double per_pair = static_cast<double>(tokens_per_gpu) *
                            static_cast<double>(model.topk) *
                            static_cast<double>(model.embedding) * 2.0 /
                            static_cast<double>(world);
    const std::vector<std::vector<double>> bytes(
        static_cast<size_t>(world),
        std::vector<double>(static_cast<size_t>(world), per_pair));
    const double direct = AllToAllCostUs(cluster, bytes);
    const double hier = HierarchicalAllToAllCostUs(cluster, bytes);
    a2a.AddRow({std::to_string(nodes), std::to_string(world),
                FormatUsAsMs(direct), FormatUsAsMs(hier),
                FormatSpeedup(direct / hier)});
  }
  std::cout << a2a.Render() << "\n";
  PrintPaperNote(
      "no direct figure (paper evaluates single nodes; production runs on "
      "10k-GPU clusters). Expected shape: COMET's advantage grows with the "
      "inter-node communication share; hierarchical A2A beats direct as "
      "node count rises.");
  return 0;
}
