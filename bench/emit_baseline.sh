#!/usr/bin/env bash
# Emits a perf-trajectory baseline: every registered bench, repeat 3, median
# per metric, as BENCH_<PR>.json at the repo root. Later PRs diff their own
# emission against the committed files to prove speedups / catch regressions.
#
# usage: bench/emit_baseline.sh [OUT_JSON] [BENCH_BINARY] [EXTRA_ARGS...]
#   OUT_JSON      output path (default: BENCH_2.json in the repo root)
#   BENCH_BINARY  comet_bench driver (default: build/bench/comet_bench)
#   EXTRA_ARGS    forwarded to the driver verbatim (e.g. --faults to include
#                 the serve_loadgen fail-then-recover recovery sweep)
#
# Notes:
#   * wall_ms records are machine-dependent; the simulated-time metrics
#     (latency reductions, speedups, hidden-comm ratios) must be stable
#     across machines AND across thread counts -- those are what regression
#     checks should pin.
#   * COMET_THREADS (or comet_bench --threads) controls the worker pool.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT="${1:-"$ROOT/BENCH_2.json"}"
BIN="${2:-"$ROOT/build/bench/comet_bench"}"

if [[ ! -x "$BIN" ]]; then
  echo "emit_baseline.sh: bench driver not found at $BIN (build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$BIN" --repeat 3 --median --json "$OUT" "${@:3}"
echo "wrote $OUT"
