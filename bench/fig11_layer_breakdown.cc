// Figure 11: time breakdown of one MoE layer.
//
// Setup: EP = 8, TP = 1, E = 8, topk = 2, M = 16384, Mixtral expert shapes,
// 8x H800. For every system we report per-category busy time, the layer
// duration, and the fraction of communication wall-clock hidden behind
// computation. Paper: COMET hides 86.5% of communication on average;
// FasterMoE 29.2%; Tutel 68.6%; the Megatron variants overlap nothing.
#include "bench/bench_common.h"
#include "sim/timeline.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig11_layer_breakdown, "Figure 11: MoE layer time breakdown + hidden communication") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const ParallelConfig parallel{1, 8};
  const int64_t m_tokens = 16384;
  const auto cluster = H800Cluster(8);
  const MoeWorkload workload = TimedWorkload(model, parallel, m_tokens);

  PrintHeader("Figure 11: MoE layer time breakdown",
              "EP=8 TP=1 E=8 topk=2 M=16384, H800x8, times in ms");

  AsciiTable table({"system", "gating", "l0-comm", "l0-comp", "act", "l1-comp",
                    "l1-comm", "host", "total", "hidden comm"});
  SystemSet systems;
  for (MoeLayerExecutor* exec : systems.All()) {
    const LayerExecution run =
        exec->Run(workload, cluster, ExecMode::kTimedOnly);
    const Timeline& tl = run.timeline;
    // Wall-clock union per category: fused kernels run thousands of tile
    // intervals in parallel, so summed busy time would overcount.
    table.AddRow({exec->name(),
                  FormatUsAsMs(tl.UnionTime(OpCategory::kGating)),
                  FormatUsAsMs(tl.UnionTime(OpCategory::kLayer0Comm)),
                  FormatUsAsMs(tl.UnionTime(OpCategory::kLayer0Comp)),
                  FormatUsAsMs(tl.UnionTime(OpCategory::kActivation)),
                  FormatUsAsMs(tl.UnionTime(OpCategory::kLayer1Comp)),
                  FormatUsAsMs(tl.UnionTime(OpCategory::kLayer1Comm)),
                  FormatUsAsMs(tl.UnionTime(OpCategory::kHost)),
                  FormatUsAsMs(run.duration_us),
                  FormatPercent(tl.HiddenCommFraction())});
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote(
      "Comet hides 86.5% of communication latency; FasterMoE 29.2%, "
      "Tutel 68.6%, Megatron-Cutlass/TE 0%.");
  return 0;
}
