// Extension experiment: inference decode (tiny M). Autoregressive decoding
// feeds a handful of tokens per device per step, so the MoE layer is
// dominated by host-side kernel launches and fixed communication latencies
// -- the regime the paper calls out in §5.3 ("the advantage of COMET is
// prominent especially when M is small ... scheduling time on the host side
// predominates"). COMET's single fused kernel per pipeline collapses that
// overhead.
#include "bench/bench_common.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(ext_decode, "Extension: inference decode (tiny M) latency") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const ParallelConfig parallel{1, 8};
  const auto cluster = H800Cluster(8);

  PrintHeader("Extension: decode-size batches (small M)",
              "Mixtral experts, E=8 topk=2, EP=8, H800x8; times in us");

  AsciiTable table({"M (global)", "tokens/GPU", "Megatron-TE", "Megatron",
                    "FasterMoE", "Tutel", "Comet", "best-baseline speedup"});
  for (const int64_t m : {8, 32, 128, 512, 2048}) {
    const MoeWorkload w = TimedWorkload(model, parallel, m);
    SystemSet systems;
    double best_baseline = 1e300;
    std::vector<std::string> row{std::to_string(m), std::to_string(m / 8)};
    double comet_us = 0.0;
    for (MoeLayerExecutor* exec : systems.All()) {
      const double us =
          exec->Run(w, cluster, ExecMode::kTimedOnly).duration_us;
      row.push_back(FormatDouble(us, 1));
      if (exec == &systems.comet) {
        comet_us = us;
      } else {
        best_baseline = std::min(best_baseline, us);
      }
    }
    row.push_back(FormatSpeedup(best_baseline / comet_us));
    table.AddRow(std::move(row));
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote(
      "extends Fig. 10 leftward: the paper reports up to 2.37x at its "
      "smallest M (2048); at decode sizes the launch-overhead gap widens "
      "further.");
  return 0;
}
