// Figure 1(a): time breakdown of typical MoE models executed with
// Megatron-LM on 8x H800 -- the motivating measurement: inter-device
// communication occupies ~47% of end-to-end execution time on average.
//
// For each model (Mixtral-8x7B, Qwen2-MoE, Phi-3.5-MoE) and sequence length
// (4096, 8192) we run the Megatron-Cutlass executor and report the fraction
// of the model's time spent in MoE communication, MoE computation and
// non-MoE (attention) layers.
#include "bench/bench_common.h"
#include "runtime/model_runner.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig01_breakdown, "Figure 1(a): MoE time breakdown under Megatron-LM") {
  const auto cluster = H800Cluster(8);
  PrintHeader("Figure 1(a): time breakdown of MoE models (Megatron-LM)",
              "8x H800, EP=8 TP=1; fractions of end-to-end time");

  AsciiTable table({"model", "M", "comm", "MoE comp", "attention (non-MoE)"});
  std::vector<double> comm_fractions;
  for (const ModelConfig& model : {Mixtral8x7B(), Qwen2Moe(), Phi35Moe()}) {
    for (int64_t m : {4096, 8192}) {
      MegatronExecutor megatron = MakeMegatronCutlass();
      ModelRunConfig config;
      config.model = model;
      config.parallel = ParallelConfig{1, 8};
      config.total_tokens = m;
      const ModelRunResult run = RunModel(megatron, config, cluster);

      const Timeline& tl = run.moe_layer.timeline;
      const double comm = tl.CategoryBusy(OpCategory::kLayer0Comm) +
                          tl.CategoryBusy(OpCategory::kLayer1Comm);
      const double moe_total = run.moe_us;
      const double layer_total = run.attention_us + moe_total;
      const double comm_frac = comm / layer_total;
      comm_fractions.push_back(comm_frac);
      table.AddRow({model.name, std::to_string(m), FormatPercent(comm_frac),
                    FormatPercent((moe_total - comm) / layer_total),
                    FormatPercent(run.attention_us / layer_total)});
    }
  }
  std::cout << table.Render();
  double mean = 0.0;
  for (double f : comm_fractions) {
    mean += f;
  }
  mean /= static_cast<double>(comm_fractions.size());
  std::cout << "\nmean communication fraction: " << FormatPercent(mean)
            << "\n\n";
  PrintPaperNote("communication accounts for 47% of total execution time on "
                 "average across these models.");
  return 0;
}
