// Ablation: adaptive vs fixed thread-block assignment (paper §3.2.2).
//
// The adaptive assigner profiles the nc grid per (model, M, parallelism,
// cluster) and picks the argmin; a fixed division point is whatever constant
// a non-adaptive implementation would hard-code. The penalty of the fixed
// point depends on how far the workload sits from the configuration it was
// tuned for -- exactly the paper's motivation for adaptivity.
#include "bench/bench_common.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(abl_adaptive, "Ablation: adaptive vs fixed thread-block assignment (paper 3.2.2)") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const auto cluster = H800Cluster(8);

  PrintHeader("Ablation: adaptive vs fixed division point",
              "E=8 topk=2 M=8192, H800x8; layer duration in ms");

  AsciiTable table({"parallelism", "adaptive", "nc0/nc1", "fixed nc=8",
                    "fixed nc=32", "fixed nc=64", "adaptive gain vs worst"});
  for (const ParallelConfig& parallel :
       std::vector<ParallelConfig>{{1, 8}, {2, 4}, {4, 2}, {8, 1}}) {
    const MoeWorkload workload = TimedWorkload(model, parallel, 8192);
    CometExecutor adaptive{CometOptions{.adaptive = true}};
    const double adaptive_us =
        adaptive.Run(workload, cluster, ExecMode::kTimedOnly).duration_us;
    std::vector<std::string> row = {parallel.ToString(),
                                    FormatUsAsMs(adaptive_us),
                                    std::to_string(adaptive.last_layer0_comm_blocks()) +
                                        "/" +
                                        std::to_string(adaptive.last_layer1_comm_blocks())};
    double worst = adaptive_us;
    for (int nc : {8, 32, 64}) {
      CometExecutor fixed{
          CometOptions{.adaptive = false, .fixed_comm_blocks = nc}};
      const double fixed_us =
          fixed.Run(workload, cluster, ExecMode::kTimedOnly).duration_us;
      row.push_back(FormatUsAsMs(fixed_us));
      worst = std::max(worst, fixed_us);
    }
    row.push_back(FormatSpeedup(worst / adaptive_us));
    table.AddRow(std::move(row));
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote("§3.2.2: no single division point fits all configurations; "
                 "profiled metadata lets the runtime pick per setup.");
  return 0;
}
