// Figure 10: single MoE layer duration vs input token length.
//
// Setup: expert parallelism EP = 8 (TP = 1), Mixtral expert shapes, H800x8.
// Left panel E = 8 / topk = 2; right panel E = 32 / topk = 4. M sweeps
// 2048..32768 (each device holds M/W tokens before dispatch). Paper: COMET
// achieves 1.28x-2.37x speedup over the baselines on average, most prominent
// at small M where host-side scheduling dominates kernel-per-op systems.
#include "bench/bench_common.h"
#include "util/stats.h"

using namespace comet;
using namespace comet::bench;

namespace {

void RunPanel(int64_t experts, int64_t topk) {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = experts;
  model.topk = topk;
  const ParallelConfig parallel{1, 8};
  const auto cluster = H800Cluster(8);

  std::cout << "--- E=" << experts << ", topk=" << topk
            << " (durations in ms) ---\n";
  AsciiTable table({"M", "Megatron-TE", "Megatron-Cutlass", "FasterMoE",
                    "Tutel", "Comet", "best-baseline/Comet"});
  SystemSet systems;
  std::vector<double> speedups;
  for (int64_t m : {2048, 4096, 8192, 16384, 32768}) {
    const MoeWorkload workload = TimedWorkload(model, parallel, m);
    std::vector<std::string> row = {std::to_string(m)};
    double best_baseline = 0.0;
    double comet_us = 0.0;
    std::vector<double> baseline_us;
    for (MoeLayerExecutor* exec : systems.All()) {
      const LayerExecution run =
          exec->Run(workload, cluster, ExecMode::kTimedOnly);
      row.push_back(FormatUsAsMs(run.duration_us));
      if (exec == &systems.comet) {
        comet_us = run.duration_us;
      } else {
        baseline_us.push_back(run.duration_us);
      }
    }
    best_baseline = *std::min_element(baseline_us.begin(), baseline_us.end());
    row.push_back(FormatSpeedup(best_baseline / comet_us));
    for (double b : baseline_us) {
      speedups.push_back(b / comet_us);
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.Render();
  std::cout << "speedup vs baselines: min " << FormatSpeedup(*std::min_element(
                   speedups.begin(), speedups.end()))
            << ", mean " << FormatSpeedup(GeometricMean(speedups)) << ", max "
            << FormatSpeedup(*std::max_element(speedups.begin(),
                                               speedups.end()))
            << "\n\n";
}

}  // namespace

REGISTER_BENCH(fig10_token_length, "Figure 10: MoE layer duration vs input token length") {
  PrintHeader("Figure 10: single MoE layer duration vs token length",
              "EP=8 TP=1, Mixtral expert shapes, H800x8");
  RunPanel(8, 2);
  RunPanel(32, 4);
  PrintPaperNote("Comet achieves 1.28x to 2.37x speedup vs baselines on "
                 "average across M; advantage most prominent at small M.");
  return 0;
}
