// Microbenchmark: the timing-plane simulator itself -- how fast the host can
// simulate MoE layers. The simulator is the repo's hot path (every figure
// bench is thousands of simulated layers), so its throughput gates how large
// a sweep the bench suite can afford.
#include "bench/bench_common.h"
#include "sim/bandwidth_queue.h"
#include "sim/stream_sim.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(micro_sim, "Micro: timing-plane simulator throughput") {
  PrintHeader("Micro: simulator throughput",
              "host wall time to simulate one MoE layer / sim primitives");
  AsciiTable table({"op", "setup", "ns/op"});

  auto record = [&](const std::string& op, const std::string& setup,
                    const TimedLoop& loop) {
    table.AddRow({op, setup, FormatDouble(loop.ns_per_iter, 0)});
    reporter.Report(op + "/" + setup + "/ns_per_op", loop.ns_per_iter, "ns");
  };

  // Full timed-only layer simulation, COMET vs the slowest baseline style.
  const auto cluster = H800Cluster(8);
  for (int64_t tokens : {int64_t{4096}, int64_t{16384}}) {
    const MoeWorkload w =
        TimedWorkload(Mixtral8x7B(), ParallelConfig{1, 8}, tokens);
    SystemSet systems;
    record("comet_layer_sim", "M=" + std::to_string(tokens), TimeIt([&] {
             const LayerExecution run =
                 systems.comet.Run(w, cluster, ExecMode::kTimedOnly);
             DoNotOptimize(run.duration_us);
           }));
    record("megatron_layer_sim", "M=" + std::to_string(tokens), TimeIt([&] {
             const LayerExecution run =
                 systems.megatron_cutlass.Run(w, cluster, ExecMode::kTimedOnly);
             DoNotOptimize(run.duration_us);
           }));
  }

  // StreamSim: host launch loop for a kernel-per-op system.
  for (int kernels : {256, 2048}) {
    record("stream_sim_launches", "n=" + std::to_string(kernels), TimeIt([&] {
             StreamSim sim(/*launch_overhead_us=*/2.5);
             const int stream = sim.AddStream("compute");
             for (int i = 0; i < kernels; ++i) {
               sim.Launch(stream, "k", OpCategory::kLayer0Comp, 10.0);
             }
             DoNotOptimize(sim.Finish());
           }));
  }

  // BandwidthQueue: FIFO transfer scheduling, the fused kernels' comm model.
  for (int jobs : {256, 2048}) {
    std::vector<TransferJob> batch(static_cast<size_t>(jobs));
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].ready_us = static_cast<double>(i) * 0.5;
      batch[i].bytes = 64.0 * 1024;
    }
    BandwidthQueue queue(/*bandwidth_bytes_per_us=*/160e3, /*latency_us=*/3.0);
    record("bandwidth_queue_schedule", "n=" + std::to_string(jobs), TimeIt([&] {
             DoNotOptimize(queue.Makespan(batch));
           }));
  }

  std::cout << table.Render() << "\n";
  return 0;
}
