// Ablation: thread-block specialization vs vertical fusion (paper §3.2.1).
//
// Vertical fusion embeds token I/O into the GEMM thread blocks themselves:
// every block pays the remote-fetch latency inline, column tiles of the same
// rows re-fetch them, and the broken TMA/MMA pipeline slows the math. The
// paper rejects this design in favour of thread-block-level isolation; this
// bench quantifies the gap.
#include "bench/bench_common.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(abl_specialization, "Ablation: thread-block specialization vs vertical fusion (paper 3.2.1)") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const ParallelConfig parallel{1, 8};
  const auto cluster = H800Cluster(8);

  PrintHeader("Ablation: thread-block specialization vs vertical fusion",
              "E=8 topk=2 EP=8 TP=1, H800x8; layer duration in ms");

  AsciiTable table({"M", "specialized", "vertical fusion", "specialization gain"});
  for (int64_t m : {4096, 8192, 16384, 32768}) {
    const MoeWorkload workload = TimedWorkload(model, parallel, m);
    CometExecutor specialized{CometOptions{.specialized = true}};
    CometExecutor vertical{CometOptions{.specialized = false}};
    const double spec_us =
        specialized.Run(workload, cluster, ExecMode::kTimedOnly).duration_us;
    const double vert_us =
        vertical.Run(workload, cluster, ExecMode::kTimedOnly).duration_us;
    table.AddRow({std::to_string(m), FormatUsAsMs(spec_us),
                  FormatUsAsMs(vert_us), FormatSpeedup(vert_us / spec_us)});
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote("design-choice ablation (no paper figure): §3.2.1 argues "
                 "isolation keeps GEMM blocks at full efficiency.");
  return 0;
}
