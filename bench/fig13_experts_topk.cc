// Figure 13: single MoE layer duration for E in {8, 16} and topk in
// {1, 2, 4, 8} (M=16384, EP=8, TP=1, Mixtral shapes, H800x8).
//
// Paper: duration grows with topk (more routed computation); COMET is
// consistently fastest with speedups between 1.16x and 1.83x.
#include "bench/bench_common.h"
#include "util/stats.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig13_experts_topk, "Figure 13: MoE layer duration vs experts and top-k") {
  const int64_t m_tokens = 16384;
  const ParallelConfig parallel{1, 8};
  const auto cluster = H800Cluster(8);

  PrintHeader("Figure 13: MoE layer duration vs E and topk",
              "M=16384, EP=8 TP=1, Mixtral shapes, H800x8; durations in ms");

  std::vector<double> speedups;
  for (int64_t experts : {8, 16}) {
    std::cout << "--- E=" << experts << " ---\n";
    AsciiTable table({"topk", "Megatron-TE", "Megatron-Cutlass", "FasterMoE",
                      "Tutel", "Comet"});
    for (int64_t topk : {1, 2, 4, 8}) {
      ModelConfig model = Mixtral8x7B();
      model.num_experts = experts;
      model.topk = topk;
      const MoeWorkload workload = TimedWorkload(model, parallel, m_tokens);
      SystemSet systems;
      std::vector<std::string> row = {std::to_string(topk)};
      double comet_us = 0.0;
      std::vector<double> baselines;
      for (MoeLayerExecutor* exec : systems.All()) {
        const LayerExecution run =
            exec->Run(workload, cluster, ExecMode::kTimedOnly);
        row.push_back(FormatUsAsMs(run.duration_us));
        if (exec == &systems.comet) {
          comet_us = run.duration_us;
        } else {
          baselines.push_back(run.duration_us);
        }
      }
      for (double b : baselines) {
        speedups.push_back(b / comet_us);
      }
      table.AddRow(std::move(row));
    }
    std::cout << table.Render() << "\n";
  }
  std::cout << "speedup vs baselines: min "
            << FormatSpeedup(*std::min_element(speedups.begin(), speedups.end()))
            << ", mean " << FormatSpeedup(GeometricMean(speedups)) << ", max "
            << FormatSpeedup(*std::max_element(speedups.begin(),
                                               speedups.end()))
            << "\n\n";
  PrintPaperNote("Comet yields 1.16x to 1.83x speedup across E and topk; "
                 "duration increases with topk.");
  return 0;
}
