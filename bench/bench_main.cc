// The unified driver: all paper-figure benches behind one binary.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return comet::bench::BenchMain(argc, argv);
}
