// Thin per-figure binary: compiled once per bench with COMET_BENCH_ONLY set
// to the bench's registered name, linked against that bench's object file.
#include "bench/bench_common.h"

#ifndef COMET_BENCH_ONLY
#error "COMET_BENCH_ONLY must name the registered bench"
#endif

int main() { return comet::bench::RunSingleBench(COMET_BENCH_ONLY); }
