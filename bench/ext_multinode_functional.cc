// Extension experiment: the concurrent multi-rank FUNCTIONAL data plane.
//
// ext_multinode prices multi-node expert parallelism on the timing plane;
// this bench executes it for real: R expert-parallel ranks run as dedicated
// concurrent tasks (runtime/rank_group.h), exchanging token rows through the
// NVSHMEM-style symmetric heap with put-with-signal, while each group's
// combine blocks on the arrival counters -- the paper's producer/consumer
// pipeline, host-side. The serial run is fully serial (num_threads = 1:
// rank loop un-overlapped AND tile loops inline); the concurrent run gets R
// rank threads plus up-to-R-way tile parallelism, so the wall-clock delta
// bundles both effects -- it is a liveness/throughput smoke, not an
// isolated rank-overlap measurement.
//
// The number that must never move is max|comet - reference|: concurrency is
// only legitimate because every reduction orders its terms by coordinates,
// so the EP=R concurrent run is bit-identical to the sharded reference.
// Wall times are machine-dependent; the diff metrics are not.
#include "bench/bench_common.h"
#include "moe/reference_layer.h"

#include <algorithm>
#include <chrono>

using namespace comet;
using namespace comet::bench;

namespace {

double WallMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

REGISTER_BENCH(ext_multinode_functional,
               "Extension: concurrent multi-rank functional data plane (--ranks)") {
  const int ranks = BenchRanks();
  const int64_t tokens_per_rank = 512;

  // Functional-scale layer: small enough to materialize, big enough that
  // the per-rank tile loops dominate the rank-thread bookkeeping.
  ModelConfig model;
  model.name = "func-ep";
  model.layers = 1;
  model.num_experts = 4 * ranks;
  model.topk = 2;
  model.embedding = 256;
  model.ffn_hidden = 512;

  WorkloadOptions options;
  options.seed = 11;
  options.load_std = 0.02;
  const ParallelConfig parallel{1, ranks};
  const MoeWorkload w =
      MakeWorkload(model, parallel, tokens_per_rank * ranks, options);
  const ClusterSpec cluster = (ranks > 8 && ranks % 8 == 0)
                                  ? MultiNodeH800Cluster(ranks / 8, 8)
                                  : H800Cluster(ranks);

  PrintHeader("Extension: concurrent multi-rank functional data plane",
              "EP=" + std::to_string(ranks) + " TP=1, " +
                  std::to_string(tokens_per_rank) + " tokens/rank, E=" +
                  std::to_string(model.num_experts) +
                  ", N=256 K=512; real numerics through the symmetric heap");

  const auto reference = ShardedReferenceMoeLayer(w);

  auto run_functional = [&](int num_threads, double& max_diff) {
    CometOptions comet_options;
    comet_options.num_threads = num_threads;
    CometExecutor comet{comet_options};
    LayerExecution run;
    const double ms = WallMs(
        [&] { run = comet.Run(w, cluster, ExecMode::kFunctional); });
    max_diff = 0.0;
    for (size_t g = 0; g < reference.size(); ++g) {
      max_diff = std::max(
          max_diff,
          static_cast<double>(Tensor::MaxAbsDiff(run.outputs[g], reference[g])));
    }
    return ms;
  };

  double diff_serial = 0.0;
  double diff_concurrent = 0.0;
  const double serial_ms = run_functional(1, diff_serial);
  const double concurrent_ms = run_functional(ranks, diff_concurrent);

  int64_t remote_rows = 0;
  int64_t total_rows = 0;
  AsciiTable table({"rank", "rows", "remote rows"});
  for (int r = 0; r < ranks; ++r) {
    remote_rows += w.plan.RemoteRows(r);
    total_rows += w.plan.ForRank(r).TotalRows();
    table.AddRow({std::to_string(r),
                  std::to_string(w.plan.ForRank(r).TotalRows()),
                  std::to_string(w.plan.RemoteRows(r))});
  }
  std::cout << table.Render() << "\n";
  std::cout << "serial (1 thread):        " << serial_ms << " ms, max|diff| = "
            << diff_serial << "\n";
  std::cout << "concurrent (" << ranks << " rank threads): " << concurrent_ms
            << " ms, max|diff| = " << diff_concurrent << "\n\n";

  reporter.Report("max_abs_diff_serial", diff_serial);
  reporter.Report("max_abs_diff_concurrent", diff_concurrent);
  reporter.Report("remote_row_fraction",
                  total_rows > 0 ? static_cast<double>(remote_rows) /
                                       static_cast<double>(total_rows)
                                 : 0.0);
  reporter.Report("functional_serial_ms", serial_ms, "ms");
  reporter.Report("functional_concurrent_ms", concurrent_ms, "ms");

  // --- low-precision pass (--dtype): the same layer, 2-byte data plane ------
  //
  // Two yardsticks: the same-dtype sharded reference (must be EXACTLY 0 --
  // determinism survives quantization) and the f32-compute reference over
  // the same quantized operands (bounded rounding error, reported so the
  // trajectory catches a precision regression).
  bool lp_ok = true;
  const DType lp = BenchDType();
  if (lp != DType::kF32) {
    const std::string dt = DTypeName(lp);
    WorkloadOptions lp_options = options;
    lp_options.dtype = lp;
    const MoeWorkload w_lp =
        MakeWorkload(model, parallel, tokens_per_rank * ranks, lp_options);
    const auto lp_reference = ShardedReferenceMoeLayer(w_lp, lp);
    const auto f32_reference = ShardedReferenceMoeLayer(w_lp, DType::kF32);

    CometOptions lp_comet_options;
    lp_comet_options.num_threads = ranks;
    lp_comet_options.compute_dtype = lp;
    CometExecutor lp_comet{lp_comet_options};
    LayerExecution lp_run;
    const double lp_ms = WallMs(
        [&] { lp_run = lp_comet.Run(w_lp, cluster, ExecMode::kFunctional); });

    double lp_diff = 0.0;
    double lp_err_vs_f32 = 0.0;
    for (size_t g = 0; g < lp_reference.size(); ++g) {
      lp_diff = std::max(lp_diff, static_cast<double>(Tensor::MaxAbsDiff(
                                      lp_run.outputs[g], lp_reference[g])));
      lp_err_vs_f32 = std::max(
          lp_err_vs_f32, static_cast<double>(Tensor::MaxAbsDiff(
                             lp_run.outputs[g], f32_reference[g])));
    }
    std::cout << dt << " concurrent (" << ranks << " rank threads): " << lp_ms
              << " ms, max|diff vs " << dt << " ref| = " << lp_diff
              << ", max|diff vs f32 ref| = " << lp_err_vs_f32 << "\n\n";
    reporter.Report("max_abs_diff_" + dt + "_concurrent", lp_diff);
    reporter.Report("max_abs_err_" + dt + "_vs_f32", lp_err_vs_f32);
    reporter.Report("functional_" + dt + "_concurrent_ms", lp_ms, "ms");
    lp_ok = lp_diff == 0.0;
  }

  PrintPaperNote(
      "no direct figure (the paper's fused kernels do this on-GPU; here the "
      "EP pipeline runs host-side). Expected: both diffs are exactly 0 -- "
      "the concurrent rank group reproduces the reference bit-for-bit, at "
      "f32 and at the 2-byte dtypes.");
  return diff_serial == 0.0 && diff_concurrent == 0.0 && lp_ok ? 0 : 1;
}
