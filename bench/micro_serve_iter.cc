// Micro: steady-state serving iteration cost and allocation count.
//
// Drives MoeServer through the dispatcher hooks (BeginRun / Offer /
// StepIteration) under saturating load -- the same drive pattern
// alloc_test pins -- and measures two windows per config:
//
//   cold:   the first iterations after BeginRun, while pools, nc memo
//           entries and executor output slabs are still growing. This is
//           where the refactor MOVED the allocations: its allocs/iter is
//           the "before" picture of the old allocate-per-iteration path.
//   steady: a mid-run window after warm-up. The zero-allocation contract
//           says allocs/iter here is exactly 0; the bench FAILS (non-zero
//           exit) if it is not, so a Release CI smoke of this binary pins
//           the contract outside the test tier too.
//
// ns/iteration and iterations/s are host wall-clock (the serving loop is
// real host work; only the modelled GPU time is simulated), so those two
// are machine-dependent. allocs/iteration is exact and reproducible.
#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "hw/gpu_spec.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/alloc_counter.h"
#include "util/check.h"

using namespace comet;
using namespace comet::bench;

namespace {

ModelConfig IterBenchModel() {
  ModelConfig m;
  m.name = "serve-bench";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 64;
  m.ffn_hidden = 128;
  return m;
}

ServeOptions IterServeOptions(int ep, int num_threads) {
  ServeOptions o;
  o.model = IterBenchModel();
  o.parallel = ParallelConfig{1, ep};
  o.seed = 20260807;
  o.dtype = BenchDType();
  o.num_threads = num_threads;
  o.token_budget = 32;
  o.max_active = 16;
  o.queue_capacity = 64;
  return o;
}

struct WindowStats {
  double ns_per_iter = 0.0;
  double allocs_per_iter = 0.0;
  double bytes_per_iter = 0.0;
  int64_t tokens = 0;
};

// Runs `iters` saturated iterations, timing and allocation-counting the
// whole window. The AllocCounter's enabled-path cost is a few atomic adds
// per alloc -- zero allocs in steady state means zero timing skew there.
template <typename OfferFn>
WindowStats MeasureWindow(MoeServer& server, OfferFn&& offer_some, int iters,
                          double* now) {
  using Clock = std::chrono::steady_clock;
  WindowStats out;
  const int64_t tokens_before = server.View().batched_tokens;
  util::AllocStats stats;
  const auto start = Clock::now();
  {
    util::AllocWindow w;
    for (int i = 0; i < iters; ++i) {
      offer_some();
      double end = 0.0;
      COMET_CHECK(server.StepIteration(*now, &end))
          << "bench backlog drained mid-window";
      *now = end;
    }
    stats = w.Snapshot();
  }
  const double elapsed_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  out.ns_per_iter = elapsed_ns / static_cast<double>(iters);
  out.allocs_per_iter =
      static_cast<double>(stats.allocs) / static_cast<double>(iters);
  out.bytes_per_iter =
      static_cast<double>(stats.bytes) / static_cast<double>(iters);
  out.tokens = server.View().batched_tokens - tokens_before;
  return out;
}

}  // namespace

REGISTER_BENCH(micro_serve_iter,
               "Micro: serving StepIteration ns + allocs, cold vs steady") {
  PrintHeader("Serving iteration: cold (warm-up) vs steady state",
              "tiny MoE (E=8 topk=2 N=64 K=128), budget 32 tokens/iter, "
              "max_active 16; allocs counted by the interposed operator new");

  constexpr int kColdIters = 32;
  constexpr int kSteadyIters = 512;
  constexpr int kOfferPerIter = 4;
  constexpr int64_t kRequests =
      static_cast<int64_t>(kColdIters + kSteadyIters + 64) * kOfferPerIter;

  bool steady_state_clean = true;
  AsciiTable table({"threads", "ep", "cold allocs/it", "cold ns/it",
                    "steady allocs/it", "steady ns/it", "iters/s", "tok/it"});
  for (const int num_threads : {1, 8}) {
    for (const int ep : {1, 4}) {
      // Saturating backlog, all arrivals at t=0 (prompt 4..16, decode 0..7:
      // offered tokens/iter comfortably exceed the 32-token budget).
      std::vector<RequestSpec> arrivals;
      int64_t max_prompt = 0, max_decode = 0, total_tokens = 0;
      for (int64_t i = 0; i < kRequests; ++i) {
        RequestSpec r;
        r.id = i;
        r.seed = static_cast<uint64_t>(i) * 1000003ULL + 5;
        r.prompt_tokens = 4 + (i % 13);
        r.decode_tokens = i % 8;
        r.arrival_us = 0.0;
        max_prompt = std::max(max_prompt, r.prompt_tokens);
        max_decode = std::max(max_decode, r.decode_tokens);
        total_tokens += r.TotalTokens();
        arrivals.push_back(r);
      }

      MoeServer server(IterServeOptions(ep, num_threads), H800Cluster(ep));
      MoeServer::RunBounds bounds;
      bounds.expected_requests = kRequests;
      bounds.expected_tokens = total_tokens;
      bounds.max_prompt_tokens = max_prompt;
      bounds.max_decode_tokens = max_decode;
      server.BeginRun(bounds);

      size_t next = 0;
      const auto offer_some = [&] {
        for (int k = 0; k < kOfferPerIter && next < arrivals.size(); ++k) {
          server.Offer(arrivals[next++]);
        }
      };

      double now = 0.0;
      const WindowStats cold =
          MeasureWindow(server, offer_some, kColdIters, &now);
      const WindowStats steady =
          MeasureWindow(server, offer_some, kSteadyIters, &now);
      if (steady.allocs_per_iter != 0.0) {
        steady_state_clean = false;
      }

      const double iters_per_s = 1e9 / steady.ns_per_iter;
      const double tok_per_iter =
          static_cast<double>(steady.tokens) / kSteadyIters;
      table.AddRow({std::to_string(num_threads), std::to_string(ep),
                    FormatDouble(cold.allocs_per_iter, 2),
                    FormatDouble(cold.ns_per_iter, 0),
                    FormatDouble(steady.allocs_per_iter, 2),
                    FormatDouble(steady.ns_per_iter, 0),
                    FormatDouble(iters_per_s, 0),
                    FormatDouble(tok_per_iter, 1)});

      const std::string prefix =
          "t" + std::to_string(num_threads) + "_ep" + std::to_string(ep) + "_";
      reporter.Report(prefix + "cold_allocs_per_iter", cold.allocs_per_iter);
      reporter.Report(prefix + "cold_bytes_per_iter", cold.bytes_per_iter,
                      "B");
      reporter.Report(prefix + "cold_ns_per_iter", cold.ns_per_iter, "ns");
      reporter.Report(prefix + "steady_allocs_per_iter",
                      steady.allocs_per_iter);
      reporter.Report(prefix + "steady_ns_per_iter", steady.ns_per_iter,
                      "ns");
      reporter.Report(prefix + "steady_iters_per_s", iters_per_s, "it/s");
      reporter.Report(prefix + "steady_tokens_per_iter", tok_per_iter,
                      "tok");
    }
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote(
      "no paper figure: pins the serving loop's zero-allocation contract. "
      "Expected shape: cold allocs/it > 0 (pool buffers, nc memo, output "
      "slabs growing to their high-water marks -- the old path paid these "
      "EVERY iteration), steady allocs/it exactly 0 at every thread count "
      "and EP width; steady ns/it is host scheduling + functional-plane "
      "compute for a 32-token batch.");

  if (!steady_state_clean) {
    std::cout << "FAIL: steady-state allocs/iteration > 0 -- the "
                 "zero-allocation contract is broken (run with "
                 "COMET_ALLOC_TRAP=1 to trap the first allocation)\n";
    return 1;
  }
  return 0;
}
