// Microbenchmark (google-benchmark): routing, plan construction and the
// schedule builders -- the host-side metadata work COMET performs per layer.
#include <benchmark/benchmark.h>

#include "core/reschedule.h"
#include "moe/route_plan.h"
#include "moe/router.h"
#include "moe/workload.h"
#include "util/rng.h"

namespace comet {
namespace {

void BM_SyntheticRouting(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  Rng rng(1);
  const auto load = rng.LoadVectorWithStd(8, 0.032);
  for (auto _ : state) {
    SyntheticRouter router(load, 42);
    RoutingTable table = router.Route(tokens, 2);
    benchmark::DoNotOptimize(table.tokens.data());
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_SyntheticRouting)->Arg(4096)->Arg(16384);

void BM_RoutePlanBuild(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  ModelConfig model = Mixtral8x7B();
  const ParallelConfig parallel{1, 8};
  Placement placement(model, parallel, tokens);
  Rng rng(2);
  SyntheticRouter router(rng.LoadVectorWithStd(8, 0.0), 7);
  const RoutingTable routing = router.Route(tokens, model.topk);
  for (auto _ : state) {
    RoutePlan plan(placement, routing);
    benchmark::DoNotOptimize(plan.ForRank(0).TotalRows());
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_RoutePlanBuild)->Arg(4096)->Arg(16384);

void BM_Layer0ScheduleBuild(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  ModelConfig model = Mixtral8x7B();
  const ParallelConfig parallel{1, 8};
  WorkloadOptions options;
  options.materialize = false;
  const MoeWorkload w = MakeWorkload(model, parallel, tokens, options);
  for (auto _ : state) {
    const Layer0Schedule schedule = BuildLayer0Schedule(
        w.plan.ForRank(0), 0, parallel.ep, w.placement.HiddenPerTpRank(), 128,
        128, /*reschedule=*/true);
    benchmark::DoNotOptimize(schedule.tiles.data());
  }
}
BENCHMARK(BM_Layer0ScheduleBuild)->Arg(4096)->Arg(16384);

void BM_Layer1ScheduleBuild(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  ModelConfig model = Mixtral8x7B();
  const ParallelConfig parallel{1, 8};
  WorkloadOptions options;
  options.materialize = false;
  const MoeWorkload w = MakeWorkload(model, parallel, tokens, options);
  for (auto _ : state) {
    const Layer1Schedule schedule =
        BuildLayer1Schedule(w.plan.ForRank(0), model.embedding, 128, 128,
                            /*reschedule=*/true);
    benchmark::DoNotOptimize(schedule.tiles.data());
  }
}
BENCHMARK(BM_Layer1ScheduleBuild)->Arg(4096)->Arg(16384);

}  // namespace
}  // namespace comet

BENCHMARK_MAIN();
