// Microbenchmark: routing, plan construction and the schedule builders --
// the host-side metadata work COMET performs per layer.
#include "bench/bench_common.h"
#include "core/reschedule.h"
#include "moe/route_plan.h"
#include "moe/router.h"
#include "moe/workload.h"
#include "util/rng.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(micro_dispatch, "Micro: routing, route-plan and schedule construction") {
  PrintHeader("Micro: dispatch metadata ops",
              "host-side per-layer metadata work; mean ns per call");
  AsciiTable table({"op", "tokens", "ns/op", "Mitems/s"});

  auto record = [&](const std::string& op, int64_t tokens,
                    const TimedLoop& loop) {
    const double mitems_s = tokens > 0
        ? static_cast<double>(tokens) * 1e3 / loop.ns_per_iter
        : 0.0;
    table.AddRow({op, std::to_string(tokens),
                  FormatDouble(loop.ns_per_iter, 0),
                  tokens > 0 ? FormatDouble(mitems_s, 1) : "-"});
    reporter.Report(op + "/" + std::to_string(tokens) + "/ns_per_op",
                    loop.ns_per_iter, "ns");
  };

  for (int64_t tokens : {int64_t{4096}, int64_t{16384}}) {
    Rng rng(1);
    const auto load = rng.LoadVectorWithStd(8, 0.032);
    record("synthetic_routing", tokens, TimeIt([&] {
             SyntheticRouter router(load, 42);
             RoutingTable routing = router.Route(tokens, 2);
             DoNotOptimize(routing.tokens.data());
           }));
  }

  for (int64_t tokens : {int64_t{4096}, int64_t{16384}}) {
    ModelConfig model = Mixtral8x7B();
    const ParallelConfig parallel{1, 8};
    Placement placement(model, parallel, tokens);
    Rng rng(2);
    SyntheticRouter router(rng.LoadVectorWithStd(8, 0.0), 7);
    const RoutingTable routing = router.Route(tokens, model.topk);
    record("route_plan_build", tokens, TimeIt([&] {
             RoutePlan plan(placement, routing);
             DoNotOptimize(plan.ForRank(0).TotalRows());
           }));
  }

  for (int64_t tokens : {int64_t{4096}, int64_t{16384}}) {
    ModelConfig model = Mixtral8x7B();
    const ParallelConfig parallel{1, 8};
    WorkloadOptions options;
    options.materialize = false;
    const MoeWorkload w = MakeWorkload(model, parallel, tokens, options);
    record("layer0_schedule_build", tokens, TimeIt([&] {
             const Layer0Schedule schedule = BuildLayer0Schedule(
                 w.plan.ForRank(0), 0, parallel.ep,
                 w.placement.HiddenPerTpRank(), 128, 128,
                 /*reschedule=*/true);
             DoNotOptimize(schedule.tiles.data());
           }));
    record("layer1_schedule_build", tokens, TimeIt([&] {
             const Layer1Schedule schedule =
                 BuildLayer1Schedule(w.plan.ForRank(0), model.embedding, 128,
                                     128, /*reschedule=*/true);
             DoNotOptimize(schedule.tiles.data());
           }));
  }

  std::cout << table.Render() << "\n";
  return 0;
}
