// Figure 12: single MoE layer duration under the four hybrid parallelisms
// with EP x TP = 8 (E=8, topk=2, M=8192, Mixtral shapes, H800x8).
//
// Paper observations: baselines slow down as TP grows (each expert's GEMMs
// fragment into smaller, less efficient problems and the TP reduce-scatter
// serializes), FasterMoE cannot run TP > 1 at all, and COMET stays low
// across all parallelisms.
#include "bench/bench_common.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig12_parallelism, "Figure 12: MoE layer duration across hybrid parallelisms") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const int64_t m_tokens = 8192;
  const auto cluster = H800Cluster(8);

  PrintHeader("Figure 12: MoE layer duration vs parallel strategy",
              "E=8 topk=2 M=8192, H800x8; durations in ms; '-' = unsupported");

  AsciiTable table({"parallelism", "Megatron-TE", "Megatron-Cutlass",
                    "FasterMoE", "Tutel", "Comet"});
  for (const ParallelConfig& parallel :
       std::vector<ParallelConfig>{{1, 8}, {2, 4}, {4, 2}, {8, 1}}) {
    const MoeWorkload workload = TimedWorkload(model, parallel, m_tokens);
    SystemSet systems;
    std::vector<std::string> row = {parallel.ToString()};
    for (MoeLayerExecutor* exec : systems.All()) {
      if (!exec->Supports(parallel)) {
        row.push_back("-");
        continue;
      }
      const LayerExecution run =
          exec->Run(workload, cluster, ExecMode::kTimedOnly);
      row.push_back(FormatUsAsMs(run.duration_us));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote("baseline latency grows with TP (fragmented expert GEMMs); "
                 "Comet maintains low latency across parallelisms.");
  return 0;
}
