// Figure 8: duration of the MoE layer1 fused kernel vs the number of thread
// blocks assigned to communication (nc), for several parallelisms and input
// lengths. Total thread blocks = 132 (H800 SMs).
//
// Paper observations reproduced here: a U-shaped curve with a configuration-
// dependent optimum; at TP=8/EP=1 the optimum moves from nc=18 (M=4096) to
// nc=26 (M=16384); at TP=4/EP=2, M=16384 the optimum is near nc=46.
#include "bench/bench_common.h"
#include "core/adaptive.h"
#include "exec/op_costs.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig08_division_point, "Figure 8: fused kernel duration vs communication thread blocks (nc)") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const auto cluster = H800Cluster(8);
  const OpCostModel costs(cluster);
  const AdaptiveAssigner assigner(/*candidate_stride=*/2);

  PrintHeader("Figure 8: layer1 fused-kernel duration vs nc",
              "E=8 topk=2, Mixtral shapes, H800x8 (132 SMs); durations in ms");

  const std::vector<ParallelConfig> parallels = {
      {8, 1}, {4, 2}, {2, 4}, {1, 8}};
  for (const ParallelConfig& parallel : parallels) {
    std::cout << "--- " << parallel.ToString() << " ---\n";
    AsciiTable table({"nc", "M=4096", "M=8192", "M=16384"});
    std::vector<std::vector<DivisionPointSample>> sweeps;
    for (int64_t m : {4096, 8192, 16384}) {
      const MoeWorkload w = TimedWorkload(model, parallel, m);
      FusedKernelConfig base;
      base.total_blocks = cluster.gpu.num_sms;
      sweeps.push_back(assigner.Sweep(MoePipelineStage::kLayer1, w.plan,
                                      /*rank=*/0, costs, base));
    }
    for (size_t i = 0; i < sweeps[0].size(); ++i) {
      table.AddRow({std::to_string(sweeps[0][i].comm_blocks),
                    FormatUsAsMs(sweeps[0][i].duration_us),
                    FormatUsAsMs(sweeps[1][i].duration_us),
                    FormatUsAsMs(sweeps[2][i].duration_us)});
    }
    std::cout << table.Render();
    std::cout << "optimal nc:";
    const char* labels[3] = {" M=4096 ->", "  M=8192 ->", "  M=16384 ->"};
    for (size_t s = 0; s < sweeps.size(); ++s) {
      int best_nc = 0;
      double best = 1e300;
      for (const auto& sample : sweeps[s]) {
        if (sample.duration_us < best) {
          best = sample.duration_us;
          best_nc = sample.comm_blocks;
        }
      }
      std::cout << labels[s] << " " << best_nc;
    }
    std::cout << "\n\n";
  }
  PrintPaperNote(
      "optimal nc = 18 at (TP=8, M=4096), 26 at (TP=8, M=16384), 46 at "
      "(TP=4/EP=2, M=16384); total blocks fixed at 132.");
  return 0;
}
