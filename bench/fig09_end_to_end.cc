// Figure 9: end-to-end MoE model latency for five systems across three
// models, two sequence lengths and multiple hybrid parallelisms on 8x H800.
// Attention (non-MoE) time is identical across systems -- the hatched region
// of the paper's figure. FasterMoE runs only under pure expert parallelism.
//
// Also prints the §5.2 aggregate: mean end-to-end latency reduction vs each
// baseline (paper: 34.1% vs Megatron-Cutlass, 42.6% vs Megatron-TE, 44.4% vs
// FasterMoE, 31.8% vs Tutel).
#include <map>

#include "bench/bench_common.h"
#include "runtime/model_runner.h"
#include "util/stats.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig09_end_to_end, "Figure 9: end-to-end model latency, five systems") {
  const auto cluster = H800Cluster(8);
  PrintHeader("Figure 9: end-to-end model latency",
              "8x H800; whole-model latency in ms (attention identical "
              "across systems); '-' = unsupported parallelism");

  const std::vector<ParallelConfig> parallels = {{1, 8}, {2, 4}, {4, 2}};
  std::map<std::string, std::vector<double>> reductions;  // baseline -> set

  for (const ModelConfig& model : {Mixtral8x7B(), Qwen2Moe(), Phi35Moe()}) {
    for (const ParallelConfig& parallel : parallels) {
      if (model.ffn_hidden % parallel.tp != 0 ||
          model.num_experts % parallel.ep != 0) {
        continue;
      }
      std::cout << "--- " << model.name << ", " << parallel.ToString()
                << " ---\n";
      AsciiTable table({"M", "Megatron-TE", "Megatron-Cutlass", "FasterMoE",
                        "Tutel", "Comet", "attention share"});
      for (int64_t m : {4096, 8192}) {
        SystemSet systems;
        ModelRunConfig config;
        config.model = model;
        config.parallel = parallel;
        config.total_tokens = m;

        std::vector<std::string> row = {std::to_string(m)};
        double comet_ms = 0.0;
        double attention_share = 0.0;
        std::map<std::string, double> baseline_ms;
        for (MoeLayerExecutor* exec : systems.All()) {
          if (!exec->Supports(parallel)) {
            row.push_back("-");
            continue;
          }
          const ModelRunResult run = RunModel(*exec, config, cluster);
          row.push_back(FormatDouble(run.total_ms, 1));
          if (exec == &systems.comet) {
            comet_ms = run.total_ms;
            attention_share =
                run.attention_us / (run.attention_us + run.moe_us);
          } else {
            baseline_ms[exec->name()] = run.total_ms;
          }
        }
        row.push_back(FormatPercent(attention_share));
        table.AddRow(std::move(row));
        for (const auto& [name, ms] : baseline_ms) {
          reductions[name].push_back(1.0 - comet_ms / ms);
        }
      }
      std::cout << table.Render() << "\n";
    }
  }

  std::cout << "mean end-to-end latency reduction of Comet vs baselines:\n";
  for (const auto& [name, vals] : reductions) {
    double mean = 0.0;
    for (double v : vals) {
      mean += v;
    }
    mean /= static_cast<double>(vals.size());
    std::cout << "  vs " << name << ": " << FormatPercent(mean) << "\n";
    reporter.Report("mean_latency_reduction_vs_" + name, mean * 100.0, "%");
  }
  std::cout << "\n";
  PrintPaperNote("latency reduced by 34.1% (Megatron-Cutlass), 42.6% "
                 "(Megatron-TE), 44.4% (FasterMoE), 31.8% (Tutel) on average; "
                 "1.71x mean end-to-end speedup.");
  return 0;
}
