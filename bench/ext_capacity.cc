// Extension experiment: capacity-factor token dropping under imbalanced
// routing. Production MoE systems (GShard, Switch, the Megatron family)
// bound each expert's batch with a capacity factor; dropping shaves the hot
// rank that sets the layer makespan. This interacts directly with the
// paper's Figure 14 (left): COMET tolerates imbalance better than the
// baselines, so it needs LESS dropping for the same latency.
#include "bench/bench_common.h"
#include "moe/router.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(ext_capacity, "Extension: capacity-factor token dropping under imbalance") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const ParallelConfig parallel{1, 8};
  const auto cluster = H800Cluster(8);
  const int64_t m_tokens = 8192;

  PrintHeader("Extension: capacity factor vs imbalance",
              "E=8 topk=2 M=8192 EP=8, Mixtral experts, H800x8; layer ms");

  for (const double load_std : {0.02, 0.05}) {
    std::cout << "-- routed load std = " << load_std << " --\n";
    AsciiTable table({"capacity factor", "dropped pairs", "drop %",
                      "Megatron", "Comet", "speedup"});
    for (const double cf : {1.0, 1.25, 1.5, 2.0, 1e9}) {
      MoeWorkload w = TimedWorkload(model, parallel, m_tokens, load_std);
      const int64_t pairs = m_tokens * model.topk;
      const DropStats stats =
          ApplyCapacityFactor(w.routing, model.num_experts, cf);
      w.plan = RoutePlan(w.placement, w.routing);

      MegatronExecutor megatron = MakeMegatronCutlass();
      CometExecutor comet;
      const double base =
          megatron.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
      const double ours =
          comet.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
      table.AddRow({cf > 100 ? "inf (no drop)" : FormatDouble(cf, 2),
                    std::to_string(stats.dropped_pairs),
                    FormatPercent(stats.DropFraction(pairs)),
                    FormatUsAsMs(base), FormatUsAsMs(ours),
                    FormatSpeedup(base / ours)});
    }
    std::cout << table.Render() << "\n";
  }
  PrintPaperNote(
      "no direct figure; relates to Fig. 14 (left). Expected shape: "
      "smaller capacity factors cut the hot rank's makespan for both "
      "systems, and COMET keeps its speedup at every drop level.");
  return 0;
}
