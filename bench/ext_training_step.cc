// Extension experiment: full training step (forward + backward) of one MoE
// layer. The paper deploys COMET for large-scale TRAINING (§1: "savings of
// millions of GPU hours"), but its figures only time the forward pass; this
// bench extends the evaluation to the backward pass, whose two pipelines are
// exact structural mirrors of the forward ones (core/comet_backward.h).
//
// COMET-bwd overlaps the combine-grad dispatch with the dgrad1 GroupGEMM,
// the undispatch with dgrad0, and runs wgrad0 under the undispatch's
// communication tail. The baseline is a Megatron-style sequential backward
// (one kernel per operator, no overlap).
#include "bench/bench_common.h"
#include "core/comet_backward.h"
#include "runtime/model_runner.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(ext_training_step, "Extension: full training step (forward + backward)") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const auto cluster = H800Cluster(8);
  const std::vector<Tensor> no_dout;

  PrintHeader("Extension: MoE training step (forward + backward)",
              "Mixtral expert shapes, E=8 topk=2, H800x8, times in ms");

  for (const ParallelConfig parallel : {ParallelConfig{1, 8},
                                        ParallelConfig{2, 4}}) {
    std::cout << "-- parallelism " << parallel.ToString() << " --\n";
    AsciiTable table({"M", "fwd Megatron", "fwd Comet", "bwd Megatron",
                      "bwd Comet", "step Megatron", "step Comet", "speedup"});
    for (int64_t m : {2048, 4096, 8192, 16384, 32768}) {
      const MoeWorkload w = TimedWorkload(model, parallel, m);
      MegatronExecutor megatron = MakeMegatronCutlass();
      CometExecutor comet_fwd;
      const double fwd_base =
          megatron.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
      const double fwd_comet =
          comet_fwd.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
      const double bwd_base =
          SequentialBackward(w, cluster, no_dout, ExecMode::kTimedOnly)
              .duration_us;
      const double bwd_comet =
          CometBackward(w, cluster, no_dout, ExecMode::kTimedOnly)
              .duration_us;
      const double step_base = fwd_base + bwd_base;
      const double step_comet = fwd_comet + bwd_comet;
      table.AddRow({std::to_string(m), FormatUsAsMs(fwd_base),
                    FormatUsAsMs(fwd_comet), FormatUsAsMs(bwd_base),
                    FormatUsAsMs(bwd_comet), FormatUsAsMs(step_base),
                    FormatUsAsMs(step_comet),
                    FormatSpeedup(step_base / step_comet)});
    }
    std::cout << table.Render() << "\n";
  }

  // End-to-end: full models, L layers of attention (fwd+bwd, identical) and
  // MoE (fwd+bwd, system-dependent).
  std::cout << "-- end-to-end training step, full models, TP1xEP8, "
               "M=8192 --\n";
  AsciiTable e2e({"model", "system", "MoE f+b (ms)", "step (ms)", "speedup"});
  for (const ModelConfig& m :
       {Mixtral8x7B(), Qwen2Moe(), Phi35Moe()}) {
    ModelRunConfig config;
    config.model = m;
    config.parallel = ParallelConfig{1, 8};
    config.total_tokens = 8192;
    config.load_std = 0.032;
    MegatronExecutor megatron = MakeMegatronCutlass();
    CometExecutor comet_exec;
    const TrainStepResult base = RunTrainingStep(
        megatron, MoeBackwardKind::kSequential, config, cluster);
    const TrainStepResult ours = RunTrainingStep(
        comet_exec, MoeBackwardKind::kComet, config, cluster);
    e2e.AddRow({m.name, base.name, FormatDouble(base.moe_only_ms, 1),
                FormatDouble(base.total_ms, 1), "1.00x"});
    e2e.AddRow({m.name, ours.name, FormatDouble(ours.moe_only_ms, 1),
                FormatDouble(ours.total_ms, 1),
                FormatSpeedup(base.total_ms / ours.total_ms)});
  }
  std::cout << e2e.Render() << "\n";

  PrintPaperNote(
      "no direct figure (the paper times forward only); the forward-pass "
      "speedup band is 1.28-2.37x (Fig. 10) and backward mirrors the same "
      "pipelines, so the step speedup should land in a similar band.");
  return 0;
}
