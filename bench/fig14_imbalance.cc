// Figure 14 (left): MoE layer duration under imbalanced token distributions.
//
// Setup: E=8, topk=2, M=8192, TP=1, EP=8, H800x8. The x-axis is the std of
// the per-expert token fraction: 0 = uniform; 0.032 = the average measured
// in ByteDance production training; 0.05 = the least-loaded expert receives
// only a few hundred tokens. Paper: latency grows with imbalance for every
// system and COMET consistently leads.
#include "bench/bench_common.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig14_imbalance, "Figure 14 (left): MoE layer duration under imbalanced routing") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const ParallelConfig parallel{1, 8};
  const int64_t m_tokens = 8192;
  const auto cluster = H800Cluster(8);

  PrintHeader("Figure 14 (left): MoE layer duration vs token imbalance",
              "E=8 topk=2 M=8192 EP=8 TP=1, H800x8; durations in ms; "
              "std = per-expert load fraction std (production avg = 0.032)");

  AsciiTable table({"std", "achieved std", "Megatron-TE", "Megatron-Cutlass",
                    "FasterMoE", "Tutel", "Comet"});
  for (double target_std : {0.0, 0.01, 0.02, 0.032, 0.04, 0.05}) {
    const MoeWorkload workload =
        TimedWorkload(model, parallel, m_tokens, target_std, /*seed=*/3);
    SystemSet systems;
    std::vector<std::string> row = {
        FormatDouble(target_std, 3),
        FormatDouble(workload.routing.LoadStd(model.num_experts), 3)};
    for (MoeLayerExecutor* exec : systems.All()) {
      const LayerExecution run =
          exec->Run(workload, cluster, ExecMode::kTimedOnly);
      row.push_back(FormatUsAsMs(run.duration_us));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote("all systems slow down as imbalance grows; Comet "
                 "consistently outperforms the others (practical std 0.032).");
  return 0;
}
