// Microbenchmark (google-benchmark): the functional-plane blocked GroupGEMM.
//
// Measures the host GEMM kernel used by the functional executors: whole
// problems, tile-granular execution (the COMET path), and the tile-order
// invariance that makes rescheduling numerically free.
#include <benchmark/benchmark.h>

#include "moe/group_gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace comet {
namespace {

void BM_GemmWhole(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t n = 64;
  const int64_t k = 128;
  Rng rng(1);
  const Tensor a = Tensor::Randn(Shape{m, k}, rng);
  const Tensor b = Tensor::Randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    Gemm(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmWhole)->Arg(64)->Arg(256)->Arg(1024);

void BM_GemmTiled(benchmark::State& state) {
  const int64_t m = state.range(0);
  const int64_t n = 64;
  const int64_t k = 128;
  const int64_t tile = 32;
  Rng rng(1);
  const Tensor a = Tensor::Randn(Shape{m, k}, rng);
  const Tensor b = Tensor::Randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    for (int64_t r = 0; r < m; r += tile) {
      for (int64_t cc = 0; cc < n; cc += tile) {
        GemmTile(a, b, c, r, std::min(r + tile, m), cc, std::min(cc + tile, n));
      }
    }
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmTiled)->Arg(64)->Arg(256)->Arg(1024);

void BM_GroupGemm(benchmark::State& state) {
  const int64_t groups = state.range(0);
  const int64_t m = 128;
  const int64_t n = 64;
  const int64_t k = 128;
  Rng rng(2);
  std::vector<Tensor> a_store;
  std::vector<Tensor> b_store;
  std::vector<Tensor> c_store;
  for (int64_t g = 0; g < groups; ++g) {
    a_store.push_back(Tensor::Randn(Shape{m, k}, rng));
    b_store.push_back(Tensor::Randn(Shape{k, n}, rng));
    c_store.emplace_back(Shape{m, n});
  }
  GroupGemmProblem problem;
  for (int64_t g = 0; g < groups; ++g) {
    problem.a.push_back(&a_store[static_cast<size_t>(g)]);
    problem.b.push_back(&b_store[static_cast<size_t>(g)]);
    problem.c.push_back(&c_store[static_cast<size_t>(g)]);
  }
  const auto tiles = EnumerateTiles(problem, 32, 32);
  for (auto _ : state) {
    RunGroupGemm(problem, tiles);
    benchmark::DoNotOptimize(c_store[0].data().data());
  }
  state.SetItemsProcessed(state.iterations() * groups * 2 * m * n * k);
}
BENCHMARK(BM_GroupGemm)->Arg(2)->Arg(8);

}  // namespace
}  // namespace comet

BENCHMARK_MAIN();
