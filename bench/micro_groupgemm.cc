// Microbenchmark: the functional-plane blocked GroupGEMM.
//
// Measures the host GEMM kernel used by the functional executors: whole
// problems, tile-granular execution (the COMET path), and the grouped form
// whose tile-order invariance makes rescheduling numerically free.
#include <algorithm>

#include "bench/bench_common.h"
#include "moe/group_gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(micro_groupgemm, "Micro: blocked GroupGEMM functional kernels") {
  PrintHeader("Micro: GroupGEMM kernels",
              "host functional-plane GEMMs; mean ns per call and GFLOP/s");
  AsciiTable table({"op", "size", "ns/op", "GFLOP/s"});

  auto record = [&](const std::string& op, const std::string& size,
                    double flops, const TimedLoop& loop) {
    table.AddRow({op, size, FormatDouble(loop.ns_per_iter, 0),
                  FormatDouble(flops / loop.ns_per_iter, 2)});
    reporter.Report(op + "/" + size + "/ns_per_op", loop.ns_per_iter, "ns");
    reporter.Report(op + "/" + size + "/gflops", flops / loop.ns_per_iter,
                    "GFLOP/s");
  };

  const int64_t n = 64;
  const int64_t k = 128;
  for (int64_t m : {int64_t{64}, int64_t{256}, int64_t{1024}}) {
    Rng rng(1);
    const Tensor a = Tensor::Randn(Shape{m, k}, rng);
    const Tensor b = Tensor::Randn(Shape{k, n}, rng);
    Tensor c(Shape{m, n});
    const double flops = static_cast<double>(2 * m * n * k);
    record("gemm_whole", "m=" + std::to_string(m), flops, TimeIt([&] {
             Gemm(a, b, c);
             DoNotOptimize(c.data().data());
           }));

    const int64_t tile = 32;
    record("gemm_tiled", "m=" + std::to_string(m), flops, TimeIt([&] {
             for (int64_t r = 0; r < m; r += tile) {
               for (int64_t cc = 0; cc < n; cc += tile) {
                 GemmTile(a, b, c, r, std::min(r + tile, m), cc,
                          std::min(cc + tile, n));
               }
             }
             DoNotOptimize(c.data().data());
           }));
  }

  for (int64_t groups : {int64_t{2}, int64_t{8}}) {
    const int64_t m = 128;
    Rng rng(2);
    std::vector<Tensor> a_store;
    std::vector<Tensor> b_store;
    std::vector<Tensor> c_store;
    for (int64_t g = 0; g < groups; ++g) {
      a_store.push_back(Tensor::Randn(Shape{m, k}, rng));
      b_store.push_back(Tensor::Randn(Shape{k, n}, rng));
      c_store.emplace_back(Shape{m, n});
    }
    GroupGemmProblem problem;
    for (int64_t g = 0; g < groups; ++g) {
      problem.a.push_back(&a_store[static_cast<size_t>(g)]);
      problem.b.push_back(&b_store[static_cast<size_t>(g)]);
      problem.c.push_back(&c_store[static_cast<size_t>(g)]);
    }
    const auto tiles = EnumerateTiles(problem, 32, 32);
    const double flops = static_cast<double>(groups * 2 * m * n * k);
    record("group_gemm", "groups=" + std::to_string(groups), flops, TimeIt([&] {
             RunGroupGemm(problem, tiles);
             DoNotOptimize(c_store[0].data().data());
           }));
  }

  // Pool-dispatched grouped problem at executor-like tile sizes: the case
  // the parallel tile engine targets (run with --threads/COMET_THREADS to
  // see scaling; tiles partition C disjointly so results are identical).
  {
    const int64_t groups = 4, m = 512, kk = 256, nn = 128;
    Rng rng(3);
    std::vector<Tensor> a_store, b_store, c_store;
    GroupGemmProblem problem;
    for (int64_t g = 0; g < groups; ++g) {
      a_store.push_back(Tensor::Randn(Shape{m, kk}, rng));
      b_store.push_back(Tensor::Randn(Shape{kk, nn}, rng));
      c_store.emplace_back(Shape{m, nn});
    }
    for (int64_t g = 0; g < groups; ++g) {
      problem.a.push_back(&a_store[static_cast<size_t>(g)]);
      problem.b.push_back(&b_store[static_cast<size_t>(g)]);
      problem.c.push_back(&c_store[static_cast<size_t>(g)]);
    }
    const auto tiles = EnumerateTiles(problem, 128, 128);
    const double flops = static_cast<double>(groups * 2 * m * nn * kk);
    // Fixed metric name (the active thread count is reported separately):
    // perf-trajectory diffs match records by (bench, metric).
    record("group_gemm_pool", "groups=" + std::to_string(groups), flops,
           TimeIt([&] {
             RunGroupGemm(problem, tiles);
             DoNotOptimize(c_store[0].data().data());
           }));
  }
  // Mixed-precision path (--dtype): 2-byte operands, f32 accumulate, RNE
  // round on store. Measures what the epilogue rounding pass costs on top of
  // the f32 kernel (the compute itself is identical).
  const DType lp = BenchDType();
  if (lp != DType::kF32) {
    const int64_t m = 1024;
    Rng rng(4);
    const Tensor a = Tensor::Randn(Shape{m, k}, rng, 1.0f, lp);
    const Tensor b = Tensor::Randn(Shape{k, n}, rng, 1.0f, lp);
    Tensor c(Shape{m, n}, lp);
    const double flops = static_cast<double>(2 * m * n * k);
    record("gemm_" + DTypeName(lp), "m=" + std::to_string(m), flops,
           TimeIt([&] {
             Gemm(a, b, c);
             DoNotOptimize(c.data().data());
           }));
  }
  reporter.Report("threads", static_cast<double>(GlobalThreadCount()));

  std::cout << table.Render() << "\n";
  return 0;
}
