// Figure 14 (right): scaling to a bandwidth-limited cluster -- 8x L20 over
// PCIe (~25 GB/s GPU-to-GPU as the paper measures).
//
// Setup: E=8, topk=4, M=8192, EP x TP = 8. Paper: COMET's average speedup on
// L20 is 1.19x to 1.46x vs the baselines.
#include "bench/bench_common.h"
#include "util/stats.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(fig14_l20_cluster, "Figure 14 (right): bandwidth-limited 8x L20 cluster") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 4;
  const int64_t m_tokens = 8192;
  const auto cluster = L20Cluster(8);

  PrintHeader("Figure 14 (right): MoE layer duration on the L20/PCIe cluster",
              "E=8 topk=4 M=8192, L20x8 (PCIe ~25 GB/s); durations in ms; "
              "'-' = unsupported");

  AsciiTable table({"parallelism", "Megatron-TE", "Megatron-Cutlass",
                    "FasterMoE", "Tutel", "Comet"});
  std::vector<double> speedups;
  for (const ParallelConfig& parallel :
       std::vector<ParallelConfig>{{1, 8}, {2, 4}, {4, 2}, {8, 1}}) {
    const MoeWorkload workload = TimedWorkload(model, parallel, m_tokens);
    SystemSet systems;
    std::vector<std::string> row = {parallel.ToString()};
    double comet_us = 0.0;
    std::vector<double> baselines;
    for (MoeLayerExecutor* exec : systems.All()) {
      if (!exec->Supports(parallel)) {
        row.push_back("-");
        continue;
      }
      const LayerExecution run =
          exec->Run(workload, cluster, ExecMode::kTimedOnly);
      row.push_back(FormatUsAsMs(run.duration_us));
      if (exec == &systems.comet) {
        comet_us = run.duration_us;
      } else {
        baselines.push_back(run.duration_us);
      }
    }
    for (double b : baselines) {
      speedups.push_back(b / comet_us);
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.Render();
  std::cout << "\nspeedup vs baselines: min "
            << FormatSpeedup(*std::min_element(speedups.begin(), speedups.end()))
            << ", mean " << FormatSpeedup(GeometricMean(speedups)) << ", max "
            << FormatSpeedup(*std::max_element(speedups.begin(),
                                               speedups.end()))
            << "\n\n";
  PrintPaperNote("average speedup of Comet on the L20 cluster ranges from "
                 "1.19x to 1.46x vs the baselines.");
  return 0;
}
