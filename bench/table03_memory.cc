// Table 3: device memory required for the NVSHMEM communication buffer.
//
// COMET allocates one symmetric buffer of M x N elements, shared across
// layers and experts. The byte count comes from the ACTUAL dtype width --
// 2MN at BF16/FP16 (the paper's rows), 4MN at f32 -- not from a hard-coded
// 2-byte assumption. Paper values (MB): Mixtral 32/64, Qwen2-MoE 16/32,
// Phi-3.5-MoE 32/64 for M = 4096/8192.
#include "bench/bench_common.h"
#include "comm/memory_planner.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(table03_memory, "Table 3: NVSHMEM symmetric buffer memory") {
  PrintHeader("Table 3: NVSHMEM communication buffer size",
              "buffer = M x N elements at the training dtype, shared across "
              "layers/experts");

  // The paper's BF16 rows, plus f32 for contrast: the planner takes the
  // width from the DType, so f32 reports 4MN (twice the paper's 2MN).
  for (const DType dtype : {DType::kBF16, DType::kF32}) {
    AsciiTable table({"Mem (MiB) @ " + DTypeName(dtype), "Mixtral 8x7B",
                      "Qwen2-MoE", "Phi3.5-MoE"});
    for (int64_t m : {4096, 8192}) {
      std::vector<std::string> row = {"M=" + std::to_string(m)};
      for (const ModelConfig& model : {Mixtral8x7B(), Qwen2Moe(), Phi35Moe()}) {
        const CommBufferPlan plan =
            PlanCommBuffer(m, model.embedding, dtype);
        row.push_back(FormatDouble(plan.MiBs(), 0));
      }
      table.AddRow(std::move(row));
    }
    std::cout << table.Render() << "\n";
  }

  // Pin the dtype-width arithmetic in the trajectory: Mixtral M=4096 at
  // every width (the f32 record is exactly twice the bf16 one).
  for (const DType dtype : {DType::kBF16, DType::kF16, DType::kF32}) {
    reporter.Report("mixtral_m4096_mib_" + DTypeName(dtype),
                    PlanCommBuffer(4096, Mixtral8x7B().embedding, dtype).MiBs(),
                    "MiB");
  }

  PrintPaperNote("Mixtral 32/64 MB, Qwen2-MoE 16/32 MB, Phi3.5-MoE 32/64 MB "
                 "for M = 4096/8192 at BF16 -- negligible vs 80 GB device "
                 "memory. f32 doubles every entry (4MN).");
  return 0;
}
