// Table 3: device memory required for the NVSHMEM communication buffer.
//
// COMET allocates one symmetric buffer of M x N elements (2*M*N bytes at
// BF16), shared across layers and experts. Paper values (MB): Mixtral 32/64,
// Qwen2-MoE 16/32, Phi-3.5-MoE 32/64 for M = 4096/8192.
#include "bench/bench_common.h"
#include "comm/memory_planner.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(table03_memory, "Table 3: NVSHMEM symmetric buffer memory") {
  PrintHeader("Table 3: NVSHMEM communication buffer size",
              "buffer = M x N elements at BF16, shared across layers/experts");

  AsciiTable table({"Mem (MiB)", "Mixtral 8x7B", "Qwen2-MoE", "Phi3.5-MoE"});
  for (int64_t m : {4096, 8192}) {
    std::vector<std::string> row = {"M=" + std::to_string(m)};
    for (const ModelConfig& model : {Mixtral8x7B(), Qwen2Moe(), Phi35Moe()}) {
      const CommBufferPlan plan =
          PlanCommBuffer(m, model.embedding, DType::kBF16);
      row.push_back(FormatDouble(plan.MiBs(), 0));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote("Mixtral 32/64 MB, Qwen2-MoE 16/32 MB, Phi3.5-MoE 32/64 MB "
                 "for M = 4096/8192 -- negligible vs 80 GB device memory.");
  return 0;
}
