// Serving-plane load sweep: latency vs offered load for the continuous
// batcher, open-loop arrivals on the simulated clock.
//
// Extends the paper's §5.3 decode-regime observation ("scheduling time on
// the host side predominates" at small M) from single layers to a serving
// system: at low utilization the batcher runs small, launch-dominated
// batches; as offered load approaches the iteration capacity, queueing
// delay takes over and the tail (p99 TTFT, p99 queue wait) blows up first
// -- the classic open-loop latency-vs-load knee -- until past saturation
// the bounded admission queue sheds.
//
// The sweep calibrates saturation throughput with an all-at-once burst,
// then offers {25, 50, 75, 100, 150}% of it under Poisson and bursty
// arrivals. Every metric is simulated-clock: the records in BENCH_5.json
// are bit-reproducible, not machine noise.
#include "bench/bench_common.h"

#include <cmath>
#include <map>
#include <sstream>

#include "obs/exporters.h"
#include "serve/cluster.h"
#include "serve/server.h"
#include "util/stats.h"

using namespace comet;
using namespace comet::bench;

namespace {

ModelConfig ServeBenchModel() {
  ModelConfig m;
  m.name = "serve-bench";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 64;
  m.ffn_hidden = 128;
  return m;
}

ServeOptions BenchServeOptions() {
  ServeOptions o;
  o.model = ServeBenchModel();
  o.parallel = ParallelConfig{1, 4};
  o.seed = 20260729;
  o.dtype = BenchDType();
  o.token_budget = 32;
  o.max_active = 16;
  // Tight enough that past-saturation load actually sheds within a
  // 200-request run (the knee must show all three regimes).
  o.queue_capacity = 24;
  return o;
}

LoadGenOptions BenchLoadOptions(int64_t n) {
  LoadGenOptions o;
  o.seed = 4242;
  o.num_requests = n;
  o.prompt = LengthDist::Uniform(4, 16);
  o.decode = LengthDist::Uniform(1, 8);
  return o;
}

double MeanTokensPerRequest(const LoadGenOptions& o) {
  const double prompt =
      0.5 * static_cast<double>(o.prompt.Min() + o.prompt.Max());
  const double decode =
      0.5 * static_cast<double>(o.decode.Min() + o.decode.Max());
  return prompt + decode;
}

}  // namespace

REGISTER_BENCH(serve_loadgen,
               "Serving plane: latency vs offered load, SLO attainment") {
  const ClusterSpec cluster = H800Cluster(4);

  PrintHeader("Serving: continuous batching under open-loop load",
              "tiny MoE (E=8 topk=2 N=64 K=128), EP=4 H800x4, budget 32 "
              "tokens/iter; times in SIMULATED us");

  // --- calibrate: saturated service rate (everything arrives at t=0) ---
  LoadGenOptions burst_all = BenchLoadOptions(64);
  burst_all.arrival = ArrivalProcess::kBursty;
  burst_all.mean_burst = 64.0;
  burst_all.offered_rps = 1e9;
  MoeServer calib_server(BenchServeOptions(), cluster);
  LoadGenerator calib_gen(burst_all);
  const ServeReport calib = calib_server.Serve(calib_gen);
  const double capacity_tps = calib.throughput_tokens_per_s;
  const double mean_tokens = MeanTokensPerRequest(BenchLoadOptions(1));
  reporter.Report("capacity_tokens_per_s", capacity_tps, "tok/s");
  std::cout << "calibrated capacity: " << FormatDouble(capacity_tps, 0)
            << " tokens/s ("
            << FormatDouble(capacity_tps / mean_tokens, 1) << " req/s)\n\n";

  // SLO targets pinned to the calibrated iteration time: TTFT within 8
  // unloaded iterations, mean ITL within 3.
  const double iter_us =
      calib.sim_duration_us / static_cast<double>(calib.iterations);
  SloTargets slo;
  slo.ttft_us = 8.0 * iter_us;
  slo.itl_us = 3.0 * iter_us;

  AsciiTable table({"arrival", "util %", "ttft p50", "ttft p99", "itl p99",
                    "queue p99", "shed %", "SLO %", "tok/s"});
  for (const ArrivalProcess arrival :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty}) {
    for (const int util_pct : {25, 50, 75, 100, 150}) {
      LoadGenOptions load = BenchLoadOptions(200);
      load.arrival = arrival;
      load.offered_rps = capacity_tps / mean_tokens *
                         static_cast<double>(util_pct) / 100.0;
      ServeOptions options = BenchServeOptions();
      options.slo = slo;
      MoeServer server(options, cluster);
      LoadGenerator gen(load);
      const ServeReport r = server.Serve(gen);

      const double shed_frac =
          static_cast<double>(r.shed) / static_cast<double>(r.offered);
      table.AddRow({ArrivalProcessName(arrival), std::to_string(util_pct),
                    FormatDouble(r.ttft_us.p50, 1),
                    FormatDouble(r.ttft_us.p99, 1),
                    FormatDouble(r.itl_us.p99, 1),
                    FormatDouble(r.queue_wait_us.p99, 1),
                    FormatPercent(shed_frac),
                    FormatPercent(r.slo_attainment),
                    FormatDouble(r.throughput_tokens_per_s, 0)});

      const std::string prefix = std::string(ArrivalProcessName(arrival)) +
                                 "_u" + std::to_string(util_pct) + "_";
      reporter.Report(prefix + "ttft_p50_us", r.ttft_us.p50, "us");
      reporter.Report(prefix + "ttft_p99_us", r.ttft_us.p99, "us");
      reporter.Report(prefix + "itl_p99_us", r.itl_us.p99, "us");
      reporter.Report(prefix + "queue_wait_p99_us", r.queue_wait_us.p99,
                      "us");
      reporter.Report(prefix + "e2e_p99_us", r.e2e_us.p99, "us");
      reporter.Report(prefix + "shed_fraction", shed_frac);
      reporter.Report(prefix + "slo_attainment", r.slo_attainment);
      reporter.Report(prefix + "throughput_tokens_per_s",
                      r.throughput_tokens_per_s, "tok/s");
    }
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote(
      "no paper figure: extends §5.3's small-M decode regime to a serving "
      "system. Expected shape: flat latency below ~75% utilization, a "
      "queueing knee at 100%, shed + SLO collapse at 150%; bursty arrivals "
      "hit the knee earlier at equal mean load.");

  // --- cluster sweep: latency/SLO vs load per (replicas, placement) ---------
  //
  // Saturation is calibrated PER CONFIG (an all-at-once burst through that
  // exact fleet), not once globally: a fleet of 8 saturates at ~8x the
  // tokens of a fleet of 1, and placement quality moves the knee, so a
  // shared calibration would put every config at a different true
  // utilization and the curves would not be comparable.
  PrintHeader("Cluster: placement policies under open-loop load",
              "same model per replica; fleet sizes x placement policies; "
              "times in SIMULATED us");
  AsciiTable ctable({"replicas", "placement", "util %", "ttft p99", "itl p99",
                     "e2e p99", "shed %", "SLO %", "tok/s"});
  for (const int replicas : BenchReplicas()) {
    for (const PlacementPolicy placement : BenchPlacements()) {
      ClusterOptions base;
      base.server = BenchServeOptions();
      // Tighter per-replica queue than the single-server sweep: the run is
      // 40 requests per replica, so a 24-deep queue would absorb the whole
      // past-saturation backlog and the shed/SLO collapse would never show.
      base.server.queue_capacity = 12;
      base.replicas = replicas;
      base.placement = placement;
      base.placement_seed = 7;

      // Per-config calibration burst, sized to saturate the whole fleet
      // (64 requests per replica, like the single-server calibration: a
      // smaller burst's decode-bound drain tail underestimates capacity).
      LoadGenOptions cburst = BenchLoadOptions(64 * replicas);
      cburst.arrival = ArrivalProcess::kBursty;
      cburst.mean_burst = static_cast<double>(cburst.num_requests);
      cburst.offered_rps = 1e9;
      cburst.num_sessions = 16;  // sticky needs sessions; same stream for all
      // The calibration run must not shed (capacity measured over a partial
      // burst is not capacity): give it a queue deep enough for the whole
      // burst. The sweep runs below use the tight serving queue.
      ClusterOptions calib_options = base;
      calib_options.server.queue_capacity = cburst.num_requests;
      LoadGenerator cgen(cburst);
      const ClusterReport ccalib =
          MoeCluster(calib_options, cluster).Run(cgen);
      const double ccap_tps = ccalib.throughput_tokens_per_s;
      const double citer_us = ccalib.sim_duration_us /
                              (static_cast<double>(ccalib.iterations) /
                               static_cast<double>(replicas));
      const std::string cfg = std::string("cluster_r") +
                              std::to_string(replicas) + "_" +
                              PlacementPolicyName(placement) + "_";
      reporter.Report(cfg + "capacity_tokens_per_s", ccap_tps, "tok/s");

      SloTargets cslo;
      cslo.ttft_us = 8.0 * citer_us;
      cslo.itl_us = 3.0 * citer_us;
      for (const int util_pct : {50, 100, 150}) {
        LoadGenOptions load = BenchLoadOptions(100 * replicas);
        load.num_sessions = 16;
        load.offered_rps = ccap_tps / mean_tokens *
                           static_cast<double>(util_pct) / 100.0;
        ClusterOptions options = base;
        options.server.slo = cslo;
        LoadGenerator gen(load);
        const ClusterReport r = MoeCluster(options, cluster).Run(gen);

        const double shed_frac =
            static_cast<double>(r.shed) / static_cast<double>(r.offered);
        ctable.AddRow({std::to_string(replicas),
                       PlacementPolicyName(placement),
                       std::to_string(util_pct),
                       FormatDouble(r.ttft_us.p99, 1),
                       FormatDouble(r.itl_us.p99, 1),
                       FormatDouble(r.e2e_us.p99, 1),
                       FormatPercent(shed_frac),
                       FormatPercent(r.slo_attainment),
                       FormatDouble(r.throughput_tokens_per_s, 0)});

        const std::string prefix = cfg + "u" + std::to_string(util_pct) + "_";
        reporter.Report(prefix + "ttft_p50_us", r.ttft_us.p50, "us");
        reporter.Report(prefix + "ttft_p99_us", r.ttft_us.p99, "us");
        reporter.Report(prefix + "itl_p99_us", r.itl_us.p99, "us");
        reporter.Report(prefix + "queue_wait_p99_us", r.queue_wait_us.p99,
                        "us");
        reporter.Report(prefix + "e2e_p99_us", r.e2e_us.p99, "us");
        reporter.Report(prefix + "shed_fraction", shed_frac);
        reporter.Report(prefix + "slo_attainment", r.slo_attainment);
        reporter.Report(prefix + "throughput_tokens_per_s",
                        r.throughput_tokens_per_s, "tok/s");
      }
    }
  }
  std::cout << ctable.Render() << "\n";
  PrintPaperNote(
      "no paper figure: cluster-scale serving over the paper's data plane. "
      "Expected shape: throughput scales ~linearly with replicas at equal "
      "utilization; least-loaded and p2c track each other closely and beat "
      "round-robin's tail at the knee; sticky trades tail latency for "
      "session affinity under skewed session load.");

  // --- recovery sweep: fail-then-recover under retry/hedge policies ---------
  //
  // Gated behind `comet_bench --faults`. A 2-replica least-loaded fleet
  // loses replica 0 at 35% of the no-fault makespan and gets it back after
  // an MTTR swept over {5, 15, 30}% of that makespan, crossed with the
  // in-flight retry budget {0, 3} and hedged dispatch {off, on}. Every
  // scenario replays the SAME arrival stream, so the no-fault run is an
  // exact per-request bit oracle: `bits ok` asserts that every request the
  // faulted run completed -- retried, hedged, or neither -- produced the
  // same output digest as the clean run. Faults move latency, never bits.
  if (BenchFaults()) {
    PrintHeader("Recovery: fail-then-recover on a 2-replica fleet",
                "least-loaded placement, retry-backoff in-flight policy; "
                "replica 0 fails at 35% of the no-fault makespan, recovers "
                "after MTTR + 2% warm-up; times in SIMULATED us");

    ClusterOptions rbase;
    rbase.server = BenchServeOptions();
    rbase.replicas = 2;
    rbase.placement = PlacementPolicy::kLeastLoaded;
    rbase.placement_seed = 7;
    rbase.in_flight = InFlightPolicy::kRetryBackoff;
    // The digest oracle needs a clean-run record for EVERY id: queues deep
    // enough that nothing sheds, in the clean run or the faulted ones --
    // losses below come from the fault, not admission.
    rbase.server.queue_capacity = 120;

    // Calibration burst through this exact fleet (same recipe as the
    // cluster sweep above).
    LoadGenOptions rburst = BenchLoadOptions(128);
    rburst.arrival = ArrivalProcess::kBursty;
    rburst.mean_burst = static_cast<double>(rburst.num_requests);
    rburst.offered_rps = 1e9;
    rburst.num_sessions = 16;
    ClusterOptions rcalib_options = rbase;
    LoadGenerator rcgen(rburst);
    const ClusterReport rcalib =
        MoeCluster(rcalib_options, cluster).Run(rcgen);
    const double rcap_tps = rcalib.throughput_tokens_per_s;
    const double riter_us =
        rcalib.sim_duration_us / (static_cast<double>(rcalib.iterations) / 2.0);
    SloTargets rslo;
    rslo.ttft_us = 8.0 * riter_us;
    rslo.itl_us = 3.0 * riter_us;
    rbase.server.slo = rslo;
    reporter.Report("recovery_capacity_tokens_per_s", rcap_tps, "tok/s");

    // One arrival stream for every scenario: 75% utilization Poisson --
    // loaded enough that losing half the fleet hurts, below the knee so the
    // clean run completes everything.
    LoadGenOptions rload = BenchLoadOptions(120);
    rload.num_sessions = 16;
    rload.offered_rps = rcap_tps / mean_tokens * 0.75;
    const std::vector<RequestSpec> rarrivals =
        LoadGenerator(rload).GenerateAll();

    const ClusterReport rclean = MoeCluster(rbase, cluster).Run(rarrivals);
    std::map<int64_t, uint64_t> clean_digest;
    for (const RequestRecord& rec : rclean.completed) {
      clean_digest[rec.id] = rec.output_digest;
    }
    const double clean_duration_us = rclean.sim_duration_us;
    reporter.Report("recovery_clean_sim_duration_us", clean_duration_us, "us");
    reporter.Report("recovery_clean_slo_attainment", rclean.slo_attainment);
    std::cout << "no-fault baseline: " << rclean.completed.size() << "/"
              << rclean.offered << " completed in "
              << FormatDouble(clean_duration_us, 0) << " us, SLO "
              << FormatPercent(rclean.slo_attainment) << "\n\n";

    AsciiTable rtable({"mttr %", "budget", "hedge", "SLO %", "e2e p99",
                       "lost", "retries", "hedged", "wasted tok", "bits ok"});
    const double fail_us = 0.35 * clean_duration_us;
    const double warmup_us = 0.02 * clean_duration_us;
    for (const int mttr_pct : {5, 15, 30}) {
      const double mttr_us =
          clean_duration_us * static_cast<double>(mttr_pct) / 100.0;
      for (const int budget : {0, 3}) {
        for (const bool hedge : {false, true}) {
          ClusterOptions options = rbase;
          options.retry_budget = budget;
          options.recovery_warmup_us = warmup_us;
          // Recovery timescales pinned to the calibrated iteration time,
          // like the SLO: the defaults (hundreds-of-us backoffs) are sized
          // for long-lived services and would swamp this few-ms makespan --
          // in particular a breaker probe backoff of 2000 us would keep the
          // recovered replica dark for most of the run, making every MTTR
          // look identical.
          options.retry_backoff_us = riter_us;
          options.health.probe_backoff_us = 4.0 * riter_us;
          options.hedge_queue_wait_us = hedge ? 2.0 * riter_us : 0.0;
          options.faults.events = {
              {fail_us, 0, FaultKind::kFail},
              {fail_us + mttr_us, 0, FaultKind::kRecover},
          };
          const ClusterReport r = MoeCluster(options, cluster).Run(rarrivals);

          const int64_t lost =
              r.shed + r.failed_in_flight + r.retries_exhausted;
          bool bits_ok = true;
          for (const RequestRecord& rec : r.completed) {
            const auto it = clean_digest.find(rec.id);
            if (it == clean_digest.end() ||
                it->second != rec.output_digest) {
              bits_ok = false;
              break;
            }
          }

          rtable.AddRow({std::to_string(mttr_pct), std::to_string(budget),
                         hedge ? "on" : "off",
                         FormatPercent(r.slo_attainment),
                         FormatDouble(r.e2e_us.p99, 1), std::to_string(lost),
                         std::to_string(r.retries), std::to_string(r.hedged),
                         std::to_string(r.wasted_tokens),
                         bits_ok ? "yes" : "NO"});

          const std::string prefix =
              "recovery_mttr" + std::to_string(mttr_pct) + "_b" +
              std::to_string(budget) + (hedge ? "_h1_" : "_h0_");
          reporter.Report(prefix + "slo_attainment", r.slo_attainment);
          reporter.Report(prefix + "e2e_p99_us", r.e2e_us.p99, "us");
          reporter.Report(prefix + "completed",
                          static_cast<double>(r.completed.size()));
          reporter.Report(prefix + "lost", static_cast<double>(lost));
          reporter.Report(prefix + "retries", static_cast<double>(r.retries));
          reporter.Report(prefix + "hedged", static_cast<double>(r.hedged));
          reporter.Report(prefix + "wasted_tokens",
                          static_cast<double>(r.wasted_tokens));
          reporter.Report(prefix + "time_to_recover_us", mttr_us + warmup_us,
                          "us");
          reporter.Report(prefix + "digest_matches_no_fault",
                          bits_ok ? 1.0 : 0.0);
        }
      }
    }
    std::cout << rtable.Render() << "\n";
    PrintPaperNote(
        "no paper figure: recovery plane over the paper's data plane. "
        "Expected shape: the post-failure tail (e2e p99) grows with MTTR; "
        "a retry budget converts lost requests into late ones (lost -> 0, "
        "retries > 0) at a tail cost; hedging spends wasted tokens on "
        "speculative copies once the recovered replica is eligible again; "
        "`bits ok` stays yes everywhere -- recovery changes latency, "
        "never output bits.");
  }

  // --- skew sweep: hot-expert replication under synthetic expert skew -------
  //
  // Gated behind `comet_bench --skew`. Synthetic (seeded) routing replaces
  // the gate so expert load imbalance is a dial: load std 0 (uniform),
  // 0.032 (the paper's production trace, Figure 14) and 0.1 (pathological),
  // each as a static hot spot and as one that drifts mid-run. Every
  // scenario replays the SAME saturating burst (everything arrives at t=0,
  // so batch composition is a pure function of the iteration index, never
  // of iteration durations) with the adaptation loop off and then on: the
  // off run is an exact bit oracle, and `bits ok` asserts the combined
  // digest is EQUAL while the adapted run demonstrably promoted replicas.
  // The sweep runs at fine decomposition granularity (tile_m 8), where
  // per-rank iteration time tracks per-rank ROWS -- the production regime
  // in which a hot expert makes its EP group the straggler and splitting it
  // across two groups shortens the critical path, so p99 ITL/e2e improve
  // at high skew.
  if (BenchSkew()) {
    PrintHeader("Adaptation: hot-expert replication under expert skew",
                "synthetic seeded routing, EP=4 H800x4, granularity 8, "
                "saturating burst; same arrivals with replication off vs "
                "on; times in SIMULATED us");

    ServeOptions sbase = BenchServeOptions();
    sbase.routing = ServeRoutingMode::kSynthetic;
    sbase.granularity = 8;
    // Deep queue: nothing sheds, so off/on complete the same request set
    // and the latency columns compare like for like.
    sbase.queue_capacity = 220;
    sbase.slo = slo;
    // Launch-amortized serving path (captured graphs): at this toy scale 4
    // launches + host overhead are ~90% of an iteration and would drown the
    // data-dependent time the balancer moves. Zeroing both leaves the
    // compute/comm pipeline -- the term that scales with per-rank rows and
    // the one production-size models are bound by.
    sbase.host_overhead_us = 0.0;
    ClusterSpec scluster = cluster;
    scluster.gpu.kernel_launch_us = 0.0;

    LoadGenOptions sload = BenchLoadOptions(200);
    sload.arrival = ArrivalProcess::kBursty;
    sload.mean_burst = static_cast<double>(sload.num_requests);
    sload.offered_rps = 1e9;
    const std::vector<RequestSpec> sarrivals =
        LoadGenerator(sload).GenerateAll();

    AsciiTable stable({"load std", "drift", "adapt", "itl p99", "e2e p99",
                       "ttft p99", "promoted", "repl rows", "tok/s",
                       "bits ok"});
    for (const double load_std : {0.0, 0.032, 0.1}) {
      for (const bool drifting : {false, true}) {
        if (drifting && load_std == 0.0) {
          continue;  // a uniform load vector has no hot spot to walk
        }
        uint64_t off_digest = 0;
        for (const bool adapt : {false, true}) {
          ServeOptions options = sbase;
          options.synthetic_load_std = load_std;
          // The hot spot walks several times within the ~200-request burst
          // drain (a few hundred iterations at a few us each).
          options.drift_period_us = drifting ? 400.0 : 0.0;
          options.adaptation.enabled = adapt;
          // Smoothed enough (decay 0.15 ~ a 13-iteration window) that the
          // per-iteration sampling noise of a 32-token batch stays inside
          // the hysteresis band at load std 0; a genuinely hot expert still
          // clears hot_factor within a couple of windows.
          options.adaptation.ewma_decay = 0.15;
          options.adaptation.hot_factor = 1.4;
          options.adaptation.cool_factor = 1.15;
          options.adaptation.max_replicated_experts = 2;
          options.adaptation.cooldown_iterations = 16;
          MoeServer server(options, scluster);
          const ServeReport r = server.Serve(sarrivals);

          if (!adapt) {
            off_digest = r.combined_digest;
          }
          const bool bits_ok = r.combined_digest == off_digest;
          std::ostringstream std_label;
          std_label << load_std;
          stable.AddRow({std_label.str(), drifting ? "yes" : "no",
                         adapt ? "on" : "off", FormatDouble(r.itl_us.p99, 1),
                         FormatDouble(r.e2e_us.p99, 1),
                         FormatDouble(r.ttft_us.p99, 1),
                         std::to_string(r.promotions),
                         std::to_string(r.replicated_rows),
                         FormatDouble(r.throughput_tokens_per_s, 0),
                         bits_ok ? "yes" : "NO"});

          std::ostringstream pfx;
          pfx << "skew" << load_std << (drifting ? "_drift_" : "_static_")
              << (adapt ? "on_" : "off_");
          const std::string prefix = pfx.str();
          reporter.Report(prefix + "itl_p99_us", r.itl_us.p99, "us");
          reporter.Report(prefix + "e2e_p99_us", r.e2e_us.p99, "us");
          reporter.Report(prefix + "ttft_p99_us", r.ttft_us.p99, "us");
          reporter.Report(prefix + "itl_p50_us", r.itl_us.p50, "us");
          reporter.Report(prefix + "slo_attainment", r.slo_attainment);
          reporter.Report(prefix + "throughput_tokens_per_s",
                          r.throughput_tokens_per_s, "tok/s");
          reporter.Report(prefix + "promotions",
                          static_cast<double>(r.promotions));
          reporter.Report(prefix + "retirements",
                          static_cast<double>(r.retirements));
          reporter.Report(prefix + "replicated_rows",
                          static_cast<double>(r.replicated_rows));
          reporter.Report(prefix + "digest_matches_off", bits_ok ? 1.0 : 0.0);
        }
      }
    }
    std::cout << stable.Render() << "\n";
    PrintPaperNote(
        "paper Figure 14 measures production expert-load std ~0.032; the "
        "shadow-expert idea is FasterMoE's. Expected shape: at std 0 the "
        "adaptation loop never fires (0 promotions, identical latency); at "
        "high skew replication splits the straggler group's rows, so p99 "
        "ITL/e2e drop; drifting hot spots promote and retire as the spot "
        "walks; `bits ok` stays yes everywhere -- replication changes "
        "latency, never bits.");
  }

  // --- telemetry emission: trace + metrics snapshot of a recovery run -------
  //
  // Gated behind `--trace-out` / `--metrics-out`. A 2-replica least-loaded
  // fleet under a saturating burst loses replica 0 mid-run and gets it back
  // (retry-backoff + hedging active), run twice: telemetry OFF for the bit
  // oracle, then ON to export. The Chrome trace (Perfetto-loadable), the
  // Prometheus snapshot and a JSONL span log land on the given paths; the
  // bench fails if enabling telemetry moved a single served bit.
  if (!BenchTraceOut().empty() || !BenchMetricsOut().empty()) {
    PrintHeader("Telemetry: exporting a fault+recovery cluster run",
                "2 replicas, least-loaded, retry-backoff + hedging; "
                "replica 0 fails at 35% of the clean makespan, recovers at "
                "55%; telemetry off = bit oracle for the telemetry-on run");

    ClusterOptions tbase;
    tbase.server = BenchServeOptions();
    tbase.replicas = 2;
    tbase.placement = PlacementPolicy::kLeastLoaded;
    tbase.placement_seed = 7;
    tbase.in_flight = InFlightPolicy::kRetryBackoff;
    tbase.retry_budget = 3;
    tbase.server.queue_capacity = 120;

    LoadGenOptions tload = BenchLoadOptions(96);
    tload.arrival = ArrivalProcess::kBursty;
    tload.mean_burst = 16.0;
    tload.offered_rps = 1e6;
    tload.num_sessions = 16;
    const std::vector<RequestSpec> tarrivals =
        LoadGenerator(tload).GenerateAll();

    const ClusterReport tclean = MoeCluster(tbase, cluster).Run(tarrivals);
    const double tmakespan = tclean.sim_duration_us;
    tbase.retry_backoff_us =
        tmakespan / static_cast<double>(std::max<int64_t>(tclean.iterations, 1));
    tbase.recovery_warmup_us = 0.02 * tmakespan;
    tbase.hedge_queue_wait_us = 2.0 * tbase.retry_backoff_us;
    tbase.faults.events = {
        {0.35 * tmakespan, 0, FaultKind::kFail},
        {0.55 * tmakespan, 0, FaultKind::kRecover},
    };

    const ClusterReport toff = MoeCluster(tbase, cluster).Run(tarrivals);
    ClusterOptions ton_options = tbase;
    ton_options.server.telemetry.enabled = true;
    MoeCluster ton_cluster(ton_options, cluster);
    const ClusterReport ton = ton_cluster.Run(tarrivals);
    const bool bits_ok = ton.combined_digest == toff.combined_digest;

    std::cout << "fault run: " << ton.completed.size() << "/" << ton.offered
              << " completed, retries " << ton.retries << ", hedged "
              << ton.hedged << ", breaker opens " << ton.breaker_opens
              << ", recovered " << ton.replicas_recovered
              << "\ntelemetry-on digest matches telemetry-off: "
              << (bits_ok ? "yes" : "NO (bug!)") << "\n";
    reporter.Report("telemetry_digest_matches_off", bits_ok ? 1.0 : 0.0);
    reporter.Report("telemetry_retries", static_cast<double>(ton.retries));
    reporter.Report("telemetry_hedged", static_cast<double>(ton.hedged));
    reporter.Report("telemetry_replicas_recovered",
                    static_cast<double>(ton.replicas_recovered));

    if (!BenchTraceOut().empty()) {
      obs::WriteTextFile(BenchTraceOut(), ton_cluster.ExportChromeTrace());
      obs::WriteTextFile(BenchTraceOut() + ".jsonl",
                         ton_cluster.ExportTelemetryJsonl());
      std::cout << "wrote Chrome trace to " << BenchTraceOut()
                << " (+ span log at " << BenchTraceOut() << ".jsonl)\n";
    }
    if (!BenchMetricsOut().empty()) {
      obs::WriteTextFile(BenchMetricsOut(),
                         ton_cluster.ExportPrometheusText());
      std::cout << "wrote Prometheus snapshot to " << BenchMetricsOut()
                << "\n";
    }
    std::cout << "\n";
    if (!bits_ok) {
      return 1;
    }
  }
  return 0;
}
