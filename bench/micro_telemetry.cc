// Micro: telemetry-plane overhead on the steady-state serving iteration.
//
// Runs the micro_serve_iter drive pattern twice per config -- telemetry off
// (the default) and telemetry on (registry + span ring recording every
// iteration) -- and reports the steady-state ns/iteration delta. The
// telemetry plane's contract is that recording is a handful of relaxed
// atomic stores per iteration: the target is <2% overhead, and the bench
// FAILS (non-zero exit) if the ON runs allocate in steady state, since that
// would break the zero-allocation contract alloc_test pins with telemetry
// enabled.
//
// ns/iteration is host wall-clock and machine-dependent; allocs/iteration
// and the served digests (checked equal OFF vs ON here) are exact.
#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "hw/gpu_spec.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/alloc_counter.h"
#include "util/check.h"

using namespace comet;
using namespace comet::bench;

namespace {

ModelConfig TelemetryBenchModel() {
  ModelConfig m;
  m.name = "serve-bench";
  m.layers = 1;
  m.num_experts = 8;
  m.topk = 2;
  m.embedding = 64;
  m.ffn_hidden = 128;
  return m;
}

ServeOptions TelemetryServeOptions(int ep, int num_threads, bool telemetry) {
  ServeOptions o;
  o.model = TelemetryBenchModel();
  o.parallel = ParallelConfig{1, ep};
  o.seed = 20260807;
  o.dtype = BenchDType();
  o.num_threads = num_threads;
  o.token_budget = 32;
  o.max_active = 16;
  o.queue_capacity = 64;
  o.telemetry.enabled = telemetry;
  return o;
}

struct SteadyStats {
  double ns_per_iter = 0.0;
  double allocs_per_iter = 0.0;
  uint64_t digest = 0;
};

// Saturated drive: warm up kColdIters, then time + alloc-count kSteadyIters.
SteadyStats RunConfig(int ep, int num_threads, bool telemetry) {
  constexpr int kColdIters = 32;
  constexpr int kSteadyIters = 512;
  constexpr int kOfferPerIter = 4;
  constexpr int64_t kRequests =
      static_cast<int64_t>(kColdIters + kSteadyIters + 64) * kOfferPerIter;

  std::vector<RequestSpec> arrivals;
  int64_t max_prompt = 0, max_decode = 0, total_tokens = 0;
  for (int64_t i = 0; i < kRequests; ++i) {
    RequestSpec r;
    r.id = i;
    r.seed = static_cast<uint64_t>(i) * 1000003ULL + 5;
    r.prompt_tokens = 4 + (i % 13);
    r.decode_tokens = i % 8;
    r.arrival_us = 0.0;
    max_prompt = std::max(max_prompt, r.prompt_tokens);
    max_decode = std::max(max_decode, r.decode_tokens);
    total_tokens += r.TotalTokens();
    arrivals.push_back(r);
  }

  MoeServer server(TelemetryServeOptions(ep, num_threads, telemetry),
                   H800Cluster(ep));
  MoeServer::RunBounds bounds;
  bounds.expected_requests = kRequests;
  bounds.expected_tokens = total_tokens;
  bounds.max_prompt_tokens = max_prompt;
  bounds.max_decode_tokens = max_decode;
  server.BeginRun(bounds);

  size_t next = 0;
  const auto offer_some = [&] {
    for (int k = 0; k < kOfferPerIter && next < arrivals.size(); ++k) {
      server.Offer(arrivals[next++]);
    }
  };

  double now = 0.0;
  for (int i = 0; i < kColdIters; ++i) {
    offer_some();
    double end = 0.0;
    COMET_CHECK(server.StepIteration(now, &end));
    now = end;
  }

  using Clock = std::chrono::steady_clock;
  SteadyStats out;
  util::AllocStats stats;
  const auto start = Clock::now();
  {
    util::AllocWindow w;
    for (int i = 0; i < kSteadyIters; ++i) {
      offer_some();
      double end = 0.0;
      COMET_CHECK(server.StepIteration(now, &end))
          << "bench backlog drained mid-window";
      now = end;
    }
    stats = w.Snapshot();
  }
  const double elapsed_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  out.ns_per_iter = elapsed_ns / static_cast<double>(kSteadyIters);
  out.allocs_per_iter =
      static_cast<double>(stats.allocs) / static_cast<double>(kSteadyIters);
  // FNV-1a over the retired requests' output digests, retirement order.
  // Both passes run the same iterations over the same arrivals, so equal
  // folds mean every served bit matched.
  uint64_t digest = 1469598103934665603ULL;
  for (const RequestRecord& rec : server.View().completed) {
    for (int shift = 0; shift < 64; shift += 8) {
      digest ^= (rec.output_digest >> shift) & 0xffULL;
      digest *= 1099511628211ULL;
    }
  }
  out.digest = digest;
  return out;
}

}  // namespace

REGISTER_BENCH(micro_telemetry,
               "Micro: telemetry-plane overhead on steady-state serving") {
  PrintHeader("Telemetry plane: steady-state iteration cost, off vs on",
              "tiny MoE (E=8 topk=2 N=64 K=128), budget 32 tokens/iter; "
              "ON records ~30 metrics + iteration/phase spans per step");

  bool contract_clean = true;
  AsciiTable table({"threads", "ep", "off ns/it", "on ns/it", "delta %",
                    "on allocs/it", "digest match"});
  for (const int num_threads : {1, 8}) {
    for (const int ep : {1, 4}) {
      const SteadyStats off = RunConfig(ep, num_threads, /*telemetry=*/false);
      const SteadyStats on = RunConfig(ep, num_threads, /*telemetry=*/true);
      const double delta_pct =
          (on.ns_per_iter - off.ns_per_iter) / off.ns_per_iter * 100.0;
      const bool digests_match = off.digest == on.digest;
      if (on.allocs_per_iter != 0.0 || !digests_match) {
        contract_clean = false;
      }
      table.AddRow({std::to_string(num_threads), std::to_string(ep),
                    FormatDouble(off.ns_per_iter, 0),
                    FormatDouble(on.ns_per_iter, 0),
                    FormatDouble(delta_pct, 2),
                    FormatDouble(on.allocs_per_iter, 2),
                    digests_match ? "yes" : "NO"});

      const std::string prefix =
          "t" + std::to_string(num_threads) + "_ep" + std::to_string(ep) + "_";
      reporter.Report(prefix + "off_ns_per_iter", off.ns_per_iter, "ns");
      reporter.Report(prefix + "on_ns_per_iter", on.ns_per_iter, "ns");
      reporter.Report(prefix + "overhead_pct", delta_pct, "%");
      reporter.Report(prefix + "on_allocs_per_iter", on.allocs_per_iter);
      reporter.Report(prefix + "digest_match", digests_match ? 1.0 : 0.0);
    }
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote(
      "no paper figure: pins the telemetry plane's overhead contract. "
      "Expected shape: delta under ~2% (relaxed atomic counter bumps + one "
      "span-ring store per iteration and phase), ON allocs/it exactly 0, "
      "digests identical -- observation never changes a served bit.");

  if (!contract_clean) {
    std::cout << "FAIL: telemetry ON allocated in steady state or changed "
                 "a served digest -- the observation contract is broken\n";
    return 1;
  }
  return 0;
}
