// Bench registry + the comet_bench driver loop: list, filter, repeat, time
// and JSON-export the registered paper-figure benches.
#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace comet::bench {
namespace {

struct RunRecord {
  std::string bench;
  int repeat = 0;
  BenchMetric metric;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatJsonDouble(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  const std::string s = os.str();
  // JSON has no inf/nan literals.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

// Collapses per-repeat records into one median record per (bench, metric),
// keeping first-appearance order. Median = exact nearest-rank p50
// (util/stats.h), so the collapsed value is always one that was actually
// measured; the collapsed record carries repeat = -1.
std::vector<RunRecord> MedianRecords(const std::vector<RunRecord>& records) {
  std::vector<RunRecord> out;
  std::vector<std::vector<double>> values;
  for (const RunRecord& r : records) {
    size_t slot = out.size();
    for (size_t i = 0; i < out.size(); ++i) {
      if (out[i].bench == r.bench && out[i].metric.metric == r.metric.metric) {
        slot = i;
        break;
      }
    }
    if (slot == out.size()) {
      out.push_back({r.bench, -1, r.metric});
      values.emplace_back();
    }
    values[slot].push_back(r.metric.value);
  }
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].metric.value = PercentileNearestRank(values[i], 50.0);
  }
  return out;
}

bool WriteJson(const std::string& path, const std::vector<RunRecord>& records,
               int repeat, bool median) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "comet_bench: cannot open --json path " << path << "\n";
    return false;
  }
  out << "{\n  \"schema\": \"comet_bench/v1\",\n  \"repeat\": " << repeat
      << ",\n  \"aggregate\": \"" << (median ? "median" : "none")
      << "\",\n  \"threads\": " << GlobalThreadCount() << ",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    out << "    {\"bench\": \"" << JsonEscape(r.bench)
        << "\", \"repeat\": " << r.repeat << ", \"metric\": \""
        << JsonEscape(r.metric.metric)
        << "\", \"value\": " << FormatJsonDouble(r.metric.value)
        << ", \"unit\": \"" << JsonEscape(r.metric.unit) << "\"}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

void PrintUsage() {
  std::cout <<
      "usage: comet_bench [options]\n"
      "  --list           print registered benches and exit\n"
      "  --only SUBSTR    run only benches whose name contains SUBSTR\n"
      "                   (comma-separated for several filters)\n"
      "  --repeat N       run each selected bench N times (default 1)\n"
      "  --median         collapse repeats to one median record per metric\n"
      "                   in the JSON output (repeat field becomes -1)\n"
      "  --json PATH      write per-bench name/metric/value records\n"
      "  --threads N      worker threads for the functional/timing plane\n"
      "                   (default: COMET_THREADS env, else hardware)\n"
      "  --ranks R        expert-parallel ranks for the functional\n"
      "                   multi-rank benches (default 4)\n"
      "  --dtype D        low-precision dtype for the dtype-parameterized\n"
      "                   benches: f32, bf16 or f16 (default bf16; f32\n"
      "                   disables the low-precision pass)\n"
      "  --replicas LIST  fleet sizes for the cluster serving sweep, comma\n"
      "                   list (default 1,2,4,8)\n"
      "  --placement LIST placement policies for the cluster sweep, comma\n"
      "                   list of rr|least-loaded|p2c|sticky (default all)\n"
      "  --faults         also run the fail-then-recover recovery sweep of\n"
      "                   the cluster serving bench (default off)\n"
      "  --skew           also run the expert-skew adaptation sweep of the\n"
      "                   serving bench (replication off vs on; default off)\n"
      "  --trace-out P    serve_loadgen: run a telemetry-on fault+recovery\n"
      "                   cluster scenario and write its Chrome trace (and a\n"
      "                   JSONL span log at P.jsonl) to P\n"
      "  --metrics-out P  serve_loadgen: write the same scenario's Prometheus\n"
      "                   text-exposition snapshot to P\n"
      "  --help           this message\n";
}

int g_bench_ranks = 4;
DType g_bench_dtype = DType::kBF16;
std::vector<int> g_bench_replicas = {1, 2, 4, 8};
std::vector<PlacementPolicy> g_bench_placements = {
    PlacementPolicy::kRoundRobin,
    PlacementPolicy::kLeastLoaded,
    PlacementPolicy::kPowerOfTwo,
    PlacementPolicy::kSticky,
};
bool g_bench_faults = false;
bool g_bench_skew = false;
std::string g_bench_trace_out;
std::string g_bench_metrics_out;

}  // namespace

int BenchRanks() { return g_bench_ranks; }

void SetBenchRanks(int ranks) { g_bench_ranks = ranks; }

DType BenchDType() { return g_bench_dtype; }

void SetBenchDType(DType dtype) { g_bench_dtype = dtype; }

const std::vector<int>& BenchReplicas() { return g_bench_replicas; }

void SetBenchReplicas(std::vector<int> replicas) {
  g_bench_replicas = std::move(replicas);
}

const std::vector<PlacementPolicy>& BenchPlacements() {
  return g_bench_placements;
}

void SetBenchPlacements(std::vector<PlacementPolicy> placements) {
  g_bench_placements = std::move(placements);
}

bool BenchFaults() { return g_bench_faults; }

void SetBenchFaults(bool on) { g_bench_faults = on; }

bool BenchSkew() { return g_bench_skew; }

void SetBenchSkew(bool on) { g_bench_skew = on; }

const std::string& BenchTraceOut() { return g_bench_trace_out; }

void SetBenchTraceOut(std::string path) {
  g_bench_trace_out = std::move(path);
}

const std::string& BenchMetricsOut() { return g_bench_metrics_out; }

void SetBenchMetricsOut(std::string path) {
  g_bench_metrics_out = std::move(path);
}

std::vector<BenchInfo>& Registry() {
  static std::vector<BenchInfo>* registry = new std::vector<BenchInfo>();
  return *registry;
}

BenchRegistrar::BenchRegistrar(const char* name, const char* description,
                               BenchFn fn) {
  Registry().push_back({name, description, fn});
}

int RunSingleBench(const std::string& name) {
  for (const BenchInfo& info : Registry()) {
    if (info.name == name) {
      BenchReporter reporter;
      return info.fn(reporter);
    }
  }
  std::cerr << "comet_bench: unknown bench '" << name << "'\n";
  return 1;
}

int BenchMain(int argc, char** argv) {
  bool list_only = false;
  bool median = false;
  std::vector<std::string> filters;
  int repeat = 1;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "comet_bench: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--only") {
      const char* v = next();
      if (v == nullptr) return 2;
      bool any = false;
      for (const std::string& f : Split(v, ',')) {
        if (!f.empty()) {
          filters.push_back(f);
          any = true;
        }
      }
      if (!any) {
        std::cerr << "comet_bench: --only got an empty filter\n";
        return 2;
      }
    } else if (arg == "--repeat") {
      const char* v = next();
      if (v == nullptr) return 2;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 1) {
        std::cerr << "comet_bench: --repeat needs a positive integer, got '"
                  << v << "'\n";
        return 2;
      }
      repeat = static_cast<int>(n);
    } else if (arg == "--median") {
      median = true;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return 2;
      json_path = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return 2;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      // Upper bound guards the long->int cast from silently truncating
      // (e.g. 2^32 -> 0 -> a serial run the user did not ask for).
      if (end == v || *end != '\0' || n < 1 || n > 4096) {
        std::cerr << "comet_bench: --threads needs an integer in [1, 4096], "
                  << "got '" << v << "'\n";
        return 2;
      }
      SetGlobalThreadCount(static_cast<int>(n));
    } else if (arg == "--ranks") {
      const char* v = next();
      if (v == nullptr) return 2;
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      // 64 ranks = 64 dedicated rank threads in the functional plane; more
      // is a typo, not a benchmark.
      if (end == v || *end != '\0' || n < 1 || n > 64) {
        std::cerr << "comet_bench: --ranks needs an integer in [1, 64], "
                  << "got '" << v << "'\n";
        return 2;
      }
      SetBenchRanks(static_cast<int>(n));
    } else if (arg == "--dtype") {
      const char* v = next();
      if (v == nullptr) return 2;
      const std::string d = v;
      if (d == "f32") {
        SetBenchDType(DType::kF32);
      } else if (d == "bf16") {
        SetBenchDType(DType::kBF16);
      } else if (d == "f16") {
        SetBenchDType(DType::kF16);
      } else {
        std::cerr << "comet_bench: --dtype must be f32, bf16 or f16, got '"
                  << d << "'\n";
        return 2;
      }
    } else if (arg == "--replicas") {
      const char* v = next();
      if (v == nullptr) return 2;
      std::vector<int> replicas;
      for (const std::string& part : Split(v, ',')) {
        char* end = nullptr;
        const long n = std::strtol(part.c_str(), &end, 10);
        // 64 is the dispatcher's accepting_mask width.
        if (part.empty() || end == part.c_str() || *end != '\0' || n < 1 ||
            n > 64) {
          std::cerr << "comet_bench: --replicas needs a comma list of "
                    << "integers in [1, 64], got '" << v << "'\n";
          return 2;
        }
        replicas.push_back(static_cast<int>(n));
      }
      if (replicas.empty()) {
        std::cerr << "comet_bench: --replicas got an empty list\n";
        return 2;
      }
      SetBenchReplicas(std::move(replicas));
    } else if (arg == "--placement") {
      const char* v = next();
      if (v == nullptr) return 2;
      std::vector<PlacementPolicy> placements;
      for (const std::string& part : Split(v, ',')) {
        try {
          placements.push_back(ParsePlacementPolicy(part));
        } catch (const CheckError&) {
          std::cerr << "comet_bench: --placement must be a comma list of "
                    << "rr|least-loaded|p2c|sticky, got '" << part << "'\n";
          return 2;
        }
      }
      if (placements.empty()) {
        std::cerr << "comet_bench: --placement got an empty list\n";
        return 2;
      }
      SetBenchPlacements(std::move(placements));
    } else if (arg == "--faults") {
      SetBenchFaults(true);
    } else if (arg == "--skew") {
      SetBenchSkew(true);
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return 2;
      SetBenchTraceOut(v);
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return 2;
      SetBenchMetricsOut(v);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      SetBenchTraceOut(arg.substr(std::string("--trace-out=").size()));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      SetBenchMetricsOut(arg.substr(std::string("--metrics-out=").size()));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::cerr << "comet_bench: unknown option '" << arg << "'\n";
      PrintUsage();
      return 2;
    }
  }

  // Fail on an unwritable --json path up front, not after the whole run.
  // Append mode: probing must not truncate a previous run's results.
  if (!json_path.empty()) {
    std::ofstream probe(json_path, std::ios::app);
    if (!probe) {
      std::cerr << "comet_bench: cannot open --json path " << json_path
                << "\n";
      return 2;
    }
  }

  std::vector<BenchInfo> benches = Registry();
  std::sort(benches.begin(), benches.end(),
            [](const BenchInfo& a, const BenchInfo& b) {
              return a.name < b.name;
            });

  if (list_only) {
    for (const BenchInfo& info : benches) {
      std::cout << info.name << "  -  " << info.description << "\n";
    }
    std::cout << benches.size() << " benches registered\n";
    return 0;
  }

  std::vector<BenchInfo> selected;
  for (const BenchInfo& info : benches) {
    if (filters.empty()) {
      selected.push_back(info);
      continue;
    }
    for (const std::string& f : filters) {
      if (info.name.find(f) != std::string::npos) {
        selected.push_back(info);
        break;
      }
    }
  }
  if (selected.empty()) {
    std::cerr << "comet_bench: no bench matches the --only filters "
              << "(try --list)\n";
    return 1;
  }

  std::cout << "threads: " << GlobalThreadCount() << "\n";
  std::vector<RunRecord> records;
  int failures = 0;
  for (size_t b = 0; b < selected.size(); ++b) {
    const BenchInfo& info = selected[b];
    for (int rep = 0; rep < repeat; ++rep) {
      std::cout << "[" << (b + 1) << "/" << selected.size() << "] "
                << info.name;
      if (repeat > 1) std::cout << " (repeat " << rep + 1 << "/" << repeat << ")";
      std::cout << "\n";

      BenchReporter reporter;
      const auto start = std::chrono::steady_clock::now();
      const int rc = info.fn(reporter);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (rc != 0) {
        std::cerr << "comet_bench: " << info.name << " exited with " << rc
                  << "\n";
        ++failures;
      }
      records.push_back({info.name, rep, {"wall_ms", wall_ms, "ms"}});
      for (const BenchMetric& m : reporter.results()) {
        records.push_back({info.name, rep, m});
      }
    }
  }

  if (!json_path.empty() &&
      !WriteJson(json_path, median ? MedianRecords(records) : records, repeat,
                 median)) {
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace comet::bench
