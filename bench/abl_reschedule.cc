// Ablation: shared-tensor rescheduling (paper §3.1.2).
//
// COMET with rescheduling ON sorts layer0 rows by source (locals first) and
// runs layer1 tiles column-panel-major; OFF leaves the canonical token-order
// rows and expert-major tiles. Everything else (specialization, adaptive nc)
// stays identical, so the delta isolates the rescheduling contribution: with
// canonical order, early tiles wait on remote tokens (layer0) and the
// combine cannot start until the last expert finishes (layer1).
#include "bench/bench_common.h"

using namespace comet;
using namespace comet::bench;

REGISTER_BENCH(abl_reschedule, "Ablation: shared-tensor rescheduling on/off (paper 3.1.2)") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const ParallelConfig parallel{1, 8};
  const auto cluster = H800Cluster(8);

  PrintHeader("Ablation: shared-tensor rescheduling",
              "E=8 topk=2 EP=8 TP=1, H800x8; layer duration in ms");

  AsciiTable table({"M", "Comet (resched ON)", "Comet (resched OFF)",
                    "reschedule gain"});
  for (int64_t m : {4096, 8192, 16384, 32768}) {
    const MoeWorkload workload = TimedWorkload(model, parallel, m);
    CometExecutor on{CometOptions{.reschedule = true}};
    CometExecutor off{CometOptions{.reschedule = false}};
    const double on_us =
        on.Run(workload, cluster, ExecMode::kTimedOnly).duration_us;
    const double off_us =
        off.Run(workload, cluster, ExecMode::kTimedOnly).duration_us;
    table.AddRow({std::to_string(m), FormatUsAsMs(on_us), FormatUsAsMs(off_us),
                  FormatSpeedup(off_us / on_us)});
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote("design-choice ablation (no paper figure): rescheduling is "
                 "what turns fine-grained decomposition into actual overlap.");
  return 0;
}
