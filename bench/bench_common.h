// Shared helpers for the paper-figure bench binaries.
//
// Every binary regenerates one table or figure from the paper's evaluation:
// it builds the paper's workload (timing plane only -- tensor contents are
// never touched), runs COMET and the baselines, and prints the same
// rows/series the paper reports, plus the paper's reference numbers where
// the text states them.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fastermoe.h"
#include "baselines/megatron.h"
#include "baselines/tutel.h"
#include "core/comet_executor.h"
#include "exec/execution.h"
#include "moe/workload.h"
#include "util/table.h"

namespace comet::bench {

// Builds a timing-plane workload (no tensor materialization).
inline MoeWorkload TimedWorkload(const ModelConfig& model,
                                 const ParallelConfig& parallel,
                                 int64_t total_tokens, double load_std = 0.0,
                                 uint64_t seed = 1) {
  WorkloadOptions options;
  options.seed = seed;
  options.load_std = load_std;
  options.materialize = false;
  return MakeWorkload(model, parallel, total_tokens, options);
}

// The five systems of the paper's evaluation, in its plotting order.
struct SystemSet {
  MegatronExecutor megatron_te = MakeMegatronTe();
  MegatronExecutor megatron_cutlass = MakeMegatronCutlass();
  FasterMoeExecutor fastermoe;
  TutelExecutor tutel;
  CometExecutor comet;

  std::vector<MoeLayerExecutor*> All() {
    return {&megatron_te, &megatron_cutlass, &fastermoe, &tutel, &comet};
  }
  std::vector<MoeLayerExecutor*> Baselines() {
    return {&megatron_te, &megatron_cutlass, &fastermoe, &tutel};
  }
};

inline void PrintHeader(const std::string& title, const std::string& setup) {
  std::cout << "=== " << title << " ===\n";
  if (!setup.empty()) {
    std::cout << setup << "\n";
  }
  std::cout << "\n";
}

inline void PrintPaperNote(const std::string& note) {
  std::cout << "paper reference: " << note << "\n\n";
}

}  // namespace comet::bench
