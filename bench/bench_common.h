// Shared infrastructure for the paper-figure benches.
//
// Every bench regenerates one table or figure from the paper's evaluation:
// it builds the paper's workload (timing plane only -- tensor contents are
// never touched), runs COMET and the baselines, and prints the same
// rows/series the paper reports, plus the paper's reference numbers where
// the text states them.
//
// Benches self-register with REGISTER_BENCH (one per translation unit) so a
// single `comet_bench` driver can list, filter and time all of them and emit
// machine-readable JSON, while each figure keeps a thin standalone binary
// built from the same object file.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/fastermoe.h"
#include "baselines/megatron.h"
#include "baselines/tutel.h"
#include "core/comet_executor.h"
#include "exec/execution.h"
#include "moe/workload.h"
#include "serve/placement.h"
#include "util/table.h"

namespace comet::bench {

// ---- metric reporting ------------------------------------------------------

struct BenchMetric {
  std::string metric;
  double value = 0.0;
  std::string unit;  // "ms", "ns/op", "%", ... empty = dimensionless
};

// Collects the numbers a bench wants in the JSON output, alongside whatever
// human-readable tables it prints. The driver adds a `wall_ms` record per run
// on top of these.
class BenchReporter {
 public:
  void Report(std::string metric, double value, std::string unit = {}) {
    results_.push_back({std::move(metric), value, std::move(unit)});
  }
  const std::vector<BenchMetric>& results() const { return results_; }
  void Clear() { results_.clear(); }

 private:
  std::vector<BenchMetric> results_;
};

// ---- registry --------------------------------------------------------------

using BenchFn = int (*)(BenchReporter&);

struct BenchInfo {
  std::string name;
  std::string description;
  BenchFn fn = nullptr;
};

// Registered benches, in registration order (the driver sorts by name).
std::vector<BenchInfo>& Registry();

struct BenchRegistrar {
  BenchRegistrar(const char* name, const char* description, BenchFn fn);
};

// CLI entry point of the `comet_bench` driver (the thin per-figure binaries
// call RunSingleBench below instead).
//   --list            print registered benches and exit
//   --only SUBSTR     comma-separated substring filters
//   --repeat N        run each selected bench N times
//   --json PATH       write name/metric/value records as JSON
//   --ranks R         EP world size for the functional multi-rank benches
int BenchMain(int argc, char** argv);

// Expert-parallel world size the functional multi-rank benches execute with
// (ext_multinode_functional). Set by `comet_bench --ranks R`; default 4.
int BenchRanks();
void SetBenchRanks(int ranks);

// Low-precision storage dtype for the dtype-parameterized benches
// (micro_groupgemm, ext_multinode_functional): their f32 records always run;
// a second pass runs at this dtype, with the dtype name baked into the
// metric names. Set by `comet_bench --dtype {f32,bf16,f16}`; default kBF16
// (the paper's training dtype). kF32 disables the extra pass.
DType BenchDType();
void SetBenchDType(DType dtype);

// Fleet sizes the cluster-scale serving sweep runs (serve_loadgen). Set by
// `comet_bench --replicas 1,2,4` (comma list); default {1, 2, 4, 8}.
const std::vector<int>& BenchReplicas();
void SetBenchReplicas(std::vector<int> replicas);

// Placement policies the cluster sweep runs. Set by `comet_bench
// --placement rr,p2c` (comma list of rr | least-loaded | p2c | sticky);
// default all four.
const std::vector<PlacementPolicy>& BenchPlacements();
void SetBenchPlacements(std::vector<PlacementPolicy> placements);

// Recovery-plane sweep of the cluster serving bench (serve_loadgen): a
// fail-then-recover scenario swept over MTTR x retry budget x hedging,
// reporting SLO attainment, lost requests, wasted tokens, and whether every
// served bit matched the no-fault run. Set by `comet_bench --faults`;
// default off (the sweep roughly doubles serve_loadgen's runtime).
bool BenchFaults();
void SetBenchFaults(bool on);

// Telemetry emission from the cluster serving bench (serve_loadgen): when
// either path is non-empty, the bench re-runs a fault+recovery cluster
// scenario with the telemetry plane ON and writes a Chrome trace
// (--trace-out), a Prometheus text snapshot (--metrics-out), and a JSONL
// span log next to the trace -- after checking the telemetry-on digest
// equals the telemetry-off run's. Set by `comet_bench --trace-out PATH` /
// `--metrics-out PATH`; default empty (off).
const std::string& BenchTraceOut();
void SetBenchTraceOut(std::string path);
const std::string& BenchMetricsOut();
void SetBenchMetricsOut(std::string path);

// Adaptation-plane sweep of the serving bench (serve_loadgen): synthetic
// skewed routing (load std in {0, 0.032, 0.1} -- 0.032 is the paper's
// production trace, Figure 14), static and drifting hot spots, with
// hot-expert replication off vs on, reporting p99 ITL/e2e, promotions, and
// whether the served bits matched the unadapted run (they must: replication
// is bit-transparent). Set by `comet_bench --skew`; default off.
bool BenchSkew();
void SetBenchSkew(bool on);

// Runs exactly one bench by full name (used by the per-figure binaries).
int RunSingleBench(const std::string& name);

// Declares + registers a bench in one go. One per translation unit:
//
//   REGISTER_BENCH(fig09_end_to_end, "Figure 9: end-to-end model latency") {
//     ...;           // `reporter` is in scope for BenchReporter::Report
//     return 0;
//   }
#define REGISTER_BENCH(ident, description)                                 \
  static int CometBenchBody(::comet::bench::BenchReporter&);               \
  static const ::comet::bench::BenchRegistrar kCometBenchRegistrar{        \
      #ident, description, &CometBenchBody};                               \
  static int CometBenchBody(                                               \
      [[maybe_unused]] ::comet::bench::BenchReporter& reporter)

// ---- micro-timing helpers --------------------------------------------------

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct TimedLoop {
  double ns_per_iter = 0.0;
  int64_t iters = 0;
};

// Runs `fn` in growing batches until `min_time_s` of wall clock has been
// spent, then reports mean ns per call -- a no-dependency stand-in for
// google-benchmark, good enough for the host-side metadata ops we time.
template <typename F>
TimedLoop TimeIt(F&& fn, double min_time_s = 0.2) {
  using Clock = std::chrono::steady_clock;
  TimedLoop out;
  int64_t batch = 1;
  double elapsed_s = 0.0;
  while (elapsed_s < min_time_s) {
    const auto start = Clock::now();
    for (int64_t i = 0; i < batch; ++i) {
      fn();
    }
    elapsed_s += std::chrono::duration<double>(Clock::now() - start).count();
    out.iters += batch;
    batch *= 2;
  }
  out.ns_per_iter = elapsed_s * 1e9 / static_cast<double>(out.iters);
  return out;
}

// ---- paper-workload helpers (unchanged from the standalone binaries) -------

// Builds a timing-plane workload (no tensor materialization).
inline MoeWorkload TimedWorkload(const ModelConfig& model,
                                 const ParallelConfig& parallel,
                                 int64_t total_tokens, double load_std = 0.0,
                                 uint64_t seed = 1) {
  WorkloadOptions options;
  options.seed = seed;
  options.load_std = load_std;
  options.materialize = false;
  return MakeWorkload(model, parallel, total_tokens, options);
}

// The five systems of the paper's evaluation, in its plotting order.
struct SystemSet {
  MegatronExecutor megatron_te = MakeMegatronTe();
  MegatronExecutor megatron_cutlass = MakeMegatronCutlass();
  FasterMoeExecutor fastermoe;
  TutelExecutor tutel;
  CometExecutor comet;

  std::vector<MoeLayerExecutor*> All() {
    return {&megatron_te, &megatron_cutlass, &fastermoe, &tutel, &comet};
  }
  std::vector<MoeLayerExecutor*> Baselines() {
    return {&megatron_te, &megatron_cutlass, &fastermoe, &tutel};
  }
};

inline void PrintHeader(const std::string& title, const std::string& setup) {
  std::cout << "=== " << title << " ===\n";
  if (!setup.empty()) {
    std::cout << setup << "\n";
  }
  std::cout << "\n";
}

inline void PrintPaperNote(const std::string& note) {
  std::cout << "paper reference: " << note << "\n\n";
}

}  // namespace comet::bench
