// Figure 1(b): coarse-grained communication-computation overlap by chunking.
//
// The paper's motivating illustration: splitting the input into C chunks
// lets chunk c+1's all-to-all overlap chunk c's expert GEMM, but (a) each
// chunk's GEMM runs on 1/C of the rows and loses efficiency (t1 + t2 > t:
// wave quantization + smaller per-expert batches), and (b) the first
// receive and last send can never be hidden. This bench sweeps the pipeline
// degree of a chunked kernel-per-op baseline and compares against both the
// unpipelined baseline (degree 1) and COMET's fine-grained overlap, showing
// why chunking alone plateaus well short of COMET.
#include "bench/bench_common.h"
#include "sim/stream_sim.h"

using namespace comet;
using namespace comet::bench;

namespace {

// Chunked Megatron-style MoE layer on `rank`: phase-major, chunk-minor
// issue so chunk c+1's dispatch overlaps chunk c's experts (the Figure 1(b)
// schedule), with per-chunk kernels and launches.
double ChunkedLayerUs(const MoeWorkload& w, const OpCostModel& costs,
                      int rank, int degree) {
  const BaselineQuantities q =
      ComputeQuantities(w, costs, rank, 0.85, 1.0 / degree);
  StreamSim sim(costs.LaunchUs());
  const int comp = sim.AddStream("compute");
  const int comm = sim.AddStream("comm");
  sim.Launch(comp, "gate", OpCategory::kGating, q.gate_us);
  sim.HostWork("routing-bookkeeping", kAuxRoutingKernels * costs.LaunchUs());

  std::vector<KernelId> a2a(static_cast<size_t>(degree));
  std::vector<KernelId> gemm1(static_cast<size_t>(degree));
  for (int c = 0; c < degree; ++c) {
    const KernelId perm = sim.Launch(comp, "permute", OpCategory::kLayer0Comp,
                                     q.permute_us);
    a2a[static_cast<size_t>(c)] = sim.Launch(
        comm, "a2a-dispatch", OpCategory::kLayer0Comm, q.a2a_dispatch_us,
        {perm});
  }
  for (int c = 0; c < degree; ++c) {
    const KernelId g0 = sim.Launch(comp, "gemm0", OpCategory::kLayer0Comp,
                                   q.gemm0_us, {a2a[static_cast<size_t>(c)]});
    const KernelId act = sim.Launch(comp, "act", OpCategory::kActivation,
                                    q.activation_us, {g0});
    gemm1[static_cast<size_t>(c)] =
        sim.Launch(comp, "gemm1", OpCategory::kLayer1Comp, q.gemm1_us, {act});
  }
  for (int c = 0; c < degree; ++c) {
    const KernelId ret = sim.Launch(comm, "a2a-return",
                                    OpCategory::kLayer1Comm, q.a2a_return_us,
                                    {gemm1[static_cast<size_t>(c)]});
    sim.Launch(comp, "combine", OpCategory::kLayer1Comp, q.unpermute_us,
               {ret});
  }
  return sim.Finish();
}

}  // namespace

REGISTER_BENCH(fig01b_coarse_pipeline, "Figure 1(b): coarse-grained overlap by chunking") {
  ModelConfig model = Mixtral8x7B();
  model.num_experts = 8;
  model.topk = 2;
  const auto cluster = H800Cluster(8);
  const OpCostModel costs(cluster);

  PrintHeader("Figure 1(b): coarse-grained pipelining vs fine-grained overlap",
              "E=8 topk=2 EP=8 TP=1, Mixtral shapes, H800x8; layer ms "
              "(worst rank)");

  AsciiTable table({"M", "no overlap (C=1)", "C=2", "C=4", "C=8",
                    "best chunked", "Comet", "Comet vs best chunked"});
  for (const int64_t m : {4096, 8192, 16384}) {
    const MoeWorkload w = TimedWorkload(model, ParallelConfig{1, 8}, m);
    std::vector<std::string> row{std::to_string(m)};
    double best_chunked = 1e300;
    for (const int degree : {1, 2, 4, 8}) {
      double worst = 0.0;
      for (int r = 0; r < w.world(); ++r) {
        worst = std::max(worst, ChunkedLayerUs(w, costs, r, degree));
      }
      row.push_back(FormatUsAsMs(worst));
      if (degree > 1) {
        best_chunked = std::min(best_chunked, worst);
      }
    }
    CometExecutor comet;
    const double ours =
        comet.Run(w, cluster, ExecMode::kTimedOnly).duration_us;
    row.push_back(FormatUsAsMs(best_chunked));
    row.push_back(FormatUsAsMs(ours));
    row.push_back(FormatSpeedup(best_chunked / ours));
    table.AddRow(std::move(row));
  }
  std::cout << table.Render() << "\n";
  PrintPaperNote(
      "Figure 1(b) is illustrative (no numbers): chunking helps over no "
      "overlap but partitioned experts pay t1 + t2 > t and the first/last "
      "phases never hide, so gains plateau; COMET's fine-grained overlap "
      "beats the best chunk degree.");
  return 0;
}
