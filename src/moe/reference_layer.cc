#include "moe/reference_layer.h"

#include "moe/group_gemm.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

ExpertBatch GatherExpertBatch(const MoeWorkload& w, int64_t expert) {
  ExpertBatch batch;
  for (int64_t t = 0; t < w.placement.total_tokens(); ++t) {
    const TokenRoute& route = w.routing.tokens[static_cast<size_t>(t)];
    for (size_t k = 0; k < route.experts.size(); ++k) {
      if (route.experts[k] == expert) {
        batch.tokens.push_back(t);
        batch.weights.push_back(route.weights[k]);
        batch.slots.push_back(static_cast<int64_t>(k));
      }
    }
  }
  batch.rows = Tensor(Shape{static_cast<int64_t>(batch.tokens.size()),
                            w.model().embedding});
  ParallelFor(0, static_cast<int64_t>(batch.tokens.size()), 16,
              [&](int64_t i) {
                batch.rows.SetRow(i, w.TokenRow(batch.tokens[static_cast<size_t>(i)]));
              });
  return batch;
}

namespace {

std::vector<Tensor> SplitPerGroup(const MoeWorkload& w, const Tensor& global,
                                  DType dtype = DType::kF32) {
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(w.placement.parallel().ep));
  for (int g = 0; g < w.placement.parallel().ep; ++g) {
    Tensor out(Shape{w.placement.tokens_per_group(), w.model().embedding},
               dtype);
    const int64_t base = w.placement.FirstTokenOfGroup(g);
    ParallelFor(0, out.rows(), 16,
                [&](int64_t i) { out.SetRow(i, global.row(base + i)); });
    outputs.push_back(std::move(out));
  }
  return outputs;
}

}  // namespace

std::vector<Tensor> ReferenceMoeLayer(const MoeWorkload& w) {
  const int64_t m = w.placement.total_tokens();
  const int64_t n = w.model().embedding;
  const int64_t topk = w.model().topk;

  // contributions[t * topk + slot] = weight * expert_output_row
  Tensor contributions(Shape{m * topk, n});
  for (int64_t e = 0; e < w.model().num_experts; ++e) {
    ExpertBatch batch = GatherExpertBatch(w, e);
    if (batch.tokens.empty()) {
      continue;
    }
    const int64_t rows = batch.rows.rows();
    Tensor hidden(Shape{rows, w.model().ffn_hidden});
    Gemm(batch.rows, w.weights->W0(e), hidden);
    ApplyActivation(hidden, w.activation);
    Tensor y(Shape{rows, n});
    Gemm(hidden, w.weights->W1(e), y);
    for (int64_t i = 0; i < rows; ++i) {
      const int64_t t = batch.tokens[static_cast<size_t>(i)];
      const int64_t slot = batch.slots[static_cast<size_t>(i)];
      contributions.AccumulateRow(t * topk + slot, y.row(i),
                                  batch.weights[static_cast<size_t>(i)]);
    }
  }

  // Combine in canonical slot-ascending order; tokens own disjoint rows.
  Tensor global(Shape{m, n});
  ParallelFor(0, m, 8, [&](int64_t t) {
    for (int64_t k = 0; k < topk; ++k) {
      global.AccumulateRow(t, contributions.row(t * topk + k), 1.0f);
    }
  });
  return SplitPerGroup(w, global);
}

std::vector<Tensor> ShardedReferenceMoeLayer(const MoeWorkload& w) {
  return ShardedReferenceMoeLayer(w, w.dtype());
}

std::vector<Tensor> ShardedReferenceMoeLayer(const MoeWorkload& w,
                                             DType compute_dtype) {
  const int64_t m = w.placement.total_tokens();
  const int64_t n = w.model().embedding;
  const int64_t topk = w.model().topk;
  const int tp = w.placement.parallel().tp;

  // One weighted partial per (token, slot, tp rank); reduced canonically:
  // slot-major outer, TP-rank inner, both ascending. Partials stay f32:
  // weight * y products accumulate unrounded between the GEMM store and the
  // per-row output rounding, exactly as the executors' combine does.
  Tensor global(Shape{m, n});
  std::vector<Tensor> partials;  // indexed by tp, each (m * topk, n)
  partials.reserve(static_cast<size_t>(tp));
  for (int t = 0; t < tp; ++t) {
    partials.emplace_back(Shape{m * topk, n});
  }

  for (int64_t e = 0; e < w.model().num_experts; ++e) {
    ExpertBatch batch = GatherExpertBatch(w, e);
    if (batch.tokens.empty()) {
      continue;
    }
    const int64_t rows = batch.rows.rows();
    for (int t = 0; t < tp; ++t) {
      // Intermediates at the compute dtype: Gemm/ApplyActivation round on
      // store when it is 2-byte.
      Tensor hidden(Shape{rows, w.placement.HiddenPerTpRank()}, compute_dtype);
      Gemm(batch.rows, w.sharded_weights->W0Shard(e, t), hidden);
      ApplyActivation(hidden, w.activation);
      Tensor y(Shape{rows, n}, compute_dtype);
      Gemm(hidden, w.sharded_weights->W1Shard(e, t), y);
      for (int64_t i = 0; i < rows; ++i) {
        const int64_t tok = batch.tokens[static_cast<size_t>(i)];
        const int64_t slot = batch.slots[static_cast<size_t>(i)];
        partials[static_cast<size_t>(t)].AccumulateRow(
            tok * topk + slot, y.row(i), batch.weights[static_cast<size_t>(i)]);
      }
    }
  }

  ParallelFor(0, m, 8, [&](int64_t t) {
    for (int64_t k = 0; k < topk; ++k) {
      for (int r = 0; r < tp; ++r) {
        global.AccumulateRow(t, partials[static_cast<size_t>(r)].row(t * topk + k),
                             1.0f);
      }
    }
    // One rounding per output row, after the full canonical reduction --
    // the combine kernels' store point.
    QuantizeSpan(global.row(t), compute_dtype);
  });
  return SplitPerGroup(w, global, compute_dtype);
}

}  // namespace comet
