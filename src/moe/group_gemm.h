// Blocked CPU GEMM / GroupGEMM with explicit tile structure.
//
// High-performance GPU GroupGEMM kernels (CUTLASS grouped GEMM, which the
// paper builds on) decompose every per-expert problem into BLOCK_M x BLOCK_N
// output tiles and stream tiles through the SMs. COMET's whole contribution
// is about *ordering* those tiles, so the functional plane exposes the same
// tile structure: callers can run a whole problem at once (reference path) or
// compute one tile at a time in any order (COMET path) and must get identical
// results -- each output element is produced by exactly one tile.
//
// Mixed precision: when C's dtype is BF16/F16 every kernel computes in f32
// and rounds each C element once on store (RNE) -- the tensor-core contract.
// Inputs are expected to satisfy the representability invariant
// (tensor/tensor.h); they are consumed as their exact f32 masters. The
// rounded value is a pure function of its coordinates, so the tile-order and
// thread-count bit-exactness guarantees hold at every dtype.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace comet {

// C = A x B with A (m, k), B (k, n), C (m, n), row-major. Accumulates in
// f32; rounds on store at C's dtype; deterministic.
void Gemm(const Tensor& a, const Tensor& b, Tensor& c);

// Computes rows [row_begin, row_end) x cols [col_begin, col_end) of C only.
// Other elements of C are untouched.
void GemmTile(const Tensor& a, const Tensor& b, Tensor& c, int64_t row_begin,
              int64_t row_end, int64_t col_begin, int64_t col_end);

// C = A x B^T with A (m, k), B (n, k), C (m, n). The dgrad of a forward
// `Y = X W`: dX = dY W^T without materializing the transpose.
void GemmNT(const Tensor& a, const Tensor& b, Tensor& c);
// Tile variant of GemmNT over C rows/cols; untouched elsewhere.
void GemmNTTile(const Tensor& a, const Tensor& b, Tensor& c,
                int64_t row_begin, int64_t row_end, int64_t col_begin,
                int64_t col_end);

// C = A^T x B with A (m, k), B (m, n), C (k, n). The wgrad of a forward
// `Y = X W`: dW = X^T dY. The reduction runs over A/B rows in ascending
// order, so the result is deterministic for a fixed operand pair.
void GemmTN(const Tensor& a, const Tensor& b, Tensor& c);
// Tile variant of GemmTN over C rows/cols (both output dims; the row
// reduction is never split, keeping per-tile determinism).
void GemmTNTile(const Tensor& a, const Tensor& b, Tensor& c,
                int64_t row_begin, int64_t row_end, int64_t col_begin,
                int64_t col_end);

// One output tile of a grouped problem.
struct GemmTileCoord {
  int64_t group = 0;      // which per-expert problem
  int64_t row_begin = 0;  // rows within the group's A/C
  int64_t row_end = 0;
  int64_t col_begin = 0;  // cols within the group's B/C
  int64_t col_end = 0;
};

// A grouped GEMM: per-group operand/output triples sharing (n, k).
struct GroupGemmProblem {
  std::vector<const Tensor*> a;  // (m_g, k)
  std::vector<const Tensor*> b;  // (k, n)
  std::vector<Tensor*> c;        // (m_g, n)
};

// Enumerates all tiles of the grouped problem in the canonical row-major,
// group-major order (group 0 tiles first, rows outer, cols inner) -- the
// order an unmodified grouped GEMM walks them (paper Figure 5 "GroupGEMM
// compute sequence" before rescheduling).
std::vector<GemmTileCoord> EnumerateTiles(const GroupGemmProblem& problem,
                                          int64_t tile_m, int64_t tile_n);

// Executes one tile of the grouped problem.
void RunTile(const GroupGemmProblem& problem, const GemmTileCoord& tile);

// Pre-sizes the CALLING thread's packed-B panel scratch for reduction depths
// up to `max_k`. The scratch is thread-local; the serving plane runs this on
// every pool worker and rank thread during warm-up so steady-state tile
// kernels never allocate.
void WarmGemmScratch(int64_t max_k);

// Executes all tiles in the given order; with the canonical order this is
// the reference grouped GEMM.
void RunGroupGemm(const GroupGemmProblem& problem,
                  const std::vector<GemmTileCoord>& tiles);

}  // namespace comet
