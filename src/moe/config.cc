#include "moe/config.h"

#include <sstream>

#include "util/check.h"

namespace comet {

std::string ModelConfig::ToString() const {
  std::ostringstream os;
  os << name << "(L=" << layers << ", E=" << num_experts << ", topk=" << topk
     << ", N=" << embedding << ", K=" << ffn_hidden << ")";
  return os.str();
}

ModelConfig Mixtral8x7B() {
  return ModelConfig{"Mixtral-8x7B", 32, 8, 2, 4096, 14336, 32};
}

ModelConfig Qwen2Moe() {
  return ModelConfig{"Qwen2-MoE-2.7B", 24, 64, 4, 2048, 1408, 16};
}

ModelConfig Phi35Moe() {
  return ModelConfig{"Phi-3.5-MoE", 32, 16, 2, 4096, 6400, 32};
}

std::string ParallelConfig::ToString() const {
  std::ostringstream os;
  os << "TP" << tp << "xEP" << ep;
  return os.str();
}

Placement::Placement(const ModelConfig& model, const ParallelConfig& parallel,
                     int64_t total_tokens)
    : model_(model), parallel_(parallel), total_tokens_(total_tokens) {
  COMET_CHECK_GT(parallel_.tp, 0);
  COMET_CHECK_GT(parallel_.ep, 0);
  COMET_CHECK_GT(model_.num_experts, 0);
  COMET_CHECK_GT(model_.topk, 0);
  COMET_CHECK_LE(model_.topk, model_.num_experts);
  COMET_CHECK_EQ(model_.num_experts % parallel_.ep, 0)
      << "E must divide evenly over EP groups";
  COMET_CHECK_EQ(model_.ffn_hidden % parallel_.tp, 0)
      << "K must divide evenly over TP lanes";
  COMET_CHECK_GT(total_tokens_, 0);
  COMET_CHECK_EQ(total_tokens_ % parallel_.ep, 0)
      << "M must divide evenly over EP groups";
}

void Placement::ResetTotalTokens(int64_t total_tokens) {
  COMET_CHECK_GT(total_tokens, 0);
  COMET_CHECK_EQ(total_tokens % parallel_.ep, 0)
      << "M must divide evenly over EP groups";
  total_tokens_ = total_tokens;
}

int64_t Placement::tokens_per_group() const {
  return total_tokens_ / parallel_.ep;
}

int Placement::EpGroupOfRank(int rank) const {
  COMET_CHECK_GE(rank, 0);
  COMET_CHECK_LT(rank, world());
  return rank / parallel_.tp;
}

int Placement::TpLaneOfRank(int rank) const {
  COMET_CHECK_GE(rank, 0);
  COMET_CHECK_LT(rank, world());
  return rank % parallel_.tp;
}

int Placement::RankOf(int ep_group, int tp_lane) const {
  COMET_CHECK_GE(ep_group, 0);
  COMET_CHECK_LT(ep_group, parallel_.ep);
  COMET_CHECK_GE(tp_lane, 0);
  COMET_CHECK_LT(tp_lane, parallel_.tp);
  return ep_group * parallel_.tp + tp_lane;
}

int64_t Placement::ExpertsPerGroup() const {
  return model_.num_experts / parallel_.ep;
}

int Placement::EpGroupOfExpert(int64_t expert) const {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, model_.num_experts);
  return static_cast<int>(expert / ExpertsPerGroup());
}

int Placement::FirstRankOfExpert(int64_t expert) const {
  return EpGroupOfExpert(expert) * parallel_.tp;
}

bool Placement::RankOwnsExpert(int rank, int64_t expert) const {
  return EpGroupOfRank(rank) == EpGroupOfExpert(expert);
}

int64_t Placement::LocalExpertIndex(int64_t expert) const {
  return expert % ExpertsPerGroup();
}

int64_t Placement::GlobalExpertIndex(int rank, int64_t local) const {
  COMET_CHECK_GE(local, 0);
  COMET_CHECK_LT(local, ExpertsPerGroup());
  return static_cast<int64_t>(EpGroupOfRank(rank)) * ExpertsPerGroup() + local;
}

int64_t Placement::HiddenPerTpRank() const {
  return model_.ffn_hidden / parallel_.tp;
}

int Placement::HomeGroupOfToken(int64_t token) const {
  COMET_CHECK_GE(token, 0);
  COMET_CHECK_LT(token, total_tokens_);
  return static_cast<int>(token / tokens_per_group());
}

int64_t Placement::FirstTokenOfGroup(int group) const {
  COMET_CHECK_GE(group, 0);
  COMET_CHECK_LT(group, parallel_.ep);
  return static_cast<int64_t>(group) * tokens_per_group();
}

}  // namespace comet
