// Workload synthesis: everything an MoE-layer execution needs, reproducible
// from a seed. Used by tests, examples and every bench.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "moe/activation.h"
#include "moe/config.h"
#include "moe/expert_weights.h"
#include "moe/route_plan.h"
#include "moe/router.h"
#include "tensor/tensor.h"

namespace comet {

struct WorkloadOptions {
  uint64_t seed = 1;
  // Target std of the per-expert load fraction (paper Figure 14). 0 routes
  // uniformly in expectation.
  double load_std = 0.0;
  ActivationKind activation = ActivationKind::kGelu;
  float weight_stddev = 0.05f;
  float input_stddev = 1.0f;
  // Storage dtype of the materialized inputs and weights. At kBF16/kF16 the
  // workload is quantized at creation (RNE), so every executor consuming it
  // sees exactly the operands a low-precision training step would. Executors
  // must be asked to compute at the same dtype (CometOptions::compute_dtype).
  DType dtype = DType::kF32;
  // When false, only the routing/plan metadata is built: inputs stay empty
  // and weights null. Timing-plane runs never touch tensor contents, and at
  // paper-scale shapes materializing them costs gigabytes; benches use
  // materialize = false, functional tests the default.
  bool materialize = true;
};

// A fully-specified single-MoE-layer problem instance.
struct MoeWorkload {
  Placement placement;
  RoutingTable routing;
  RoutePlan plan;
  // One input tensor per EP group, (M/EP, N); TP lanes replicate it.
  std::vector<Tensor> inputs;
  std::shared_ptr<const ExpertWeights> weights;
  std::shared_ptr<const ShardedExpertWeights> sharded_weights;
  ActivationKind activation = ActivationKind::kGelu;

  const ModelConfig& model() const { return placement.model(); }
  int world() const { return placement.world(); }
  // Storage dtype of the materialized tensors (kF32 for timing-plane
  // workloads, which have none). The dtype-parameterized references default
  // their compute dtype to this.
  DType dtype() const {
    return inputs.empty() ? DType::kF32 : inputs[0].dtype();
  }

  // Row of the global token matrix for global token id `t`.
  std::span<const float> TokenRow(int64_t t) const;
};

// Builds a workload for `total_tokens` tokens of `model` under `parallel`.
MoeWorkload MakeWorkload(const ModelConfig& model,
                         const ParallelConfig& parallel, int64_t total_tokens,
                         const WorkloadOptions& options = {});

// Variant reusing existing weights (e.g. layer stacking in examples).
MoeWorkload MakeWorkloadWithWeights(
    const ModelConfig& model, const ParallelConfig& parallel,
    int64_t total_tokens, std::shared_ptr<const ExpertWeights> weights,
    std::shared_ptr<const ShardedExpertWeights> sharded,
    const WorkloadOptions& options = {});

}  // namespace comet
