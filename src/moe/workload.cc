#include "moe/workload.h"

#include "util/check.h"

namespace comet {

std::span<const float> MoeWorkload::TokenRow(int64_t t) const {
  const int home = placement.HomeGroupOfToken(t);
  const int64_t local_row = t - placement.FirstTokenOfGroup(home);
  return inputs[static_cast<size_t>(home)].row(local_row);
}

MoeWorkload MakeWorkloadWithWeights(
    const ModelConfig& model, const ParallelConfig& parallel,
    int64_t total_tokens, std::shared_ptr<const ExpertWeights> weights,
    std::shared_ptr<const ShardedExpertWeights> sharded,
    const WorkloadOptions& options) {
  COMET_CHECK(!options.materialize || weights != nullptr);
  COMET_CHECK(!options.materialize || sharded != nullptr);
  Placement placement(model, parallel, total_tokens);

  Rng rng(options.seed);
  SyntheticRouter router(
      rng.LoadVectorWithStd(static_cast<size_t>(model.num_experts),
                            options.load_std),
      options.seed ^ 0x9e3779b97f4a7c15ULL);
  RoutingTable routing = router.Route(total_tokens, model.topk);

  std::vector<Tensor> inputs;
  if (options.materialize) {
    inputs.reserve(static_cast<size_t>(parallel.ep));
    for (int g = 0; g < parallel.ep; ++g) {
      inputs.push_back(Tensor::Randn(
          Shape{placement.tokens_per_group(), model.embedding}, rng,
          options.input_stddev, options.dtype));
    }
  }

  RoutePlan plan(placement, routing);
  return MoeWorkload{std::move(placement), std::move(routing),
                     std::move(plan),      std::move(inputs),
                     std::move(weights),   std::move(sharded),
                     options.activation};
}

MoeWorkload MakeWorkload(const ModelConfig& model,
                         const ParallelConfig& parallel, int64_t total_tokens,
                         const WorkloadOptions& options) {
  std::shared_ptr<ExpertWeights> weights;
  std::shared_ptr<ShardedExpertWeights> sharded;
  if (options.materialize) {
    Rng weight_rng(options.seed + 17);
    // Weights are drawn in f32 and then quantized, so the f32 and 2-byte
    // variants of one seed share the same underlying draw (the bf16 weights
    // ARE the rounded f32 weights -- what the precision tier compares).
    weights = std::make_shared<ExpertWeights>(ExpertWeights::Random(
        model, weight_rng, options.weight_stddev, options.dtype));
    sharded = std::make_shared<ShardedExpertWeights>(*weights, parallel.tp);
  }
  return MakeWorkloadWithWeights(model, parallel, total_tokens,
                                 std::move(weights), std::move(sharded),
                                 options);
}

}  // namespace comet
