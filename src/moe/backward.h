// Backward pass of one MoE layer (training; the paper's production use).
//
// Given the loss gradient w.r.t. the combined layer output, produce:
//   * dinput  -- gradient w.r.t. the token inputs (flows to the previous
//     transformer block),
//   * dW0/dW1 -- weight gradients for every expert,
//   * dgate   -- gradient w.r.t. the topk combine weights (flows into the
//     gate's softmax backward, which lives outside the MoE layer proper).
//
// The data-flow mirror of the forward (paper Figure 2 reversed):
//   combine-grad DISPATCH (all-to-all of dY rows to the experts' ranks)
//     -> layer1 dgrad GEMM (dZ = dY W1^T) + layer1 wgrad (dW1 = Z^T dY)
//     -> activation backward (dH = dZ * act'(H))
//     -> layer0 dgrad GEMM (dA = dH W0^T) + layer0 wgrad (dW0 = A^T dH)
//     -> UNDISPATCH (all-to-all of dA rows back to the tokens' home ranks,
//        summed over topk slots).
// So backward has the same two producer-consumer pipelines as forward, with
// the roles of the two shared tensors swapped -- which is why COMET's
// dependency resolving applies unchanged (core/comet_backward).
//
// Two references, mirroring moe/reference_layer:
//   * ReferenceMoeBackward      -- full unsharded weights, the gold standard.
//   * ShardedReferenceMoeBackward -- through the TP shards with the canonical
//     accumulation order (topk slot-major, then TP lane-major). Distributed
//     backward executors must match this BIT-EXACTLY.
#pragma once

#include <vector>

#include "moe/reference_layer.h"
#include "moe/workload.h"
#include "tensor/tensor.h"

namespace comet {

// Gradients of one MoE layer. Weight gradients are always materialized at
// full (unsharded) shape; sharded executors write disjoint column/row blocks
// so assembly is exact.
struct MoeGradients {
  // Per EP group, (M/EP, N): gradient w.r.t. the group's input tokens.
  std::vector<Tensor> dinput;
  // Per expert: dW0 (N, K) and dW1 (K, N).
  std::vector<Tensor> dw0;
  std::vector<Tensor> dw1;
  // (M, topk): gradient w.r.t. each token's combine weights.
  Tensor dgate;
};

// Per-expert tensors stashed by the forward pass that backward consumes.
// `hidden_pre` holds the layer0 GEMM output BEFORE the activation, and
// `hidden_post` after (both (m_e, K) full / (m_e, K/TP) per shard). Row
// order matches GatherExpertBatch (token-ascending).
struct ExpertForwardStash {
  ExpertBatch batch;
  Tensor hidden_pre;
  Tensor hidden_post;
  // Layer1 output Y_e = hidden_post W1 (m_e, N); needed for dgate.
  Tensor output;
};

// Runs the dense forward for `expert` and stashes everything backward needs.
ExpertForwardStash ForwardWithStash(const MoeWorkload& workload,
                                    int64_t expert);

// dout: one (M/EP, N) tensor per EP group (same layout the forward emits).
// Always computes in full f32 (the precision yardstick; cf.
// ReferenceMoeLayer).
MoeGradients ReferenceMoeBackward(const MoeWorkload& workload,
                                  const std::vector<Tensor>& dout);

// Sharded reference at `compute_dtype` (1-arg-less overload: the workload's
// storage dtype). Rounding points at a 2-byte dtype, mirrored exactly by
// CometBackward's functional plane: dY = round(weight * dout) per element;
// dgrad GEMM and activation-backward outputs round on store; dinput rows
// round once after the canonical (slot-major, lane-inner) reduction. Weight
// gradients and dgate stay f32 -- mixed-precision training keeps main grads
// in full precision.
MoeGradients ShardedReferenceMoeBackward(const MoeWorkload& workload,
                                         const std::vector<Tensor>& dout);
MoeGradients ShardedReferenceMoeBackward(const MoeWorkload& workload,
                                         const std::vector<Tensor>& dout,
                                         DType compute_dtype);

// Synthesizes a reproducible loss gradient (iid N(0,1)) shaped like the
// forward output: one (M/EP, N) tensor per EP group, at the workload's
// storage dtype (quantized like every other low-precision operand).
std::vector<Tensor> MakeLossGradient(const MoeWorkload& workload,
                                     uint64_t seed);

// Max |a - b| over every gradient field; shapes must match.
float MaxGradientDiff(const MoeGradients& a, const MoeGradients& b);

}  // namespace comet
