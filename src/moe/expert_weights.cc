#include "moe/expert_weights.h"

#include "util/check.h"

namespace comet {

ExpertWeights ExpertWeights::Random(const ModelConfig& model, Rng& rng,
                                    float stddev, DType dtype) {
  ExpertWeights w;
  w.w0_.reserve(static_cast<size_t>(model.num_experts));
  w.w1_.reserve(static_cast<size_t>(model.num_experts));
  for (int64_t e = 0; e < model.num_experts; ++e) {
    w.w0_.push_back(Tensor::Randn(Shape{model.embedding, model.ffn_hidden},
                                  rng, stddev, dtype));
    w.w1_.push_back(Tensor::Randn(Shape{model.ffn_hidden, model.embedding},
                                  rng, stddev, dtype));
  }
  return w;
}

int64_t ExpertWeights::embedding() const {
  COMET_CHECK(!w0_.empty());
  return w0_[0].rows();
}

int64_t ExpertWeights::ffn_hidden() const {
  COMET_CHECK(!w0_.empty());
  return w0_[0].cols();
}

const Tensor& ExpertWeights::W0(int64_t expert) const {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, num_experts());
  return w0_[static_cast<size_t>(expert)];
}

const Tensor& ExpertWeights::W1(int64_t expert) const {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, num_experts());
  return w1_[static_cast<size_t>(expert)];
}

Tensor& ExpertWeights::MutableW0(int64_t expert) {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, num_experts());
  return w0_[static_cast<size_t>(expert)];
}

Tensor& ExpertWeights::MutableW1(int64_t expert) {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, num_experts());
  return w1_[static_cast<size_t>(expert)];
}

ShardedExpertWeights::ShardedExpertWeights(const ExpertWeights& full, int tp)
    : tp_(tp), num_experts_(full.num_experts()) {
  COMET_CHECK_GT(tp_, 0);
  const int64_t k = full.ffn_hidden();
  const int64_t n = full.embedding();
  COMET_CHECK_EQ(k % tp_, 0);
  const int64_t shard_k = k / tp_;

  w0_shards_.reserve(static_cast<size_t>(num_experts_ * tp_));
  w1_shards_.reserve(static_cast<size_t>(num_experts_ * tp_));
  for (int64_t e = 0; e < num_experts_; ++e) {
    const Tensor& w0 = full.W0(e);
    const Tensor& w1 = full.W1(e);
    for (int t = 0; t < tp_; ++t) {
      const int64_t col0 = static_cast<int64_t>(t) * shard_k;
      // Shards inherit the full weights' dtype: copies of representable
      // values stay representable.
      Tensor s0(Shape{n, shard_k}, w0.dtype());
      for (int64_t r = 0; r < n; ++r) {
        for (int64_t c = 0; c < shard_k; ++c) {
          s0.at({r, c}) = w0.at({r, col0 + c});
        }
      }
      w0_shards_.push_back(std::move(s0));

      Tensor s1(Shape{shard_k, n}, w1.dtype());
      for (int64_t r = 0; r < shard_k; ++r) {
        s1.SetRow(r, w1.row(col0 + r));
      }
      w1_shards_.push_back(std::move(s1));
    }
  }
}

const Tensor& ShardedExpertWeights::W0Shard(int64_t expert, int tp_rank) const {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, num_experts_);
  COMET_CHECK_GE(tp_rank, 0);
  COMET_CHECK_LT(tp_rank, tp_);
  return w0_shards_[static_cast<size_t>(expert * tp_ + tp_rank)];
}

const Tensor& ShardedExpertWeights::W1Shard(int64_t expert, int tp_rank) const {
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, num_experts_);
  COMET_CHECK_GE(tp_rank, 0);
  COMET_CHECK_LT(tp_rank, tp_);
  return w1_shards_[static_cast<size_t>(expert * tp_ + tp_rank)];
}

}  // namespace comet
