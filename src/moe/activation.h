// Elementwise activations applied between the two expert feed-forward layers.
#pragma once

#include "tensor/tensor.h"

namespace comet {

enum class ActivationKind {
  kGelu,  // tanh approximation (the variant used by the evaluated models)
  kSilu,
  kRelu,
  kIdentity,
};

// Applies the activation in place over the whole tensor.
void ApplyActivation(Tensor& t, ActivationKind kind);

// Applies the activation in place over rows [row_begin, row_end) x cols
// [col_begin, col_end) only; used by tile-granular executors.
void ApplyActivationTile(Tensor& t, ActivationKind kind, int64_t row_begin,
                         int64_t row_end, int64_t col_begin, int64_t col_end);

// Scalar versions, exposed for tests.
float GeluScalar(float x);
float SiluScalar(float x);

// Derivative of the activation at pre-activation value `x`.
float ActivationGradScalar(ActivationKind kind, float x);

// Backward through the activation: grad[r, c] *= act'(pre[r, c]) over the
// tile. `pre` holds the PRE-activation values (the GEMM output before the
// forward applied the activation in place); shapes must match.
void ApplyActivationGradTile(Tensor& grad, const Tensor& pre,
                             ActivationKind kind, int64_t row_begin,
                             int64_t row_end, int64_t col_begin,
                             int64_t col_end);

// Whole-tensor convenience wrapper of ApplyActivationGradTile.
void ApplyActivationGrad(Tensor& grad, const Tensor& pre, ActivationKind kind);

}  // namespace comet
