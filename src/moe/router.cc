#include "moe/router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"
#include "util/stats.h"

namespace comet {

std::vector<int64_t> RoutingTable::ExpertLoads(int64_t num_experts) const {
  std::vector<int64_t> loads;
  ExpertLoadsInto(num_experts, &loads);
  return loads;
}

void RoutingTable::ExpertLoadsInto(int64_t num_experts,
                                   std::vector<int64_t>* loads) const {
  COMET_CHECK(loads != nullptr);
  loads->assign(static_cast<size_t>(num_experts), 0);
  for (const auto& t : tokens) {
    for (int64_t e : t.experts) {
      COMET_CHECK_GE(e, 0);
      COMET_CHECK_LT(e, num_experts);
      ++(*loads)[static_cast<size_t>(e)];
    }
  }
}

double LoadStdFromCounts(std::span<const int64_t> loads) {
  int64_t total = 0;
  for (int64_t l : loads) {
    total += l;
  }
  if (total == 0) {
    return 0.0;
  }
  // The two passes below recompute each fraction on the fly in the exact
  // accumulation order PopulationStddev uses over a materialized fractions
  // vector, so the result is bit-identical to the allocating formulation.
  double mean = 0.0;
  for (int64_t l : loads) {
    mean += static_cast<double>(l) / static_cast<double>(total);
  }
  mean /= static_cast<double>(loads.size());
  double var = 0.0;
  for (int64_t l : loads) {
    const double f = static_cast<double>(l) / static_cast<double>(total);
    var += (f - mean) * (f - mean);
  }
  return std::sqrt(var / static_cast<double>(loads.size()));
}

double RoutingTable::LoadStd(int64_t num_experts) const {
  const auto loads = ExpertLoads(num_experts);
  return LoadStdFromCounts(loads);
}

void RoutingTable::Validate(int64_t num_experts, int64_t topk,
                            DType dtype) const {
  // Each combine weight is a correctly-rounded value at `dtype`, so the
  // worst-case drift of a topk-term sum from exact 1 scales with topk ulps
  // at that dtype. f32 keeps the historical 1e-4 bound (generous for f32,
  // and every pre-existing caller's behavior is unchanged).
  const float tol = std::max(
      1e-4f, static_cast<float>(topk) * DTypeEpsilon(dtype));
  for (const auto& t : tokens) {
    COMET_CHECK_LE(static_cast<int64_t>(t.experts.size()), topk);
    COMET_CHECK_EQ(t.experts.size(), t.weights.size());
    float sum = 0.0f;
    for (size_t i = 0; i < t.experts.size(); ++i) {
      COMET_CHECK_GE(t.experts[i], 0);
      COMET_CHECK_LT(t.experts[i], num_experts);
      for (size_t j = i + 1; j < t.experts.size(); ++j) {
        COMET_CHECK_NE(t.experts[i], t.experts[j])
            << "token routed twice to expert " << t.experts[i];
      }
      COMET_CHECK_GE(t.weights[i], 0.0f);
      sum += t.weights[i];
    }
    COMET_CHECK(t.experts.empty() || std::abs(sum - 1.0f) < tol)
        << "combine weights sum to " << sum << " (tolerance " << tol
        << " at " << DTypeName(dtype) << ")";
  }
}

DropStats ApplyCapacityFactor(RoutingTable& routing, int64_t num_experts,
                              double capacity_factor) {
  COMET_CHECK_GT(num_experts, 0);
  COMET_CHECK_GT(capacity_factor, 0.0);
  int64_t total_pairs = 0;
  for (const auto& t : routing.tokens) {
    total_pairs += static_cast<int64_t>(t.experts.size());
  }
  DropStats stats;
  stats.capacity = static_cast<int64_t>(std::ceil(
      capacity_factor * static_cast<double>(total_pairs) /
      static_cast<double>(num_experts)));
  stats.overflow_per_expert.assign(static_cast<size_t>(num_experts), 0);

  std::vector<int64_t> used(static_cast<size_t>(num_experts), 0);
  for (auto& token : routing.tokens) {
    TokenRoute kept;
    float sum = 0.0f;
    for (size_t i = 0; i < token.experts.size(); ++i) {
      const size_t e = static_cast<size_t>(token.experts[i]);
      COMET_CHECK_LT(token.experts[i], num_experts);
      if (used[e] < stats.capacity) {
        ++used[e];
        kept.experts.push_back(token.experts[i]);
        kept.weights.push_back(token.weights[i]);
        sum += token.weights[i];
      } else {
        ++stats.dropped_pairs;
        ++stats.overflow_per_expert[e];
      }
    }
    if (kept.experts.empty() && !token.experts.empty()) {
      ++stats.fully_dropped_tokens;
    }
    if (sum > 0.0f) {
      for (auto& w : kept.weights) {
        w /= sum;
      }
    }
    token = std::move(kept);
  }
  return stats;
}

GateNetwork::GateNetwork(Tensor gate_weight)
    : gate_weight_(std::move(gate_weight)) {
  COMET_CHECK_EQ(gate_weight_.shape().rank(), 2u);
}

int64_t GateNetwork::num_experts() const { return gate_weight_.cols(); }

RoutingTable GateNetwork::Route(const Tensor& tokens, int64_t topk) const {
  RoutingTable table;
  GateScratch scratch;
  RouteInto(tokens, topk, scratch, &table);
  return table;
}

void GateNetwork::RouteInto(const Tensor& tokens, int64_t topk,
                            GateScratch& scratch, RoutingTable* table) const {
  COMET_CHECK(table != nullptr);
  COMET_CHECK_EQ(tokens.cols(), gate_weight_.rows());
  const int64_t e_total = num_experts();
  COMET_CHECK_GT(topk, 0);
  COMET_CHECK_LE(topk, e_total);

  table->tokens.resize(static_cast<size_t>(tokens.rows()));
  std::vector<float>& logits = scratch.logits;
  std::vector<float>& probs = scratch.probs;
  logits.resize(static_cast<size_t>(e_total));
  probs.resize(static_cast<size_t>(e_total));
  for (int64_t m = 0; m < tokens.rows(); ++m) {
    const auto x = tokens.row(m);
    for (int64_t e = 0; e < e_total; ++e) {
      float acc = 0.0f;
      for (int64_t n = 0; n < tokens.cols(); ++n) {
        acc += x[static_cast<size_t>(n)] *
               gate_weight_.at({n, e});
      }
      logits[static_cast<size_t>(e)] = acc;
    }
    // Softmax (max-subtracted) over all experts.
    const float max_logit = *std::max_element(logits.begin(), logits.end());
    float z = 0.0f;
    for (size_t e = 0; e < logits.size(); ++e) {
      probs[e] = std::exp(logits[e] - max_logit);
      z += probs[e];
    }
    for (auto& p : probs) {
      p /= z;
    }
    // Top-k by probability via iterative argmax, ties to the smaller expert
    // index. Identical selection (order included) to a stable descending
    // sort's k-prefix, without the sort's temporary buffer.
    TokenRoute& route = table->tokens[static_cast<size_t>(m)];
    route.experts.clear();
    route.weights.clear();
    float selected_sum = 0.0f;
    for (int64_t k = 0; k < topk; ++k) {
      int64_t best = -1;
      float best_p = 0.0f;
      for (int64_t e = 0; e < e_total; ++e) {
        bool taken = false;
        for (int64_t prev : route.experts) {
          if (prev == e) {
            taken = true;
            break;
          }
        }
        if (taken) {
          continue;
        }
        if (best < 0 || probs[static_cast<size_t>(e)] > best_p) {
          best = e;
          best_p = probs[static_cast<size_t>(e)];
        }
      }
      route.experts.push_back(best);
      route.weights.push_back(best_p);
      selected_sum += best_p;
    }
    for (auto& w : route.weights) {
      w /= selected_sum;
    }
  }
}

ExpertChoiceGate::ExpertChoiceGate(Tensor gate_weight)
    : gate_weight_(std::move(gate_weight)) {
  COMET_CHECK_EQ(gate_weight_.shape().rank(), 2u);
}

int64_t ExpertChoiceGate::num_experts() const { return gate_weight_.cols(); }

RoutingTable ExpertChoiceGate::Route(const Tensor& tokens,
                                     int64_t avg_topk) const {
  COMET_CHECK_EQ(tokens.cols(), gate_weight_.rows());
  const int64_t e_total = num_experts();
  const int64_t m = tokens.rows();
  COMET_CHECK_GT(avg_topk, 0);
  COMET_CHECK_LE(avg_topk, e_total);
  const int64_t capacity = std::max<int64_t>(
      1, m * avg_topk / e_total);  // tokens each expert admits

  // Token-major softmax probabilities over experts.
  std::vector<std::vector<float>> probs(
      static_cast<size_t>(m), std::vector<float>(static_cast<size_t>(e_total)));
  for (int64_t t = 0; t < m; ++t) {
    const auto x = tokens.row(t);
    auto& row = probs[static_cast<size_t>(t)];
    float max_logit = -std::numeric_limits<float>::infinity();
    for (int64_t e = 0; e < e_total; ++e) {
      float acc = 0.0f;
      for (int64_t n = 0; n < tokens.cols(); ++n) {
        acc += x[static_cast<size_t>(n)] * gate_weight_.at({n, e});
      }
      row[static_cast<size_t>(e)] = acc;
      max_logit = std::max(max_logit, acc);
    }
    float z = 0.0f;
    for (auto& p : row) {
      p = std::exp(p - max_logit);
      z += p;
    }
    for (auto& p : row) {
      p /= z;
    }
  }

  // Each expert takes its top-`capacity` tokens by probability.
  RoutingTable table;
  table.tokens.resize(static_cast<size_t>(m));
  for (int64_t e = 0; e < e_total; ++e) {
    std::vector<int64_t> order(static_cast<size_t>(m));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return probs[static_cast<size_t>(a)][static_cast<size_t>(e)] >
             probs[static_cast<size_t>(b)][static_cast<size_t>(e)];
    });
    for (int64_t i = 0; i < std::min(capacity, m); ++i) {
      const int64_t t = order[static_cast<size_t>(i)];
      table.tokens[static_cast<size_t>(t)].experts.push_back(e);
      table.tokens[static_cast<size_t>(t)].weights.push_back(
          probs[static_cast<size_t>(t)][static_cast<size_t>(e)]);
    }
  }

  // Renormalize per-token combine weights.
  for (auto& token : table.tokens) {
    float sum = 0.0f;
    for (float w : token.weights) {
      sum += w;
    }
    if (sum > 0.0f) {
      for (auto& w : token.weights) {
        w /= sum;
      }
    }
  }
  return table;
}

SyntheticRouter::SyntheticRouter(std::vector<double> load, uint64_t seed)
    : load_(std::move(load)), rng_(seed) {
  COMET_CHECK(!load_.empty());
  double sum = 0.0;
  for (double p : load_) {
    COMET_CHECK_GE(p, 0.0);
    sum += p;
  }
  COMET_CHECK_GT(sum, 0.0);
  for (auto& p : load_) {
    p /= sum;
  }
  weights_scratch_.reserve(load_.size());
}

RoutingTable SyntheticRouter::Route(int64_t num_tokens, int64_t topk) {
  RoutingTable table;
  RouteInto(num_tokens, topk, /*shift=*/0, &table);
  return table;
}

void SyntheticRouter::RouteInto(int64_t num_tokens, int64_t topk,
                                int64_t shift, RoutingTable* table) {
  COMET_CHECK(table != nullptr);
  const int64_t e_total = static_cast<int64_t>(load_.size());
  COMET_CHECK_GT(topk, 0);
  COMET_CHECK_LE(topk, e_total);
  COMET_CHECK_GE(shift, 0);
  table->tokens.resize(static_cast<size_t>(num_tokens));
  for (int64_t m = 0; m < num_tokens; ++m) {
    // Sample topk distinct experts without replacement. The shift rotates
    // the STORED ids only, after sampling, so the rng consumption (and
    // hence every later draw) is independent of the drift phase.
    weights_scratch_.assign(load_.begin(), load_.end());
    TokenRoute& route = table->tokens[static_cast<size_t>(m)];
    route.experts.clear();
    route.weights.clear();
    for (int64_t k = 0; k < topk; ++k) {
      const size_t e = rng_.Categorical(weights_scratch_);
      route.experts.push_back(
          (static_cast<int64_t>(e) + shift) % e_total);
      weights_scratch_[e] = 0.0;
    }
    // Random combine weights, renormalized.
    float sum = 0.0f;
    for (int64_t k = 0; k < topk; ++k) {
      const float w = static_cast<float>(rng_.Uniform(0.5, 1.5));
      route.weights.push_back(w);
      sum += w;
    }
    for (auto& w : route.weights) {
      w /= sum;
    }
  }
}

}  // namespace comet
