// Model and parallelism configuration (paper Tables 1 and 2).
//
// Symbols follow the paper: L transformer layers, E experts, topk experts per
// token, N token embedding size, K expert feed-forward hidden size; the
// parallel world W = TP x EP.
//
// Layout conventions (matching Megatron-LM's hybrid MoE parallelism):
//  * Rank r belongs to EP group r / TP and is TP lane r % TP within it.
//  * Expert e is owned by EP group e / (E / EP); its weights are sharded
//    along the hidden (K) dimension across the group's TP lanes.
//  * M is the GLOBAL token count of one iteration. Tokens are block-sharded
//    across EP groups (M / EP per group) and replicated across the TP lanes
//    of a group (tensor parallelism keeps full activations per lane).
//    Dispatch traffic therefore flows lane-matched between EP groups, and
//    tensor parallelism adds a reduce-scatter of layer1 partial sums across
//    each group's lanes.
#pragma once

#include <cstdint>
#include <string>

namespace comet {

struct ModelConfig {
  std::string name;
  int64_t layers = 0;       // L
  int64_t num_experts = 0;  // E
  int64_t topk = 0;
  int64_t embedding = 0;   // N
  int64_t ffn_hidden = 0;  // K
  // Attention heads (for the end-to-end runner's non-MoE cost); not part of
  // Table 2 but taken from the public model cards.
  int64_t num_heads = 32;

  std::string ToString() const;
};

// Table 2 presets.
ModelConfig Mixtral8x7B();
ModelConfig Qwen2Moe();
ModelConfig Phi35Moe();

struct ParallelConfig {
  int tp = 1;
  int ep = 1;

  int world() const { return tp * ep; }
  std::string ToString() const;
};

// Placement of experts and tokens over the parallel world.
class Placement {
 public:
  // Empty placement (total_tokens == 0); a workspace default until a real
  // placement is copy-assigned in. Every accessor that divides by shape
  // fields requires a validated placement built by the checked constructor.
  Placement() = default;
  Placement(const ModelConfig& model, const ParallelConfig& parallel,
            int64_t total_tokens);

  // Re-points an existing placement at a new iteration's token count without
  // reconstructing it (model/parallel checks already hold; the token-count
  // checks from the constructor are re-applied). Allocation-free.
  void ResetTotalTokens(int64_t total_tokens);

  const ModelConfig& model() const { return model_; }
  const ParallelConfig& parallel() const { return parallel_; }
  int world() const { return parallel_.world(); }

  int64_t total_tokens() const { return total_tokens_; }  // global M
  int64_t tokens_per_group() const;                       // M / EP

  int EpGroupOfRank(int rank) const;  // rank / TP
  int TpLaneOfRank(int rank) const;   // rank % TP
  int RankOf(int ep_group, int tp_lane) const;

  int EpGroupOfExpert(int64_t expert) const;
  int64_t ExpertsPerGroup() const;  // E / EP
  // First rank (lane 0) of the EP group owning `expert`.
  int FirstRankOfExpert(int64_t expert) const;
  // True if `rank` holds a shard of `expert`.
  bool RankOwnsExpert(int rank, int64_t expert) const;
  // Local index of `expert` among the experts of its EP group.
  int64_t LocalExpertIndex(int64_t expert) const;
  // Global expert id of local expert `local` on `rank`.
  int64_t GlobalExpertIndex(int rank, int64_t local) const;

  // Hidden size each TP lane holds: K / TP.
  int64_t HiddenPerTpRank() const;

  // Home EP group of global token `t` (block-sharded).
  int HomeGroupOfToken(int64_t token) const;
  // Global id of the first token of `group`.
  int64_t FirstTokenOfGroup(int group) const;

 private:
  ModelConfig model_;
  ParallelConfig parallel_;
  int64_t total_tokens_ = 0;
};

}  // namespace comet
