// Distributed dispatch layout: where every (token, expert) pair lands.
//
// After gating, each (token, expert) pair becomes one row of the shared
// tensor on every TP lane of the expert's EP group (paper Figure 2: the
// shared tensor between dispatch and layer0 GroupGEMM has global size
// (M * topk, N)). The RoutePlan materializes, for every rank, the ordered
// list of rows each local expert consumes -- the canonical order is by
// global token id, which (with block-sharded tokens) equals source-group
// order. COMET's rescheduling permutes this order per rank; the baselines
// consume it as-is.
//
// Communication accounting (all lane-matched: group s lane l talks to group
// g lane l):
//  * layer0 dispatch: one row per (pair, lane) crossing groups,
//  * layer1 EP return: the partial output row returns to the home group,
//  * layer1 TP reduce-scatter: partial sums are reduced across each group's
//    lanes; bytes per rank = (TP-1)/TP * tokens_per_group * N * elt_size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "moe/config.h"
#include "moe/router.h"

namespace comet {

// One active hot-expert replica: expert `expert`'s traffic is split between
// its home EP group and replica slice `slot` of group `ep_group`. Produced
// by the serving plane's HotExpertTracker; consumed by RoutePlan::Rebuild.
// expert < 0 marks the slot inactive.
struct ReplicaAssignment {
  int64_t expert = -1;
  int ep_group = -1;
  int slot = -1;
};

// One row of a rank's layer0 shared tensor.
struct ExpertRow {
  int64_t token = 0;    // global token id
  int source_group = 0;  // home EP group of the token
  int64_t slot = 0;     // which of the token's topk slots this pair is
  float weight = 0.0f;  // combine weight of this (token, expert) pair
};

// All rows consumed by one local expert on one rank, canonical order.
struct ExpertSlice {
  int64_t expert = 0;  // global expert id
  std::vector<ExpertRow> rows;
};

// Per-rank view of the plan. All TP lanes of one EP group see identical row
// layouts (full-N activations are replicated), so the plan is stored per EP
// group and served per rank.
//
// Slice layout: the first ExpertsPerGroup() entries are the group's home
// experts in expert order. When the plan was reserved with max_replicas R >
// 0, EVERY group carries exactly R additional replica slices (indices
// ExpertsPerGroup() + s for replica slot s); a slice whose slot is inactive
// in this group has expert == -1 and no rows. The fixed slice count is what
// makes promote/retire allocation-free: activating a replica only changes
// field values, never container shapes.
struct RankPlan {
  int ep_group = 0;
  std::vector<ExpertSlice> experts;

  int64_t TotalRows() const;
  // Row offset of local expert `local` in the group's packed shared tensor.
  int64_t ExpertRowOffset(int64_t local) const;
};

// Minimal (m, n, k) triple; mirrors hw's GemmShape but lives here so moe does
// not depend on hw. Converted at the call sites that price time.
struct GemmProblemSize {
  int64_t m = 0;
  int64_t n = 0;
  int64_t k = 0;
};

class RoutePlan {
 public:
  // Empty plan; call Rebuild before use. Exists so a serving loop can hold
  // the plan as a persistent workspace member.
  RoutePlan() = default;
  RoutePlan(const Placement& placement, const RoutingTable& routing);

  // Pre-sizes internal capacity for `placement`'s EP shape with up to
  // `max_rows_per_expert` (token, expert) pairs per expert, so later
  // Rebuild calls within those bounds allocate nothing. `max_replicas` > 0
  // additionally gives every group `max_replicas` permanent replica slices
  // (see RankPlan), each reserved at the same row bound, so replica-aware
  // Rebuilds allocate nothing either.
  void Reserve(const Placement& placement, int64_t max_rows_per_expert,
               int max_replicas = 0);

  // Rebuilds the plan in place for a new routing (and possibly a new token
  // count), retaining all per-expert row capacity. Allocation-free once
  // capacities are warm (Reserve, or a previous Rebuild of equal size) and
  // every route fits TokenRoute's inline storage.
  void Rebuild(const Placement& placement, const RoutingTable& routing);

  // Replica-aware Rebuild: `replicas` holds at most one ACTIVE assignment
  // per replica slot (inactive entries have expert < 0). The (token, expert)
  // pairs of a replicated expert are split between its home slice and its
  // replica slice by parity of the pair's ordinal in global token order
  // (even ordinals home, odd ordinals replica) -- a deterministic 50/50
  // split that preserves canonical row order within each slice. Requires a
  // prior Reserve with max_replicas >= every assignment's slot + 1.
  void Rebuild(const Placement& placement, const RoutingTable& routing,
               std::span<const ReplicaAssignment> replicas);

  // Rows currently landing on replica slices (across all groups).
  int64_t ReplicaRows() const;
  int max_replicas() const { return max_replicas_; }

  const Placement& placement() const { return placement_; }
  const RoutingTable& routing() const { return routing_; }

  const RankPlan& ForRank(int rank) const;
  const RankPlan& ForGroup(int ep_group) const;

  // Rows `rank` consumes that originate in a different EP group / its own.
  int64_t RemoteRows(int rank) const;
  int64_t LocalRows(int rank) const;

  // Layer0 dispatch traffic: bytes[i][j] over the fabric from rank i to rank
  // j (lane-matched between groups). Zero diagonal.
  std::vector<std::vector<double>> DispatchBytes(double bytes_per_row) const;

  // Layer1 EP-return traffic: partial output rows flowing back to the home
  // group, lane-matched.
  std::vector<std::vector<double>> EpReturnBytes(double bytes_per_row) const;

  // Layer1 TP reduce-scatter bytes each rank sends:
  // (TP-1)/TP * tokens_per_group * bytes_per_row. Zero when TP == 1.
  double TpReduceScatterBytesPerRank(double bytes_per_row) const;

  // GroupGEMM problem sizes for layer0 / layer1 on `rank` (one entry per
  // local expert; layer0: n = K/TP, k = N; layer1: n = N, k = K/TP).
  std::vector<GemmProblemSize> Layer0Problems(int rank) const;
  std::vector<GemmProblemSize> Layer1Problems(int rank) const;

 private:
  Placement placement_;
  RoutingTable routing_;
  std::vector<RankPlan> per_group_;
  int max_replicas_ = 0;
  // Per-expert scratch for the replica split (sized num_experts; reused
  // across Rebuilds): pair ordinal counter, and the replica (group, slice)
  // of each replicated expert (-1 when not replicated).
  std::vector<int64_t> split_counter_;
  std::vector<int32_t> replica_group_of_expert_;
  std::vector<int32_t> replica_slice_of_expert_;
};

}  // namespace comet
