#include "moe/route_plan.h"

#include "util/check.h"

namespace comet {

int64_t RankPlan::TotalRows() const {
  int64_t total = 0;
  for (const auto& slice : experts) {
    total += static_cast<int64_t>(slice.rows.size());
  }
  return total;
}

int64_t RankPlan::ExpertRowOffset(int64_t local) const {
  COMET_CHECK_GE(local, 0);
  COMET_CHECK_LT(local, static_cast<int64_t>(experts.size()));
  int64_t offset = 0;
  for (int64_t e = 0; e < local; ++e) {
    offset += static_cast<int64_t>(experts[static_cast<size_t>(e)].rows.size());
  }
  return offset;
}

RoutePlan::RoutePlan(const Placement& placement, const RoutingTable& routing) {
  Rebuild(placement, routing);
}

void RoutePlan::Reserve(const Placement& placement,
                        int64_t max_rows_per_expert, int max_replicas) {
  COMET_CHECK_GE(max_rows_per_expert, 0);
  COMET_CHECK_GE(max_replicas, 0);
  max_replicas_ = max_replicas;
  routing_.tokens.reserve(static_cast<size_t>(placement.total_tokens()));
  const int ep = placement.parallel().ep;
  per_group_.resize(static_cast<size_t>(ep));
  for (RankPlan& plan : per_group_) {
    plan.experts.resize(
        static_cast<size_t>(placement.ExpertsPerGroup() + max_replicas));
    for (ExpertSlice& slice : plan.experts) {
      slice.rows.reserve(static_cast<size_t>(max_rows_per_expert));
    }
  }
  if (max_replicas_ > 0) {
    const size_t e_total =
        static_cast<size_t>(placement.model().num_experts);
    split_counter_.assign(e_total, 0);
    replica_group_of_expert_.assign(e_total, -1);
    replica_slice_of_expert_.assign(e_total, -1);
  }
}

void RoutePlan::Rebuild(const Placement& placement,
                        const RoutingTable& routing) {
  Rebuild(placement, routing, std::span<const ReplicaAssignment>{});
}

void RoutePlan::Rebuild(const Placement& placement,
                        const RoutingTable& routing,
                        std::span<const ReplicaAssignment> replicas) {
  placement_ = placement;
  routing_ = routing;
  COMET_CHECK_EQ(routing_.size(), placement_.total_tokens());
  routing_.Validate(placement_.model().num_experts, placement_.model().topk);

  const int ep = placement_.parallel().ep;
  const int64_t epg = placement_.ExpertsPerGroup();
  per_group_.resize(static_cast<size_t>(ep));
  for (int g = 0; g < ep; ++g) {
    RankPlan& plan = per_group_[static_cast<size_t>(g)];
    plan.ep_group = g;
    plan.experts.resize(static_cast<size_t>(epg + max_replicas_));
    for (int64_t local = 0; local < epg; ++local) {
      ExpertSlice& slice = plan.experts[static_cast<size_t>(local)];
      slice.expert = static_cast<int64_t>(g) * epg + local;
      slice.rows.clear();
    }
    // Replica slices start each Rebuild inactive; active assignments below
    // claim theirs. clear() keeps row capacity.
    for (int s = 0; s < max_replicas_; ++s) {
      ExpertSlice& slice = plan.experts[static_cast<size_t>(epg + s)];
      slice.expert = -1;
      slice.rows.clear();
    }
  }

  const bool split_active = max_replicas_ > 0;
  if (split_active) {
    const size_t e_total =
        static_cast<size_t>(placement_.model().num_experts);
    split_counter_.assign(e_total, 0);
    replica_group_of_expert_.assign(e_total, -1);
    replica_slice_of_expert_.assign(e_total, -1);
    for (const ReplicaAssignment& a : replicas) {
      if (a.expert < 0) {
        continue;  // inactive slot
      }
      COMET_CHECK_GE(a.slot, 0);
      COMET_CHECK_LT(a.slot, max_replicas_);
      COMET_CHECK_LT(a.expert, placement_.model().num_experts);
      COMET_CHECK_GE(a.ep_group, 0);
      COMET_CHECK_LT(a.ep_group, ep);
      COMET_CHECK_NE(a.ep_group, placement_.EpGroupOfExpert(a.expert))
          << "replica of expert " << a.expert << " placed on its home group";
      COMET_CHECK_LT(replica_slice_of_expert_[static_cast<size_t>(a.expert)],
                     0)
          << "expert " << a.expert << " replicated twice";
      ExpertSlice& slice = per_group_[static_cast<size_t>(a.ep_group)]
                               .experts[static_cast<size_t>(epg + a.slot)];
      COMET_CHECK_LT(slice.expert, 0)
          << "replica slot " << a.slot << " assigned twice";
      slice.expert = a.expert;
      replica_group_of_expert_[static_cast<size_t>(a.expert)] = a.ep_group;
      replica_slice_of_expert_[static_cast<size_t>(a.expert)] =
          static_cast<int32_t>(epg + a.slot);
    }
  } else {
    COMET_CHECK(replicas.empty())
        << "replica assignments require Reserve with max_replicas > 0";
  }

  // Walk tokens in global order; rows land per-expert in token order, which
  // is source-group order because tokens are block-sharded. A replicated
  // expert's pairs alternate home/replica by ordinal (the deterministic
  // 50/50 traffic split).
  for (int64_t t = 0; t < placement_.total_tokens(); ++t) {
    const TokenRoute& route = routing_.tokens[static_cast<size_t>(t)];
    const int home = placement_.HomeGroupOfToken(t);
    for (size_t k = 0; k < route.experts.size(); ++k) {
      const int64_t e = route.experts[k];
      int g = placement_.EpGroupOfExpert(e);
      int64_t local = placement_.LocalExpertIndex(e);
      if (split_active &&
          replica_slice_of_expert_[static_cast<size_t>(e)] >= 0 &&
          (split_counter_[static_cast<size_t>(e)]++ & 1) != 0) {
        g = replica_group_of_expert_[static_cast<size_t>(e)];
        local = replica_slice_of_expert_[static_cast<size_t>(e)];
      }
      per_group_[static_cast<size_t>(g)]
          .experts[static_cast<size_t>(local)]
          .rows.push_back(
              ExpertRow{t, home, static_cast<int64_t>(k), route.weights[k]});
    }
  }
}

int64_t RoutePlan::ReplicaRows() const {
  if (max_replicas_ == 0) {
    return 0;
  }
  const int64_t epg = placement_.ExpertsPerGroup();
  int64_t rows = 0;
  for (const RankPlan& plan : per_group_) {
    for (size_t le = static_cast<size_t>(epg); le < plan.experts.size();
         ++le) {
      rows += static_cast<int64_t>(plan.experts[le].rows.size());
    }
  }
  return rows;
}

const RankPlan& RoutePlan::ForGroup(int ep_group) const {
  COMET_CHECK_GE(ep_group, 0);
  COMET_CHECK_LT(ep_group, placement_.parallel().ep);
  return per_group_[static_cast<size_t>(ep_group)];
}

const RankPlan& RoutePlan::ForRank(int rank) const {
  return ForGroup(placement_.EpGroupOfRank(rank));
}

int64_t RoutePlan::RemoteRows(int rank) const {
  const RankPlan& plan = ForRank(rank);
  const int group = placement_.EpGroupOfRank(rank);
  int64_t remote = 0;
  for (const auto& slice : plan.experts) {
    for (const auto& row : slice.rows) {
      if (row.source_group != group) {
        ++remote;
      }
    }
  }
  return remote;
}

int64_t RoutePlan::LocalRows(int rank) const {
  return ForRank(rank).TotalRows() - RemoteRows(rank);
}

std::vector<std::vector<double>> RoutePlan::DispatchBytes(
    double bytes_per_row) const {
  const int world = placement_.world();
  const int tp = placement_.parallel().tp;
  std::vector<std::vector<double>> bytes(
      static_cast<size_t>(world),
      std::vector<double>(static_cast<size_t>(world), 0.0));
  for (int g = 0; g < placement_.parallel().ep; ++g) {
    for (const auto& slice : per_group_[static_cast<size_t>(g)].experts) {
      for (const auto& row : slice.rows) {
        if (row.source_group == g) {
          continue;
        }
        for (int lane = 0; lane < tp; ++lane) {
          const int src = placement_.RankOf(row.source_group, lane);
          const int dst = placement_.RankOf(g, lane);
          bytes[static_cast<size_t>(src)][static_cast<size_t>(dst)] +=
              bytes_per_row;
        }
      }
    }
  }
  return bytes;
}

std::vector<std::vector<double>> RoutePlan::EpReturnBytes(
    double bytes_per_row) const {
  const int world = placement_.world();
  const int tp = placement_.parallel().tp;
  std::vector<std::vector<double>> bytes(
      static_cast<size_t>(world),
      std::vector<double>(static_cast<size_t>(world), 0.0));
  for (int g = 0; g < placement_.parallel().ep; ++g) {
    for (const auto& slice : per_group_[static_cast<size_t>(g)].experts) {
      for (const auto& row : slice.rows) {
        if (row.source_group == g) {
          continue;
        }
        for (int lane = 0; lane < tp; ++lane) {
          const int src = placement_.RankOf(g, lane);
          const int dst = placement_.RankOf(row.source_group, lane);
          bytes[static_cast<size_t>(src)][static_cast<size_t>(dst)] +=
              bytes_per_row;
        }
      }
    }
  }
  return bytes;
}

double RoutePlan::TpReduceScatterBytesPerRank(double bytes_per_row) const {
  const int tp = placement_.parallel().tp;
  if (tp == 1) {
    return 0.0;
  }
  return (static_cast<double>(tp - 1) / static_cast<double>(tp)) *
         static_cast<double>(placement_.tokens_per_group()) * bytes_per_row;
}

std::vector<GemmProblemSize> RoutePlan::Layer0Problems(int rank) const {
  const RankPlan& plan = ForRank(rank);
  std::vector<GemmProblemSize> out;
  out.reserve(plan.experts.size());
  for (const auto& slice : plan.experts) {
    out.push_back(GemmProblemSize{static_cast<int64_t>(slice.rows.size()),
                                  placement_.HiddenPerTpRank(),
                                  placement_.model().embedding});
  }
  return out;
}

std::vector<GemmProblemSize> RoutePlan::Layer1Problems(int rank) const {
  const RankPlan& plan = ForRank(rank);
  std::vector<GemmProblemSize> out;
  out.reserve(plan.experts.size());
  for (const auto& slice : plan.experts) {
    out.push_back(GemmProblemSize{static_cast<int64_t>(slice.rows.size()),
                                  placement_.model().embedding,
                                  placement_.HiddenPerTpRank()});
  }
  return out;
}

}  // namespace comet
