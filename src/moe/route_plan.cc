#include "moe/route_plan.h"

#include "util/check.h"

namespace comet {

int64_t RankPlan::TotalRows() const {
  int64_t total = 0;
  for (const auto& slice : experts) {
    total += static_cast<int64_t>(slice.rows.size());
  }
  return total;
}

int64_t RankPlan::ExpertRowOffset(int64_t local) const {
  COMET_CHECK_GE(local, 0);
  COMET_CHECK_LT(local, static_cast<int64_t>(experts.size()));
  int64_t offset = 0;
  for (int64_t e = 0; e < local; ++e) {
    offset += static_cast<int64_t>(experts[static_cast<size_t>(e)].rows.size());
  }
  return offset;
}

RoutePlan::RoutePlan(const Placement& placement, const RoutingTable& routing) {
  Rebuild(placement, routing);
}

void RoutePlan::Reserve(const Placement& placement,
                        int64_t max_rows_per_expert) {
  COMET_CHECK_GE(max_rows_per_expert, 0);
  routing_.tokens.reserve(static_cast<size_t>(placement.total_tokens()));
  const int ep = placement.parallel().ep;
  per_group_.resize(static_cast<size_t>(ep));
  for (RankPlan& plan : per_group_) {
    plan.experts.resize(static_cast<size_t>(placement.ExpertsPerGroup()));
    for (ExpertSlice& slice : plan.experts) {
      slice.rows.reserve(static_cast<size_t>(max_rows_per_expert));
    }
  }
}

void RoutePlan::Rebuild(const Placement& placement,
                        const RoutingTable& routing) {
  placement_ = placement;
  routing_ = routing;
  COMET_CHECK_EQ(routing_.size(), placement_.total_tokens());
  routing_.Validate(placement_.model().num_experts, placement_.model().topk);

  const int ep = placement_.parallel().ep;
  per_group_.resize(static_cast<size_t>(ep));
  for (int g = 0; g < ep; ++g) {
    RankPlan& plan = per_group_[static_cast<size_t>(g)];
    plan.ep_group = g;
    plan.experts.resize(static_cast<size_t>(placement_.ExpertsPerGroup()));
    for (int64_t local = 0; local < placement_.ExpertsPerGroup(); ++local) {
      ExpertSlice& slice = plan.experts[static_cast<size_t>(local)];
      slice.expert =
          static_cast<int64_t>(g) * placement_.ExpertsPerGroup() + local;
      slice.rows.clear();
    }
  }

  // Walk tokens in global order; rows land per-expert in token order, which
  // is source-group order because tokens are block-sharded.
  for (int64_t t = 0; t < placement_.total_tokens(); ++t) {
    const TokenRoute& route = routing_.tokens[static_cast<size_t>(t)];
    const int home = placement_.HomeGroupOfToken(t);
    for (size_t k = 0; k < route.experts.size(); ++k) {
      const int64_t e = route.experts[k];
      const int g = placement_.EpGroupOfExpert(e);
      const int64_t local = placement_.LocalExpertIndex(e);
      per_group_[static_cast<size_t>(g)]
          .experts[static_cast<size_t>(local)]
          .rows.push_back(
              ExpertRow{t, home, static_cast<int64_t>(k), route.weights[k]});
    }
  }
}

const RankPlan& RoutePlan::ForGroup(int ep_group) const {
  COMET_CHECK_GE(ep_group, 0);
  COMET_CHECK_LT(ep_group, placement_.parallel().ep);
  return per_group_[static_cast<size_t>(ep_group)];
}

const RankPlan& RoutePlan::ForRank(int rank) const {
  return ForGroup(placement_.EpGroupOfRank(rank));
}

int64_t RoutePlan::RemoteRows(int rank) const {
  const RankPlan& plan = ForRank(rank);
  const int group = placement_.EpGroupOfRank(rank);
  int64_t remote = 0;
  for (const auto& slice : plan.experts) {
    for (const auto& row : slice.rows) {
      if (row.source_group != group) {
        ++remote;
      }
    }
  }
  return remote;
}

int64_t RoutePlan::LocalRows(int rank) const {
  return ForRank(rank).TotalRows() - RemoteRows(rank);
}

std::vector<std::vector<double>> RoutePlan::DispatchBytes(
    double bytes_per_row) const {
  const int world = placement_.world();
  const int tp = placement_.parallel().tp;
  std::vector<std::vector<double>> bytes(
      static_cast<size_t>(world),
      std::vector<double>(static_cast<size_t>(world), 0.0));
  for (int g = 0; g < placement_.parallel().ep; ++g) {
    for (const auto& slice : per_group_[static_cast<size_t>(g)].experts) {
      for (const auto& row : slice.rows) {
        if (row.source_group == g) {
          continue;
        }
        for (int lane = 0; lane < tp; ++lane) {
          const int src = placement_.RankOf(row.source_group, lane);
          const int dst = placement_.RankOf(g, lane);
          bytes[static_cast<size_t>(src)][static_cast<size_t>(dst)] +=
              bytes_per_row;
        }
      }
    }
  }
  return bytes;
}

std::vector<std::vector<double>> RoutePlan::EpReturnBytes(
    double bytes_per_row) const {
  const int world = placement_.world();
  const int tp = placement_.parallel().tp;
  std::vector<std::vector<double>> bytes(
      static_cast<size_t>(world),
      std::vector<double>(static_cast<size_t>(world), 0.0));
  for (int g = 0; g < placement_.parallel().ep; ++g) {
    for (const auto& slice : per_group_[static_cast<size_t>(g)].experts) {
      for (const auto& row : slice.rows) {
        if (row.source_group == g) {
          continue;
        }
        for (int lane = 0; lane < tp; ++lane) {
          const int src = placement_.RankOf(g, lane);
          const int dst = placement_.RankOf(row.source_group, lane);
          bytes[static_cast<size_t>(src)][static_cast<size_t>(dst)] +=
              bytes_per_row;
        }
      }
    }
  }
  return bytes;
}

double RoutePlan::TpReduceScatterBytesPerRank(double bytes_per_row) const {
  const int tp = placement_.parallel().tp;
  if (tp == 1) {
    return 0.0;
  }
  return (static_cast<double>(tp - 1) / static_cast<double>(tp)) *
         static_cast<double>(placement_.tokens_per_group()) * bytes_per_row;
}

std::vector<GemmProblemSize> RoutePlan::Layer0Problems(int rank) const {
  const RankPlan& plan = ForRank(rank);
  std::vector<GemmProblemSize> out;
  out.reserve(plan.experts.size());
  for (const auto& slice : plan.experts) {
    out.push_back(GemmProblemSize{static_cast<int64_t>(slice.rows.size()),
                                  placement_.HiddenPerTpRank(),
                                  placement_.model().embedding});
  }
  return out;
}

std::vector<GemmProblemSize> RoutePlan::Layer1Problems(int rank) const {
  const RankPlan& plan = ForRank(rank);
  std::vector<GemmProblemSize> out;
  out.reserve(plan.experts.size());
  for (const auto& slice : plan.experts) {
    out.push_back(GemmProblemSize{static_cast<int64_t>(slice.rows.size()),
                                  placement_.model().embedding,
                                  placement_.HiddenPerTpRank()});
  }
  return out;
}

}  // namespace comet
