// Ground-truth MoE layer execution.
//
// Two references:
//  * ReferenceMoeLayer -- dense math with FULL (unsharded) expert weights,
//    ignoring distribution entirely. The gold standard all executors must
//    approximate (FP reassociation across TP shards causes tiny drift).
//  * ShardedReferenceMoeLayer -- the same math through the TP-sharded
//    weights with the canonical accumulation order (topk slot-major, then TP
//    rank-major). Every distributed executor (Megatron baselines, COMET)
//    must match this BIT-EXACTLY: they reorder *scheduling*, never the
//    floating-point reduction tree.
#pragma once

#include <vector>

#include "moe/workload.h"
#include "tensor/tensor.h"

namespace comet {

// The input rows of all (token, expert) pairs routed to one expert, gathered
// token-ascending (the canonical shared-tensor row order of that expert).
// Shared by the forward references and the backward pass.
struct ExpertBatch {
  std::vector<int64_t> tokens;  // global token ids
  std::vector<float> weights;   // combine weight of each pair
  std::vector<int64_t> slots;   // topk slot index of each pair
  Tensor rows;                  // (num_rows, N)
};

ExpertBatch GatherExpertBatch(const MoeWorkload& workload, int64_t expert);

// Returns one output tensor per EP group, shape (M/EP, N) (TP lanes
// replicate). Always computes in full f32, whatever dtype the workload's
// operands were quantized to -- the "infinite precision" yardstick the
// precision tier measures low-precision runs against.
std::vector<Tensor> ReferenceMoeLayer(const MoeWorkload& workload);

// Canonical-order sharded reference at `compute_dtype`: GEMM and activation
// outputs round to the dtype on store (f32 accumulate, RNE -- the
// tensor-core contract), combine reduces in f32 and rounds each output row
// once. At kF32 this is the historical reference unchanged. Distributed
// executors running at the same dtype must match it BIT-EXACTLY. The 1-arg
// overload computes at the workload's storage dtype.
std::vector<Tensor> ShardedReferenceMoeLayer(const MoeWorkload& workload);
std::vector<Tensor> ShardedReferenceMoeLayer(const MoeWorkload& workload,
                                             DType compute_dtype);

}  // namespace comet
