// Expert feed-forward weights and their tensor-parallel shards.
//
// Expert e owns W0_e of shape (N, K) for layer0 and W1_e of shape (K, N) for
// layer1 (paper Figure 2). Under tensor parallelism the hidden dimension K
// is split: TP rank t holds columns [t*K/TP, (t+1)*K/TP) of W0 and the
// matching rows of W1, so layer1 outputs are partial sums reduced across the
// TP group. Shards are materialized once so executors index them directly.
#pragma once

#include <cstdint>
#include <vector>

#include "moe/config.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace comet {

class ExpertWeights {
 public:
  // Random N(0, stddev) weights for all E experts. At a 2-byte dtype the
  // draw is quantized (RNE) after sampling, so the low-precision weights are
  // exactly the rounded f32 weights of the same rng state.
  static ExpertWeights Random(const ModelConfig& model, Rng& rng,
                              float stddev = 0.05f,
                              DType dtype = DType::kF32);

  int64_t num_experts() const { return static_cast<int64_t>(w0_.size()); }
  int64_t embedding() const;
  int64_t ffn_hidden() const;

  const Tensor& W0(int64_t expert) const;  // (N, K)
  const Tensor& W1(int64_t expert) const;  // (K, N)

  // Mutable access for optimizer steps and finite-difference tests. After
  // mutating, rebuild any ShardedExpertWeights derived from this object.
  Tensor& MutableW0(int64_t expert);
  Tensor& MutableW1(int64_t expert);

 private:
  std::vector<Tensor> w0_;
  std::vector<Tensor> w1_;
};

// Column/row shards of the full weights for a TP degree.
class ShardedExpertWeights {
 public:
  ShardedExpertWeights(const ExpertWeights& full, int tp);

  int tp() const { return tp_; }
  // W0 shard of `expert` on TP rank `tp_rank`: (N, K/TP).
  const Tensor& W0Shard(int64_t expert, int tp_rank) const;
  // W1 shard of `expert` on TP rank `tp_rank`: (K/TP, N).
  const Tensor& W1Shard(int64_t expert, int tp_rank) const;

 private:
  int tp_;
  int64_t num_experts_;
  std::vector<Tensor> w0_shards_;  // expert-major, then tp
  std::vector<Tensor> w1_shards_;
};

}  // namespace comet
