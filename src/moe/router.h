// Token routing: the learned gate and synthetic load-controlled routing.
//
// Two producers of routing decisions:
//  * GateNetwork -- the standard softmax top-k gate (Shazeer et al.): logits
//    = x . Wg, softmax over E, keep the topk experts, renormalize their
//    probabilities as combine weights. Used by the functional examples.
//  * SyntheticRouter -- draws expert assignments from a target load vector
//    so benches can control the per-expert load standard deviation exactly
//    the way the paper's Figure 14 does (std of the fraction of tokens per
//    expert; std = 0 is uniform, production average is 0.032).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "moe/config.h"
#include "tensor/tensor.h"
#include "util/inline_vec.h"
#include "util/rng.h"

namespace comet {

// One token's routing decision: up to `topk` distinct experts with combine
// weights summing to 1. Fewer than topk entries (possibly zero) occur when
// capacity-limited routing dropped pairs or under expert-choice routing.
//
// Inline storage (util::InlineVec) keeps the common topk <= 8 case off the
// heap entirely: copying a RoutingTable or resizing its token vector then
// performs zero allocations, which the serving steady state depends on.
struct TokenRoute {
  util::InlineVec<int64_t, 8> experts;
  util::InlineVec<float, 8> weights;
};

// Routing for all M tokens (global token id -> decision).
struct RoutingTable {
  std::vector<TokenRoute> tokens;

  int64_t size() const { return static_cast<int64_t>(tokens.size()); }

  // Tokens assigned to each expert (counting (token, expert) pairs).
  std::vector<int64_t> ExpertLoads(int64_t num_experts) const;
  // In-place ExpertLoads: writes the counts into `*loads`, reusing its
  // capacity. Allocation-free once `loads` has held `num_experts` entries --
  // the serving loop's per-iteration EWMA update runs inside the
  // zero-allocation steady-state envelope.
  void ExpertLoadsInto(int64_t num_experts, std::vector<int64_t>* loads) const;
  // Population std of the per-expert token *fraction* (Figure 14's x-axis).
  double LoadStd(int64_t num_experts) const;

  // Validates structural invariants: at most `topk` distinct experts per
  // token, weights ~ sum to 1 for non-empty routes. The weight-sum tolerance
  // is dtype-aware: combine weights that were quantized to `dtype` (or
  // renormalized after capacity drops at that dtype) are correctly-rounded
  // values whose sum can sit up to ~topk ulps from 1 -- a fixed f32
  // tolerance would reject them falsely. Genuinely broken weights (sums far
  // from 1) still throw CheckError at every dtype.
  void Validate(int64_t num_experts, int64_t topk,
                DType dtype = DType::kF32) const;
};

// Population std of the per-expert token fraction, computed from a counts
// vector (as produced by ExpertLoadsInto). Bit-identical to
// RoutingTable::LoadStd over the same counts; performs no allocation.
double LoadStdFromCounts(std::span<const int64_t> loads);

// Result of capacity enforcement (GShard-style token dropping).
struct DropStats {
  int64_t capacity = 0;  // per-expert pair budget
  int64_t dropped_pairs = 0;
  int64_t fully_dropped_tokens = 0;  // tokens that lost ALL their experts
  std::vector<int64_t> overflow_per_expert;

  double DropFraction(int64_t total_pairs) const {
    return total_pairs > 0 ? static_cast<double>(dropped_pairs) /
                                 static_cast<double>(total_pairs)
                           : 0.0;
  }
};

// Enforces a per-expert capacity of ceil(capacity_factor * pairs / E) pairs,
// processing tokens in order (the standard GShard/Switch discipline): pairs
// routed to a full expert are dropped and the token's surviving combine
// weights renormalized. Tokens may end with an empty route (they contribute
// zero to the layer output, exactly like the real systems).
DropStats ApplyCapacityFactor(RoutingTable& routing, int64_t num_experts,
                              double capacity_factor);

// Reusable scratch for GateNetwork::RouteInto: two E-sized float buffers
// whose capacity survives across calls. Default-constructed is fine; the
// first call sizes it (warm-up), later calls with the same gate reuse it.
struct GateScratch {
  std::vector<float> logits;
  std::vector<float> probs;
};

// Softmax top-k gate with weight matrix `gate_weight` of shape (N, E).
class GateNetwork {
 public:
  explicit GateNetwork(Tensor gate_weight);

  // Routes each row of `tokens` (shape (m, N)). Offsets do not matter: the
  // result is positional (row i -> tokens[i]).
  RoutingTable Route(const Tensor& tokens, int64_t topk) const;

  // In-place variant: writes into `table` reusing whatever capacity it (and
  // `scratch`) already hold. Bit-identical to Route; performs zero heap
  // allocations once table/scratch capacities are warm and topk fits a
  // TokenRoute's inline storage.
  void RouteInto(const Tensor& tokens, int64_t topk, GateScratch& scratch,
                 RoutingTable* table) const;

  int64_t num_experts() const;

 private:
  Tensor gate_weight_;  // (N, E)
};

// Expert-choice gate (Zhou et al., cited as [40] in the paper): instead of
// each token picking its topk experts, each EXPERT picks its top-C tokens by
// gate score, C = M * avg_topk / E. Loads are perfectly balanced by
// construction (LoadStd == 0 when E divides M * avg_topk), at the price of a
// variable number of experts per token.
class ExpertChoiceGate {
 public:
  explicit ExpertChoiceGate(Tensor gate_weight);  // (N, E)

  RoutingTable Route(const Tensor& tokens, int64_t avg_topk) const;

  int64_t num_experts() const;

 private:
  Tensor gate_weight_;
};

// Load-controlled synthetic router.
class SyntheticRouter {
 public:
  // `load` is a probability vector over experts (see Rng::LoadVectorWithStd).
  SyntheticRouter(std::vector<double> load, uint64_t seed);

  // Routes `num_tokens` tokens, each to `topk` distinct experts sampled
  // without replacement proportionally to the load vector; combine weights
  // are random and renormalized.
  RoutingTable Route(int64_t num_tokens, int64_t topk);

  // In-place Route with a deterministic expert-id rotation: every sampled
  // expert e is stored as (e + shift) mod E. The serving plane uses the
  // shift to model drifting (diurnal) load: the same seeded draw sequence,
  // with the hot spot walking across experts as simulated time advances.
  // shift == 0 consumes the rng exactly like Route (bit-identical tables).
  // Allocation-free once `table` and the internal scratch are warm and topk
  // fits TokenRoute's inline storage.
  void RouteInto(int64_t num_tokens, int64_t topk, int64_t shift,
                 RoutingTable* table);

  int64_t num_experts() const { return static_cast<int64_t>(load_.size()); }

 private:
  std::vector<double> load_;
  std::vector<double> weights_scratch_;  // per-token sampling weights
  Rng rng_;
};

}  // namespace comet
