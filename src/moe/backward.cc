#include "moe/backward.h"

#include <algorithm>

#include "moe/group_gemm.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace comet {
namespace {

// Row of the per-group dout stack for global token `t`.
std::span<const float> DoutRow(const MoeWorkload& w,
                               const std::vector<Tensor>& dout, int64_t t) {
  const int group = w.placement.HomeGroupOfToken(t);
  const int64_t local = t - w.placement.FirstTokenOfGroup(group);
  return dout[static_cast<size_t>(group)].row(local);
}

void CheckDoutShape(const MoeWorkload& w, const std::vector<Tensor>& dout) {
  COMET_CHECK_EQ(static_cast<int>(dout.size()), w.placement.parallel().ep);
  for (const Tensor& t : dout) {
    COMET_CHECK_EQ(t.rows(), w.placement.tokens_per_group());
    COMET_CHECK_EQ(t.cols(), w.model().embedding);
  }
}

MoeGradients ZeroGradients(const MoeWorkload& w) {
  MoeGradients grads;
  const int ep = w.placement.parallel().ep;
  grads.dinput.reserve(static_cast<size_t>(ep));
  for (int g = 0; g < ep; ++g) {
    grads.dinput.emplace_back(
        Shape{w.placement.tokens_per_group(), w.model().embedding});
  }
  grads.dw0.reserve(static_cast<size_t>(w.model().num_experts));
  grads.dw1.reserve(static_cast<size_t>(w.model().num_experts));
  for (int64_t e = 0; e < w.model().num_experts; ++e) {
    grads.dw0.emplace_back(Shape{w.model().embedding, w.model().ffn_hidden});
    grads.dw1.emplace_back(Shape{w.model().ffn_hidden, w.model().embedding});
  }
  grads.dgate = Tensor(Shape{w.placement.total_tokens(), w.model().topk});
  return grads;
}

float Dot(std::span<const float> a, std::span<const float> b) {
  COMET_CHECK_EQ(a.size(), b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

// Scales each row i of `dy` by weights[i] from `dout` rows. At a 2-byte
// compute dtype each product rounds on store (the combine-backward kernel
// writes dY into the 2-byte dispatch buffer), so what feeds the dgrad GEMMs
// is representable.
Tensor WeightedDout(const MoeWorkload& w, const std::vector<Tensor>& dout,
                    const ExpertBatch& batch,
                    DType compute_dtype = DType::kF32) {
  Tensor dy(Shape{static_cast<int64_t>(batch.tokens.size()),
                  w.model().embedding},
            compute_dtype);
  ParallelFor(0, static_cast<int64_t>(batch.tokens.size()), 16, [&](int64_t i) {
    const auto src = DoutRow(w, dout, batch.tokens[static_cast<size_t>(i)]);
    auto dst = dy.row(i);
    const float weight = batch.weights[static_cast<size_t>(i)];
    for (size_t c = 0; c < dst.size(); ++c) {
      dst[c] = weight * src[c];
    }
    QuantizeSpan(dst, compute_dtype);
  });
  return dy;
}

}  // namespace

ExpertForwardStash ForwardWithStash(const MoeWorkload& w, int64_t expert) {
  COMET_CHECK(w.weights != nullptr)
      << "backward needs a materialized workload";
  ExpertForwardStash stash;
  stash.batch = GatherExpertBatch(w, expert);
  const int64_t rows = static_cast<int64_t>(stash.batch.tokens.size());
  stash.hidden_pre = Tensor(Shape{rows, w.model().ffn_hidden});
  if (rows == 0) {
    return stash;
  }
  Gemm(stash.batch.rows, w.weights->W0(expert), stash.hidden_pre);
  stash.hidden_post = stash.hidden_pre;  // copy, then activate in place
  ApplyActivation(stash.hidden_post, w.activation);
  stash.output = Tensor(Shape{rows, w.model().embedding});
  Gemm(stash.hidden_post, w.weights->W1(expert), stash.output);
  return stash;
}

MoeGradients ReferenceMoeBackward(const MoeWorkload& w,
                                  const std::vector<Tensor>& dout) {
  COMET_CHECK(w.weights != nullptr)
      << "backward needs a materialized workload";
  CheckDoutShape(w, dout);
  MoeGradients grads = ZeroGradients(w);

  const int64_t m = w.placement.total_tokens();
  const int64_t n = w.model().embedding;
  const int64_t topk = w.model().topk;

  // dinput contributions per (token, slot), reduced slot-ascending at the
  // end -- the exact mirror of the forward's canonical combine.
  Tensor contributions(Shape{m * topk, n});

  for (int64_t e = 0; e < w.model().num_experts; ++e) {
    const ExpertForwardStash stash = ForwardWithStash(w, e);
    const auto& batch = stash.batch;
    const int64_t rows = static_cast<int64_t>(batch.tokens.size());
    if (rows == 0) {
      continue;
    }

    // Combine backward: dY_i = weight_i * dout(t_i); dgate = <dout, Y_i>.
    const Tensor dy = WeightedDout(w, dout, batch);
    for (int64_t i = 0; i < rows; ++i) {
      const int64_t t = batch.tokens[static_cast<size_t>(i)];
      const int64_t slot = batch.slots[static_cast<size_t>(i)];
      grads.dgate.at({t, slot}) =
          Dot(DoutRow(w, dout, t), stash.output.row(i));
    }

    // Layer1 backward.
    GemmTN(stash.hidden_post, dy, grads.dw1[static_cast<size_t>(e)]);
    Tensor dz(Shape{rows, w.model().ffn_hidden});
    GemmNT(dy, w.weights->W1(e), dz);

    // Activation backward.
    ApplyActivationGrad(dz, stash.hidden_pre, w.activation);

    // Layer0 backward.
    GemmTN(batch.rows, dz, grads.dw0[static_cast<size_t>(e)]);
    Tensor da(Shape{rows, n});
    GemmNT(dz, w.weights->W0(e), da);
    for (int64_t i = 0; i < rows; ++i) {
      const int64_t t = batch.tokens[static_cast<size_t>(i)];
      const int64_t slot = batch.slots[static_cast<size_t>(i)];
      contributions.AccumulateRow(t * topk + slot, da.row(i), 1.0f);
    }
  }

  // Undispatch: sum the per-slot contributions in canonical slot order.
  // Each token owns one dinput row, so tokens fan out across the pool.
  ParallelFor(0, m, 8, [&](int64_t t) {
    const int group = w.placement.HomeGroupOfToken(t);
    const int64_t local = t - w.placement.FirstTokenOfGroup(group);
    for (int64_t k = 0; k < topk; ++k) {
      grads.dinput[static_cast<size_t>(group)].AccumulateRow(
          local, contributions.row(t * topk + k), 1.0f);
    }
  });
  return grads;
}

MoeGradients ShardedReferenceMoeBackward(const MoeWorkload& w,
                                         const std::vector<Tensor>& dout) {
  return ShardedReferenceMoeBackward(w, dout, w.dtype());
}

MoeGradients ShardedReferenceMoeBackward(const MoeWorkload& w,
                                         const std::vector<Tensor>& dout,
                                         DType compute_dtype) {
  COMET_CHECK(w.sharded_weights != nullptr)
      << "backward needs a materialized workload";
  CheckDoutShape(w, dout);
  MoeGradients grads = ZeroGradients(w);

  const int64_t m = w.placement.total_tokens();
  const int64_t n = w.model().embedding;
  const int64_t topk = w.model().topk;
  const int tp = w.placement.parallel().tp;
  const int64_t k_shard = w.placement.HiddenPerTpRank();

  // One dA partial per TP lane, reduced canonically (slot-major outer, lane
  // inner) -- mirrors ShardedReferenceMoeLayer's combine.
  std::vector<Tensor> partials;
  partials.reserve(static_cast<size_t>(tp));
  for (int t = 0; t < tp; ++t) {
    partials.emplace_back(Shape{m * topk, n});
  }

  for (int64_t e = 0; e < w.model().num_experts; ++e) {
    const ExpertBatch batch = GatherExpertBatch(w, e);
    const int64_t rows = static_cast<int64_t>(batch.tokens.size());
    if (rows == 0) {
      continue;
    }
    const Tensor dy = WeightedDout(w, dout, batch, compute_dtype);

    for (int lane = 0; lane < tp; ++lane) {
      // Recompute the lane's forward slice (what the distributed runtime
      // stashes per rank) at the compute dtype: GEMM/activation round on
      // store when it is 2-byte.
      Tensor h_pre(Shape{rows, k_shard}, compute_dtype);
      Gemm(batch.rows, w.sharded_weights->W0Shard(e, lane), h_pre);
      Tensor h_post = h_pre;
      ApplyActivation(h_post, w.activation);
      Tensor y(Shape{rows, n}, compute_dtype);
      Gemm(h_post, w.sharded_weights->W1Shard(e, lane), y);

      // dgate: per-lane local dots, all-reduced lane-ascending.
      for (int64_t i = 0; i < rows; ++i) {
        const int64_t t = batch.tokens[static_cast<size_t>(i)];
        const int64_t slot = batch.slots[static_cast<size_t>(i)];
        grads.dgate.at({t, slot}) += Dot(DoutRow(w, dout, t), y.row(i));
      }

      // dW1 shard -> rows [lane*k_shard, (lane+1)*k_shard) of the full dW1.
      Tensor dw1_shard(Shape{k_shard, n});
      GemmTN(h_post, dy, dw1_shard);
      for (int64_t r = 0; r < k_shard; ++r) {
        grads.dw1[static_cast<size_t>(e)].SetRow(lane * k_shard + r,
                                                 dw1_shard.row(r));
      }

      // dZ through the lane's W1 shard, then the activation.
      Tensor dz(Shape{rows, k_shard}, compute_dtype);
      GemmNT(dy, w.sharded_weights->W1Shard(e, lane), dz);
      ApplyActivationGrad(dz, h_pre, w.activation);

      // dW0 shard -> columns [lane*k_shard, (lane+1)*k_shard) of full dW0.
      Tensor dw0_shard(Shape{n, k_shard});
      GemmTN(batch.rows, dz, dw0_shard);
      Tensor& dw0 = grads.dw0[static_cast<size_t>(e)];
      for (int64_t r = 0; r < n; ++r) {
        auto dst = dw0.row(r);
        const auto src = dw0_shard.row(r);
        std::copy(src.begin(), src.end(),
                  dst.begin() + static_cast<size_t>(lane * k_shard));
      }

      // Partial dA of this lane.
      Tensor da(Shape{rows, n}, compute_dtype);
      GemmNT(dz, w.sharded_weights->W0Shard(e, lane), da);
      for (int64_t i = 0; i < rows; ++i) {
        const int64_t t = batch.tokens[static_cast<size_t>(i)];
        const int64_t slot = batch.slots[static_cast<size_t>(i)];
        partials[static_cast<size_t>(lane)].AccumulateRow(t * topk + slot,
                                                          da.row(i), 1.0f);
      }
    }
  }

  ParallelFor(0, m, 8, [&](int64_t t) {
    const int group = w.placement.HomeGroupOfToken(t);
    const int64_t local = t - w.placement.FirstTokenOfGroup(group);
    for (int64_t k = 0; k < topk; ++k) {
      for (int lane = 0; lane < tp; ++lane) {
        grads.dinput[static_cast<size_t>(group)].AccumulateRow(
            local, partials[static_cast<size_t>(lane)].row(t * topk + k),
            1.0f);
      }
    }
    // One rounding per dinput row, after the full canonical reduction.
    QuantizeSpan(grads.dinput[static_cast<size_t>(group)].row(local),
                 compute_dtype);
  });
  return grads;
}

std::vector<Tensor> MakeLossGradient(const MoeWorkload& w, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> dout;
  dout.reserve(static_cast<size_t>(w.placement.parallel().ep));
  for (int g = 0; g < w.placement.parallel().ep; ++g) {
    dout.push_back(Tensor::Randn(
        Shape{w.placement.tokens_per_group(), w.model().embedding}, rng, 1.0f,
        w.dtype()));
  }
  return dout;
}

float MaxGradientDiff(const MoeGradients& a, const MoeGradients& b) {
  COMET_CHECK_EQ(a.dinput.size(), b.dinput.size());
  COMET_CHECK_EQ(a.dw0.size(), b.dw0.size());
  COMET_CHECK_EQ(a.dw1.size(), b.dw1.size());
  float worst = Tensor::MaxAbsDiff(a.dgate, b.dgate);
  for (size_t i = 0; i < a.dinput.size(); ++i) {
    worst = std::max(worst, Tensor::MaxAbsDiff(a.dinput[i], b.dinput[i]));
  }
  for (size_t i = 0; i < a.dw0.size(); ++i) {
    worst = std::max(worst, Tensor::MaxAbsDiff(a.dw0[i], b.dw0[i]));
    worst = std::max(worst, Tensor::MaxAbsDiff(a.dw1[i], b.dw1[i]));
  }
  return worst;
}

}  // namespace comet
