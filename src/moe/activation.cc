#include "moe/activation.h"

#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

float GeluScalar(float x) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float SiluScalar(float x) { return x / (1.0f + std::exp(-x)); }

void ApplyActivationTile(Tensor& t, ActivationKind kind, int64_t row_begin,
                         int64_t row_end, int64_t col_begin, int64_t col_end) {
  COMET_CHECK_EQ(t.shape().rank(), 2u);
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, t.rows());
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, t.cols());
  if (kind == ActivationKind::kIdentity) {
    // Nothing computed, nothing to round: the input already satisfies the
    // tensor's representability invariant.
    return;
  }
  // At 2-byte dtypes the element function is computed in f32 and rounded on
  // store (RNE) -- same contract as the GEMM epilogue, and per-element pure,
  // so tiling/threading never changes results.
  const DType dtype = t.dtype();
  for (int64_t r = row_begin; r < row_end; ++r) {
    auto row = t.row(r);
    for (int64_t c = col_begin; c < col_end; ++c) {
      float& x = row[static_cast<size_t>(c)];
      switch (kind) {
        case ActivationKind::kGelu:
          x = GeluScalar(x);
          break;
        case ActivationKind::kSilu:
          x = SiluScalar(x);
          break;
        case ActivationKind::kRelu:
          x = x > 0.0f ? x : 0.0f;
          break;
        case ActivationKind::kIdentity:
          break;
      }
      if (dtype != DType::kF32) {
        x = QuantizeScalar(x, dtype);
      }
    }
  }
}

void ApplyActivation(Tensor& t, ActivationKind kind) {
  // Elementwise, so a row partition is trivially order-preserving.
  const int64_t cols = t.cols();
  ParallelForChunks(0, t.rows(), 16, [&](int64_t rb, int64_t re) {
    ApplyActivationTile(t, kind, rb, re, 0, cols);
  });
}

float ActivationGradScalar(ActivationKind kind, float x) {
  switch (kind) {
    case ActivationKind::kGelu: {
      // d/dx of the tanh approximation used by GeluScalar.
      constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
      const float x3 = x * x * x;
      const float inner = kC * (x + 0.044715f * x3);
      const float t = std::tanh(inner);
      const float sech2 = 1.0f - t * t;
      const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
      return 0.5f * (1.0f + t) + 0.5f * x * sech2 * dinner;
    }
    case ActivationKind::kSilu: {
      const float s = 1.0f / (1.0f + std::exp(-x));
      return s * (1.0f + x * (1.0f - s));
    }
    case ActivationKind::kRelu:
      return x > 0.0f ? 1.0f : 0.0f;
    case ActivationKind::kIdentity:
      return 1.0f;
  }
  COMET_CHECK(false) << "unknown activation kind";
  return 0.0f;
}

void ApplyActivationGradTile(Tensor& grad, const Tensor& pre,
                             ActivationKind kind, int64_t row_begin,
                             int64_t row_end, int64_t col_begin,
                             int64_t col_end) {
  COMET_CHECK_EQ(grad.shape().rank(), 2u);
  COMET_CHECK(grad.shape() == pre.shape())
      << "activation grad/pre shape mismatch";
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, grad.rows());
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, grad.cols());
  if (kind == ActivationKind::kIdentity) {
    return;
  }
  // f32 multiply, round on store at 2-byte dtypes (per-element pure; see
  // ApplyActivationTile).
  const DType dtype = grad.dtype();
  for (int64_t r = row_begin; r < row_end; ++r) {
    auto grow = grad.row(r);
    const auto prow = pre.row(r);
    for (int64_t c = col_begin; c < col_end; ++c) {
      float& g = grow[static_cast<size_t>(c)];
      g *= ActivationGradScalar(kind, prow[static_cast<size_t>(c)]);
      if (dtype != DType::kF32) {
        g = QuantizeScalar(g, dtype);
      }
    }
  }
}

void ApplyActivationGrad(Tensor& grad, const Tensor& pre,
                         ActivationKind kind) {
  const int64_t cols = grad.cols();
  ParallelForChunks(0, grad.rows(), 16, [&](int64_t rb, int64_t re) {
    ApplyActivationGradTile(grad, pre, kind, rb, re, 0, cols);
  });
}

}  // namespace comet
