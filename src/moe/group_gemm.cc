#include "moe/group_gemm.h"

#include <algorithm>

#include "util/check.h"

namespace comet {
namespace {

// Inner k-blocking keeps the B panel hot in cache; 64 floats = one page of
// typical L1 lines per row without tuning heroics.
constexpr int64_t kInnerK = 64;

}  // namespace

void GemmTile(const Tensor& a, const Tensor& b, Tensor& c, int64_t row_begin,
              int64_t row_end, int64_t col_begin, int64_t col_end) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  COMET_CHECK_EQ(b.rows(), k);
  COMET_CHECK_EQ(c.rows(), m);
  COMET_CHECK_EQ(c.cols(), n);
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, m);
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, n);
  COMET_CHECK_LE(row_begin, row_end);
  COMET_CHECK_LE(col_begin, col_end);

  auto a_data = a.data();
  auto b_data = b.data();
  auto c_data = c.data();

  for (int64_t i = row_begin; i < row_end; ++i) {
    float* c_row = &c_data[static_cast<size_t>(i * n)];
    for (int64_t j = col_begin; j < col_end; ++j) {
      c_row[j] = 0.0f;
    }
    const float* a_row = &a_data[static_cast<size_t>(i * k)];
    for (int64_t kk = 0; kk < k; kk += kInnerK) {
      const int64_t k_hi = std::min(kk + kInnerK, k);
      for (int64_t p = kk; p < k_hi; ++p) {
        const float a_ip = a_row[p];
        if (a_ip == 0.0f) {
          continue;
        }
        const float* b_row = &b_data[static_cast<size_t>(p * n)];
        for (int64_t j = col_begin; j < col_end; ++j) {
          c_row[j] += a_ip * b_row[j];
        }
      }
    }
  }
}

void Gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  GemmTile(a, b, c, 0, a.rows(), 0, b.cols());
}

void GemmNTTile(const Tensor& a, const Tensor& b, Tensor& c,
                int64_t row_begin, int64_t row_end, int64_t col_begin,
                int64_t col_end) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  COMET_CHECK_EQ(b.cols(), k);
  COMET_CHECK_EQ(c.rows(), m);
  COMET_CHECK_EQ(c.cols(), n);
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, m);
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, n);

  auto a_data = a.data();
  auto b_data = b.data();
  auto c_data = c.data();
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* a_row = &a_data[static_cast<size_t>(i * k)];
    float* c_row = &c_data[static_cast<size_t>(i * n)];
    for (int64_t j = col_begin; j < col_end; ++j) {
      const float* b_row = &b_data[static_cast<size_t>(j * k)];
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      c_row[j] = acc;
    }
  }
}

void GemmNT(const Tensor& a, const Tensor& b, Tensor& c) {
  GemmNTTile(a, b, c, 0, a.rows(), 0, b.rows());
}

void GemmTNTile(const Tensor& a, const Tensor& b, Tensor& c,
                int64_t row_begin, int64_t row_end, int64_t col_begin,
                int64_t col_end) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  COMET_CHECK_EQ(b.rows(), m);
  COMET_CHECK_EQ(c.rows(), k);
  COMET_CHECK_EQ(c.cols(), n);
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, k);
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, n);

  auto a_data = a.data();
  auto b_data = b.data();
  auto c_data = c.data();
  for (int64_t q = row_begin; q < row_end; ++q) {
    float* c_row = &c_data[static_cast<size_t>(q * n)];
    for (int64_t j = col_begin; j < col_end; ++j) {
      c_row[j] = 0.0f;
    }
  }
  // Row-reduction in ascending order; the i-loop is outermost so every C
  // element sees contributions in the same order regardless of tiling.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = &a_data[static_cast<size_t>(i * k)];
    const float* b_row = &b_data[static_cast<size_t>(i * n)];
    for (int64_t q = row_begin; q < row_end; ++q) {
      const float a_iq = a_row[q];
      if (a_iq == 0.0f) {
        continue;
      }
      float* c_row = &c_data[static_cast<size_t>(q * n)];
      for (int64_t j = col_begin; j < col_end; ++j) {
        c_row[j] += a_iq * b_row[j];
      }
    }
  }
}

void GemmTN(const Tensor& a, const Tensor& b, Tensor& c) {
  GemmTNTile(a, b, c, 0, a.cols(), 0, b.cols());
}

std::vector<GemmTileCoord> EnumerateTiles(const GroupGemmProblem& problem,
                                          int64_t tile_m, int64_t tile_n) {
  COMET_CHECK_GT(tile_m, 0);
  COMET_CHECK_GT(tile_n, 0);
  COMET_CHECK_EQ(problem.a.size(), problem.b.size());
  COMET_CHECK_EQ(problem.a.size(), problem.c.size());
  std::vector<GemmTileCoord> tiles;
  for (size_t g = 0; g < problem.a.size(); ++g) {
    const int64_t m = problem.a[g]->rows();
    const int64_t n = problem.b[g]->cols();
    for (int64_t r = 0; r < m; r += tile_m) {
      for (int64_t cc = 0; cc < n; cc += tile_n) {
        tiles.push_back(GemmTileCoord{static_cast<int64_t>(g), r,
                                      std::min(r + tile_m, m), cc,
                                      std::min(cc + tile_n, n)});
      }
    }
  }
  return tiles;
}

void RunTile(const GroupGemmProblem& problem, const GemmTileCoord& tile) {
  COMET_CHECK_GE(tile.group, 0);
  COMET_CHECK_LT(static_cast<size_t>(tile.group), problem.a.size());
  const size_t g = static_cast<size_t>(tile.group);
  GemmTile(*problem.a[g], *problem.b[g], *problem.c[g], tile.row_begin,
           tile.row_end, tile.col_begin, tile.col_end);
}

void RunGroupGemm(const GroupGemmProblem& problem,
                  const std::vector<GemmTileCoord>& tiles) {
  for (const auto& tile : tiles) {
    RunTile(problem, tile);
  }
}

}  // namespace comet
