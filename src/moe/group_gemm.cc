#include "moe/group_gemm.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {
namespace {

// Register-blocked microkernel geometry: each inner block accumulates an
// MR x NR patch of C in registers (NR floats = one AVX-512 or two AVX2
// vectors), streaming A broadcasts against a packed B panel.
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 16;

// One NR-wide accumulator/operand row. GCC/Clang vector extension rather
// than auto-vectorization: the explicit type pins the accumulators into
// vector registers (plain acc[4][16] arrays tempted GCC into outer-loop
// vectorization with stack-resident accumulators -- 6x slower). aligned(4)
// permits loads straight from row-major tensor storage. On targets without
// wide SIMD the compiler lowers the ops to narrower vectors; lane semantics
// (and therefore results) are identical everywhere.
typedef float Vec __attribute__((vector_size(kNR * sizeof(float)),
                                 aligned(alignof(float))));

inline const Vec& LoadVec(const float* p) {
  return *reinterpret_cast<const Vec*>(p);
}

// Row grain for the whole-matrix parallel wrappers: below this many rows per
// chunk the dispatch overhead beats the win.
constexpr int64_t kRowGrain = 8;

// The mixed-precision store: rounds the C region a kernel just produced to
// C's dtype (RNE). This is the tensor-core contract -- low-precision inputs,
// f32 accumulate, round once on store -- expressed as a second pass so the
// f32 microkernels stay untouched. Per-element rounding of a value that is
// itself a pure function of coordinates keeps the whole-vs-tiled and
// 1-vs-N-thread bit-exactness guarantees at every dtype. No-op for f32.
void QuantizeStore(Tensor& c, int64_t row_begin, int64_t row_end,
                   int64_t col_begin, int64_t col_end) {
  const DType dtype = c.dtype();
  if (dtype == DType::kF32) {
    return;
  }
  float* data = c.data().data();
  const int64_t n = c.cols();
  for (int64_t i = row_begin; i < row_end; ++i) {
    QuantizeSpan(std::span<float>(data + i * n + col_begin,
                                  static_cast<size_t>(col_end - col_begin)),
                 dtype);
  }
}

// Per-thread packed B panel (k x kNR, zero-padded in the column direction).
// Thread-local so tile kernels stay reentrant across pool workers.
std::vector<float>& PanelScratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

// ---- NN: C[i, j] = sum_p A[i, p] * B[p, j] ---------------------------------
//
// Accumulation order per C element is p-ascending with a single chain, a
// pure function of (i, j, k): independent of the tile bounds and of the
// (row, column) blocking below, so whole-vs-tiled and 1-vs-N-thread runs are
// bit-identical. The old kernel's `a_ip == 0.0f` skip is gone on purpose:
// the branch broke vectorization and cost more on dense data than it ever
// saved on sparse (see bench/micro_groupgemm).
void GemmTileImpl(const float* a, const float* b, float* c, int64_t k,
                  int64_t n, int64_t row_begin, int64_t row_end,
                  int64_t col_begin, int64_t col_end) {
  std::vector<float>& panel = PanelScratch();
  panel.resize(static_cast<size_t>(k * kNR));
  float* pk = panel.data();

  for (int64_t jj = col_begin; jj < col_end; jj += kNR) {
    const int64_t width = std::min(kNR, col_end - jj);
    // Pack the B panel once per column chunk; pad unused lanes with zeros so
    // the full-width kernel below never reads past the logical columns.
    for (int64_t p = 0; p < k; ++p) {
      const float* b_row = b + p * n + jj;
      float* dst = pk + p * kNR;
      for (int64_t t = 0; t < width; ++t) {
        dst[t] = b_row[t];
      }
      for (int64_t t = width; t < kNR; ++t) {
        dst[t] = 0.0f;
      }
    }

    for (int64_t ii = row_begin; ii < row_end; ii += kMR) {
      const int64_t rows = std::min(kMR, row_end - ii);
      if (rows == kMR) {
        const float* a0 = a + (ii + 0) * k;
        const float* a1 = a + (ii + 1) * k;
        const float* a2 = a + (ii + 2) * k;
        const float* a3 = a + (ii + 3) * k;
        Vec acc0{}, acc1{}, acc2{}, acc3{};
        for (int64_t p = 0; p < k; ++p) {
          const Vec bp = LoadVec(pk + p * kNR);
          acc0 += a0[p] * bp;
          acc1 += a1[p] * bp;
          acc2 += a2[p] * bp;
          acc3 += a3[p] * bp;
        }
        const Vec* accs[kMR] = {&acc0, &acc1, &acc2, &acc3};
        for (int64_t r = 0; r < kMR; ++r) {
          float* c_row = c + (ii + r) * n + jj;
          for (int64_t t = 0; t < width; ++t) {
            c_row[t] = (*accs[r])[t];
          }
        }
      } else {
        Vec acc[kMR] = {};
        for (int64_t p = 0; p < k; ++p) {
          const Vec bp = LoadVec(pk + p * kNR);
          for (int64_t r = 0; r < rows; ++r) {
            acc[r] += a[(ii + r) * k + p] * bp;
          }
        }
        for (int64_t r = 0; r < rows; ++r) {
          float* c_row = c + (ii + r) * n + jj;
          for (int64_t t = 0; t < width; ++t) {
            c_row[t] = acc[r][t];
          }
        }
      }
    }
  }
}

// ---- NT: C[i, j] = dot(A row i, B row j) -----------------------------------
//
// The dot runs kNR independent accumulator lanes over p (lane l takes
// p = l, l + kNR, ...), combined by a fixed binary tree. The lane split and
// the combine order depend only on k, never on the tile bounds, so the
// whole-vs-tiled bit-exactness contract holds. Lanes auto-vectorize to one
// fused multiply-add per kNR elements.
float DotLanes(const float* a, const float* b, int64_t k) {
  Vec acc{};
  const int64_t k_main = k - (k % kNR);
  for (int64_t p = 0; p < k_main; p += kNR) {
    acc += LoadVec(a + p) * LoadVec(b + p);
  }
  for (int64_t p = k_main; p < k; ++p) {
    acc[p - k_main] += a[p] * b[p];
  }
  float lanes[kNR];
  for (int64_t l = 0; l < kNR; ++l) {
    lanes[l] = acc[l];
  }
  for (int64_t stride = kNR / 2; stride > 0; stride /= 2) {
    for (int64_t l = 0; l < stride; ++l) {
      lanes[l] += lanes[l + stride];
    }
  }
  return lanes[0];
}

void GemmNTTileImpl(const float* a, const float* b, float* c, int64_t k,
                    int64_t n, int64_t row_begin, int64_t row_end,
                    int64_t col_begin, int64_t col_end) {
  for (int64_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = col_begin; j < col_end; ++j) {
      c_row[j] = DotLanes(a_row, b + j * k, k);
    }
  }
}

// ---- TN: C[q, j] = sum_i A[i, q] * B[i, j] ---------------------------------
//
// The i reduction always runs over the full [0, m) in ascending order with a
// single chain per C element (held in the register block), so splitting the
// output rows/cols across tiles or threads never reorders a sum.
void GemmTNTileImpl(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n, int64_t row_begin, int64_t row_end,
                    int64_t col_begin, int64_t col_end) {
  for (int64_t jj = col_begin; jj < col_end; jj += kNR) {
    const int64_t width = std::min(kNR, col_end - jj);
    for (int64_t qq = row_begin; qq < row_end; qq += kMR) {
      const int64_t rows = std::min(kMR, row_end - qq);
      if (rows == kMR && width == kNR) {
        Vec acc0{}, acc1{}, acc2{}, acc3{};
        for (int64_t i = 0; i < m; ++i) {
          const float* a_row = a + i * k + qq;
          const Vec bp = LoadVec(b + i * n + jj);
          acc0 += a_row[0] * bp;
          acc1 += a_row[1] * bp;
          acc2 += a_row[2] * bp;
          acc3 += a_row[3] * bp;
        }
        const Vec* accs[kMR] = {&acc0, &acc1, &acc2, &acc3};
        for (int64_t r = 0; r < kMR; ++r) {
          float* c_row = c + (qq + r) * n + jj;
          for (int64_t t = 0; t < kNR; ++t) {
            c_row[t] = (*accs[r])[t];
          }
        }
      } else {
        // Edge block: scalar accumulators, same per-element i-ascending
        // chain (partial-width vector loads would read past the B row).
        float acc[kMR][kNR] = {};
        for (int64_t i = 0; i < m; ++i) {
          const float* bp = b + i * n + jj;
          for (int64_t r = 0; r < rows; ++r) {
            const float v = a[i * k + qq + r];
            for (int64_t t = 0; t < width; ++t) {
              acc[r][t] += v * bp[t];
            }
          }
        }
        for (int64_t r = 0; r < rows; ++r) {
          float* c_row = c + (qq + r) * n + jj;
          for (int64_t t = 0; t < width; ++t) {
            c_row[t] = acc[r][t];
          }
        }
      }
    }
  }
}

}  // namespace

void GemmTile(const Tensor& a, const Tensor& b, Tensor& c, int64_t row_begin,
              int64_t row_end, int64_t col_begin, int64_t col_end) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  COMET_CHECK_EQ(b.rows(), k);
  COMET_CHECK_EQ(c.rows(), m);
  COMET_CHECK_EQ(c.cols(), n);
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, m);
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, n);
  COMET_CHECK_LE(row_begin, row_end);
  COMET_CHECK_LE(col_begin, col_end);

  GemmTileImpl(a.data().data(), b.data().data(), c.data().data(), k, n,
               row_begin, row_end, col_begin, col_end);
  QuantizeStore(c, row_begin, row_end, col_begin, col_end);
}

void Gemm(const Tensor& a, const Tensor& b, Tensor& c) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  COMET_CHECK_EQ(b.rows(), k);
  COMET_CHECK_EQ(c.rows(), m);
  COMET_CHECK_EQ(c.cols(), n);
  const float* a_data = a.data().data();
  const float* b_data = b.data().data();
  float* c_data = c.data().data();
  // Row partition of C: chunks write disjoint rows, so the parallel run is
  // bit-identical to the serial one at any thread count.
  ParallelForChunks(0, m, kRowGrain, [&](int64_t rb, int64_t re) {
    GemmTileImpl(a_data, b_data, c_data, k, n, rb, re, 0, n);
    QuantizeStore(c, rb, re, 0, n);
  });
}

void GemmNTTile(const Tensor& a, const Tensor& b, Tensor& c,
                int64_t row_begin, int64_t row_end, int64_t col_begin,
                int64_t col_end) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  COMET_CHECK_EQ(b.cols(), k);
  COMET_CHECK_EQ(c.rows(), m);
  COMET_CHECK_EQ(c.cols(), n);
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, m);
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, n);

  GemmNTTileImpl(a.data().data(), b.data().data(), c.data().data(), k, n,
                 row_begin, row_end, col_begin, col_end);
  QuantizeStore(c, row_begin, row_end, col_begin, col_end);
}

void GemmNT(const Tensor& a, const Tensor& b, Tensor& c) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  COMET_CHECK_EQ(b.cols(), k);
  COMET_CHECK_EQ(c.rows(), m);
  COMET_CHECK_EQ(c.cols(), n);
  const float* a_data = a.data().data();
  const float* b_data = b.data().data();
  float* c_data = c.data().data();
  ParallelForChunks(0, m, kRowGrain, [&](int64_t rb, int64_t re) {
    GemmNTTileImpl(a_data, b_data, c_data, k, n, rb, re, 0, n);
    QuantizeStore(c, rb, re, 0, n);
  });
}

void GemmTNTile(const Tensor& a, const Tensor& b, Tensor& c,
                int64_t row_begin, int64_t row_end, int64_t col_begin,
                int64_t col_end) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  COMET_CHECK_EQ(b.rows(), m);
  COMET_CHECK_EQ(c.rows(), k);
  COMET_CHECK_EQ(c.cols(), n);
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_end, k);
  COMET_CHECK_GE(col_begin, 0);
  COMET_CHECK_LE(col_end, n);

  GemmTNTileImpl(a.data().data(), b.data().data(), c.data().data(), m, k, n,
                 row_begin, row_end, col_begin, col_end);
  QuantizeStore(c, row_begin, row_end, col_begin, col_end);
}

void GemmTN(const Tensor& a, const Tensor& b, Tensor& c) {
  COMET_CHECK_EQ(a.shape().rank(), 2u);
  COMET_CHECK_EQ(b.shape().rank(), 2u);
  COMET_CHECK_EQ(c.shape().rank(), 2u);
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  COMET_CHECK_EQ(b.rows(), m);
  COMET_CHECK_EQ(c.rows(), k);
  COMET_CHECK_EQ(c.cols(), n);
  const float* a_data = a.data().data();
  const float* b_data = b.data().data();
  float* c_data = c.data().data();
  // Partition over OUTPUT rows q; the i reduction inside each chunk still
  // covers all of [0, m) in order, so determinism is untouched.
  ParallelForChunks(0, k, kRowGrain, [&](int64_t rb, int64_t re) {
    GemmTNTileImpl(a_data, b_data, c_data, m, k, n, rb, re, 0, n);
    QuantizeStore(c, rb, re, 0, n);
  });
}

std::vector<GemmTileCoord> EnumerateTiles(const GroupGemmProblem& problem,
                                          int64_t tile_m, int64_t tile_n) {
  COMET_CHECK_GT(tile_m, 0);
  COMET_CHECK_GT(tile_n, 0);
  COMET_CHECK_EQ(problem.a.size(), problem.b.size());
  COMET_CHECK_EQ(problem.a.size(), problem.c.size());
  std::vector<GemmTileCoord> tiles;
  for (size_t g = 0; g < problem.a.size(); ++g) {
    const int64_t m = problem.a[g]->rows();
    const int64_t n = problem.b[g]->cols();
    for (int64_t r = 0; r < m; r += tile_m) {
      for (int64_t cc = 0; cc < n; cc += tile_n) {
        tiles.push_back(GemmTileCoord{static_cast<int64_t>(g), r,
                                      std::min(r + tile_m, m), cc,
                                      std::min(cc + tile_n, n)});
      }
    }
  }
  return tiles;
}

void WarmGemmScratch(int64_t max_k) {
  COMET_CHECK_GE(max_k, 0);
  std::vector<float>& panel = PanelScratch();
  const size_t need = static_cast<size_t>(max_k * kNR);
  if (panel.capacity() < need) {
    panel.reserve(need);
  }
}

void RunTile(const GroupGemmProblem& problem, const GemmTileCoord& tile) {
  COMET_CHECK_GE(tile.group, 0);
  COMET_CHECK_LT(static_cast<size_t>(tile.group), problem.a.size());
  const size_t g = static_cast<size_t>(tile.group);
  GemmTile(*problem.a[g], *problem.b[g], *problem.c[g], tile.row_begin,
           tile.row_end, tile.col_begin, tile.col_end);
}

void RunGroupGemm(const GroupGemmProblem& problem,
                  const std::vector<GemmTileCoord>& tiles) {
  // Tiles partition the grouped C disjointly (each output element belongs to
  // exactly one tile), so dispatching them across the pool is numerically
  // free -- the paper's §3.1 tile-independence claim re-expressed on CPU.
  ParallelFor(0, static_cast<int64_t>(tiles.size()), 1, [&](int64_t t) {
    RunTile(problem, tiles[static_cast<size_t>(t)]);
  });
}

}  // namespace comet
