#include "exec/op_costs.h"

#include <algorithm>

#include "util/check.h"

namespace comet {

OpCostModel::OpCostModel(const ClusterSpec& cluster, double bytes_per_element)
    : cluster_(cluster),
      gemm_(cluster.gpu, 128, 128, 0.85, bytes_per_element),
      bytes_per_element_(bytes_per_element) {
  COMET_CHECK_GT(bytes_per_element_, 0.0);
}

double OpCostModel::GatingUs(int64_t tokens, int64_t embedding,
                             int64_t num_experts) const {
  if (tokens == 0) {
    return 0.0;
  }
  const double gemm_us =
      gemm_.TimeUs(GemmShape{tokens, num_experts, embedding},
                   cluster_.gpu.num_sms);
  // Softmax + top-k selection: a few passes over (tokens x E) logits.
  const double select_bytes =
      3.0 * static_cast<double>(tokens) * static_cast<double>(num_experts) * 4.0;
  return gemm_us + select_bytes / cluster_.gpu.hbm_bandwidth_bytes_per_us;
}

double OpCostModel::ActivationUs(int64_t rows, int64_t cols) const {
  const double bytes =
      2.0 * static_cast<double>(rows) * static_cast<double>(cols) *
      bytes_per_element_;
  return bytes / cluster_.gpu.hbm_bandwidth_bytes_per_us;
}

double OpCostModel::PermuteUs(int64_t rows, int64_t cols) const {
  const double bytes =
      2.0 * static_cast<double>(rows) * static_cast<double>(cols) *
      bytes_per_element_;
  // Scattered rows reach ~60% of streaming HBM bandwidth.
  return bytes / (0.6 * cluster_.gpu.hbm_bandwidth_bytes_per_us);
}

double OpCostModel::CombineReduceUs(int64_t rows, int64_t cols,
                                    int64_t topk) const {
  COMET_CHECK_GT(topk, 0);
  const double bytes = (static_cast<double>(rows) +
                        static_cast<double>(rows) / static_cast<double>(topk)) *
                       static_cast<double>(cols) * bytes_per_element_;
  return bytes / cluster_.gpu.hbm_bandwidth_bytes_per_us;
}

double OpCostModel::AttentionUs(int64_t tokens, int64_t embedding,
                                int tp) const {
  COMET_CHECK_GT(tp, 0);
  if (tokens == 0) {
    return 0.0;
  }
  const double m = static_cast<double>(tokens);
  const double n = static_cast<double>(embedding);
  // QKV projection (sharded over TP) + attention scores/values + output
  // projection. FlashAttention keeps the score matrix on chip, so charge
  // pure flops at a moderate sustained efficiency.
  const double flops =
      (2.0 * m * n * 4.0 * n + 4.0 * m * m * n) / static_cast<double>(tp);
  const double compute_us = flops / (0.5 * cluster_.gpu.peak_flops_per_us);
  double comm_us = 0.0;
  if (tp > 1) {
    // Ring all-reduce of the (tokens x N) attention output.
    const double bytes = 2.0 * (static_cast<double>(tp - 1) / tp) * m * n *
                         bytes_per_element_;
    comm_us = bytes / cluster_.link.bandwidth_bytes_per_us +
              2.0 * (tp - 1) * cluster_.link.latency_us;
  }
  return compute_us + comm_us;
}

}  // namespace comet
