// Common execution types shared by the COMET executor and every baseline.
//
// An executor runs one MoE layer on a simulated cluster and reports both a
// timing-plane result (always) and a functional-plane result (on request --
// real numerics are too slow at paper-scale shapes, so benches run
// timing-only while tests run both and compare outputs).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"
#include "moe/workload.h"
#include "sim/timeline.h"
#include "tensor/tensor.h"

namespace comet {

enum class ExecMode {
  kTimedOnly,    // scheduling + cost model only; outputs empty
  kFunctional,   // also compute real outputs through the emulated heap
};

struct LayerExecution {
  std::string executor;
  // One output per EP group, (M/EP, N); empty in kTimedOnly mode.
  std::vector<Tensor> outputs;
  // Timeline of the critical (slowest) rank.
  Timeline timeline;
  // End-to-end duration of the MoE layer (max over ranks), us.
  double duration_us = 0.0;
  // Per-rank durations (diagnostics; world() entries).
  std::vector<double> per_rank_us;
};

// Interface implemented by CometExecutor and the four baselines.
class MoeLayerExecutor {
 public:
  virtual ~MoeLayerExecutor() = default;

  virtual std::string name() const = 0;

  // True if the executor supports this parallel configuration (FasterMoE
  // supports expert parallelism only, for example).
  virtual bool Supports(const ParallelConfig& parallel) const = 0;

  virtual LayerExecution Run(const MoeWorkload& workload,
                             const ClusterSpec& cluster,
                             ExecMode mode) = 0;
};

}  // namespace comet
