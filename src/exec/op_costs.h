// Costs of the non-GEMM MoE operations, shared by every executor so that
// identical work is priced identically (the paper's Figure 9 keeps attention
// and gating identical across mechanisms; only scheduling differs).
#pragma once

#include <cstdint>

#include "hw/gemm_cost.h"
#include "hw/gpu_spec.h"

namespace comet {

class OpCostModel {
 public:
  // `bytes_per_element` is the training dtype width (2 for BF16).
  explicit OpCostModel(const ClusterSpec& cluster,
                       double bytes_per_element = 2.0);

  const ClusterSpec& cluster() const { return cluster_; }
  const GemmCostModel& gemm() const { return gemm_; }
  double bytes_per_element() const { return bytes_per_element_; }

  // Gate network: (tokens x N) x (N x E) GEMM plus softmax/top-k selection.
  double GatingUs(int64_t tokens, int64_t embedding, int64_t num_experts) const;

  // Elementwise activation over (rows x cols): one read + one write pass.
  double ActivationUs(int64_t rows, int64_t cols) const;

  // Local permute / unpermute of (rows x cols): gather + scatter through HBM.
  double PermuteUs(int64_t rows, int64_t cols) const;

  // Top-k combine reduction over (rows x cols) contributions into
  // (rows / topk x cols) outputs: topk reads + 1 write.
  double CombineReduceUs(int64_t rows, int64_t cols, int64_t topk) const;

  // Host-side launch overhead of one kernel.
  double LaunchUs() const { return cluster_.gpu.kernel_launch_us; }

  // Attention block time per rank (QKV projection + FlashAttention-style
  // score/value + output projection), tokens = per-device sequence. Includes
  // the TP all-reduce of the attention output when tp > 1. Identical across
  // all executors.
  double AttentionUs(int64_t tokens, int64_t embedding, int tp) const;

 private:
  ClusterSpec cluster_;
  GemmCostModel gemm_;
  double bytes_per_element_;
};

}  // namespace comet
