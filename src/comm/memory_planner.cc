#include "comm/memory_planner.h"

#include "util/check.h"
#include "util/units.h"

namespace comet {

double CommBufferPlan::Bytes() const {
  return static_cast<double>(tokens) * static_cast<double>(embedding) *
         static_cast<double>(DTypeSize(dtype));
}

double CommBufferPlan::MiBs() const { return Bytes() / kBytesPerMiB; }

CommBufferPlan PlanCommBuffer(int64_t tokens, int64_t embedding, DType dtype) {
  COMET_CHECK_GT(tokens, 0);
  COMET_CHECK_GT(embedding, 0);
  return CommBufferPlan{tokens, embedding, dtype};
}

}  // namespace comet
