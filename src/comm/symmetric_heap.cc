#include "comm/symmetric_heap.h"

#include <algorithm>

#include "util/check.h"

namespace comet {

SymmetricHeap::SymmetricHeap(int world_size)
    : world_size_(world_size),
      traffic_(static_cast<size_t>(world_size) * world_size, 0.0) {
  COMET_CHECK_GT(world_size_, 0);
}

SymmetricBufferId SymmetricHeap::Allocate(const std::string& name,
                                          const Shape& shape, DType dtype) {
  Allocation alloc;
  alloc.name = name;
  alloc.per_rank.reserve(static_cast<size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    alloc.per_rank.emplace_back(shape, dtype);
  }
  buffers_.push_back(std::move(alloc));
  return static_cast<SymmetricBufferId>(buffers_.size()) - 1;
}

SymmetricHeap::Allocation& SymmetricHeap::Get(SymmetricBufferId buf) {
  COMET_CHECK_GE(buf, 0);
  COMET_CHECK_LT(static_cast<size_t>(buf), buffers_.size());
  return buffers_[static_cast<size_t>(buf)];
}

const SymmetricHeap::Allocation& SymmetricHeap::Get(SymmetricBufferId buf) const {
  COMET_CHECK_GE(buf, 0);
  COMET_CHECK_LT(static_cast<size_t>(buf), buffers_.size());
  return buffers_[static_cast<size_t>(buf)];
}

Tensor& SymmetricHeap::Local(SymmetricBufferId buf, int rank) {
  COMET_CHECK_GE(rank, 0);
  COMET_CHECK_LT(rank, world_size_);
  return Get(buf).per_rank[static_cast<size_t>(rank)];
}

const Tensor& SymmetricHeap::Local(SymmetricBufferId buf, int rank) const {
  COMET_CHECK_GE(rank, 0);
  COMET_CHECK_LT(rank, world_size_);
  return Get(buf).per_rank[static_cast<size_t>(rank)];
}

void SymmetricHeap::AccountTraffic(int src, int dst, double bytes) {
  if (src == dst) {
    return;
  }
  std::lock_guard<std::mutex> lock(traffic_mutex_);
  traffic_[static_cast<size_t>(src) * world_size_ + dst] += bytes;
}

void SymmetricHeap::PutRow(SymmetricBufferId buf, int src_rank, int dst_rank,
                           int64_t dst_row, std::span<const float> data) {
  Tensor& dst = Local(buf, dst_rank);
  dst.SetRow(dst_row, data);
  AccountTraffic(src_rank, dst_rank,
                 static_cast<double>(data.size()) *
                     static_cast<double>(DTypeSize(dst.dtype())));
}

std::vector<float> SymmetricHeap::GetRow(SymmetricBufferId buf, int reader_rank,
                                         int owner_rank, int64_t row) {
  const Tensor& src = Local(buf, owner_rank);
  auto view = src.row(row);
  AccountTraffic(owner_rank, reader_rank,
                 static_cast<double>(view.size()) *
                     static_cast<double>(DTypeSize(src.dtype())));
  return std::vector<float>(view.begin(), view.end());
}

void SymmetricHeap::CopyRow(SymmetricBufferId buf, int reader_rank,
                            int owner_rank, int64_t row, std::span<float> dst) {
  const Tensor& src = Local(buf, owner_rank);
  auto view = src.row(row);
  COMET_CHECK_EQ(view.size(), dst.size());
  AccountTraffic(owner_rank, reader_rank,
                 static_cast<double>(view.size()) *
                     static_cast<double>(DTypeSize(src.dtype())));
  std::copy(view.begin(), view.end(), dst.begin());
}

void SymmetricHeap::AccumulateRow(SymmetricBufferId buf, int src_rank,
                                  int dst_rank, int64_t dst_row,
                                  std::span<const float> data, float weight) {
  Tensor& dst = Local(buf, dst_rank);
  dst.AccumulateRow(dst_row, data, weight);
  AccountTraffic(src_rank, dst_rank,
                 static_cast<double>(data.size()) *
                     static_cast<double>(DTypeSize(dst.dtype())));
}

SymmetricBufferId SymmetricHeap::AllocateSignals(const std::string& name,
                                                 int64_t count) {
  COMET_CHECK_GT(count, 0);
  Allocation alloc;
  alloc.name = name;
  alloc.signals.assign(static_cast<size_t>(world_size_),
                       std::vector<uint64_t>(static_cast<size_t>(count), 0));
  buffers_.push_back(std::move(alloc));
  return static_cast<SymmetricBufferId>(buffers_.size()) - 1;
}

void SymmetricHeap::PutRowWithSignal(SymmetricBufferId buf, int src_rank,
                                     int dst_rank, int64_t dst_row,
                                     std::span<const float> data,
                                     SymmetricBufferId sig,
                                     int64_t sig_index) {
  PutRow(buf, src_rank, dst_rank, dst_row, data);
  Allocation& alloc = Get(sig);
  COMET_CHECK(!alloc.signals.empty())
      << alloc.name << " is not a signal allocation";
  COMET_CHECK_GE(dst_rank, 0);
  COMET_CHECK_LT(dst_rank, world_size_);
  auto& words = alloc.signals[static_cast<size_t>(dst_rank)];
  COMET_CHECK_GE(sig_index, 0);
  COMET_CHECK_LT(static_cast<size_t>(sig_index), words.size());
  // The signal word itself is a few bytes riding the same put; it is not
  // accounted so payload traffic stays exactly equal to the planned bytes
  // (the invariant the traffic tests pin down).
  ++words[static_cast<size_t>(sig_index)];
}

uint64_t SymmetricHeap::SignalValue(SymmetricBufferId sig, int rank,
                                    int64_t sig_index) const {
  const Allocation& alloc = Get(sig);
  COMET_CHECK(!alloc.signals.empty())
      << alloc.name << " is not a signal allocation";
  COMET_CHECK_GE(rank, 0);
  COMET_CHECK_LT(rank, world_size_);
  const auto& words = alloc.signals[static_cast<size_t>(rank)];
  COMET_CHECK_GE(sig_index, 0);
  COMET_CHECK_LT(static_cast<size_t>(sig_index), words.size());
  return words[static_cast<size_t>(sig_index)];
}

void SymmetricHeap::WaitSignalGe(SymmetricBufferId sig, int rank,
                                 int64_t sig_index, uint64_t expected) const {
  const uint64_t value = SignalValue(sig, rank, sig_index);
  COMET_CHECK_GE(value, expected)
      << "wait_until on " << Get(sig).name << "[" << sig_index << "]@rank"
      << rank << ": schedule consumed data before its producer signalled";
}

double SymmetricHeap::Traffic(int src_rank, int dst_rank) const {
  COMET_CHECK_GE(src_rank, 0);
  COMET_CHECK_LT(src_rank, world_size_);
  COMET_CHECK_GE(dst_rank, 0);
  COMET_CHECK_LT(dst_rank, world_size_);
  return traffic_[static_cast<size_t>(src_rank) * world_size_ + dst_rank];
}

double SymmetricHeap::TotalTraffic() const {
  double total = 0.0;
  for (double t : traffic_) {
    total += t;
  }
  return total;
}

void SymmetricHeap::ResetTraffic() {
  std::fill(traffic_.begin(), traffic_.end(), 0.0);
}

double SymmetricHeap::AllocatedBytesPerRank() const {
  double total = 0.0;
  for (const auto& alloc : buffers_) {
    if (!alloc.per_rank.empty()) {
      total += alloc.per_rank[0].LogicalBytes();
    }
  }
  return total;
}

const std::string& SymmetricHeap::BufferName(SymmetricBufferId buf) const {
  return Get(buf).name;
}

}  // namespace comet
