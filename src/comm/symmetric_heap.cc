#include "comm/symmetric_heap.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/check.h"

namespace comet {

namespace {

// FNV-1a over the f32 bit patterns of a stored row -- the same family the
// serving plane digests with, so a checksum pins exact bits, not values.
uint64_t RowChecksum(std::span<const float> row) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto* p = reinterpret_cast<const unsigned char*>(row.data());
  const size_t n = row.size() * sizeof(float);
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// splitmix64 finalizer: the corruption injector's pure decision hash.
uint64_t HashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Per-thread wire buffer for read-modify-write row ops; thread-local so
// concurrent ranks share nothing.
std::vector<float>& HeapWireScratch() {
  thread_local std::vector<float> wire;
  return wire;
}

}  // namespace

void WarmHeapWireScratch(int64_t max_cols) {
  COMET_CHECK_GE(max_cols, 0);
  std::vector<float>& wire = HeapWireScratch();
  if (wire.capacity() < static_cast<size_t>(max_cols)) {
    wire.reserve(static_cast<size_t>(max_cols));
  }
}

SymmetricHeap::SymmetricHeap(int world_size, HeapIntegrityOptions integrity)
    : world_size_(world_size),
      integrity_(integrity),
      traffic_(static_cast<size_t>(world_size) * static_cast<size_t>(world_size)) {
  COMET_CHECK_GT(world_size_, 0);
  COMET_CHECK_GE(integrity_.corrupt_rate, 0.0);
  COMET_CHECK_LE(integrity_.corrupt_rate, 1.0);
}

SymmetricBufferId SymmetricHeap::Allocate(const std::string& name,
                                          const Shape& shape, DType dtype) {
  Allocation alloc;
  alloc.name = name;
  alloc.per_rank.reserve(static_cast<size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    alloc.per_rank.emplace_back(shape, dtype);
  }
  if (integrity_.checksum_rows) {
    const size_t rows = static_cast<size_t>(alloc.per_rank[0].rows());
    alloc.integrity.resize(static_cast<size_t>(world_size_));
    for (auto& ri : alloc.integrity) {
      ri.sum.assign(rows, 0);
      ri.valid.assign(rows, 0);
      ri.puts.assign(rows, 0);
    }
  }
  buffers_.push_back(std::move(alloc));
  return static_cast<SymmetricBufferId>(buffers_.size()) - 1;
}

void SymmetricHeap::RecordRow(const Allocation& alloc, int rank,
                              int64_t row) const {
  // Both gates: SetIntegrity may disable checksumming while the (persistent)
  // arrays remain materialized -- behavior must match a heap built with
  // checksumming off.
  if (!integrity_.checksum_rows || alloc.integrity.empty()) {
    return;
  }
  auto& ri = const_cast<Allocation&>(alloc).integrity[static_cast<size_t>(rank)];
  const Tensor& t = alloc.per_rank[static_cast<size_t>(rank)];
  ri.sum[static_cast<size_t>(row)] = RowChecksum(t.row(row));
  ri.valid[static_cast<size_t>(row)] = 1;
}

void SymmetricHeap::VerifyRow(const Allocation& alloc, int rank, int64_t row,
                              const char* op) const {
  if (!integrity_.checksum_rows || alloc.integrity.empty()) {
    return;
  }
  const auto& ri = alloc.integrity[static_cast<size_t>(rank)];
  if (ri.valid[static_cast<size_t>(row)] == 0) {
    return;  // never put: bulk-initialized data carries no checksum
  }
  const Tensor& t = alloc.per_rank[static_cast<size_t>(rank)];
  const uint64_t have = RowChecksum(t.row(row));
  rows_verified_.fetch_add(1, std::memory_order_relaxed);
  COMET_CHECK_EQ(have, ri.sum[static_cast<size_t>(row)])
      << "transport integrity: checksum mismatch in " << op << " on \""
      << alloc.name << "\" row " << row << "@rank" << rank
      << " -- payload corrupted in flight";
}

void SymmetricHeap::MaybeCorrupt(SymmetricBufferId buf,
                                 const Allocation& alloc, int rank,
                                 int64_t row) const {
  if (integrity_.corrupt_rate <= 0.0 || !integrity_.checksum_rows ||
      alloc.integrity.empty()) {
    return;
  }
  auto& ri = const_cast<Allocation&>(alloc).integrity[static_cast<size_t>(rank)];
  // Keyed on the per-row put count, not on any global order: concurrent
  // ranks putting disjoint rows reach identical decisions at any thread
  // count, so a corrupted run is bit-reproducible.
  const uint32_t nth_put = ++ri.puts[static_cast<size_t>(row)];
  const uint64_t key =
      HashMix(integrity_.corrupt_seed ^
              HashMix(static_cast<uint64_t>(buf) * 0x9e3779b97f4a7c15ULL ^
                      (static_cast<uint64_t>(rank) << 40) ^
                      (static_cast<uint64_t>(row) << 8) ^ nth_put));
  const double draw =
      static_cast<double>(key >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  if (draw >= integrity_.corrupt_rate) {
    return;
  }
  Tensor& t =
      const_cast<Tensor&>(alloc.per_rank[static_cast<size_t>(rank)]);
  auto stored = t.row(row);
  const uint64_t where = HashMix(key);
  const size_t elem = static_cast<size_t>(where % stored.size());
  const uint32_t bit = static_cast<uint32_t>((where >> 32) % 32);
  uint32_t bits = 0;
  std::memcpy(&bits, &stored[elem], sizeof(bits));
  bits ^= uint32_t{1} << bit;
  std::memcpy(&stored[elem], &bits, sizeof(bits));
  rows_corrupted_.fetch_add(1, std::memory_order_relaxed);
}

void SymmetricHeap::InvalidateRank(const Allocation& alloc, int rank) const {
  if (!integrity_.checksum_rows || alloc.integrity.empty()) {
    return;
  }
  auto& ri = const_cast<Allocation&>(alloc).integrity[static_cast<size_t>(rank)];
  std::fill(ri.valid.begin(), ri.valid.end(), uint8_t{0});
}

SymmetricHeap::Allocation& SymmetricHeap::Get(SymmetricBufferId buf) {
  COMET_CHECK_GE(buf, 0);
  COMET_CHECK_LT(static_cast<size_t>(buf), buffers_.size());
  return buffers_[static_cast<size_t>(buf)];
}

const SymmetricHeap::Allocation& SymmetricHeap::Get(SymmetricBufferId buf) const {
  COMET_CHECK_GE(buf, 0);
  COMET_CHECK_LT(static_cast<size_t>(buf), buffers_.size());
  return buffers_[static_cast<size_t>(buf)];
}

void SymmetricHeap::CheckRank(const Allocation& alloc, int rank,
                              const char* op, const char* role) const {
  COMET_CHECK(rank >= 0 && rank < world_size_)
      << op << " on \"" << alloc.name << "\": " << role << " rank " << rank
      << " out of range [0, " << world_size_ << ")";
}

Tensor& SymmetricHeap::DataLocal(const Allocation& alloc, int rank,
                                 const char* op) const {
  COMET_CHECK(!alloc.per_rank.empty())
      << op << " on \"" << alloc.name
      << "\": signal-only allocation has no data rows";
  CheckRank(alloc, rank, op, "target");
  // The heap is logically mutable through any buffer id; Allocation lookups
  // are shared between const and non-const entry points.
  return const_cast<Tensor&>(alloc.per_rank[static_cast<size_t>(rank)]);
}

namespace {

void CheckRowInRange(const std::string& name, const Tensor& t, int64_t row,
                     const char* op) {
  COMET_CHECK(row >= 0 && row < t.rows())
      << op << " on \"" << name << "\": row " << row << " out of range [0, "
      << t.rows() << ")";
}

// Moves a row through the allocation's wire format. For the 2-byte dtypes
// the payload is genuinely narrowed: each element passes through its 16-bit
// encoding (QuantizeSpan IS encode-then-decode, see tensor/dtype.h), so no
// information beyond BF16/F16 precision can survive transport -- exactly
// what a put through a 2MN-byte NVSHMEM buffer guarantees. f32 rows copy
// verbatim. Stateless, so concurrent ranks share nothing.
void CopyThroughWire(std::span<const float> src, std::span<float> dst,
                     DType dtype) {
  COMET_CHECK_EQ(src.size(), dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
  QuantizeSpan(dst, dtype);
}

}  // namespace

Tensor& SymmetricHeap::Local(SymmetricBufferId buf, int rank) {
  const Allocation& alloc = Get(buf);
  // Mutable access invalidates the rank's checksums: the caller is about to
  // bulk-rewrite rows outside the put path (setup-phase initialization).
  InvalidateRank(alloc, rank);
  return DataLocal(alloc, rank, "Local");
}

const Tensor& SymmetricHeap::Local(SymmetricBufferId buf, int rank) const {
  return DataLocal(Get(buf), rank, "Local");
}

void SymmetricHeap::AccountTraffic(int src, int dst, double bytes) {
  if (src == dst) {
    return;
  }
  // Byte counts are whole numbers (rows x dtype size); summing them in any
  // order gives the same totals, so relaxed adds suffice.
  traffic_[static_cast<size_t>(src) * static_cast<size_t>(world_size_) +
           static_cast<size_t>(dst)]
      .fetch_add(static_cast<uint64_t>(bytes), std::memory_order_relaxed);
}

void SymmetricHeap::PutRow(SymmetricBufferId buf, int src_rank, int dst_rank,
                           int64_t dst_row, std::span<const float> data) {
  const Allocation& alloc = Get(buf);
  CheckRank(alloc, src_rank, "PutRow", "source");
  Tensor& dst = DataLocal(alloc, dst_rank, "PutRow");
  CheckRowInRange(alloc.name, dst, dst_row, "PutRow");
  CopyThroughWire(data, dst.row(dst_row), dst.dtype());
  // Checksum the stored bits FIRST, then maybe corrupt: an injected flip is
  // guaranteed to disagree with the recorded sum, so the first consumer of
  // the row detects it.
  RecordRow(alloc, dst_rank, dst_row);
  MaybeCorrupt(buf, alloc, dst_rank, dst_row);
  AccountTraffic(src_rank, dst_rank,
                 static_cast<double>(data.size()) *
                     static_cast<double>(DTypeSize(dst.dtype())));
}

std::vector<float> SymmetricHeap::GetRow(SymmetricBufferId buf, int reader_rank,
                                         int owner_rank, int64_t row) {
  const Allocation& alloc = Get(buf);
  CheckRank(alloc, reader_rank, "GetRow", "reader");
  const Tensor& src = DataLocal(alloc, owner_rank, "GetRow");
  CheckRowInRange(alloc.name, src, row, "GetRow");
  VerifyRow(alloc, owner_rank, row, "GetRow");
  auto view = src.row(row);
  AccountTraffic(owner_rank, reader_rank,
                 static_cast<double>(view.size()) *
                     static_cast<double>(DTypeSize(src.dtype())));
  std::vector<float> out(view.size());
  CopyThroughWire(view, out, src.dtype());
  return out;
}

void SymmetricHeap::CopyRow(SymmetricBufferId buf, int reader_rank,
                            int owner_rank, int64_t row, std::span<float> dst) {
  const Allocation& alloc = Get(buf);
  CheckRank(alloc, reader_rank, "CopyRow", "reader");
  const Tensor& src = DataLocal(alloc, owner_rank, "CopyRow");
  CheckRowInRange(alloc.name, src, row, "CopyRow");
  VerifyRow(alloc, owner_rank, row, "CopyRow");
  auto view = src.row(row);
  COMET_CHECK_EQ(view.size(), dst.size());
  AccountTraffic(owner_rank, reader_rank,
                 static_cast<double>(view.size()) *
                     static_cast<double>(DTypeSize(src.dtype())));
  CopyThroughWire(view, dst, src.dtype());
}

void SymmetricHeap::AccumulateRow(SymmetricBufferId buf, int src_rank,
                                  int dst_rank, int64_t dst_row,
                                  std::span<const float> data, float weight) {
  const Allocation& alloc = Get(buf);
  CheckRank(alloc, src_rank, "AccumulateRow", "source");
  Tensor& dst = DataLocal(alloc, dst_rank, "AccumulateRow");
  CheckRowInRange(alloc.name, dst, dst_row, "AccumulateRow");
  // Read-modify-write: verify the current contents before folding into them,
  // re-checksum after (the injector does not target accumulates -- it models
  // link corruption on puts; an accumulate still DETECTS a previously
  // corrupted destination row).
  VerifyRow(alloc, dst_rank, dst_row, "AccumulateRow");
  // The payload crosses the wire at the buffer dtype like every other row
  // op (an unrepresentable f32 payload must not leak extra bits into the
  // destination); then f32 accumulate and round the updated row back on
  // store -- the same contract as the GEMM epilogue (NVSHMEM atomics on a
  // 2-byte buffer cannot hold wider partials either).
  std::vector<float>& wire = HeapWireScratch();
  wire.resize(data.size());
  CopyThroughWire(data, wire, dst.dtype());
  dst.AccumulateRow(dst_row, wire, weight);
  dst.QuantizeRow(dst_row);
  RecordRow(alloc, dst_rank, dst_row);
  AccountTraffic(src_rank, dst_rank,
                 static_cast<double>(data.size()) *
                     static_cast<double>(DTypeSize(dst.dtype())));
}

SymmetricBufferId SymmetricHeap::AllocateSignals(const std::string& name,
                                                 int64_t count) {
  COMET_CHECK_GT(count, 0);
  Allocation alloc;
  alloc.name = name;
  alloc.signals.reserve(static_cast<size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    // Value-initialized atomics: every word starts at 0.
    alloc.signals.emplace_back(static_cast<size_t>(count));
  }
  buffers_.push_back(std::move(alloc));
  return static_cast<SymmetricBufferId>(buffers_.size()) - 1;
}

const std::atomic<uint64_t>& SymmetricHeap::SignalWord(SymmetricBufferId sig,
                                                       int rank,
                                                       int64_t sig_index,
                                                       const char* op) const {
  const Allocation& alloc = Get(sig);
  COMET_CHECK(!alloc.signals.empty())
      << op << " on \"" << alloc.name << "\": not a signal allocation";
  CheckRank(alloc, rank, op, "signal");
  const auto& words = alloc.signals[static_cast<size_t>(rank)];
  COMET_CHECK(sig_index >= 0 &&
              static_cast<size_t>(sig_index) < words.size())
      << op << " on \"" << alloc.name << "\": signal index " << sig_index
      << " out of range [0, " << words.size() << ")";
  return words[static_cast<size_t>(sig_index)];
}

void SymmetricHeap::PutRowWithSignal(SymmetricBufferId buf, int src_rank,
                                     int dst_rank, int64_t dst_row,
                                     std::span<const float> data,
                                     SymmetricBufferId sig,
                                     int64_t sig_index) {
  PutRow(buf, src_rank, dst_rank, dst_row, data);
  const std::atomic<uint64_t>& word =
      SignalWord(sig, dst_rank, sig_index, "PutRowWithSignal");
  // The signal word itself is a few bytes riding the same put; it is not
  // accounted so payload traffic stays exactly equal to the planned bytes
  // (the invariant the traffic tests pin down). The release order publishes
  // the row copied above to any consumer that acquire-loads the word.
  const_cast<std::atomic<uint64_t>&>(word).fetch_add(
      1, std::memory_order_release);
}

uint64_t SymmetricHeap::SignalValue(SymmetricBufferId sig, int rank,
                                    int64_t sig_index) const {
  return SignalWord(sig, rank, sig_index, "SignalValue")
      .load(std::memory_order_acquire);
}

void SymmetricHeap::WaitSignalGe(SymmetricBufferId sig, int rank,
                                 int64_t sig_index, uint64_t expected) const {
  const uint64_t value = SignalValue(sig, rank, sig_index);
  COMET_CHECK_GE(value, expected)
      << "wait_until on " << Get(sig).name << "[" << sig_index << "]@rank"
      << rank << ": schedule consumed data before its producer signalled";
}

void SymmetricHeap::WaitUntilSignalGe(SymmetricBufferId sig, int rank,
                                      int64_t sig_index, uint64_t expected,
                                      int64_t timeout_ms) const {
  const std::atomic<uint64_t>& word =
      SignalWord(sig, rank, sig_index, "WaitUntilSignalGe");
  if (word.load(std::memory_order_acquire) >= expected) {
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int spins = 0;
  while (word.load(std::memory_order_acquire) < expected) {
    // Short inline spin, then yield; check the clock only occasionally to
    // keep the wait loop syscall-light.
    if (++spins >= 64) {
      std::this_thread::yield();
    }
    if (spins % 256 == 0 && std::chrono::steady_clock::now() >= deadline) {
      COMET_CHECK(false)
          << "WaitUntilSignalGe on \"" << Get(sig).name << "\"[" << sig_index
          << "]@rank" << rank << ": producer never reached " << expected
          << " within " << timeout_ms << " ms (last value "
          << word.load(std::memory_order_acquire) << ")";
    }
  }
}

void SymmetricHeap::ResizeRows(SymmetricBufferId buf, int64_t rows) {
  Allocation& alloc = Get(buf);
  COMET_CHECK(!alloc.per_rank.empty())
      << "ResizeRows on \"" << alloc.name
      << "\": signal-only allocation has no data rows";
  COMET_CHECK_EQ(alloc.per_rank[0].shape().rank(), 2u)
      << "ResizeRows on \"" << alloc.name << "\": rank-2 buffers only";
  COMET_CHECK_GE(rows, 0);
  const int64_t cols = alloc.per_rank[0].cols();
  for (auto& t : alloc.per_rank) {
    t.ResetFormat2D(rows, cols, t.dtype());
  }
  for (auto& ri : alloc.integrity) {
    ri.sum.assign(static_cast<size_t>(rows), 0);
    ri.valid.assign(static_cast<size_t>(rows), 0);
    ri.puts.assign(static_cast<size_t>(rows), 0);
  }
}

void SymmetricHeap::ResetSignals(SymmetricBufferId sig) {
  Allocation& alloc = Get(sig);
  COMET_CHECK(!alloc.signals.empty())
      << "ResetSignals on \"" << alloc.name << "\": not a signal allocation";
  for (auto& words : alloc.signals) {
    for (auto& w : words) {
      w.store(0, std::memory_order_relaxed);
    }
  }
}

void SymmetricHeap::SetIntegrity(const HeapIntegrityOptions& integrity) {
  COMET_CHECK_GE(integrity.corrupt_rate, 0.0);
  COMET_CHECK_LE(integrity.corrupt_rate, 1.0);
  integrity_ = integrity;
  for (auto& alloc : buffers_) {
    if (alloc.per_rank.empty()) {
      continue;  // signal allocations carry no row integrity
    }
    const size_t rows = static_cast<size_t>(alloc.per_rank[0].rows());
    if (integrity_.checksum_rows && alloc.integrity.empty()) {
      alloc.integrity.resize(static_cast<size_t>(world_size_));
    }
    for (auto& ri : alloc.integrity) {
      ri.sum.assign(rows, 0);
      ri.valid.assign(rows, 0);
      ri.puts.assign(rows, 0);
    }
  }
}

double SymmetricHeap::Traffic(int src_rank, int dst_rank) const {
  COMET_CHECK_GE(src_rank, 0);
  COMET_CHECK_LT(src_rank, world_size_);
  COMET_CHECK_GE(dst_rank, 0);
  COMET_CHECK_LT(dst_rank, world_size_);
  return static_cast<double>(
      traffic_[static_cast<size_t>(src_rank) * static_cast<size_t>(world_size_) +
               static_cast<size_t>(dst_rank)]
          .load(std::memory_order_relaxed));
}

double SymmetricHeap::TotalTraffic() const {
  double total = 0.0;
  for (const auto& t : traffic_) {
    total += static_cast<double>(t.load(std::memory_order_relaxed));
  }
  return total;
}

void SymmetricHeap::ResetTraffic() {
  for (auto& t : traffic_) {
    t.store(0, std::memory_order_relaxed);
  }
}

double SymmetricHeap::AllocatedBytesPerRank() const {
  double total = 0.0;
  for (const auto& alloc : buffers_) {
    if (!alloc.per_rank.empty()) {
      total += alloc.per_rank[0].LogicalBytes();
    }
  }
  return total;
}

const std::string& SymmetricHeap::BufferName(SymmetricBufferId buf) const {
  return Get(buf).name;
}

}  // namespace comet
