#include "comm/collectives.h"

#include <algorithm>

#include "sim/network.h"
#include "util/check.h"

namespace comet {

std::vector<Tensor> AllToAllRows(
    const std::vector<Tensor>& inputs,
    const std::vector<std::vector<int64_t>>& counts) {
  const int world = static_cast<int>(inputs.size());
  COMET_CHECK_GT(world, 0);
  COMET_CHECK_EQ(counts.size(), inputs.size());
  const int64_t cols = inputs[0].cols();
  for (const auto& t : inputs) {
    COMET_CHECK_EQ(t.cols(), cols);
  }

  // Validate row layout and compute receive counts.
  std::vector<int64_t> recv_rows(static_cast<size_t>(world), 0);
  for (int i = 0; i < world; ++i) {
    COMET_CHECK_EQ(counts[static_cast<size_t>(i)].size(),
                   static_cast<size_t>(world));
    int64_t total = 0;
    for (int j = 0; j < world; ++j) {
      const int64_t c = counts[static_cast<size_t>(i)][static_cast<size_t>(j)];
      COMET_CHECK_GE(c, 0);
      total += c;
      recv_rows[static_cast<size_t>(j)] += c;
    }
    COMET_CHECK_EQ(total, inputs[static_cast<size_t>(i)].rows())
        << "send counts of rank " << i << " do not cover its buffer";
  }

  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(world));
  for (int j = 0; j < world; ++j) {
    outputs.emplace_back(Shape{recv_rows[static_cast<size_t>(j)], cols},
                         inputs[0].dtype());
  }

  std::vector<int64_t> write_pos(static_cast<size_t>(world), 0);
  for (int i = 0; i < world; ++i) {
    int64_t read_pos = 0;
    for (int j = 0; j < world; ++j) {
      const int64_t c = counts[static_cast<size_t>(i)][static_cast<size_t>(j)];
      for (int64_t r = 0; r < c; ++r) {
        outputs[static_cast<size_t>(j)].SetRow(
            write_pos[static_cast<size_t>(j)] + r,
            inputs[static_cast<size_t>(i)].row(read_pos + r));
      }
      write_pos[static_cast<size_t>(j)] += c;
      read_pos += c;
    }
  }
  return outputs;
}

std::vector<Tensor> AllGatherRows(const std::vector<Tensor>& inputs) {
  const int world = static_cast<int>(inputs.size());
  COMET_CHECK_GT(world, 0);
  const int64_t cols = inputs[0].cols();
  int64_t total_rows = 0;
  for (const auto& t : inputs) {
    COMET_CHECK_EQ(t.cols(), cols);
    total_rows += t.rows();
  }
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(world));
  for (int i = 0; i < world; ++i) {
    Tensor out(Shape{total_rows, cols}, inputs[0].dtype());
    int64_t pos = 0;
    for (const auto& t : inputs) {
      for (int64_t r = 0; r < t.rows(); ++r) {
        out.SetRow(pos++, t.row(r));
      }
    }
    outputs.push_back(std::move(out));
  }
  return outputs;
}

std::vector<Tensor> ReduceScatterRows(const std::vector<Tensor>& inputs,
                                      int64_t rows_per_shard) {
  const int world = static_cast<int>(inputs.size());
  COMET_CHECK_GT(world, 0);
  COMET_CHECK_GT(rows_per_shard, 0);
  const int64_t cols = inputs[0].cols();
  for (const auto& t : inputs) {
    COMET_CHECK_EQ(t.cols(), cols);
    COMET_CHECK_EQ(t.rows(), rows_per_shard * world);
  }
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(world));
  for (int i = 0; i < world; ++i) {
    Tensor out(Shape{rows_per_shard, cols}, inputs[0].dtype());
    for (int j = 0; j < world; ++j) {
      for (int64_t r = 0; r < rows_per_shard; ++r) {
        out.AccumulateRow(
            r,
            inputs[static_cast<size_t>(j)].row(
                static_cast<int64_t>(i) * rows_per_shard + r),
            1.0f);
      }
    }
    outputs.push_back(std::move(out));
  }
  return outputs;
}

namespace {

// Multi-node all-to-all bound (alpha-beta per tier): every rank's traffic is
// constrained per tier (intra bytes through the NVLink port, inter bytes
// through the IB port), and each distinct remote PEER costs one message
// setup (the alpha term that makes direct all-to-all degrade with world
// size -- the problem 2D-hierarchical algorithms attack).
double MultiNodeAllToAllCostUs(const ClusterSpec& cluster,
                               const std::vector<std::vector<double>>& bytes) {
  const int world = cluster.world_size;
  double worst_us = 0.0;
  bool any_inter = false;
  bool any_intra = false;
  for (int r = 0; r < world; ++r) {
    double send_intra = 0.0, send_inter = 0.0;
    double recv_intra = 0.0, recv_inter = 0.0;
    int peers_intra = 0, peers_inter = 0;
    for (int p = 0; p < world; ++p) {
      if (p == r) {
        continue;
      }
      const double out = bytes[static_cast<size_t>(r)][static_cast<size_t>(p)];
      const double in = bytes[static_cast<size_t>(p)][static_cast<size_t>(r)];
      if (cluster.SameNode(r, p)) {
        send_intra += out;
        recv_intra += in;
        peers_intra += out > 0.0 ? 1 : 0;
      } else {
        send_inter += out;
        recv_inter += in;
        peers_inter += out > 0.0 ? 1 : 0;
      }
    }
    any_intra |= send_intra > 0.0 || recv_intra > 0.0;
    any_inter |= send_inter > 0.0 || recv_inter > 0.0;
    const double intra_bw = cluster.link.collective_bandwidth_bytes_per_us;
    const double inter_bw =
        cluster.inter_link.collective_bandwidth_bytes_per_us;
    const double intra_us =
        std::max(send_intra, recv_intra) / intra_bw +
        static_cast<double>(peers_intra) * cluster.link.latency_us;
    const double inter_us =
        std::max(send_inter, recv_inter) / inter_bw +
        static_cast<double>(peers_inter) * cluster.inter_link.latency_us;
    worst_us = std::max({worst_us, intra_us, inter_us});
  }
  if (!any_intra && !any_inter) {
    return 0.0;
  }
  const double sync = any_inter ? cluster.inter_link.collective_sync_us
                                : cluster.link.collective_sync_us;
  return worst_us + sync;
}

}  // namespace

double AllToAllCostUs(const ClusterSpec& cluster,
                      const std::vector<std::vector<double>>& bytes) {
  const int world = cluster.world_size;
  COMET_CHECK_EQ(bytes.size(), static_cast<size_t>(world));
  for (const auto& row : bytes) {
    COMET_CHECK_EQ(row.size(), static_cast<size_t>(world));
  }
  if (cluster.IsMultiNode()) {
    return MultiNodeAllToAllCostUs(cluster, bytes);
  }
  std::vector<Flow> flows;
  for (int i = 0; i < world; ++i) {
    for (int j = 0; j < world; ++j) {
      if (i == j) {
        continue;
      }
      const double b = bytes[static_cast<size_t>(i)][static_cast<size_t>(j)];
      if (b > 0.0) {
        flows.push_back(Flow{i, j, b, 0.0});
      }
    }
  }
  if (flows.empty()) {
    return 0.0;
  }
  // Kernel-level NCCL all-to-all: effective per-port bandwidth plus a
  // stream/host synchronization term per call.
  FluidNetwork net(world, cluster.link.collective_bandwidth_bytes_per_us,
                   cluster.link.collective_bandwidth_bytes_per_us,
                   cluster.link.latency_us);
  double makespan = 0.0;
  for (const auto& c : net.Run(flows)) {
    makespan = std::max(makespan, c.end_us);
  }
  return makespan + cluster.link.collective_sync_us;
}

double HierarchicalAllToAllCostUs(
    const ClusterSpec& cluster, const std::vector<std::vector<double>>& bytes) {
  const int world = cluster.world_size;
  COMET_CHECK_EQ(bytes.size(), static_cast<size_t>(world));
  if (!cluster.IsMultiNode()) {
    return AllToAllCostUs(cluster, bytes);
  }
  const int per_node = cluster.GpusPerNode();
  const int nodes = cluster.NumNodes();

  // Phase 1 (intra): rank r stages its per-destination-NODE aggregates onto
  // the local rank that fronts that node (the standard 2D layout). The
  // copies are large and contiguous, so they run at the NVLink ring rate --
  // this is exactly where the hierarchical algorithm "better utilizes
  // intra-node bandwidth" (§6).
  // Phase 2 (inter): one contiguous message per (node, node) pair, striped
  // over the node's HCAs at the IB ring rate.
  // Phase 3 (intra): scatter inside the destination node, same bound as 1.
  double phase1 = 0.0;
  std::vector<std::vector<double>> node_bytes(
      static_cast<size_t>(nodes),
      std::vector<double>(static_cast<size_t>(nodes), 0.0));
  for (int i = 0; i < world; ++i) {
    double off_node = 0.0;
    for (int j = 0; j < world; ++j) {
      if (i == j) {
        continue;
      }
      const double b = bytes[static_cast<size_t>(i)][static_cast<size_t>(j)];
      node_bytes[static_cast<size_t>(cluster.NodeOfRank(i))]
                [static_cast<size_t>(cluster.NodeOfRank(j))] += b;
      if (!cluster.SameNode(i, j)) {
        off_node += b;
      }
    }
    phase1 = std::max(phase1,
                      off_node / cluster.link.ring_bandwidth_bytes_per_us);
  }

  double phase2 = 0.0;
  bool any_inter = false;
  for (int a = 0; a < nodes; ++a) {
    double send = 0.0, recv = 0.0;
    for (int b = 0; b < nodes; ++b) {
      if (a == b) {
        continue;
      }
      send += node_bytes[static_cast<size_t>(a)][static_cast<size_t>(b)];
      recv += node_bytes[static_cast<size_t>(b)][static_cast<size_t>(a)];
      any_inter |= send > 0.0 || recv > 0.0;
    }
    // The node's aggregate egress is striped over its per_node HCAs.
    const double node_bw = cluster.inter_link.ring_bandwidth_bytes_per_us *
                           static_cast<double>(per_node);
    phase2 = std::max({phase2, send / node_bw, recv / node_bw});
  }
  if (!any_inter) {
    return AllToAllCostUs(cluster, bytes);
  }

  // Alpha terms: (P-1) staging messages per intra phase, (N-1) inter-node
  // messages -- versus the direct algorithm's (W-P) inter messages per rank.
  const double latency =
      2.0 * static_cast<double>(per_node - 1) * cluster.link.latency_us +
      static_cast<double>(nodes - 1) * cluster.inter_link.latency_us;
  return 2.0 * phase1 + phase2 + latency +
         cluster.inter_link.collective_sync_us;
}

double InterNodeByteFraction(const ClusterSpec& cluster,
                             const std::vector<std::vector<double>>& bytes) {
  const int world = cluster.world_size;
  COMET_CHECK_EQ(bytes.size(), static_cast<size_t>(world));
  double inter = 0.0, total = 0.0;
  for (int i = 0; i < world; ++i) {
    for (int j = 0; j < world; ++j) {
      if (i == j) {
        continue;
      }
      const double b = bytes[static_cast<size_t>(i)][static_cast<size_t>(j)];
      total += b;
      if (cluster.IsMultiNode() && !cluster.SameNode(i, j)) {
        inter += b;
      }
    }
  }
  return total > 0.0 ? inter / total : 0.0;
}

double UniformAllToAllCostUs(const ClusterSpec& cluster, double bytes_per_pair) {
  std::vector<std::vector<double>> bytes(
      static_cast<size_t>(cluster.world_size),
      std::vector<double>(static_cast<size_t>(cluster.world_size),
                          bytes_per_pair));
  return AllToAllCostUs(cluster, bytes);
}

double RingAllGatherCostUs(const ClusterSpec& cluster, double bytes_per_rank) {
  const int w = cluster.world_size;
  if (w <= 1 || bytes_per_rank <= 0.0) {
    return 0.0;
  }
  // (W-1) ring steps, each moving bytes_per_rank per rank.
  return static_cast<double>(w - 1) *
             (bytes_per_rank / cluster.link.ring_bandwidth_bytes_per_us +
              cluster.link.latency_us) +
         cluster.link.collective_sync_us;
}

double RingReduceScatterCostUs(const ClusterSpec& cluster, double total_bytes) {
  const int w = cluster.world_size;
  if (w <= 1 || total_bytes <= 0.0) {
    return 0.0;
  }
  const double shard = total_bytes / static_cast<double>(w);
  return static_cast<double>(w - 1) *
             (shard / cluster.link.ring_bandwidth_bytes_per_us +
              cluster.link.latency_us) +
         cluster.link.collective_sync_us;
}

}  // namespace comet
