// NVSHMEM communication-buffer sizing (paper §5.5 / Table 3).
//
// COMET allocates one symmetric buffer per device sized M x N at the training
// dtype; the buffer is shared across layers and experts, so its footprint is
// independent of L, E and topk. For BF16/FP16 this is 2*M*N bytes.
#pragma once

#include <cstdint>

#include "tensor/dtype.h"

namespace comet {

struct CommBufferPlan {
  int64_t tokens = 0;       // M
  int64_t embedding = 0;    // N
  DType dtype = DType::kBF16;

  double Bytes() const;
  double MiBs() const;  // Table 3 reports MB (mebibytes)
};

// Plans the symmetric buffer for a model with embedding size `embedding` and
// max sequence length (tokens per iteration) `tokens`.
CommBufferPlan PlanCommBuffer(int64_t tokens, int64_t embedding,
                              DType dtype = DType::kBF16);

}  // namespace comet
