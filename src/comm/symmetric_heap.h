// NVSHMEM-style symmetric heap emulation.
//
// NVSHMEM gives every rank a window into a global address space: a buffer
// allocated "symmetrically" exists at the same logical offset on every PE,
// and GPU-initiated put/get moves data between PEs at any granularity. The
// paper's fused kernels use exactly this to let each computation tile read or
// write only the tokens it needs (§2.2.1, §4 "NVSHMEM as communication
// library").
//
// This emulation keeps one real buffer per rank per allocation and exposes
// row-granular (token-granular) put/get. Every remote access is accounted in
// a per-(src,dst) traffic matrix, which the tests use to verify that COMET's
// rescheduled execution moves exactly the same bytes as the reference, and
// the timing plane uses to price communication.
//
// Dtype: an allocation made at kBF16/kF16 carries genuine 2-byte rows. Row
// puts/gets encode every element into a real 16-bit word (RNE) and decode on
// the far side, so values that are not representable at the buffer dtype are
// rounded by transport -- the paper's "allocated memory size is 2MN" buffers
// cannot carry f32 payloads, and neither can these. Traffic is accounted at
// the dtype width, so the same RoutePlan moves exactly half the bytes at a
// 2-byte dtype. Local() exposes the raw f32 master (the emulation's storage)
// for bulk initialization; callers own its representability (the executors
// only assign pre-quantized tensors).
//
// Thread safety: the heap is built for genuinely concurrent ranks (see
// runtime/rank_group.h). Allocation is NOT thread-safe -- allocate every
// buffer before launching the ranks. After that:
//  * row puts/gets to DISTINCT rows may run concurrently (the executors'
//    (token, slot, lane) partitions guarantee disjointness); same-row
//    conflicts are the caller's bug, exactly as on real symmetric memory;
//  * signal words are atomics: PutRowWithSignal release-publishes the
//    payload before bumping the word, and WaitUntilSignalGe/SignalValue
//    acquire-load it, so a consumer that observed the signal also observes
//    the row bytes;
//  * traffic accounting uses per-(src,dst) atomic byte counters -- there is
//    no mutex anywhere on the data path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace comet {

using SymmetricBufferId = int64_t;

// Pre-sizes the CALLING thread's transport wire scratch (the read-modify-
// write buffer AccumulateRow moves payloads through) for rows of up to
// `max_cols` elements. Thread-local; the serving plane warms every worker
// during PrepareServing so steady-state row ops never allocate.
void WarmHeapWireScratch(int64_t max_cols);

// Transport-integrity options, off by default (training and bench paths
// trust the in-process heap; the serving plane turns verification on).
//
// With checksum_rows, every put/accumulate records an FNV-1a checksum of the
// row it stored (post-wire-quantization bits), and every get/copy/accumulate
// re-hashes the stored row and compares before handing the data out. A
// mismatch throws CheckError naming the buffer, rank and row -- a corrupted
// payload is always detected at its first consumer, never silently served.
// Rows that were never put (bulk Local() initialization) carry no checksum
// and are not verified; a non-const Local() invalidates that rank's
// checksums, so bulk rewrites do not trip stale sums.
//
// corrupt_rate > 0 arms the deterministic link-corruption injector: each
// PutRow flips one bit of the STORED payload (after the checksum is
// recorded, so detection is guaranteed) with probability corrupt_rate. The
// decision and the flipped bit are a pure hash of (corrupt_seed, buffer,
// rank, row, per-row put count) -- independent of thread interleaving, so a
// corrupted run is exactly reproducible at any thread count.
struct HeapIntegrityOptions {
  bool checksum_rows = false;
  double corrupt_rate = 0.0;
  uint64_t corrupt_seed = 0;
};

class SymmetricHeap {
 public:
  explicit SymmetricHeap(int world_size, HeapIntegrityOptions integrity = {});

  int world_size() const { return world_size_; }
  const HeapIntegrityOptions& integrity() const { return integrity_; }
  // Lifetime counters: rows the injector corrupted / reads that verified a
  // checksum (relaxed atomics; exact totals, arbitrary order).
  int64_t rows_corrupted() const {
    return static_cast<int64_t>(rows_corrupted_.load(std::memory_order_relaxed));
  }
  int64_t rows_verified() const {
    return static_cast<int64_t>(rows_verified_.load(std::memory_order_relaxed));
  }

  // Allocates a buffer of `shape` on every rank (zero-filled). The name is
  // for diagnostics only.
  SymmetricBufferId Allocate(const std::string& name, const Shape& shape,
                             DType dtype = DType::kF32);

  // Local view of rank `rank`'s copy.
  Tensor& Local(SymmetricBufferId buf, int rank);
  const Tensor& Local(SymmetricBufferId buf, int rank) const;

  // Fine-grained put: rank `src_rank` writes `data` into row `dst_row` of
  // `dst_rank`'s copy of `buf`. Local writes (src == dst) are not counted as
  // fabric traffic. CHECK-fails (naming the buffer) on an out-of-range rank
  // or row, or when `buf` is a signal-only allocation.
  void PutRow(SymmetricBufferId buf, int src_rank, int dst_rank,
              int64_t dst_row, std::span<const float> data);

  // Fine-grained get: rank `reader_rank` reads row `row` of `owner_rank`'s
  // copy. Remote reads are accounted as owner->reader traffic.
  std::vector<float> GetRow(SymmetricBufferId buf, int reader_rank,
                            int owner_rank, int64_t row);

  // Allocation-free GetRow: copies the row into `dst` (sizes must match).
  // The row-gather hot paths use this from pool workers; traffic accounting
  // is internally synchronized, and concurrent accesses to DISTINCT rows are
  // safe (the tile/row partitions of the executors guarantee disjointness).
  void CopyRow(SymmetricBufferId buf, int reader_rank, int owner_rank,
               int64_t row, std::span<float> dst);

  // Atomic-add style accumulation into a remote row (used by combine paths).
  void AccumulateRow(SymmetricBufferId buf, int src_rank, int dst_rank,
                     int64_t dst_row, std::span<const float> data,
                     float weight);

  // ---- signaling (NVSHMEM put-with-signal / wait-until) ---------------------
  //
  // Real COMET gates each GEMM tile on the arrival of its tokens via signal
  // words updated by the producer's puts. The emulation keeps one atomic
  // uint64 signal array per rank per allocation; producers bump a signal
  // after delivering a row, consumers wait for the expected count before
  // touching the data. Sequential schedules assert with WaitSignalGe (an
  // unmet wait means the schedule consumed data before its producer ran);
  // concurrent ranks block with WaitUntilSignalGe.

  // Allocates `count` zero-initialized signal words on every rank.
  SymmetricBufferId AllocateSignals(const std::string& name, int64_t count);

  // PutRow + atomically add 1 to `sig[sig_index]` on the destination rank
  // (delivery-ordered, like NVSHMEM's put-with-signal: the payload is
  // release-published before the signal bump).
  void PutRowWithSignal(SymmetricBufferId buf, int src_rank, int dst_rank,
                        int64_t dst_row, std::span<const float> data,
                        SymmetricBufferId sig, int64_t sig_index);

  // Current value of a local signal word (acquire load).
  uint64_t SignalValue(SymmetricBufferId sig, int rank,
                       int64_t sig_index) const;

  // NVSHMEM wait_until(GE), non-blocking assert form: throws CheckError if
  // the signal has not reached `expected`. Used by sequential schedules,
  // where an unmet wait can only mean the schedule consumed data before its
  // producer ran -- a real bug.
  void WaitSignalGe(SymmetricBufferId sig, int rank, int64_t sig_index,
                    uint64_t expected) const;

  // NVSHMEM wait_until(GE), blocking form: spins (with yields) until the
  // signal reaches `expected`. Used by concurrent rank groups, where the
  // producer is a live peer task. Throws CheckError naming the buffer if
  // `timeout_ms` elapses first, so a dead producer surfaces as a test
  // failure instead of a hang. The executors thread
  // CometOptions::signal_wait_timeout_ms through here; the serving plane
  // lowers it so a wedged rank fails a load test fast.
  void WaitUntilSignalGe(SymmetricBufferId sig, int rank, int64_t sig_index,
                         uint64_t expected, int64_t timeout_ms = 60000) const;

  // ---- in-place reuse (the serving plane's persistent heap) -----------------
  //
  // A continuous batcher runs thousands of iterations against the same few
  // buffer shapes; constructing a fresh heap per iteration is pure warm-up
  // cost. The executor instead keeps one heap alive and, before each batch,
  // restores exactly the observable state a freshly constructed heap would
  // have: SetIntegrity re-arms the integrity knobs and drops every checksum
  // and per-row put count (so the deterministic corruption injector replays
  // the stream a fresh heap would produce), ResizeRows re-formats a data
  // buffer to the batch's row count (contents unspecified, like a fresh
  // zero-filled buffer whose rows are always fully written before any read),
  // ResetSignals zeroes every signal word, and ResetTraffic clears the
  // matrix. All four are allocation-free once capacities reach the run's
  // high-water mark (allocate buffers at their bounds up front). NOT
  // thread-safe -- call between iterations, never while ranks run.

  // Re-formats rank-2 data allocation `buf` to `rows` rows on every rank,
  // keeping columns and dtype. Checksums and put counts of the buffer reset.
  void ResizeRows(SymmetricBufferId buf, int64_t rows);
  // Zeroes every signal word of signal allocation `sig` on every rank.
  void ResetSignals(SymmetricBufferId sig);
  // Swaps the integrity options in place and resets all per-row integrity
  // state (checksums, valid flags, put counts) across every allocation.
  // First enable of checksum_rows materializes the per-row arrays (allocates
  // once); after that the reset reuses them.
  void SetIntegrity(const HeapIntegrityOptions& integrity);

  // Bytes moved src -> dst over the fabric since the last reset. Local
  // accesses are excluded.
  double Traffic(int src_rank, int dst_rank) const;
  double TotalTraffic() const;
  void ResetTraffic();

  // Total bytes currently allocated per rank (logical dtype accounting).
  double AllocatedBytesPerRank() const;

  size_t num_buffers() const { return buffers_.size(); }
  const std::string& BufferName(SymmetricBufferId buf) const;

 private:
  struct Allocation {
    std::string name;
    std::vector<Tensor> per_rank;
    // Non-empty for signal allocations: world_size arrays of `count` words.
    std::vector<std::vector<std::atomic<uint64_t>>> signals;
    // Per-rank row checksums (only when HeapIntegrityOptions::checksum_rows;
    // empty otherwise -- zero overhead when integrity is off). Distinct rows
    // touch distinct elements, so the executors' row-disjointness contract
    // covers these exactly like the data rows; producer->consumer visibility
    // rides the same release/acquire signal protocol as the payload.
    struct RowIntegrity {
      std::vector<uint64_t> sum;
      std::vector<uint8_t> valid;
      std::vector<uint32_t> puts;  // per-row put count: corruption stream key
    };
    std::vector<RowIntegrity> integrity;
  };

  Allocation& Get(SymmetricBufferId buf);
  const Allocation& Get(SymmetricBufferId buf) const;
  // Bounds-checked access to rank `rank`'s copy of a data allocation; every
  // failure message names the buffer and the offending index. Takes the
  // resolved Allocation so each row op pays one buffer-table lookup.
  Tensor& DataLocal(const Allocation& alloc, int rank, const char* op) const;
  const std::atomic<uint64_t>& SignalWord(SymmetricBufferId sig, int rank,
                                          int64_t sig_index,
                                          const char* op) const;
  void CheckRank(const Allocation& alloc, int rank, const char* op,
                 const char* role) const;
  void AccountTraffic(int src, int dst, double bytes);
  // Integrity hooks (all no-ops when checksum_rows is off). Record hashes
  // the stored row and marks it valid; Verify re-hashes and CHECK-fails on
  // mismatch; MaybeCorrupt applies the deterministic injector.
  void RecordRow(const Allocation& alloc, int rank, int64_t row) const;
  void VerifyRow(const Allocation& alloc, int rank, int64_t row,
                 const char* op) const;
  void MaybeCorrupt(SymmetricBufferId buf, const Allocation& alloc, int rank,
                    int64_t row) const;
  void InvalidateRank(const Allocation& alloc, int rank) const;

  int world_size_;
  HeapIntegrityOptions integrity_;
  mutable std::atomic<uint64_t> rows_corrupted_{0};
  mutable std::atomic<uint64_t> rows_verified_{0};
  std::vector<Allocation> buffers_;
  // world x world, row-major. Byte counts are integers, so relaxed atomic
  // adds make the totals independent of the arrival order a concurrent run
  // produces -- no mutex on the hot path.
  std::vector<std::atomic<uint64_t>> traffic_;
};

}  // namespace comet
