// Functional collectives over per-rank tensors, plus their cost models.
//
// The functional variants operate on std::vector<Tensor> (index = rank) and
// are used by the reference MoE layer and by the baselines' functional
// paths. The cost models price the same collectives on a ClusterSpec; the
// all-to-all cost uses the fluid network model (per-port capacities), ring
// collectives use the standard (W-1)/W bandwidth term.
#pragma once

#include <vector>

#include "hw/gpu_spec.h"
#include "tensor/tensor.h"

namespace comet {

// ---- functional -----------------------------------------------------------

// All-to-all of rows. inputs[i] is rank i's send buffer whose rows are laid
// out as W consecutive groups: counts[i][j] rows destined to rank j.
// Returns outputs[j]: concatenation over source ranks i (in rank order) of
// the rows i sent to j. All inputs must share the column count.
std::vector<Tensor> AllToAllRows(
    const std::vector<Tensor>& inputs,
    const std::vector<std::vector<int64_t>>& counts);

// All-gather of rows: outputs[i] = concat(inputs[0], ..., inputs[W-1]).
std::vector<Tensor> AllGatherRows(const std::vector<Tensor>& inputs);

// Reduce-scatter over rows: inputs[i] has W*S rows; outputs[i] = sum over
// ranks j of rows [i*S, (i+1)*S) of inputs[j].
std::vector<Tensor> ReduceScatterRows(const std::vector<Tensor>& inputs,
                                      int64_t rows_per_shard);

// ---- cost models ----------------------------------------------------------

// Completion time of an all-to-all with the given per-pair byte matrix
// (bytes[i][j] from rank i to rank j; diagonal ignored -- local movement is
// charged to compute by the callers, matching the paper's Figure 11
// accounting). On a multi-node cluster, flows crossing nodes are bounded by
// the inter-node fabric as well as the GPU port.
double AllToAllCostUs(const ClusterSpec& cluster,
                      const std::vector<std::vector<double>>& bytes);

// 2D-hierarchical all-to-all (Tutel / HetuMoE style, §6 "communication
// optimization"): phase 1 aggregates per-destination-node data inside each
// node, phase 2 exchanges one large contiguous message per node pair over
// the inter-node fabric, phase 3 scatters inside the destination node. Far
// fewer, larger inter-node messages than the direct algorithm. Falls back to
// AllToAllCostUs on a single node.
double HierarchicalAllToAllCostUs(const ClusterSpec& cluster,
                                  const std::vector<std::vector<double>>& bytes);

// Fraction of off-diagonal all-to-all bytes that cross node boundaries
// (0 on a single node).
double InterNodeByteFraction(const ClusterSpec& cluster,
                             const std::vector<std::vector<double>>& bytes);

// Uniform all-to-all: every rank sends `bytes_per_pair` to every other rank.
double UniformAllToAllCostUs(const ClusterSpec& cluster, double bytes_per_pair);

// Ring all-gather of `bytes_per_rank` contributed by each rank.
double RingAllGatherCostUs(const ClusterSpec& cluster, double bytes_per_rank);

// Ring reduce-scatter of a `total_bytes` buffer resident on every rank.
double RingReduceScatterCostUs(const ClusterSpec& cluster, double total_bytes);

}  // namespace comet
