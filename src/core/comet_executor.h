// The COMET MoE-layer executor: fine-grained communication-computation
// overlap via shared-tensor decomposition, rescheduling, thread-block
// specialization and adaptive workload assignment.
//
// Two planes share one schedule:
//  * functional -- executes the REAL math tile-by-tile in the rescheduled
//    order, moving tokens through the NVSHMEM-style symmetric heap exactly
//    as the fused kernels would. Verified bit-exact against the sharded
//    reference layer (rescheduling must never change results).
//  * timing -- prices the same schedule on the cluster model through the
//    fused-kernel simulator.
//
// Option toggles expose the paper's ablations: rescheduling off (canonical
// tile order), vertical fusion instead of thread-block specialization, and
// fixed instead of adaptive division points.
#pragma once

#include <memory>
#include <vector>

#include "core/adaptive.h"
#include "exec/execution.h"
#include "tensor/dtype.h"
#include "util/metadata_store.h"

namespace comet {

struct CometOptions {
  bool reschedule = true;
  bool specialized = true;  // false => vertical fusion (§3.2.1 strawman)
  bool adaptive = true;     // false => fixed_comm_blocks division point
  int fixed_comm_blocks = 16;
  int64_t tile_m = 128;
  int64_t tile_n = 128;
  // Storage/compute dtype of the functional plane: symmetric-heap buffers
  // and GEMM/activation intermediates live at this dtype (f32 accumulate,
  // RNE round on store -- the tensor-core contract; see tensor/dtype.h).
  // Functional runs require the workload to be materialized at the same
  // dtype (WorkloadOptions::dtype). Rounding points are pure functions of
  // coordinates, so the thread/rank-count bit-exactness guarantees hold at
  // every dtype. The timing plane is unaffected (it already prices 2-byte
  // elements, per the paper).
  DType compute_dtype = DType::kF32;
  // Worker threads for the parallel functional/timing plane: 0 = the global
  // pool default (COMET_THREADS env var, else hardware concurrency), 1 = the
  // old serial behavior. Tiles partition every output disjointly, so the
  // thread count never changes results (see util/thread_pool.h).
  int num_threads = 0;
  // How long a concurrent consumer blocks in SymmetricHeap::WaitUntilSignalGe
  // before failing with CheckError naming the buffer. The serving plane and
  // load tests lower this so a wedged rank surfaces in seconds instead of
  // hanging a minute; must be > 0.
  int64_t signal_wait_timeout_ms = 60'000;
  // Transport integrity (see comm/symmetric_heap.h HeapIntegrityOptions).
  // verify_transport checksums every symmetric-heap row put and verifies at
  // every get -- corrupted payloads throw CheckError at their first consumer
  // instead of being served. Off by default here (bench/training paths trust
  // the in-process heap); the serving plane turns it ON by default.
  // corrupt_rate > 0 arms the deterministic link-corruption injector (fault
  // testing): each put flips one stored bit with this probability, decided by
  // a pure hash of (corrupt_seed, buffer, rank, row, put count).
  bool verify_transport = false;
  double corrupt_rate = 0.0;
  uint64_t corrupt_seed = 0;
  // Hot-expert replica slots the serving fast path preallocates: weight
  // slabs on the symmetric heap plus per-rank slice workspaces, sized at
  // PrepareServing so PromoteReplica/RetireReplica never allocate. 0 (the
  // default) compiles the replica path out of the data plane entirely --
  // plans carry no replica slices and behavior is byte-identical to builds
  // without it.
  int max_replicated_experts = 0;
  // Optional cross-run profile cache (paper: metadata written at deployment
  // time). Borrowed pointer; may be null.
  MetadataStore* profile_cache = nullptr;
  // Override the executor display name (for ablation benches).
  std::string name_override;
};

class CometExecutor : public MoeLayerExecutor {
 public:
  explicit CometExecutor(CometOptions options = {});
  ~CometExecutor() override;

  std::string name() const override;
  bool Supports(const ParallelConfig& parallel) const override;
  LayerExecution Run(const MoeWorkload& workload, const ClusterSpec& cluster,
                     ExecMode mode) override;

  // Batch-reuse entry point for the serving plane: identical semantics (and
  // bit-identical results) to Run, but adaptive division-point profiles are
  // cached in an executor-owned MetadataStore keyed by
  // AdaptiveAssigner::ProfileKey (cluster | model | M | TP | EP | stage).
  // A continuous batcher re-runs the same few batch shapes thousands of
  // times; with Run each iteration would re-sweep the candidate grid -- the
  // host-side overhead the paper's §5.3 decode regime is dominated by --
  // while RunBatch profiles each shape once. When options.profile_cache is
  // set it is used instead (shared across executors / persisted runs). Not
  // thread-safe: one serving loop per executor.
  LayerExecution RunBatch(const MoeWorkload& workload,
                          const ClusterSpec& cluster, ExecMode mode);

  // ---- zero-allocation serving fast path ------------------------------------
  //
  // A serving loop re-executes the same layer shape thousands of times. The
  // pair below turns that steady state malloc-free: PrepareServing allocates
  // every workspace the iteration needs at its run-level bound (symmetric
  // heap buffers and signals, per-rank schedule/simulation workspaces,
  // per-expert tensor slabs, parked rank threads) and warms the thread-local
  // scratch of every pool worker and rank thread; RunBatchInto then executes
  // one batch into a caller-persistent LayerExecution, reusing all of it.
  // Results are bit-identical to RunBatch for the same inputs.

  // Preallocates serving workspaces for batches up to `max_placement`'s
  // token count (its model/parallel shape must match the batches served).
  // Call once before the loop; allocates, so keep it outside any
  // allocation-counting window. Idempotent.
  void PrepareServing(const Placement& max_placement,
                      const ClusterSpec& cluster);

  // RunBatch semantics (including the adaptive-profile cache) built into
  // `*out` in place. After PrepareServing and one warm-up call per distinct
  // batch token count, performs zero heap allocations per call. In
  // kTimedOnly mode `out->outputs` is left untouched.
  void RunBatchInto(const MoeWorkload& workload, const ClusterSpec& cluster,
                    ExecMode mode, LayerExecution* out);

  // ---- hot-expert replication (online adaptation mechanism) -----------------
  //
  // The serving plane's HotExpertTracker decides WHAT to replicate; these
  // apply the decision. Replica weights live in per-slot symmetric-heap
  // slabs ("replica-w0-slot{s}" / "replica-w1-slot{s}") preallocated by
  // PrepareServing when options.max_replicated_experts > 0; a promote
  // bit-copies the expert's lane shards from its home ranks into the target
  // group's ranks through PutRow (quantization on the already-quantized
  // weights is the identity, so replica math is bit-identical to home math).
  // RunBatchInto then feeds replica plan slices (RoutePlan slice indices >=
  // ExpertsPerGroup()) from the slabs. Promote/retire are change-iteration
  // operations: allocation-free after PrepareServing, but call them outside
  // any allocation-counting window anyway (the plan Rebuild that follows a
  // layout change may touch cold capacity).

  // Copies expert `expert`'s weights into replica slot `slot` on EP group
  // `ep_group` (must not be the expert's home group; slot must be free).
  void PromoteReplica(int slot, int64_t expert, int ep_group,
                      const Placement& placement,
                      const ShardedExpertWeights& weights);
  // Frees replica slot `slot`. Slab bits stay (inactive slices have no rows,
  // so they are never read) until the next promote overwrites them.
  void RetireReplica(int slot);
  // Drops every cached division-point profile (the per-M serving memo and
  // the executor-owned RunBatch store). The adaptation loop calls this when
  // the replica layout changes: ProfileKey does not encode replicas, so
  // cached division points no longer describe the plan being priced. The
  // next iteration per batch size re-profiles against the current layout.
  void InvalidateBatchProfiles();

  // Re-arms the transport-integrity knobs between iterations (the serving
  // plane uses this to inject a one-iteration corruption fault without
  // rebuilding the executor). Takes effect at the next Run/RunBatch, which
  // constructs its symmetric heap from these options.
  void SetTransportIntegrity(bool verify, double corrupt_rate,
                             uint64_t corrupt_seed) {
    options_.verify_transport = verify;
    options_.corrupt_rate = corrupt_rate;
    options_.corrupt_seed = corrupt_seed;
  }

  // Division points chosen for the last Run (diagnostics / tests).
  int last_layer0_comm_blocks() const { return last_nc0_; }
  int last_layer1_comm_blocks() const { return last_nc1_; }
  // Entries in the executor-owned RunBatch profile cache (diagnostics).
  size_t batch_profile_entries() const { return batch_profile_cache_.size(); }

  // Serving profile-memo traffic: how often RunBatch found its division
  // points already tuned for the batch's token count vs. ran the candidate
  // sweep. Counted only when the serving memo is consulted (RunBatch), so
  // plain Run calls never move these.
  uint64_t profile_memo_hits() const { return profile_memo_hits_; }
  uint64_t profile_memo_misses() const { return profile_memo_misses_; }

  // Cumulative transport stats of the serving-mode symmetric heap (zeros
  // before PrepareServing). A plain struct so the telemetry plane can read
  // heap traffic without depending on comm/.
  struct ServingHeapStats {
    double total_traffic_bytes = 0.0;
    uint64_t rows_verified = 0;
    uint64_t rows_corrupted = 0;
  };
  ServingHeapStats serving_heap_stats() const;

 private:
  // Cached division points for one batch token count (serving fast path;
  // bit-identical to re-consulting the MetadataStore, minus the string key).
  struct NcMemoEntry {
    int64_t total_tokens = 0;
    int nc0 = 0;
    int nc1 = 0;
  };
  struct TimedScratch;       // per-rank simulation workspaces (.cc)
  struct FunctionalScratch;  // persistent heap + per-rank tensor slabs (.cc)
  struct ServingState;       // everything PrepareServing owns (.cc)

  LayerExecution RunWithCache(const MoeWorkload& workload,
                              const ClusterSpec& cluster, ExecMode mode,
                              MetadataStore* cache);
  void RunTimedInto(const MoeWorkload& workload, const ClusterSpec& cluster,
                    LayerExecution& out, MetadataStore* cache,
                    TimedScratch& scratch, std::vector<NcMemoEntry>* nc_memo);
  void RunFunctionalInto(const MoeWorkload& workload, LayerExecution& out,
                         FunctionalScratch& scratch);
  void EnsureFunctionalCapacity(FunctionalScratch& scratch,
                                const Placement& placement);

  CometOptions options_;
  AdaptiveAssigner assigner_;
  MetadataStore batch_profile_cache_;
  int last_nc0_ = 0;
  int last_nc1_ = 0;
  uint64_t profile_memo_hits_ = 0;
  uint64_t profile_memo_misses_ = 0;
  std::unique_ptr<ServingState> serving_;
};

}  // namespace comet
