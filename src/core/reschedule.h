// Rescheduling of decomposed shared tensors (paper §3.1.2).
//
// Layer0 (communication -> GroupGEMM): the shared tensor is decomposed along
// M. Rows are sorted by source so that every expert's slice begins with the
// rows already resident on this rank's EP group ("sort tokens by source
// rank", Figure 5), and the GroupGEMM tile sequence is ordered by data
// readiness: tiles made only of local rows run first while remote tokens are
// still in flight.
//
// Layer1 (GroupGEMM -> top-k reduce + send): the shared tensor is decomposed
// along N. Tiles are reordered column-panel-major across ALL experts
// (Figure 6): once panel 0 of every expert is computed, the reduce/send of
// those T_N columns starts while panel 1 is still being computed. Without
// rescheduling the consumer waits for the last expert to finish.
#pragma once

#include <cstdint>
#include <vector>

#include "moe/route_plan.h"

namespace comet {

// One GroupGEMM output tile in a fused kernel schedule.
struct TileRef {
  int64_t expert_local = 0;  // local expert index on this rank
  int64_t row_begin = 0;     // rows within the expert's (permuted) slice
  int64_t row_end = 0;
  int64_t col_begin = 0;     // output columns
  int64_t col_end = 0;
  // Layer0: data-readiness class of the tile. 0 = all rows local; k > 0 =
  // the farthest source of any row is the k-th peer group in arrival order.
  int arrival_class = 0;
};

struct Layer0Schedule {
  // Per local expert: permutation of its ExpertSlice row indices (positions
  // into RankPlan rows). Identity when rescheduling is off.
  std::vector<std::vector<int64_t>> row_order;
  // Tiles in execution order.
  std::vector<TileRef> tiles;
  int64_t tile_m = 0;
  int64_t tile_n = 0;
};

struct Layer1Schedule {
  std::vector<TileRef> tiles;  // execution order
  int64_t num_col_panels = 0;
  int64_t tile_m = 0;
  int64_t tile_n = 0;
};

// Arrival class of a row on a rank of `ep_group`: 0 if the row's source is
// the group itself, else 1 + ring distance to the source group. This is the
// order in which the communication blocks drain remote data.
int RowArrivalClass(int source_group, int ep_group, int ep);

// Reusable scratch for the allocation-free schedule builders below. Owned
// per rank by the executor workspace; capacities grow to the run's
// high-water mark and are then reused.
struct ScheduleScratch {
  std::vector<int64_t> class_count;   // [ep] counting-sort histogram
  std::vector<int64_t> class_offset;  // [ep] counting-sort placement cursor
  std::vector<TileRef> tiles_tmp;     // stable tile reorder scratch
};

// Builds the layer0 schedule for a rank of `ep_group`. `out_cols` is the
// GEMM output width (K / TP). With `reschedule` off, rows stay canonical and
// tiles run expert-major / row-major (the order an unmodified GroupGEMM
// walks them).
Layer0Schedule BuildLayer0Schedule(const RankPlan& plan, int ep_group, int ep,
                                   int64_t out_cols, int64_t tile_m,
                                   int64_t tile_n, bool reschedule);

// Builds the layer1 schedule. `out_cols` is the embedding size N. With
// `reschedule` on, tiles run column-panel-major across experts; off,
// expert-major.
Layer1Schedule BuildLayer1Schedule(const RankPlan& plan, int64_t out_cols,
                                   int64_t tile_m, int64_t tile_n,
                                   bool reschedule);

// Allocation-free rebuild variants: identical output to the builders above,
// but reusing `out`'s and `scratch`'s storage (steady-state free once the
// capacities reach the run's high-water mark). The stable row/tile sorts are
// counting sorts over the ep arrival classes -- stable by construction, so
// the permutations match std::stable_sort exactly.
void BuildLayer0ScheduleInto(const RankPlan& plan, int ep_group, int ep,
                             int64_t out_cols, int64_t tile_m, int64_t tile_n,
                             bool reschedule, ScheduleScratch& scratch,
                             Layer0Schedule* out);
void BuildLayer1ScheduleInto(const RankPlan& plan, int64_t out_cols,
                             int64_t tile_m, int64_t tile_n, bool reschedule,
                             Layer1Schedule* out);

}  // namespace comet
