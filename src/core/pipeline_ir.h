// A small dataflow IR for shared-tensor dependency resolving.
//
// The paper's §3.1 analysis is stated for MoE's two pipelines; its
// conclusion proposes a "fine-grained pipelined programming model" that
// compilers could target. This module is that generalization: operators
// declare HOW they touch each axis of every tensor they read or write
// (parallel / reduce / gather / broadcast), and an analysis pass derives,
// for every producer-consumer pair that crosses the computation <->
// communication boundary, the legal decomposition dimensions and the
// reschedule strategy -- recovering exactly §3.1's conclusions (layer0
// decomposes along M with source-rank sorting, layer1 along N with
// column-panel-major execution) from first principles, and extending them to
// the backward pipelines and to arbitrary operator graphs.
//
// Rule (paper §3.1.1): a shared tensor may be decomposed along an axis iff
// EVERY consumer treats elements along that axis as independent (roles
// kParallel or kGather). The producer's role on the chosen axis decides how
// early sub-tensors become available and hence the reschedule hint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/shared_tensor.h"

namespace comet {

// How an operator relates the elements of one tensor axis.
enum class AxisRole {
  kParallel,   // elements independent (may run / arrive one by one)
  kReduce,     // reduction along the axis (all elements needed together)
  kGather,     // indexed access; independent but data-dependent placement
  kBroadcast,  // every output element reads the whole axis
};

std::string AxisRoleName(AxisRole role);

// Whether an op is compute (GEMM, activation, reduce) or communication
// (dispatch, all-to-all, reduce-scatter). Overlappable pipelines are the
// edges where this domain changes.
enum class OpDomain {
  kCompute,
  kCommunication,
};

// One operand: which tensor, and the op's role on each of its two axes.
struct TensorUse {
  std::string tensor;
  AxisRole rows = AxisRole::kParallel;
  AxisRole cols = AxisRole::kParallel;
};

struct PipelineOp {
  std::string name;
  OpDomain domain = OpDomain::kCompute;
  std::vector<TensorUse> reads;
  std::vector<TensorUse> writes;
};

struct TensorDecl {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 0;
};

// A validated operator graph. Tensors are written by at most one op
// (single-assignment); every use must reference a declared tensor.
class PipelineGraph {
 public:
  PipelineGraph& AddTensor(std::string name, int64_t rows, int64_t cols);
  PipelineGraph& AddOp(PipelineOp op);

  const std::vector<TensorDecl>& tensors() const { return tensors_; }
  const std::vector<PipelineOp>& ops() const { return ops_; }

  bool HasTensor(const std::string& name) const;
  const TensorDecl& Tensor(const std::string& name) const;

  // Producing op of `tensor` (nullptr for graph inputs).
  const PipelineOp* Producer(const std::string& tensor) const;
  // All ops reading `tensor`.
  std::vector<const PipelineOp*> Consumers(const std::string& tensor) const;

  // Structural invariants: all uses declared, single assignment, no op both
  // reads and writes one tensor. Throws CheckError on violation.
  void Validate() const;

 private:
  std::vector<TensorDecl> tensors_;
  std::vector<PipelineOp> ops_;
};

// How the decomposed sub-tensors should be (re)ordered for overlap.
enum class RescheduleHint {
  // Communication produces the tensor: order consumer tiles by data arrival
  // (locals first, then peers in ring order) -- §3.1.2 / Figure 5.
  kArrivalOrder,
  // Computation produces the tensor for a communicating consumer: emit
  // sub-tensors of the chosen axis across ALL groups before moving to the
  // next (column-panel-major) -- §3.1.2 / Figure 6.
  kPanelMajor,
  // Producer and consumer in the same domain: no cross-domain overlap to
  // orchestrate.
  kNone,
};

std::string RescheduleHintName(RescheduleHint hint);

// The analysis result for one shared tensor.
struct ResolvedPipeline {
  std::string shared_tensor;
  std::string producer;
  std::vector<std::string> consumers;
  // Axes along which EVERY consumer is independent, in {kM, kN} order.
  std::vector<DecomposeDim> legal;
  // The chosen axis (unset when `legal` is empty: no fine-grained overlap
  // possible for this operator pair).
  std::optional<DecomposeDim> chosen;
  RescheduleHint hint = RescheduleHint::kNone;
  // True if producer and consumers span compute and communication (the
  // pipelines worth overlapping).
  bool crosses_domains = false;
};

// Analyzes every produced-and-consumed tensor of the graph. Order follows
// tensor declaration order.
std::vector<ResolvedPipeline> ResolvePipelines(const PipelineGraph& graph);

// The subset of ResolvePipelines that crosses the compute/communication
// boundary -- MoE has exactly two per direction (forward and backward).
std::vector<ResolvedPipeline> ResolveOverlapPipelines(
    const PipelineGraph& graph);

// Human-readable multi-line summary of an analysis.
std::string DescribePipelines(const std::vector<ResolvedPipeline>& pipelines);

// ---- canonical MoE graphs ----------------------------------------------------

// Forward layer0: dispatch(comm) -> shared A -> GroupGEMM -> H -> act -> Z.
PipelineGraph MoeLayer0Graph(int64_t rows, int64_t embedding, int64_t hidden);
// Forward layer1: GroupGEMM -> shared Y -> topk-reduce + all-to-all(comm).
PipelineGraph MoeLayer1Graph(int64_t rows, int64_t embedding, int64_t hidden);
// Backward kernel A: grad dispatch(comm) -> shared dY -> dgrad1 GEMM -> dZ.
PipelineGraph MoeBackwardKernelAGraph(int64_t rows, int64_t embedding,
                                      int64_t hidden);
// Backward kernel B: dgrad0 GEMM -> shared dA -> undispatch(comm).
PipelineGraph MoeBackwardKernelBGraph(int64_t rows, int64_t embedding,
                                      int64_t hidden);

}  // namespace comet
