// Timing model of COMET's thread-block-specialized fused kernels (§3.2).
//
// One fused kernel owns all `total_blocks` SMs of the GPU: `comm_blocks`
// (nc) persistent blocks drive NVSHMEM token I/O, the remaining np blocks
// run the unmodified GEMM tile loop. Compute tiles are issued strictly in
// the (rescheduled) tile order; a block that picks up a tile whose rows have
// not arrived spins -- which is exactly why rescheduling matters. The
// communication side is a FIFO channel whose achieved bandwidth is
// min(nc * per_block_bw, link_bw).
//
// Layer0 models the communication->computation pipeline (token arrival gates
// tile start); layer1 models computation->communication (column-panel
// completion gates the top-k reduce + write/send). A `vertical_fusion` mode
// reproduces the strawman rejected in §3.2.1: token I/O embedded in the
// compute tiles themselves, paying both a pipeline-efficiency penalty and
// serialized remote latency.
#pragma once

#include "core/reschedule.h"
#include "exec/op_costs.h"
#include "moe/route_plan.h"
#include "sim/bandwidth_queue.h"
#include "sim/slot_pool.h"
#include "sim/timeline.h"

namespace comet {

struct FusedKernelConfig {
  int total_blocks = 0;  // number of SMs (one persistent block per SM)
  int comm_blocks = 0;   // nc; np = total - nc
  int64_t tile_m = 128;
  int64_t tile_n = 128;
  bool reschedule = true;
  bool vertical_fusion = false;  // ablation: no thread-block specialization
  // Compute-efficiency penalty factor for vertical fusion (token I/O breaks
  // the TMA/MMA pipeline of every block).
  double vertical_fusion_penalty = 0.15;
};

struct FusedKernelResult {
  double duration_us = 0.0;
  double compute_makespan_us = 0.0;
  double comm_makespan_us = 0.0;
  // Slot-time compute blocks spent waiting on data (pipeline bubbles).
  double stall_us = 0.0;
  double comm_bytes = 0.0;
  Timeline timeline;
};

// Reusable workspace for the Simulate*FusedInto variants below. Owned per
// rank by the executor; every buffer grows to its high-water mark during
// warm-up and is then reused allocation-free. Row chunks (the token-delivery
// unit: tiles of one expert sharing a row range) are addressed by the flat
// id `chunk_base[expert_local] + row_begin / tile_m` instead of a map.
struct FusedKernelWorkspace {
  ScheduleScratch schedule_scratch;
  Layer0Schedule layer0;
  Layer1Schedule layer1;
  std::vector<int64_t> chunk_base;    // per local expert: first flat chunk id
  std::vector<char> chunk_seen;       // first-use dedup flag per chunk
  std::vector<double> chunk_intra;    // remote bytes per chunk, intra-node
  std::vector<double> chunk_inter;    // remote bytes per chunk, inter-node
  std::vector<double> chunk_arrival;  // delivery time per chunk (0 = local)
  std::vector<int64_t> chunk_order;   // chunk ids in tile first-use order
  std::vector<SlotTask> tasks;
  std::vector<TransferJob> jobs;
  std::vector<int64_t> job_chunks;    // chunk id of each transfer job
  std::vector<TransferResult> transfers;
  std::vector<double> slot_heap;
  std::vector<double> panel_done;
  SlotSchedule slot_schedule;
};

// Simulates the layer0 fused kernel (dispatch + GroupGEMM) on `rank`.
FusedKernelResult SimulateLayer0Fused(const RoutePlan& plan, int rank,
                                      const OpCostModel& costs,
                                      const FusedKernelConfig& config);

// Simulates the layer1 fused kernel (GroupGEMM + top-k reduce +
// all-to-all / reduce-scatter) on `rank`.
FusedKernelResult SimulateLayer1Fused(const RoutePlan& plan, int rank,
                                      const OpCostModel& costs,
                                      const FusedKernelConfig& config);

// Allocation-free rebuild variants: identical numbers and timeline to the
// functions above, built into `result` (timeline cleared and refilled; all
// labels fit SSO) using `ws` for every intermediate.
void SimulateLayer0FusedInto(const RoutePlan& plan, int rank,
                             const OpCostModel& costs,
                             const FusedKernelConfig& config,
                             FusedKernelWorkspace& ws,
                             FusedKernelResult* result);
void SimulateLayer1FusedInto(const RoutePlan& plan, int rank,
                             const OpCostModel& costs,
                             const FusedKernelConfig& config,
                             FusedKernelWorkspace& ws,
                             FusedKernelResult* result);

}  // namespace comet
