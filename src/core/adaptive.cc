#include "core/adaptive.h"

#include <limits>
#include <sstream>

#include "util/check.h"

namespace comet {

AdaptiveAssigner::AdaptiveAssigner(int candidate_stride)
    : candidate_stride_(candidate_stride) {
  COMET_CHECK_GT(candidate_stride_, 0);
}

std::vector<int> AdaptiveAssigner::Candidates(int total_blocks) const {
  COMET_CHECK_GT(total_blocks, 1);
  std::vector<int> out;
  // Leave at least 8 blocks (or half, for tiny configs) to the GEMM side.
  const int max_nc = std::max(1, total_blocks - std::min(8, total_blocks / 2));
  for (int nc = candidate_stride_; nc <= max_nc; nc += candidate_stride_) {
    out.push_back(nc);
  }
  if (out.empty()) {
    out.push_back(1);
  }
  return out;
}

std::vector<DivisionPointSample> AdaptiveAssigner::Sweep(
    MoePipelineStage stage, const RoutePlan& plan, int rank,
    const OpCostModel& costs, const FusedKernelConfig& base) const {
  std::vector<DivisionPointSample> samples;
  for (int nc : Candidates(base.total_blocks)) {
    FusedKernelConfig config = base;
    config.comm_blocks = nc;
    const FusedKernelResult result =
        stage == MoePipelineStage::kLayer0
            ? SimulateLayer0Fused(plan, rank, costs, config)
            : SimulateLayer1Fused(plan, rank, costs, config);
    samples.push_back(DivisionPointSample{nc, result.duration_us});
  }
  return samples;
}

std::string AdaptiveAssigner::ProfileKey(const ClusterSpec& cluster,
                                         const Placement& placement,
                                         MoePipelineStage stage) {
  std::ostringstream os;
  os << cluster.name << "|" << placement.model().name << "|M"
     << placement.total_tokens() << "|" << placement.parallel().ToString()
     << "|" << (stage == MoePipelineStage::kLayer0 ? "layer0" : "layer1");
  return os.str();
}

int AdaptiveAssigner::SelectCommBlocks(MoePipelineStage stage,
                                       const RoutePlan& plan, int rank,
                                       const OpCostModel& costs,
                                       const FusedKernelConfig& base,
                                       MetadataStore* store) const {
  const std::string key =
      ProfileKey(costs.cluster(), plan.placement(), stage);
  if (store != nullptr) {
    if (auto cached = store->GetInt(key)) {
      return static_cast<int>(*cached);
    }
  }
  double best_us = std::numeric_limits<double>::infinity();
  int best_nc = 1;
  for (const auto& sample : Sweep(stage, plan, rank, costs, base)) {
    if (sample.duration_us < best_us) {
      best_us = sample.duration_us;
      best_nc = sample.comm_blocks;
    }
  }
  if (store != nullptr) {
    store->PutInt(key, best_nc);
  }
  return best_nc;
}

}  // namespace comet
