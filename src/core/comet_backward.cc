#include "core/comet_backward.h"

#include <algorithm>

#include "comm/collectives.h"
#include "comm/symmetric_heap.h"
#include "core/fused_kernel.h"
#include "core/pipeline_ir.h"
#include "core/reschedule.h"
#include "moe/group_gemm.h"
#include "runtime/rank_group.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {
namespace {

// Wgrad GroupGEMM time: per-expert shapes share output dims but differ in
// reduction depth (k = m_e rows), so GroupTimeUs' shared-k contract does not
// apply. Pool the tiles with their per-group tile times across the SMs; the
// wave-quantization error this ignores is second-order for wgrad (output is
// weight-shaped, tiles are few and uniform).
double WgradTimeUs(const OpCostModel& costs, int64_t out_rows,
                   int64_t out_cols, const std::vector<int64_t>& depths,
                   int sms) {
  const auto& gemm = costs.gemm();
  const int64_t tiles_per_expert =
      ((out_rows + gemm.tile_m() - 1) / gemm.tile_m()) *
      ((out_cols + gemm.tile_n() - 1) / gemm.tile_n());
  double slot_us = 0.0;
  for (const int64_t depth : depths) {
    if (depth > 0) {
      slot_us += static_cast<double>(tiles_per_expert) * gemm.TileTimeUs(depth);
    }
  }
  return slot_us / static_cast<double>(sms);
}

std::vector<int64_t> RowDepths(const RankPlan& plan) {
  std::vector<int64_t> depths;
  depths.reserve(plan.experts.size());
  for (const auto& slice : plan.experts) {
    depths.push_back(static_cast<int64_t>(slice.rows.size()));
  }
  return depths;
}

// Backward of the TP output reduce-scatter: each lane all-gathers the dout
// shards so every lane holds full dout rows. Zero when tp == 1.
double DoutAllGatherUs(const MoeWorkload& w, const OpCostModel& costs) {
  const int tp = w.placement.parallel().tp;
  if (tp <= 1) {
    return 0.0;
  }
  const double shard_bytes = static_cast<double>(w.placement.tokens_per_group()) *
                             static_cast<double>(w.model().embedding) *
                             costs.bytes_per_element() / tp;
  return RingAllGatherCostUs(costs.cluster(), shard_bytes);
}

// ---- functional plane -------------------------------------------------------

// Executes the real backward math on every rank in the (re)scheduled tile
// order, through the symmetric heap. Must match ShardedReferenceMoeBackward
// bit-exactly; see header for the reduction-order argument.
MoeGradients FunctionalBackward(const MoeWorkload& w,
                                const std::vector<Tensor>& dout,
                                const CometOptions& options) {
  COMET_CHECK(w.sharded_weights != nullptr && !w.inputs.empty())
      << "functional backward requires a materialized workload";
  const Placement& placement = w.placement;
  const RoutePlan& plan = w.plan;
  const ModelConfig& model = placement.model();
  const int world = placement.world();
  const int tp = placement.parallel().tp;
  const int ep = placement.parallel().ep;
  const int64_t n_embed = model.embedding;
  const int64_t hidden = placement.HiddenPerTpRank();
  const int64_t topk = model.topk;
  const int64_t group_tokens = placement.tokens_per_group();
  // Precision plane (see CometOptions::compute_dtype): heap buffers and
  // activation-path intermediates at `dtype`, f32 accumulation, RNE store
  // rounding at exactly the points ShardedReferenceMoeBackward rounds.
  // Weight gradients and dgate stay f32 (main grads).
  const DType dtype = options.compute_dtype;
  COMET_CHECK(w.inputs[0].dtype() == dtype)
      << "workload materialized at " << DTypeName(w.inputs[0].dtype())
      << " but compute_dtype is " << DTypeName(dtype)
      << " (set WorkloadOptions::dtype to match)";

  COMET_CHECK_EQ(static_cast<int>(dout.size()), ep);
  for (const Tensor& t : dout) {
    COMET_CHECK_EQ(t.rows(), group_tokens);
    COMET_CHECK_EQ(t.cols(), n_embed);
  }

  MoeGradients grads;
  for (int g = 0; g < ep; ++g) {
    grads.dinput.emplace_back(Shape{group_tokens, n_embed});
  }
  for (int64_t e = 0; e < model.num_experts; ++e) {
    grads.dw0.emplace_back(Shape{n_embed, model.ffn_hidden});
    grads.dw1.emplace_back(Shape{model.ffn_hidden, n_embed});
  }
  grads.dgate = Tensor(Shape{placement.total_tokens(), topk});

  SymmetricHeap heap(world);
  const SymmetricBufferId in_buf =
      heap.Allocate("bwd-input", Shape{group_tokens, n_embed}, dtype);
  const SymmetricBufferId dout_buf =
      heap.Allocate("bwd-dout", Shape{group_tokens, n_embed}, dtype);
  const SymmetricBufferId dcontrib_buf =
      heap.Allocate("bwd-dcontrib", Shape{group_tokens * topk, n_embed}, dtype);
  const SymmetricBufferId dcontrib_sig =
      heap.AllocateSignals("bwd-dcontrib-ready", group_tokens * topk);
  for (int r = 0; r < world; ++r) {
    const int g = placement.EpGroupOfRank(r);
    heap.Local(in_buf, r) = w.inputs[static_cast<size_t>(g)];
    heap.Local(dout_buf, r) = dout[static_cast<size_t>(g)];
  }

  // dgate contributions land per (token, slot) from every TP lane of the
  // owning group. Concurrent ranks must not share that accumulator: each
  // rank writes its own partial, reduced rank-ascending after the group
  // finishes -- rank order within a group IS lane order, so the reduction
  // tree is exactly the sharded reference's lane-ascending one.
  std::vector<Tensor> dgate_partial;
  dgate_partial.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    dgate_partial.emplace_back(Shape{placement.total_tokens(), topk});
  }

  // Each rank is one RankGroup task (see runtime/rank_group.h): concurrent
  // mode overlaps all rank pipelines, with the undispatch puts below acting
  // as real cross-thread signals for the dinput reduction.
  const auto produce = [&](int r) {
    const int group = placement.EpGroupOfRank(r);
    const int lane = placement.TpLaneOfRank(r);
    const RankPlan& rank_plan = plan.ForRank(r);
    const size_t num_local = rank_plan.experts.size();

    // Kernel A's schedule: dY rows sorted by source, dgrad1 tiles in
    // arrival order (out width = K/TP). The same row permutation reorders
    // the forward-stash rows so the per-row pairing is preserved.
    const Layer0Schedule schedule_a =
        BuildLayer0Schedule(rank_plan, group, ep, hidden, options.tile_m,
                            options.tile_n, options.reschedule);

    // Gather the permuted dY (through the heap: the grad dispatch) and the
    // permuted forward inputs A (stashed by the forward on this rank).
    std::vector<Tensor> dy(num_local), a_in(num_local);
    for (size_t le = 0; le < num_local; ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule_a.row_order[le];
      const int64_t rows = static_cast<int64_t>(slice.rows.size());
      dy[le] = Tensor(Shape{rows, n_embed}, dtype);
      a_in[le] = Tensor(Shape{rows, n_embed}, dtype);
      // Each pos owns its dy/a_in destination row: fan the gather out.
      ParallelFor(
          0, static_cast<int64_t>(order.size()), 8,
          [&](int64_t pos) {
            const ExpertRow& row =
                slice.rows[static_cast<size_t>(order[static_cast<size_t>(pos)])];
            const int src = placement.RankOf(row.source_group, lane);
            const int64_t src_local =
                row.token - placement.FirstTokenOfGroup(row.source_group);
            auto dst = dy[le].row(pos);
            heap.CopyRow(dout_buf, r, src, src_local, dst);
            for (size_t c = 0; c < dst.size(); ++c) {
              dst[c] = row.weight * dst[c];
            }
            // dY rounds on store (it feeds the 2-byte dgrad pipeline) --
            // the same per-element point WeightedDout rounds at.
            QuantizeSpan(dst, dtype);
            heap.CopyRow(in_buf, r, src, src_local, a_in[le].row(pos));
          });
    }

    // Recompute the forward stash (h_pre, h_post, y) in the permuted order;
    // per-element values are schedule-independent.
    std::vector<Tensor> h_pre(num_local), h_post(num_local), y(num_local);
    for (size_t le = 0; le < num_local; ++le) {
      const int64_t rows = a_in[le].rows();
      const int64_t expert = rank_plan.experts[le].expert;
      h_pre[le] = Tensor(Shape{rows, hidden}, dtype);
      Gemm(a_in[le], w.sharded_weights->W0Shard(expert, lane), h_pre[le]);
      h_post[le] = h_pre[le];
      ApplyActivation(h_post[le], w.activation);
      y[le] = Tensor(Shape{rows, n_embed}, dtype);
      Gemm(h_post[le], w.sharded_weights->W1Shard(expert, lane), y[le]);
    }

    // dgate: local dots accumulated lane-ascending (rank order guarantees
    // it) -- the canonical all-reduce order of the sharded reference.
    for (size_t le = 0; le < num_local; ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule_a.row_order[le];
      for (size_t pos = 0; pos < order.size(); ++pos) {
        const ExpertRow& row = slice.rows[static_cast<size_t>(order[pos])];
        const int src = placement.RankOf(row.source_group, lane);
        const int64_t src_local =
            row.token - placement.FirstTokenOfGroup(row.source_group);
        const auto gr = heap.GetRow(dout_buf, r, src, src_local);
        const auto yr = y[le].row(static_cast<int64_t>(pos));
        float acc = 0.0f;
        for (size_t c = 0; c < yr.size(); ++c) {
          acc += gr[c] * yr[c];
        }
        dgate_partial[static_cast<size_t>(r)].at({row.token, row.slot}) += acc;
      }
    }

    // Kernel A compute: dZ = dY W1shard^T, tile-by-tile in arrival order,
    // activation backward fused into each tile's epilogue.
    std::vector<Tensor> dz(num_local);
    for (size_t le = 0; le < num_local; ++le) {
      dz[le] = Tensor(Shape{dy[le].rows(), hidden}, dtype);
    }
    // Tiles write disjoint dz patches (activation backward included), so
    // the pool can run them in any completion order.
    ParallelFor(
        0, static_cast<int64_t>(schedule_a.tiles.size()), 1,
        [&](int64_t t) {
          const TileRef& tile = schedule_a.tiles[static_cast<size_t>(t)];
          const size_t le = static_cast<size_t>(tile.expert_local);
          const int64_t expert = rank_plan.experts[le].expert;
          GemmNTTile(dy[le], w.sharded_weights->W1Shard(expert, lane), dz[le],
                     tile.row_begin, tile.row_end, tile.col_begin,
                     tile.col_end);
          ApplyActivationGradTile(dz[le], h_pre[le], w.activation,
                                  tile.row_begin, tile.row_end, tile.col_begin,
                                  tile.col_end);
        });

    // Wgrad over canonical row order: scatter the permuted rows back so the
    // row reduction of GemmTN never sees the schedule's permutation.
    for (size_t le = 0; le < num_local; ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule_a.row_order[le];
      const int64_t rows = static_cast<int64_t>(slice.rows.size());
      const int64_t expert = rank_plan.experts[le].expert;
      Tensor dy_canon(Shape{rows, n_embed}), dz_canon(Shape{rows, hidden});
      Tensor a_canon(Shape{rows, n_embed}), h_canon(Shape{rows, hidden});
      for (size_t pos = 0; pos < order.size(); ++pos) {
        const int64_t canon = order[pos];
        dy_canon.SetRow(canon, dy[le].row(static_cast<int64_t>(pos)));
        dz_canon.SetRow(canon, dz[le].row(static_cast<int64_t>(pos)));
        a_canon.SetRow(canon, a_in[le].row(static_cast<int64_t>(pos)));
        h_canon.SetRow(canon, h_post[le].row(static_cast<int64_t>(pos)));
      }
      if (rows == 0) {
        continue;
      }
      // dW1 shard -> row block `lane`; dW0 shard -> column block `lane`.
      Tensor dw1_shard(Shape{hidden, n_embed});
      GemmTN(h_canon, dy_canon, dw1_shard);
      for (int64_t row = 0; row < hidden; ++row) {
        grads.dw1[static_cast<size_t>(expert)].SetRow(lane * hidden + row,
                                                      dw1_shard.row(row));
      }
      Tensor dw0_shard(Shape{n_embed, hidden});
      GemmTN(a_canon, dz_canon, dw0_shard);
      Tensor& dw0 = grads.dw0[static_cast<size_t>(expert)];
      for (int64_t row = 0; row < n_embed; ++row) {
        auto dst = dw0.row(row);
        const auto src = dw0_shard.row(row);
        std::copy(src.begin(), src.end(),
                  dst.begin() + static_cast<size_t>(lane * hidden));
      }
    }

    // Kernel B: dA = dH W0shard^T column-panel-major; partial rows stream
    // home through the heap as each panel completes.
    const Layer1Schedule schedule_b =
        BuildLayer1Schedule(rank_plan, n_embed, options.tile_m,
                            options.tile_n, options.reschedule);
    std::vector<Tensor> da(num_local);
    for (size_t le = 0; le < num_local; ++le) {
      da[le] = Tensor(Shape{dz[le].rows(), n_embed}, dtype);
    }
    ParallelFor(
        0, static_cast<int64_t>(schedule_b.tiles.size()), 1,
        [&](int64_t t) {
          const TileRef& tile = schedule_b.tiles[static_cast<size_t>(t)];
          const size_t le = static_cast<size_t>(tile.expert_local);
          const int64_t expert = rank_plan.experts[le].expert;
          GemmNTTile(dz[le], w.sharded_weights->W0Shard(expert, lane), da[le],
                     tile.row_begin, tile.row_end, tile.col_begin,
                     tile.col_end);
        });
    for (size_t le = 0; le < num_local; ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule_a.row_order[le];
      // Disjoint destination rows + signal words per (token, slot).
      ParallelFor(
          0, static_cast<int64_t>(order.size()), 8,
          [&](int64_t pos) {
            const ExpertRow& row =
                slice.rows[static_cast<size_t>(order[static_cast<size_t>(pos)])];
            const int dst = placement.RankOf(row.source_group, lane);
            const int64_t dst_row =
                (row.token - placement.FirstTokenOfGroup(row.source_group)) *
                    topk +
                row.slot;
            heap.PutRowWithSignal(dcontrib_buf, r, dst, dst_row,
                                  da[le].row(pos), dcontrib_sig, dst_row);
          });
    }
  };

  // Undispatch reduction in canonical order: slot-major, TP-lane inner.
  // The consume stage of each group's lane-0 rank: block on every expected
  // dA contribution's arrival signal (live producers in concurrent mode),
  // then reduce -- tokens into disjoint dinput rows, within-token order
  // canonical, so the result is bit-identical at any concurrency.
  const auto consume = [&](int r) {
    if (placement.TpLaneOfRank(r) != 0) {
      return;
    }
    const int g = placement.EpGroupOfRank(r);
    const int reader = r;
    const int64_t first = placement.FirstTokenOfGroup(g);
    for (int64_t t = 0; t < group_tokens; ++t) {
      const int64_t slots = static_cast<int64_t>(
          w.routing.tokens[static_cast<size_t>(first + t)].experts.size());
      for (int64_t k = 0; k < slots; ++k) {
        for (int l = 0; l < tp; ++l) {
          heap.WaitUntilSignalGe(dcontrib_sig, placement.RankOf(g, l),
                                 t * topk + k, 1,
                                 options.signal_wait_timeout_ms);
        }
      }
    }
    Tensor& dinput = grads.dinput[static_cast<size_t>(g)];
    ParallelFor(
        0, group_tokens, 4,
        [&](int64_t t) {
          thread_local std::vector<float> row_buf;
          row_buf.resize(static_cast<size_t>(n_embed));
          const int64_t slots = static_cast<int64_t>(
              w.routing.tokens[static_cast<size_t>(first + t)].experts.size());
          for (int64_t k = 0; k < slots; ++k) {
            for (int l = 0; l < tp; ++l) {
              heap.WaitSignalGe(dcontrib_sig, placement.RankOf(g, l),
                                t * topk + k, 1);
              heap.CopyRow(dcontrib_buf, reader, placement.RankOf(g, l),
                           t * topk + k, row_buf);
              dinput.AccumulateRow(t, row_buf, 1.0f);
            }
          }
          // One rounding per dinput row after the canonical reduction --
          // the same point the sharded reference rounds at.
          QuantizeSpan(dinput.row(t), dtype);
        });
  };

  RankGroup group(world, RankGroupOptions{.num_threads = options.num_threads});
  group.Run(produce, consume);

  // Rank-ascending dgate reduce (lane-ascending inside each owner group;
  // ranks outside a pair's owner group contribute exact zeros).
  for (int r = 0; r < world; ++r) {
    const auto src = dgate_partial[static_cast<size_t>(r)].data();
    auto dst = grads.dgate.data();
    for (size_t i = 0; i < dst.size(); ++i) {
      dst[i] += src[i];
    }
  }
  return grads;
}

}  // namespace

BackwardExecution CometBackward(const MoeWorkload& workload,
                                const ClusterSpec& cluster,
                                const std::vector<Tensor>& dout, ExecMode mode,
                                const CometOptions& options) {
  COMET_CHECK_EQ(cluster.world_size, workload.world());
  // As in the forward executor: cap every ParallelFor of this run (tile
  // loops AND the nested whole-matrix Gemm/activation wrappers) so
  // num_threads = 1 restores fully serial execution.
  ScopedThreadLimit thread_limit(options.num_threads);
  const OpCostModel costs(cluster);
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const int world = placement.world();
  const int64_t hidden = placement.HiddenPerTpRank();
  const int64_t n_embed = placement.model().embedding;

  // Sanity-check the mirror argument through the dependency-resolving IR:
  // kernel A must decompose along M in arrival order, kernel B along N
  // panel-major -- exactly the forward pipelines' conclusions.
  const int64_t shared_rows =
      placement.total_tokens() * placement.model().topk;
  const auto pa = ResolveOverlapPipelines(
      MoeBackwardKernelAGraph(shared_rows, n_embed, hidden));
  COMET_CHECK(pa.size() == 1 && pa.front().chosen == DecomposeDim::kM &&
              pa.front().hint == RescheduleHint::kArrivalOrder);
  const auto pb = ResolveOverlapPipelines(
      MoeBackwardKernelBGraph(shared_rows, n_embed, hidden));
  COMET_CHECK(pb.size() == 1 && pb.front().chosen == DecomposeDim::kN &&
              pb.front().hint == RescheduleHint::kPanelMajor);

  BackwardExecution out;
  out.executor = options.name_override.empty() ? "Comet-bwd"
                                               : options.name_override;

  FusedKernelConfig base;
  base.total_blocks = cluster.gpu.num_sms;
  base.tile_m = options.tile_m;
  base.tile_n = options.tile_n;
  base.reschedule = options.reschedule;
  base.vertical_fusion = !options.specialized;

  // Division points: profile on the most loaded rank like the forward does.
  int busiest = 0;
  for (int r = 1; r < world; ++r) {
    if (plan.ForRank(r).TotalRows() > plan.ForRank(busiest).TotalRows()) {
      busiest = r;
    }
  }
  AdaptiveAssigner assigner;
  auto pick_nc = [&](MoePipelineStage stage) {
    if (base.vertical_fusion) {
      return 0;
    }
    if (!options.adaptive) {
      return std::min(options.fixed_comm_blocks, base.total_blocks - 1);
    }
    return assigner.SelectCommBlocks(stage, plan, busiest, costs, base,
                                     options.profile_cache);
  };
  const int nc_a = pick_nc(MoePipelineStage::kLayer0);
  const int nc_b = pick_nc(MoePipelineStage::kLayer1);

  const double ag_us = DoutAllGatherUs(workload, costs);

  // Per-rank backward simulations are independent; fan out, reduce serially
  // (identical numbers at any thread count).
  struct RankSim {
    FusedKernelResult ka;
    FusedKernelResult kb;
    double act = 0.0;
    double wgrad0 = 0.0;
    double wgrad1 = 0.0;
    double total = 0.0;
  };
  std::vector<RankSim> sims(static_cast<size_t>(world));
  ParallelFor(
      0, world, 1,
      [&](int64_t ri) {
        const int r = static_cast<int>(ri);
        RankSim& sim = sims[static_cast<size_t>(r)];
        FusedKernelConfig config_a = base;
        config_a.comm_blocks = nc_a;
        FusedKernelConfig config_b = base;
        config_b.comm_blocks = nc_b;

        // Kernel A mirrors forward layer0 (same row width N, same GEMM
        // output width K/TP); kernel B mirrors forward layer1.
        sim.ka = SimulateLayer0Fused(plan, r, costs, config_a);
        sim.kb = SimulateLayer1Fused(plan, r, costs, config_b);

        const std::vector<int64_t> depths = RowDepths(plan.ForRank(r));
        const int np_b = base.total_blocks - (base.vertical_fusion ? 0 : nc_b);
        sim.wgrad1 =
            WgradTimeUs(costs, hidden, n_embed, depths, base.total_blocks);
        sim.wgrad0 = WgradTimeUs(costs, n_embed, hidden, depths, np_b);
        sim.act = costs.ActivationUs(plan.ForRank(r).TotalRows(), hidden);

        // dW0 needs only dH, so it runs on kernel B's compute blocks while
        // the undispatch traffic drains: kernel B + wgrad0 cost
        // max(comm_end, compute_end + wgrad0) instead of duration + wgrad0.
        const double kb_with_wgrad0 = std::max(
            sim.kb.comm_makespan_us, sim.kb.compute_makespan_us + sim.wgrad0);
        // Host launches: kernel A, wgrad1, kernel B(+wgrad0 fused).
        // Activation backward runs in kernel A's tile epilogues (charged,
        // not launched).
        const double launches = 3.0 * costs.LaunchUs();
        sim.total = launches + ag_us + sim.ka.duration_us + sim.act +
                    sim.wgrad1 + kb_with_wgrad0;
      });

  out.per_rank_us.assign(static_cast<size_t>(world), 0.0);
  double worst = -1.0;
  for (int r = 0; r < world; ++r) {
    const RankSim& sim = sims[static_cast<size_t>(r)];
    out.per_rank_us[static_cast<size_t>(r)] = sim.total;
    if (sim.total > worst) {
      worst = sim.total;
      const double launches = 3.0 * costs.LaunchUs();
      Timeline tl;
      double t = 0.0;
      tl.Add("launch", OpCategory::kHost, -1, t, t + launches);
      t += launches;
      if (ag_us > 0.0) {
        tl.Add("dout-allgather", OpCategory::kLayer1Comm, 1, t, t + ag_us);
        t += ag_us;
      }
      tl.Merge(sim.ka.timeline, t);
      t += sim.ka.duration_us;
      tl.Add("act-bwd", OpCategory::kActivation, 0, t, t + sim.act);
      t += sim.act;
      tl.Add("wgrad1", OpCategory::kLayer1Comp, 0, t, t + sim.wgrad1);
      t += sim.wgrad1;
      tl.Merge(sim.kb.timeline, t);
      tl.Add("wgrad0", OpCategory::kLayer0Comp, 0, t + sim.kb.compute_makespan_us,
             t + sim.kb.compute_makespan_us + sim.wgrad0);
      out.timeline = std::move(tl);
    }
  }
  out.duration_us = worst;

  if (mode == ExecMode::kFunctional) {
    out.grads = FunctionalBackward(workload, dout, options);
  }
  return out;
}

BackwardExecution SequentialBackward(const MoeWorkload& workload,
                                     const ClusterSpec& cluster,
                                     const std::vector<Tensor>& dout,
                                     ExecMode mode) {
  COMET_CHECK_EQ(cluster.world_size, workload.world());
  const OpCostModel costs(cluster);
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const int world = placement.world();
  const int sms = cluster.gpu.num_sms;
  const int64_t hidden = placement.HiddenPerTpRank();
  const int64_t n_embed = placement.model().embedding;
  const double elt = costs.bytes_per_element();

  BackwardExecution out;
  out.executor = "Megatron-bwd";

  const double row_bytes = static_cast<double>(n_embed) * elt;
  const double a2a_dispatch =
      AllToAllCostUs(cluster, plan.DispatchBytes(row_bytes));
  const double a2a_return =
      AllToAllCostUs(cluster, plan.EpReturnBytes(row_bytes));
  const double ag_us = DoutAllGatherUs(workload, costs);
  const double tp_reduce =
      placement.parallel().tp > 1
          ? RingReduceScatterCostUs(
                cluster, static_cast<double>(placement.tokens_per_group()) *
                             row_bytes)
          : 0.0;

  out.per_rank_us.assign(static_cast<size_t>(world), 0.0);
  double worst = -1.0;
  for (int r = 0; r < world; ++r) {
    std::vector<GemmShape> dgrad1, dgrad0;
    for (const GemmProblemSize& p : plan.Layer0Problems(r)) {
      dgrad1.push_back(GemmShape{p.m, p.n, p.k});
    }
    for (const GemmProblemSize& p : plan.Layer1Problems(r)) {
      dgrad0.push_back(GemmShape{p.m, p.n, p.k});
    }
    const std::vector<int64_t> depths = RowDepths(plan.ForRank(r));
    const double dgrad1_us = costs.gemm().GroupTimeUs(dgrad1, sms);
    const double dgrad0_us = costs.gemm().GroupTimeUs(dgrad0, sms);
    const double wgrad1 = WgradTimeUs(costs, hidden, n_embed, depths, sms);
    const double wgrad0 = WgradTimeUs(costs, n_embed, hidden, depths, sms);
    const double act = costs.ActivationUs(plan.ForRank(r).TotalRows(), hidden);
    const double permute =
        costs.PermuteUs(plan.ForRank(r).TotalRows(), n_embed);
    // Kernels: a2a, permute, dgrad1, wgrad1, act-bwd, dgrad0, wgrad0,
    // unpermute, a2a-return (+ TP collectives when tp > 1).
    double launches = 9.0 * costs.LaunchUs();
    if (placement.parallel().tp > 1) {
      launches += 2.0 * costs.LaunchUs();
    }
    const double total = launches + ag_us + a2a_dispatch + permute +
                         dgrad1_us + wgrad1 + act + dgrad0_us + wgrad0 +
                         permute + a2a_return + tp_reduce;
    out.per_rank_us[static_cast<size_t>(r)] = total;
    if (total > worst) {
      worst = total;
      Timeline tl;
      double t = 0.0;
      auto add = [&](const char* name, OpCategory cat, double dur) {
        if (dur <= 0.0) {
          return;
        }
        tl.Add(name, cat, 0, t, t + dur);
        t += dur;
      };
      add("launch", OpCategory::kHost, launches);
      add("dout-allgather", OpCategory::kLayer1Comm, ag_us);
      add("grad-a2a", OpCategory::kLayer1Comm, a2a_dispatch);
      add("permute", OpCategory::kLayer1Comp, permute);
      add("dgrad1", OpCategory::kLayer1Comp, dgrad1_us);
      add("wgrad1", OpCategory::kLayer1Comp, wgrad1);
      add("act-bwd", OpCategory::kActivation, act);
      add("dgrad0", OpCategory::kLayer0Comp, dgrad0_us);
      add("wgrad0", OpCategory::kLayer0Comp, wgrad0);
      add("unpermute", OpCategory::kLayer0Comp, permute);
      add("grad-return-a2a", OpCategory::kLayer0Comm, a2a_return);
      add("tp-reduce", OpCategory::kLayer0Comm, tp_reduce);
      out.timeline = std::move(tl);
    }
  }
  out.duration_us = worst;

  if (mode == ExecMode::kFunctional) {
    out.grads = ShardedReferenceMoeBackward(workload, dout);
  }
  return out;
}

}  // namespace comet
