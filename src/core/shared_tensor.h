// Shared-tensor based dependency resolving (paper §3.1).
//
// A shared tensor is the buffer linking a producer operator to a consumer
// operator in one of MoE's two pipelines:
//   layer0: producer = token dispatch (all-to-all / all-gather),
//           consumer = GroupGEMM          -> global shape (M*topk, N)
//   layer1: producer = GroupGEMM,
//           consumer = top-k reduce + all-to-all / reduce-scatter
//
// Overlap is only possible along a dimension where the CONSUMER treats the
// data as independent. A GEMM consumer reduces along the embedding (column)
// dimension, so only rows are independent; a top-k-reduce consumer reduces
// along rows, so only columns are independent. ResolveDecomposition encodes
// exactly this analysis and is the entry point the executor uses to pick the
// decomposition dimension of each pipeline.
#pragma once

#include <cstdint>
#include <string>

namespace comet {

// How an operator touches the shared tensor.
enum class TensorAccess {
  kRowwiseProduce,    // writes whole rows independently (dispatch output)
  kGemmConsume,       // reads rows, reduces along columns (layer0 GEMM)
  kGemmProduce,       // writes tiles independently (layer1 GEMM output)
  kTopKReduceConsume, // reduces groups of rows (combine), columns independent
};

enum class DecomposeDim {
  kM,  // rows (token dimension)
  kN,  // columns (embedding / hidden dimension)
};

std::string DecomposeDimName(DecomposeDim dim);

// Descriptor of one pipeline's shared tensor.
struct SharedTensorSpec {
  int64_t rows = 0;  // M * topk on the owning rank
  int64_t cols = 0;
  TensorAccess producer = TensorAccess::kRowwiseProduce;
  TensorAccess consumer = TensorAccess::kGemmConsume;
};

// True if the consumer can make progress on a partial slice along `dim`
// (i.e. elements along `dim` are independent for it).
bool ConsumerIndependentAlong(TensorAccess consumer, DecomposeDim dim);

// Picks the decomposition dimension: the unique dim along which the consumer
// is independent. Throws CheckError if no dim qualifies (no fine-grained
// overlap possible for such an operator pair).
DecomposeDim ResolveDecomposition(const SharedTensorSpec& spec);

// Convenience constructors for the two MoE pipelines.
SharedTensorSpec Layer0SharedTensor(int64_t rows, int64_t cols);
SharedTensorSpec Layer1SharedTensor(int64_t rows, int64_t cols);

}  // namespace comet
