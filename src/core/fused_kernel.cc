#include "core/fused_kernel.h"

#include <algorithm>

#include "util/check.h"

namespace comet {
namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Harmonic blend of per-class transfer rates: moving each byte class at its
// own rate back-to-back through one channel yields total/sum(bytes_i/rate_i).
double HarmonicBlend(std::initializer_list<std::pair<double, double>> classes,
                     double fallback_rate) {
  double total = 0.0;
  double denom = 0.0;
  for (const auto& [bytes, rate] : classes) {
    if (bytes > 0.0) {
      total += bytes;
      denom += bytes / rate;
    }
  }
  return total > 0.0 ? total / denom : fallback_rate;
}

// Remote traffic of one rank split by fabric tier.
struct TierSplit {
  double intra = 0.0;  // stays inside the node (NVLink)
  double inter = 0.0;  // crosses nodes (IB); zero on single-node clusters
};

// Channel bandwidth of nc communication blocks moving `split` scattered
// bytes: min over the per-block sustainable rate and the port capacity,
// each blended across tiers.
double ScatteredChannelBandwidth(const TierSplit& split,
                                 const ClusterSpec& cluster, int nc) {
  const LinkSpec& intra = cluster.link;
  const LinkSpec& inter = cluster.inter_link;
  const double per_block = HarmonicBlend(
      {{split.intra, intra.per_block_bandwidth_scattered_bytes_per_us},
       {split.inter, inter.per_block_bandwidth_scattered_bytes_per_us}},
      intra.per_block_bandwidth_scattered_bytes_per_us);
  const double port =
      HarmonicBlend({{split.intra, intra.bandwidth_bytes_per_us},
                     {split.inter, inter.bandwidth_bytes_per_us}},
                    intra.bandwidth_bytes_per_us);
  return std::min(static_cast<double>(nc) * per_block, port);
}

double TierLatencyUs(const TierSplit& split, const ClusterSpec& cluster) {
  return split.inter > 0.0
             ? std::max(cluster.link.latency_us, cluster.inter_link.latency_us)
             : cluster.link.latency_us;
}

void ResetResult(FusedKernelResult* result) {
  result->duration_us = 0.0;
  result->compute_makespan_us = 0.0;
  result->comm_makespan_us = 0.0;
  result->stall_us = 0.0;
  result->comm_bytes = 0.0;
  result->timeline.Clear();
}

// Lays out the flat chunk id space for `plan` and clears the per-chunk
// accumulators. Returns the total chunk count.
int64_t PrepareChunks(const RankPlan& rank_plan, int64_t tile_m,
                      FusedKernelWorkspace& ws) {
  const size_t n_experts = rank_plan.experts.size();
  ws.chunk_base.resize(n_experts);
  int64_t total_chunks = 0;
  for (size_t le = 0; le < n_experts; ++le) {
    ws.chunk_base[le] = total_chunks;
    const int64_t m = static_cast<int64_t>(rank_plan.experts[le].rows.size());
    total_chunks += CeilDiv(m, tile_m);
  }
  ws.chunk_seen.assign(static_cast<size_t>(total_chunks), 0);
  ws.chunk_intra.assign(static_cast<size_t>(total_chunks), 0.0);
  ws.chunk_inter.assign(static_cast<size_t>(total_chunks), 0.0);
  ws.chunk_arrival.assign(static_cast<size_t>(total_chunks), 0.0);
  ws.chunk_order.clear();
  return total_chunks;
}

}  // namespace

void SimulateLayer0FusedInto(const RoutePlan& plan, int rank,
                             const OpCostModel& costs,
                             const FusedKernelConfig& config,
                             FusedKernelWorkspace& ws,
                             FusedKernelResult* result) {
  const Placement& placement = plan.placement();
  const int group = placement.EpGroupOfRank(rank);
  const int ep = placement.parallel().ep;
  const RankPlan& rank_plan = plan.ForRank(rank);
  const int64_t out_cols = placement.HiddenPerTpRank();
  const int64_t n_embed = placement.model().embedding;
  const double row_bytes = static_cast<double>(n_embed) * costs.bytes_per_element();
  const LinkSpec& link = costs.cluster().link;

  COMET_CHECK_GT(config.total_blocks, 0);
  COMET_CHECK_GE(config.comm_blocks, 0);
  COMET_CHECK_LT(config.comm_blocks, config.total_blocks);

  BuildLayer0ScheduleInto(rank_plan, group, ep, out_cols, config.tile_m,
                          config.tile_n, config.reschedule,
                          ws.schedule_scratch, &ws.layer0);
  const Layer0Schedule& schedule = ws.layer0;

  // Remote bytes per row chunk (split by fabric tier), in tile first-use
  // order.
  const ClusterSpec& cluster = costs.cluster();
  const int lane = placement.TpLaneOfRank(rank);
  PrepareChunks(rank_plan, config.tile_m, ws);
  TierSplit total_split;
  for (const TileRef& tile : schedule.tiles) {
    const int64_t chunk =
        ws.chunk_base[static_cast<size_t>(tile.expert_local)] +
        tile.row_begin / config.tile_m;
    if (ws.chunk_seen[static_cast<size_t>(chunk)]) {
      continue;
    }
    ws.chunk_seen[static_cast<size_t>(chunk)] = 1;
    const auto& rows = rank_plan.experts[static_cast<size_t>(tile.expert_local)].rows;
    const auto& order = schedule.row_order[static_cast<size_t>(tile.expert_local)];
    TierSplit remote;
    for (int64_t i = tile.row_begin; i < tile.row_end; ++i) {
      const ExpertRow& row =
          rows[static_cast<size_t>(order[static_cast<size_t>(i)])];
      if (row.source_group == group) {
        continue;
      }
      const int src_rank = placement.RankOf(row.source_group, lane);
      if (cluster.SameNode(rank, src_rank)) {
        remote.intra += row_bytes;
      } else {
        remote.inter += row_bytes;
      }
    }
    ws.chunk_intra[static_cast<size_t>(chunk)] = remote.intra;
    ws.chunk_inter[static_cast<size_t>(chunk)] = remote.inter;
    total_split.intra += remote.intra;
    total_split.inter += remote.inter;
    ws.chunk_order.push_back(chunk);
  }

  ResetResult(result);
  result->comm_bytes = total_split.intra + total_split.inter;

  const double total_comm_bytes = result->comm_bytes;

  if (config.vertical_fusion) {
    // Every block fetches its own tile's rows inline: column tiles of the
    // same row chunk re-fetch the rows (the redundant-access problem of
    // vertical fusion), and the broken async pipeline slows the math itself.
    ws.tasks.clear();
    const double tile_us =
        costs.gemm().TileTimeUs(n_embed, config.tile_m, config.tile_n) *
        (1.0 + config.vertical_fusion_penalty);
    for (const TileRef& tile : schedule.tiles) {
      const size_t chunk = static_cast<size_t>(
          ws.chunk_base[static_cast<size_t>(tile.expert_local)] +
          tile.row_begin / config.tile_m);
      const double intra_bytes = ws.chunk_intra[chunk];
      const double inter_bytes = ws.chunk_inter[chunk];
      const double total = intra_bytes + inter_bytes;
      const double fetch =
          total > 0.0
              ? total / HarmonicBlend(
                            {{intra_bytes,
                              link.per_block_bandwidth_scattered_bytes_per_us},
                             {inter_bytes,
                              cluster.inter_link
                                  .per_block_bandwidth_scattered_bytes_per_us}},
                            link.per_block_bandwidth_scattered_bytes_per_us)
              : 0.0;
      ws.tasks.push_back(SlotTask{0.0, tile_us + fetch});
    }
    ScheduleInOrderInto(ws.tasks, config.total_blocks, 0.0, ws.slot_heap,
                        &ws.slot_schedule);
    const SlotSchedule& sched = ws.slot_schedule;
    result->compute_makespan_us = sched.makespan_us;
    result->comm_makespan_us = sched.makespan_us;
    result->stall_us = sched.stall_us;
    result->duration_us = sched.makespan_us;
    for (size_t i = 0; i < ws.tasks.size(); ++i) {
      result->timeline.Add("l0-tile", OpCategory::kLayer0Comp, 0,
                           sched.tasks[i].start_us, sched.tasks[i].end_us);
    }
    return;
  }

  COMET_CHECK(total_comm_bytes == 0.0 || config.comm_blocks > 0)
      << "remote tokens but no communication blocks";

  // Token delivery: FIFO channel at the aggregate rate of the nc blocks,
  // tier-blended on multi-node clusters.
  if (total_comm_bytes > 0.0) {
    const double bw =
        ScatteredChannelBandwidth(total_split, cluster, config.comm_blocks);
    BandwidthQueue channel(bw, TierLatencyUs(total_split, cluster));
    ws.jobs.clear();
    ws.job_chunks.clear();
    for (const int64_t chunk : ws.chunk_order) {
      const double bytes = ws.chunk_intra[static_cast<size_t>(chunk)] +
                           ws.chunk_inter[static_cast<size_t>(chunk)];
      if (bytes > 0.0) {
        ws.jobs.push_back(TransferJob{0.0, bytes});
        ws.job_chunks.push_back(chunk);
      }
    }
    channel.ScheduleInto(ws.jobs, 0.0, &ws.transfers);
    for (size_t i = 0; i < ws.transfers.size(); ++i) {
      ws.chunk_arrival[static_cast<size_t>(ws.job_chunks[i])] =
          ws.transfers[i].end_us;
      result->comm_makespan_us =
          std::max(result->comm_makespan_us, ws.transfers[i].end_us);
      result->timeline.Add("l0-recv", OpCategory::kLayer0Comm, 1,
                           ws.transfers[i].start_us, ws.transfers[i].end_us);
    }
  }

  // Compute side: in-order tile issue on the np GEMM blocks.
  ws.tasks.clear();
  const double tile_us =
      costs.gemm().TileTimeUs(n_embed, config.tile_m, config.tile_n);
  for (const TileRef& tile : schedule.tiles) {
    const size_t chunk = static_cast<size_t>(
        ws.chunk_base[static_cast<size_t>(tile.expert_local)] +
        tile.row_begin / config.tile_m);
    ws.tasks.push_back(SlotTask{ws.chunk_arrival[chunk], tile_us});
  }
  const int np = config.total_blocks - config.comm_blocks;
  ScheduleInOrderInto(ws.tasks, np, 0.0, ws.slot_heap, &ws.slot_schedule);
  const SlotSchedule& sched = ws.slot_schedule;
  result->compute_makespan_us = sched.makespan_us;
  result->stall_us = sched.stall_us;
  result->duration_us = std::max(sched.makespan_us, result->comm_makespan_us);
  for (size_t i = 0; i < ws.tasks.size(); ++i) {
    result->timeline.Add("l0-tile", OpCategory::kLayer0Comp, 0,
                         sched.tasks[i].start_us, sched.tasks[i].end_us);
  }
}

FusedKernelResult SimulateLayer0Fused(const RoutePlan& plan, int rank,
                                      const OpCostModel& costs,
                                      const FusedKernelConfig& config) {
  FusedKernelWorkspace ws;
  FusedKernelResult result;
  SimulateLayer0FusedInto(plan, rank, costs, config, ws, &result);
  return result;
}

void SimulateLayer1FusedInto(const RoutePlan& plan, int rank,
                             const OpCostModel& costs,
                             const FusedKernelConfig& config,
                             FusedKernelWorkspace& ws,
                             FusedKernelResult* result) {
  const Placement& placement = plan.placement();
  const RankPlan& rank_plan = plan.ForRank(rank);
  const int64_t n_embed = placement.model().embedding;
  const int64_t k_depth = placement.HiddenPerTpRank();
  const double elt = costs.bytes_per_element();
  const LinkSpec& link = costs.cluster().link;

  COMET_CHECK_GT(config.total_blocks, 0);
  COMET_CHECK_GE(config.comm_blocks, 0);
  COMET_CHECK_LT(config.comm_blocks, config.total_blocks);

  BuildLayer1ScheduleInto(rank_plan, n_embed, config.tile_m, config.tile_n,
                          config.reschedule, &ws.layer1);
  const Layer1Schedule& schedule = ws.layer1;

  // Communication volume: remote partial rows return to their home group
  // (scattered all-to-all writes, split by fabric tier) plus the TP
  // reduce-scatter share (contiguous; crosses nodes only when the TP group
  // spans nodes).
  const ClusterSpec& cluster = costs.cluster();
  const int lane = placement.TpLaneOfRank(rank);
  const int group = placement.EpGroupOfRank(rank);
  const double row_bytes = static_cast<double>(n_embed) * elt;
  TierSplit ep_split;
  for (const auto& slice : rank_plan.experts) {
    for (const ExpertRow& row : slice.rows) {
      if (row.source_group == group) {
        continue;
      }
      const int dst = placement.RankOf(row.source_group, lane);
      if (cluster.SameNode(rank, dst)) {
        ep_split.intra += row_bytes;
      } else {
        ep_split.inter += row_bytes;
      }
    }
  }
  const double ep_bytes_total = ep_split.intra + ep_split.inter;
  const double rs_bytes_total = plan.TpReduceScatterBytesPerRank(row_bytes);
  const int tp = placement.parallel().tp;
  const bool tp_group_spans_nodes =
      tp > 1 && !cluster.SameNode(placement.RankOf(group, 0),
                                  placement.RankOf(group, tp - 1));
  const double total_comm = ep_bytes_total + rs_bytes_total;

  ResetResult(result);
  result->comm_bytes = total_comm;

  const double tile_us =
      costs.gemm().TileTimeUs(k_depth, config.tile_m, config.tile_n);
  const int64_t panels = schedule.num_col_panels;

  if (config.vertical_fusion) {
    ws.tasks.clear();
    const double per_tile_comm =
        schedule.tiles.empty()
            ? 0.0
            : total_comm / static_cast<double>(schedule.tiles.size()) /
                  link.per_block_bandwidth_scattered_bytes_per_us;
    for (size_t i = 0; i < schedule.tiles.size(); ++i) {
      ws.tasks.push_back(SlotTask{
          0.0, tile_us * (1.0 + config.vertical_fusion_penalty) + per_tile_comm});
    }
    ScheduleInOrderInto(ws.tasks, config.total_blocks, 0.0, ws.slot_heap,
                        &ws.slot_schedule);
    const SlotSchedule& sched = ws.slot_schedule;
    result->compute_makespan_us = sched.makespan_us;
    result->comm_makespan_us = sched.makespan_us;
    result->duration_us = sched.makespan_us;
    result->stall_us = sched.stall_us;
    for (size_t i = 0; i < ws.tasks.size(); ++i) {
      result->timeline.Add("l1-tile", OpCategory::kLayer1Comp, 0,
                           sched.tasks[i].start_us, sched.tasks[i].end_us);
    }
    return;
  }

  COMET_CHECK(total_comm == 0.0 || config.comm_blocks > 0)
      << "layer1 traffic but no communication blocks";

  // Compute: all tiles ready at 0; order decides when panels complete.
  ws.tasks.assign(schedule.tiles.size(), SlotTask{0.0, tile_us});
  const int np = config.total_blocks - config.comm_blocks;
  ScheduleInOrderInto(ws.tasks, np, 0.0, ws.slot_heap, &ws.slot_schedule);
  const SlotSchedule& sched = ws.slot_schedule;
  result->compute_makespan_us = sched.makespan_us;
  result->stall_us = sched.stall_us;
  for (size_t i = 0; i < ws.tasks.size(); ++i) {
    result->timeline.Add("l1-tile", OpCategory::kLayer1Comp, 0,
                         sched.tasks[i].start_us, sched.tasks[i].end_us);
  }

  // Panel completion times gate the reduce + write/send of those columns.
  ws.panel_done.assign(static_cast<size_t>(panels), 0.0);
  for (size_t i = 0; i < schedule.tiles.size(); ++i) {
    const int64_t p = schedule.tiles[i].col_begin / config.tile_n;
    ws.panel_done[static_cast<size_t>(p)] =
        std::max(ws.panel_done[static_cast<size_t>(p)], sched.tasks[i].end_us);
  }

  double comm_end = 0.0;
  if (total_comm > 0.0) {
    const LinkSpec& rs_link =
        tp_group_spans_nodes ? cluster.inter_link : cluster.link;
    const double per_block = HarmonicBlend(
        {{ep_split.intra, link.per_block_bandwidth_scattered_bytes_per_us},
         {ep_split.inter,
          cluster.inter_link.per_block_bandwidth_scattered_bytes_per_us},
         {rs_bytes_total, rs_link.per_block_bandwidth_bytes_per_us}},
        link.per_block_bandwidth_bytes_per_us);
    const double port = HarmonicBlend(
        {{ep_split.intra + (tp_group_spans_nodes ? 0.0 : rs_bytes_total),
          link.bandwidth_bytes_per_us},
         {ep_split.inter + (tp_group_spans_nodes ? rs_bytes_total : 0.0),
          cluster.inter_link.bandwidth_bytes_per_us}},
        link.bandwidth_bytes_per_us);
    const double bw =
        std::min(static_cast<double>(config.comm_blocks) * per_block, port);
    TierSplit latency_split;
    latency_split.inter =
        ep_split.inter + (tp_group_spans_nodes ? rs_bytes_total : 0.0);
    BandwidthQueue channel(bw, TierLatencyUs(latency_split, cluster));
    ws.jobs.clear();
    for (int64_t p = 0; p < panels; ++p) {
      const int64_t col_begin = p * config.tile_n;
      const int64_t col_end = std::min(col_begin + config.tile_n, n_embed);
      const double frac = static_cast<double>(col_end - col_begin) /
                          static_cast<double>(n_embed);
      ws.jobs.push_back(TransferJob{ws.panel_done[static_cast<size_t>(p)],
                                    total_comm * frac});
    }
    channel.ScheduleInto(ws.jobs, 0.0, &ws.transfers);
    for (const auto& s : ws.transfers) {
      comm_end = std::max(comm_end, s.end_us);
      result->timeline.Add("l1-send", OpCategory::kLayer1Comm, 1, s.start_us,
                           s.end_us);
    }
  }
  result->comm_makespan_us = comm_end;
  result->duration_us = std::max(result->compute_makespan_us, comm_end);
}

FusedKernelResult SimulateLayer1Fused(const RoutePlan& plan, int rank,
                                      const OpCostModel& costs,
                                      const FusedKernelConfig& config) {
  FusedKernelWorkspace ws;
  FusedKernelResult result;
  SimulateLayer1FusedInto(plan, rank, costs, config, ws, &result);
  return result;
}

}  // namespace comet
