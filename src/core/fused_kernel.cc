#include "core/fused_kernel.h"

#include <algorithm>
#include <map>

#include "sim/bandwidth_queue.h"
#include "sim/slot_pool.h"
#include "util/check.h"

namespace comet {
namespace {

// Identifies a row chunk (the unit of token delivery): tiles of the same
// expert and row range share one delivery.
using ChunkKey = std::pair<int64_t, int64_t>;  // (expert_local, row_begin)

// Harmonic blend of per-class transfer rates: moving each byte class at its
// own rate back-to-back through one channel yields total/sum(bytes_i/rate_i).
double HarmonicBlend(std::initializer_list<std::pair<double, double>> classes,
                     double fallback_rate) {
  double total = 0.0;
  double denom = 0.0;
  for (const auto& [bytes, rate] : classes) {
    if (bytes > 0.0) {
      total += bytes;
      denom += bytes / rate;
    }
  }
  return total > 0.0 ? total / denom : fallback_rate;
}

// Remote traffic of one rank split by fabric tier.
struct TierSplit {
  double intra = 0.0;  // stays inside the node (NVLink)
  double inter = 0.0;  // crosses nodes (IB); zero on single-node clusters
};

// Channel bandwidth of nc communication blocks moving `split` scattered
// bytes: min over the per-block sustainable rate and the port capacity,
// each blended across tiers.
double ScatteredChannelBandwidth(const TierSplit& split,
                                 const ClusterSpec& cluster, int nc) {
  const LinkSpec& intra = cluster.link;
  const LinkSpec& inter = cluster.inter_link;
  const double per_block = HarmonicBlend(
      {{split.intra, intra.per_block_bandwidth_scattered_bytes_per_us},
       {split.inter, inter.per_block_bandwidth_scattered_bytes_per_us}},
      intra.per_block_bandwidth_scattered_bytes_per_us);
  const double port =
      HarmonicBlend({{split.intra, intra.bandwidth_bytes_per_us},
                     {split.inter, inter.bandwidth_bytes_per_us}},
                    intra.bandwidth_bytes_per_us);
  return std::min(static_cast<double>(nc) * per_block, port);
}

double TierLatencyUs(const TierSplit& split, const ClusterSpec& cluster) {
  return split.inter > 0.0
             ? std::max(cluster.link.latency_us, cluster.inter_link.latency_us)
             : cluster.link.latency_us;
}

}  // namespace

FusedKernelResult SimulateLayer0Fused(const RoutePlan& plan, int rank,
                                      const OpCostModel& costs,
                                      const FusedKernelConfig& config) {
  const Placement& placement = plan.placement();
  const int group = placement.EpGroupOfRank(rank);
  const int ep = placement.parallel().ep;
  const RankPlan& rank_plan = plan.ForRank(rank);
  const int64_t out_cols = placement.HiddenPerTpRank();
  const int64_t n_embed = placement.model().embedding;
  const double row_bytes = static_cast<double>(n_embed) * costs.bytes_per_element();
  const LinkSpec& link = costs.cluster().link;

  COMET_CHECK_GT(config.total_blocks, 0);
  COMET_CHECK_GE(config.comm_blocks, 0);
  COMET_CHECK_LT(config.comm_blocks, config.total_blocks);

  const Layer0Schedule schedule =
      BuildLayer0Schedule(rank_plan, group, ep, out_cols, config.tile_m,
                          config.tile_n, config.reschedule);

  // Remote bytes per row chunk (split by fabric tier), in tile first-use
  // order.
  const ClusterSpec& cluster = costs.cluster();
  const int lane = placement.TpLaneOfRank(rank);
  std::map<ChunkKey, TierSplit> chunk_remote_bytes;
  std::vector<ChunkKey> chunk_order;
  TierSplit total_split;
  for (const TileRef& tile : schedule.tiles) {
    const ChunkKey key{tile.expert_local, tile.row_begin};
    if (chunk_remote_bytes.count(key)) {
      continue;
    }
    const auto& rows = rank_plan.experts[static_cast<size_t>(tile.expert_local)].rows;
    const auto& order = schedule.row_order[static_cast<size_t>(tile.expert_local)];
    TierSplit remote;
    for (int64_t i = tile.row_begin; i < tile.row_end; ++i) {
      const ExpertRow& row =
          rows[static_cast<size_t>(order[static_cast<size_t>(i)])];
      if (row.source_group == group) {
        continue;
      }
      const int src_rank = placement.RankOf(row.source_group, lane);
      if (cluster.SameNode(rank, src_rank)) {
        remote.intra += row_bytes;
      } else {
        remote.inter += row_bytes;
      }
    }
    chunk_remote_bytes[key] = remote;
    total_split.intra += remote.intra;
    total_split.inter += remote.inter;
    chunk_order.push_back(key);
  }

  FusedKernelResult result;
  result.comm_bytes = total_split.intra + total_split.inter;

  std::map<ChunkKey, double> chunk_arrival;
  const double total_comm_bytes = result.comm_bytes;

  if (config.vertical_fusion) {
    // Every block fetches its own tile's rows inline: column tiles of the
    // same row chunk re-fetch the rows (the redundant-access problem of
    // vertical fusion), and the broken async pipeline slows the math itself.
    std::vector<SlotTask> tasks;
    tasks.reserve(schedule.tiles.size());
    const double tile_us =
        costs.gemm().TileTimeUs(n_embed, config.tile_m, config.tile_n) *
        (1.0 + config.vertical_fusion_penalty);
    for (const TileRef& tile : schedule.tiles) {
      const TierSplit& chunk =
          chunk_remote_bytes[ChunkKey{tile.expert_local, tile.row_begin}];
      const double total = chunk.intra + chunk.inter;
      const double fetch =
          total > 0.0
              ? total / HarmonicBlend(
                            {{chunk.intra,
                              link.per_block_bandwidth_scattered_bytes_per_us},
                             {chunk.inter,
                              cluster.inter_link
                                  .per_block_bandwidth_scattered_bytes_per_us}},
                            link.per_block_bandwidth_scattered_bytes_per_us)
              : 0.0;
      tasks.push_back(SlotTask{0.0, tile_us + fetch});
    }
    const SlotSchedule sched = ScheduleInOrder(tasks, config.total_blocks);
    result.compute_makespan_us = sched.makespan_us;
    result.comm_makespan_us = sched.makespan_us;
    result.stall_us = sched.stall_us;
    result.duration_us = sched.makespan_us;
    for (size_t i = 0; i < tasks.size(); ++i) {
      result.timeline.Add("l0-tile", OpCategory::kLayer0Comp, 0,
                          sched.tasks[i].start_us, sched.tasks[i].end_us);
    }
    return result;
  }

  COMET_CHECK(total_comm_bytes == 0.0 || config.comm_blocks > 0)
      << "remote tokens but no communication blocks";

  // Token delivery: FIFO channel at the aggregate rate of the nc blocks,
  // tier-blended on multi-node clusters.
  if (total_comm_bytes > 0.0) {
    const double bw =
        ScatteredChannelBandwidth(total_split, cluster, config.comm_blocks);
    BandwidthQueue channel(bw, TierLatencyUs(total_split, cluster));
    std::vector<TransferJob> jobs;
    std::vector<ChunkKey> job_keys;
    for (const ChunkKey& key : chunk_order) {
      const TierSplit& chunk = chunk_remote_bytes[key];
      const double bytes = chunk.intra + chunk.inter;
      if (bytes > 0.0) {
        jobs.push_back(TransferJob{0.0, bytes});
        job_keys.push_back(key);
      }
    }
    const auto deliveries = channel.Schedule(jobs);
    for (size_t i = 0; i < deliveries.size(); ++i) {
      chunk_arrival[job_keys[i]] = deliveries[i].end_us;
      result.comm_makespan_us =
          std::max(result.comm_makespan_us, deliveries[i].end_us);
      result.timeline.Add("l0-recv", OpCategory::kLayer0Comm, 1,
                          deliveries[i].start_us, deliveries[i].end_us);
    }
  }

  // Compute side: in-order tile issue on the np GEMM blocks.
  std::vector<SlotTask> tasks;
  tasks.reserve(schedule.tiles.size());
  const double tile_us =
      costs.gemm().TileTimeUs(n_embed, config.tile_m, config.tile_n);
  for (const TileRef& tile : schedule.tiles) {
    double ready = 0.0;
    const auto it = chunk_arrival.find(ChunkKey{tile.expert_local, tile.row_begin});
    if (it != chunk_arrival.end()) {
      ready = it->second;
    }
    tasks.push_back(SlotTask{ready, tile_us});
  }
  const int np = config.total_blocks - config.comm_blocks;
  const SlotSchedule sched = ScheduleInOrder(tasks, np);
  result.compute_makespan_us = sched.makespan_us;
  result.stall_us = sched.stall_us;
  result.duration_us = std::max(sched.makespan_us, result.comm_makespan_us);
  for (size_t i = 0; i < tasks.size(); ++i) {
    result.timeline.Add("l0-tile", OpCategory::kLayer0Comp, 0,
                        sched.tasks[i].start_us, sched.tasks[i].end_us);
  }
  return result;
}

FusedKernelResult SimulateLayer1Fused(const RoutePlan& plan, int rank,
                                      const OpCostModel& costs,
                                      const FusedKernelConfig& config) {
  const Placement& placement = plan.placement();
  const RankPlan& rank_plan = plan.ForRank(rank);
  const int64_t n_embed = placement.model().embedding;
  const int64_t k_depth = placement.HiddenPerTpRank();
  const double elt = costs.bytes_per_element();
  const LinkSpec& link = costs.cluster().link;

  COMET_CHECK_GT(config.total_blocks, 0);
  COMET_CHECK_GE(config.comm_blocks, 0);
  COMET_CHECK_LT(config.comm_blocks, config.total_blocks);

  const Layer1Schedule schedule = BuildLayer1Schedule(
      rank_plan, n_embed, config.tile_m, config.tile_n, config.reschedule);

  // Communication volume: remote partial rows return to their home group
  // (scattered all-to-all writes, split by fabric tier) plus the TP
  // reduce-scatter share (contiguous; crosses nodes only when the TP group
  // spans nodes).
  const ClusterSpec& cluster = costs.cluster();
  const int lane = placement.TpLaneOfRank(rank);
  const int group = placement.EpGroupOfRank(rank);
  const double row_bytes = static_cast<double>(n_embed) * elt;
  TierSplit ep_split;
  for (const auto& slice : rank_plan.experts) {
    for (const ExpertRow& row : slice.rows) {
      if (row.source_group == group) {
        continue;
      }
      const int dst = placement.RankOf(row.source_group, lane);
      if (cluster.SameNode(rank, dst)) {
        ep_split.intra += row_bytes;
      } else {
        ep_split.inter += row_bytes;
      }
    }
  }
  const double ep_bytes_total = ep_split.intra + ep_split.inter;
  const double rs_bytes_total = plan.TpReduceScatterBytesPerRank(row_bytes);
  const int tp = placement.parallel().tp;
  const bool tp_group_spans_nodes =
      tp > 1 && !cluster.SameNode(placement.RankOf(group, 0),
                                  placement.RankOf(group, tp - 1));
  const double total_comm = ep_bytes_total + rs_bytes_total;

  FusedKernelResult result;
  result.comm_bytes = total_comm;

  const double tile_us =
      costs.gemm().TileTimeUs(k_depth, config.tile_m, config.tile_n);
  const int64_t panels = schedule.num_col_panels;

  if (config.vertical_fusion) {
    std::vector<SlotTask> tasks;
    tasks.reserve(schedule.tiles.size());
    const double per_tile_comm =
        schedule.tiles.empty()
            ? 0.0
            : total_comm / static_cast<double>(schedule.tiles.size()) /
                  link.per_block_bandwidth_scattered_bytes_per_us;
    for (size_t i = 0; i < schedule.tiles.size(); ++i) {
      tasks.push_back(SlotTask{
          0.0, tile_us * (1.0 + config.vertical_fusion_penalty) + per_tile_comm});
    }
    const SlotSchedule sched = ScheduleInOrder(tasks, config.total_blocks);
    result.compute_makespan_us = sched.makespan_us;
    result.comm_makespan_us = sched.makespan_us;
    result.duration_us = sched.makespan_us;
    result.stall_us = sched.stall_us;
    for (size_t i = 0; i < tasks.size(); ++i) {
      result.timeline.Add("l1-tile", OpCategory::kLayer1Comp, 0,
                          sched.tasks[i].start_us, sched.tasks[i].end_us);
    }
    return result;
  }

  COMET_CHECK(total_comm == 0.0 || config.comm_blocks > 0)
      << "layer1 traffic but no communication blocks";

  // Compute: all tiles ready at 0; order decides when panels complete.
  std::vector<SlotTask> tasks(schedule.tiles.size(), SlotTask{0.0, tile_us});
  const int np = config.total_blocks - config.comm_blocks;
  const SlotSchedule sched = ScheduleInOrder(tasks, np);
  result.compute_makespan_us = sched.makespan_us;
  result.stall_us = sched.stall_us;
  for (size_t i = 0; i < tasks.size(); ++i) {
    result.timeline.Add("l1-tile", OpCategory::kLayer1Comp, 0,
                        sched.tasks[i].start_us, sched.tasks[i].end_us);
  }

  // Panel completion times gate the reduce + write/send of those columns.
  std::vector<double> panel_done(static_cast<size_t>(panels), 0.0);
  for (size_t i = 0; i < schedule.tiles.size(); ++i) {
    const int64_t p = schedule.tiles[i].col_begin / config.tile_n;
    panel_done[static_cast<size_t>(p)] =
        std::max(panel_done[static_cast<size_t>(p)], sched.tasks[i].end_us);
  }

  double comm_end = 0.0;
  if (total_comm > 0.0) {
    const LinkSpec& rs_link =
        tp_group_spans_nodes ? cluster.inter_link : cluster.link;
    const double per_block = HarmonicBlend(
        {{ep_split.intra, link.per_block_bandwidth_scattered_bytes_per_us},
         {ep_split.inter,
          cluster.inter_link.per_block_bandwidth_scattered_bytes_per_us},
         {rs_bytes_total, rs_link.per_block_bandwidth_bytes_per_us}},
        link.per_block_bandwidth_bytes_per_us);
    const double port = HarmonicBlend(
        {{ep_split.intra + (tp_group_spans_nodes ? 0.0 : rs_bytes_total),
          link.bandwidth_bytes_per_us},
         {ep_split.inter + (tp_group_spans_nodes ? rs_bytes_total : 0.0),
          cluster.inter_link.bandwidth_bytes_per_us}},
        link.bandwidth_bytes_per_us);
    const double bw =
        std::min(static_cast<double>(config.comm_blocks) * per_block, port);
    TierSplit latency_split;
    latency_split.inter =
        ep_split.inter + (tp_group_spans_nodes ? rs_bytes_total : 0.0);
    BandwidthQueue channel(bw, TierLatencyUs(latency_split, cluster));
    std::vector<TransferJob> jobs;
    jobs.reserve(static_cast<size_t>(panels));
    for (int64_t p = 0; p < panels; ++p) {
      const int64_t col_begin = p * config.tile_n;
      const int64_t col_end = std::min(col_begin + config.tile_n, n_embed);
      const double frac = static_cast<double>(col_end - col_begin) /
                          static_cast<double>(n_embed);
      jobs.push_back(TransferJob{panel_done[static_cast<size_t>(p)],
                                 total_comm * frac});
    }
    const auto sends = channel.Schedule(jobs);
    for (const auto& s : sends) {
      comm_end = std::max(comm_end, s.end_us);
      result.timeline.Add("l1-send", OpCategory::kLayer1Comm, 1, s.start_us,
                          s.end_us);
    }
  }
  result.comm_makespan_us = comm_end;
  result.duration_us = std::max(result.compute_makespan_us, comm_end);
  return result;
}

}  // namespace comet
