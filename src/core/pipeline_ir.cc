#include "core/pipeline_ir.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace comet {
namespace {

bool RoleIndependent(AxisRole role) {
  return role == AxisRole::kParallel || role == AxisRole::kGather;
}

AxisRole UseRole(const TensorUse& use, DecomposeDim dim) {
  return dim == DecomposeDim::kM ? use.rows : use.cols;
}

// The consumer's role on `dim`, for the read of `tensor` inside `op`.
const TensorUse& FindRead(const PipelineOp& op, const std::string& tensor) {
  for (const TensorUse& use : op.reads) {
    if (use.tensor == tensor) {
      return use;
    }
  }
  COMET_CHECK(false) << "op " << op.name << " does not read " << tensor;
  return op.reads.front();  // unreachable
}

}  // namespace

std::string AxisRoleName(AxisRole role) {
  switch (role) {
    case AxisRole::kParallel:
      return "parallel";
    case AxisRole::kReduce:
      return "reduce";
    case AxisRole::kGather:
      return "gather";
    case AxisRole::kBroadcast:
      return "broadcast";
  }
  return "?";
}

std::string RescheduleHintName(RescheduleHint hint) {
  switch (hint) {
    case RescheduleHint::kArrivalOrder:
      return "arrival-order";
    case RescheduleHint::kPanelMajor:
      return "panel-major";
    case RescheduleHint::kNone:
      return "none";
  }
  return "?";
}

PipelineGraph& PipelineGraph::AddTensor(std::string name, int64_t rows,
                                        int64_t cols) {
  COMET_CHECK(!HasTensor(name)) << "duplicate tensor " << name;
  COMET_CHECK_GT(rows, 0);
  COMET_CHECK_GT(cols, 0);
  tensors_.push_back(TensorDecl{std::move(name), rows, cols});
  return *this;
}

PipelineGraph& PipelineGraph::AddOp(PipelineOp op) {
  COMET_CHECK(!op.name.empty()) << "op needs a name";
  ops_.push_back(std::move(op));
  return *this;
}

bool PipelineGraph::HasTensor(const std::string& name) const {
  return std::any_of(tensors_.begin(), tensors_.end(),
                     [&](const TensorDecl& t) { return t.name == name; });
}

const TensorDecl& PipelineGraph::Tensor(const std::string& name) const {
  for (const TensorDecl& t : tensors_) {
    if (t.name == name) {
      return t;
    }
  }
  COMET_CHECK(false) << "unknown tensor " << name;
  return tensors_.front();  // unreachable
}

const PipelineOp* PipelineGraph::Producer(const std::string& tensor) const {
  for (const PipelineOp& op : ops_) {
    for (const TensorUse& use : op.writes) {
      if (use.tensor == tensor) {
        return &op;
      }
    }
  }
  return nullptr;
}

std::vector<const PipelineOp*> PipelineGraph::Consumers(
    const std::string& tensor) const {
  std::vector<const PipelineOp*> consumers;
  for (const PipelineOp& op : ops_) {
    for (const TensorUse& use : op.reads) {
      if (use.tensor == tensor) {
        consumers.push_back(&op);
        break;
      }
    }
  }
  return consumers;
}

void PipelineGraph::Validate() const {
  for (const PipelineOp& op : ops_) {
    for (const TensorUse& use : op.reads) {
      COMET_CHECK(HasTensor(use.tensor))
          << "op " << op.name << " reads undeclared tensor " << use.tensor;
    }
    for (const TensorUse& use : op.writes) {
      COMET_CHECK(HasTensor(use.tensor))
          << "op " << op.name << " writes undeclared tensor " << use.tensor;
      for (const TensorUse& read : op.reads) {
        COMET_CHECK(read.tensor != use.tensor)
            << "op " << op.name << " reads and writes " << use.tensor
            << " (shared tensors are single-assignment)";
      }
    }
  }
  for (const TensorDecl& t : tensors_) {
    int writers = 0;
    for (const PipelineOp& op : ops_) {
      for (const TensorUse& use : op.writes) {
        if (use.tensor == t.name) {
          ++writers;
        }
      }
    }
    COMET_CHECK_LE(writers, 1) << "tensor " << t.name
                               << " written by " << writers << " ops";
  }
}

std::vector<ResolvedPipeline> ResolvePipelines(const PipelineGraph& graph) {
  graph.Validate();
  std::vector<ResolvedPipeline> result;
  for (const TensorDecl& tensor : graph.tensors()) {
    const PipelineOp* producer = graph.Producer(tensor.name);
    const auto consumers = graph.Consumers(tensor.name);
    if (producer == nullptr || consumers.empty()) {
      continue;  // graph input or output, not a shared tensor
    }

    ResolvedPipeline resolved;
    resolved.shared_tensor = tensor.name;
    resolved.producer = producer->name;
    for (const PipelineOp* c : consumers) {
      resolved.consumers.push_back(c->name);
      resolved.crosses_domains |= c->domain != producer->domain;
    }

    // Legal axes: every consumer independent along the axis (§3.1.1).
    for (const DecomposeDim dim : {DecomposeDim::kM, DecomposeDim::kN}) {
      const bool ok = std::all_of(
          consumers.begin(), consumers.end(), [&](const PipelineOp* c) {
            return RoleIndependent(UseRole(FindRead(*c, tensor.name), dim));
          });
      if (ok) {
        resolved.legal.push_back(dim);
      }
    }

    // Chosen axis: prefer one the producer can also emit incrementally, so
    // sub-tensors flow as soon as they are produced; tie-break toward M
    // (token granularity, the unit of data movement -- §2.2.1).
    const TensorUse* produced = nullptr;
    for (const TensorUse& use : producer->writes) {
      if (use.tensor == tensor.name) {
        produced = &use;
      }
    }
    COMET_CHECK(produced != nullptr);
    for (const DecomposeDim dim : resolved.legal) {
      if (RoleIndependent(UseRole(*produced, dim))) {
        resolved.chosen = dim;
        break;
      }
    }
    if (!resolved.chosen.has_value() && !resolved.legal.empty()) {
      resolved.chosen = resolved.legal.front();
    }

    if (resolved.chosen.has_value() && resolved.crosses_domains) {
      resolved.hint = producer->domain == OpDomain::kCommunication
                          ? RescheduleHint::kArrivalOrder
                          : RescheduleHint::kPanelMajor;
    }
    result.push_back(std::move(resolved));
  }
  return result;
}

std::vector<ResolvedPipeline> ResolveOverlapPipelines(
    const PipelineGraph& graph) {
  std::vector<ResolvedPipeline> all = ResolvePipelines(graph);
  std::erase_if(all, [](const ResolvedPipeline& p) {
    return !p.crosses_domains;
  });
  return all;
}

std::string DescribePipelines(const std::vector<ResolvedPipeline>& pipelines) {
  std::ostringstream os;
  for (const ResolvedPipeline& p : pipelines) {
    os << p.producer << " -> [" << p.shared_tensor << "] -> ";
    for (size_t i = 0; i < p.consumers.size(); ++i) {
      os << (i ? ", " : "") << p.consumers[i];
    }
    os << "\n  legal: ";
    if (p.legal.empty()) {
      os << "(none -- no fine-grained overlap possible)";
    }
    for (size_t i = 0; i < p.legal.size(); ++i) {
      os << (i ? ", " : "") << DecomposeDimName(p.legal[i]);
    }
    if (p.chosen.has_value()) {
      os << "\n  decompose along " << DecomposeDimName(*p.chosen)
         << ", reschedule: " << RescheduleHintName(p.hint);
    }
    os << "\n";
  }
  return os.str();
}

// ---- canonical MoE graphs ----------------------------------------------------

PipelineGraph MoeLayer0Graph(int64_t rows, int64_t embedding, int64_t hidden) {
  PipelineGraph g;
  g.AddTensor("tokens", rows, embedding)
      .AddTensor("A", rows, embedding)
      .AddTensor("H", rows, hidden)
      .AddTensor("Z", rows, hidden);
  // Dispatch routes whole token rows; row placement is gate-dependent.
  g.AddOp({.name = "dispatch",
           .domain = OpDomain::kCommunication,
           .reads = {{"tokens", AxisRole::kGather, AxisRole::kParallel}},
           .writes = {{"A", AxisRole::kGather, AxisRole::kParallel}}});
  // GroupGEMM: rows independent, reduction along the embedding axis.
  g.AddOp({.name = "group_gemm0",
           .domain = OpDomain::kCompute,
           .reads = {{"A", AxisRole::kParallel, AxisRole::kReduce}},
           .writes = {{"H", AxisRole::kParallel, AxisRole::kParallel}}});
  g.AddOp({.name = "activation",
           .domain = OpDomain::kCompute,
           .reads = {{"H", AxisRole::kParallel, AxisRole::kParallel}},
           .writes = {{"Z", AxisRole::kParallel, AxisRole::kParallel}}});
  return g;
}

PipelineGraph MoeLayer1Graph(int64_t rows, int64_t embedding, int64_t hidden) {
  PipelineGraph g;
  g.AddTensor("Z", rows, hidden)
      .AddTensor("Y", rows, embedding)
      .AddTensor("out", rows, embedding);
  g.AddOp({.name = "group_gemm1",
           .domain = OpDomain::kCompute,
           .reads = {{"Z", AxisRole::kParallel, AxisRole::kReduce}},
           .writes = {{"Y", AxisRole::kParallel, AxisRole::kParallel}}});
  // Top-k reduce + all-to-all: reduces GROUPS of rows (the topk partials of
  // each token), so rows are interdependent; columns independent.
  g.AddOp({.name = "topk_reduce_a2a",
           .domain = OpDomain::kCommunication,
           .reads = {{"Y", AxisRole::kReduce, AxisRole::kParallel}},
           .writes = {{"out", AxisRole::kGather, AxisRole::kParallel}}});
  return g;
}

PipelineGraph MoeBackwardKernelAGraph(int64_t rows, int64_t embedding,
                                      int64_t hidden) {
  PipelineGraph g;
  g.AddTensor("dout", rows, embedding)
      .AddTensor("dY", rows, embedding)
      .AddTensor("dZ", rows, hidden);
  g.AddOp({.name = "grad_dispatch",
           .domain = OpDomain::kCommunication,
           .reads = {{"dout", AxisRole::kGather, AxisRole::kParallel}},
           .writes = {{"dY", AxisRole::kGather, AxisRole::kParallel}}});
  g.AddOp({.name = "dgrad1_gemm",
           .domain = OpDomain::kCompute,
           .reads = {{"dY", AxisRole::kParallel, AxisRole::kReduce}},
           .writes = {{"dZ", AxisRole::kParallel, AxisRole::kParallel}}});
  return g;
}

PipelineGraph MoeBackwardKernelBGraph(int64_t rows, int64_t embedding,
                                      int64_t hidden) {
  PipelineGraph g;
  g.AddTensor("dH", rows, hidden)
      .AddTensor("dA", rows, embedding)
      .AddTensor("dinput", rows, embedding);
  g.AddOp({.name = "dgrad0_gemm",
           .domain = OpDomain::kCompute,
           .reads = {{"dH", AxisRole::kParallel, AxisRole::kReduce}},
           .writes = {{"dA", AxisRole::kParallel, AxisRole::kParallel}}});
  // Undispatch sums the topk slot gradients of each token (row groups) and
  // routes them home: rows interdependent, columns independent.
  g.AddOp({.name = "undispatch_reduce",
           .domain = OpDomain::kCommunication,
           .reads = {{"dA", AxisRole::kReduce, AxisRole::kParallel}},
           .writes = {{"dinput", AxisRole::kGather, AxisRole::kParallel}}});
  return g;
}

}  // namespace comet
