#include "core/reschedule.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace comet {
namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

int RowArrivalClass(int source_group, int ep_group, int ep) {
  COMET_CHECK_GE(source_group, 0);
  COMET_CHECK_LT(source_group, ep);
  COMET_CHECK_GE(ep_group, 0);
  COMET_CHECK_LT(ep_group, ep);
  // (source - self) mod ep is 0 for local rows and the ring distance
  // (1 .. ep-1) otherwise.
  return (source_group - ep_group + ep) % ep;
}

Layer0Schedule BuildLayer0Schedule(const RankPlan& plan, int ep_group, int ep,
                                   int64_t out_cols, int64_t tile_m,
                                   int64_t tile_n, bool reschedule) {
  COMET_CHECK_GT(tile_m, 0);
  COMET_CHECK_GT(tile_n, 0);
  COMET_CHECK_GT(out_cols, 0);

  Layer0Schedule schedule;
  schedule.tile_m = tile_m;
  schedule.tile_n = tile_n;
  schedule.row_order.resize(plan.experts.size());

  const int64_t col_tiles = CeilDiv(out_cols, tile_n);

  for (size_t le = 0; le < plan.experts.size(); ++le) {
    const auto& rows = plan.experts[le].rows;
    auto& order = schedule.row_order[le];
    order.resize(rows.size());
    std::iota(order.begin(), order.end(), 0);
    if (reschedule) {
      // Locals first, then peers in ring-arrival order; stable keeps token
      // order within a class.
      std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return RowArrivalClass(rows[static_cast<size_t>(a)].source_group,
                               ep_group, ep) <
               RowArrivalClass(rows[static_cast<size_t>(b)].source_group,
                               ep_group, ep);
      });
    }
  }

  // Enumerate tiles over the permuted rows.
  for (size_t le = 0; le < plan.experts.size(); ++le) {
    const auto& rows = plan.experts[le].rows;
    const auto& order = schedule.row_order[le];
    const int64_t m = static_cast<int64_t>(rows.size());
    for (int64_t r = 0; r < m; r += tile_m) {
      const int64_t r_end = std::min(r + tile_m, m);
      int arrival = 0;
      for (int64_t i = r; i < r_end; ++i) {
        arrival = std::max(
            arrival,
            RowArrivalClass(
                rows[static_cast<size_t>(order[static_cast<size_t>(i)])]
                    .source_group,
                ep_group, ep));
      }
      for (int64_t c = 0; c < col_tiles; ++c) {
        schedule.tiles.push_back(
            TileRef{static_cast<int64_t>(le), r, r_end, c * tile_n,
                    std::min((c + 1) * tile_n, out_cols), arrival});
      }
    }
  }

  if (reschedule) {
    // Readiness-ordered issue: tiles whose data arrives earlier run first.
    std::stable_sort(schedule.tiles.begin(), schedule.tiles.end(),
                     [](const TileRef& a, const TileRef& b) {
                       return a.arrival_class < b.arrival_class;
                     });
  }
  return schedule;
}

Layer1Schedule BuildLayer1Schedule(const RankPlan& plan, int64_t out_cols,
                                   int64_t tile_m, int64_t tile_n,
                                   bool reschedule) {
  COMET_CHECK_GT(tile_m, 0);
  COMET_CHECK_GT(tile_n, 0);
  COMET_CHECK_GT(out_cols, 0);

  Layer1Schedule schedule;
  schedule.tile_m = tile_m;
  schedule.tile_n = tile_n;
  schedule.num_col_panels = CeilDiv(out_cols, tile_n);

  if (reschedule) {
    // Column-panel-major across all experts (Figure 6).
    for (int64_t c = 0; c < schedule.num_col_panels; ++c) {
      for (size_t le = 0; le < plan.experts.size(); ++le) {
        const int64_t m =
            static_cast<int64_t>(plan.experts[le].rows.size());
        for (int64_t r = 0; r < m; r += tile_m) {
          schedule.tiles.push_back(TileRef{
              static_cast<int64_t>(le), r, std::min(r + tile_m, m),
              c * tile_n, std::min((c + 1) * tile_n, out_cols), 0});
        }
      }
    }
  } else {
    // Canonical expert-major order.
    for (size_t le = 0; le < plan.experts.size(); ++le) {
      const int64_t m = static_cast<int64_t>(plan.experts[le].rows.size());
      for (int64_t r = 0; r < m; r += tile_m) {
        for (int64_t c = 0; c < schedule.num_col_panels; ++c) {
          schedule.tiles.push_back(TileRef{
              static_cast<int64_t>(le), r, std::min(r + tile_m, m),
              c * tile_n, std::min((c + 1) * tile_n, out_cols), 0});
        }
      }
    }
  }
  return schedule;
}

}  // namespace comet
