#include "core/reschedule.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace comet {
namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

int RowArrivalClass(int source_group, int ep_group, int ep) {
  COMET_CHECK_GE(source_group, 0);
  COMET_CHECK_LT(source_group, ep);
  COMET_CHECK_GE(ep_group, 0);
  COMET_CHECK_LT(ep_group, ep);
  // (source - self) mod ep is 0 for local rows and the ring distance
  // (1 .. ep-1) otherwise.
  return (source_group - ep_group + ep) % ep;
}

void BuildLayer0ScheduleInto(const RankPlan& plan, int ep_group, int ep,
                             int64_t out_cols, int64_t tile_m, int64_t tile_n,
                             bool reschedule, ScheduleScratch& scratch,
                             Layer0Schedule* out) {
  COMET_CHECK_GT(tile_m, 0);
  COMET_CHECK_GT(tile_n, 0);
  COMET_CHECK_GT(out_cols, 0);

  out->tile_m = tile_m;
  out->tile_n = tile_n;
  // The local expert count is fixed for a given placement, so this resize
  // neither destroys inner vectors nor allocates once warmed.
  out->row_order.resize(plan.experts.size());
  out->tiles.clear();

  const int64_t col_tiles = CeilDiv(out_cols, tile_n);

  for (size_t le = 0; le < plan.experts.size(); ++le) {
    const auto& rows = plan.experts[le].rows;
    auto& order = out->row_order[le];
    order.resize(rows.size());
    if (reschedule) {
      // Stable counting sort by arrival class: locals first, then peers in
      // ring-arrival order, original token order kept within a class. The
      // placement loop walks rows in index order, so ties resolve exactly
      // like std::stable_sort over an iota permutation.
      scratch.class_count.assign(static_cast<size_t>(ep), 0);
      for (const auto& row : rows) {
        ++scratch.class_count[static_cast<size_t>(
            RowArrivalClass(row.source_group, ep_group, ep))];
      }
      scratch.class_offset.assign(static_cast<size_t>(ep), 0);
      for (int c = 1; c < ep; ++c) {
        scratch.class_offset[static_cast<size_t>(c)] =
            scratch.class_offset[static_cast<size_t>(c - 1)] +
            scratch.class_count[static_cast<size_t>(c - 1)];
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        const int cls = RowArrivalClass(rows[i].source_group, ep_group, ep);
        order[static_cast<size_t>(
            scratch.class_offset[static_cast<size_t>(cls)]++)] =
            static_cast<int64_t>(i);
      }
    } else {
      std::iota(order.begin(), order.end(), 0);
    }
  }

  // Enumerate tiles over the permuted rows.
  for (size_t le = 0; le < plan.experts.size(); ++le) {
    const auto& rows = plan.experts[le].rows;
    const auto& order = out->row_order[le];
    const int64_t m = static_cast<int64_t>(rows.size());
    for (int64_t r = 0; r < m; r += tile_m) {
      const int64_t r_end = std::min(r + tile_m, m);
      int arrival = 0;
      for (int64_t i = r; i < r_end; ++i) {
        arrival = std::max(
            arrival,
            RowArrivalClass(
                rows[static_cast<size_t>(order[static_cast<size_t>(i)])]
                    .source_group,
                ep_group, ep));
      }
      for (int64_t c = 0; c < col_tiles; ++c) {
        out->tiles.push_back(
            TileRef{static_cast<int64_t>(le), r, r_end, c * tile_n,
                    std::min((c + 1) * tile_n, out_cols), arrival});
      }
    }
  }

  if (reschedule) {
    // Readiness-ordered issue via a stable counting sort on arrival_class
    // (same permutation as a stable comparison sort).
    scratch.class_count.assign(static_cast<size_t>(ep), 0);
    for (const auto& tile : out->tiles) {
      ++scratch.class_count[static_cast<size_t>(tile.arrival_class)];
    }
    scratch.class_offset.assign(static_cast<size_t>(ep), 0);
    for (int c = 1; c < ep; ++c) {
      scratch.class_offset[static_cast<size_t>(c)] =
          scratch.class_offset[static_cast<size_t>(c - 1)] +
          scratch.class_count[static_cast<size_t>(c - 1)];
    }
    scratch.tiles_tmp.resize(out->tiles.size());
    for (const auto& tile : out->tiles) {
      scratch.tiles_tmp[static_cast<size_t>(
          scratch.class_offset[static_cast<size_t>(tile.arrival_class)]++)] =
          tile;
    }
    // Swap keeps both buffers' capacities warm for the next rebuild.
    out->tiles.swap(scratch.tiles_tmp);
  }
}

Layer0Schedule BuildLayer0Schedule(const RankPlan& plan, int ep_group, int ep,
                                   int64_t out_cols, int64_t tile_m,
                                   int64_t tile_n, bool reschedule) {
  Layer0Schedule schedule;
  ScheduleScratch scratch;
  BuildLayer0ScheduleInto(plan, ep_group, ep, out_cols, tile_m, tile_n,
                          reschedule, scratch, &schedule);
  return schedule;
}

void BuildLayer1ScheduleInto(const RankPlan& plan, int64_t out_cols,
                             int64_t tile_m, int64_t tile_n, bool reschedule,
                             Layer1Schedule* out) {
  COMET_CHECK_GT(tile_m, 0);
  COMET_CHECK_GT(tile_n, 0);
  COMET_CHECK_GT(out_cols, 0);

  out->tile_m = tile_m;
  out->tile_n = tile_n;
  out->num_col_panels = CeilDiv(out_cols, tile_n);
  out->tiles.clear();

  if (reschedule) {
    // Column-panel-major across all experts (Figure 6).
    for (int64_t c = 0; c < out->num_col_panels; ++c) {
      for (size_t le = 0; le < plan.experts.size(); ++le) {
        const int64_t m =
            static_cast<int64_t>(plan.experts[le].rows.size());
        for (int64_t r = 0; r < m; r += tile_m) {
          out->tiles.push_back(TileRef{
              static_cast<int64_t>(le), r, std::min(r + tile_m, m),
              c * tile_n, std::min((c + 1) * tile_n, out_cols), 0});
        }
      }
    }
  } else {
    // Canonical expert-major order.
    for (size_t le = 0; le < plan.experts.size(); ++le) {
      const int64_t m = static_cast<int64_t>(plan.experts[le].rows.size());
      for (int64_t r = 0; r < m; r += tile_m) {
        for (int64_t c = 0; c < out->num_col_panels; ++c) {
          out->tiles.push_back(TileRef{
              static_cast<int64_t>(le), r, std::min(r + tile_m, m),
              c * tile_n, std::min((c + 1) * tile_n, out_cols), 0});
        }
      }
    }
  }
}

Layer1Schedule BuildLayer1Schedule(const RankPlan& plan, int64_t out_cols,
                                   int64_t tile_m, int64_t tile_n,
                                   bool reschedule) {
  Layer1Schedule schedule;
  BuildLayer1ScheduleInto(plan, out_cols, tile_m, tile_n, reschedule,
                          &schedule);
  return schedule;
}

}  // namespace comet
