// COMET-scheduled backward pass of one MoE layer (training).
//
// The backward data flow is the exact structural mirror of the forward
// (moe/backward.h): the combine-grad dispatch followed by the layer1 dgrad
// GEMM is a communication->computation pipeline with the SAME shared-tensor
// shape as forward layer0 (rows of width N feeding a GroupGEMM with output
// width K/TP), and the layer0 dgrad GEMM followed by the undispatch is a
// computation->communication pipeline shaped like forward layer1. COMET's
// dependency resolving therefore applies unchanged:
//   * kernel A (grad dispatch + dgrad1): shared tensor decomposed along M,
//     dY rows sorted by source rank, tiles issued in arrival order;
//   * kernel B (dgrad0 + undispatch): decomposed along N, column-panel-major
//     tile order so partial dinput rows start flowing home early.
// The weight-gradient GEMMs (dW1 = Z^T dY, dW0 = A^T dH) have no
// communication dependency; COMET runs dW0 on the compute blocks while
// kernel B's communication tail drains -- one more fine-grained overlap the
// sequential baseline cannot express.
//
// The timing plane prices kernel A with SimulateLayer0Fused and kernel B
// with SimulateLayer1Fused (the dims coincide by the mirror argument above);
// the functional plane executes the real math tile-by-tile in the
// rescheduled order and must match ShardedReferenceMoeBackward bit-exactly.
// Weight-gradient reductions run over the CANONICAL (token-ascending) row
// order regardless of how rows were permuted for overlap, so the FP
// reduction tree never depends on the schedule.
#pragma once

#include <string>
#include <vector>

#include "core/comet_executor.h"
#include "moe/backward.h"

namespace comet {

struct BackwardExecution {
  std::string executor;
  // Populated in kFunctional mode only.
  MoeGradients grads;
  // Timeline of the critical (slowest) rank.
  Timeline timeline;
  double duration_us = 0.0;
  std::vector<double> per_rank_us;
};

// COMET backward: two mirrored fused kernels + wgrad GroupGEMMs, with dW0
// overlapped against kernel B's communication tail.
BackwardExecution CometBackward(const MoeWorkload& workload,
                                const ClusterSpec& cluster,
                                const std::vector<Tensor>& dout, ExecMode mode,
                                const CometOptions& options = {});

// Megatron-style sequential backward: one kernel per operator (all-to-all
// grad dispatch, dgrad1, wgrad1, activation backward, dgrad0, wgrad0,
// all-to-all return, TP reductions), no overlap, per-kernel host launches.
// The baseline the training-step bench compares against.
BackwardExecution SequentialBackward(const MoeWorkload& workload,
                                     const ClusterSpec& cluster,
                                     const std::vector<Tensor>& dout,
                                     ExecMode mode);

}  // namespace comet
