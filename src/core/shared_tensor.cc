#include "core/shared_tensor.h"

#include "util/check.h"

namespace comet {

std::string DecomposeDimName(DecomposeDim dim) {
  switch (dim) {
    case DecomposeDim::kM:
      return "M";
    case DecomposeDim::kN:
      return "N";
  }
  COMET_CHECK(false) << "unknown decompose dim";
  return "";
}

bool ConsumerIndependentAlong(TensorAccess consumer, DecomposeDim dim) {
  switch (consumer) {
    case TensorAccess::kGemmConsume:
      // GEMM multiplies-and-reduces along the embedding dimension; rows
      // (tokens) are independent, columns are not.
      return dim == DecomposeDim::kM;
    case TensorAccess::kTopKReduceConsume:
      // Top-k reduction sums groups of rows; columns are independent, rows
      // are not.
      return dim == DecomposeDim::kN;
    case TensorAccess::kRowwiseProduce:
    case TensorAccess::kGemmProduce:
      // Producers do not constrain decomposition; treat as independent both
      // ways so the consumer decides.
      return true;
  }
  COMET_CHECK(false) << "unknown access kind";
  return false;
}

DecomposeDim ResolveDecomposition(const SharedTensorSpec& spec) {
  const bool m_ok = ConsumerIndependentAlong(spec.consumer, DecomposeDim::kM);
  const bool n_ok = ConsumerIndependentAlong(spec.consumer, DecomposeDim::kN);
  COMET_CHECK(m_ok || n_ok)
      << "consumer admits no independent dimension; cannot overlap";
  // Prefer the token dimension when both qualify: it matches the data
  // movement granularity (tokens are rows).
  return m_ok ? DecomposeDim::kM : DecomposeDim::kN;
}

SharedTensorSpec Layer0SharedTensor(int64_t rows, int64_t cols) {
  return SharedTensorSpec{rows, cols, TensorAccess::kRowwiseProduce,
                          TensorAccess::kGemmConsume};
}

SharedTensorSpec Layer1SharedTensor(int64_t rows, int64_t cols) {
  return SharedTensorSpec{rows, cols, TensorAccess::kGemmProduce,
                          TensorAccess::kTopKReduceConsume};
}

}  // namespace comet
