// Adaptive thread-block assignment (paper §3.2.2).
//
// The optimal split nc (communication blocks) / np (GEMM blocks) depends on
// input length, parallel strategy and cluster. COMET ships pre-compiled
// kernels for a grid of division points; before deployment each setup is
// profiled and the best division point stored as metadata, which the runtime
// consults to pick the kernel. Here "profiling" runs the fused-kernel
// simulator across the candidate grid; the metadata store is the same
// artifact (a key-value file) the paper describes.
#pragma once

#include <string>
#include <vector>

#include "core/fused_kernel.h"
#include "util/metadata_store.h"

namespace comet {

enum class MoePipelineStage {
  kLayer0,
  kLayer1,
};

// One profiled candidate.
struct DivisionPointSample {
  int comm_blocks = 0;
  double duration_us = 0.0;
};

class AdaptiveAssigner {
 public:
  // `candidate_stride`: spacing of the pre-compiled nc grid (the paper ships
  // a finite kernel library, not a continuum).
  explicit AdaptiveAssigner(int candidate_stride = 2);

  // Candidate nc values for a GPU with `total_blocks` SMs.
  std::vector<int> Candidates(int total_blocks) const;

  // Simulates every candidate for this stage/rank; returns samples in
  // candidate order. `base` supplies tile sizes and flags; its comm_blocks
  // field is ignored.
  std::vector<DivisionPointSample> Sweep(MoePipelineStage stage,
                                         const RoutePlan& plan, int rank,
                                         const OpCostModel& costs,
                                         const FusedKernelConfig& base) const;

  // Cache key identifying a setup (cluster | model | M | TP | EP | stage).
  static std::string ProfileKey(const ClusterSpec& cluster,
                                const Placement& placement,
                                MoePipelineStage stage);

  // Returns the optimal nc, consulting / filling `store` when provided.
  int SelectCommBlocks(MoePipelineStage stage, const RoutePlan& plan, int rank,
                       const OpCostModel& costs, const FusedKernelConfig& base,
                       MetadataStore* store = nullptr) const;

 private:
  int candidate_stride_;
};

}  // namespace comet
