#include "core/comet_executor.h"

#include <algorithm>
#include <optional>
#include <string>

#include "comm/symmetric_heap.h"
#include "core/fused_kernel.h"
#include "core/reschedule.h"
#include "core/shared_tensor.h"
#include "moe/group_gemm.h"
#include "runtime/rank_group.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {
namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Thread-local combine row buffer (the f32 staging row the canonical
// combine reduction reads contributions into). File-scope accessor so
// PrepareServing can warm it on every pool worker and rank thread before a
// zero-allocation window opens.
std::vector<float>& CombineRowBuf() {
  thread_local std::vector<float> buf;
  return buf;
}

}  // namespace

// Per-rank timing-plane workspaces: one fused-kernel workspace plus the two
// persistent results, reused every iteration.
struct CometExecutor::TimedScratch {
  struct RankSim {
    FusedKernelWorkspace ws;
    FusedKernelResult l0;
    FusedKernelResult l1;
    double gate = 0.0;
    double act = 0.0;
    double total = 0.0;
  };
  std::vector<RankSim> sims;
};

// Persistent functional-plane state: the symmetric heap (allocated at the
// serving bound and re-formatted per batch), per-rank schedule and tensor
// workspaces, and the parked rank threads.
struct CometExecutor::FunctionalScratch {
  std::optional<SymmetricHeap> heap;
  SymmetricBufferId in_buf = -1;
  SymmetricBufferId contrib_buf = -1;
  SymmetricBufferId contrib_sig = -1;
  // Bounds the heap was allocated for; a batch beyond them rebuilds it.
  int heap_world = 0;
  int64_t heap_group_tokens = 0;
  int64_t heap_topk = 0;
  int64_t heap_n_embed = 0;
  int64_t heap_hidden = 0;
  DType heap_dtype = DType::kF32;

  // Hot-expert replica weight slabs: one (W0, W1) buffer pair per replica
  // slot, allocated with the heap when max_replicated_experts > 0. Slab
  // CONTENTS persist across iterations (no per-batch ResizeRows); a promote
  // overwrites them, a retire merely marks the slot free. `slots` mirrors
  // the tracker's view so the weight fetch can assert plan and slab agree.
  struct ReplicaSlot {
    int64_t expert = -1;
    int ep_group = -1;
  };
  std::vector<SymmetricBufferId> w0_slab;
  std::vector<SymmetricBufferId> w1_slab;
  std::vector<ReplicaSlot> slots;

  struct RankScratch {
    ScheduleScratch sched;
    Layer0Schedule schedule0;
    Layer1Schedule schedule1;
    std::vector<Tensor> a_in;
    std::vector<Tensor> h_mid;
    std::vector<Tensor> y_out;
    GroupGemmProblem problem0;
    GroupGemmProblem problem1;
  };
  std::vector<RankScratch> ranks;
  PersistentRankGroup group;
};

struct CometExecutor::ServingState {
  TimedScratch timed;
  FunctionalScratch fn;
  std::vector<NcMemoEntry> nc_memo;
};

CometExecutor::CometExecutor(CometOptions options)
    : options_(std::move(options)) {
  COMET_CHECK_GT(options_.tile_m, 0);
  COMET_CHECK_GT(options_.tile_n, 0);
  COMET_CHECK_GE(options_.fixed_comm_blocks, 0);
  COMET_CHECK_GT(options_.signal_wait_timeout_ms, 0);
  COMET_CHECK_GE(options_.max_replicated_experts, 0);
}

CometExecutor::~CometExecutor() = default;

CometExecutor::ServingHeapStats CometExecutor::serving_heap_stats() const {
  ServingHeapStats stats;
  if (serving_ != nullptr && serving_->fn.heap.has_value()) {
    const SymmetricHeap& heap = *serving_->fn.heap;
    stats.total_traffic_bytes = heap.TotalTraffic();
    stats.rows_verified = static_cast<uint64_t>(heap.rows_verified());
    stats.rows_corrupted = static_cast<uint64_t>(heap.rows_corrupted());
  }
  return stats;
}

std::string CometExecutor::name() const {
  if (!options_.name_override.empty()) {
    return options_.name_override;
  }
  std::string n = "Comet";
  if (!options_.reschedule) {
    n += "-noresched";
  }
  if (!options_.specialized) {
    n += "-vertical";
  }
  if (!options_.adaptive) {
    n += "-fixed";
  }
  return n;
}

bool CometExecutor::Supports(const ParallelConfig&) const { return true; }

LayerExecution CometExecutor::Run(const MoeWorkload& workload,
                                  const ClusterSpec& cluster, ExecMode mode) {
  return RunWithCache(workload, cluster, mode, options_.profile_cache);
}

LayerExecution CometExecutor::RunBatch(const MoeWorkload& workload,
                                       const ClusterSpec& cluster,
                                       ExecMode mode) {
  return RunWithCache(workload, cluster, mode,
                      options_.profile_cache != nullptr
                          ? options_.profile_cache
                          : &batch_profile_cache_);
}

LayerExecution CometExecutor::RunWithCache(const MoeWorkload& workload,
                                           const ClusterSpec& cluster,
                                           ExecMode mode,
                                           MetadataStore* cache) {
  COMET_CHECK_EQ(cluster.world_size, workload.world())
      << "cluster and workload world sizes disagree";
  // Caps every ParallelFor this run issues -- including the whole-matrix
  // Gemm/activation wrappers called indirectly -- so num_threads = 1 really
  // is the old serial behavior end to end.
  ScopedThreadLimit thread_limit(options_.num_threads);
  // Sanity-check the dependency analysis: layer0 decomposes along M,
  // layer1 along N (paper §3.1.1). This is the analysis the schedules below
  // rely on; run it so a future operator change trips loudly.
  const int64_t shared_rows =
      workload.placement.total_tokens() * workload.model().topk;
  COMET_CHECK(ResolveDecomposition(Layer0SharedTensor(
                  shared_rows, workload.model().embedding)) ==
              DecomposeDim::kM);
  COMET_CHECK(ResolveDecomposition(Layer1SharedTensor(
                  shared_rows, workload.model().embedding)) ==
              DecomposeDim::kN);

  LayerExecution out;
  out.executor = name();
  TimedScratch timed;
  RunTimedInto(workload, cluster, out, cache, timed, nullptr);
  if (mode == ExecMode::kFunctional) {
    FunctionalScratch fn;
    RunFunctionalInto(workload, out, fn);
  }
  return out;
}

void CometExecutor::PrepareServing(const Placement& max_placement,
                                   const ClusterSpec& cluster) {
  COMET_CHECK_EQ(cluster.world_size, max_placement.world());
  // Resolve concurrency and warm thread-locals under the same thread limit
  // the iterations will install.
  ScopedThreadLimit thread_limit(options_.num_threads);

  serving_ = std::make_unique<ServingState>();
  ServingState& state = *serving_;
  const int world = max_placement.world();
  const int64_t total_tokens = max_placement.total_tokens();
  const int64_t n_embed = max_placement.model().embedding;
  const int64_t hidden = max_placement.HiddenPerTpRank();
  const int64_t epg = max_placement.ExpertsPerGroup();
  const int ep = max_placement.parallel().ep;
  state.nc_memo.reserve(64);

  // ---- timing plane: fused-kernel workspaces at their analytic bounds -------
  // Worst-case rows per expert is the whole batch (every token may pick the
  // same expert); chunk/tile counts follow from the tile geometry. These are
  // over-approximations -- capacity is cheap, a mid-window realloc is not.
  const int64_t max_rows = total_tokens;
  // Every rank's plan carries epg home slices plus (with replication on)
  // max_replicated_experts replica slices -- always, active or not -- so all
  // per-slice workspaces size at the combined bound.
  const int64_t slices_max = epg + options_.max_replicated_experts;
  const int64_t chunks_max = slices_max * CeilDiv(max_rows, options_.tile_m);
  const int64_t col_tiles0 = CeilDiv(hidden, options_.tile_n);
  const int64_t col_tiles1 = CeilDiv(n_embed, options_.tile_n);
  const int64_t tiles_max = chunks_max * std::max(col_tiles0, col_tiles1);
  state.timed.sims.resize(static_cast<size_t>(world));
  for (auto& sim : state.timed.sims) {
    FusedKernelWorkspace& ws = sim.ws;
    ws.schedule_scratch.class_count.reserve(static_cast<size_t>(ep));
    ws.schedule_scratch.class_offset.reserve(static_cast<size_t>(ep));
    ws.schedule_scratch.tiles_tmp.reserve(static_cast<size_t>(tiles_max));
    ws.layer0.row_order.resize(static_cast<size_t>(slices_max));
    for (auto& order : ws.layer0.row_order) {
      order.reserve(static_cast<size_t>(max_rows));
    }
    ws.layer0.tiles.reserve(static_cast<size_t>(tiles_max));
    ws.layer1.tiles.reserve(static_cast<size_t>(tiles_max));
    ws.chunk_base.reserve(static_cast<size_t>(slices_max));
    ws.chunk_seen.reserve(static_cast<size_t>(chunks_max));
    ws.chunk_intra.reserve(static_cast<size_t>(chunks_max));
    ws.chunk_inter.reserve(static_cast<size_t>(chunks_max));
    ws.chunk_arrival.reserve(static_cast<size_t>(chunks_max));
    ws.chunk_order.reserve(static_cast<size_t>(chunks_max));
    ws.tasks.reserve(static_cast<size_t>(tiles_max));
    ws.jobs.reserve(static_cast<size_t>(std::max(chunks_max, col_tiles1)));
    ws.job_chunks.reserve(static_cast<size_t>(chunks_max));
    ws.transfers.reserve(static_cast<size_t>(std::max(chunks_max, col_tiles1)));
    ws.slot_heap.reserve(static_cast<size_t>(cluster.gpu.num_sms));
    ws.panel_done.reserve(static_cast<size_t>(col_tiles1));
    ws.slot_schedule.tasks.reserve(static_cast<size_t>(tiles_max));
    sim.l0.timeline.Clear();
    sim.l1.timeline.Clear();
  }

  // ---- functional plane: heap at bounds + per-rank tensor slabs -------------
  EnsureFunctionalCapacity(state.fn, max_placement);
  for (auto& rs : state.fn.ranks) {
    rs.sched.class_count.reserve(static_cast<size_t>(ep));
    rs.sched.class_offset.reserve(static_cast<size_t>(ep));
    rs.sched.tiles_tmp.reserve(static_cast<size_t>(tiles_max));
    rs.schedule0.row_order.resize(static_cast<size_t>(slices_max));
    for (auto& order : rs.schedule0.row_order) {
      order.reserve(static_cast<size_t>(max_rows));
    }
    rs.schedule0.tiles.reserve(static_cast<size_t>(tiles_max));
    rs.schedule1.tiles.reserve(static_cast<size_t>(tiles_max));
    rs.a_in.resize(static_cast<size_t>(slices_max));
    rs.h_mid.resize(static_cast<size_t>(slices_max));
    rs.y_out.resize(static_cast<size_t>(slices_max));
    for (int64_t le = 0; le < slices_max; ++le) {
      rs.a_in[static_cast<size_t>(le)].Reserve(max_rows * n_embed);
      rs.h_mid[static_cast<size_t>(le)].Reserve(max_rows * hidden);
      rs.y_out[static_cast<size_t>(le)].Reserve(max_rows * n_embed);
    }
    rs.problem0.a.reserve(static_cast<size_t>(slices_max));
    rs.problem0.b.reserve(static_cast<size_t>(slices_max));
    rs.problem0.c.reserve(static_cast<size_t>(slices_max));
    rs.problem1.a.reserve(static_cast<size_t>(slices_max));
    rs.problem1.b.reserve(static_cast<size_t>(slices_max));
    rs.problem1.c.reserve(static_cast<size_t>(slices_max));
  }

  // ---- warm thread-local scratch on every thread that can touch it ----------
  // Pool workers run GEMM tiles and row gathers; rank threads additionally
  // run them inline (nested regions execute on the caller) and stage combine
  // rows. Warm all three TLS buffers everywhere.
  const int64_t max_gemm_k = std::max(n_embed, hidden);
  const auto warm = [&](int) {
    WarmGemmScratch(max_gemm_k);
    // Wire scratch covers undispatch rows (n_embed) and replica-slab weight
    // rows (up to hidden), so warm at the wider bound.
    WarmHeapWireScratch(max_gemm_k);
    CombineRowBuf().reserve(static_cast<size_t>(n_embed));
  };
  GlobalThreadPool().ForEachWorker(warm);
  warm(0);  // the calling thread executes chunk 0 of every region
  state.fn.group.Configure(
      world, RankGroupOptions{.num_threads = options_.num_threads});
  state.fn.group.Run(warm);
}

void CometExecutor::RunBatchInto(const MoeWorkload& workload,
                                 const ClusterSpec& cluster, ExecMode mode,
                                 LayerExecution* out) {
  COMET_CHECK(out != nullptr);
  COMET_CHECK(serving_ != nullptr)
      << "RunBatchInto requires PrepareServing first";
  COMET_CHECK_EQ(cluster.world_size, workload.world())
      << "cluster and workload world sizes disagree";
  ScopedThreadLimit thread_limit(options_.num_threads);
  MetadataStore* cache = options_.profile_cache != nullptr
                             ? options_.profile_cache
                             : &batch_profile_cache_;
  out->executor = name();
  RunTimedInto(workload, cluster, *out, cache, serving_->timed,
               &serving_->nc_memo);
  if (mode == ExecMode::kFunctional) {
    RunFunctionalInto(workload, *out, serving_->fn);
  }
}

void CometExecutor::RunTimedInto(const MoeWorkload& workload,
                                 const ClusterSpec& cluster,
                                 LayerExecution& out, MetadataStore* cache,
                                 TimedScratch& scratch,
                                 std::vector<NcMemoEntry>* nc_memo) {
  const OpCostModel costs(cluster);
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const int world = placement.world();

  FusedKernelConfig base;
  base.total_blocks = cluster.gpu.num_sms;
  base.tile_m = options_.tile_m;
  base.tile_n = options_.tile_n;
  base.reschedule = options_.reschedule;
  base.vertical_fusion = !options_.specialized;

  // Division points. The serving memo short-circuits the MetadataStore
  // round-trip (whose key is cluster | model | M | TP | EP | stage -- all
  // fixed for one serving executor except M) with a flat lookup on M.
  const NcMemoEntry* memo_hit = nullptr;
  if (nc_memo != nullptr) {
    for (const NcMemoEntry& e : *nc_memo) {
      if (e.total_tokens == placement.total_tokens()) {
        memo_hit = &e;
        break;
      }
    }
  }
  if (nc_memo != nullptr) {
    // Telemetry only: these never feed back into any decision.
    ++(memo_hit != nullptr ? profile_memo_hits_ : profile_memo_misses_);
  }
  if (memo_hit != nullptr) {
    last_nc0_ = memo_hit->nc0;
    last_nc1_ = memo_hit->nc1;
  } else {
    if (nc_memo != nullptr) {
      // First sight of this batch size: re-run the decomposition sanity
      // check RunWithCache performs on every call (warm-up only here).
      const int64_t shared_rows =
          placement.total_tokens() * placement.model().topk;
      COMET_CHECK(ResolveDecomposition(Layer0SharedTensor(
                      shared_rows, placement.model().embedding)) ==
                  DecomposeDim::kM);
      COMET_CHECK(ResolveDecomposition(Layer1SharedTensor(
                      shared_rows, placement.model().embedding)) ==
                  DecomposeDim::kN);
    }
    // Profile on the most loaded rank (the one that sets the makespan) and
    // use one division point everywhere, as the paper's pre-compiled kernel
    // selection does.
    int busiest = 0;
    for (int r = 1; r < world; ++r) {
      if (plan.ForRank(r).TotalRows() > plan.ForRank(busiest).TotalRows()) {
        busiest = r;
      }
    }
    const auto pick_nc = [&](MoePipelineStage stage) {
      if (base.vertical_fusion) {
        return 0;
      }
      if (!options_.adaptive) {
        return std::min(options_.fixed_comm_blocks, base.total_blocks - 1);
      }
      return assigner_.SelectCommBlocks(stage, plan, busiest, costs, base,
                                        cache);
    };
    last_nc0_ = pick_nc(MoePipelineStage::kLayer0);
    last_nc1_ = pick_nc(MoePipelineStage::kLayer1);
    if (nc_memo != nullptr) {
      nc_memo->push_back(
          NcMemoEntry{placement.total_tokens(), last_nc0_, last_nc1_});
    }
  }

  // Per-rank simulations are independent: fan them out across the pool and
  // reduce serially afterwards, so the simulated times and the critical-rank
  // timeline are identical at any thread count.
  scratch.sims.resize(static_cast<size_t>(world));
  ParallelFor(
      0, world, 1,
      [&](int64_t r) {
        TimedScratch::RankSim& sim = scratch.sims[static_cast<size_t>(r)];
        FusedKernelConfig config0 = base;
        config0.comm_blocks = last_nc0_;
        FusedKernelConfig config1 = base;
        config1.comm_blocks = last_nc1_;
        SimulateLayer0FusedInto(plan, static_cast<int>(r), costs, config0,
                                sim.ws, &sim.l0);
        SimulateLayer1FusedInto(plan, static_cast<int>(r), costs, config1,
                                sim.ws, &sim.l1);
        sim.gate = costs.GatingUs(placement.tokens_per_group(),
                                  placement.model().embedding,
                                  placement.model().num_experts);
        sim.act = costs.ActivationUs(plan.ForRank(static_cast<int>(r)).TotalRows(),
                                     placement.HiddenPerTpRank());
        // One host launch each for: gating, fused layer0, activation, fused
        // layer1. This is the entire host-side footprint of a COMET MoE layer.
        const double launches = 4.0 * costs.LaunchUs();
        sim.total = launches + sim.gate + sim.l0.duration_us + sim.act +
                    sim.l1.duration_us;
      });

  out.per_rank_us.assign(static_cast<size_t>(world), 0.0);
  int worst_rank = 0;
  double worst = -1.0;
  for (int r = 0; r < world; ++r) {
    const double total = scratch.sims[static_cast<size_t>(r)].total;
    out.per_rank_us[static_cast<size_t>(r)] = total;
    if (total > worst) {
      worst = total;
      worst_rank = r;
    }
  }
  // Rebuild the critical rank's timeline in place: host+gate, fused l0,
  // act, fused l1 in sequence.
  const TimedScratch::RankSim& sim =
      scratch.sims[static_cast<size_t>(worst_rank)];
  Timeline& tl = out.timeline;
  tl.Clear();
  double t = 0.0;
  tl.Add("launch", OpCategory::kHost, -1, t, t + 4.0 * costs.LaunchUs());
  t += 4.0 * costs.LaunchUs();
  tl.Add("gating", OpCategory::kGating, 0, t, t + sim.gate);
  t += sim.gate;
  tl.Merge(sim.l0.timeline, t);
  t += sim.l0.duration_us;
  tl.Add("activation", OpCategory::kActivation, 0, t, t + sim.act);
  t += sim.act;
  tl.Merge(sim.l1.timeline, t);
  out.duration_us = worst;
}

void CometExecutor::EnsureFunctionalCapacity(FunctionalScratch& scratch,
                                             const Placement& placement) {
  const int world = placement.world();
  const int64_t group_tokens = placement.tokens_per_group();
  const int64_t topk = placement.model().topk;
  const int64_t n_embed = placement.model().embedding;
  const int64_t hidden = placement.HiddenPerTpRank();
  const DType dtype = options_.compute_dtype;
  if (!scratch.heap.has_value() || scratch.heap_world != world ||
      scratch.heap_group_tokens < group_tokens || scratch.heap_topk != topk ||
      scratch.heap_n_embed != n_embed || scratch.heap_hidden != hidden ||
      scratch.heap_dtype != dtype) {
    scratch.heap.emplace(world,
                         HeapIntegrityOptions{options_.verify_transport,
                                              options_.corrupt_rate,
                                              options_.corrupt_seed});
    scratch.in_buf = scratch.heap->Allocate(
        "moe-input", Shape{group_tokens, n_embed}, dtype);
    scratch.contrib_buf = scratch.heap->Allocate(
        "moe-contrib", Shape{group_tokens * topk, n_embed}, dtype);
    // One arrival signal per contrib row per rank: the undispatch puts bump
    // it, the combine waits on it -- the NVSHMEM put-with-signal discipline
    // the real fused kernels use to gate consumption on delivery. Signal
    // arrays cannot resize (atomics), so they are sized at the bound; a
    // smaller batch simply leaves the tail words untouched at zero.
    scratch.contrib_sig =
        scratch.heap->AllocateSignals("moe-contrib-ready", group_tokens * topk);
    // Replica weight slabs, one (W0, W1) pair per slot. A heap rebuild
    // wipes slab contents, so every slot resets to free -- the serving
    // plane only rebuilds in PrepareServing, before any promotion.
    scratch.w0_slab.clear();
    scratch.w1_slab.clear();
    scratch.slots.clear();
    if (options_.max_replicated_experts > 0) {
      const size_t n_slots =
          static_cast<size_t>(options_.max_replicated_experts);
      scratch.w0_slab.reserve(n_slots);
      scratch.w1_slab.reserve(n_slots);
      for (size_t s = 0; s < n_slots; ++s) {
        scratch.w0_slab.push_back(
            scratch.heap->Allocate("replica-w0-slot" + std::to_string(s),
                                   Shape{n_embed, hidden}, dtype));
        scratch.w1_slab.push_back(
            scratch.heap->Allocate("replica-w1-slot" + std::to_string(s),
                                   Shape{hidden, n_embed}, dtype));
      }
      scratch.slots.assign(n_slots, FunctionalScratch::ReplicaSlot{});
    }
    scratch.heap_world = world;
    scratch.heap_group_tokens = group_tokens;
    scratch.heap_topk = topk;
    scratch.heap_n_embed = n_embed;
    scratch.heap_hidden = hidden;
    scratch.heap_dtype = dtype;
  }
  scratch.ranks.resize(static_cast<size_t>(world));
}

void CometExecutor::RunFunctionalInto(const MoeWorkload& workload,
                                      LayerExecution& out,
                                      FunctionalScratch& scratch) {
  COMET_CHECK(workload.weights != nullptr && !workload.inputs.empty())
      << "functional execution requires a materialized workload";
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const ModelConfig& model = placement.model();
  const int world = placement.world();
  const int tp = placement.parallel().tp;
  const int ep = placement.parallel().ep;
  const int64_t n_embed = model.embedding;
  const int64_t hidden = placement.HiddenPerTpRank();
  const int64_t topk = model.topk;
  const int64_t group_tokens = placement.tokens_per_group();
  // The precision plane: heap buffers and every GEMM/activation intermediate
  // live at this dtype; stores round (RNE), accumulation stays f32. The
  // workload must have been materialized at the same dtype -- quantizing
  // here instead would silently diverge from the reference's operands.
  const DType dtype = options_.compute_dtype;
  COMET_CHECK(workload.inputs[0].dtype() == dtype)
      << "workload materialized at " << DTypeName(workload.inputs[0].dtype())
      << " but compute_dtype is " << DTypeName(dtype)
      << " (set WorkloadOptions::dtype to match)";

  // Restore the persistent heap to exactly the observable state a freshly
  // constructed heap of this batch's shape would have: integrity re-armed
  // (checksums, valid flags and injector put-counts all reset), buffers
  // re-formatted to the batch's row counts, every signal word zero, traffic
  // matrix clear. For a cold scratch (the non-serving path) this is a no-op
  // on top of a genuinely fresh heap.
  EnsureFunctionalCapacity(scratch, placement);
  SymmetricHeap& heap = *scratch.heap;
  heap.SetIntegrity(HeapIntegrityOptions{options_.verify_transport,
                                         options_.corrupt_rate,
                                         options_.corrupt_seed});
  heap.ResizeRows(scratch.in_buf, group_tokens);
  heap.ResizeRows(scratch.contrib_buf, group_tokens * topk);
  heap.ResetSignals(scratch.contrib_sig);
  heap.ResetTraffic();
  const SymmetricBufferId in_buf = scratch.in_buf;
  const SymmetricBufferId contrib_buf = scratch.contrib_buf;
  const SymmetricBufferId contrib_sig = scratch.contrib_sig;

  for (int r = 0; r < world; ++r) {
    heap.Local(in_buf, r) =
        workload.inputs[static_cast<size_t>(placement.EpGroupOfRank(r))];
  }

  // --- layer0 + activation + layer1, per rank, in the rescheduled order ---
  //
  // Each rank is one rank-group task. In concurrent mode every rank runs on
  // its own (parked, persistent) thread, exchanging real rows through the
  // heap while peers are still computing -- the put-with-signal traffic
  // below is then genuine cross-thread synchronization, not an
  // after-the-fact assertion.
  const auto produce = [&](int r) {
    const int group = placement.EpGroupOfRank(r);
    const int lane = placement.TpLaneOfRank(r);
    const RankPlan& rank_plan = plan.ForRank(r);
    FunctionalScratch::RankScratch& rs =
        scratch.ranks[static_cast<size_t>(r)];

    // Weight operand for local slice `le`: home slices read the sharded
    // store; replica slices (index >= epg) read this rank's slab copy,
    // placed there by PromoteReplica. An inactive replica slice has zero
    // rows -- its operand is never touched by any tile -- so any valid
    // tensor stands in. The const Local read does not disturb transport
    // checksums (only writers invalidate).
    const int64_t epg = placement.ExpertsPerGroup();
    const auto weight_for = [&](size_t le, bool layer0) -> const Tensor* {
      const int64_t expert = rank_plan.experts[le].expert;
      if (static_cast<int64_t>(le) < epg) {
        return layer0 ? &workload.sharded_weights->W0Shard(expert, lane)
                      : &workload.sharded_weights->W1Shard(expert, lane);
      }
      if (expert < 0) {
        return layer0 ? &workload.sharded_weights->W0Shard(0, lane)
                      : &workload.sharded_weights->W1Shard(0, lane);
      }
      const size_t slot = le - static_cast<size_t>(epg);
      COMET_CHECK_LT(slot, scratch.slots.size())
          << "plan has replica slices but the executor was not configured "
             "with max_replicated_experts";
      COMET_CHECK_EQ(scratch.slots[slot].expert, expert)
          << "replica slot " << slot << " holds a different expert's weights";
      COMET_CHECK_EQ(scratch.slots[slot].ep_group, group)
          << "replica slot " << slot << " promoted onto a different group";
      const SymmetricHeap& cheap = heap;
      return layer0 ? &cheap.Local(scratch.w0_slab[slot], r)
                    : &cheap.Local(scratch.w1_slab[slot], r);
    };

    BuildLayer0ScheduleInto(rank_plan, group, ep, hidden, options_.tile_m,
                            options_.tile_n, options_.reschedule, rs.sched,
                            &rs.schedule0);
    const Layer0Schedule& schedule0 = rs.schedule0;

    // Materialize the layer0 shared tensor per expert with rows in the
    // permuted layout; remote rows travel through the symmetric heap. Rows
    // land in disjoint destination slots, so the gather fans out per row.
    // Workspace tensors are re-formatted in place; every row of every
    // intermediate is fully written below (gather -> GEMM tiles ->
    // activation), so stale contents never survive into a result.
    const size_t n_experts = rank_plan.experts.size();
    rs.a_in.resize(n_experts);
    rs.h_mid.resize(n_experts);
    rs.y_out.resize(n_experts);
    for (size_t le = 0; le < n_experts; ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule0.row_order[le];
      const int64_t rows = static_cast<int64_t>(slice.rows.size());
      Tensor& a = rs.a_in[le];
      a.ResetFormat2D(rows, n_embed, dtype);
      ParallelFor(
          0, static_cast<int64_t>(order.size()), 8,
          [&](int64_t pos) {
            const ExpertRow& row =
                slice.rows[static_cast<size_t>(order[static_cast<size_t>(pos)])];
            const int64_t src_local =
                row.token - placement.FirstTokenOfGroup(row.source_group);
            heap.CopyRow(in_buf, r,
                         placement.RankOf(row.source_group, lane), src_local,
                         a.row(pos));
          });
      rs.h_mid[le].ResetFormat2D(rows, hidden, dtype);
      rs.y_out[le].ResetFormat2D(rows, n_embed, dtype);
    }

    GroupGemmProblem& problem0 = rs.problem0;
    problem0.a.clear();
    problem0.b.clear();
    problem0.c.clear();
    for (size_t le = 0; le < n_experts; ++le) {
      problem0.a.push_back(&rs.a_in[le]);
      problem0.b.push_back(weight_for(le, /*layer0=*/true));
      problem0.c.push_back(&rs.h_mid[le]);
    }
    // Tiles write disjoint output patches: dispatch them across the pool in
    // any completion order without changing a single bit of the result.
    ParallelFor(
        0, static_cast<int64_t>(schedule0.tiles.size()), 1,
        [&](int64_t t) {
          const TileRef& tile = schedule0.tiles[static_cast<size_t>(t)];
          RunTile(problem0, GemmTileCoord{tile.expert_local, tile.row_begin,
                                          tile.row_end, tile.col_begin,
                                          tile.col_end});
        });
    for (auto& h : rs.h_mid) {
      ApplyActivation(h, workload.activation);
    }

    BuildLayer1ScheduleInto(rank_plan, n_embed, options_.tile_m,
                            options_.tile_n, options_.reschedule,
                            &rs.schedule1);
    const Layer1Schedule& schedule1 = rs.schedule1;
    GroupGemmProblem& problem1 = rs.problem1;
    problem1.a.clear();
    problem1.b.clear();
    problem1.c.clear();
    for (size_t le = 0; le < n_experts; ++le) {
      problem1.a.push_back(&rs.h_mid[le]);
      problem1.b.push_back(weight_for(le, /*layer0=*/false));
      problem1.c.push_back(&rs.y_out[le]);
    }
    ParallelFor(
        0, static_cast<int64_t>(schedule1.tiles.size()), 1,
        [&](int64_t t) {
          const TileRef& tile = schedule1.tiles[static_cast<size_t>(t)];
          RunTile(problem1, GemmTileCoord{tile.expert_local, tile.row_begin,
                                          tile.row_end, tile.col_begin,
                                          tile.col_end});
        });

    // Top-k undispatch: every partial output row returns (lane-matched) to
    // the token's home group, unweighted; weights are applied at the
    // canonical combine below. Each (token, slot) pair owns its destination
    // row and signal word, so the scatter parallelizes per row.
    for (size_t le = 0; le < n_experts; ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule0.row_order[le];
      ParallelFor(
          0, static_cast<int64_t>(order.size()), 8,
          [&](int64_t pos) {
            const ExpertRow& row =
                slice.rows[static_cast<size_t>(order[static_cast<size_t>(pos)])];
            const int dst = placement.RankOf(row.source_group, lane);
            const int64_t dst_row =
                (row.token - placement.FirstTokenOfGroup(row.source_group)) *
                    topk +
                row.slot;
            heap.PutRowWithSignal(contrib_buf, r, dst, dst_row,
                                  rs.y_out[le].row(pos), contrib_sig, dst_row);
          });
    }
  };

  // --- combine: canonical reduction (slot-major, TP-lane inner) on lane 0 ---
  //
  // The consume stage of each group's lane-0 rank. It first blocks on the
  // arrival signal of every expected contribution (the NVSHMEM wait_until
  // loop of the real combine kernel -- in concurrent mode producers on peer
  // threads are still streaming rows in), then reduces. The reduction order
  // is a pure function of (token, slot, lane), never of arrival order, so
  // serial, concurrent and any-thread-count runs are bit-identical.
  out.outputs.resize(static_cast<size_t>(ep));
  const auto consume = [&](int r) {
    if (placement.TpLaneOfRank(r) != 0) {
      return;
    }
    const int g = placement.EpGroupOfRank(r);
    const int reader = r;
    const int64_t first = placement.FirstTokenOfGroup(g);
    // Wait for delivery. Blocking waits stay on this rank's dedicated
    // thread -- they must never ride pool workers, or spinning consumers
    // could starve the producers' tile chunks out of the pool.
    for (int64_t t = 0; t < group_tokens; ++t) {
      const TokenRoute& route =
          workload.routing.tokens[static_cast<size_t>(first + t)];
      const int64_t slots = static_cast<int64_t>(route.experts.size());
      for (int64_t k = 0; k < slots; ++k) {
        for (int l = 0; l < tp; ++l) {
          heap.WaitUntilSignalGe(contrib_sig, placement.RankOf(g, l),
                                 t * topk + k, 1,
                                 options_.signal_wait_timeout_ms);
        }
      }
    }
    Tensor& result = out.outputs[static_cast<size_t>(g)];
    result.ResetFormat2D(group_tokens, n_embed, dtype);
    // Tokens reduce independently (one output row each); the slot-major,
    // TP-lane-inner order within a token is preserved inside the body.
    ParallelFor(
        0, group_tokens, 4,
        [&](int64_t t) {
          std::vector<float>& row_buf = CombineRowBuf();
          row_buf.resize(static_cast<size_t>(n_embed));
          // Accumulation starts from an explicitly zeroed row (the workspace
          // tensor carries the previous batch's bits).
          result.FillZeroRows(t, t + 1);
          const TokenRoute& route =
              workload.routing.tokens[static_cast<size_t>(first + t)];
          // Routes may carry fewer than topk entries (capacity-dropped
          // pairs); only written slots are consumed.
          const int64_t slots = static_cast<int64_t>(route.experts.size());
          for (int64_t k = 0; k < slots; ++k) {
            for (int l = 0; l < tp; ++l) {
              heap.WaitSignalGe(contrib_sig, placement.RankOf(g, l),
                                t * topk + k, 1);
              heap.CopyRow(contrib_buf, reader, placement.RankOf(g, l),
                           t * topk + k, row_buf);
              result.AccumulateRow(t, row_buf,
                                   route.weights[static_cast<size_t>(k)]);
            }
          }
          // f32 accumulation above, one rounding on store -- mirrors the
          // sharded reference's per-row output rounding exactly.
          result.QuantizeRow(t);
        });
  };

  // Configure resolves concurrency against the ambient thread limit exactly
  // like the one-shot RankGroup constructor did; with an unchanged shape it
  // is an allocation-free no-op, so steady-state iterations reuse the parked
  // rank threads.
  scratch.group.Configure(
      world, RankGroupOptions{.num_threads = options_.num_threads});
  scratch.group.Run(produce, consume);
}

void CometExecutor::PromoteReplica(int slot, int64_t expert, int ep_group,
                                   const Placement& placement,
                                   const ShardedExpertWeights& weights) {
  COMET_CHECK(serving_ != nullptr)
      << "PromoteReplica requires PrepareServing first";
  FunctionalScratch& fn = serving_->fn;
  COMET_CHECK_GE(slot, 0);
  COMET_CHECK_LT(slot, static_cast<int>(fn.slots.size()))
      << "replica slot beyond max_replicated_experts";
  FunctionalScratch::ReplicaSlot& state = fn.slots[static_cast<size_t>(slot)];
  COMET_CHECK_LT(state.expert, 0) << "replica slot " << slot << " is busy";
  COMET_CHECK_GE(expert, 0);
  COMET_CHECK_LT(expert, placement.model().num_experts);
  const int home = placement.EpGroupOfExpert(expert);
  COMET_CHECK_GE(ep_group, 0);
  COMET_CHECK_LT(ep_group, placement.parallel().ep);
  COMET_CHECK_NE(ep_group, home)
      << "replica of expert " << expert << " placed on its home group";
  SymmetricHeap& heap = *fn.heap;
  const SymmetricHeap& cheap = heap;  // const reads leave checksums intact
  const SymmetricBufferId b0 = fn.w0_slab[static_cast<size_t>(slot)];
  const SymmetricBufferId b1 = fn.w1_slab[static_cast<size_t>(slot)];
  // Lane-matched weight transfer: each target-group lane receives the
  // expert's shard for its lane from the matching home rank, row by row
  // over the symmetric heap (counted as fabric traffic like any other put).
  // PutRow rounds to the slab dtype -- the identity on already-quantized
  // shards -- so replica math runs on bit-identical operands.
  const int tp = placement.parallel().tp;
  for (int lane = 0; lane < tp; ++lane) {
    const int src = placement.RankOf(home, lane);
    const int dst = placement.RankOf(ep_group, lane);
    const Tensor& w0 = weights.W0Shard(expert, lane);
    const Tensor& w1 = weights.W1Shard(expert, lane);
    COMET_CHECK_EQ(w0.rows(), cheap.Local(b0, dst).rows());
    COMET_CHECK_EQ(w0.cols(), cheap.Local(b0, dst).cols());
    COMET_CHECK_EQ(w1.rows(), cheap.Local(b1, dst).rows());
    COMET_CHECK_EQ(w1.cols(), cheap.Local(b1, dst).cols());
    for (int64_t i = 0; i < w0.rows(); ++i) {
      heap.PutRow(b0, src, dst, i, w0.row(i));
    }
    for (int64_t i = 0; i < w1.rows(); ++i) {
      heap.PutRow(b1, src, dst, i, w1.row(i));
    }
  }
  state.expert = expert;
  state.ep_group = ep_group;
}

void CometExecutor::RetireReplica(int slot) {
  COMET_CHECK(serving_ != nullptr)
      << "RetireReplica requires PrepareServing first";
  FunctionalScratch& fn = serving_->fn;
  COMET_CHECK_GE(slot, 0);
  COMET_CHECK_LT(slot, static_cast<int>(fn.slots.size()))
      << "replica slot beyond max_replicated_experts";
  FunctionalScratch::ReplicaSlot& state = fn.slots[static_cast<size_t>(slot)];
  COMET_CHECK_GE(state.expert, 0)
      << "replica slot " << slot << " is already free";
  state = FunctionalScratch::ReplicaSlot{};
}

void CometExecutor::InvalidateBatchProfiles() {
  batch_profile_cache_.Clear();
  if (serving_ != nullptr) {
    serving_->nc_memo.clear();
  }
}

}  // namespace comet
