#include "core/comet_executor.h"

#include <algorithm>

#include "comm/symmetric_heap.h"
#include "core/fused_kernel.h"
#include "core/reschedule.h"
#include "core/shared_tensor.h"
#include "moe/group_gemm.h"
#include "runtime/rank_group.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

CometExecutor::CometExecutor(CometOptions options)
    : options_(std::move(options)) {
  COMET_CHECK_GT(options_.tile_m, 0);
  COMET_CHECK_GT(options_.tile_n, 0);
  COMET_CHECK_GE(options_.fixed_comm_blocks, 0);
  COMET_CHECK_GT(options_.signal_wait_timeout_ms, 0);
}

std::string CometExecutor::name() const {
  if (!options_.name_override.empty()) {
    return options_.name_override;
  }
  std::string n = "Comet";
  if (!options_.reschedule) {
    n += "-noresched";
  }
  if (!options_.specialized) {
    n += "-vertical";
  }
  if (!options_.adaptive) {
    n += "-fixed";
  }
  return n;
}

bool CometExecutor::Supports(const ParallelConfig&) const { return true; }

LayerExecution CometExecutor::Run(const MoeWorkload& workload,
                                  const ClusterSpec& cluster, ExecMode mode) {
  return RunWithCache(workload, cluster, mode, options_.profile_cache);
}

LayerExecution CometExecutor::RunBatch(const MoeWorkload& workload,
                                       const ClusterSpec& cluster,
                                       ExecMode mode) {
  return RunWithCache(workload, cluster, mode,
                      options_.profile_cache != nullptr
                          ? options_.profile_cache
                          : &batch_profile_cache_);
}

LayerExecution CometExecutor::RunWithCache(const MoeWorkload& workload,
                                           const ClusterSpec& cluster,
                                           ExecMode mode,
                                           MetadataStore* cache) {
  COMET_CHECK_EQ(cluster.world_size, workload.world())
      << "cluster and workload world sizes disagree";
  // Caps every ParallelFor this run issues -- including the whole-matrix
  // Gemm/activation wrappers called indirectly -- so num_threads = 1 really
  // is the old serial behavior end to end.
  ScopedThreadLimit thread_limit(options_.num_threads);
  // Sanity-check the dependency analysis: layer0 decomposes along M,
  // layer1 along N (paper §3.1.1). This is the analysis the schedules below
  // rely on; run it so a future operator change trips loudly.
  const int64_t shared_rows =
      workload.placement.total_tokens() * workload.model().topk;
  COMET_CHECK(ResolveDecomposition(Layer0SharedTensor(
                  shared_rows, workload.model().embedding)) ==
              DecomposeDim::kM);
  COMET_CHECK(ResolveDecomposition(Layer1SharedTensor(
                  shared_rows, workload.model().embedding)) ==
              DecomposeDim::kN);

  LayerExecution out;
  out.executor = name();
  RunTimed(workload, cluster, out, cache);
  if (mode == ExecMode::kFunctional) {
    RunFunctional(workload, out);
  }
  return out;
}

void CometExecutor::RunTimed(const MoeWorkload& workload,
                             const ClusterSpec& cluster, LayerExecution& out,
                             MetadataStore* cache) {
  const OpCostModel costs(cluster);
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const int world = placement.world();

  FusedKernelConfig base;
  base.total_blocks = cluster.gpu.num_sms;
  base.tile_m = options_.tile_m;
  base.tile_n = options_.tile_n;
  base.reschedule = options_.reschedule;
  base.vertical_fusion = !options_.specialized;

  // Profile on the most loaded rank (the one that sets the makespan) and use
  // one division point everywhere, as the paper's pre-compiled kernel
  // selection does.
  int busiest = 0;
  for (int r = 1; r < world; ++r) {
    if (plan.ForRank(r).TotalRows() > plan.ForRank(busiest).TotalRows()) {
      busiest = r;
    }
  }
  auto pick_nc = [&](MoePipelineStage stage) {
    if (base.vertical_fusion) {
      return 0;
    }
    if (!options_.adaptive) {
      return std::min(options_.fixed_comm_blocks, base.total_blocks - 1);
    }
    return assigner_.SelectCommBlocks(stage, plan, busiest, costs, base,
                                      cache);
  };
  last_nc0_ = pick_nc(MoePipelineStage::kLayer0);
  last_nc1_ = pick_nc(MoePipelineStage::kLayer1);

  // Per-rank simulations are independent: fan them out across the pool and
  // reduce serially afterwards, so the simulated times and the critical-rank
  // timeline are identical at any thread count.
  struct RankSim {
    FusedKernelResult l0;
    FusedKernelResult l1;
    double gate = 0.0;
    double act = 0.0;
    double total = 0.0;
  };
  std::vector<RankSim> sims(static_cast<size_t>(world));
  ParallelFor(
      0, world, 1,
      [&](int64_t r) {
        RankSim& sim = sims[static_cast<size_t>(r)];
        FusedKernelConfig config0 = base;
        config0.comm_blocks = last_nc0_;
        FusedKernelConfig config1 = base;
        config1.comm_blocks = last_nc1_;
        sim.l0 = SimulateLayer0Fused(plan, static_cast<int>(r), costs, config0);
        sim.l1 = SimulateLayer1Fused(plan, static_cast<int>(r), costs, config1);
        sim.gate = costs.GatingUs(placement.tokens_per_group(),
                                  placement.model().embedding,
                                  placement.model().num_experts);
        sim.act = costs.ActivationUs(plan.ForRank(static_cast<int>(r)).TotalRows(),
                                     placement.HiddenPerTpRank());
        // One host launch each for: gating, fused layer0, activation, fused
        // layer1. This is the entire host-side footprint of a COMET MoE layer.
        const double launches = 4.0 * costs.LaunchUs();
        sim.total = launches + sim.gate + sim.l0.duration_us + sim.act +
                    sim.l1.duration_us;
      });

  out.per_rank_us.assign(static_cast<size_t>(world), 0.0);
  double worst = -1.0;
  for (int r = 0; r < world; ++r) {
    const RankSim& sim = sims[static_cast<size_t>(r)];
    out.per_rank_us[static_cast<size_t>(r)] = sim.total;
    if (sim.total > worst) {
      worst = sim.total;
      // Rebuild the critical rank's timeline: host+gate, fused l0, act,
      // fused l1 in sequence.
      Timeline tl;
      double t = 0.0;
      tl.Add("launch", OpCategory::kHost, -1, t, t + 4.0 * costs.LaunchUs());
      t += 4.0 * costs.LaunchUs();
      tl.Add("gating", OpCategory::kGating, 0, t, t + sim.gate);
      t += sim.gate;
      tl.Merge(sim.l0.timeline, t);
      t += sim.l0.duration_us;
      tl.Add("activation", OpCategory::kActivation, 0, t, t + sim.act);
      t += sim.act;
      tl.Merge(sim.l1.timeline, t);
      out.timeline = std::move(tl);
    }
  }
  out.duration_us = worst;
}

void CometExecutor::RunFunctional(const MoeWorkload& workload,
                                  LayerExecution& out) const {
  COMET_CHECK(workload.weights != nullptr && !workload.inputs.empty())
      << "functional execution requires a materialized workload";
  const Placement& placement = workload.placement;
  const RoutePlan& plan = workload.plan;
  const ModelConfig& model = placement.model();
  const int world = placement.world();
  const int tp = placement.parallel().tp;
  const int ep = placement.parallel().ep;
  const int64_t n_embed = model.embedding;
  const int64_t hidden = placement.HiddenPerTpRank();
  const int64_t topk = model.topk;
  const int64_t group_tokens = placement.tokens_per_group();
  // The precision plane: heap buffers and every GEMM/activation intermediate
  // live at this dtype; stores round (RNE), accumulation stays f32. The
  // workload must have been materialized at the same dtype -- quantizing
  // here instead would silently diverge from the reference's operands.
  const DType dtype = options_.compute_dtype;
  COMET_CHECK(workload.inputs[0].dtype() == dtype)
      << "workload materialized at " << DTypeName(workload.inputs[0].dtype())
      << " but compute_dtype is " << DTypeName(dtype)
      << " (set WorkloadOptions::dtype to match)";

  SymmetricHeap heap(world,
                     HeapIntegrityOptions{options_.verify_transport,
                                          options_.corrupt_rate,
                                          options_.corrupt_seed});
  const SymmetricBufferId in_buf =
      heap.Allocate("moe-input", Shape{group_tokens, n_embed}, dtype);
  const SymmetricBufferId contrib_buf =
      heap.Allocate("moe-contrib", Shape{group_tokens * topk, n_embed}, dtype);
  // One arrival signal per contrib row per rank: the undispatch puts bump
  // it, the combine waits on it -- the NVSHMEM put-with-signal discipline
  // the real fused kernels use to gate consumption on delivery.
  const SymmetricBufferId contrib_sig =
      heap.AllocateSignals("moe-contrib-ready", group_tokens * topk);

  for (int r = 0; r < world; ++r) {
    heap.Local(in_buf, r) =
        workload.inputs[static_cast<size_t>(placement.EpGroupOfRank(r))];
  }

  // --- layer0 + activation + layer1, per rank, in the rescheduled order ---
  //
  // Each rank is one RankGroup task. In concurrent mode every rank runs on
  // its own thread, exchanging real rows through the heap while peers are
  // still computing -- the put-with-signal traffic below is then genuine
  // cross-thread synchronization, not an after-the-fact assertion.
  const auto produce = [&](int r) {
    const int group = placement.EpGroupOfRank(r);
    const int lane = placement.TpLaneOfRank(r);
    const RankPlan& rank_plan = plan.ForRank(r);

    const Layer0Schedule schedule0 =
        BuildLayer0Schedule(rank_plan, group, ep, hidden, options_.tile_m,
                            options_.tile_n, options_.reschedule);

    // Materialize the layer0 shared tensor per expert with rows in the
    // permuted layout; remote rows travel through the symmetric heap. Rows
    // land in disjoint destination slots, so the gather fans out per row.
    std::vector<Tensor> a_in;
    std::vector<Tensor> h_mid;
    std::vector<Tensor> y_out;
    a_in.reserve(rank_plan.experts.size());
    for (size_t le = 0; le < rank_plan.experts.size(); ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule0.row_order[le];
      Tensor a(Shape{static_cast<int64_t>(slice.rows.size()), n_embed}, dtype);
      ParallelFor(
          0, static_cast<int64_t>(order.size()), 8,
          [&](int64_t pos) {
            const ExpertRow& row =
                slice.rows[static_cast<size_t>(order[static_cast<size_t>(pos)])];
            const int64_t src_local =
                row.token - placement.FirstTokenOfGroup(row.source_group);
            heap.CopyRow(in_buf, r,
                         placement.RankOf(row.source_group, lane), src_local,
                         a.row(pos));
          });
      a_in.push_back(std::move(a));
      h_mid.emplace_back(
          Shape{static_cast<int64_t>(slice.rows.size()), hidden}, dtype);
      y_out.emplace_back(
          Shape{static_cast<int64_t>(slice.rows.size()), n_embed}, dtype);
    }

    GroupGemmProblem problem0;
    for (size_t le = 0; le < rank_plan.experts.size(); ++le) {
      problem0.a.push_back(&a_in[le]);
      problem0.b.push_back(
          &workload.sharded_weights->W0Shard(rank_plan.experts[le].expert, lane));
      problem0.c.push_back(&h_mid[le]);
    }
    // Tiles write disjoint output patches: dispatch them across the pool in
    // any completion order without changing a single bit of the result.
    ParallelFor(
        0, static_cast<int64_t>(schedule0.tiles.size()), 1,
        [&](int64_t t) {
          const TileRef& tile = schedule0.tiles[static_cast<size_t>(t)];
          RunTile(problem0, GemmTileCoord{tile.expert_local, tile.row_begin,
                                          tile.row_end, tile.col_begin,
                                          tile.col_end});
        });
    for (auto& h : h_mid) {
      ApplyActivation(h, workload.activation);
    }

    const Layer1Schedule schedule1 =
        BuildLayer1Schedule(rank_plan, n_embed, options_.tile_m,
                            options_.tile_n, options_.reschedule);
    GroupGemmProblem problem1;
    for (size_t le = 0; le < rank_plan.experts.size(); ++le) {
      problem1.a.push_back(&h_mid[le]);
      problem1.b.push_back(
          &workload.sharded_weights->W1Shard(rank_plan.experts[le].expert, lane));
      problem1.c.push_back(&y_out[le]);
    }
    ParallelFor(
        0, static_cast<int64_t>(schedule1.tiles.size()), 1,
        [&](int64_t t) {
          const TileRef& tile = schedule1.tiles[static_cast<size_t>(t)];
          RunTile(problem1, GemmTileCoord{tile.expert_local, tile.row_begin,
                                          tile.row_end, tile.col_begin,
                                          tile.col_end});
        });

    // Top-k undispatch: every partial output row returns (lane-matched) to
    // the token's home group, unweighted; weights are applied at the
    // canonical combine below. Each (token, slot) pair owns its destination
    // row and signal word, so the scatter parallelizes per row.
    for (size_t le = 0; le < rank_plan.experts.size(); ++le) {
      const auto& slice = rank_plan.experts[le];
      const auto& order = schedule0.row_order[le];
      ParallelFor(
          0, static_cast<int64_t>(order.size()), 8,
          [&](int64_t pos) {
            const ExpertRow& row =
                slice.rows[static_cast<size_t>(order[static_cast<size_t>(pos)])];
            const int dst = placement.RankOf(row.source_group, lane);
            const int64_t dst_row =
                (row.token - placement.FirstTokenOfGroup(row.source_group)) *
                    topk +
                row.slot;
            heap.PutRowWithSignal(contrib_buf, r, dst, dst_row,
                                  y_out[le].row(pos), contrib_sig, dst_row);
          });
    }
  };

  // --- combine: canonical reduction (slot-major, TP-lane inner) on lane 0 ---
  //
  // The consume stage of each group's lane-0 rank. It first blocks on the
  // arrival signal of every expected contribution (the NVSHMEM wait_until
  // loop of the real combine kernel -- in concurrent mode producers on peer
  // threads are still streaming rows in), then reduces. The reduction order
  // is a pure function of (token, slot, lane), never of arrival order, so
  // serial, concurrent and any-thread-count runs are bit-identical.
  std::vector<Tensor> outputs(static_cast<size_t>(ep));
  const auto consume = [&](int r) {
    if (placement.TpLaneOfRank(r) != 0) {
      return;
    }
    const int g = placement.EpGroupOfRank(r);
    const int reader = r;
    const int64_t first = placement.FirstTokenOfGroup(g);
    // Wait for delivery. Blocking waits stay on this rank's dedicated
    // thread -- they must never ride pool workers, or spinning consumers
    // could starve the producers' tile chunks out of the pool.
    for (int64_t t = 0; t < group_tokens; ++t) {
      const TokenRoute& route =
          workload.routing.tokens[static_cast<size_t>(first + t)];
      const int64_t slots = static_cast<int64_t>(route.experts.size());
      for (int64_t k = 0; k < slots; ++k) {
        for (int l = 0; l < tp; ++l) {
          heap.WaitUntilSignalGe(contrib_sig, placement.RankOf(g, l),
                                 t * topk + k, 1,
                                 options_.signal_wait_timeout_ms);
        }
      }
    }
    Tensor result(Shape{group_tokens, n_embed}, dtype);
    // Tokens reduce independently (one output row each); the slot-major,
    // TP-lane-inner order within a token is preserved inside the body.
    ParallelFor(
        0, group_tokens, 4,
        [&](int64_t t) {
          thread_local std::vector<float> row_buf;
          row_buf.resize(static_cast<size_t>(n_embed));
          const TokenRoute& route =
              workload.routing.tokens[static_cast<size_t>(first + t)];
          // Routes may carry fewer than topk entries (capacity-dropped
          // pairs); only written slots are consumed.
          const int64_t slots = static_cast<int64_t>(route.experts.size());
          for (int64_t k = 0; k < slots; ++k) {
            for (int l = 0; l < tp; ++l) {
              heap.WaitSignalGe(contrib_sig, placement.RankOf(g, l),
                                t * topk + k, 1);
              heap.CopyRow(contrib_buf, reader, placement.RankOf(g, l),
                           t * topk + k, row_buf);
              result.AccumulateRow(t, row_buf,
                                   route.weights[static_cast<size_t>(k)]);
            }
          }
          // f32 accumulation above, one rounding on store -- mirrors the
          // sharded reference's per-row output rounding exactly.
          result.QuantizeRow(t);
        });
    outputs[static_cast<size_t>(g)] = std::move(result);
  };

  RankGroup group(world, RankGroupOptions{.num_threads = options_.num_threads});
  group.Run(produce, consume);
  out.outputs = std::move(outputs);
}

}  // namespace comet
