#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace comet {

Tensor::Tensor(Shape shape, DType logical_dtype)
    : shape_(std::move(shape)),
      dtype_(logical_dtype),
      data_(static_cast<size_t>(shape_.NumElements()), 0.0f) {}

Tensor Tensor::Zeros(Shape shape, DType logical_dtype) {
  return Tensor(std::move(shape), logical_dtype);
}

Tensor Tensor::Full(Shape shape, float value, DType logical_dtype) {
  Tensor t(std::move(shape), logical_dtype);
  const float v = QuantizeScalar(value, logical_dtype);
  for (auto& x : t.data_) {
    x = v;
  }
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev, DType logical_dtype) {
  Tensor t(std::move(shape), logical_dtype);
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.Normal(0.0, stddev));
  }
  t.Quantize();
  return t;
}

Tensor Tensor::Iota(Shape shape, float scale, DType logical_dtype) {
  Tensor t(std::move(shape), logical_dtype);
  for (size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = scale * static_cast<float>(i);
  }
  t.Quantize();
  return t;
}

void Tensor::Quantize() {
  if (dtype_ == DType::kF32) {
    return;
  }
  QuantizeSpan(std::span<float>(data_), dtype_);
}

void Tensor::QuantizeRow(int64_t r) {
  if (dtype_ == DType::kF32) {
    return;
  }
  QuantizeSpan(row(r), dtype_);
}

Tensor Tensor::AsType(DType dtype) const {
  Tensor out = *this;
  out.dtype_ = dtype;
  out.Quantize();
  return out;
}

double Tensor::LogicalBytes() const {
  return static_cast<double>(NumElements()) *
         static_cast<double>(DTypeSize(dtype_));
}

float& Tensor::at(std::initializer_list<int64_t> index) {
  return at(std::span<const int64_t>(index.begin(), index.size()));
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  return at(std::span<const int64_t>(index.begin(), index.size()));
}

float& Tensor::at(std::span<const int64_t> index) {
  return data_[static_cast<size_t>(shape_.FlatIndex(index))];
}

float Tensor::at(std::span<const int64_t> index) const {
  return data_[static_cast<size_t>(shape_.FlatIndex(index))];
}

int64_t Tensor::rows() const {
  COMET_CHECK_EQ(shape_.rank(), 2u) << "rows() requires a rank-2 tensor";
  return shape_.dim(0);
}

int64_t Tensor::cols() const {
  COMET_CHECK_EQ(shape_.rank(), 2u) << "cols() requires a rank-2 tensor";
  return shape_.dim(1);
}

std::span<float> Tensor::row(int64_t r) {
  COMET_CHECK_GE(r, 0);
  COMET_CHECK_LT(r, rows());
  return std::span<float>(data_).subspan(static_cast<size_t>(r * cols()),
                                         static_cast<size_t>(cols()));
}

std::span<const float> Tensor::row(int64_t r) const {
  COMET_CHECK_GE(r, 0);
  COMET_CHECK_LT(r, rows());
  return std::span<const float>(data_).subspan(static_cast<size_t>(r * cols()),
                                               static_cast<size_t>(cols()));
}

void Tensor::Reserve(int64_t num_elements) {
  COMET_CHECK_GE(num_elements, 0);
  data_.reserve(static_cast<size_t>(num_elements));
}

void Tensor::ResetFormat2D(int64_t rows, int64_t cols, DType dtype) {
  shape_.SetDims2(rows, cols);
  dtype_ = dtype;
  // resize within reserved capacity never reallocates; contents of reused
  // elements are intentionally left as-is (see header).
  data_.resize(static_cast<size_t>(rows * cols));
}

void Tensor::FillZero() {
  std::fill(data_.begin(), data_.end(), 0.0f);
}

void Tensor::FillZeroRows(int64_t row_begin, int64_t row_end) {
  COMET_CHECK_GE(row_begin, 0);
  COMET_CHECK_LE(row_begin, row_end);
  COMET_CHECK_LE(row_end, rows());
  std::fill(data_.begin() + row_begin * cols(),
            data_.begin() + row_end * cols(), 0.0f);
}

void Tensor::FillRandn(Rng& rng, float stddev) {
  // Exactly Randn's fill: same draw order, same rounding point.
  for (auto& x : data_) {
    x = static_cast<float>(rng.Normal(0.0, stddev));
  }
  Quantize();
}

Tensor Tensor::GatherRows(const Tensor& src, const std::vector<int64_t>& indices) {
  COMET_CHECK_EQ(src.shape().rank(), 2u);
  Tensor out(Shape{static_cast<int64_t>(indices.size()), src.cols()},
             src.dtype());
  // Destination rows are disjoint; fan the copies across the pool.
  ParallelFor(0, static_cast<int64_t>(indices.size()), 32, [&](int64_t i) {
    out.SetRow(i, src.row(indices[static_cast<size_t>(i)]));
  });
  return out;
}

void Tensor::SetRow(int64_t r, std::span<const float> src_row) {
  auto dst = row(r);
  COMET_CHECK_EQ(dst.size(), src_row.size());
  std::copy(src_row.begin(), src_row.end(), dst.begin());
}

void Tensor::AccumulateRow(int64_t r, std::span<const float> src_row,
                           float weight) {
  auto dst = row(r);
  COMET_CHECK_EQ(dst.size(), src_row.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i] += weight * src_row[i];
  }
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  COMET_CHECK(a.shape() == b.shape())
      << a.shape().ToString() << " vs " << b.shape().ToString();
  float worst = 0.0f;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

bool Tensor::AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  COMET_CHECK(a.shape() == b.shape())
      << a.shape().ToString() << " vs " << b.shape().ToString();
  for (size_t i = 0; i < a.data_.size(); ++i) {
    const float diff = std::abs(a.data_[i] - b.data_[i]);
    if (diff > atol + rtol * std::abs(b.data_[i])) {
      return false;
    }
  }
  return true;
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << " " << DTypeName(dtype_) << " {";
  const int64_t n = std::min<int64_t>(max_elements, NumElements());
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << data_[static_cast<size_t>(i)];
  }
  if (n < NumElements()) {
    os << ", ...";
  }
  os << "}";
  return os.str();
}

}  // namespace comet
