// Dense row-major shapes. Rank is small (<= 4 in practice: the MoE runtime
// deals in matrices and token batches) but the type is rank-generic.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace comet {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  size_t rank() const { return dims_.size(); }
  int64_t dim(size_t i) const;
  int64_t operator[](size_t i) const { return dim(i); }

  // Product of all dims; 1 for rank-0.
  int64_t NumElements() const;

  // Row-major strides in elements: stride(i) = product of dims after i.
  std::vector<int64_t> Strides() const;

  // Flat row-major offset for the given index vector (must match rank, each
  // index in range). The span overload is allocation-free (Horner form, no
  // materialized strides) -- the one hot paths like Tensor::at() use.
  int64_t FlatIndex(std::span<const int64_t> index) const;
  int64_t FlatIndex(const std::vector<int64_t>& index) const {
    return FlatIndex(std::span<const int64_t>(index));
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // In-place mutation to a rank-2 shape. Reuses dims_ capacity: on an
  // already-rank>=2 shape this never allocates, which is what lets the
  // serving plane's workspace tensors change row count every iteration
  // without touching the heap.
  void SetDims2(int64_t rows, int64_t cols);

  // "[128, 4096]"
  std::string ToString() const;

  const std::vector<int64_t>& dims() const { return dims_; }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace comet
