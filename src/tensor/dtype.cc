#include "tensor/dtype.h"

#include <bit>

#include "util/check.h"

namespace comet {

size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kBF16:
    case DType::kF16:
      return 2;
  }
  COMET_CHECK(false) << "unknown dtype";
  return 0;
}

std::string DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kBF16:
      return "bf16";
    case DType::kF16:
      return "f16";
  }
  COMET_CHECK(false) << "unknown dtype";
  return "";
}

float DTypeEpsilon(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 0x1.0p-23f;
    case DType::kBF16:
      return 0x1.0p-8f;
    case DType::kF16:
      return 0x1.0p-11f;
  }
  COMET_CHECK(false) << "unknown dtype";
  return 0.0f;
}

// ---- BF16 -------------------------------------------------------------------
//
// BF16 is the top half of an f32: same exponent range, 7 mantissa bits.
// Encoding truncates the mantissa with round-to-nearest-even on the dropped
// 16 bits; decoding shifts back up. Because the exponent field is shared,
// there is no overflow/underflow handling to do -- every f32 rounds to a
// finite/infinite bf16 of the same regime, and every bf16 IS an f32.

uint16_t F32ToBf16(float x) {
  const uint32_t bits = std::bit_cast<uint32_t>(x);
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    // NaN: keep sign, force a quiet NaN with a nonzero payload so the
    // truncation can never produce an infinity.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // RNE: add 0x7fff plus the low bit of the surviving mantissa (ties go to
  // the even 16-bit value). Carries ripple into the exponent correctly,
  // rounding e.g. the largest dropped-half mantissa up to the next binade
  // and overflowing saturated exponents to infinity.
  const uint32_t rounded = bits + 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(rounded >> 16);
}

float Bf16ToF32(uint16_t bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(bits) << 16);
}

// ---- FP16 (IEEE binary16) ---------------------------------------------------
//
// 5 exponent bits (bias 15), 10 mantissa bits. Encode must handle the three
// regimes an f32 can land in: normal (round 23 -> 10 mantissa bits, RNE),
// subnormal (|x| < 2^-14: shift the implicit leading 1 into the mantissa and
// round), and overflow (|x| >= 65520 rounds to infinity).

uint16_t F32ToF16(float x) {
  const uint32_t bits = std::bit_cast<uint32_t>(x);
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t abs = bits & 0x7fffffffu;

  if (abs > 0x7f800000u) {
    // NaN: quiet, nonzero payload (top payload bit set).
    return static_cast<uint16_t>(sign | 0x7e00u |
                                 ((bits >> 13) & 0x01ffu));
  }
  if (abs >= 0x477ff000u) {
    // Overflow: 65520 = 0x477ff000 is the tie between 65504 (max finite
    // f16) and 2^16; RNE resolves it to the even candidate, which carries
    // out of the exponent range -- so 65520 and everything above (including
    // f32 infinity) becomes +/- inf.
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {
    // |x| < 2^-14: f16 subnormal (or zero). Value = mantissa * 2^-24.
    // Scale to an integer number of 2^-24 ulps and round RNE.
    if (abs < 0x33000000u) {
      // Below 2^-25: rounds to +/- 0 (2^-25 itself ties to even = 0).
      return sign;
    }
    const int32_t exp = static_cast<int32_t>(abs >> 23);  // biased f32 exp
    // Implicit leading one plus the f32 mantissa, as a 24-bit integer.
    const uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
    // Shift so one unit = 2^-24: for f32 exponent e (value 2^(e-127)),
    // the integer is mant * 2^(e - 127 - 23 + 24) = mant >> (126 - e).
    const int32_t shift = 126 - exp;  // in [14, 24] here
    const uint32_t kept = mant >> shift;
    const uint32_t rem = mant & ((1u << shift) - 1u);
    const uint32_t half = 1u << (shift - 1);
    uint32_t out = kept;
    if (rem > half || (rem == half && (kept & 1u))) {
      ++out;  // may carry into the normal range (0x0400), which is correct
    }
    return static_cast<uint16_t>(sign | out);
  }
  // Normal range: rebias exponent by (127 - 15), round 13 dropped mantissa
  // bits RNE. Carries ripple into the exponent; the overflow band was
  // excluded above, so the result stays finite.
  const uint32_t rebiased = abs - ((127u - 15u) << 23);
  const uint32_t rounded = rebiased + 0x0fffu + ((rebiased >> 13) & 1u);
  return static_cast<uint16_t>(sign | (rounded >> 13));
}

float F16ToF32(uint16_t bits) {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1fu;
  const uint32_t mant = bits & 0x03ffu;
  if (exp == 0x1fu) {  // inf / NaN
    return std::bit_cast<float>(sign | 0x7f800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) {
      return std::bit_cast<float>(sign);  // +/- 0
    }
    // Subnormal: value = mant * 2^-24 = 1.m' * 2^(-15 - e) after shifting
    // the leading one into the implicit position (e = number of shifts - 1).
    uint32_t m = mant;
    int32_t e = -1;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x0400u) == 0);
    m &= 0x03ffu;
    const uint32_t f32_exp = static_cast<uint32_t>(127 - 15 - e) << 23;
    return std::bit_cast<float>(sign | f32_exp | (m << 13));
  }
  return std::bit_cast<float>(sign | ((exp + (127u - 15u)) << 23) |
                              (mant << 13));
}

float QuantizeScalar(float x, DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return x;
    case DType::kBF16:
      return Bf16ToF32(F32ToBf16(x));
    case DType::kF16:
      return F16ToF32(F32ToF16(x));
  }
  COMET_CHECK(false) << "unknown dtype";
  return x;
}

void QuantizeSpan(std::span<float> values, DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return;
    case DType::kBF16:
      for (float& v : values) {
        v = Bf16ToF32(F32ToBf16(v));
      }
      return;
    case DType::kF16:
      for (float& v : values) {
        v = F16ToF32(F32ToF16(v));
      }
      return;
  }
  COMET_CHECK(false) << "unknown dtype";
}

}  // namespace comet
