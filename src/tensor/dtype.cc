#include "tensor/dtype.h"

#include "util/check.h"

namespace comet {

size_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kBF16:
    case DType::kF16:
      return 2;
  }
  COMET_CHECK(false) << "unknown dtype";
  return 0;
}

std::string DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kBF16:
      return "bf16";
    case DType::kF16:
      return "f16";
  }
  COMET_CHECK(false) << "unknown dtype";
  return "";
}

}  // namespace comet
