// Owning dense tensor plus lightweight row views.
//
// Storage is an f32 master copy at every dtype (CPU arithmetic is float);
// for the 2-byte dtypes the tensor additionally maintains the REPRESENTABLE
// invariant: every stored value is exactly expressible in BF16/F16, so the
// f32 master and the 16-bit encoding name the same number. Fill constructors
// establish the invariant by rounding (RNE, tensor/dtype.h codecs);
// Quantize()/QuantizeRow() re-establish it at the compute plane's explicit
// rounding points (GEMM stores, activation stores, combine outputs). Raw
// writes through row()/at()/data() are intentionally unrounded -- f32
// accumulation between rounding points is exactly the tensor-core contract.
//
// The functional plane only needs: allocation, random/constant fill, 2-D
// row access (tokens are rows), row gather/scatter, and elementwise
// comparison with tolerance.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace comet {

class Rng;

class Tensor {
 public:
  Tensor() = default;
  // Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape, DType logical_dtype = DType::kF32);

  static Tensor Zeros(Shape shape, DType logical_dtype = DType::kF32);
  static Tensor Full(Shape shape, float value, DType logical_dtype = DType::kF32);
  // iid N(0, stddev^2) entries.
  static Tensor Randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      DType logical_dtype = DType::kF32);
  // Row-major iota scaled by `scale`; handy for deterministic tests.
  static Tensor Iota(Shape shape, float scale = 1.0f,
                     DType logical_dtype = DType::kF32);

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  // Rounds every element to this tensor's dtype (no-op at kF32). The
  // per-element rounding is pure, so parallel and serial calls agree.
  void Quantize();
  // Rounds one row (rank-2 tensors) -- the combine paths' store-rounding.
  void QuantizeRow(int64_t r);
  // Copy of this tensor relabeled AND rounded to `dtype`. The master values
  // of a widening copy (bf16 -> f32) are unchanged.
  Tensor AsType(DType dtype) const;
  int64_t NumElements() const { return shape_.NumElements(); }
  // Bytes this tensor would occupy at its *logical* dtype (used by the
  // memory planner and comm cost models).
  double LogicalBytes() const;

  std::span<float> data() { return std::span<float>(data_); }
  std::span<const float> data() const { return std::span<const float>(data_); }

  // Element access. Allocation-free: the index list is consumed as a span
  // (hot loops like dgate accumulation call this per element).
  float& at(std::initializer_list<int64_t> index);
  float at(std::initializer_list<int64_t> index) const;
  float& at(std::span<const int64_t> index);
  float at(std::span<const int64_t> index) const;

  // Rank-2 helpers. Row views are spans over contiguous storage.
  int64_t rows() const;
  int64_t cols() const;
  std::span<float> row(int64_t r);
  std::span<const float> row(int64_t r) const;

  // ---- in-place workspace API ----------------------------------------------
  // The serving plane's zero-allocation contract: a workspace tensor is
  // Reserve()d once at its run-level bound, then ResetFormat2D() retargets
  // it every iteration within that capacity -- no allocation, no implicit
  // zeroing. Contents after ResetFormat2D are UNSPECIFIED (whatever the
  // previous iteration left); callers either overwrite every row or
  // FillZero the slice they need. Fill{Zero,Randn} are the in-place
  // counterparts of Zeros/Randn and produce bit-identical values.

  // Grows storage capacity to `num_elements` floats (allocates; warm-up
  // only). Never shrinks, never changes shape or contents.
  void Reserve(int64_t num_elements);
  // Reshapes to (rows, cols) at `dtype` in place. Allocation-free whenever
  // rows * cols fits the reserved capacity and the tensor was already
  // rank-2 (or had rank >= 2 dims capacity).
  void ResetFormat2D(int64_t rows, int64_t cols, DType dtype);
  // Zeroes all elements / rows [row_begin, row_end) (rank-2).
  void FillZero();
  void FillZeroRows(int64_t row_begin, int64_t row_end);
  // Refills with iid N(0, stddev^2), then rounds to dtype -- consumes the
  // rng exactly like Randn, so pooled and freshly-constructed request
  // tensors hold bit-identical values for the same rng state.
  void FillRandn(Rng& rng, float stddev = 1.0f);

  // Gathers rows of `src` at `indices` into a new tensor (rank-2).
  static Tensor GatherRows(const Tensor& src, const std::vector<int64_t>& indices);

  // Copies `src_row` (a row span) into row `r` of this tensor.
  void SetRow(int64_t r, std::span<const float> src_row);

  // Adds `src_row` scaled by `weight` into row `r` (used by top-k combine).
  void AccumulateRow(int64_t r, std::span<const float> src_row, float weight);

  // Max absolute difference; shapes must match.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);
  // True if all elements differ by at most atol + rtol * |b|.
  static bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
                       float atol = 1e-6f);

  std::string DebugString(int64_t max_elements = 16) const;

 private:
  Shape shape_;
  DType dtype_ = DType::kF32;
  std::vector<float> data_;
};

}  // namespace comet
