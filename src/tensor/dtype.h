// Element types. The functional plane computes in float32 for determinism and
// portability; BF16/FP16 exist so the timing plane and the memory planner can
// account bytes exactly the way the paper does (Table 3 assumes 2-byte
// elements for the NVSHMEM buffer: "For datatype of BF16 or FP16, the
// allocated memory size is 2MN").
#pragma once

#include <cstddef>
#include <string>

namespace comet {

enum class DType {
  kF32,
  kBF16,
  kF16,
};

// Bytes per element.
size_t DTypeSize(DType dtype);

// "f32", "bf16", "f16".
std::string DTypeName(DType dtype);

}  // namespace comet
