// Element types and their 16-bit codecs.
//
// The functional plane computes at a caller-chosen storage dtype. f32 is the
// master format everywhere (CPU registers and the Tensor backing store are
// float); BF16/FP16 are REAL storage formats: every value held at those
// dtypes is exactly representable in 16 bits, conversions round to nearest
// even, and the symmetric heap moves genuine 2-byte encodings (the paper's
// Table 3 sizes the NVSHMEM buffer as 2MN bytes for BF16/FP16). The timing
// plane and the memory planner use DTypeSize for byte accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace comet {

enum class DType {
  kF32,
  kBF16,
  kF16,
};

// Bytes per element.
size_t DTypeSize(DType dtype);

// "f32", "bf16", "f16".
std::string DTypeName(DType dtype);

// Machine epsilon of the dtype (the relative rounding step for values near
// 1): 2^-23 for f32, 2^-8 for bf16 (8 mantissa bits incl. the hidden one),
// 2^-11 for f16. Tolerance checks over quantized values scale with this --
// a fixed f32 tolerance trips falsely on correctly-rounded bf16 data.
float DTypeEpsilon(DType dtype);

// ---- 16-bit codecs ----------------------------------------------------------
//
// Encode = round-to-nearest-even from f32, the rounding mode of tensor-core
// stores and of every production BF16/FP16 cast. Decode is exact (each
// 16-bit value names one f32). NaNs stay NaN (payload may change, sign and
// quietness are preserved where the narrower format can hold them);
// infinities map to infinities; FP16 encode handles overflow (-> inf) and
// subnormals (RNE into the denormal range).

uint16_t F32ToBf16(float x);
float Bf16ToF32(uint16_t bits);

uint16_t F32ToF16(float x);
float F16ToF32(uint16_t bits);

// Round `x` to the nearest value representable at `dtype` (identity for
// kF32). decode(encode(x)) in one call; the per-element rounding primitive
// of the mixed-precision plane.
float QuantizeScalar(float x, DType dtype);

// Rounds every element of `values` to `dtype` in place. No-op for kF32.
void QuantizeSpan(std::span<float> values, DType dtype);

}  // namespace comet
