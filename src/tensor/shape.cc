#include "tensor/shape.h"

#include <sstream>

#include "util/check.h"

namespace comet {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) {
    COMET_CHECK_GE(d, 0) << "negative dimension in shape";
  }
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) {
    COMET_CHECK_GE(d, 0) << "negative dimension in shape";
  }
}

void Shape::SetDims2(int64_t rows, int64_t cols) {
  COMET_CHECK_GE(rows, 0) << "negative dimension in shape";
  COMET_CHECK_GE(cols, 0) << "negative dimension in shape";
  dims_.resize(2);
  dims_[0] = rows;
  dims_[1] = cols;
}

int64_t Shape::dim(size_t i) const {
  COMET_CHECK_LT(i, dims_.size());
  return dims_[i];
}

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    n *= d;
  }
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size(), 1);
  for (size_t i = dims_.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * dims_[i];
  }
  return strides;
}

int64_t Shape::FlatIndex(std::span<const int64_t> index) const {
  COMET_CHECK_EQ(index.size(), dims_.size());
  int64_t flat = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    COMET_CHECK_GE(index[i], 0);
    COMET_CHECK_LT(index[i], dims_[i]);
    flat = flat * dims_[i] + index[i];
  }
  return flat;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace comet
