#include "obs/telemetry.h"

namespace comet::obs {

ServerMetrics ServerMetrics::Register(MetricsRegistry& r) {
  ServerMetrics m;
  m.iterations = r.RegisterCounter("comet_serve_iterations_total",
                                   "Serving iterations executed");
  m.batched_tokens = r.RegisterCounter(
      "comet_serve_batched_tokens_total",
      "Tokens actually batched (excludes EP padding)");
  m.padding_tokens = r.RegisterCounter("comet_serve_padding_tokens_total",
                                       "EP padding rows added to batches");
  m.requests_offered = r.RegisterCounter(
      "comet_serve_requests_offered_total",
      "Requests offered to the admission queue");
  m.requests_shed = r.RegisterCounter("comet_serve_requests_shed_total",
                                      "Requests shed by admission control");
  m.requests_completed = r.RegisterCounter(
      "comet_serve_requests_completed_total", "Requests retired complete");
  m.queue_depth = r.RegisterGauge("comet_serve_queue_depth",
                                  "Admission queue depth (requests)");
  m.queue_tokens = r.RegisterGauge("comet_serve_queue_tokens",
                                   "Admission queue depth (tokens)");
  m.batcher_live = r.RegisterGauge("comet_serve_batcher_live_requests",
                                   "Requests live in the continuous batcher");
  m.batch_fill = r.RegisterGauge(
      "comet_serve_batch_fill_fraction",
      "Packed tokens / token budget of the last iteration");
  m.batch_tokens_hist = r.RegisterHistogram(
      "comet_serve_batch_tokens", "Tokens packed per iteration");
  m.iteration_us = r.RegisterHistogram(
      "comet_serve_iteration_us", "Iteration duration, simulated us");
  m.queue_wait_us = r.RegisterHistogram(
      "comet_serve_queue_wait_us", "Queue wait at retirement, simulated us");
  m.ttft_us = r.RegisterHistogram("comet_serve_ttft_us",
                                  "Time to first token, simulated us");
  m.itl_us = r.RegisterHistogram("comet_serve_itl_us",
                                 "Inter-token latency, simulated us");
  m.e2e_us = r.RegisterHistogram("comet_serve_e2e_us",
                                 "End-to-end latency, simulated us");
  m.profile_hits = r.RegisterCounter(
      "comet_executor_profile_memo_hits_total",
      "Division-point profile memo hits (batch shape already tuned)");
  m.profile_misses = r.RegisterCounter(
      "comet_executor_profile_memo_misses_total",
      "Division-point profile memo misses (candidate sweep ran)");
  m.heap_traffic_bytes = r.RegisterCounter(
      "comet_heap_traffic_bytes_total", "Symmetric-heap bytes transferred");
  m.heap_rows_verified = r.RegisterCounter(
      "comet_heap_rows_verified_total",
      "Symmetric-heap rows checksum-verified on consumption");
  m.heap_rows_corrupted = r.RegisterCounter(
      "comet_heap_rows_corrupted_total",
      "Symmetric-heap rows with detected checksum mismatches");
  m.promotions = r.RegisterCounter("comet_adapt_promotions_total",
                                   "Hot-expert replicas promoted");
  m.retirements = r.RegisterCounter("comet_adapt_retirements_total",
                                    "Hot-expert replicas retired");
  m.replicated_rows = r.RegisterCounter(
      "comet_adapt_replicated_rows_total",
      "(token, expert) rows served from replica slices");
  m.active_replicas = r.RegisterGauge("comet_adapt_active_replicas",
                                      "Replica slots currently active");
  return m;
}

ClusterMetrics ClusterMetrics::Register(MetricsRegistry& r) {
  ClusterMetrics m;
  m.dispatches = r.RegisterCounter("comet_cluster_dispatches_total",
                                   "Requests handed to a replica");
  m.redispatches = r.RegisterCounter(
      "comet_cluster_redispatches_total",
      "Re-dispatches of requests recovered from dead replicas");
  m.retries = r.RegisterCounter("comet_cluster_retries_total",
                                "Backoff retry attempts made");
  m.hedges = r.RegisterCounter("comet_cluster_hedges_total",
                               "Speculative hedge copies placed");
  m.hedge_wins = r.RegisterCounter(
      "comet_cluster_hedge_wins_total",
      "Requests completed by the hedge copy rather than the primary");
  m.sheds = r.RegisterCounter("comet_cluster_sheds_total",
                              "Requests shed at the cluster dispatch level");
  m.wasted_tokens = r.RegisterCounter(
      "comet_cluster_wasted_tokens_total",
      "Tokens executed on cancelled losing copies");
  m.faults_injected = r.RegisterCounter("comet_cluster_faults_injected_total",
                                        "Fault-plan events fired");
  m.replica_failures = r.RegisterCounter("comet_cluster_replica_failures_total",
                                         "Replica deaths observed");
  m.replicas_recovered = r.RegisterCounter(
      "comet_cluster_replicas_recovered_total", "Replicas rebuilt (kRecover)");
  m.breaker_opens = r.RegisterCounter("comet_cluster_breaker_opens_total",
                                      "Circuit-breaker closed->open openings");
  m.breaker_probes = r.RegisterCounter(
      "comet_cluster_breaker_probes_total", "Half-open probe dispatches");
  return m;
}

Telemetry::Telemetry(const TelemetryOptions& options)
    : options_(options), metrics_(ServerMetrics::Register(registry_)) {}

void Telemetry::BeginRun() {
  registry_.ResetValues();
  if (options_.enabled && spans_.capacity() != options_.span_capacity) {
    spans_.Reserve(options_.span_capacity);
  } else {
    spans_.Clear();
  }
}

}  // namespace comet::obs
