#include "obs/exporters.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <unordered_set>

#include "util/check.h"
#include "util/json_writer.h"

namespace comet::obs {
namespace {

// Thread-lane layout inside each replica process. Instants land on lane 0
// so they never visually occlude the duration lanes.
constexpr int kLaneEvents = 0;
constexpr int kLaneIterations = 1;
constexpr int kLaneRequests = 9;

int LaneFor(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIteration:
      return kLaneIterations;
    case SpanKind::kPhaseGating:
      return 2;
    case SpanKind::kPhaseLayer0Comm:
      return 3;
    case SpanKind::kPhaseLayer0Comp:
      return 4;
    case SpanKind::kPhaseActivation:
      return 5;
    case SpanKind::kPhaseLayer1Comp:
      return 6;
    case SpanKind::kPhaseLayer1Comm:
      return 7;
    case SpanKind::kPhaseHost:
      return 8;
    case SpanKind::kRequestQueue:
    case SpanKind::kRequestPrefill:
    case SpanKind::kRequestDecode:
      return kLaneRequests;
    default:
      return kLaneEvents;
  }
}

const char* LaneName(int lane) {
  switch (lane) {
    case 0:
      return "events";
    case 1:
      return "iterations";
    case 2:
      return "gating";
    case 3:
      return "layer0 comm";
    case 4:
      return "layer0 comp";
    case 5:
      return "activation";
    case 6:
      return "layer1 comp";
    case 7:
      return "layer1 comm";
    case 8:
      return "host";
    default:
      return "requests";
  }
}

void AppendMetadata(std::string* out, int pid, std::string_view process_name,
                    bool* first) {
  char buf[128];
  if (!*first) { out->append(","); }
  *first = false;
  out->append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
  std::snprintf(buf, sizeof(buf), "%d", pid);
  out->append(buf);
  out->append(",\"args\":{\"name\":\"");
  AppendJsonEscaped(*out, process_name);
  out->append("\"}}");
  const int max_lane = pid == 0 ? kLaneEvents : kLaneRequests;
  for (int lane = 0; lane <= max_lane; ++lane) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  pid, lane);
    out->append(buf);
    AppendJsonEscaped(*out, LaneName(lane));
    out->append("\"}}");
  }
}

void AppendTraceEvent(std::string* out, const SpanRecord& rec, int owner_pid,
                      bool* first) {
  // Cluster-ring records carry their own replica attribution.
  const int pid = rec.replica >= 0 ? rec.replica + 1 : owner_pid;
  if (!*first) { out->append(","); }
  *first = false;
  out->append("{\"name\":\"");
  AppendJsonEscaped(*out, SpanKindName(rec.kind));
  out->append("\"");
  char buf[32];
  if (SpanKindIsInstant(rec.kind)) {
    out->append(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
    AppendJsonNumber(*out, rec.start_us);
  } else {
    out->append(",\"ph\":\"X\",\"ts\":");
    AppendJsonNumber(*out, rec.start_us);
    out->append(",\"dur\":");
    AppendJsonNumber(*out, rec.end_us - rec.start_us);
  }
  std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d", pid,
                LaneFor(rec.kind));
  out->append(buf);
  out->append(",\"args\":{\"id\":");
  std::snprintf(buf, sizeof(buf), "%" PRIu64, rec.id);
  out->append(buf);
  out->append(",\"value\":");
  AppendJsonNumber(*out, rec.value);
  out->append("}}");
}

template <typename Fn>
void ForEachRecord(const ReplicaTelemetry& src, Fn&& fn) {
  if (src.archived != nullptr) {
    for (const SpanRecord& rec : *src.archived) { fn(rec); }
  }
  if (src.live != nullptr) { src.live->ForEach(fn); }
}

// Prometheus sample-value formatting: exposition spells non-finite values
// "NaN" / "+Inf" / "-Inf"; finite values use %.12g (enough for exact
// round-trip of the integer-valued doubles the plane produces).
void AppendPromValue(std::string* out, double v) {
  char buf[40];
  if (std::isnan(v)) {
    out->append("NaN");
  } else if (std::isinf(v)) {
    out->append(v > 0 ? "+Inf" : "-Inf");
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out->append(buf);
  }
}

void AppendPromSamples(std::string* out, const MetricsRegistry::Entry& e,
                       int replica) {
  char label[48];
  const bool labeled = replica >= 0;
  if (labeled) {
    std::snprintf(label, sizeof(label), "replica=\"%d\"", replica);
  } else {
    label[0] = '\0';
  }
  char buf[32];
  switch (e.kind) {
    case MetricKind::kCounter:
      out->append(e.name);
      if (labeled) {
        out->append("{").append(label).append("}");
      }
      out->append(" ");
      std::snprintf(buf, sizeof(buf), "%" PRIu64, e.counter->value());
      out->append(buf);
      out->append("\n");
      break;
    case MetricKind::kGauge:
      out->append(e.name);
      if (labeled) {
        out->append("{").append(label).append("}");
      }
      out->append(" ");
      AppendPromValue(out, e.gauge->value());
      out->append("\n");
      break;
    case MetricKind::kHistogram: {
      const Histogram h = e.histogram->Snapshot();
      for (const double q : {0.5, 0.95, 0.99}) {
        out->append(e.name).append("{");
        if (labeled) {
          out->append(label).append(",");
        }
        std::snprintf(buf, sizeof(buf), "quantile=\"%g\"} ", q);
        out->append(buf);
        AppendPromValue(
            out, h.count() == 0
                     ? std::numeric_limits<double>::quiet_NaN()
                     : h.PercentileUpperBound(q * 100.0));
        out->append("\n");
      }
      out->append(e.name).append("_sum");
      if (labeled) {
        out->append("{").append(label).append("}");
      }
      out->append(" ");
      AppendPromValue(out, h.sum());
      out->append("\n");
      out->append(e.name).append("_count");
      if (labeled) {
        out->append("{").append(label).append("}");
      }
      out->append(" ");
      std::snprintf(buf, sizeof(buf), "%zu", h.count());
      out->append(buf);
      out->append("\n");
      break;
    }
  }
}

const char* PromTypeName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "summary";
  }
  return "untyped";
}

}  // namespace

std::string ToChromeTraceJson(std::span<const ReplicaTelemetry> replicas) {
  std::string out;
  out.reserve(1 << 16);
  out.append("{\"traceEvents\":[");
  bool first = true;
  for (const ReplicaTelemetry& src : replicas) {
    AppendMetadata(&out, src.replica + 1, src.name, &first);
  }
  for (const ReplicaTelemetry& src : replicas) {
    const int owner_pid = src.replica + 1;
    ForEachRecord(src, [&](const SpanRecord& rec) {
      AppendTraceEvent(&out, rec, owner_pid, &first);
    });
  }
  out.append("]}");
  return out;
}

std::string ToPrometheusText(std::span<const ReplicaTelemetry> replicas) {
  // Exposition format wants all samples of one metric in a single group:
  // first collect the unique names (registration order, sources in list
  // order), then render one HELP/TYPE block per name with every source's
  // samples under it.
  std::string out;
  out.reserve(1 << 14);
  std::vector<const MetricsRegistry::Entry*> order;
  std::unordered_set<std::string_view> seen;
  for (const ReplicaTelemetry& src : replicas) {
    if (src.registry == nullptr) { continue; }
    for (const MetricsRegistry::Entry& e : src.registry->entries()) {
      if (seen.insert(e.name).second) { order.push_back(&e); }
    }
  }
  for (const MetricsRegistry::Entry* metric : order) {
    out.append("# HELP ").append(metric->name).append(" ");
    out.append(metric->help).append("\n");
    out.append("# TYPE ").append(metric->name).append(" ");
    out.append(PromTypeName(metric->kind)).append("\n");
    for (const ReplicaTelemetry& src : replicas) {
      if (src.registry == nullptr) { continue; }
      for (const MetricsRegistry::Entry& e : src.registry->entries()) {
        if (e.name == metric->name) {
          AppendPromSamples(&out, e, src.replica);
        }
      }
    }
  }
  return out;
}

std::string ToJsonl(std::span<const ReplicaTelemetry> replicas) {
  std::string out;
  out.reserve(1 << 16);
  for (const ReplicaTelemetry& src : replicas) {
    char buf[32];
    ForEachRecord(src, [&](const SpanRecord& rec) {
      const int replica = rec.replica >= 0 ? rec.replica : src.replica;
      out.append("{\"replica\":");
      std::snprintf(buf, sizeof(buf), "%d", replica);
      out.append(buf);
      out.append(",\"kind\":\"");
      AppendJsonEscaped(out, SpanKindName(rec.kind));
      out.append("\",\"start_us\":");
      AppendJsonNumber(out, rec.start_us);
      out.append(",\"end_us\":");
      AppendJsonNumber(out, rec.end_us);
      out.append(",\"id\":");
      std::snprintf(buf, sizeof(buf), "%" PRIu64, rec.id);
      out.append(buf);
      out.append(",\"value\":");
      AppendJsonNumber(out, rec.value);
      out.append("}\n");
    });
  }
  return out;
}

void WriteTextFile(const std::string& path, std::string_view content) {
  std::ofstream file(path, std::ios::binary);
  COMET_CHECK(file.good()) << "cannot open output file " << path;
  file.write(content.data(), static_cast<std::streamsize>(content.size()));
  COMET_CHECK(file.good()) << "failed writing output file " << path;
}

}  // namespace comet::obs
