// Exporters for the telemetry plane: Chrome trace JSON (load in Perfetto /
// chrome://tracing), Prometheus text exposition, and JSONL span dumps.
//
// All three render from the same inputs -- a list of ReplicaTelemetry views
// over span rings and metric registries -- in deterministic order (replicas
// in list order, archived records before live, registry entries in
// registration order). Because every record is stamped with the simulated
// clock by a single-writer loop, the rendered bytes are identical across
// host thread counts (obs_test pins this).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/spans.h"

namespace comet::obs {

// A view over one telemetry source. `replica >= 0` names a replica process
// (Chrome-trace pid = replica + 1); `replica == -1` is the cluster-level
// source (pid 0), whose records carry their own `SpanRecord::replica` for
// per-replica attribution. `archived` (optional) holds spans carried over
// from replaced incarnations and is rendered before `live`.
struct ReplicaTelemetry {
  std::string name;
  int replica = -1;
  const SpanRing* live = nullptr;
  const std::vector<SpanRecord>* archived = nullptr;
  const MetricsRegistry* registry = nullptr;
};

// Chrome Trace Event Format: {"traceEvents":[...]}. One process per
// replica, with thread lanes 0=events, 1=iterations, 2..8=executor phases
// (gating, layer0 comm/comp, activation, layer1 comp/comm, host),
// 9=requests. Duration spans are "X" complete events; instants are "i" with
// thread scope. Timestamps are simulated microseconds, verbatim.
std::string ToChromeTraceJson(std::span<const ReplicaTelemetry> replicas);

// Prometheus text exposition. Metrics are grouped by name (one HELP/TYPE
// block per name, samples from every replica under it, labeled
// replica="N"; cluster-level samples are unlabeled). Histograms render as
// summaries: quantile 0.5/0.95/0.99 upper bounds plus _sum and _count.
std::string ToPrometheusText(std::span<const ReplicaTelemetry> replicas);

// One JSON object per line per span record, oldest-first per source.
std::string ToJsonl(std::span<const ReplicaTelemetry> replicas);

// Writes `content` to `path`, COMET_CHECK-ing the stream.
void WriteTextFile(const std::string& path, std::string_view content);

}  // namespace comet::obs
