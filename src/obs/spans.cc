#include "obs/spans.h"

namespace comet::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIteration:
      return "iteration";
    case SpanKind::kPhaseHost:
      return "host";
    case SpanKind::kPhaseGating:
      return "gating";
    case SpanKind::kPhaseLayer0Comm:
      return "layer0 comm";
    case SpanKind::kPhaseLayer0Comp:
      return "layer0 comp";
    case SpanKind::kPhaseActivation:
      return "activation";
    case SpanKind::kPhaseLayer1Comp:
      return "layer1 comp";
    case SpanKind::kPhaseLayer1Comm:
      return "layer1 comm";
    case SpanKind::kRequestQueue:
      return "queue";
    case SpanKind::kRequestPrefill:
      return "prefill";
    case SpanKind::kRequestDecode:
      return "decode";
    case SpanKind::kAdmit:
      return "admit";
    case SpanKind::kShed:
      return "shed";
    case SpanKind::kComplete:
      return "complete";
    case SpanKind::kDispatch:
      return "dispatch";
    case SpanKind::kRedispatch:
      return "redispatch";
    case SpanKind::kRetry:
      return "retry";
    case SpanKind::kHedge:
      return "hedge";
    case SpanKind::kHedgeWin:
      return "hedge win";
    case SpanKind::kFaultFail:
      return "fault: fail";
    case SpanKind::kFaultDrain:
      return "fault: drain";
    case SpanKind::kFaultWedge:
      return "fault: wedge";
    case SpanKind::kFaultCorrupt:
      return "fault: corrupt";
    case SpanKind::kReplicaDeath:
      return "replica death";
    case SpanKind::kReplicaRecover:
      return "replica recover";
    case SpanKind::kBreakerOpen:
      return "breaker open";
    case SpanKind::kBreakerHalfOpen:
      return "breaker half-open";
    case SpanKind::kBreakerClosed:
      return "breaker closed";
    case SpanKind::kPromote:
      return "promote expert";
    case SpanKind::kRetireReplica:
      return "retire replica";
  }
  return "unknown";
}

void SpanRing::Reserve(int64_t capacity) {
  ring_.assign(static_cast<size_t>(capacity), SpanRecord{});
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void SpanRing::Clear() {
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void SpanRing::AppendTo(std::vector<SpanRecord>* out) const {
  out->reserve(out->size() + size_);
  ForEach([&](const SpanRecord& rec) { out->push_back(rec); });
}

}  // namespace comet::obs
