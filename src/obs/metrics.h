// Zero-allocation metrics registry: the telemetry plane's counters, gauges
// and histograms.
//
// The contract mirrors the serving plane's allocation contract
// (docs/ARCHITECTURE.md, "The allocation plane"): REGISTRATION allocates --
// it happens once, at server construction -- and every hot-path operation
// after it (Counter::Add, Gauge::Set, HistogramMetric::Observe) is a
// relaxed-atomic store on preallocated storage: no locks, no allocation,
// nothing the steady-state StepIteration window can observe. alloc_test pins
// this by running its 0-alloc window with telemetry ON.
//
// Determinism: the serving loop is the only writer of its replica's metrics,
// so values accumulate in loop order; the cross-thread counters that feed it
// (symmetric-heap traffic and verified-row totals) are order-independent
// sums of integers, exact in double at any interleaving. A metrics snapshot
// is therefore byte-identical at COMET_THREADS=1 and 8 (obs_test pins this).
// The atomics exist for the OBSERVER side -- an exporter may snapshot while
// a load test hammers the registry from many threads (TSan-checked) -- not
// because the serving loop races itself.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/stats.h"

namespace comet::obs {

// Monotonic counter (uint64, relaxed).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (double, relaxed).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Atomic fixed-bucket log2 histogram: util's Histogram bucketing over
// relaxed-atomic bucket counters, plus an exact CAS-accumulated sum.
// Snapshot() rebuilds a comet::Histogram, so count/sum/percentile math
// exists exactly once (util/stats.h).
class HistogramMetric {
 public:
  void Observe(double v) {
    buckets_[Histogram::BucketIndex(v)].fetch_add(1,
                                                  std::memory_order_relaxed);
    // Lock-free double add. In the serving loop there is a single writer,
    // so the sum accumulates in deterministic loop order; the CAS loop only
    // matters for the multi-writer TSan hammer.
    uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
    while (true) {
      const double current = std::bit_cast<double>(expected);
      const uint64_t desired = std::bit_cast<uint64_t>(current + v);
      if (sum_bits_.compare_exchange_weak(expected, desired,
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed)) {
        break;
      }
    }
  }

  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  Histogram Snapshot() const;
  void Reset();
  // Adds `other`'s buckets and sum into this (kRecover metric carry-over).
  void MergeFrom(const HistogramMetric& other);

 private:
  std::array<std::atomic<uint64_t>, Histogram::kBuckets> buckets_{};
  std::atomic<uint64_t> sum_bits_{0};  // 0 is the bit pattern of +0.0
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// Preallocate-at-registration metric registry. Handles are stable pointers
// (deque storage never moves); names follow Prometheus conventions and are
// rendered in registration order by the exporters (obs/exporters.h).
class MetricsRegistry {
 public:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    HistogramMetric* histogram = nullptr;
  };

  Counter* RegisterCounter(std::string name, std::string help);
  Gauge* RegisterGauge(std::string name, std::string help);
  HistogramMetric* RegisterHistogram(std::string name, std::string help);

  // Zeroes every value, keeping registrations (BeginRun).
  void ResetValues();

  // Adds `other`'s counter and histogram totals into this registry's
  // matching entries (gauges keep their own value: a fresh incarnation's
  // instantaneous state is the truth). Requires an identical schema --
  // same entries, same order -- which holds by construction for two
  // registries registered by the same code path (kRecover carries a
  // replaced replica's totals into its successor through this).
  void MergeFrom(const MetricsRegistry& other);

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
  std::vector<Entry> entries_;
};

}  // namespace comet::obs
