// Span tracing for the serving loop: POD records in a preallocated ring.
//
// Every record is stamped with the SIMULATED clock, and the serving loop is
// the only writer of its replica's ring, so a trace is a pure function of
// seeds + config -- byte-identical across host thread counts (obs_test pins
// trace byte-equality at COMET_THREADS {1,8}).
//
// Allocation: Reserve() preallocates the ring (BeginRun, outside any
// counting window); Record() writes one POD in place and, once full,
// overwrites the oldest record while counting the drop -- never allocating,
// so the span ring lives inside alloc_test's 0-alloc steady-state window.
// Span kinds are an enum, not strings: nothing on the record path touches
// the heap, and the exporters map kinds to names at export time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comet::obs {

// What a span record describes. Order matters: everything at or after
// kAdmit is an instant event (a point in time), everything before is a
// duration span.
enum class SpanKind : uint8_t {
  // Per-iteration spans: the whole iteration, then its phase lanes derived
  // from the executor's critical-rank timeline.
  kIteration,
  kPhaseHost,
  kPhaseGating,
  kPhaseLayer0Comm,
  kPhaseLayer0Comp,
  kPhaseActivation,
  kPhaseLayer1Comp,
  kPhaseLayer1Comm,
  // Per-request lifecycle spans, recorded at retirement from the request's
  // simulated timestamps: admit -> first schedule (queue), first schedule ->
  // first token (prefill), first -> last token (decode).
  kRequestQueue,
  kRequestPrefill,
  kRequestDecode,
  // Instant events (start_us == end_us). Server-level...
  kAdmit,
  kShed,
  kComplete,
  // ...cluster-level dispatch/recovery...
  kDispatch,
  kRedispatch,
  kRetry,
  kHedge,
  kHedgeWin,
  kFaultFail,
  kFaultDrain,
  kFaultWedge,
  kFaultCorrupt,
  kReplicaDeath,
  kReplicaRecover,
  kBreakerOpen,
  kBreakerHalfOpen,
  kBreakerClosed,
  // ...and adaptation-plane events.
  kPromote,
  kRetireReplica,
};

const char* SpanKindName(SpanKind kind);

inline bool SpanKindIsInstant(SpanKind kind) {
  return kind >= SpanKind::kAdmit;
}

// One recorded span or instant. POD: recording is a struct copy.
// `id` is kind-dependent (request id, iteration index, expert, replica);
// `value` carries one kind-dependent magnitude (tokens, slot, ...).
// `replica` is -1 for records owned by a per-replica ring (the owner is
// implicit); cluster-level rings set it so the exporter can attribute the
// event to a replica's process (still -1 for fleet-wide events).
struct SpanRecord {
  double start_us = 0.0;
  double end_us = 0.0;
  uint64_t id = 0;
  double value = 0.0;
  SpanKind kind = SpanKind::kIteration;
  int32_t replica = -1;
};

// Preallocated single-writer ring of SpanRecords, oldest-first iteration.
class SpanRing {
 public:
  // Preallocates `capacity` records. Idempotent for the same capacity;
  // clears held records. Call outside allocation-counting windows.
  void Reserve(int64_t capacity);
  // Forgets every record (keeps capacity).
  void Clear();

  // Records one span; overwrites the oldest (counting it dropped) when
  // full. Allocation-free. With zero capacity every record just drops.
  void Record(SpanKind kind, double start_us, double end_us, uint64_t id,
              double value, int32_t replica = -1) {
    if (ring_.empty()) {
      ++dropped_;
      return;
    }
    if (size_ == ring_.size()) {
      ++dropped_;
    } else {
      ++size_;
    }
    ring_[next_] = SpanRecord{start_us, end_us, id, value, kind, replica};
    next_ = (next_ + 1) % ring_.size();
  }

  size_t size() const { return size_; }
  int64_t capacity() const { return static_cast<int64_t>(ring_.size()); }
  uint64_t dropped() const { return dropped_; }

  // Visits records oldest-first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t first = (next_ + ring_.size() - size_) % (ring_.empty() ? 1 : ring_.size());
    for (size_t i = 0; i < size_; ++i) {
      fn(ring_[(first + i) % ring_.size()]);
    }
  }

  // Appends records oldest-first (archiving a replaced replica's trace).
  void AppendTo(std::vector<SpanRecord>* out) const;

 private:
  std::vector<SpanRecord> ring_;
  size_t next_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace comet::obs
