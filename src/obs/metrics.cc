#include "obs/metrics.h"

#include "util/check.h"

namespace comet::obs {

Histogram HistogramMetric::Snapshot() const {
  std::array<uint64_t, Histogram::kBuckets> counts;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return Histogram::FromBuckets(counts, sum());
}

void HistogramMetric::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(0, std::memory_order_relaxed);
}

void HistogramMetric::MergeFrom(const HistogramMetric& other) {
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    buckets_[b].fetch_add(other.buckets_[b].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  const double merged = sum() + other.sum();
  sum_bits_.store(std::bit_cast<uint64_t>(merged), std::memory_order_relaxed);
}

Counter* MetricsRegistry::RegisterCounter(std::string name, std::string help) {
  Counter* c = &counters_.emplace_back();
  entries_.push_back(Entry{std::move(name), std::move(help),
                           MetricKind::kCounter, c, nullptr, nullptr});
  return c;
}

Gauge* MetricsRegistry::RegisterGauge(std::string name, std::string help) {
  Gauge* g = &gauges_.emplace_back();
  entries_.push_back(Entry{std::move(name), std::move(help),
                           MetricKind::kGauge, nullptr, g, nullptr});
  return g;
}

HistogramMetric* MetricsRegistry::RegisterHistogram(std::string name,
                                                    std::string help) {
  HistogramMetric* h = &histograms_.emplace_back();
  entries_.push_back(Entry{std::move(name), std::move(help),
                           MetricKind::kHistogram, nullptr, nullptr, h});
  return h;
}

void MetricsRegistry::ResetValues() {
  for (auto& c : counters_) {
    c.Reset();
  }
  for (auto& g : gauges_) {
    g.Reset();
  }
  for (auto& h : histograms_) {
    h.Reset();
  }
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  COMET_CHECK_EQ(entries_.size(), other.entries_.size())
      << "MergeFrom requires registries with identical schemas";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& mine = entries_[i];
    const Entry& theirs = other.entries_[i];
    COMET_CHECK(mine.name == theirs.name && mine.kind == theirs.kind)
        << "MergeFrom schema mismatch at entry " << i << ": " << mine.name
        << " vs " << theirs.name;
    switch (mine.kind) {
      case MetricKind::kCounter:
        mine.counter->Add(theirs.counter->value());
        break;
      case MetricKind::kGauge:
        break;  // instantaneous: the live incarnation's value is the truth
      case MetricKind::kHistogram:
        mine.histogram->MergeFrom(*theirs.histogram);
        break;
    }
  }
}

}  // namespace comet::obs
