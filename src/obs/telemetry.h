// The per-replica telemetry bundle the serving plane owns: one metrics
// registry plus one span ring, with the registered handle set for each
// instrument point (docs/ARCHITECTURE.md, "The telemetry plane").
//
// Registration happens at construction (allocates, once); BeginRun resets
// values and reserves the span ring; everything the serving loop touches per
// iteration afterwards is allocation-free. Telemetry is OFF by default and,
// on or off, never changes a served bit: instrumentation only READS the
// serving state -- no RNG draws, no clock reads, no control-flow influence
// (obs_test pins digest equality ON vs OFF).
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/spans.h"

namespace comet::obs {

struct TelemetryOptions {
  bool enabled = false;
  // Span-ring capacity, records per replica; overwrite-oldest (with a drop
  // counter) beyond it. Reserved at BeginRun.
  int64_t span_capacity = 1 << 15;
};

// Handles for every server-side instrument point, registered once per
// registry in a fixed order (the order IS the Prometheus snapshot order,
// and MergeFrom relies on two server registries having identical schemas).
struct ServerMetrics {
  // Serving loop.
  Counter* iterations = nullptr;
  Counter* batched_tokens = nullptr;
  Counter* padding_tokens = nullptr;
  Counter* requests_offered = nullptr;
  Counter* requests_shed = nullptr;
  Counter* requests_completed = nullptr;
  // Admission queue / continuous batcher.
  Gauge* queue_depth = nullptr;
  Gauge* queue_tokens = nullptr;
  Gauge* batcher_live = nullptr;
  Gauge* batch_fill = nullptr;  // packed/budget of the last iteration
  HistogramMetric* batch_tokens_hist = nullptr;
  HistogramMetric* iteration_us = nullptr;
  // Request latency distributions (simulated us, observed at retirement).
  HistogramMetric* queue_wait_us = nullptr;
  HistogramMetric* ttft_us = nullptr;
  HistogramMetric* itl_us = nullptr;
  HistogramMetric* e2e_us = nullptr;
  // Executor profile cache (division-point memo).
  Counter* profile_hits = nullptr;
  Counter* profile_misses = nullptr;
  // Symmetric heap transport.
  Counter* heap_traffic_bytes = nullptr;
  Counter* heap_rows_verified = nullptr;
  Counter* heap_rows_corrupted = nullptr;
  // Adaptation plane.
  Counter* promotions = nullptr;
  Counter* retirements = nullptr;
  Counter* replicated_rows = nullptr;
  Gauge* active_replicas = nullptr;

  static ServerMetrics Register(MetricsRegistry& registry);
};

// Handles for the cluster dispatcher's instrument points (one registry per
// MoeCluster, rendered unlabeled next to the per-replica sections).
struct ClusterMetrics {
  Counter* dispatches = nullptr;
  Counter* redispatches = nullptr;
  Counter* retries = nullptr;
  Counter* hedges = nullptr;
  Counter* hedge_wins = nullptr;
  Counter* sheds = nullptr;
  Counter* wasted_tokens = nullptr;
  Counter* faults_injected = nullptr;
  Counter* replica_failures = nullptr;
  Counter* replicas_recovered = nullptr;
  Counter* breaker_opens = nullptr;
  Counter* breaker_probes = nullptr;

  static ClusterMetrics Register(MetricsRegistry& registry);
};

// One replica's telemetry plane: registry + handles + span ring.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options);

  bool enabled() const { return options_.enabled; }
  const TelemetryOptions& options() const { return options_; }

  // Resets metric values and clears + reserves the span ring. Allocates
  // (ring reservation); call outside counting windows, before the loop.
  void BeginRun();

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  SpanRing& spans() { return spans_; }
  const SpanRing& spans() const { return spans_; }
  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }

 private:
  TelemetryOptions options_;
  MetricsRegistry registry_;
  ServerMetrics metrics_;
  SpanRing spans_;
};

}  // namespace comet::obs
