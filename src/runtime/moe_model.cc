#include "runtime/moe_model.h"

#include "moe/reference_layer.h"
#include "moe/router.h"
#include "util/check.h"
#include "util/rng.h"

namespace comet {

MoeModel::MoeModel(const ModelConfig& model, const ParallelConfig& parallel,
                   int64_t total_tokens, const MoeModelOptions& options)
    : model_(model),
      parallel_(parallel),
      total_tokens_(total_tokens),
      options_(options),
      comm_plan_(PlanCommBuffer(total_tokens, model.embedding)) {
  COMET_CHECK_GT(model_.layers, 0);
  COMET_CHECK_GT(total_tokens_, 0);
  COMET_CHECK_EQ(total_tokens_ % parallel_.ep, 0)
      << "tokens must shard evenly across EP groups";
  Rng rng(options_.seed * 7919 + 13);
  weights_.reserve(static_cast<size_t>(model_.layers));
  sharded_.reserve(static_cast<size_t>(model_.layers));
  gate_weights_.reserve(static_cast<size_t>(model_.layers));
  for (int64_t l = 0; l < model_.layers; ++l) {
    auto w = std::make_shared<ExpertWeights>(
        ExpertWeights::Random(model_, rng, options_.weight_stddev));
    sharded_.push_back(
        std::make_shared<ShardedExpertWeights>(*w, parallel_.tp));
    weights_.push_back(std::move(w));
    gate_weights_.push_back(Tensor::Randn(
        Shape{model_.embedding, model_.num_experts}, rng, 0.5f));
  }
}

std::vector<Tensor> MoeModel::MakeInputs(uint64_t seed) const {
  Rng rng(seed);
  const Placement placement(model_, parallel_, total_tokens_);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<size_t>(parallel_.ep));
  for (int g = 0; g < parallel_.ep; ++g) {
    inputs.push_back(Tensor::Randn(
        Shape{placement.tokens_per_group(), model_.embedding}, rng));
  }
  return inputs;
}

MoeWorkload MoeModel::LayerWorkload(
    int64_t layer, const std::vector<Tensor>& activations) const {
  COMET_CHECK_GE(layer, 0);
  COMET_CHECK_LT(layer, model_.layers);
  COMET_CHECK_EQ(static_cast<int>(activations.size()), parallel_.ep);
  Placement placement(model_, parallel_, total_tokens_);

  // Gate on the ACTUAL activations: stack the groups into the global token
  // matrix (token id order) and route.
  Tensor global(Shape{total_tokens_, model_.embedding});
  for (int g = 0; g < parallel_.ep; ++g) {
    const Tensor& part = activations[static_cast<size_t>(g)];
    COMET_CHECK_EQ(part.rows(), placement.tokens_per_group());
    COMET_CHECK_EQ(part.cols(), model_.embedding);
    const int64_t base = placement.FirstTokenOfGroup(g);
    for (int64_t r = 0; r < part.rows(); ++r) {
      global.SetRow(base + r, part.row(r));
    }
  }
  const GateNetwork gate(gate_weights_[static_cast<size_t>(layer)]);
  RoutingTable routing = gate.Route(global, model_.topk);

  RoutePlan plan(placement, routing);
  return MoeWorkload{std::move(placement),
                     std::move(routing),
                     std::move(plan),
                     activations,
                     weights_[static_cast<size_t>(layer)],
                     sharded_[static_cast<size_t>(layer)],
                     options_.activation};
}

std::vector<Tensor> MoeModel::Step(int64_t layer,
                                   const std::vector<Tensor>& in,
                                   std::vector<Tensor> layer_out) const {
  (void)layer;
  if (!options_.residual) {
    return layer_out;
  }
  for (size_t g = 0; g < layer_out.size(); ++g) {
    auto out = layer_out[g].data();
    const auto res = in[g].data();
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += res[i];
    }
  }
  return layer_out;
}

std::vector<Tensor> MoeModel::Forward(MoeLayerExecutor& executor,
                                      const ClusterSpec& cluster,
                                      const std::vector<Tensor>& inputs) const {
  std::vector<Tensor> current = inputs;
  for (int64_t l = 0; l < model_.layers; ++l) {
    const MoeWorkload w = LayerWorkload(l, current);
    LayerExecution run = executor.Run(w, cluster, ExecMode::kFunctional);
    COMET_CHECK_EQ(run.outputs.size(), current.size());
    current = Step(l, current, std::move(run.outputs));
  }
  return current;
}

std::vector<Tensor> MoeModel::ReferenceForward(
    const std::vector<Tensor>& inputs) const {
  std::vector<Tensor> current = inputs;
  for (int64_t l = 0; l < model_.layers; ++l) {
    const MoeWorkload w = LayerWorkload(l, current);
    current = Step(l, current, ShardedReferenceMoeLayer(w));
  }
  return current;
}

}  // namespace comet
