#include "runtime/rank_group.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

RankGroup::RankGroup(int num_ranks, RankGroupOptions options)
    : num_ranks_(num_ranks), options_(options) {
  COMET_CHECK_GT(num_ranks_, 0);
  int n = options_.num_threads;
  if (n <= 0) {
    n = CurrentThreadLimit();
  }
  if (n <= 0) {
    n = GlobalThreadCount();
  }
  concurrent_ = num_ranks_ > 1 && n > 1;
}

void RankGroup::Run(const std::function<void(int)>& work) const {
  Run(work, {});
}

void RankGroup::Run(const std::function<void(int)>& produce,
                    const std::function<void(int)>& consume) const {
  COMET_CHECK(produce != nullptr);

  if (!concurrent_) {
    // Serial phased execution: by the time any consume runs, every producer
    // has signalled, so blocking waits return immediately.
    for (int r = 0; r < num_ranks_; ++r) {
      produce(r);
    }
    if (consume) {
      for (int r = 0; r < num_ranks_; ++r) {
        consume(r);
      }
    }
    return;
  }

  // Rank threads do not inherit the launcher's thread-locals; re-install its
  // ParallelFor cap so CometOptions::num_threads reaches the tile loops the
  // ranks fan out (and so num_threads = 1 could never spawn pool chunks from
  // here -- serial mode above already short-circuits that case).
  const int inherited_limit = CurrentThreadLimit();

  struct Shared {
    std::mutex mutex;
    std::condition_variable barrier_cv;
    int arrived = 0;
  } shared;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(num_ranks_));

  auto rank_body = [&](int r) {
    ScopedThreadLimit limit(inherited_limit);
    try {
      produce(r);
    } catch (...) {
      errors[static_cast<size_t>(r)] = std::current_exception();
    }
    if (options_.phase_barrier) {
      // A failed producer still arrives, so peers are never left waiting on
      // the barrier (their data-level failure surfaces in consume instead).
      std::unique_lock<std::mutex> lock(shared.mutex);
      if (++shared.arrived == num_ranks_) {
        shared.barrier_cv.notify_all();
      } else {
        shared.barrier_cv.wait(
            lock, [&] { return shared.arrived == num_ranks_; });
      }
    }
    if (consume && errors[static_cast<size_t>(r)] == nullptr) {
      try {
        consume(r);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_ranks_ - 1));
  for (int r = 1; r < num_ranks_; ++r) {
    threads.emplace_back(rank_body, r);
  }
  rank_body(0);
  for (std::thread& t : threads) {
    t.join();
  }

  for (const std::exception_ptr& err : errors) {
    if (err) {
      std::rethrow_exception(err);
    }
  }
}

}  // namespace comet
