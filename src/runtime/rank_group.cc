#include "runtime/rank_group.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace comet {

RankGroup::RankGroup(int num_ranks, RankGroupOptions options)
    : num_ranks_(num_ranks), options_(options) {
  COMET_CHECK_GT(num_ranks_, 0);
  int n = options_.num_threads;
  if (n <= 0) {
    n = CurrentThreadLimit();
  }
  if (n <= 0) {
    n = GlobalThreadCount();
  }
  concurrent_ = num_ranks_ > 1 && n > 1;
}

void RankGroup::Run(const std::function<void(int)>& work) const {
  Run(work, {});
}

void RankGroup::Run(const std::function<void(int)>& produce,
                    const std::function<void(int)>& consume) const {
  COMET_CHECK(produce != nullptr);

  if (!concurrent_) {
    // Serial phased execution: by the time any consume runs, every producer
    // has signalled, so blocking waits return immediately.
    for (int r = 0; r < num_ranks_; ++r) {
      produce(r);
    }
    if (consume) {
      for (int r = 0; r < num_ranks_; ++r) {
        consume(r);
      }
    }
    return;
  }

  // Rank threads do not inherit the launcher's thread-locals; re-install its
  // ParallelFor cap so CometOptions::num_threads reaches the tile loops the
  // ranks fan out (and so num_threads = 1 could never spawn pool chunks from
  // here -- serial mode above already short-circuits that case).
  const int inherited_limit = CurrentThreadLimit();

  struct Shared {
    std::mutex mutex;
    std::condition_variable barrier_cv;
    int arrived = 0;
  } shared;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(num_ranks_));

  auto rank_body = [&](int r) {
    ScopedThreadLimit limit(inherited_limit);
    try {
      produce(r);
    } catch (...) {
      errors[static_cast<size_t>(r)] = std::current_exception();
    }
    if (options_.phase_barrier) {
      // A failed producer still arrives, so peers are never left waiting on
      // the barrier (their data-level failure surfaces in consume instead).
      std::unique_lock<std::mutex> lock(shared.mutex);
      if (++shared.arrived == num_ranks_) {
        shared.barrier_cv.notify_all();
      } else {
        shared.barrier_cv.wait(
            lock, [&] { return shared.arrived == num_ranks_; });
      }
    }
    if (consume && errors[static_cast<size_t>(r)] == nullptr) {
      try {
        consume(r);
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_ranks_ - 1));
  for (int r = 1; r < num_ranks_; ++r) {
    threads.emplace_back(rank_body, r);
  }
  rank_body(0);
  for (std::thread& t : threads) {
    t.join();
  }

  for (const std::exception_ptr& err : errors) {
    if (err) {
      std::rethrow_exception(err);
    }
  }
}

PersistentRankGroup::~PersistentRankGroup() { Shutdown(); }

void PersistentRankGroup::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  shutdown_ = false;
}

void PersistentRankGroup::Configure(int num_ranks, RankGroupOptions options) {
  COMET_CHECK_GT(num_ranks, 0);
  int n = options.num_threads;
  if (n <= 0) {
    n = CurrentThreadLimit();
  }
  if (n <= 0) {
    n = GlobalThreadCount();
  }
  const bool concurrent = num_ranks > 1 && n > 1;
  if (num_ranks == num_ranks_ && concurrent == concurrent_) {
    options_ = options;  // barrier flag may change without a thread reshape
    return;
  }
  Shutdown();
  num_ranks_ = num_ranks;
  options_ = options;
  concurrent_ = concurrent;
  errors_.assign(static_cast<size_t>(num_ranks_), nullptr);
  if (concurrent_) {
    threads_.reserve(static_cast<size_t>(num_ranks_ - 1));
    for (int r = 1; r < num_ranks_; ++r) {
      threads_.emplace_back([this, r] { WorkerLoop(r); });
    }
  }
}

void PersistentRankGroup::RankBody(int r, FunctionRef<void(int)> produce,
                                   FunctionRef<void(int)> consume, int limit) {
  // Rank threads do not inherit the launcher's thread-locals; re-install its
  // ParallelFor cap so the tile loops each rank fans out see it (rank 0 runs
  // on the caller, where the limit is already active -- re-installing the
  // same cap is a no-op by value).
  ScopedThreadLimit thread_limit(limit);
  try {
    produce(r);
  } catch (...) {
    errors_[static_cast<size_t>(r)] = std::current_exception();
  }
  if (options_.phase_barrier) {
    // A failed producer still arrives, so peers are never left waiting on
    // the barrier (their data-level failure surfaces in consume instead).
    std::unique_lock<std::mutex> lock(mutex_);
    if (++arrived_ == num_ranks_) {
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] { return arrived_ == num_ranks_; });
    }
  }
  if (consume && errors_[static_cast<size_t>(r)] == nullptr) {
    try {
      consume(r);
    } catch (...) {
      errors_[static_cast<size_t>(r)] = std::current_exception();
    }
  }
}

void PersistentRankGroup::WorkerLoop(int r) {
  uint64_t seen = 0;
  for (;;) {
    FunctionRef<void(int)> produce;
    FunctionRef<void(int)> consume;
    int limit = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      produce = produce_;
      consume = consume_;
      limit = run_limit_;
    }
    RankBody(r, produce, consume, limit);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++done_ == num_ranks_ - 1) {
        done_cv_.notify_one();
      }
    }
  }
}

void PersistentRankGroup::Run(FunctionRef<void(int)> produce,
                              FunctionRef<void(int)> consume) {
  COMET_CHECK_GT(num_ranks_, 0) << "PersistentRankGroup: Configure first";
  COMET_CHECK(produce);

  if (!concurrent_) {
    // Serial phased execution: by the time any consume runs, every producer
    // has signalled, so blocking waits return immediately.
    for (int r = 0; r < num_ranks_; ++r) {
      produce(r);
    }
    if (consume) {
      for (int r = 0; r < num_ranks_; ++r) {
        consume(r);
      }
    }
    return;
  }

  const int inherited_limit = CurrentThreadLimit();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    produce_ = produce;
    consume_ = consume;
    run_limit_ = inherited_limit;
    done_ = 0;
    arrived_ = 0;
    for (auto& err : errors_) {
      err = nullptr;
    }
    ++generation_;
  }
  start_cv_.notify_all();
  RankBody(0, produce, consume, inherited_limit);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return done_ == num_ranks_ - 1; });
  }
  for (const std::exception_ptr& err : errors_) {
    if (err) {
      std::rethrow_exception(err);
    }
  }
}

}  // namespace comet
