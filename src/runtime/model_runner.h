// End-to-end MoE model execution (paper Figure 9 and Figure 1(a)).
//
// A transformer layer is attention + one MoE layer. Attention is identical
// across all mechanisms (the hatched region of Figure 9): only the MoE layer
// differs, so the runner prices attention once through the shared cost model
// and multiplies the per-layer total by L.
#pragma once

#include <cstdint>
#include <memory>

#include "exec/execution.h"

namespace comet {

struct ModelRunConfig {
  ModelConfig model;
  ParallelConfig parallel;
  int64_t total_tokens = 0;  // M
  uint64_t seed = 1;
  double load_std = 0.0;
};

struct ModelRunResult {
  std::string executor;
  // Per-layer numbers, us.
  double attention_us = 0.0;
  double moe_us = 0.0;
  // Whole model (L layers), ms.
  double total_ms = 0.0;
  double moe_only_ms = 0.0;
  // The MoE layer execution (timing detail of the critical rank).
  LayerExecution moe_layer;
};

// Runs `config.model` end-to-end on `cluster` with the given executor.
ModelRunResult RunModel(MoeLayerExecutor& executor,
                        const ModelRunConfig& config,
                        const ClusterSpec& cluster);

// Which backward implementation a training step uses for the MoE layers.
enum class MoeBackwardKind {
  kComet,       // mirrored fused kernels (core/comet_backward)
  kSequential,  // Megatron-style one-kernel-per-op backward
};

struct TrainStepResult {
  std::string name;
  // Per transformer layer, us.
  double attention_fwd_us = 0.0;
  double attention_bwd_us = 0.0;
  double moe_fwd_us = 0.0;
  double moe_bwd_us = 0.0;
  // Whole model (L layers), ms.
  double total_ms = 0.0;
  double moe_only_ms = 0.0;
};

// Times one full training step (forward + backward over all L layers).
// Attention backward is priced at 2x forward (dgrad + wgrad re-walk the same
// GEMMs), identical across mechanisms; only the MoE layers differ.
TrainStepResult RunTrainingStep(MoeLayerExecutor& executor,
                                MoeBackwardKind backward,
                                const ModelRunConfig& config,
                                const ClusterSpec& cluster);

// Communication fraction of a single MoE layer execution (Figure 1(a)):
// comm busy time / total busy time of the layer, from the timeline.
double MoeCommFraction(const LayerExecution& layer);

}  // namespace comet
